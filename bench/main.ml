(* Benchmark & experiment harness.

   Usage:
     dune exec bench/main.exe                 # all paper figures (full size)
     dune exec bench/main.exe -- quick        # all figures, reduced scale
     dune exec bench/main.exe -- fig9 … fig12 # individual figures
     dune exec bench/main.exe -- summary      # qualitative checks table
     dune exec bench/main.exe -- micro        # Bechamel microbenchmarks
     dune exec bench/main.exe -- micro smoke  # same, tiny quota (make check)
     dune exec bench/main.exe -- json         # write BENCH_pr2.json
     dune exec bench/main.exe -- scale        # 1000-site client sweep, write BENCH_scale.json
     dune exec bench/main.exe -- scale smoke  # tiny sweep, no file (make check)
     dune exec bench/main.exe -- parallel     # serial-vs-DTX_DOMAINS curve, write BENCH_pr7.json
     dune exec bench/main.exe -- parallel smoke # tiny curve, no file (make check)
     dune exec bench/main.exe -- commute      # Commute vs XDGL/Node2PL mixes, write BENCH_pr9.json
     dune exec bench/main.exe -- commute smoke # one tiny mix, no file (make check)
     dune exec bench/main.exe -- ablation     # design-choice ablations
     dune exec bench/main.exe -- fig9 export  # also write results/<fig>.csv *)

module Experiments = Dtx_workload.Experiments
module Workload = Dtx_workload.Workload
module Protocol = Dtx_protocol.Protocol
module Allocation = Dtx_frag.Allocation
module Generator = Dtx_xmark.Generator
module Dataguide = Dtx_dataguide.Dataguide
module Queries = Dtx_xmark.Queries
module Eval = Dtx_xpath.Eval
module Xparser = Dtx_xpath.Parser
module Table = Dtx_locks.Table
module Mode = Dtx_locks.Mode
module Wfg = Dtx_locks.Wfg
module Rng = Dtx_util.Rng

let ppf = Format.std_formatter

let export_dir = ref None

let print_figures figs =
  List.iter
    (fun f ->
      Format.fprintf ppf "%a@.@." Experiments.pp_figure f;
      match !export_dir with
      | Some dir ->
        let path = Experiments.write_csv ~dir f in
        Format.fprintf ppf "[wrote %s]@." path
      | None -> ())
    figs

let run_figure ~quick = function
  | "fig9" -> print_figures (Experiments.fig9 ~quick ())
  | "fig10" -> print_figures (Experiments.fig10 ~quick ())
  | "fig11a" -> print_figures (Experiments.fig11a ~quick ())
  | "fig11b" -> print_figures (Experiments.fig11b ~quick ())
  | "fig12" -> print_figures (Experiments.fig12 ~quick ())
  | other -> Format.fprintf ppf "unknown figure %s@." other

let summary ~quick =
  Format.fprintf ppf "== Qualitative checks against the paper ==@.";
  List.iter
    (fun (fig, check, expect, observed) ->
      Format.fprintf ppf "%-18s %-32s %-36s %s@." fig check expect observed)
    (Experiments.summary_table ~quick ())

(* --- Bechamel microbenchmarks ------------------------------------------ *)

(* [smoke] shrinks the measurement quota so `make check` can exercise every
   perf-path case in well under a second; the numbers it produces are noisy
   and only the absence of crashes matters. *)
let microbench_results ~smoke =
  let open Bechamel in
  let open Toolkit in
  let doc = Generator.generate (Generator.params_of_mb 4.0) in
  let dg = Dataguide.build doc in
  let q = Xparser.parse "/site/regions/*/item/name" in
  let q_pred = Xparser.parse "/site/people/person[@id = \"p3\"]/name" in
  let rng = Rng.create 11 in
  let mk name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"dtx"
      [ mk "dataguide-build-4MB" (fun () -> ignore (Dataguide.build doc));
        mk "dataguide-match-path" (fun () -> ignore (Dataguide.match_path dg q));
        mk "xpath-eval-items" (fun () -> ignore (Eval.select doc q));
        mk "xpath-eval-predicate" (fun () -> ignore (Eval.select doc q_pred));
        (* Footprints are precomputed at submit time in the real pipeline
           (Coordinator.submit), so the staged closure measures only the
           acquire/release path: one long-lived table, prebuilt request
           lists. Each run leaves the table empty again. *)
        (let table = Table.create () in
         let footprints =
           Array.init 10 (fun t ->
               List.init 10 (fun i ->
                   (Table.resource "d" (((t + 1) * 100) + i), Mode.IS)))
         in
         mk "lock-acquire-release" (fun () ->
             for txn = 1 to 10 do
               ignore (Table.acquire_all table ~txn footprints.(txn - 1))
             done;
             for txn = 1 to 10 do
               ignore (Table.release_txn table ~txn)
             done));
        mk "wfg-cycle-detect-100" (fun () ->
            let g = Wfg.create () in
            for i = 0 to 99 do
              Wfg.add_wait g ~waiter:i ~holders:[ (i + 1) mod 100 ]
            done;
            ignore (Wfg.find_cycle g));
        mk "xmark-generate-1MB" (fun () ->
            ignore (Generator.generate (Generator.params_of_mb 1.0)));
        mk "workload-gen-query" (fun () -> ignore (Queries.gen_query rng doc));
        (* Uncached XDGL derivation: every call re-walks DataGuide targets,
           ancestors and predicate paths. *)
        mk "xdgl-lock-derivation" (fun () ->
            ignore (Dtx_protocol.Xdgl_rules.requests dg (Dtx_update.Op.Query q_pred)));
        (* Same derivation through Protocol.lock_requests, which memoizes on
           the DataGuide version — steady-state cache hits. *)
        (let p = Protocol.create Protocol.xdgl in
         Protocol.add_doc p doc;
         mk "xdgl-lock-derivation-cached" (fun () ->
             ignore
               (Protocol.lock_requests p ~doc:doc.Dtx_xml.Doc.name
                  (Dtx_update.Op.Query q_pred)))) ]
  in
  (* Two instances per run: wall time and minor-heap words — the second is
     the allocations-per-op column that tracks hot-path allocation work
     (a GC-pressure proxy the clock alone hides). *)
  let clock = Instance.monotonic_clock in
  let minor = Instance.minor_allocated in
  let quota = if smoke then 0.02 else 0.5 in
  let limit = if smoke then 50 else 1000 in
  let cfg = Benchmark.cfg ~limit ~quota:(Time.second quota) () in
  let raw = Benchmark.all cfg [ clock; minor ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let estimates instance =
    let results = Analyze.all ols instance raw in
    Hashtbl.fold
      (fun name v acc ->
        match Analyze.OLS.estimates v with
        | Some [ est ] -> (name, est) :: acc
        | _ -> acc)
      results []
  in
  let ns = estimates clock and words = estimates minor in
  List.map
    (fun (name, e) -> (name, Some e, List.assoc_opt name words))
    ns
  @ List.filter_map
      (fun (name, e) ->
        if List.mem_assoc name ns then None else Some (name, None, Some e))
      words
  |> List.sort compare

let microbenches ~smoke =
  let rows = microbench_results ~smoke in
  Format.fprintf ppf
    "== Microbenchmarks (monotonic clock ns/run, minor words/run%s) ==@."
    (if smoke then ", smoke quota" else "");
  let cell = function
    | Some est -> Printf.sprintf "%14.1f" est
    | None -> Printf.sprintf "%14s" "n/a"
  in
  List.iter
    (fun (name, ns, words) ->
      Format.fprintf ppf "%-34s %s %s@." name (cell ns) (cell words))
    rows

(* --- JSON export (machine-readable perf trajectory) --------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let bench_json ~out () =
  let micro = microbench_results ~smoke:false in
  (* Fig.-9-style quick configurations: read-only transactions, both paper
     protocols, two client counts — enough to track throughput and latency
     drift from PR to PR without a full figure run. *)
  let fig9_rows =
    List.concat_map
      (fun kind ->
        List.map
          (fun n_clients ->
            let r =
              Workload.run
                { Workload.default_params with
                  protocol = kind;
                  n_clients;
                  base_size_mb = 8.0;
                  n_sites = 3;
                  update_txn_pct = 0;
                  replication = Allocation.Partial { copies = 1 } }
            in
            let throughput =
              if r.Workload.makespan_ms > 0.0 then
                float_of_int r.Workload.committed /. r.Workload.makespan_ms
                *. 1000.0
              else 0.0
            in
            Printf.sprintf
              "    {\"protocol\": \"%s\", \"clients\": %d, \"committed\": %d, \
               \"throughput_txn_per_s\": %.3f, \"mean_latency_ms\": %.3f, \
               \"deadlocks\": %d}"
              (json_escape (Protocol.kind_to_string kind))
              n_clients r.Workload.committed throughput
              r.Workload.response.Dtx_util.Stats.mean r.Workload.deadlocks)
          [ 8; 12; 24; 48 ])
      [ Protocol.xdgl; Protocol.node2pl ]
  in
  let field sel =
    List.filter_map
      (fun row ->
        let name, _, _ = row in
        Option.map
          (fun e -> Printf.sprintf "    \"%s\": %.1f" (json_escape name) e)
          (sel row))
      micro
  in
  let micro_ns = field (fun (_, ns, _) -> ns) in
  let micro_words = field (fun (_, _, words) -> words) in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n  \"micro_ns_per_run\": {\n%s\n  },\n\
    \  \"micro_minor_words_per_run\": {\n%s\n  },\n\
    \  \"fig9_quick\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" micro_ns)
    (String.concat ",\n" micro_words)
    (String.concat ",\n" fig9_rows);
  close_out oc;
  Format.fprintf ppf "[wrote %s]@." out

(* --- Scale sweep (BENCH_scale.json) ------------------------------------- *)

(* Throughput/latency curve on the extreme-scale configuration (1000 sites,
   up to 10k clients, one transaction each). One shared database backs the
   whole sweep — generation and fragmentation are identical across the
   points, only the client population varies. [smoke] shrinks the sweep to
   a make-check-sized run and writes nothing. *)
let scale_bench ~smoke ~out () =
  let sites = if smoke then 100 else 1000 in
  let sweep = if smoke then [ 50; 200 ] else [ 100; 1000; 4000; 10000 ] in
  let base =
    { Workload.default_params with
      n_sites = sites;
      txns_per_client = 1;
      ops_per_txn = 3;
      base_size_mb = 10.0;
      replication = Allocation.Partial { copies = 1 } }
  in
  let database = Workload.build_database base in
  Format.fprintf ppf "== Scale sweep: %d sites, %d-point client curve ==@."
    sites (List.length sweep);
  Format.fprintf ppf "%-10s %-11s %-16s %-10s %-10s %-10s %-8s %-10s@."
    "clients" "committed" "throughput(t/s)" "mean(ms)" "p95(ms)" "p99(ms)"
    "majors" "wall(s)";
  let rows =
    List.map
      (fun n_clients ->
        let g0 = Gc.quick_stat () in
        let t0 = Unix.gettimeofday () in
        let r = Workload.run ~database { base with n_clients } in
        let wall = Unix.gettimeofday () -. t0 in
        let g1 = Gc.quick_stat () in
        let majors = g1.Gc.major_collections - g0.Gc.major_collections in
        let throughput =
          if r.Workload.makespan_ms > 0.0 then
            float_of_int r.Workload.committed /. r.Workload.makespan_ms
            *. 1000.0
          else 0.0
        in
        Format.fprintf ppf
          "%-10d %-11d %-16.0f %-10.2f %-10.2f %-10.2f %-8d %-10.2f@."
          n_clients r.Workload.committed throughput
          r.Workload.response.Dtx_util.Stats.mean
          r.Workload.response.Dtx_util.Stats.p95
          r.Workload.response.Dtx_util.Stats.p99 majors wall;
        Printf.sprintf
          "    {\"clients\": %d, \"sites\": %d, \"committed\": %d, \
           \"aborted\": %d, \"deadlocks\": %d, \
           \"throughput_txn_per_s\": %.3f, \"mean_latency_ms\": %.3f, \
           \"p95_latency_ms\": %.3f, \"p99_latency_ms\": %.3f, \
           \"gc_major_collections\": %d, \"makespan_ms\": %.3f, \
           \"wall_clock_s\": %.3f}"
          n_clients sites r.Workload.committed r.Workload.aborted
          r.Workload.deadlocks throughput
          r.Workload.response.Dtx_util.Stats.mean
          r.Workload.response.Dtx_util.Stats.p95
          r.Workload.response.Dtx_util.Stats.p99 majors
          r.Workload.makespan_ms wall)
      sweep
  in
  if not smoke then begin
    let oc = open_out out in
    (* The virtual-throughput dip at the 10k-client point is workload
       saturation, not an implementation cliff: with 10k single-transaction
       clients against 1000 one-copy sites, per-site queues deepen enough
       that lock waits stretch the makespan faster than admissions add
       commits (p99 response grows superlinearly while commit count stays
       proportional). The p99 column quantifies exactly that tail. *)
    Printf.fprintf oc
      "{\n  \"notes\": \"Virtual throughput dips at the 10k-client point \
       because per-site queueing stretches the makespan (see \
       p99_latency_ms growth), not because of a data-structure cliff; \
       gc_major_collections tracks allocation pressure per sweep \
       point.\",\n  \"scale_sweep\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" rows);
    close_out oc;
    Format.fprintf ppf "[wrote %s]@." out
  end

(* --- Parallel ticks (BENCH_pr7.json) ------------------------------------ *)

(* Serial-vs-domains curve on the extreme-scale configuration. DTX_DOMAINS
   is read by the simulator at creation time from the environment, so the
   sweep re-points it with [Unix.putenv] between runs — same process, same
   shared database. Every setting must produce identical simulation results
   (committed/aborted/makespan); the curve only varies wall clock. *)
let parallel_bench ~smoke ~out () =
  let sites = if smoke then 50 else 1000 in
  let clients = if smoke then 200 else 10_000 in
  let domain_points = [ 1; 2; 4 ] in
  let base =
    { Workload.default_params with
      n_sites = sites;
      n_clients = clients;
      txns_per_client = 1;
      ops_per_txn = 3;
      base_size_mb = 10.0;
      replication = Allocation.Partial { copies = 1 } }
  in
  let database = Workload.build_database base in
  let host_cores = Domain.recommended_domain_count () in
  let saved_domains = Sys.getenv_opt "DTX_DOMAINS" in
  Format.fprintf ppf
    "== Parallel ticks: %d sites x %d clients, DTX_DOMAINS curve (host \
     cores: %d) ==@."
    sites clients host_cores;
  Format.fprintf ppf "%-9s %-11s %-14s %-8s %-10s@." "domains" "committed"
    "makespan(ms)" "majors" "wall(s)";
  let baseline = ref None in
  let rows =
    List.map
      (fun domains ->
        Unix.putenv "DTX_DOMAINS" (string_of_int domains);
        let g0 = Gc.quick_stat () in
        let t0 = Unix.gettimeofday () in
        let r = Workload.run ~database base in
        let wall = Unix.gettimeofday () -. t0 in
        let g1 = Gc.quick_stat () in
        let majors = g1.Gc.major_collections - g0.Gc.major_collections in
        let fingerprint =
          ( r.Workload.committed, r.Workload.aborted, r.Workload.deadlocks,
            r.Workload.makespan_ms )
        in
        (match !baseline with
         | None -> baseline := Some fingerprint
         | Some fp ->
           if fp <> fingerprint then
             failwith
               (Printf.sprintf
                  "parallel bench: DTX_DOMAINS=%d diverged from serial run"
                  domains));
        Format.fprintf ppf "%-9d %-11d %-14.1f %-8d %-10.2f@." domains
          r.Workload.committed r.Workload.makespan_ms majors wall;
        Printf.sprintf
          "    {\"domains\": %d, \"committed\": %d, \"aborted\": %d, \
           \"deadlocks\": %d, \"makespan_ms\": %.3f, \
           \"gc_major_collections\": %d, \"wall_clock_s\": %.3f, \
           \"real_txn_per_s\": %.1f}"
          domains r.Workload.committed r.Workload.aborted
          r.Workload.deadlocks r.Workload.makespan_ms majors wall
          (if wall > 0.0 then float_of_int r.Workload.committed /. wall
           else 0.0))
      domain_points
  in
  Unix.putenv "DTX_DOMAINS"
    (match saved_domains with Some v -> v | None -> "1");
  Format.fprintf ppf "[simulation results identical across domain counts]@.";
  if not smoke then begin
    let oc = open_out out in
    Printf.fprintf oc
      "{\n  \"host_cores\": %d,\n  \"sites\": %d,\n  \"clients\": %d,\n\
      \  \"notes\": \"Rows are the same fixed-seed workload under \
       increasing DTX_DOMAINS; simulation output is byte-identical across \
       settings (enforced here by fingerprint and in make check by cmp). \
       Wall-clock speedup requires host_cores > 1: on a single-core host \
       the domain pool only adds coordination overhead, so the serial row \
       is the honest baseline and the curve shows the parallel path's \
       overhead floor rather than its scaling.\",\n\
      \  \"parallel_scale\": [\n%s\n  ]\n}\n"
      host_cores sites clients
      (String.concat ",\n" rows);
    close_out oc;
    Format.fprintf ppf "[wrote %s]@." out
  end

(* --- Commute vs pessimistic protocols (BENCH_pr9.json) ------------------- *)

(* The optimistic protocol's value proposition: on contended read-heavy
   mixes the lock-free commuting fast path removes blocking, so throughput
   (committed transactions per virtual second) beats XDGL; on an
   uncontended mix it matches XDGL, since both then pay only derivation.
   Aborted optimists are resubmitted ([retries]) — the client-side cost the
   validation scheme trades blocking for. Each mix runs XDGL, Node2PL and
   Commute over the same seeds and database. *)
let commute_bench ~smoke ~out () =
  let protocols = [ Protocol.xdgl; Protocol.node2pl; Protocol.commute ] in
  let mixes =
    (* (label, clients, update_txn_pct, base_size_mb) — small databases
       concentrate the access paths, which is what drives contention. *)
    if smoke then [ ("high-read-heavy", 24, 10, 1.0) ]
    else
      [ ("low-contention", 12, 20, 8.0);
        ("high-read-heavy", 48, 10, 1.0);
        ("high-mixed", 48, 30, 1.0) ]
  in
  let seeds = if smoke then [ 7 ] else [ 7; 107; 1007 ] in
  Format.fprintf ppf "== Commute vs XDGL/Node2PL: contention mixes ==@.";
  Format.fprintf ppf "%-16s %-9s %-10s %-16s %-10s %-10s %-9s %-9s@." "mix"
    "protocol" "committed" "throughput(t/s)" "lockreqs" "blocked"
    "deadlk" "validn";
  let results = ref [] in
  List.iter
    (fun (label, n_clients, upd, mb) ->
      let base =
        { Workload.default_params with
          n_clients; update_txn_pct = upd; base_size_mb = mb;
          n_sites = 4;
          txns_per_client = (if smoke then 3 else 6);
          ops_per_txn = 4;
          retries = 3 }
      in
      (* One database per (mix, seed), shared by the three protocols so
         they race on identical data. *)
      let databases =
        List.map
          (fun seed -> (seed, Workload.build_database { base with seed }))
          seeds
      in
      List.iter
        (fun protocol ->
          let committed = ref 0 and makespan = ref 0.0 in
          let lockreqs = ref 0 and blocked = ref 0 in
          let deadlocks = ref 0 and validations = ref 0 in
          List.iter
            (fun seed ->
              let r =
                Workload.run
                  ~database:(List.assoc seed databases)
                  { base with seed; protocol }
              in
              committed := !committed + r.Workload.committed;
              makespan := !makespan +. r.Workload.makespan_ms;
              lockreqs := !lockreqs + r.Workload.lock_requests;
              blocked := !blocked + r.Workload.blocked_ops;
              deadlocks := !deadlocks + r.Workload.deadlocks;
              validations := !validations + r.Workload.validation_aborts)
            seeds;
          let throughput =
            if !makespan > 0.0 then
              float_of_int !committed /. !makespan *. 1000.0
            else 0.0
          in
          Format.fprintf ppf
            "%-16s %-9s %-10d %-16.1f %-10d %-10d %-9d %-9d@." label
            (Protocol.kind_to_string protocol)
            !committed throughput !lockreqs !blocked !deadlocks !validations;
          results :=
            (label, protocol, throughput, !committed, !lockreqs, !blocked,
             !deadlocks, !validations)
            :: !results)
        protocols)
    mixes;
  let results = List.rev !results in
  let tp label proto =
    List.find_map
      (fun (l, p, t, _, _, _, _, _) ->
        if l = label && p = proto then Some t else None)
      results
    |> Option.get
  in
  let gates =
    List.filter_map
      (fun (label, _, _, _) ->
        if label = "low-contention" then None
        else
          Some
            ( label,
              tp label Protocol.commute > tp label Protocol.xdgl ))
      mixes
  in
  List.iter
    (fun (label, won) ->
      Format.fprintf ppf "gate %-16s commute %s xdgl@." label
        (if won then ">" else "<="))
    gates;
  if List.exists (fun (l, _, _, _) -> l = "low-contention") mixes then begin
    let ratio =
      tp "low-contention" Protocol.commute /. tp "low-contention" Protocol.xdgl
    in
    Format.fprintf ppf "gate low-contention  commute/xdgl = %.2f@." ratio
  end;
  if not smoke then begin
    let rows =
      List.map
        (fun (label, proto, t, c, lr, b, d, v) ->
          Printf.sprintf
            "    {\"mix\": \"%s\", \"protocol\": \"%s\", \
             \"throughput_txn_per_s\": %.3f, \"committed\": %d, \
             \"lock_requests\": %d, \"blocked_ops\": %d, \"deadlocks\": %d, \
             \"validation_aborts\": %d}"
            (json_escape label)
            (json_escape (Protocol.kind_to_string proto))
            t c lr b d v)
        results
    in
    let oc = open_out out in
    Printf.fprintf oc
      "{\n  \"notes\": \"Commute admits provably-commuting operations \
       lock-free and validates at commit; contended read-heavy mixes trade \
       blocking (and deadlocks) for validation aborts that retries absorb. \
       Totals are summed over seeds {7, 107, 1007} on a shared database \
       per mix.\",\n  \"commute_mixes\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" rows);
    close_out oc;
    Format.fprintf ppf "[wrote %s]@." out
  end

(* --- Ablations ---------------------------------------------------------- *)

let ablation () =
  let base = { Workload.default_params with n_clients = 20; base_size_mb = 16.0 } in
  Format.fprintf ppf "== Ablation: deadlock-detection period ==@.";
  Format.fprintf ppf "%-12s %-12s %-14s %-10s@." "period(ms)" "mean(ms)"
    "deadlocks" "committed";
  List.iter
    (fun period ->
      let r = Workload.run { base with deadlock_period_ms = period } in
      Format.fprintf ppf "%-12.0f %-12.1f %-14d %-10d@." period
        r.Workload.response.Dtx_util.Stats.mean r.Workload.deadlocks
        r.Workload.committed)
    [ 10.0; 40.0; 160.0; 640.0 ];
  Format.fprintf ppf "@.== Ablation: protocol (incl. Doc2PL full-document locking) ==@.";
  Format.fprintf ppf "%-12s %-12s %-14s %-10s %-12s@." "protocol" "mean(ms)"
    "deadlocks" "committed" "lock reqs";
  List.iter
    (fun kind ->
      let r = Workload.run { base with protocol = kind } in
      Format.fprintf ppf "%-12s %-12.1f %-14d %-10d %-12d@."
        (Protocol.kind_to_string kind) r.Workload.response.Dtx_util.Stats.mean
        r.Workload.deadlocks r.Workload.committed r.Workload.lock_requests)
    [ Protocol.xdgl; Protocol.node2pl; Protocol.doc2pl; Protocol.tadom;
      Protocol.xdgl_value ];
  Format.fprintf ppf "@.== Ablation: client retries after abort ==@.";
  Format.fprintf ppf "%-10s %-12s %-12s %-14s@." "retries" "committed"
    "not-exec" "makespan(ms)";
  List.iter
    (fun retries ->
      let r = Workload.run { base with retries; update_txn_pct = 40 } in
      Format.fprintf ppf "%-10d %-12d %-12d %-14.1f@." retries
        r.Workload.committed r.Workload.not_executed r.Workload.makespan_ms)
    [ 0; 1; 3 ];
  Format.fprintf ppf "@.== Seed sensitivity (3 seeds per configuration) ==@.";
  List.iter
    (fun (label, p) ->
      let a = Workload.run_many p in
      Format.fprintf ppf "%-22s %a@." label Workload.pp_aggregate a)
    [ ("XDGL/20%upd", base);
      ("Node2PL/20%upd", { base with protocol = Protocol.node2pl });
      ("XDGL/40%upd", { base with update_txn_pct = 40 }) ];
  Format.fprintf ppf "@.== Ablation: deadlock policy (paper future work: deadlock study) ==@.";
  Format.fprintf ppf "%-12s %-12s %-14s %-12s %-10s@." "policy" "mean(ms)"
    "dl aborts" "makespan" "committed";
  List.iter
    (fun (name, policy) ->
      let r =
        Workload.run { base with deadlock_policy = policy; update_txn_pct = 40 }
      in
      Format.fprintf ppf "%-12s %-12.1f %-14d %-12.1f %-10d@." name
        r.Workload.response.Dtx_util.Stats.mean r.Workload.deadlocks
        r.Workload.makespan_ms r.Workload.committed)
    [ ("detection", Dtx.Site.Detection); ("wait-die", Dtx.Site.Wait_die);
      ("wound-wait", Dtx.Site.Wound_wait) ];
  Format.fprintf ppf "@.== Ablation: commit protocol (paper future work: atomicity via 2PC) ==@.";
  Format.fprintf ppf "%-10s %-12s %-12s %-12s %-12s@." "commit" "mean(ms)"
    "makespan" "messages" "net bytes";
  let traffic_breakdowns =
    List.map
      (fun (name, two_phase) ->
        let r = Workload.run { base with two_phase_commit = two_phase } in
        Format.fprintf ppf "%-10s %-12.1f %-12.1f %-12d %-12d@." name
          r.Workload.response.Dtx_util.Stats.mean r.Workload.makespan_ms
          r.Workload.messages r.Workload.net_bytes;
        (name, r.Workload.traffic))
      [ ("1-phase", false); ("2-phase", true) ]
  in
  (* Per-message-type traffic: where the extra 2PC round shows up. *)
  List.iter
    (fun (name, traffic) ->
      Format.fprintf ppf "@.-- %s traffic by message type --@." name;
      Format.fprintf ppf "%-12s %8s %8s %10s@." "message" "sent" "dropped"
        "bytes";
      List.iter
        (fun (row : Dtx_net.Net.traffic) ->
          Format.fprintf ppf "%-12s %8d %8d %10d@."
            (Dtx_net.Msg.Kind.to_string row.Dtx_net.Net.t_kind)
            row.Dtx_net.Net.t_sent row.Dtx_net.Net.t_dropped
            row.Dtx_net.Net.t_bytes)
        traffic)
    traffic_breakdowns;
  Format.fprintf ppf "@.== Ablation: LAN vs WAN (paper future work: WAN environments) ==@.";
  Format.fprintf ppf "%-8s %-12s %-12s %-12s %-14s@." "link" "mean(ms)"
    "p95(ms)" "makespan" "deadlocks";
  List.iter
    (fun (name, profile) ->
      let r = Workload.run { base with net_config = profile } in
      Format.fprintf ppf "%-8s %-12.1f %-12.1f %-12.1f %-14d@." name
        r.Workload.response.Dtx_util.Stats.mean
        r.Workload.response.Dtx_util.Stats.p95 r.Workload.makespan_ms
        r.Workload.deadlocks)
    [ ("lan", Dtx_net.Net.Config.lan); ("wan", Dtx_net.Net.Config.wan) ];
  Format.fprintf ppf "@.== Ablation: replica copies under partial replication ==@.";
  Format.fprintf ppf "%-10s %-12s %-12s %-12s@." "copies" "mean(ms)"
    "messages" "committed";
  List.iter
    (fun copies ->
      let r =
        Workload.run
          { base with replication = Allocation.Partial { copies } }
      in
      Format.fprintf ppf "%-10d %-12.1f %-12d %-12d@." copies
        r.Workload.response.Dtx_util.Stats.mean r.Workload.messages
        r.Workload.committed)
    [ 1; 2; 3 ]

let () =
  (* Sweeps spin up the domain pool many times over; join the parked
     workers on every exit path instead of leaking them to process reap. *)
  at_exit Dtx_sim.Sim.shutdown_pool;
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "quick" args in
  let smoke = List.mem "smoke" args in
  if List.mem "export" args then export_dir := Some "results";
  let figure_args =
    List.filter
      (fun a ->
        a <> "quick" && a <> "summary" && a <> "micro" && a <> "ablation"
        && a <> "export" && a <> "smoke" && a <> "json" && a <> "scale"
        && a <> "parallel" && a <> "commute")
      args
  in
  let t0 = Unix.gettimeofday () in
  if
    figure_args = []
    && not
         (List.mem "summary" args || List.mem "micro" args
          || List.mem "ablation" args || List.mem "json" args
          || List.mem "scale" args || List.mem "parallel" args
          || List.mem "commute" args)
  then begin
    (* Default: everything the paper reports. *)
    print_figures (Experiments.all ~quick ());
    summary ~quick:true;
    ablation ()
  end
  else begin
    List.iter (run_figure ~quick) figure_args;
    if List.mem "summary" args then summary ~quick;
    if List.mem "micro" args then microbenches ~smoke;
    if List.mem "json" args then bench_json ~out:"BENCH_pr2.json" ();
    if List.mem "scale" args then
      scale_bench ~smoke ~out:"BENCH_scale.json" ();
    if List.mem "parallel" args then
      parallel_bench ~smoke ~out:"BENCH_pr7.json" ();
    if List.mem "commute" args then
      commute_bench ~smoke ~out:"BENCH_pr9.json" ();
    if List.mem "ablation" args then ablation ()
  end;
  Format.fprintf ppf "@.[bench completed in %.1f s]@." (Unix.gettimeofday () -. t0)
