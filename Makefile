# Convenience targets. `make check` is the gate a change must pass.
# (ocamlformat is not pinned in this environment, so formatting is not
# part of the gate; add it here if/when the binary is available.)

.PHONY: check build test bench bench-smoke bench-json clean

check: build test bench-smoke

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe -- quick

# Tiny-quota microbench pass: catches perf-path code that crashes without
# paying for a real measurement run.
bench-smoke:
	dune exec bench/main.exe -- micro smoke

# Machine-readable perf snapshot (micro ns/run + fig9-quick workload numbers).
bench-json:
	dune exec bench/main.exe -- json

clean:
	dune clean
