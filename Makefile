# Convenience targets. `make check` is the gate a change must pass.
# (ocamlformat is not pinned in this environment, so formatting is not
# part of the gate; add it here if/when the binary is available.)

.PHONY: check build test test-locks-unsharded bench bench-smoke bench-json \
	bench-scale bench-scale-smoke bench-parallel bench-parallel-smoke \
	bench-commute bench-commute-smoke \
	ablation-identical analyze analyze-smoke \
	analyze-mutations chaos chaos-smoke explore explore-smoke \
	explore-mutations lint race-smoke race-mutations cert cert-smoke \
	cert-mutations clean

check: build test test-locks-unsharded bench-smoke bench-scale-smoke \
	bench-parallel-smoke bench-commute-smoke analyze-smoke chaos-smoke \
	explore-smoke lint race-smoke cert-smoke ablation-identical

build:
	dune build

test:
	dune runtest

# The lock-table suite again with a single shard: the batched-vs-per-request
# QCheck differential (and everything else) must hold at both ends of the
# DTX_LOCK_SHARDS range.
test-locks-unsharded:
	DTX_LOCK_SHARDS=1 dune exec test/test_locks.exe

bench:
	dune exec bench/main.exe -- quick

# Tiny-quota microbench pass: catches perf-path code that crashes without
# paying for a real measurement run.
bench-smoke:
	dune exec bench/main.exe -- micro smoke

# Machine-readable perf snapshot (micro ns/run + fig9-quick workload numbers).
bench-json:
	dune exec bench/main.exe -- json

# Extreme-scale client sweep (1000 sites, up to 10k clients) — writes
# BENCH_scale.json.
bench-scale:
	dune exec bench/main.exe -- scale

# Reduced sweep that writes nothing — part of `make check`.
bench-scale-smoke:
	dune exec bench/main.exe -- scale smoke

# Serial-vs-domain-pool curve on the extreme-scale configuration — writes
# BENCH_pr7.json (and fails if any domain count diverges from serial).
bench-parallel:
	dune exec bench/main.exe -- parallel

# Reduced curve that writes nothing — part of `make check`.
bench-parallel-smoke:
	dune exec bench/main.exe -- parallel smoke

# Commute vs XDGL/Node2PL on contention mixes (the optimistic protocol's
# value proposition) — writes BENCH_pr9.json.
bench-commute:
	dune exec bench/main.exe -- commute

# One tiny mix that writes nothing — part of `make check`.
bench-commute-smoke:
	dune exec bench/main.exe -- commute smoke

# Byte-identical ablation gate: the legacy binary-heap simulator queue and
# an unsharded (single-shard) lock table must reproduce the default
# configuration's chaos and explore output exactly — the backends are
# interchangeable implementations of one (time, seq) / one lock-table
# semantics, so any divergence is a bug. Likewise a DTX_DOMAINS=4 worker
# pool must reproduce the serial (DTX_DOMAINS=1) output byte for byte on
# chaos, explore and a scale run: parallel ticks defer every shared effect
# and replay in sequence order, so they are an implementation detail of the
# same deterministic simulation.
ablation-identical:
	dune exec bin/dtx_cli.exe -- chaos --smoke > _build/ablation_default.out
	DTX_SIM_QUEUE=heap DTX_LOCK_SHARDS=1 dune exec bin/dtx_cli.exe -- \
	  chaos --smoke > _build/ablation_legacy.out
	cmp _build/ablation_default.out _build/ablation_legacy.out
	dune exec bin/dtx_cli.exe -- explore --scenario ref > _build/ablation_default.out
	DTX_SIM_QUEUE=heap DTX_LOCK_SHARDS=1 dune exec bin/dtx_cli.exe -- \
	  explore --scenario ref > _build/ablation_legacy.out
	cmp _build/ablation_default.out _build/ablation_legacy.out
	DTX_DOMAINS=1 dune exec bin/dtx_cli.exe -- chaos --smoke \
	  > _build/ablation_serial.out
	DTX_DOMAINS=4 dune exec bin/dtx_cli.exe -- chaos --smoke \
	  > _build/ablation_domains.out
	cmp _build/ablation_serial.out _build/ablation_domains.out
	DTX_DOMAINS=1 dune exec bin/dtx_cli.exe -- explore --scenario ref \
	  > _build/ablation_serial.out
	DTX_DOMAINS=4 dune exec bin/dtx_cli.exe -- explore --scenario ref \
	  > _build/ablation_domains.out
	cmp _build/ablation_serial.out _build/ablation_domains.out
	DTX_DOMAINS=1 dune exec bin/dtx_cli.exe -- scale --sites 50 \
	  --clients 200 --no-timing > _build/ablation_serial.out
	DTX_DOMAINS=4 dune exec bin/dtx_cli.exe -- scale --sites 50 \
	  --clients 200 --no-timing > _build/ablation_domains.out
	cmp _build/ablation_serial.out _build/ablation_domains.out

# Invariant analyzer (Dtx_check): seeded workloads under every protocol with
# the serializability / S2PL / FSM / deadlock checker attached. Exits
# non-zero on the first violation.
analyze:
	dune exec bin/dtx_cli.exe -- analyze

# Tiny single-seed analyzer pass — part of `make check`.
analyze-smoke:
	dune exec bin/dtx_cli.exe -- analyze --smoke

# Scripted chaos: seeded fault plans (drop/duplicate/reorder, partitions,
# crash + WAL-replay restart) under every protocol config with the checker
# attached. Exits non-zero on any violation.
chaos:
	dune exec bin/dtx_cli.exe -- chaos

# Reduced chaos matrix (3 plans, XDGL and XDGL+2PC) — part of `make check`.
chaos-smoke:
	dune exec bin/dtx_cli.exe -- chaos --smoke

# The checker's self-test: each seeded trace mutation must make the
# analyzer fail. `!` inverts, so this target fails if a mutation slips by.
analyze-mutations:
	! dune exec bin/dtx_cli.exe -- analyze --mutate compat-flip
	! dune exec bin/dtx_cli.exe -- analyze --mutate skip-release
	! dune exec bin/dtx_cli.exe -- analyze --mutate commit-reorder

# Schedule-space model checking: every inequivalent message-delivery
# schedule of the pinned scenarios, DPOR-reduced by the static
# commutativity analysis, with the invariant checker as oracle. Covers
# one-phase and 2PC under XDGL, Node2PL and Commute.
explore:
	dune exec bin/dtx_cli.exe -- explore --scenario all
	dune exec bin/dtx_cli.exe -- explore --scenario all --protocol node2pl
	dune exec bin/dtx_cli.exe -- explore --scenario all --protocol commute
	dune exec bin/dtx_cli.exe -- explore --scenario ref --two-phase
	dune exec bin/dtx_cli.exe -- explore --scenario ref --protocol commute \
	  --two-phase

# Reference-scenario pass with the >= 2x DPOR-reduction gate — part of
# `make check` (the gate also re-runs the naive baseline).
explore-smoke:
	dune exec bin/dtx_cli.exe -- explore --scenario ref --gate-reduction 2.0
	dune exec bin/dtx_cli.exe -- explore --scenario ref --protocol node2pl \
	  --gate-reduction 2.0
	dune exec bin/dtx_cli.exe -- explore --scenario ref --protocol commute \
	  --gate-reduction 2.0

# Seeded protocol bugs the explorer must reach: each mutated run has to
# find a violating schedule (so the plain run exits non-zero, inverted by
# `!`). skip-release is the schedule-dependent one random jitter misses.
explore-mutations:
	! dune exec bin/dtx_cli.exe -- explore --scenario ref --mutate compat-flip
	! dune exec bin/dtx_cli.exe -- explore --scenario ref --mutate skip-release
	! dune exec bin/dtx_cli.exe -- explore --scenario ref --two-phase \
	  --mutate commit-reorder

# Static effect-discipline lint: every module-level mutable static
# reachable from the parallel tick must be defer-routed, domain-local or
# justified in lib/race/race_allowlist (stale entries fail too).
lint:
	dune exec bin/dtx_cli.exe -- lint

# Dynamic race detector over the real workloads: chaos, explore and a
# scale run under DTX_RACE=1 with a 4-domain parallel tick must report
# zero findings, and the detector must not perturb the output (the scale
# run is cmp'd against a detector-off run of the same configuration).
race-smoke:
	DTX_RACE=1 DTX_DOMAINS=4 dune exec bin/dtx_cli.exe -- chaos --smoke \
	  > _build/race_chaos.out
	DTX_RACE=1 DTX_DOMAINS=4 dune exec bin/dtx_cli.exe -- explore \
	  --scenario ref > _build/race_explore.out
	DTX_RACE=1 DTX_DOMAINS=4 dune exec bin/dtx_cli.exe -- scale --sites 50 \
	  --clients 200 --no-timing > _build/race_scale.out
	DTX_DOMAINS=4 dune exec bin/dtx_cli.exe -- scale --sites 50 \
	  --clients 200 --no-timing > _build/race_scale_off.out
	cmp _build/race_scale.out _build/race_scale_off.out

# Seeded races both layers must catch. The dynamic harness bypasses
# Sim.defer for one effect kind on a worker domain; the lint variants
# inject fixture modules whose site-tagged closures mutate statics
# directly (or drop the allowlist). `!` inverts: this target fails if
# any seeded race slips through.
race-mutations:
	! dune exec bin/dtx_cli.exe -- race --mutate direct-send
	! dune exec bin/dtx_cli.exe -- race --mutate undeferred-counter
	! dune exec bin/dtx_cli.exe -- race --mutate cross-domain-intern
	! dune exec bin/dtx_cli.exe -- lint --mutate un-deferred-send
	! dune exec bin/dtx_cli.exe -- lint --mutate un-deferred-counter
	! dune exec bin/dtx_cli.exe -- lint --mutate cross-domain-intern
	! dune exec bin/dtx_cli.exe -- lint --mutate record-static
	! dune exec bin/dtx_cli.exe -- lint --mutate drop-allowlist

# Symbolic soundness certifier (Dtx_cert): lock-coverage soundness of every
# registered protocol against the semantic conflict oracle, FSM
# exhaustiveness of the coordinator/participant classification tables
# against reachability recordings, and registry-capability coherence.
# Exits non-zero on any violation; the JSON report lands on stdout.
cert:
	dune exec bin/dtx_cli.exe -- cert

# Same run with the 60 s universe-pass budget enforced — part of
# `make check` (the certifier records its runtime in the report and fails
# itself when the bounded-universe pass exceeds the budget).
cert-smoke:
	dune exec bin/dtx_cli.exe -- cert --max-seconds 60 > /dev/null

# The certifier's self-test: each seeded fault must produce a non-zero
# exit. `!` inverts, so this target fails if a fault certifies clean.
cert-mutations:
	! dune exec bin/dtx_cli.exe -- cert --mutate flip-compat-bit > /dev/null
	! dune exec bin/dtx_cli.exe -- cert --mutate drop-handler > /dev/null
	! dune exec bin/dtx_cli.exe -- cert --mutate wrong-caps > /dev/null
	! dune exec bin/dtx_cli.exe -- cert --mutate weaken-commute > /dev/null

clean:
	dune clean
