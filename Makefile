# Convenience targets. `make check` is the gate a change must pass.
# (ocamlformat is not pinned in this environment, so formatting is not
# part of the gate; add it here if/when the binary is available.)

.PHONY: check build test bench clean

check: build test

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe -- quick

clean:
	dune clean
