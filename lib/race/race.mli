(** Dynamic effect-discipline (determinism-race) detector for the
    domain-parallel simulator tick.

    The parallel tick's byte-identical-replay guarantee rests on a
    convention: a site-tagged event action running inside a parallel
    section may touch only its own site's state, and must route every
    shared-state effect through {!Dtx_sim.Sim.defer} so it replays on the
    main domain in sequence order. This module checks that convention at
    run time with epoch-based shadow cells — a FastTrack-style
    happens-before detector specialised to the tick structure:

    - an {e epoch} spans one parallel section (every batch of same-time
      site-tagged events that actually fans out over the domain pool);
      the tick barrier on either side advances it;
    - the {e thread} of an access is the site group the executing event
      belongs to, not the physical domain — two groups of one batch
      {e may} run concurrently, so a same-epoch conflicting access pair
      from different groups is a discipline violation even if the pool
      happened to serialise them. Detection is therefore deterministic:
      it cannot miss a race because the scheduler got lucky;
    - two accesses to one cell conflict when they come from different
      groups of the same epoch and at least one is a write. Reads may
      share freely; anything performed through [Sim.defer] replays
      outside the epoch and never conflicts.

    Instrumented structures (the lock-table shards, [Net] counters and
    pending-delivery state, the intern tables, the calendar queue, the
    [Msg] encode buffer, [Stats] timelines) call {!read}/{!write} on
    their shadow cells. The hooks are a single load-and-branch when the
    detector is off ([DTX_RACE] unset), so instrumentation stays in
    production code permanently, like the tracer hooks. *)

type access = Read | Write

type finding = {
  f_cell : string;  (** label of the shadow cell both sides touched *)
  f_epoch : int;  (** parallel section (epoch) the conflict happened in *)
  f_site_a : int;  (** owning site of the first access's event group *)
  f_kind_a : access;
  f_ctx_a : string;  (** stack-side label passed by the first access *)
  f_site_b : int;  (** owning site of the conflicting access's group *)
  f_kind_b : access;
  f_ctx_b : string;
}

val enabled : unit -> bool
(** Whether the detector is recording. Initialised from [DTX_RACE=1] at
    program start; {!set_enabled} overrides it. *)

val set_enabled : bool -> unit
(** Turn the detector on or off at run time (tests and the seeded
    mutation harness; normal runs use the [DTX_RACE] environment
    variable). *)

(** {1 Shadow cells and hooks} *)

type cell

val cell : string -> cell
(** [cell label] allocates a shadow cell. One cell stands for one unit of
    shared mutable state (a lock-table shard, a counter block, an intern
    table); the label names it in findings and in the {!hot_cells}
    concentration report. Cells are cheap; allocate one per instance. *)

val read : ?ctx:string -> cell -> unit
(** Record a read of the state [cell] shadows. A no-op unless the
    detector is enabled {e and} the caller is executing a site group
    inside a parallel section. [?ctx] labels the access site for
    reports. *)

val write : ?ctx:string -> cell -> unit
(** Like {!read}, for a mutation. *)

(** {1 Tick wiring — called by {!Dtx_sim.Sim} only} *)

val epoch_begin : unit -> unit
(** Enter a parallel section: advances the epoch. Main-domain only. *)

val epoch_end : unit -> unit
(** Leave the parallel section. Accesses outside an epoch are ignored —
    they are serial by construction. *)

val enter_group : site:int -> unit
(** Mark the calling domain as executing [site]'s event group until
    {!leave_group}. Accesses with no group set are ignored. *)

val leave_group : unit -> unit

(** {1 Results} *)

val findings : unit -> finding list
(** Conflicts recorded since the last {!reset}, oldest first. At most one
    finding is kept per (cell, epoch) pair — the first conflicting pair —
    so a racy loop cannot flood the report. *)

val findings_count : unit -> int

val hot_cells : unit -> (string * int) list
(** Per-cell count of accesses observed inside parallel sections, sorted
    descending — where cross-domain sharing actually concentrates.
    Only cells with at least one in-epoch access appear. *)

val reset : unit -> unit
(** Drop all findings and per-cell state (labels and registrations stay). *)

val pp_finding : Format.formatter -> finding -> unit

val report : Format.formatter -> bool
(** Print a summary (findings, then the {!hot_cells} concentration table)
    and return [true] iff no findings were recorded. *)
