(** Static effect-discipline lint for the domain-parallel tick.

    Parses every [.ml] under the library root with compiler-libs,
    inventories module-level mutable bindings (refs, [Hashtbl]/[Buffer]/
    array/[Intern] tables created at module scope), and classifies each as
    parallel-reachable by a call-graph walk from the {e parallel roots}:
    every closure passed to [Sim.schedule]/[Sim.schedule_at] with a
    [~site] label, plus the manifest roots named in the allowlist file
    (the site-tagged message handlers). Call edges inside thunks routed
    through [Sim.defer] are skipped — deferred thunks replay on the main
    domain, so what they touch is serial by construction.

    The lint passes iff every parallel-reachable mutable static is either
    of a safe class (mutex/condvar, [Domain.DLS] keys) or listed in the
    allowlist with a justification; it also fails on stale allowlist
    entries, so the manifest cannot rot. See the [race_allowlist] file
    format there. *)

val run :
  ?ppf:Format.formatter ->
  root:string ->
  allowlist:string ->
  mutate:string option ->
  unit ->
  int
(** [run ~root ~allowlist ~mutate ()] lints every library under [root]
    (e.g. ["lib"]) against the allowlist file and returns an exit code
    (0 = clean). [mutate] injects a seeded violation for the lint's own
    certification: ["un-deferred-send"], ["un-deferred-counter"] and
    ["cross-domain-intern"] each add an in-memory fixture module whose
    site-tagged closure mutates a module-level static directly (the lint
    must flag it — exit non-zero); ["drop-allowlist"] ignores the
    manifest's allow entries (the repo's own justified statics must then
    surface as violations). A well-behaved fixture that routes its effect
    through [Sim.defer] is analyzed on every run and must never be
    flagged, pinning the false-positive direction too. *)
