(* Effect-discipline lint over the library sources. See lint.mli.

   The analysis is deliberately syntactic — compiler-libs parse trees, no
   typing pass — because the repo's discipline is syntactic too: shared
   statics are module-level [let]s, parallel entry points are the [~site]
   labelled schedule calls, and the escape hatch is literally the
   identifier [defer]. Name resolution covers exactly the idioms the code
   base uses (top-of-file [module X = Dtx_lib.Module] aliases, same-
   library module references, same-file submodules); anything it cannot
   resolve is a stdlib call or a dynamic call through a value, neither of
   which can reach a module-level static we didn't already see under its
   own name. Over-approximation is fine — a too-reachable static lands in
   the allowlist with a justification; silent under-reporting of the
   patterns the repo actually uses is what the seeded --mutate fixtures
   guard against. *)

module L = Longident

(* ---------------------------------------------------------------- model *)

type cls =
  | Mut  (* plain mutable state: needs proof of main-onlyness or an entry *)
  | Sync  (* Mutex/Condition: synchronisation primitive, safe to share *)
  | Dls  (* Domain.DLS key: per-domain by construction *)

type static_info = {
  s_display : string;
  s_loc : string;
  s_cls : cls;
  mutable s_par : bool;
  mutable s_witness : string;  (* what made it parallel-reachable *)
  mutable s_allowed : string option;  (* justification, if allowlisted *)
}

type fn_info = {
  f_display : string;
  mutable f_calls : string list;  (* resolved callee keys *)
  mutable f_uses : string list;  (* resolved static keys *)
}

(* Keys are "<dir>/<Module>[.<Sub>].<name>"; display names swap the dir
   for the capitalised dune library name ("locks/Table.last_doc" ->
   "Dtx_locks.Table.last_doc"). *)
type env = {
  fns : (string, fn_info) Hashtbl.t;
  statics : (string, static_info) Hashtbl.t;
  root : fn_info;  (* synthetic node: edges from every parallel region *)
  lib_dirs : (string, string) Hashtbl.t;  (* lowercased libname -> dir *)
  dir_libs : (string, string) Hashtbl.t;  (* dir -> libname *)
  dir_modules : (string, string list) Hashtbl.t;  (* dir -> [Module] *)
  mutable_labels : (string, unit) Hashtbl.t;
      (* label names declared [mutable] in any record type, so a plain
         record literal counts as mutable state without a typing pass *)
}

(* Per-file resolution state, rebuilt identically in both passes. *)
type fctx = {
  env : env;
  dir : string;
  modpath : string list;  (* [Module; Sub; ...] enclosing module path *)
  aliases : (string, string) Hashtbl.t;  (* local name -> key prefix *)
  submodules : (string, unit) Hashtbl.t;  (* same-file submodule names *)
  functor_tables : (string, unit) Hashtbl.t;  (* Hashtbl.Make-style *)
}

let key ctx path name = ctx.dir ^ "/" ^ String.concat "." (path @ [ name ])

let display env k =
  match String.index_opt k '/' with
  | None -> k
  | Some i ->
      let dir = String.sub k 0 i in
      let rest = String.sub k (i + 1) (String.length k - i - 1) in
      let lib =
        match Hashtbl.find_opt env.dir_libs dir with
        | Some lib -> String.capitalize_ascii lib
        | None -> String.capitalize_ascii dir
      in
      lib ^ "." ^ rest

let flatten lid =
  let rec go acc = function
    | L.Lident s -> s :: acc
    | L.Ldot (l, s) -> go (s :: acc) l
    | L.Lapply (l, _) -> go acc l
  in
  go [] lid

(* Resolve a (possibly qualified) identifier to a key, or None for
   stdlib identifiers, locals, and anything the repo idioms don't cover. *)
let resolve ctx parts =
  match parts with
  | [] -> None
  | [ name ] ->
      (* Unqualified: same module; inner scopes shadow outer, so try the
         innermost enclosing module path first. *)
      let rec try_path path =
        let k = key ctx path name in
        if Hashtbl.mem ctx.env.fns k || Hashtbl.mem ctx.env.statics k then
          Some k
        else
          match path with
          | [] -> None
          | _ ->
              try_path (List.filteri (fun i _ -> i < List.length path - 1) path)
      in
      try_path ctx.modpath
  | head :: rest -> (
      let join dir mods = Some (dir ^ "/" ^ String.concat "." mods) in
      match Hashtbl.find_opt ctx.aliases head with
      | Some prefix -> Some (prefix ^ "." ^ String.concat "." rest)
      | None ->
          if Hashtbl.mem ctx.submodules head then
            join ctx.dir (ctx.modpath @ (head :: rest))
          else
            let lowered = String.lowercase_ascii head in
            (match Hashtbl.find_opt ctx.env.lib_dirs lowered with
            | Some dir -> ( match rest with [] -> None | mods -> join dir mods)
            | None ->
                let same_lib =
                  match Hashtbl.find_opt ctx.env.dir_modules ctx.dir with
                  | Some mods -> List.mem head mods
                  | None -> false
                in
                if same_lib then join ctx.dir (head :: rest) else None))

(* ------------------------------------------------ creator classification *)

let mutable_makers =
  [ "Hashtbl"; "Buffer"; "Queue"; "Stack"; "Array"; "Bytes"; "Weak";
    "Atomic"; "Intern"; "Dpool"; "Calqueue"; "Heap" ]

let creator_of ctx parts =
  match List.rev parts with
  | "create" :: modl :: _ when modl = "Mutex" || modl = "Condition" ->
      Some Sync
  | "new_key" :: "DLS" :: _ -> Some Dls
  | name :: modl :: _
    when (name = "create" || name = "make" || name = "init")
         && (List.mem modl mutable_makers
            || Hashtbl.mem ctx.functor_tables modl) ->
      Some Mut
  | [ "ref" ] -> Some Mut
  | _ -> None

(* Scan a static's right-hand side for state constructors; the strongest
   class wins (a record holding a Hashtbl is mutable even if it also
   holds a DLS key). *)
let classify_static ctx e =
  let found = ref None in
  let note c =
    found :=
      match (!found, c) with
      | Some Mut, _ | _, Mut -> Some Mut
      | Some Dls, _ | _, Dls -> Some Dls
      | _ -> Some c
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_apply
              ({ pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ }, _) -> (
              match creator_of ctx (flatten txt) with
              | Some c -> note c
              | None -> ())
          | Parsetree.Pexp_record (fields, _) ->
              (* A plain record literal is mutable state whenever one of
                 its labels was declared [mutable] somewhere in the tree;
                 no creator call is involved, so the apply case above
                 never sees it. *)
              if
                List.exists
                  (fun (({ txt; _ } : L.t Location.loc), _) ->
                    match List.rev (flatten txt) with
                    | l :: _ -> Hashtbl.mem ctx.env.mutable_labels l
                    | [] -> false)
                  fields
              then note Mut
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e;
  !found

(* ------------------------------------------------------------ body scans *)

let last = function [] -> "" | parts -> List.nth parts (List.length parts - 1)

(* Names of local thunks handed to [defer] anywhere in this body. Their
   definitions (and the immediate-path [go ()] fallback calls) run on the
   main domain or replay there after the barrier, so the scan skips the
   bindings wholesale. *)
let deferred_thunks body =
  let names = Hashtbl.create 4 in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_apply
              ({ pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ }, args)
            when last (flatten txt) = "defer" ->
              List.iter
                (fun (_, (a : Parsetree.expression)) ->
                  match a.pexp_desc with
                  | Parsetree.Pexp_ident { txt = L.Lident n; _ } ->
                      Hashtbl.replace names n ()
                  | _ -> ())
                args
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it body;
  names

let is_function_expr (e : Parsetree.expression) =
  match e.pexp_desc with
  | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ -> true
  | _ -> false

(* Walk one top-level function body, attributing call/use edges to [fn] —
   or to the synthetic parallel root while inside a closure passed to a
   [~site]-labelled schedule call. *)
let scan_body ctx fn body =
  let suppressed = deferred_thunks body in
  let in_par = ref false in
  let target () = if !in_par then ctx.env.root else fn in
  let note_ident lid =
    match resolve ctx (flatten lid) with
    | None -> ()
    | Some k ->
        let t = target () in
        if Hashtbl.mem ctx.env.fns k then t.f_calls <- k :: t.f_calls;
        if Hashtbl.mem ctx.env.statics k then t.f_uses <- k :: t.f_uses
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; _ } -> note_ident txt
          | Parsetree.Pexp_apply
              (({ pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ } as head),
               args) -> (
              match last (flatten txt) with
              | "defer" ->
                  (* The thunk replays on the main domain: skip the whole
                     application (named thunks were already collected). *)
                  ()
              | ("schedule" | "schedule_at")
                when List.exists
                       (fun (l, _) -> l = Asttypes.Labelled "site")
                       args ->
                  (* A site-tagged event action: its closure may run on a
                     worker domain, so everything inside is parallel. *)
                  self.expr self head;
                  List.iter
                    (fun (_, (a : Parsetree.expression)) ->
                      if is_function_expr a then begin
                        let saved = !in_par in
                        in_par := true;
                        self.expr self a;
                        in_par := saved
                      end
                      else self.expr self a)
                    args
              | _ -> Ast_iterator.default_iterator.expr self e)
          | Parsetree.Pexp_let (_, vbs, cont) ->
              List.iter
                (fun (vb : Parsetree.value_binding) ->
                  let skip =
                    match vb.pvb_pat.ppat_desc with
                    | Parsetree.Ppat_var { txt = n; _ } ->
                        Hashtbl.mem suppressed n
                    | _ -> false
                  in
                  if not skip then self.expr self vb.pvb_expr)
                vbs;
              self.expr self cont
          | _ -> Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it body

(* ------------------------------------------------------------- file walk *)

let rec unwrap_constraint (e : Parsetree.expression) =
  match e.pexp_desc with
  | Parsetree.Pexp_constraint (e', _) -> unwrap_constraint e'
  | _ -> e

let binding_name (vb : Parsetree.value_binding) =
  match vb.pvb_pat.ppat_desc with
  | Parsetree.Ppat_var { txt = name; _ }
  | Parsetree.Ppat_constraint
      ({ ppat_desc = Parsetree.Ppat_var { txt = name; _ }; _ }, _) ->
      Some name
  | _ -> None

(* Record a [module X = ...] item into the file context; shared by both
   passes so resolution is identical. Returns the substructure to recurse
   into, if any. *)
let module_binding ctx name (me : Parsetree.module_expr) =
  match me.pmod_desc with
  | Parsetree.Pmod_ident { txt; _ } ->
      (match resolve ctx (flatten txt) with
      | Some k -> Hashtbl.replace ctx.aliases name k
      | None -> (
          (* alias straight to another library's module, e.g.
             [module Sim = Dtx_sim.Sim] *)
          match flatten txt with
          | head :: (_ :: _ as rest) -> (
              match
                Hashtbl.find_opt ctx.env.lib_dirs (String.lowercase_ascii head)
              with
              | Some dir ->
                  Hashtbl.replace ctx.aliases name
                    (dir ^ "/" ^ String.concat "." rest)
              | None -> ())
          | _ -> ()));
      None
  | Parsetree.Pmod_structure sub ->
      Hashtbl.replace ctx.submodules name ();
      Some sub
  | Parsetree.Pmod_apply _ ->
      (* Hashtbl.Make-style functor instantiation: its [create] makes
         mutable state. *)
      Hashtbl.replace ctx.functor_tables name ();
      None
  | _ -> None

(* Pass 0: collect the label names of every record field declared
   [mutable] anywhere in the tree. Runs over all files before pass 1, so
   a module-level record literal is recognised as mutable state no matter
   which file declared its type. Labels are matched by name alone — the
   lint has no typing pass — which can only over-approximate, and an
   over-approximated static that never becomes parallel-reachable is
   reported as ok. *)
let rec collect_mutable_labels env (items : Parsetree.structure) =
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Parsetree.Pstr_type (_, decls) ->
          List.iter
            (fun (d : Parsetree.type_declaration) ->
              match d.ptype_kind with
              | Parsetree.Ptype_record labels ->
                  List.iter
                    (fun (l : Parsetree.label_declaration) ->
                      if l.pld_mutable = Asttypes.Mutable then
                        Hashtbl.replace env.mutable_labels l.pld_name.txt ())
                    labels
              | _ -> ())
            decls
      | Parsetree.Pstr_module
          { pmb_expr = { pmod_desc = Parsetree.Pmod_structure sub; _ }; _ } ->
          collect_mutable_labels env sub
      | _ -> ())
    items

(* Pass 1: register every top-level function and mutable static, so
   cross-file references resolve regardless of file order. *)
let rec register_structure ctx items = List.iter (register_item ctx) items

and register_item ctx (item : Parsetree.structure_item) =
  match item.pstr_desc with
  | Parsetree.Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ }
    -> (
      match module_binding ctx name pmb_expr with
      | Some sub ->
          register_structure { ctx with modpath = ctx.modpath @ [ name ] } sub
      | None -> ())
  | Parsetree.Pstr_value (_, vbs) ->
      List.iter
        (fun (vb : Parsetree.value_binding) ->
          match binding_name vb with
          | None -> ()
          | Some name ->
              let rhs = unwrap_constraint vb.pvb_expr in
              let k = key ctx ctx.modpath name in
              if is_function_expr rhs then
                Hashtbl.replace ctx.env.fns k
                  { f_display = display ctx.env k; f_calls = []; f_uses = [] }
              else (
                match classify_static ctx rhs with
                | None -> ()
                | Some cls ->
                    let loc = vb.pvb_loc.Location.loc_start in
                    Hashtbl.replace ctx.env.statics k
                      {
                        s_display = display ctx.env k;
                        s_loc =
                          Printf.sprintf "%s:%d" loc.Lexing.pos_fname
                            loc.Lexing.pos_lnum;
                        s_cls = cls;
                        s_par = false;
                        s_witness = "";
                        s_allowed = None;
                      }))
        vbs
  | _ -> ()

(* Pass 2: scan function bodies for call and use edges. *)
let rec walk_structure ctx items = List.iter (walk_item ctx) items

and walk_item ctx (item : Parsetree.structure_item) =
  match item.pstr_desc with
  | Parsetree.Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ }
    -> (
      match module_binding ctx name pmb_expr with
      | Some sub ->
          walk_structure { ctx with modpath = ctx.modpath @ [ name ] } sub
      | None -> ())
  | Parsetree.Pstr_value (_, vbs) ->
      List.iter
        (fun (vb : Parsetree.value_binding) ->
          match binding_name vb with
          | None -> ()
          | Some name ->
              let rhs = unwrap_constraint vb.pvb_expr in
              if is_function_expr rhs then
                let k = key ctx ctx.modpath name in
                match Hashtbl.find_opt ctx.env.fns k with
                | Some fn -> scan_body ctx fn rhs
                | None -> ())
        vbs
  | _ -> ()

let make_fctx env dir modname =
  {
    env;
    dir;
    modpath = [ modname ];
    aliases = Hashtbl.create 8;
    submodules = Hashtbl.create 4;
    functor_tables = Hashtbl.create 2;
  }

(* ---------------------------------------------------------------- inputs *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let parse_source ~fname source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf fname;
  Parse.implementation lexbuf

(* The dune stanzas in this tree are simple enough for a scanner: every
   "(name x)" atom names a library. *)
let lib_names_of_dune source =
  let names = ref [] in
  let len = String.length source in
  let i = ref 0 in
  while !i < len do
    match String.index_from_opt source !i '(' with
    | None -> i := len
    | Some j ->
        let rest = String.sub source j (min (len - j) 80) in
        (try
           Scanf.sscanf rest "(name %s@)" (fun n ->
               names := String.trim n :: !names)
         with Scanf.Scan_failure _ | Failure _ | End_of_file -> ());
        i := j + 1
  done;
  List.rev !names

(* The detector's own directory is excluded: its shadow state is
   cross-domain by design, and the lint binary never runs in the tick. *)
let excluded_dir = "race"

type file = { fl_dir : string; fl_mod : string; fl_source : string }

let discover_files root env =
  let files = ref [] in
  let dirs = Sys.readdir root in
  Array.sort compare dirs;
  Array.iter
    (fun dir ->
      let dpath = Filename.concat root dir in
      if Sys.is_directory dpath && dir <> excluded_dir then begin
        let dune = Filename.concat dpath "dune" in
        (if Sys.file_exists dune then
           match lib_names_of_dune (read_file dune) with
           | lib :: _ ->
               Hashtbl.replace env.dir_libs dir lib;
               Hashtbl.replace env.lib_dirs (String.lowercase_ascii lib) dir
           | [] -> ());
        let mls =
          Sys.readdir dpath |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".ml")
          |> List.sort compare
        in
        Hashtbl.replace env.dir_modules dir
          (List.map
             (fun f -> String.capitalize_ascii (Filename.remove_extension f))
             mls);
        List.iter
          (fun f ->
            files :=
              {
                fl_dir = dir;
                fl_mod = String.capitalize_ascii (Filename.remove_extension f);
                fl_source = read_file (Filename.concat dpath f);
              }
              :: !files)
          mls
      end)
    dirs;
  List.rev !files

(* -------------------------------------------------------------- fixtures *)

(* A discipline-respecting module, linted on every run: its shared counter
   is only ever bumped through [Sim.defer], so flagging it would be a
   false positive — this pins the lint's precision. *)
let good_fixture =
  {|
module Sim = Dtx_sim.Sim

let counter = ref 0
let bump () = incr counter

let on_tick sim site =
  Sim.schedule sim ~site ~delay:1.0 (fun () ->
      let go () = bump () in
      if not (Sim.defer go) then go ())
|}

let bad_fixture = function
  | "un-deferred-send" ->
      Some
        {|
module Sim = Dtx_sim.Sim

let wire = Buffer.create 64
let transmit payload = Buffer.add_string wire payload

let on_tick sim site =
  Sim.schedule sim ~site ~delay:1.0 (fun () -> transmit "payload")
|}
  | "un-deferred-counter" ->
      Some
        {|
module Sim = Dtx_sim.Sim

let counter = ref 0
let bump () = incr counter

let on_tick sim site =
  Sim.schedule sim ~site ~delay:1.0 (fun () -> bump ())
|}
  | "cross-domain-intern" ->
      Some
        {|
module Sim = Dtx_sim.Sim
module Intern = Dtx_util.Intern

let syms = Intern.create "fixture"
let note name = ignore (Intern.intern syms name)

let on_tick sim site =
  Sim.schedule sim ~site ~delay:1.0 (fun () -> note "fresh-symbol")
|}
  | "record-static" ->
      (* A module-level mutable static built as a plain record literal —
         no Hashtbl.create/ref in sight — mutated from a site-tagged
         closure. Guards the Pexp_record inventory path. *)
      Some
        {|
module Sim = Dtx_sim.Sim

type wire_stats = { mutable sent : int; name : string }

let stats = { sent = 0; name = "wire" }
let bump () = stats.sent <- stats.sent + 1

let on_tick sim site =
  Sim.schedule sim ~site ~delay:1.0 (fun () -> bump ())
|}
  | _ -> None

(* ------------------------------------------------------------- allowlist *)

type manifest = {
  m_roots : string list;  (* display names of manifest root functions *)
  m_allow : (string * string) list;  (* display name, justification *)
}

let parse_allowlist path =
  let ic = open_in path in
  let roots = ref [] and allow = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line = "" || line.[0] = '#' then ()
       else
         match String.index_opt line ' ' with
         | None -> failwith ("race_allowlist: malformed line: " ^ line)
         | Some i -> (
             let kw = String.sub line 0 i in
             let rest =
               String.trim (String.sub line i (String.length line - i))
             in
             match kw with
             | "root" -> roots := rest :: !roots
             | "allow" -> (
                 match String.index_opt rest ' ' with
                 | None ->
                     failwith
                       ("race_allowlist: allow entry needs a justification: "
                      ^ line)
                 | Some j ->
                     let name = String.sub rest 0 j in
                     let why =
                       String.trim (String.sub rest j (String.length rest - j))
                     in
                     allow := (name, why) :: !allow)
             | _ -> failwith ("race_allowlist: unknown keyword: " ^ kw))
     done
   with End_of_file -> ());
  close_in ic;
  { m_roots = List.rev !roots; m_allow = List.rev !allow }

(* ------------------------------------------------------------------- run *)

let run ?(ppf = Format.std_formatter) ~root ~allowlist ~mutate () =
  let env =
    {
      fns = Hashtbl.create 512;
      statics = Hashtbl.create 64;
      root = { f_display = "<parallel-root>"; f_calls = []; f_uses = [] };
      lib_dirs = Hashtbl.create 32;
      dir_libs = Hashtbl.create 32;
      dir_modules = Hashtbl.create 32;
      mutable_labels = Hashtbl.create 64;
    }
  in
  let errors = ref 0 in
  let err fmt =
    Format.kasprintf
      (fun s ->
        incr errors;
        Format.fprintf ppf "lint: error: %s@." s)
      fmt
  in
  let files = discover_files root env in
  let fixtures =
    { fl_dir = "fixture"; fl_mod = "Fixture_good"; fl_source = good_fixture }
    ::
    (match mutate with
    | Some kind -> (
        match bad_fixture kind with
        | Some src ->
            [ { fl_dir = "fixture"; fl_mod = "Fixture_bad"; fl_source = src } ]
        | None ->
            if kind <> "drop-allowlist" then err "unknown mutation %S" kind;
            [])
    | None -> [])
  in
  Hashtbl.replace env.dir_modules "fixture"
    (List.map (fun f -> f.fl_mod) fixtures);
  Hashtbl.replace env.dir_libs "fixture" "fixture";
  let files = files @ fixtures in
  let parsed =
    List.filter_map
      (fun fl ->
        let fname = fl.fl_dir ^ "/" ^ fl.fl_mod ^ ".ml" in
        match parse_source ~fname fl.fl_source with
        | ast -> Some (fl, ast)
        | exception exn ->
            err "cannot parse %s: %s" fname (Printexc.to_string exn);
            None)
      files
  in
  List.iter (fun (_, ast) -> collect_mutable_labels env ast) parsed;
  List.iter
    (fun (fl, ast) ->
      register_structure (make_fctx env fl.fl_dir fl.fl_mod) ast)
    parsed;
  List.iter
    (fun (fl, ast) -> walk_structure (make_fctx env fl.fl_dir fl.fl_mod) ast)
    parsed;
  let manifest =
    match parse_allowlist allowlist with
    | m -> m
    | exception exn ->
        err "%s" (Printexc.to_string exn);
        { m_roots = []; m_allow = [] }
  in
  (* manifest roots: resolve display names back to keys *)
  let fn_by_display want =
    Hashtbl.fold
      (fun k f acc ->
        match acc with
        | Some _ -> acc
        | None -> if f.f_display = want then Some k else None)
      env.fns None
  in
  let static_by_display want =
    Hashtbl.fold
      (fun _ s acc ->
        match acc with
        | Some _ -> acc
        | None -> if s.s_display = want then Some s else None)
      env.statics None
  in
  List.iter
    (fun r ->
      match fn_by_display r with
      | Some k -> env.root.f_calls <- k :: env.root.f_calls
      | None -> err "manifest root %s matches no function" r)
    manifest.m_roots;
  (* reachability from the parallel root *)
  let reached = Hashtbl.create 256 in
  let queue = Queue.create () in
  let mark_uses witness fn =
    List.iter
      (fun sk ->
        match Hashtbl.find_opt env.statics sk with
        | Some s when not s.s_par ->
            s.s_par <- true;
            s.s_witness <- witness
        | _ -> ())
      fn.f_uses
  in
  mark_uses "a ~site-tagged event closure" env.root;
  List.iter (fun k -> Queue.add k queue) env.root.f_calls;
  while not (Queue.is_empty queue) do
    let k = Queue.pop queue in
    if not (Hashtbl.mem reached k) then begin
      Hashtbl.replace reached k ();
      match Hashtbl.find_opt env.fns k with
      | None -> ()
      | Some fn ->
          mark_uses fn.f_display fn;
          List.iter (fun k' -> Queue.add k' queue) fn.f_calls
    end
  done;
  (* allow entries are checked against the reachability verdicts: an entry
     that names nothing, or names a static the walk no longer reaches, is
     stale and fails the lint so the manifest cannot rot *)
  let drop_allow = mutate = Some "drop-allowlist" in
  List.iter
    (fun (name, why) ->
      match static_by_display name with
      | None -> err "stale allowlist entry: %s matches no mutable static" name
      | Some s ->
          if not s.s_par then
            err
              "stale allowlist entry: %s is not parallel-reachable — remove \
               it"
              name
          else if not drop_allow then s.s_allowed <- Some why)
    manifest.m_allow;
  (* verdicts *)
  let all_statics =
    Hashtbl.fold (fun _ s acc -> s :: acc) env.statics []
    |> List.sort (fun a b -> compare a.s_display b.s_display)
  in
  let violations = ref 0 in
  List.iter
    (fun s ->
      match s.s_cls with
      | Sync ->
          Format.fprintf ppf "lint: ok   %-36s sync primitive@." s.s_display
      | Dls ->
          Format.fprintf ppf "lint: ok   %-36s domain-local (DLS)@."
            s.s_display
      | Mut ->
          if not s.s_par then
            Format.fprintf ppf
              "lint: ok   %-36s main-domain only (unreachable from parallel \
               roots)@."
              s.s_display
          else (
            match s.s_allowed with
            | Some why ->
                Format.fprintf ppf "lint: ok   %-36s allowlisted: %s@."
                  s.s_display why
            | None ->
                incr violations;
                Format.fprintf ppf
                  "lint: FAIL %-36s (%s) parallel-reachable mutable static, \
                   via %s — route it through Sim.defer or justify it in the \
                   race_allowlist@."
                  s.s_display s.s_loc s.s_witness))
    all_statics;
  Format.fprintf ppf
    "lint: %d file(s), %d function(s), %d mutable static(s), %d \
     parallel-reachable, %d violation(s), %d error(s)@."
    (List.length parsed) (Hashtbl.length env.fns)
    (Hashtbl.length env.statics)
    (List.length (List.filter (fun s -> s.s_par) all_statics))
    !violations !errors;
  if !violations > 0 || !errors > 0 then 1 else 0
