(* Epoch-based effect-discipline detector. See race.mli for the model.

   The hot path (detector off, or on but outside a parallel section) is a
   ref load plus at most two atomic loads and a DLS read — comparable to
   the tracer hooks that already live on these paths. All bookkeeping for
   in-epoch accesses runs under one global mutex: parallel sections fan
   out over at most a handful of domains and the instrumented operations
   are themselves mutex- or defer-mediated, so a single lock is not a
   bottleneck and keeps the shadow state trivially consistent. *)

type access = Read | Write

type finding = {
  f_cell : string;
  f_epoch : int;
  f_site_a : int;
  f_kind_a : access;
  f_ctx_a : string;
  f_site_b : int;
  f_kind_b : access;
  f_ctx_b : string;
}

(* One side of an access pair, as remembered inside a cell. *)
type probe = { p_site : int; p_kind : access; p_ctx : string }

type cell = {
  label : string;
  (* Epoch the per-epoch fields below belong to; stale fields are
     re-initialised lazily on the first access of a new epoch. *)
  mutable c_epoch : int;
  mutable first : probe; (* first access of the epoch *)
  mutable other : probe option; (* first access from a second site *)
  mutable writer : probe option; (* first write of the epoch *)
  mutable flagged : bool; (* a finding was already recorded this epoch *)
  mutable accesses : int; (* cumulative in-epoch accesses (hot_cells) *)
}

let enabled_flag =
  ref (match Sys.getenv_opt "DTX_RACE" with Some "1" -> true | _ -> false)

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* Epoch counter and in-section flag. Written only by the main domain at
   the tick barrier; the barrier's own synchronisation (the pool's mutex
   hand-off) publishes them to the workers, but Atomic keeps the
   cross-domain reads well-defined on their own. *)
let epoch = Atomic.make 0
let in_par = Atomic.make false

(* Site group the current domain is executing, or -1 when none. *)
let site_key = Domain.DLS.new_key (fun () -> -1)

let lock = Mutex.create ()
let cells : cell list ref = ref [] (* registry, for hot_cells/reset *)
let findings_rev : finding list ref = ref []
let findings_n = ref 0
let max_findings = 200

let no_probe = { p_site = -1; p_kind = Read; p_ctx = "" }

let cell label =
  let c =
    {
      label;
      c_epoch = -1;
      first = no_probe;
      other = None;
      writer = None;
      flagged = false;
      accesses = 0;
    }
  in
  Mutex.lock lock;
  cells := c :: !cells;
  Mutex.unlock lock;
  c

let add_finding c ep (a : probe) (b : probe) =
  c.flagged <- true;
  incr findings_n;
  if !findings_n <= max_findings then
    findings_rev :=
      {
        f_cell = c.label;
        f_epoch = ep;
        f_site_a = a.p_site;
        f_kind_a = a.p_kind;
        f_ctx_a = a.p_ctx;
        f_site_b = b.p_site;
        f_kind_b = b.p_kind;
        f_ctx_b = b.p_ctx;
      }
      :: !findings_rev

(* Core rule: two same-epoch accesses conflict iff they come from
   different site groups and at least one is a write. We keep just enough
   history per (cell, epoch) to find a conflicting partner for any new
   access — the first access, the first access from a second site, and
   the first write — and report the first conflicting pair only. *)
let record kind ctx c =
  let site = Domain.DLS.get site_key in
  if site >= 0 && Atomic.get in_par then begin
    let ep = Atomic.get epoch in
    let p = { p_site = site; p_kind = kind; p_ctx = ctx } in
    Mutex.lock lock;
    if c.c_epoch <> ep then begin
      c.c_epoch <- ep;
      c.first <- p;
      c.other <- None;
      c.writer <- (if kind = Write then Some p else None);
      c.flagged <- false;
      c.accesses <- c.accesses + 1
    end
    else begin
      c.accesses <- c.accesses + 1;
      if not c.flagged then begin
        (match kind with
        | Write ->
            (* Any earlier access from a different site conflicts. *)
            if c.first.p_site <> site then add_finding c ep c.first p
            else begin
              match c.other with
              | Some o -> add_finding c ep o p
              | None -> ()
            end
        | Read -> (
            (* Only an earlier write from a different site conflicts. *)
            match c.writer with
            | Some w when w.p_site <> site -> add_finding c ep w p
            | _ -> ()));
        if c.other = None && c.first.p_site <> site then c.other <- Some p;
        if c.writer = None && kind = Write then c.writer <- Some p
      end
    end;
    Mutex.unlock lock
  end

let read ?(ctx = "read") c = if !enabled_flag then record Read ctx c
let write ?(ctx = "write") c = if !enabled_flag then record Write ctx c

let epoch_begin () =
  if !enabled_flag then begin
    Atomic.incr epoch;
    Atomic.set in_par true
  end

let epoch_end () = if !enabled_flag then Atomic.set in_par false
let enter_group ~site = if !enabled_flag then Domain.DLS.set site_key site
let leave_group () = if !enabled_flag then Domain.DLS.set site_key (-1)

let findings () =
  Mutex.lock lock;
  let fs = List.rev !findings_rev in
  Mutex.unlock lock;
  fs

let findings_count () = !findings_n

let hot_cells () =
  Mutex.lock lock;
  (* Aggregate by label: instance-per-site cells (each site's lock table,
     say) report as one line. *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      if c.accesses > 0 then
        let prev = Option.value ~default:0 (Hashtbl.find_opt tbl c.label) in
        Hashtbl.replace tbl c.label (prev + c.accesses))
    !cells;
  Mutex.unlock lock;
  let hot = Hashtbl.fold (fun label n acc -> (label, n) :: acc) tbl [] in
  List.sort (fun (la, a) (lb, b) -> compare (b, la) (a, lb)) hot

let reset () =
  Mutex.lock lock;
  findings_rev := [];
  findings_n := 0;
  List.iter
    (fun c ->
      c.c_epoch <- -1;
      c.first <- no_probe;
      c.other <- None;
      c.writer <- None;
      c.flagged <- false;
      c.accesses <- 0)
    !cells;
  Mutex.unlock lock

let pp_access ppf = function
  | Read -> Format.pp_print_string ppf "read"
  | Write -> Format.pp_print_string ppf "write"

let pp_finding ppf f =
  Format.fprintf ppf
    "race: cell %S epoch %d: site %d %a (%s) vs site %d %a (%s)" f.f_cell
    f.f_epoch f.f_site_a pp_access f.f_kind_a f.f_ctx_a f.f_site_b pp_access
    f.f_kind_b f.f_ctx_b

let report ppf =
  let fs = findings () in
  let n = findings_count () in
  List.iter (fun f -> Format.fprintf ppf "%a@." pp_finding f) fs;
  if n > List.length fs then
    Format.fprintf ppf "race: ... %d further findings suppressed@."
      (n - List.length fs);
  (match hot_cells () with
  | [] -> Format.fprintf ppf "race: no shared-state accesses in parallel sections@."
  | hot ->
      Format.fprintf ppf "race: in-epoch access concentration:@.";
      List.iter
        (fun (label, count) ->
          Format.fprintf ppf "race:   %-28s %d@." label count)
        hot);
  Format.fprintf ppf "race: %d finding%s@." n (if n = 1 then "" else "s");
  n = 0
