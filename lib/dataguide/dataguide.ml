module Node = Dtx_xml.Node
module Doc = Dtx_xml.Doc
module Ast = Dtx_xpath.Ast

type node = {
  dg_id : int;
  label : string;
  parent : node option;
  children : (string, node) Hashtbl.t;
  mutable target_count : int;
}

type t = {
  doc_name : string;
  root : node;
  by_id : (int, node) Hashtbl.t;
  mutable next_id : int;
  mutable version : int;
  mutable shape_version : int;
}

let version t = t.version
let shape_version t = t.shape_version

let new_node t ~label ~parent =
  let n =
    { dg_id = t.next_id; label; parent; children = Hashtbl.create 4; target_count = 0 }
  in
  t.next_id <- t.next_id + 1;
  t.version <- t.version + 1;
  t.shape_version <- t.shape_version + 1;
  Hashtbl.replace t.by_id n.dg_id n;
  n

let create ~doc_name ~root_label =
  let t =
    { doc_name;
      root =
        { dg_id = 0; label = root_label; parent = None;
          children = Hashtbl.create 4; target_count = 0 };
      by_id = Hashtbl.create 64;
      next_id = 1;
      version = 0;
      shape_version = 0 }
  in
  Hashtbl.replace t.by_id 0 t.root;
  t

let size t = Hashtbl.length t.by_id

let find_path t labels =
  match labels with
  | [] -> None
  | first :: rest ->
    if first <> t.root.label then None
    else
      let rec walk node = function
        | [] -> Some node
        | l :: rest ->
          (match Hashtbl.find_opt node.children l with
           | Some c -> walk c rest
           | None -> None)
      in
      walk t.root rest

let ensure_path t labels =
  match labels with
  | [] -> invalid_arg "Dataguide.ensure_path: empty path"
  | first :: rest ->
    if first <> t.root.label then
      invalid_arg
        (Printf.sprintf "Dataguide.ensure_path: root label %s <> %s" first
           t.root.label);
    let rec walk node = function
      | [] -> node
      | l :: rest ->
        let child =
          match Hashtbl.find_opt node.children l with
          | Some c -> c
          | None ->
            let c = new_node t ~label:l ~parent:(Some node) in
            Hashtbl.replace node.children l c;
            c
        in
        walk child rest
    in
    walk t.root rest

let add_instance t labels =
  let n = ensure_path t labels in
  n.target_count <- n.target_count + 1;
  t.version <- t.version + 1;
  n

let remove_instance t labels =
  match find_path t labels with
  | None ->
    invalid_arg
      ("Dataguide.remove_instance: unknown path " ^ String.concat "/" labels)
  | Some n ->
    if n.target_count <= 0 then
      invalid_arg "Dataguide.remove_instance: count already zero";
    n.target_count <- n.target_count - 1;
    t.version <- t.version + 1

let add_subtree t (root : Node.t) =
  Node.iter (fun n -> ignore (add_instance t (Node.label_path n))) root

let remove_subtree t (root : Node.t) =
  Node.iter (fun n -> remove_instance t (Node.label_path n)) root

let build (doc : Doc.t) =
  let t = create ~doc_name:doc.Doc.name ~root_label:doc.Doc.root.Node.label in
  add_subtree t doc.Doc.root;
  t

let ancestors n =
  let rec loop n acc =
    match n.parent with None -> List.rev acc | Some p -> loop p (p :: acc)
  in
  loop n []

let descendants_or_self n =
  let rec walk n acc =
    let acc = n :: acc in
    Hashtbl.fold (fun _ c acc -> walk c acc) n.children acc
  in
  List.rev (walk n [])

let label_path n =
  let rec loop n acc =
    match n.parent with None -> n.label :: acc | Some p -> loop p (n.label :: acc)
  in
  loop n []

let children_list n = Hashtbl.fold (fun _ c acc -> c :: acc) n.children []

let test_matches (test : Ast.test) n =
  match test with
  | Ast.Name name -> n.label = name
  | Ast.Wildcard -> not (String.length n.label > 0 && n.label.[0] = '@')
  | Ast.Any -> true

let match_path t (p : Ast.path) =
  (* Structural matching over the trie; predicates are ignored here — the
     protocol derives predicate lock targets via Ast.predicate_paths. *)
  let step_candidates ~leading_absolute (axis : Ast.axis) ctx =
    match axis with
    | Ast.Child -> children_list ctx
    | Ast.Descendant ->
      if leading_absolute then descendants_or_self ctx
      else List.concat_map descendants_or_self (children_list ctx)
    | Ast.Parent -> (match ctx.parent with Some p -> [ p ] | None -> [])
    | Ast.Self -> [ ctx ]
  in
  let rec eval ~leading_absolute ctxs (steps : Ast.step list) =
    match steps with
    | [] -> ctxs
    | step :: rest ->
      let seen = Hashtbl.create 16 in
      let out = ref [] in
      List.iter
        (fun ctx ->
          let cands = step_candidates ~leading_absolute step.Ast.axis ctx in
          List.iter
            (fun n ->
              if test_matches step.Ast.test n && not (Hashtbl.mem seen n.dg_id)
              then begin
                Hashtbl.add seen n.dg_id ();
                out := n :: !out
              end)
            cands)
        ctxs;
      eval ~leading_absolute:false (List.rev !out) rest
  in
  match p.Ast.steps with
  | [] -> if p.Ast.absolute then [ t.root ] else []
  | first :: rest ->
    if p.Ast.absolute then
      match first.Ast.axis with
      | Ast.Child ->
        if test_matches first.Ast.test t.root then
          eval ~leading_absolute:false [ t.root ] rest
        else []
      | Ast.Descendant -> eval ~leading_absolute:true [ t.root ] p.Ast.steps
      | Ast.Parent ->
        (* The (virtual) document node has no parent. *)
        []
      | Ast.Self -> eval ~leading_absolute:false [ t.root ] rest
    else
      (* Relative paths are resolved from the root element's children, the
         same convention as Dtx_xpath.Eval.select. *)
      eval ~leading_absolute:false [ t.root ] p.Ast.steps

let prune t =
  let removed = ref 0 in
  let rec go n =
    (* Depth-first: prune children first so empty chains collapse. *)
    let kids = children_list n in
    List.iter go kids;
    Hashtbl.iter
      (fun label c ->
        if c.target_count = 0 && Hashtbl.length c.children = 0 then begin
          Hashtbl.remove n.children label;
          Hashtbl.remove t.by_id c.dg_id;
          incr removed
        end)
      (Hashtbl.copy n.children)
  in
  go t.root;
  if !removed > 0 then begin
    t.version <- t.version + !removed;
    t.shape_version <- t.shape_version + !removed
  end;
  !removed

let validate t (doc : Doc.t) =
  (* Recompute expected counts from the document and compare. *)
  let expected = Hashtbl.create 256 in
  Node.iter
    (fun n ->
      let key = String.concat "\x00" (Node.label_path n) in
      let cur = match Hashtbl.find_opt expected key with Some c -> c | None -> 0 in
      Hashtbl.replace expected key (cur + 1))
    doc.Doc.root;
  let error = ref None in
  let fail fmt =
    Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt
  in
  let rec check n =
    let key = String.concat "\x00" (label_path n) in
    let want = match Hashtbl.find_opt expected key with Some c -> c | None -> 0 in
    if n.target_count <> want then
      fail "path %s: count %d, document has %d"
        (String.concat "/" (label_path n))
        n.target_count want;
    Hashtbl.remove expected key;
    Hashtbl.iter (fun _ c -> check c) n.children
  in
  check t.root;
  Hashtbl.iter
    (fun key count ->
      if count > 0 then
        fail "document path %s (count %d) missing from DataGuide"
          (String.concat "/" (String.split_on_char '\x00' key))
          count)
    expected;
  match !error with None -> Ok () | Some e -> Error e

let pp ppf t =
  let rec go indent n =
    Format.fprintf ppf "%s%s #%d (x%d)@." indent n.label n.dg_id n.target_count;
    let kids =
      children_list n |> List.sort (fun a b -> compare a.label b.label)
    in
    List.iter (go (indent ^ "  ")) kids
  in
  go "" t.root
