(** Strong DataGuides (Goldman & Widom, VLDB '97) for tree-shaped XML.

    A DataGuide is a summary tree with exactly one node per distinct label
    path of the document. For trees it is a trie of label paths, so it is
    typically orders of magnitude smaller than the document — which is
    precisely why XDGL locks DataGuide nodes instead of document nodes: a
    query or update needs locks proportional to the number of distinct label
    paths it touches, not the number of matching document nodes.

    Each DataGuide node keeps a [target_count]: how many document nodes map
    to this label path. Counts are maintained incrementally as the document
    is updated, and a node whose count drops to zero stays in place (locks
    may still reference it); {!prune} removes such husks when nothing
    references them anymore. *)

type node = {
  dg_id : int;  (** unique within one DataGuide *)
  label : string;
  parent : node option;
  children : (string, node) Hashtbl.t;  (** label → child *)
  mutable target_count : int;  (** document nodes mapping here *)
}

type t = {
  doc_name : string;
  root : node;
  by_id : (int, node) Hashtbl.t;
  mutable next_id : int;
  mutable version : int;
      (** bumped on every mutation (node creation, instance count change,
          prune) — lock-derivation caches key on it *)
  mutable shape_version : int;
      (** bumped only when the trie's {e shape} changes — a node created or
          pruned, i.e. a label path appearing or vanishing. Instance-count
          changes on existing paths leave it alone. *)
}

val build : Dtx_xml.Doc.t -> t
(** [build doc] constructs the strong DataGuide of [doc]. *)

val version : t -> int
(** Monotonic mutation counter: changes whenever the trie's structure or any
    [target_count] changes, so a cached value derived from the DataGuide is
    valid iff the version it was computed at is still current. *)

val shape_version : t -> int
(** Monotonic {e shape} counter: changes only when label paths appear or
    vanish — the only mutations that can change which DataGuide nodes a
    path expression resolves to. The optimistic protocol's validation
    snapshots this: footprints derived before a shape change may be stale,
    while instance-count churn on existing paths cannot invalidate them. *)

val size : t -> int
(** Number of DataGuide nodes (distinct label paths). *)

val find_path : t -> string list -> node option
(** [find_path g labels] looks up the node for a root-to-node label path
    (the first label must be the root's). *)

val ensure_path : t -> string list -> node
(** Like {!find_path} but creates missing nodes (with zero counts) along the
    way. @raise Invalid_argument if the first label differs from the root. *)

val add_instance : t -> string list -> node
(** [add_instance g labels] registers one more document node at this label
    path (creating DataGuide nodes as needed) and returns its node. *)

val remove_instance : t -> string list -> unit
(** Inverse of {!add_instance}. @raise Invalid_argument if the path is
    unknown or its count is already zero. *)

val add_subtree : t -> Dtx_xml.Node.t -> unit
(** Register every node of a document subtree (used after an insert). *)

val remove_subtree : t -> Dtx_xml.Node.t -> unit
(** Unregister every node of a document subtree (used after a remove). *)

val ancestors : node -> node list
(** Ancestors from parent up to the root, nearest first. *)

val descendants_or_self : node -> node list
(** The DataGuide subtree under a node, in preorder. *)

val label_path : node -> string list
(** Root-to-node labels. *)

val match_path : t -> Dtx_xpath.Ast.path -> node list
(** [match_path g p] is the set of DataGuide nodes whose label paths can
    match [p] {e structurally} — predicates are ignored (a predicate can only
    narrow the document result, and locks must cover every node the query
    might inspect). This is XDGL's lock-target computation for the main
    path. *)

val prune : t -> int
(** Remove leaf nodes with [target_count = 0]; returns how many were
    removed. *)

val validate : t -> Dtx_xml.Doc.t -> (unit, string) result
(** Check that the DataGuide is exactly the strong DataGuide of [doc]: every
    document label path present with the right count, and no extra non-zero
    counts. *)

val pp : Format.formatter -> t -> unit
(** Multi-line tree rendering, mirroring the paper's Fig. 5. *)
