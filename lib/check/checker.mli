(** Online trace analyzer for DTX runs.

    A checker attaches to a {!Dtx.Cluster} by installing the trace sinks
    the instrumented layers expose (lock table, network, coordinator FSM,
    participants, simulator clock) and mirrors just enough state to verify,
    while the simulation runs:

    - {b s2pl-discipline} — no lock acquired after a transaction's
      end-of-transaction release at a site (Strict 2PL);
    - {b lock-compat} — every grant is compatible with the other holders
      under {!Dtx_locks.Mode.compatible};
    - {b lock-balance} — releases never exceed acquisitions, and nothing is
      still held when a transaction finishes at a site;
    - {b fsm-conformance} — coordinator phase transitions follow the
      documented machine, and protocol messages are only sent from the
      phases that may send them;
    - {b 2pc-order} / {b 2pc-prepare} — no Commit before every prepared
      participant delivered a yes vote, and no yes vote without a durably
      logged Prepared record (Algs. 5/6 + the 2PC extension);
    - {b atomic-undo} — a blocked multi-site operation's partial execution
      is undone everywhere before its transaction commits (Alg. 1
      l. 15-17);
    - {b deadlock-victim} — every Victim message corresponds to a real
      cycle in that detector round's unioned wait-for graph, and names its
      newest transaction — latest admission time, ties broken by the larger
      id, mirroring [Coordinator.newest_of] (Alg. 4);
    - {b sim-clock} — virtual time never decreases;
    - {b dedup} — a duplicated or retransmitted operation shipment is never
      executed twice at a site (at-most-once delivery);
    - {b partition} — no message is delivered across a link the installed
      fault-plan oracle ({!set_link_oracle}) says is severed;
    - {b recovery} — crash/restart honesty: an in-doubt transaction may
      only resolve as committed if a Commit was actually issued, must not
      resolve as aborted once its commit applied somewhere (no committed
      write is lost), and every in-doubt record must be resolved by the end
      of the run.

    {!finish} adds the end-of-run checks: {b serializability} (acyclic
    precedence graph over the committed history, via {!Dtx.History}),
    {b mode-lattice} ({!Lattice.check}), unresolved in-doubt records, and
    undischarged undo obligations. Violations carry the recent ring-buffer
    events relevant to the offending transaction — the minimal suffix a
    human needs. *)

(** The unified trace event, one constructor per instrumented layer. *)
type event =
  | Lock of { site : int; ev : Dtx_locks.Table.event }
  | Net of {
      src : int;
      dst : int;
      dir : Dtx_net.Net.dir;
      msg : Dtx_net.Msg.t;
    }
  | Phase of {
      txn : int;
      from_ : Dtx.Coordinator.phase option;
      to_ : Dtx.Coordinator.phase;
    }
  | Part of { site : int; ev : Dtx.Participant.event }

val pp_event : Format.formatter -> event -> unit

type violation = {
  v_invariant : string;  (** e.g. ["s2pl-discipline"], ["2pc-order"] *)
  v_txn : int option;
  v_site : int option;
  v_detail : string;
  v_time : float;  (** simulated ms at which the violation was detected *)
  v_suffix : (float * event) list;  (** recent relevant events, oldest first *)
}

val pp_violation : Format.formatter -> violation -> unit

val violation_json : violation -> string
(** One-line JSON object ([invariant]/[txn]/[site]/[time_ms]/[detail],
    suffix omitted) — the machine-readable verdict the explorer and CI
    gates aggregate. *)

type t

val create : ?ring:int -> ?suffix:int -> unit -> t
(** A fresh checker. [ring] (default 256) is the capacity of the circular
    trace buffer — how far back a violation report can look. [suffix]
    (default 30) caps how many of those events a report actually quotes;
    the schedule explorer passes small values for both, since it builds
    thousands of throwaway checkers and only ever prints the first
    violation's tail. @raise Invalid_argument if [ring < 1] or
    [suffix < 0]. *)

val attach : ?mutate:(event -> event option) -> t -> Dtx.Cluster.t -> unit
(** Attach to [cluster] with one {!Dtx.Cluster.attach_tracer} call (all
    five instrumented layers) and enable its history recording. Call before
    submitting transactions. [mutate] taps
    the event stream before the checker sees it — return [None] to hide an
    event, or a different event to corrupt it. The self-tests use it to
    prove the checker catches discipline violations (a hidden release, a
    hidden vote) without breaking the actual run. *)

val set_link_oracle :
  t -> (time:float -> src:int -> dst:int -> bool) option -> unit
(** Install the fault-plan reachability oracle behind the {b partition}
    invariant: the predicate returns [true] when the [src -> dst] link is
    severed (partition or crashed endpoint) at [time]. [None] (default)
    disables the check. *)

val emit : t -> time:float -> event -> unit
(** Feed one event directly (scripted schedules in tests — no cluster
    needed). *)

val finish : t -> violation list
(** Run the end-of-run checks and return every violation found, in
    detection order. *)

val violations : t -> violation list
(** Violations found so far, in detection order, without running the
    end-of-run checks. *)
