module Mode = Dtx_locks.Mode

(* The set of modes a mode conflicts with, as a bitmask computed from the
   compatibility predicate alone (never from [conflict_mask], which is one
   of the things under test). *)
let conflict_set compat m =
  List.fold_left
    (fun acc m' -> if compat m m' then acc else acc lor Mode.bit m')
    0 Mode.all

let subset a b = a land lnot b = 0

let pp_mask ppf mask =
  let names =
    List.filter_map
      (fun m -> if mask land Mode.bit m <> 0 then Some (Mode.to_string m) else None)
      Mode.all
  in
  Format.fprintf ppf "{%s}" (String.concat "," names)

let check_with ~compat ~conflict_mask ~intention_for () =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* 1. Symmetry: lock compatibility is an undirected relation. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if compat a b <> compat b a then
            err "compat not symmetric on (%s, %s): %b vs %b" (Mode.to_string a)
              (Mode.to_string b) (compat a b) (compat b a))
        Mode.all)
    Mode.all;
  (* 2. The derived bitmasks agree with the predicate on all 64 pairs —
     the lock table's fast path answers exactly what the slow path would. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let masked = conflict_mask a land Mode.bit b <> 0 in
          if masked = compat a b then
            err "conflict_mask disagrees with compat on (%s, %s)"
              (Mode.to_string a) (Mode.to_string b))
        Mode.all)
    Mode.all;
  (* 3. Exclusive modes conflict with everything (XDGL: X guards a modified
     node, XT a modified subtree). *)
  List.iter
    (fun x ->
      List.iter
        (fun m ->
          if compat x m then
            err "%s must conflict with every mode, but is compatible with %s"
              (Mode.to_string x) (Mode.to_string m))
        Mode.all)
    [ Mode.X; Mode.XT ];
  (* 4. IS is the weakest mode: compatible with everything except X/XT. *)
  List.iter
    (fun m ->
      let expected = m <> Mode.X && m <> Mode.XT in
      if compat Mode.IS m <> expected then
        err "IS vs %s: expected %s" (Mode.to_string m)
          (if expected then "compatible" else "conflicting"))
    Mode.all;
  (* 5. Intention hierarchy. IS <= IX (an IX holder announces at least as
     much as an IS holder), and every mode's required ancestor intention is
     no stronger than the mode itself: conflicts(intention_for m) is a
     subset of conflicts(m), otherwise escorting a lock up the DataGuide
     could block where the lock itself would not. *)
  let conflicts m = conflict_set compat m in
  if not (subset (conflicts Mode.IS) (conflicts Mode.IX)) then
    err "hierarchy: conflicts(IS)=%a not within conflicts(IX)=%a" pp_mask
      (conflicts Mode.IS) pp_mask (conflicts Mode.IX);
  List.iter
    (fun m ->
      let i = intention_for m in
      if not (Mode.is_intention i) then
        err "intention_for %s = %s is not an intention mode" (Mode.to_string m)
          (Mode.to_string i);
      if not (subset (conflicts i) (conflicts m)) then
        err "hierarchy: conflicts(%s)=%a not within conflicts(%s)=%a"
          (Mode.to_string i) pp_mask (conflicts i) (Mode.to_string m) pp_mask
          (conflicts m))
    Mode.all;
  match List.rev !errors with [] -> Ok () | es -> Error es

let check () =
  check_with ~compat:Mode.compatible ~conflict_mask:Mode.conflict_mask
    ~intention_for:Mode.intention_for ()
