(** Static checks on the XDGL mode lattice (paper §2, Fig. 4).

    Everything downstream — the lock table's bitmask fast path, the
    checker's grant-compatibility mirror, the intention escort — assumes
    the compatibility matrix has a handful of structural properties. This
    module verifies them exhaustively over the 8×8 mode square, so a bad
    edit to {!Dtx_locks.Mode} fails [make analyze] (and the build's test
    gate) instead of silently weakening isolation. *)

val check : unit -> (unit, string list) result
(** Check the live {!Dtx_locks.Mode} functions: compatibility symmetry,
    [conflict_mask] agreement on all 64 pairs, X/XT total conflict, IS
    minimality, and the intention hierarchy (IS ≤ IX; for every mode [m],
    conflicts([intention_for m]) ⊆ conflicts([m])). *)

val check_with :
  compat:(Dtx_locks.Mode.t -> Dtx_locks.Mode.t -> bool) ->
  conflict_mask:(Dtx_locks.Mode.t -> int) ->
  intention_for:(Dtx_locks.Mode.t -> Dtx_locks.Mode.t) ->
  unit ->
  (unit, string list) result
(** Same checks over caller-supplied functions — the self-test feeds
    deliberately corrupted matrices through this to prove the check can
    fail. *)
