module Sim = Dtx_sim.Sim
module Net = Dtx_net.Net
module Msg = Dtx_net.Msg
module Table = Dtx_locks.Table
module Mode = Dtx_locks.Mode
module Wfg = Dtx_locks.Wfg
module Coordinator = Dtx.Coordinator
module Participant = Dtx.Participant
module Cluster = Dtx.Cluster
module History = Dtx.History
module Site = Dtx.Site

type event =
  | Lock of { site : int; ev : Table.event }
  | Net of { src : int; dst : int; dir : Net.dir; msg : Msg.t }
  | Phase of {
      txn : int;
      from_ : Coordinator.phase option;
      to_ : Coordinator.phase;
    }
  | Part of { site : int; ev : Participant.event }

let txn_of = function
  | Lock { ev = Table.Acquired { txn; _ } | Table.Released { txn; _ }; _ } ->
    Some txn
  | Lock { ev = Table.Cleared; _ } -> None
  | Net { msg; _ } -> (
    match msg with
    | Msg.Op_ship { txn; _ }
    | Msg.Op_status { txn; _ }
    | Msg.Op_undo { txn; _ }
    | Msg.Prepare { txn }
    | Msg.Vote { txn; _ }
    | Msg.Commit { txn }
    | Msg.Abort { txn; _ }
    | Msg.End_ack { txn; _ }
    | Msg.Wake { txn }
    | Msg.Wound { txn }
    | Msg.Victim { txn }
    | Msg.Outcome_query { txn }
    | Msg.Outcome_reply { txn; _ } -> Some txn
    | Msg.Wfg_request | Msg.Wfg_reply _ -> None)
  | Phase { txn; _ } -> Some txn
  | Part
      { ev =
          ( Participant.Undone { txn; _ }
          | Participant.Prepared { txn }
          | Participant.Finished { txn; _ }
          | Participant.Executed { txn; _ }
          | Participant.Recovery_resolved { txn; _ } );
        _
      } -> Some txn
  | Part
      { ev =
          ( Participant.Crashed | Participant.Restarted
          | Participant.Recovery_begun _ );
        _
      } -> None

let pp_event ppf = function
  | Lock { site; ev } -> Format.fprintf ppf "site %d: %a" site Table.pp_event ev
  | Net { src; dst; dir; msg } ->
    Format.fprintf ppf "%s %d->%d: %a"
      (match dir with
       | Net.Send -> "send"
       | Net.Drop -> "drop"
       | Net.Deliver -> "deliver")
      src dst Msg.pp msg
  | Phase { txn; from_; to_ } ->
    Format.fprintf ppf "t%d: %s -> %s" txn
      (match from_ with
       | Some p -> Coordinator.phase_to_string p
       | None -> "(submitted)")
      (Coordinator.phase_to_string to_)
  | Part { site; ev } ->
    Format.fprintf ppf "site %d: %a" site Participant.pp_event ev

type violation = {
  v_invariant : string;
  v_txn : int option;
  v_site : int option;
  v_detail : string;
  v_time : float;
  v_suffix : (float * event) list;
}

let pp_violation ppf v =
  Format.fprintf ppf "@[<v>[%s]%s%s at %.2f ms: %s" v.v_invariant
    (match v.v_txn with Some id -> Printf.sprintf " t%d" id | None -> "")
    (match v.v_site with Some s -> Printf.sprintf " site %d" s | None -> "")
    v.v_time v.v_detail;
  if v.v_suffix <> [] then begin
    Format.fprintf ppf "@,offending event suffix:";
    List.iter
      (fun (time, ev) -> Format.fprintf ppf "@,  %8.2f  %a" time pp_event ev)
      v.v_suffix
  end;
  Format.fprintf ppf "@]"

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let violation_json v =
  let opt = function Some i -> string_of_int i | None -> "null" in
  Printf.sprintf
    "{\"invariant\":%s,\"txn\":%s,\"site\":%s,\"time_ms\":%.3f,\"detail\":%s}"
    (json_string v.v_invariant) (opt v.v_txn) (opt v.v_site) v.v_time
    (json_string v.v_detail)

(* All mirror state is keyed by plain tuples in polymorphic hashtables: the
   checker runs off the hot path, so clarity wins over interning. *)
type t = {
  ring : (float * event) option array;
  suffix_limit : int;
  mutable head : int;  (* next write slot *)
  mutable last_time : float;
  mutable violations : violation list;  (* newest first *)
  mutable history : History.t option;
  (* --- lock mirror --- *)
  counts : (int * int * Table.resource * Mode.t, int) Hashtbl.t;
      (* (site, txn, resource, mode) -> refcount *)
  txn_locks : (int * int, (Table.resource * Mode.t, unit) Hashtbl.t) Hashtbl.t;
  res_holders : (int * Table.resource, (int * Mode.t, unit) Hashtbl.t) Hashtbl.t;
  ended : (int * int, unit) Hashtbl.t;
      (* (site, txn): end-of-transaction release seen at this site *)
  (* --- coordinator FSM and 2PC mirror --- *)
  txn_phase : (int, Coordinator.phase) Hashtbl.t;
  prepare_sent : (int * int, unit) Hashtbl.t;  (* (txn, dst site) *)
  vote_yes : (int * int, unit) Hashtbl.t;  (* (txn, src site) *)
  vote_no : (int, unit) Hashtbl.t;
  prepared_logged : (int * int, unit) Hashtbl.t;  (* (site, txn) *)
  committed : (int, unit) Hashtbl.t;  (* saw a local commit apply *)
  (* --- all-or-nothing operation mirror --- *)
  granted_sites : (int * int * int, unit) Hashtbl.t;  (* (txn, attempt, site) *)
  undo_due : (int * int * int, unit) Hashtbl.t;  (* (txn, attempt, site) *)
  (* --- deadlock detector mirror --- *)
  mutable round_wfg : Wfg.t;
  mutable last_wfg_dst : int;
  birth : (int, float) Hashtbl.t;
      (* txn -> admission time (first Phase event), mirroring the
         coordinator's submission timestamps for the victim rule *)
  (* --- fault/recovery mirror --- *)
  executed : (int * int * int, unit) Hashtbl.t;
      (* (site, txn, seq): shipment executions, for the double-apply check;
         a site's entries die with it at Crashed (so did the effects) *)
  commit_issued : (int, unit) Hashtbl.t;  (* saw a Commit sent for txn *)
  recovery_pending : (int * int, unit) Hashtbl.t;  (* (site, txn) in doubt *)
  mutable link_cut : (time:float -> src:int -> dst:int -> bool) option;
      (* fault-plan oracle: is this link severed (partition or crash)? *)
}

let create ?(ring = 256) ?(suffix = 30) () =
  if ring < 1 then invalid_arg "Checker.create: ring must be positive";
  if suffix < 0 then invalid_arg "Checker.create: suffix must be non-negative";
  { ring = Array.make ring None;
    suffix_limit = suffix;
    head = 0;
    last_time = 0.0;
    violations = [];
    history = None;
    counts = Hashtbl.create 256;
    txn_locks = Hashtbl.create 64;
    res_holders = Hashtbl.create 256;
    ended = Hashtbl.create 64;
    txn_phase = Hashtbl.create 64;
    prepare_sent = Hashtbl.create 16;
    vote_yes = Hashtbl.create 16;
    vote_no = Hashtbl.create 16;
    prepared_logged = Hashtbl.create 16;
    committed = Hashtbl.create 64;
    granted_sites = Hashtbl.create 64;
    undo_due = Hashtbl.create 16;
    round_wfg = Wfg.create ();
    last_wfg_dst = min_int;
    birth = Hashtbl.create 64;
    executed = Hashtbl.create 64;
    commit_issued = Hashtbl.create 64;
    recovery_pending = Hashtbl.create 16;
    link_cut = None }

let set_link_oracle t o = t.link_cut <- o

let violations t = List.rev t.violations

(* The most recent ring-buffer events relevant to [txn] (events carrying no
   transaction id — clears, WFG traffic — are kept as context), capped so a
   report stays readable. This is the "minimal offending event suffix". *)
let suffix t ~txn =
  let cap = Array.length t.ring in
  let newest_first = ref [] in
  for i = 0 to cap - 1 do
    match t.ring.((t.head + i) mod cap) with
    | None -> ()
    | Some ((_, ev) as entry) ->
      let keep =
        match txn with
        | None -> true
        | Some id -> ( match txn_of ev with Some id' -> id' = id | None -> true)
      in
      if keep then newest_first := entry :: !newest_first
  done;
  let rec take n l =
    if n = 0 then []
    else match l with [] -> [] | x :: rest -> x :: take (n - 1) rest
  in
  List.rev (take t.suffix_limit !newest_first)

let violate t ?txn ?site ~invariant fmt =
  Format.kasprintf
    (fun detail ->
      t.violations <-
        { v_invariant = invariant;
          v_txn = txn;
          v_site = site;
          v_detail = detail;
          v_time = t.last_time;
          v_suffix = suffix t ~txn }
        :: t.violations)
    fmt

(* ------------------------------------------------------------------ *)
(* Lock mirror: S2PL discipline, grant compatibility, balance          *)
(* ------------------------------------------------------------------ *)

let member tbl key = Hashtbl.mem tbl key

let index_add tbl key sub =
  let set =
    match Hashtbl.find_opt tbl key with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 8 in
      Hashtbl.replace tbl key s;
      s
  in
  Hashtbl.replace set sub ()

let index_remove tbl key sub =
  match Hashtbl.find_opt tbl key with
  | None -> ()
  | Some s ->
    Hashtbl.remove s sub;
    if Hashtbl.length s = 0 then Hashtbl.remove tbl key

let on_lock t ~site ev =
  match ev with
  | Table.Acquired { txn; resource; mode } ->
    if member t.ended (site, txn) then
      violate t ~txn ~site ~invariant:"s2pl-discipline"
        "t%d acquires %s on %a after its end-of-transaction release" txn
        (Mode.to_string mode) Table.pp_resource resource;
    (match Hashtbl.find_opt t.res_holders (site, resource) with
     | None -> ()
     | Some holders ->
       Hashtbl.iter
         (fun (otxn, omode) () ->
           if otxn <> txn && not (Mode.compatible omode mode) then
             violate t ~txn ~site ~invariant:"lock-compat"
               "t%d granted %s on %a while t%d holds incompatible %s" txn
               (Mode.to_string mode) Table.pp_resource resource otxn
               (Mode.to_string omode))
         holders);
    let key = (site, txn, resource, mode) in
    let n = match Hashtbl.find_opt t.counts key with Some n -> n | None -> 0 in
    Hashtbl.replace t.counts key (n + 1);
    index_add t.txn_locks (site, txn) (resource, mode);
    index_add t.res_holders (site, resource) (txn, mode)
  | Table.Released { txn; resource; mode; count; kind } ->
    (match kind with
     | Table.End_of_txn -> Hashtbl.replace t.ended (site, txn) ()
     | Table.Undo -> ());
    let key = (site, txn, resource, mode) in
    let held =
      match Hashtbl.find_opt t.counts key with Some n -> n | None -> 0
    in
    if held < count then
      violate t ~txn ~site ~invariant:"lock-balance"
        "t%d releases %d grant(s) of %s on %a but holds only %d" txn count
        (Mode.to_string mode) Table.pp_resource resource held;
    let left = max 0 (held - count) in
    if left = 0 then begin
      Hashtbl.remove t.counts key;
      index_remove t.txn_locks (site, txn) (resource, mode);
      index_remove t.res_holders (site, resource) (txn, mode)
    end
    else Hashtbl.replace t.counts key left
  | Table.Cleared ->
    (* Crash simulation: the site's volatile lock state is gone; forget our
       mirror of it (outstanding balances die with the site). *)
    let stale tbl keep =
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
      List.iter (fun k -> if not (keep k) then Hashtbl.remove tbl k) keys
    in
    stale t.counts (fun (s, _, _, _) -> s <> site);
    stale t.txn_locks (fun (s, _) -> s <> site);
    stale t.res_holders (fun (s, _) -> s <> site)

(* ------------------------------------------------------------------ *)
(* Participant events: undo discharge, prepares, local finishes        *)
(* ------------------------------------------------------------------ *)

let obligations_of t ~txn ~site =
  Hashtbl.fold
    (fun ((txn', _, site') as key) () acc ->
      if txn' = txn && (site = None || site = Some site') then key :: acc
      else acc)
    t.undo_due []

let on_part t ~site ev =
  match ev with
  | Participant.Undone { txn; op_index = _; attempt } ->
    Hashtbl.remove t.undo_due (txn, attempt, site)
  | Participant.Prepared { txn } ->
    Hashtbl.replace t.prepared_logged (site, txn) ()
  | Participant.Executed { txn; seq } ->
    (* At-most-once: the participant's (txn, seq) cache must absorb every
       duplicated or retransmitted shipment. *)
    if member t.executed (site, txn, seq) then
      violate t ~txn ~site ~invariant:"dedup"
        "shipment (t%d, seq %d) executed twice at site %d — duplicate \
         delivery double-applied"
        txn seq site
    else Hashtbl.replace t.executed (site, txn, seq) ()
  | Participant.Crashed ->
    (* The site's volatile effects died; so does our execution mirror of
       them (a post-restart re-execution applies to the recovered store,
       not on top of the lost effects). *)
    let keys =
      Hashtbl.fold
        (fun ((s, _, _) as k) () acc -> if s = site then k :: acc else acc)
        t.executed []
    in
    List.iter (Hashtbl.remove t.executed) keys
  | Participant.Restarted -> ()
  | Participant.Recovery_begun { in_doubt } ->
    List.iter
      (fun txn -> Hashtbl.replace t.recovery_pending (site, txn) ())
      in_doubt
  | Participant.Recovery_resolved { txn; committed } ->
    if not (member t.recovery_pending (site, txn)) then
      violate t ~txn ~site ~invariant:"recovery"
        "t%d resolved at site %d without a pending in-doubt record" txn site;
    Hashtbl.remove t.recovery_pending (site, txn);
    if committed then begin
      if not (member t.commit_issued txn) then
        violate t ~txn ~site ~invariant:"recovery"
          "t%d resolved as committed at site %d but no Commit was ever \
           issued for it (phantom commit)"
          txn site
    end
    else if member t.committed txn then
      (* The core durability promise: a write the system committed must
         survive the crash — resolving its Prepared record as an abort
         discards it. *)
      violate t ~txn ~site ~invariant:"recovery"
        "t%d applied a commit elsewhere but site %d resolved its in-doubt \
         record as an abort: committed write lost"
        txn site
  | Participant.Finished { txn; committed } ->
    Hashtbl.replace t.ended (site, txn) ();
    (match Hashtbl.find_opt t.txn_locks (site, txn) with
     | Some set when Hashtbl.length set > 0 ->
       let names =
         Hashtbl.fold
           (fun (r, m) () acc ->
             Format.asprintf "%s %a" (Mode.to_string m) Table.pp_resource r
             :: acc)
           set []
       in
       violate t ~txn ~site ~invariant:"lock-balance"
         "t%d finished at site %d still holding %s" txn site
         (String.concat ", " names)
     | _ -> ());
    Hashtbl.remove t.txn_locks (site, txn);
    let pending = obligations_of t ~txn ~site:(Some site) in
    if committed then begin
      Hashtbl.replace t.committed txn ();
      List.iter
        (fun ((_, attempt, _) as key) ->
          Hashtbl.remove t.undo_due key;
          violate t ~txn ~site ~invariant:"atomic-undo"
            "t%d committed at site %d with the partial execution of attempt \
             %d never undone"
            txn site attempt)
        pending
    end
    else
      (* A local abort rolls back everything, obligations included. *)
      List.iter (Hashtbl.remove t.undo_due) pending

(* ------------------------------------------------------------------ *)
(* Coordinator FSM conformance                                         *)
(* ------------------------------------------------------------------ *)

let legal_transition from_ to_ =
  match (from_, to_) with
  | None, Coordinator.Executing -> true
  | None, _ -> false
  | Some f, _ -> (
    match (f, to_) with
    | ( Coordinator.Executing,
        (Coordinator.Awaiting_replies | Coordinator.Preparing | Coordinator.Ending)
      ) -> true
    | ( Coordinator.Awaiting_replies,
        (Coordinator.Executing | Coordinator.Waiting | Coordinator.Ending) ) ->
      true
    | Coordinator.Waiting, (Coordinator.Executing | Coordinator.Ending) -> true
    | Coordinator.Preparing, Coordinator.Ending -> true
    | Coordinator.Ending, Coordinator.Done -> true
    | _, _ -> false)

let on_phase t ~txn ~from_ ~to_ =
  if not (legal_transition from_ to_) then
    violate t ~txn ~invariant:"fsm-conformance"
      "illegal coordinator transition for t%d: %s -> %s" txn
      (match from_ with
       | Some p -> Coordinator.phase_to_string p
       | None -> "(submitted)")
      (Coordinator.phase_to_string to_);
  Hashtbl.replace t.txn_phase txn to_

(* ------------------------------------------------------------------ *)
(* Message-level checks: shipments, 2PC ordering, deadlock victims     *)
(* ------------------------------------------------------------------ *)

let expect_phase t ~txn ~kind expected =
  match Hashtbl.find_opt t.txn_phase txn with
  | None -> ()  (* transaction predates attachment: nothing to hold it to *)
  | Some p ->
    if not (List.mem p expected) then
      violate t ~txn ~invariant:"fsm-conformance"
        "%s for t%d sent in phase %s (expected %s)" kind txn
        (Coordinator.phase_to_string p)
        (String.concat " or " (List.map Coordinator.phase_to_string expected))

let on_net t ~src ~dst dir (msg : Msg.t) =
  match (dir, msg) with
  | Net.Send, Msg.Op_ship { txn; _ } ->
    expect_phase t ~txn ~kind:"Op_ship" [ Coordinator.Awaiting_replies ]
  | Net.Send, Msg.Prepare { txn } ->
    expect_phase t ~txn ~kind:"Prepare" [ Coordinator.Preparing ];
    Hashtbl.replace t.prepare_sent (txn, dst) ()
  | Net.Send, Msg.Commit { txn } ->
    expect_phase t ~txn ~kind:"Commit" [ Coordinator.Ending ];
    Hashtbl.replace t.commit_issued txn ();
    let prepared =
      Hashtbl.fold
        (fun (txn', site) () acc -> if txn' = txn then site :: acc else acc)
        t.prepare_sent []
    in
    if prepared <> [] then begin
      (* 2PC: a Commit may only follow a unanimous yes vote round. *)
      if member t.vote_no txn then
        violate t ~txn ~invariant:"2pc-order"
          "Commit for t%d sent although a participant voted no" txn;
      List.iter
        (fun site ->
          if not (member t.vote_yes (txn, site)) then
            violate t ~txn ~site ~invariant:"2pc-order"
              "Commit for t%d sent before site %d was prepared (no yes vote \
               delivered)"
              txn site)
        prepared
    end
  | Net.Send, Msg.Abort { txn; _ } ->
    expect_phase t ~txn ~kind:"Abort" [ Coordinator.Ending ]
  | Net.Send, Msg.Victim { txn } ->
    (match Wfg.find_cycle t.round_wfg with
     | None ->
       violate t ~txn ~invariant:"deadlock-victim"
         "t%d aborted as deadlock victim but the detector round's unioned \
          WFG has no cycle"
         txn
     | Some cycle ->
       (* Mirror of [Coordinator.newest_of]: newest admission time, ties
          broken by the larger id; transactions whose admission predates
          attachment rank oldest. *)
       let birth id =
         match Hashtbl.find_opt t.birth id with
         | Some tm -> tm
         | None -> neg_infinity
       in
       let newest =
         List.fold_left
           (fun best id ->
             match best with
             | None -> Some id
             | Some b ->
               let c = compare (birth id) (birth b) in
               if c > 0 || (c = 0 && id > b) then Some id else best)
           None cycle
       in
       (match newest with
        | Some newest when newest <> txn ->
          violate t ~txn ~invariant:"deadlock-victim"
            "t%d chosen as victim but t%d is the newest transaction in the \
             cycle [%s]"
            txn newest
            (String.concat " -> " (List.map string_of_int cycle))
        | _ -> ()));
    Wfg.clear t.round_wfg;
    t.last_wfg_dst <- min_int
  | Net.Send, Msg.Wfg_request ->
    (* The detector polls sites in ascending order, one request at a time;
       a non-increasing destination starts a new collection round. *)
    if dst <= t.last_wfg_dst then Wfg.clear t.round_wfg;
    t.last_wfg_dst <- dst
  | Net.Deliver, Msg.Wfg_reply { edges } ->
    List.iter
      (fun (w, h) -> Wfg.add_wait t.round_wfg ~waiter:w ~holders:[ h ])
      edges
  | Net.Deliver, Msg.Vote { txn; ok } ->
    if ok then begin
      if not (member t.prepared_logged (src, txn)) then
        violate t ~txn ~site:src ~invariant:"2pc-prepare"
          "site %d voted yes for t%d without a durably logged Prepared record"
          src txn;
      Hashtbl.replace t.vote_yes (txn, src) ()
    end
    else Hashtbl.replace t.vote_no txn ()
  | Net.Deliver, Msg.Op_status { txn; attempt; status; _ } -> (
    match status with
    | Msg.Granted -> Hashtbl.replace t.granted_sites (txn, attempt, src) ()
    | Msg.Blocked ->
      (* Alg. 1 l. 15-17: the sites where this attempt already executed must
         each see an undo before the transaction can commit. *)
      Hashtbl.iter
        (fun (txn', attempt', site) () ->
          if txn' = txn && attempt' = attempt then
            Hashtbl.replace t.undo_due (txn, attempt, site) ())
        t.granted_sites
    | Msg.Deadlock | Msg.Failed _ -> ())
  | Net.Deliver, Msg.Outcome_reply { txn; committed } ->
    (* The coordinator's answer must agree with what it did: a committed
       answer requires an issued Commit; an abort answer for a transaction
       whose commit was issued is the lost-write path in the making (the
       receiving site checks again at resolution). *)
    if committed && not (member t.commit_issued txn) then
      violate t ~txn ~invariant:"recovery"
        "outcome reply says t%d committed but no Commit was ever issued" txn
  | (Net.Send | Net.Drop | Net.Deliver), _ -> ()

(* ------------------------------------------------------------------ *)
(* Driving                                                             *)
(* ------------------------------------------------------------------ *)

let emit t ~time ev =
  if time > t.last_time then t.last_time <- time;
  t.ring.(t.head) <- Some (time, ev);
  t.head <- (t.head + 1) mod Array.length t.ring;
  match ev with
  | Lock { site; ev } -> on_lock t ~site ev
  | Part { site; ev } -> on_part t ~site ev
  | Phase { txn; from_; to_ } ->
    if from_ = None && not (Hashtbl.mem t.birth txn) then
      Hashtbl.replace t.birth txn time;
    on_phase t ~txn ~from_ ~to_
  | Net { src; dst; dir; msg } ->
    (match (dir, t.link_cut) with
     | Net.Deliver, Some cut when src <> dst && cut ~time ~src ~dst ->
       violate t ?txn:(txn_of ev) ~site:dst ~invariant:"partition"
         "message delivered %d->%d while the fault plan has the link severed"
         src dst
     | _ -> ());
    on_net t ~src ~dst dir msg

(* All five trace streams arrive through the cluster's unified tracer; this
   adapter narrows them to the checker's event type (and applies the test
   suite's [mutate] tap). *)
let attach ?mutate t cluster =
  t.history <- Some (Cluster.enable_history cluster);
  let feed ~time ev =
    let ev = match mutate with None -> Some ev | Some f -> f ev in
    match ev with Some ev -> emit t ~time ev | None -> ()
  in
  Cluster.attach_tracer cluster (fun ~time tev ->
      match tev with
      | Cluster.Tr_tick ->
        (* Clock monotonicity, checked inline: sim ticks are far too
           frequent to push through the ring. *)
        if time +. 1e-9 < t.last_time then
          violate t ~invariant:"sim-clock"
            "simulation clock moved backwards: %.6f after %.6f" time
            t.last_time
      | Cluster.Tr_net { src; dst; dir; msg } ->
        feed ~time (Net { src; dst; dir; msg })
      | Cluster.Tr_phase { txn; from_; to_ } ->
        feed ~time (Phase { txn; from_; to_ })
      | Cluster.Tr_lock { site; ev } -> feed ~time (Lock { site; ev })
      | Cluster.Tr_part { site; ev } -> feed ~time (Part { site; ev }))

let finish t =
  (* The mode lattice is state the whole run depended on; re-verify it so a
     single [finish] covers every invariant family. *)
  (match Lattice.check () with
   | Ok () -> ()
   | Error msgs ->
     List.iter (fun m -> violate t ~invariant:"mode-lattice" "%s" m) msgs);
  (* Undo obligations that never discharged, for transactions that actually
     committed somewhere (aborted transactions are cleaned by Alg. 6). *)
  Hashtbl.iter
    (fun (txn, attempt, site) () ->
      if member t.committed txn then
        violate t ~txn ~site ~invariant:"atomic-undo"
          "t%d committed but the partial execution of attempt %d at site %d \
           was never undone"
          txn attempt site)
    t.undo_due;
  (* Every prepared transaction must resolve: an in-doubt record left at
     the end of the run means recovery stalled. *)
  Hashtbl.iter
    (fun (site, txn) () ->
      violate t ~txn ~site ~invariant:"recovery"
        "t%d still in doubt at site %d at end of run (never resolved)" txn
        site)
    t.recovery_pending;
  (* Conflict-serializability of the committed history (precedence graph
     over the recorded, still-valid accesses). *)
  (match t.history with
   | None -> ()
   | Some h -> (
     match History.check_serializable h with
     | Ok () -> ()
     | Error msg -> violate t ~invariant:"serializability" "%s" msg));
  violations t
