(** DTXTester — the client simulator driving the evaluation (paper §3: "a
    client simulator called DTXTester is developed … The simulator generates
    the transactions according to certain parameters, sends them to DTX and
    collects the results at the end of each execution").

    One {!run} builds the whole experiment: generate the XMark base sized in
    paper-MB, fragment it, allocate replicas per the replication mode, boot a
    {!Dtx.Cluster} under the chosen protocol, attach the clients (each client
    submits its transactions sequentially, resubmitting an aborted one up to
    [retries] times), run the simulation to completion, and collect every
    metric the paper reports. *)

type params = {
  seed : int;
  protocol : Dtx_protocol.Protocol.kind;
  n_sites : int;
  n_clients : int;
  txns_per_client : int;
  ops_per_txn : int;
  update_txn_pct : int;
      (** percent of transactions that are update transactions *)
  update_op_pct : int;
      (** percent of operations that are updates, within an update
          transaction *)
  base_size_mb : float;  (** database size in paper-MB (≈250 nodes/MB) *)
  replication : Dtx_frag.Allocation.replication;
  n_fragments : int;  (** 0 = one fragment per site *)
  deadlock_period_ms : float;
  retries : int;  (** client resubmissions after an abort (paper: client's
                      choice; experiments use 0) *)
  cost : Dtx.Cost.t;
  net_config : Dtx_net.Net.Config.t;
      (** [Config.lan] (the paper's testbed) or [Config.wan] (its
          future-work environment), with optional lossy-link settings *)
  two_phase_commit : bool;
      (** use the 2PC extension instead of the paper's one-phase commit *)
  deadlock_policy : Dtx.Site.deadlock_policy;
      (** detection (the paper) or wait-die / wound-wait prevention *)
  op_timeout_ms : float option;  (** see {!Dtx.Cluster.config} *)
  retransmit_ms : float option;
      (** coordinator retransmission backoff base (the chaos runs set it);
          [None] keeps the unfaulted wire behaviour *)
  txn_timeout_ms : float option;
      (** chaos safety valve: abort transactions stranded this long *)
}

val default_params : params
(** Paper defaults: XDGL, 4 sites, 50 clients × 5 txns × 5 ops, 20 %/20 %
    updates, 40 MB, partial replication, no retries. *)

type result = {
  params : params;
  planned_txns : int;  (** clients × txns_per_client *)
  committed : int;
  aborted : int;  (** final aborts, after retries *)
  failed : int;
  not_executed : int;  (** planned transactions that never committed *)
  deadlocks : int;  (** deadlock-caused aborts — the paper's metric *)
  validation_aborts : int;
      (** Commute-protocol optimistic-validation aborts (invalidated
          commutativity assumption or DataGuide drift); 0 elsewhere *)
  response : Dtx_util.Stats.summary;  (** committed-transaction response times (ms) *)
  makespan_ms : float;  (** virtual time until the system drained *)
  messages : int;
  net_bytes : int;
  traffic : Dtx_net.Net.traffic list;
      (** per-message-kind sent/dropped/bytes breakdown *)
  lock_requests : int;
  blocked_ops : int;
  op_undos : int;
  throughput : (float * float) list;
      (** cumulative committed transactions over time (Fig. 12) *)
  concurrency : (float * int) list;
      (** active transactions over time (Fig. 12's concurrency degree) *)
  structure_nodes : int;
      (** total lock-structure size across sites (DataGuide vs document) *)
}

type database
(** A generated, fragmented XMark base — the expensive pure prefix of a
    {!run}. Deterministic in (seed, base size, fragment count); fragments
    are cloned into sites, so one database can back any number of runs. *)

val build_database : params -> database
(** Generate and fragment the base for [params] (only [seed],
    [base_size_mb] and the fragment count are read). Build once, then pass
    to every {!run} of a sweep that varies clients, protocol or topology —
    at 1000 sites the fragmentation is the dominant setup cost. *)

val run :
  ?instrument:(Dtx.Cluster.t -> unit) -> ?database:database -> params -> result
(** Deterministic for a given [params] — with or without a shared
    [database], which is checked against [params] and rejected on mismatch.
    [instrument] runs on the freshly built cluster before any transaction
    is submitted — the hook the [Dtx_check] analyzer (and the history-based
    tests) attach through. *)

val pp_result : Format.formatter -> result -> unit
(** One-paragraph human-readable summary. *)

(** {2 Scripted workloads — the stepwise driver}

    The schedule explorer (and any test wanting a {e fixed} workload on a
    hand-built cluster) bypasses generation entirely: a {!script} pins one
    client's transactions down to the operation, and {!submit_script} wires
    the same sequential submit-on-finish client loop {!run} uses, with no
    randomness. Replayed on a deterministic cluster, the only remaining
    degrees of freedom are the scheduling choices the explorer controls. *)
type script = {
  sc_client : int;
  sc_coordinator : int;  (** site whose Listener receives the submissions *)
  sc_txns : (string * Dtx_update.Op.t) list list;
      (** transactions, submitted back-to-back; each is (doc, op) list *)
}

val submit_script : ?retries:int -> Dtx.Cluster.t -> script list -> unit
(** Attach each script's client to [cluster]: the first transaction of every
    script is submitted immediately, each subsequent one from its
    predecessor's [on_finish] (aborted transactions are resubmitted up to
    [retries] times, default 0). Returns once the submissions are wired —
    drive the cluster's simulator to execute them. *)

(** Cross-seed aggregation: the paper reports single runs; [run_many]
    quantifies how sensitive a configuration's metrics are to the workload
    seed (EXPERIMENTS.md quotes these to justify calling single-seed
    crossovers "noise"). *)
type aggregate = {
  runs : result list;
  mean_response : Dtx_util.Stats.summary;  (** over per-run mean responses *)
  mean_deadlocks : float;
  sd_deadlocks : float;
  mean_committed : float;
  mean_makespan : float;
}

val run_many : ?seeds:int list -> params -> aggregate
(** [run_many p] runs [p] once per seed (default [[7; 107; 207]],
    overriding [p.seed]) and aggregates. *)

val pp_aggregate : Format.formatter -> aggregate -> unit
