module Sim = Dtx_sim.Sim
module Net = Dtx_net.Net
module Cluster = Dtx.Cluster
module Cost = Dtx.Cost
module Txn = Dtx_txn.Txn
module Op = Dtx_update.Op
module Protocol = Dtx_protocol.Protocol
module Allocation = Dtx_frag.Allocation
module Fragment = Dtx_frag.Fragment
module Generator = Dtx_xmark.Generator
module Queries = Dtx_xmark.Queries
module Doc = Dtx_xml.Doc
module Rng = Dtx_util.Rng
module Stats = Dtx_util.Stats
module Vec = Dtx_util.Vec

type params = {
  seed : int;
  protocol : Protocol.kind;
  n_sites : int;
  n_clients : int;
  txns_per_client : int;
  ops_per_txn : int;
  update_txn_pct : int;
  update_op_pct : int;
  base_size_mb : float;
  replication : Allocation.replication;
  n_fragments : int;
  deadlock_period_ms : float;
  retries : int;
  cost : Cost.t;
  net_config : Net.Config.t;
  two_phase_commit : bool;
  deadlock_policy : Dtx.Site.deadlock_policy;
  op_timeout_ms : float option;
  retransmit_ms : float option;
  txn_timeout_ms : float option;
}

let default_params =
  { seed = 7;
    protocol = Protocol.xdgl;
    n_sites = 4;
    n_clients = 50;
    txns_per_client = 5;
    ops_per_txn = 5;
    update_txn_pct = 20;
    update_op_pct = 20;
    base_size_mb = 40.0;
    replication = Allocation.Partial { copies = 1 };
    n_fragments = 0;
    deadlock_period_ms = 40.0;
    retries = 0;
    cost = Cost.default;
    net_config = Net.Config.lan;
    two_phase_commit = false;
    deadlock_policy = Dtx.Site.Detection;
    op_timeout_ms = None;
    retransmit_ms = None;
    txn_timeout_ms = None }

type result = {
  params : params;
  planned_txns : int;
  committed : int;
  aborted : int;
  failed : int;
  not_executed : int;
  deadlocks : int;
  validation_aborts : int;
  response : Stats.summary;
  makespan_ms : float;
  messages : int;
  net_bytes : int;
  traffic : Net.traffic list;
  lock_requests : int;
  blocked_ops : int;
  op_undos : int;
  throughput : (float * float) list;
  concurrency : (float * int) list;
  structure_nodes : int;
}

(* One simulated client: submits its transactions back-to-back, resubmitting
   an aborted transaction up to [retries] times (the paper leaves
   resubmission "up to the application client", §2.4). *)
type client = {
  client_id : int;
  coordinator : int;
  rng : Rng.t;
  mutable remaining : int;
  mutable retries_left : int;
}

let gen_transaction p (cl : client) fragments fresh =
  let update_txn = Rng.pct cl.rng p.update_txn_pct in
  List.init p.ops_per_txn (fun _ ->
      let doc = Rng.pick cl.rng fragments in
      let op =
        if update_txn && Rng.pct cl.rng p.update_op_pct then
          Queries.gen_update cl.rng ~fresh doc
        else Queries.gen_query cl.rng doc
      in
      (doc.Doc.name, op))

(* The generated-and-fragmented database, precomputable once per sweep.
   Generation and fragmentation are pure functions of (seed, size, parts),
   and sites clone the fragment documents they host, so sharing one
   [database] across runs changes no run's outcome — it only stops a
   10-point client sweep from regenerating the same XMark base 10 times. *)
type database = {
  db_seed : int;
  db_size_mb : float;
  db_parts : int;
  db_fragments : Doc.t array;
}

let db_parts_of p = if p.n_fragments > 0 then p.n_fragments else p.n_sites

let build_database p =
  let base =
    Generator.generate ~name:"xmark"
      (Generator.params_of_mb ~seed:(p.seed + 1) p.base_size_mb)
  in
  let parts = db_parts_of p in
  { db_seed = p.seed;
    db_size_mb = p.base_size_mb;
    db_parts = parts;
    db_fragments = Array.of_list (Fragment.fragment base ~parts) }

let run ?instrument ?database p =
  if p.n_sites < 1 || p.n_clients < 1 then invalid_arg "Workload.run";
  let master = Rng.create p.seed in
  (* Database: XMark base, fragmented, allocated. *)
  let db =
    match database with
    | Some db ->
      if
        db.db_seed <> p.seed
        || db.db_size_mb <> p.base_size_mb
        || db.db_parts <> db_parts_of p
      then invalid_arg "Workload.run: database built for different params";
      db
    | None -> build_database p
  in
  let fragments = db.db_fragments in
  let placements =
    Allocation.allocate ~n_sites:p.n_sites p.replication (Array.to_list fragments)
  in
  let sim = Sim.create () in
  let net = Net.of_config ~sim p.net_config in
  let config =
    { Cluster.protocol = p.protocol;
      cost = p.cost;
      deadlock_period_ms = p.deadlock_period_ms;
      storage = `Memory;
      commit = (if p.two_phase_commit then Cluster.Two_phase else Cluster.One_phase);
      deadlock_policy = p.deadlock_policy;
      op_timeout_ms = p.op_timeout_ms;
      retransmit_ms = p.retransmit_ms;
      txn_timeout_ms = p.txn_timeout_ms }
  in
  let cluster = Cluster.create ~sim ~net ~n_sites:p.n_sites config ~placements in
  Cluster.shutdown_when_idle cluster;
  (match instrument with Some f -> f cluster | None -> ());
  (* Unique suffixes for inserted entities, across all clients. *)
  let fresh_counter = ref 0 in
  let fresh () =
    incr fresh_counter;
    !fresh_counter
  in
  let clients =
    Array.init p.n_clients (fun i ->
        { client_id = i;
          coordinator = i mod p.n_sites;
          rng = Rng.split master;
          remaining = p.txns_per_client;
          retries_left = p.retries })
  in
  let rec submit_next (cl : client) ops =
    Cluster.submit cluster ~client:cl.client_id ~coordinator:cl.coordinator ~ops
      ~on_finish:(fun txn -> on_finish cl ops txn)
    |> ignore
  and on_finish (cl : client) ops (txn : Txn.t) =
    match txn.Txn.status with
    | Txn.Committed | Txn.Failed -> next_transaction cl
    | Txn.Aborted ->
      if cl.retries_left > 0 then begin
        cl.retries_left <- cl.retries_left - 1;
        submit_next cl ops
      end
      else next_transaction cl
    | Txn.Active | Txn.Waiting -> assert false
  and next_transaction (cl : client) =
    cl.remaining <- cl.remaining - 1;
    cl.retries_left <- p.retries;
    if cl.remaining > 0 then
      submit_next cl (gen_transaction p cl fragments fresh)
  in
  Array.iter
    (fun cl -> submit_next cl (gen_transaction p cl fragments fresh))
    clients;
  Sim.run sim;
  (* Collect. *)
  let s = Cluster.stats cluster in
  let planned = p.n_clients * p.txns_per_client in
  let response = Stats.summarize (Vec.to_list s.Cluster.response_times) in
  let makespan =
    if s.Cluster.last_finish > 0.0 then s.Cluster.last_finish else Sim.now sim
  in
  let bucket = if makespan > 0.0 then makespan /. 25.0 else 1.0 in
  let tl = Stats.Timeline.create ~bucket in
  Vec.iter (fun stamp -> Stats.Timeline.incr tl ~time:stamp) s.Cluster.commit_stamps;
  let structure_nodes =
    Array.fold_left
      (fun acc site ->
        let proto = site.Dtx.Site.protocol in
        List.fold_left
          (fun acc d -> acc + Protocol.structure_size proto d)
          acc (Protocol.docs proto))
      0 (Cluster.sites cluster)
  in
  { params = p;
    planned_txns = planned;
    committed = s.Cluster.committed;
    aborted = s.Cluster.aborted;
    failed = s.Cluster.failed;
    not_executed = planned - min planned s.Cluster.committed;
    deadlocks = s.Cluster.deadlock_aborts;
    validation_aborts = s.Cluster.validation_aborts;
    response;
    makespan_ms = makespan;
    messages = Net.messages net;
    net_bytes = Net.bytes_sent net;
    traffic = Net.traffic net;
    lock_requests = Cluster.total_lock_requests cluster;
    blocked_ops = Cluster.total_blocked_ops cluster;
    op_undos = s.Cluster.op_undos;
    throughput = Stats.Timeline.cumulative tl;
    concurrency = Vec.to_list s.Cluster.concurrency_samples;
    structure_nodes }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s %s rep=%s sites=%d clients=%d upd=%d%%/%d%% base=%.0fMB:@ \
     committed %d/%d (aborted %d, failed %d, deadlock aborts %d, validation \
     aborts %d)@ \
     response %a@ makespan %.1f ms, %d msgs, %d lock reqs, %d blocked ops, %d \
     op undos, structure %d nodes@]"
    (Protocol.kind_to_string r.params.protocol)
    "run"
    (Allocation.replication_to_string r.params.replication)
    r.params.n_sites r.params.n_clients r.params.update_txn_pct
    r.params.update_op_pct r.params.base_size_mb r.committed r.planned_txns
    r.aborted r.failed r.deadlocks r.validation_aborts Stats.pp_summary
    r.response r.makespan_ms
    r.messages r.lock_requests r.blocked_ops r.op_undos r.structure_nodes;
  if r.traffic <> [] then begin
    Format.fprintf ppf "@\n  traffic:";
    List.iter
      (fun (row : Net.traffic) ->
        Format.fprintf ppf " %s=%d/%dB"
          (Dtx_net.Msg.Kind.to_string row.Net.t_kind)
          row.Net.t_sent row.Net.t_bytes)
      r.traffic
  end

type script = {
  sc_client : int;
  sc_coordinator : int;
  sc_txns : (string * Op.t) list list;
}

let submit_script ?(retries = 0) cluster scripts =
  List.iter
    (fun sc ->
      if sc.sc_txns <> [] then begin
        let rec submit_txn remaining retries_left ops =
          Cluster.submit cluster ~client:sc.sc_client
            ~coordinator:sc.sc_coordinator ~ops
            ~on_finish:(fun txn ->
              match txn.Txn.status with
              | Txn.Aborted when retries_left > 0 ->
                submit_txn remaining (retries_left - 1) ops
              | Txn.Committed | Txn.Aborted | Txn.Failed -> next remaining
              | Txn.Active | Txn.Waiting -> assert false)
          |> ignore
        and next remaining =
          match remaining with
          | [] -> ()
          | ops :: rest -> submit_txn rest retries ops
        in
        next sc.sc_txns
      end)
    scripts

type aggregate = {
  runs : result list;
  mean_response : Stats.summary;
  mean_deadlocks : float;
  sd_deadlocks : float;
  mean_committed : float;
  mean_makespan : float;
}

let run_many ?(seeds = [ 7; 107; 207 ]) p =
  let runs = List.map (fun seed -> run { p with seed }) seeds in
  let responses = List.map (fun r -> r.response.Stats.mean) runs in
  let deadlocks = List.map (fun r -> float_of_int r.deadlocks) runs in
  let dl_summary = Stats.summarize deadlocks in
  { runs;
    mean_response = Stats.summarize responses;
    mean_deadlocks = dl_summary.Stats.mean;
    sd_deadlocks = dl_summary.Stats.stddev;
    mean_committed =
      Stats.mean (List.map (fun r -> float_of_int r.committed) runs);
    mean_makespan = Stats.mean (List.map (fun r -> r.makespan_ms) runs) }

let pp_aggregate ppf a =
  Format.fprintf ppf
    "%d seeds: response %.1f ms (sd %.1f), deadlocks %.1f (sd %.1f), committed %.1f, makespan %.1f ms"
    (List.length a.runs) a.mean_response.Stats.mean
    a.mean_response.Stats.stddev a.mean_deadlocks a.sd_deadlocks
    a.mean_committed a.mean_makespan
