module Protocol = Dtx_protocol.Protocol
module Allocation = Dtx_frag.Allocation

type series = {
  label : string;
  points : (float * float) list;
}

type figure = {
  id : string;
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
}

let protocols = [ (Protocol.xdgl, "DTX (XDGL)"); (Protocol.node2pl, "DTX/Node2PL") ]

let base_params quick =
  if quick then
    { Workload.default_params with
      n_clients = 10;
      base_size_mb = 8.0;
      n_sites = 3 }
  else Workload.default_params

(* ------------------------------------------------------------------ *)

let fig9 ?(quick = false) () =
  let p0 = base_params quick in
  let clients = if quick then [ 4; 8; 12 ] else [ 10; 20; 30; 40; 50 ] in
  let make_fig replication rep_name =
    let series =
      List.map
        (fun (kind, label) ->
          let points =
            List.map
              (fun n ->
                let r =
                  Workload.run
                    { p0 with
                      protocol = kind;
                      n_clients = n;
                      update_txn_pct = 0;
                      replication }
                in
                (float_of_int n, r.Workload.response.Dtx_util.Stats.mean))
              clients
          in
          { label; points })
        protocols
    in
    { id = "fig9-" ^ rep_name;
      title =
        Printf.sprintf "Fig. 9 — response time vs clients (%s replication)"
          rep_name;
      xlabel = "clients";
      ylabel = "mean response time (ms)";
      series }
  in
  [ make_fig Allocation.Total "total";
    make_fig (Allocation.Partial { copies = 1 }) "partial" ]

(* ------------------------------------------------------------------ *)

let fig10 ?(quick = false) () =
  let p0 = base_params quick in
  let pcts = if quick then [ 20; 40; 60 ] else [ 20; 30; 40; 50; 60 ] in
  let runs =
    List.map
      (fun (kind, label) ->
        ( label,
          List.map
            (fun pct ->
              let r =
                Workload.run { p0 with protocol = kind; update_txn_pct = pct }
              in
              (float_of_int pct, r))
            pcts ))
      protocols
  in
  let series_of f =
    List.map
      (fun (label, points) ->
        { label; points = List.map (fun (x, r) -> (x, f r)) points })
      runs
  in
  [ { id = "fig10-response";
      title = "Fig. 10 — response time vs update percentage";
      xlabel = "update transactions (%)";
      ylabel = "mean response time (ms)";
      series = series_of (fun r -> r.Workload.response.Dtx_util.Stats.mean) };
    { id = "fig10-deadlocks";
      title = "Fig. 10 — deadlocks vs update percentage";
      xlabel = "update transactions (%)";
      ylabel = "deadlock aborts";
      series = series_of (fun r -> float_of_int r.Workload.deadlocks) } ]

(* ------------------------------------------------------------------ *)

let fig11a ?(quick = false) () =
  let p0 = base_params quick in
  let sizes = if quick then [ 10.; 20.; 40. ] else [ 50.; 100.; 150.; 200. ] in
  let runs =
    List.map
      (fun (kind, label) ->
        ( label,
          List.map
            (fun mb ->
              let r = Workload.run { p0 with protocol = kind; base_size_mb = mb } in
              (mb, r))
            sizes ))
      protocols
  in
  let series_of f =
    List.map
      (fun (label, points) ->
        { label; points = List.map (fun (x, r) -> (x, f r)) points })
      runs
  in
  [ { id = "fig11a-response";
      title = "Fig. 11(a) — response time vs base size";
      xlabel = "base size (MB)";
      ylabel = "mean response time (ms)";
      series = series_of (fun r -> r.Workload.response.Dtx_util.Stats.mean) };
    { id = "fig11a-deadlocks";
      title = "Fig. 11(a) — deadlocks vs base size";
      xlabel = "base size (MB)";
      ylabel = "deadlock aborts";
      series = series_of (fun r -> float_of_int r.Workload.deadlocks) } ]

(* ------------------------------------------------------------------ *)

let fig11b ?(quick = false) () =
  let p0 = base_params quick in
  let site_counts = if quick then [ 2; 4 ] else [ 2; 4; 6; 8 ] in
  let runs =
    List.map
      (fun (kind, label) ->
        ( label,
          List.map
            (fun n ->
              let r = Workload.run { p0 with protocol = kind; n_sites = n } in
              (float_of_int n, r))
            site_counts ))
      protocols
  in
  let series_of f =
    List.map
      (fun (label, points) ->
        { label; points = List.map (fun (x, r) -> (x, f r)) points })
      runs
  in
  [ { id = "fig11b-response";
      title = "Fig. 11(b) — response time vs number of sites";
      xlabel = "sites";
      ylabel = "mean response time (ms)";
      series = series_of (fun r -> r.Workload.response.Dtx_util.Stats.mean) };
    { id = "fig11b-deadlocks";
      title = "Fig. 11(b) — deadlocks vs number of sites";
      xlabel = "sites";
      ylabel = "deadlock aborts";
      series = series_of (fun r -> float_of_int r.Workload.deadlocks) } ]

(* ------------------------------------------------------------------ *)

let fig12 ?(quick = false) () =
  let p0 = base_params quick in
  let runs =
    List.map
      (fun (kind, label) -> (label, Workload.run { p0 with protocol = kind }))
      protocols
  in
  [ { id = "fig12-throughput";
      title = "Fig. 12 — cumulative committed transactions over time";
      xlabel = "time (ms)";
      ylabel = "committed transactions";
      series =
        List.map
          (fun (label, r) -> { label; points = r.Workload.throughput })
          runs };
    { id = "fig12-concurrency";
      title = "Fig. 12 — concurrency degree over time";
      xlabel = "time (ms)";
      ylabel = "active transactions";
      series =
        List.map
          (fun (label, r) ->
            { label;
              points =
                List.map
                  (fun (t, n) -> (t, float_of_int n))
                  r.Workload.concurrency })
          runs } ]

let all ?(quick = false) () =
  fig9 ~quick () @ fig10 ~quick () @ fig11a ~quick () @ fig11b ~quick ()
  @ fig12 ~quick ()

(* ------------------------------------------------------------------ *)

let pp_figure ppf (f : figure) =
  Format.fprintf ppf "@[<v>== %s ==@ (%s vs %s)@ " f.title f.ylabel f.xlabel;
  Format.fprintf ppf "%-12s" f.xlabel;
  List.iter (fun s -> Format.fprintf ppf " %20s" s.label) f.series;
  Format.fprintf ppf "@ ";
  (* Rows keyed by the union of x values, in order. *)
  let xs =
    List.concat_map (fun s -> List.map fst s.points) f.series
    |> List.sort_uniq compare
  in
  let xs =
    (* Timeline figures can have hundreds of points; subsample for print. *)
    let n = List.length xs in
    if n <= 30 then xs
    else
      let step = (n + 29) / 30 in
      List.filteri (fun i _ -> i mod step = 0 || i = n - 1) xs
  in
  List.iter
    (fun x ->
      Format.fprintf ppf "%-12.1f" x;
      List.iter
        (fun s ->
          match List.assoc_opt x s.points with
          | Some y -> Format.fprintf ppf " %20.2f" y
          | None -> Format.fprintf ppf " %20s" "-")
        f.series;
      Format.fprintf ppf "@ ")
    xs;
  let chart =
    Dtx_util.Chart.render ~xlabel:f.xlabel ~ylabel:f.ylabel
      (List.map (fun s -> (s.label, s.points)) f.series)
  in
  Format.fprintf ppf "@ ";
  List.iter
    (fun line -> Format.fprintf ppf "%s@ " line)
    (String.split_on_char '\n' chart);
  Format.fprintf ppf "@]"

let to_csv (f : figure) =
  let buf = Buffer.create 1024 in
  let quote s =
    if String.exists (fun c -> c = ',' || c = '"') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  Buffer.add_string buf (quote f.xlabel);
  List.iter
    (fun s ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (quote s.label))
    f.series;
  Buffer.add_char buf '\n';
  let xs =
    List.concat_map (fun s -> List.map fst s.points) f.series
    |> List.sort_uniq compare
  in
  List.iter
    (fun x ->
      Buffer.add_string buf (Printf.sprintf "%g" x);
      List.iter
        (fun s ->
          Buffer.add_char buf ',';
          match List.assoc_opt x s.points with
          | Some y -> Buffer.add_string buf (Printf.sprintf "%g" y)
          | None -> ())
        f.series;
      Buffer.add_char buf '\n')
    xs;
  Buffer.contents buf

let write_csv ~dir (f : figure) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (f.id ^ ".csv") in
  let oc = open_out path in
  output_string oc (to_csv f);
  close_out oc;
  path

(* ------------------------------------------------------------------ *)

let last_point s =
  match List.rev s.points with (_, y) :: _ -> y | [] -> 0.0

let mean_points s =
  match s.points with
  | [] -> 0.0
  | pts -> List.fold_left (fun a (_, y) -> a +. y) 0.0 pts /. float_of_int (List.length pts)

let find_series fig label_prefix =
  List.find_opt
    (fun s ->
      String.length s.label >= String.length label_prefix
      && String.sub s.label 0 (String.length label_prefix) = label_prefix)
    fig.series

let check_pair fig ~expect_lower ~expect_higher =
  match (find_series fig expect_lower, find_series fig expect_higher) with
  | Some lo, Some hi -> (mean_points lo, mean_points hi)
  | _ -> (nan, nan)

let summary_table ?(quick = true) () =
  let rows = ref [] in
  let addf figure check expectation observed =
    rows := (figure, check, expectation, observed) :: !rows
  in
  let f9 = fig9 ~quick () in
  (match f9 with
   | [ total; partial ] ->
     let lo_t, hi_t = check_pair total ~expect_lower:"DTX (XDGL)" ~expect_higher:"DTX/Node2PL" in
     addf "Fig9/total" "XDGL < Node2PL" "XDGL responds faster"
       (Printf.sprintf "%.1f vs %.1f ms -> %s" lo_t hi_t
          (if lo_t < hi_t then "OK" else "MISMATCH"));
     let lo_p, hi_p = check_pair partial ~expect_lower:"DTX (XDGL)" ~expect_higher:"DTX/Node2PL" in
     addf "Fig9/partial" "XDGL < Node2PL" "XDGL responds faster"
       (Printf.sprintf "%.1f vs %.1f ms -> %s" lo_p hi_p
          (if lo_p < hi_p then "OK" else "MISMATCH"));
     (match (find_series partial "DTX (XDGL)", find_series total "DTX (XDGL)") with
      | Some p, Some t ->
        addf "Fig9/replication" "partial < total" "partial replication is faster"
          (Printf.sprintf "%.1f vs %.1f ms -> %s" (mean_points p) (mean_points t)
             (if mean_points p < mean_points t then "OK" else "MISMATCH"))
      | _ -> ())
   | _ -> ());
  let f10 = fig10 ~quick () in
  (match f10 with
   | [ resp; dls ] ->
     let lo, hi = check_pair resp ~expect_lower:"DTX (XDGL)" ~expect_higher:"DTX/Node2PL" in
     addf "Fig10/response" "XDGL < Node2PL under updates" "XDGL stays low"
       (Printf.sprintf "%.1f vs %.1f ms -> %s" lo hi
          (if lo < hi then "OK" else "MISMATCH"));
     let d_x, d_n = check_pair dls ~expect_lower:"DTX (XDGL)" ~expect_higher:"DTX/Node2PL" in
     addf "Fig10/deadlocks" "XDGL >= Node2PL" "finer locks -> more deadlocks"
       (Printf.sprintf "%.1f vs %.1f -> %s" d_x d_n
          (if d_x >= d_n then "OK" else "MISMATCH"))
   | _ -> ());
  let f12 = fig12 ~quick () in
  (match f12 with
   | [ tp; _ ] ->
     (match (find_series tp "DTX (XDGL)", find_series tp "DTX/Node2PL") with
      | Some x, Some n ->
        let mk s = match List.rev s.points with (t, y) :: _ -> (t, y) | [] -> (0., 0.) in
        let tx, cx = mk x and tn, cn = mk n in
        addf "Fig12/throughput" "XDGL finishes much earlier"
          "order-of-magnitude faster completion"
          (Printf.sprintf "XDGL: %.0f txns by %.0f ms; Node2PL: %.0f txns by %.0f ms -> %s"
             cx tx cn tn
             (if tx < tn then "OK" else "MISMATCH"))
      | _ -> ())
   | _ -> ());
  ignore last_point;
  List.rev !rows
