module IntSet = Set.Make (Int)

module H = Hashtbl.Make (Int)

(* [inc] is the exact reverse of [out]: [h ∈ out(w)] iff [w ∈ inc(h)]. It
   exists so [remove_txn] — called for every finished transaction — touches
   only the removed vertex's neighbours instead of folding over the whole
   table (which made transaction completion O(live transactions) per site). *)
(* Incremental cycle detection. [acyclic = true] means the graph minus the
   out-edges added from [dirty] vertices has been proven cycle-free (edge
   removals preserve that proof). A new cycle must contain a new edge, so it
   passes through a dirty vertex and is reachable from it — [find_cycle] only
   needs to search from [dirty]. When [acyclic = false] (the last search found
   a cycle) nothing is tracked and the next search is exhaustive. *)
type t = {
  out : IntSet.t H.t;
  inc : IntSet.t H.t;
  dirty : unit H.t;
  mutable acyclic : bool;
}

let create () =
  { out = H.create 32; inc = H.create 32; dirty = H.create 8; acyclic = true }

let set_of tbl v =
  match H.find_opt tbl v with Some s -> s | None -> IntSet.empty

let update tbl v s =
  if IntSet.is_empty s then H.remove tbl v else H.replace tbl v s

let add_wait t ~waiter ~holders =
  let cur = set_of t.out waiter in
  let s =
    List.fold_left
      (fun s h ->
        if h = waiter then s
        else begin
          if not (IntSet.mem h s) then
            update t.inc h (IntSet.add waiter (set_of t.inc h));
          IntSet.add h s
        end)
      cur holders
  in
  if t.acyclic && not (s == cur) then H.replace t.dirty waiter ();
  update t.out waiter s

let clear_waits_of t txn =
  match H.find_opt t.out txn with
  | None -> ()
  | Some s ->
    H.remove t.out txn;
    IntSet.iter
      (fun h -> update t.inc h (IntSet.remove txn (set_of t.inc h)))
      s

let remove_txn t txn =
  clear_waits_of t txn;
  match H.find_opt t.inc txn with
  | None -> ()
  | Some waiters ->
    H.remove t.inc txn;
    IntSet.iter
      (fun w -> update t.out w (IntSet.remove txn (set_of t.out w)))
      waiters

let waits_of t txn =
  match H.find_opt t.out txn with
  | Some s -> IntSet.elements s
  | None -> []

let waiters_of t txn =
  match H.find_opt t.inc txn with
  | Some s -> IntSet.elements s
  | None -> []

let edges t =
  H.fold (fun w s acc -> IntSet.fold (fun h acc -> (w, h) :: acc) s acc) t.out []
  |> List.sort compare

let txns t =
  let set =
    H.fold
      (fun w s acc -> IntSet.union (IntSet.add w acc) s)
      t.out IntSet.empty
  in
  IntSet.elements set

let dfs_cycle t starts =
  (* DFS with a colour map from [starts] (already sorted); deterministic for
     a given graph content and start list. *)
  let color = H.create 32 in
  (* 0 = white (absent), 1 = grey (on stack), 2 = black *)
  let result = ref None in
  let rec dfs path txn =
    match H.find_opt color txn with
    | Some 2 -> ()
    | Some 1 ->
      (* Found a back edge: extract the cycle from the path. *)
      if !result = None then begin
        let rec take acc = function
          | [] -> acc
          | x :: rest -> if x = txn then x :: acc else take (x :: acc) rest
        in
        result := Some (take [] path)
      end
    | _ ->
      H.replace color txn 1;
      let succs = waits_of t txn in
      List.iter (fun s -> if !result = None then dfs (txn :: path) s) succs;
      H.replace color txn 2
  in
  List.iter (fun v -> if !result = None then dfs [] v) starts;
  !result

let find_cycle_exhaustive t =
  let starts = List.sort compare (H.fold (fun w _ acc -> w :: acc) t.out []) in
  dfs_cycle t starts

let find_cycle t =
  if t.acyclic then begin
    if H.length t.dirty = 0 then None
    else if H.length t.dirty >= H.length t.out then begin
      (* Everything changed since the last proof — the incremental pre-pass
         would visit the whole graph anyway, so go straight to exhaustive. *)
      match find_cycle_exhaustive t with
      | None ->
        H.reset t.dirty;
        None
      | Some _ as c ->
        t.acyclic <- false;
        H.reset t.dirty;
        c
    end
    else begin
      let starts =
        List.sort compare (H.fold (fun v () acc -> v :: acc) t.dirty [])
      in
      match dfs_cycle t starts with
      | None ->
        (* Still acyclic: the proof is fresh again. *)
        H.reset t.dirty;
        None
      | Some _ ->
        (* A cycle exists. Re-run the exhaustive search so the reported cycle
           is the same canonical one the full DFS would pick — callers choose
           deadlock victims from it, so this keeps traces byte-identical. *)
        t.acyclic <- false;
        H.reset t.dirty;
        find_cycle_exhaustive t
    end
  end
  else
    match find_cycle_exhaustive t with
    | None ->
      t.acyclic <- true;
      H.reset t.dirty;
      None
    | Some _ as c -> c

let union graphs =
  let t = create () in
  List.iter
    (fun g ->
      H.iter
        (fun w s -> add_wait t ~waiter:w ~holders:(IntSet.elements s))
        g.out)
    graphs;
  t

let copy t = union [ t ]

let size t = H.fold (fun _ s acc -> acc + IntSet.cardinal s) t.out 0

let pp ppf t =
  List.iter (fun (w, h) -> Format.fprintf ppf "%d -> %d@." w h) (edges t)

let clear t =
  H.reset t.out;
  H.reset t.inc;
  H.reset t.dirty;
  t.acyclic <- true
