type t = IS | IX | SI | SA | SB | ST | X | XT

let all = [ IS; IX; SI; SA; SB; ST; X; XT ]

(* The matrix is symmetric; [compat a b] is spelled out for one triangular
   half and mirrored in [compatible]. Rationale per pair family:
   - X and XT conflict with everything (exclusive node / exclusive tree).
   - ST conflicts with IX (an update intends below the protected subtree)
     and with the insertion-shared locks SI/SA/SB (an insertion updates the
     subtree the ST protects), per the XDGL rules.
   - the shared family (IS, SI, SA, SB) are mutually compatible and
     compatible with IX (intent alone does not touch this node's content). *)
let compat a b =
  match (a, b) with
  | X, _ | _, X | XT, _ | _, XT -> false
  | ST, IX | IX, ST -> false
  | ST, (SI | SA | SB) | (SI | SA | SB), ST -> false
  | ST, (IS | ST) | IS, ST -> true
  | (IS | IX | SI | SA | SB), (IS | IX | SI | SA | SB) -> true

let compatible a b = compat a b

let index = function
  | IS -> 0 | IX -> 1 | SI -> 2 | SA -> 3 | SB -> 4 | ST -> 5 | X -> 6 | XT -> 7

let of_index = function
  | 0 -> IS | 1 -> IX | 2 -> SI | 3 -> SA | 4 -> SB | 5 -> ST | 6 -> X | 7 -> XT
  | i -> invalid_arg (Printf.sprintf "Mode.of_index: %d" i)

let bit m = 1 lsl index m

(* conflict_masks.(index m) has the bit of every mode incompatible with [m]
   set, so "does [m] conflict with any mode in this union of held modes?" is
   one AND against the union mask. Derived from [compat] at module load, so
   the two representations cannot drift apart. *)
let conflict_masks =
  let masks = Array.make 8 0 in
  List.iter
    (fun a ->
      List.iter (fun b -> if not (compat a b) then
          masks.(index a) <- masks.(index a) lor bit b)
        all)
    all;
  masks

let conflict_mask m = conflict_masks.(index m)

let mask_compatible m ~held_mask = conflict_masks.(index m) land held_mask = 0

let is_intention = function IS | IX -> true | _ -> false

let is_shared = function IS | SI | SA | SB | ST -> true | _ -> false

let is_exclusive = function X | XT | IX -> true | _ -> false

let intention_for = function
  | X | XT | IX -> IX
  | IS | SI | SA | SB | ST -> IS

let to_string = function
  | IS -> "IS"
  | IX -> "IX"
  | SI -> "SI"
  | SA -> "SA"
  | SB -> "SB"
  | ST -> "ST"
  | X -> "X"
  | XT -> "XT"

let of_string = function
  | "IS" -> Some IS
  | "IX" -> Some IX
  | "SI" -> Some SI
  | "SA" -> Some SA
  | "SB" -> Some SB
  | "ST" -> Some ST
  | "X" -> Some X
  | "XT" -> Some XT
  | _ -> None

let pp ppf m = Format.pp_print_string ppf (to_string m)
