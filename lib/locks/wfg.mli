(** Wait-for graphs.

    Each DTX site maintains one: an edge [w → h] records that transaction
    [w] waits for a lock held by [h]. Local deadlocks show up as cycles in
    one site's graph (Alg. 3 l. 9); distributed deadlocks only show up in
    the {e union} of all sites' graphs, which the periodic detector builds
    (Alg. 4). *)

type t

val create : unit -> t

val add_wait : t -> waiter:int -> holders:int list -> unit
(** Add edges from [waiter] to every holder (self-edges are ignored). *)

val clear_waits_of : t -> int -> unit
(** Remove [txn]'s outgoing edges (it stopped waiting). *)

val remove_txn : t -> int -> unit
(** Remove [txn] and every edge touching it (it committed or aborted).
    O(degree of [txn]) via a reverse-edge index, not O(vertices). *)

val waits_of : t -> int -> int list
(** Transactions [txn] currently waits for. *)

val waiters_of : t -> int -> int list
(** Transactions currently waiting for [txn] (the reverse-edge index). *)

val edges : t -> (int * int) list
(** All (waiter, holder) pairs. *)

val txns : t -> int list
(** Every transaction appearing in the graph. *)

val find_cycle : t -> int list option
(** Some cycle as a list of distinct transactions (in cycle order), or
    [None]. Deterministic for a given graph content. Incremental: when the
    graph was acyclic at the last call, only vertices that gained out-edges
    since are re-searched; the reported cycle is always the one
    [find_cycle_exhaustive] would return. *)

val find_cycle_exhaustive : t -> int list option
(** Full-graph DFS from every vertex in sorted order — the pre-incremental
    algorithm, kept as a differential oracle. Pure: does not update the
    incremental-detection state. *)

val union : t list -> t
(** A fresh graph containing every edge of the inputs — the distributed
    detector's merged view. Inputs are not modified. *)

val copy : t -> t

val size : t -> int
(** Number of edges. *)

val clear : t -> unit
(** Remove every edge. *)

val pp : Format.formatter -> t -> unit
