(** The eight XDGL lock modes (paper §2) and their compatibility matrix.

    Node locks:
    - [SI] (shared into), [SA] (shared after), [SB] (shared before): shared
      locks taken by insertions on the node the new content attaches to; they
      forbid concurrent modification of that node but coexist with other
      shared locks.
    - [X] (exclusive): the node being modified.

    Tree locks:
    - [ST] (shared tree): protects a DataGuide subtree from any update.
    - [XT] (exclusive tree): protects a DataGuide subtree from reads {e and}
      updates.

    Intention locks (taken on every ancestor of a locked node):
    - [IS] for shared-mode locks, [IX] for exclusive-mode locks.

    The key incompatibility driving the paper's deadlock scenario (Fig. 6) is
    [IX] vs [ST]: a reader's subtree lock on an ancestor blocks a writer's
    intention lock there. *)

type t = IS | IX | SI | SA | SB | ST | X | XT

val all : t list
(** All eight modes. *)

val compatible : t -> t -> bool
(** [compatible held requested] — symmetric. Two different transactions may
    hold [m1] and [m2] on the same resource iff [compatible m1 m2]. *)

val index : t -> int
(** Dense index in [0..7], in the order of {!all}. *)

val of_index : int -> t
(** Inverse of {!index}. @raise Invalid_argument outside [0..7]. *)

val bit : t -> int
(** [1 lsl index m] — the mode's bit in a mode-set bitmask. *)

val conflict_mask : t -> int
(** Bitmask of every mode incompatible with [m] (derived from {!compatible}
    at startup): [conflict_mask m land bit m' <> 0] iff [not (compatible m
    m')]. *)

val mask_compatible : t -> held_mask:int -> bool
(** [mask_compatible m ~held_mask] — [m] is compatible with {e every} mode of
    the union bitmask [held_mask]: a single AND, the lock table's fast
    path. *)

val is_intention : t -> bool
(** [IS] and [IX]. *)

val is_shared : t -> bool
(** [SI], [SA], [SB], [ST] (and [IS]). *)

val is_exclusive : t -> bool
(** [X] and [XT] (and [IX] counts as exclusive-intent). *)

val intention_for : t -> t
(** The intention mode ancestors must carry for a lock of this mode: [IX]
    for exclusive modes, [IS] for shared ones; intention modes map to
    themselves. *)

val to_string : t -> string

val of_string : string -> t option

val pp : Format.formatter -> t -> unit
