module Intern = Dtx_util.Intern

(* A resource is a packed int: | doc_id:11 | value_id:20 | node:28 |, 59 bits.
   value_id 0 means "no value dimension"; interned value ids are stored
   shifted by one. Packing keeps 3 low bits spare so a (resource, mode) pair
   also fits one int (see [request_key]) and request lists dedupe with a
   plain integer sort. Doc names and lock values are process-global interned
   symbols: every table in a simulated cluster shares the same bijection,
   which costs nothing and keeps resources directly comparable across
   sites. 11 doc bits allow the 1000+ fragment documents a thousand-site
   scale run creates (7 bits capped runs at 128 sites). *)
type resource = int

let node_bits = 28
let value_bits = 20
let doc_bits = 11
let node_limit = 1 lsl node_bits
let value_limit = (1 lsl value_bits) - 1
let doc_limit = 1 lsl doc_bits
let node_mask = node_limit - 1
let value_mask = (1 lsl value_bits) - 1

let doc_syms = Intern.create ~max_ids:doc_limit "document name"
let value_syms = Intern.create ~max_ids:value_limit "lock value"

(* Single-entry memo for the doc-name intern: derivation emits long runs of
   resources for the same physically-equal doc-name string, so the common
   case skips the string hash entirely. *)
let last_doc = ref ""
let last_doc_id = ref (-1)

let doc_id doc =
  if doc == !last_doc then !last_doc_id
  else begin
    let id = Intern.intern doc_syms doc in
    last_doc := doc;
    last_doc_id := id;
    id
  end

let resource doc node =
  if node < 0 || node >= node_limit then
    invalid_arg (Printf.sprintf "Table.resource: node id %d out of range" node);
  (doc_id doc lsl (node_bits + value_bits)) lor node

let value_resource doc node value =
  resource doc node lor ((Intern.intern value_syms value + 1) lsl node_bits)

let resource_doc r = Intern.lookup doc_syms (r lsr (node_bits + value_bits))

let resource_node r = r land node_mask

let resource_value r =
  match (r lsr node_bits) land value_mask with
  | 0 -> None
  | v -> Some (Intern.lookup value_syms (v - 1))

let compare_resource (a : resource) (b : resource) = compare a b

let pp_resource ppf r =
  match resource_value r with
  | None -> Format.fprintf ppf "%s#%d" (resource_doc r) (resource_node r)
  | Some v -> Format.fprintf ppf "%s#%d=%S" (resource_doc r) (resource_node r) v

let request_key r mode = (r lsl 3) lor Mode.index mode

let dedup_requests reqs =
  match reqs with
  | [] | [ _ ] -> reqs
  | _ ->
    List.rev_map (fun (r, m) -> request_key r m) reqs
    |> List.sort_uniq (fun (a : int) b -> compare a b)
    |> List.map (fun k -> (k lsr 3, Mode.of_index (k land 7)))

(* Int-keyed hashtable with a multiplicative mixer: no polymorphic hashing
   anywhere on the grant/conflict path. *)
module Itbl = Hashtbl.Make (struct
  type t = int

  let equal (a : int) b = a = b

  let hash x = (x * 0x2545F4914F6CDD1D) land max_int
end)

(* One grant: a transaction holding [mode] on a resource, reference-counted
   (the same operation may request the same lock several times, e.g. IS on a
   shared ancestor of two targets). *)
type holder = {
  txn : int;
  mode : Mode.t;
  mutable count : int;
}

(* [mask] is the union of the mode bits of every holder (the requester's own
   included); the common no-conflict acquire answers with one AND against it
   and never scans [holders]. *)
type entry = {
  mutable holders : holder list;
  mutable mask : int;
}

type release_kind = Undo | End_of_txn

type event =
  | Acquired of { txn : int; resource : resource; mode : Mode.t }
  | Released of {
      txn : int;
      resource : resource;
      mode : Mode.t;
      count : int;
      kind : release_kind;
    }
  | Cleared

let pp_event ppf = function
  | Acquired { txn; resource; mode } ->
    Format.fprintf ppf "t%d acquires %s on %a" txn (Mode.to_string mode)
      pp_resource resource
  | Released { txn; resource; mode; count; kind } ->
    Format.fprintf ppf "t%d releases %s on %a (x%d, %s)" txn
      (Mode.to_string mode) pp_resource resource count
      (match kind with Undo -> "undo" | End_of_txn -> "end")
  | Cleared -> Format.fprintf ppf "lock table cleared"

(* The entry map is sharded by a (doc, DataGuide-subtree) bucket computed
   from the packed resource with one xor and one mask: doc id xor node>>4.
   Nodes numbered in DataGuide/document order land siblings in the same
   16-node window, so a transaction's lock batch (target + ancestors) touches
   few shards while distinct documents spread across all of them. Each shard
   keeps [smask], the exact union of the mode bits of every holder it
   contains (maintained by per-mode holder counts), so a whole batch of
   compatible requests can skip the per-entry probes in the conflict pass.
   [by_txn], [grants] and the tracer stay table-global, which keeps
   [release_txn] iteration order — and therefore every traced event — the
   same as the unsharded table's. *)

let default_shard_count = 64

let shard_count =
  match Sys.getenv_opt "DTX_LOCK_SHARDS" with
  | None -> default_shard_count
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 && n <= 4096 && n land (n - 1) = 0 -> n
    | _ ->
      invalid_arg "DTX_LOCK_SHARDS must be a power of two between 1 and 4096")

let shard_mask = shard_count - 1

let shard_of r =
  ((r lsr (node_bits + value_bits)) lxor (r lsr 4)) land shard_mask

type shard = {
  entries : entry Itbl.t;
  mode_counts : int array;  (* holder records per mode index *)
  mutable smask : int;  (* union of mode bits held anywhere in the shard *)
}

(* Shards materialize on first grant; until then every slot aliases this
   never-mutated empty shard, so [create] is one [Array.make] instead of 64
   hashtable allocations (tables are created per site, and short-lived ones
   are common in tests and DPOR replays). Read paths may see the dummy —
   its [entries] is empty and [smask] is 0, which answer correctly. *)
let dummy_shard = { entries = Itbl.create 1; mode_counts = [||]; smask = 0 }

type t = {
  shards : shard array;
  by_txn : unit Itbl.t Itbl.t;  (* txn -> set of its resources *)
  mutable grants : int;
  mutable tracer : (event -> unit) option;
}

let create () =
  { shards = Array.make shard_count dummy_shard;
    by_txn = Itbl.create 64;
    grants = 0;
    tracer = None }

let set_tracer t tr = t.tracer <- tr

let shard t r = t.shards.(shard_of r)

(* Only the grant path needs a real shard; everything else treats the dummy
   as the empty shard it is. *)
let materialize t r =
  let i = shard_of r in
  let sh = t.shards.(i) in
  if sh != dummy_shard then sh
  else begin
    let sh =
      { entries = Itbl.create 16;
        mode_counts = Array.make (List.length Mode.all) 0;
        smask = 0 }
    in
    t.shards.(i) <- sh;
    sh
  end

(* Exact [smask] maintenance: a mode bit is set iff some holder record with
   that mode lives in the shard. Refcount bumps don't change the counts. *)
let shard_add_holder sh (mode : Mode.t) =
  let i = Mode.index mode in
  let c = sh.mode_counts.(i) in
  sh.mode_counts.(i) <- c + 1;
  if c = 0 then sh.smask <- sh.smask lor Mode.bit mode

let shard_remove_holder sh (mode : Mode.t) =
  let i = Mode.index mode in
  let c = sh.mode_counts.(i) - 1 in
  sh.mode_counts.(i) <- c;
  if c = 0 then sh.smask <- sh.smask land lnot (Mode.bit mode)

let entry sh r =
  match Itbl.find_opt sh.entries r with
  | Some e -> e
  | None ->
    let e = { holders = []; mask = 0 } in
    Itbl.replace sh.entries r e;
    e

let recompute_mask e =
  e.mask <- List.fold_left (fun m h -> m lor Mode.bit h.mode) 0 e.holders

let txn_set t txn =
  match Itbl.find_opt t.by_txn txn with
  | Some s -> s
  | None ->
    let s = Itbl.create 16 in
    Itbl.replace t.by_txn txn s;
    s

let rec find_holder holders txn (mode : Mode.t) =
  match holders with
  | [] -> None
  | h :: rest ->
    if h.txn = txn && h.mode = mode then Some h else find_holder rest txn mode

let ungrant t ~txn r mode =
  let sh = shard t r in
  match Itbl.find_opt sh.entries r with
  | None -> ()
  | Some e -> (
    match find_holder e.holders txn mode with
    | None -> ()
    | Some h ->
      h.count <- h.count - 1;
      t.grants <- t.grants - 1;
      (match t.tracer with
       | Some tr ->
         tr (Released { txn; resource = r; mode; count = 1; kind = Undo })
       | None -> ());
      if h.count = 0 then begin
        e.holders <- List.filter (fun h' -> not (h' == h)) e.holders;
        shard_remove_holder sh mode;
        if e.holders = [] then Itbl.remove sh.entries r else recompute_mask e;
        (* Keep the per-transaction resource set exact: once the last of the
           transaction's holds on [r] is undone, [r] must leave its set, so
           a later [release_txn] never touches entries the transaction no
           longer owns (they may belong to someone else by then). *)
        if not (List.exists (fun h' -> h'.txn = txn) e.holders) then
          match Itbl.find_opt t.by_txn txn with
          | Some set ->
            Itbl.remove set r;
            if Itbl.length set = 0 then Itbl.remove t.by_txn txn
          | None -> ()
      end)

let sort_uniq_ints l = List.sort_uniq compare l

let acquire_all t ~txn requests =
  (* First pass: collect every conflicting transaction without mutating.
     Requests route to their shard with one xor+mask; when the request mode
     is compatible with the shard's whole-shard mask no entry in the shard
     can conflict, so the common uncontended case never even probes the
     entry map. Otherwise the per-entry mask keeps the old fast path. *)
  let conflicting = ref [] in
  List.iter
    (fun (r, mode) ->
      let sh = shard t r in
      if not (Mode.mask_compatible mode ~held_mask:sh.smask) then
        match Itbl.find_opt sh.entries r with
        | None -> ()
        | Some e ->
          if not (Mode.mask_compatible mode ~held_mask:e.mask) then
            List.iter
              (fun h ->
                if h.txn <> txn && not (Mode.compatible h.mode mode) then
                  conflicting := h.txn :: !conflicting)
              e.holders)
    requests;
  match sort_uniq_ints !conflicting with
  | [] ->
    (* Grant pass: all requests share [txn], so resolve its resource set
       once instead of per grant. Iteration stays in request order (not
       shard order) so traced Acquired events are unchanged. *)
    let set = txn_set t txn in
    let grant (r, mode) =
      let sh = materialize t r in
      let e = entry sh r in
      (match find_holder e.holders txn mode with
       | Some h -> h.count <- h.count + 1
       | None ->
         e.holders <- { txn; mode; count = 1 } :: e.holders;
         e.mask <- e.mask lor Mode.bit mode;
         shard_add_holder sh mode);
      t.grants <- t.grants + 1;
      Itbl.replace set r ()
    in
    (match t.tracer with
     | None -> List.iter grant requests
     | Some tr ->
       List.iter
         (fun ((r, mode) as req) ->
           grant req;
           tr (Acquired { txn; resource = r; mode }))
         requests);
    Ok ()
  | blockers -> Error blockers

let release_request t ~txn requests =
  List.iter (fun (r, mode) -> ungrant t ~txn r mode) requests

let release_txn t ~txn =
  match Itbl.find_opt t.by_txn txn with
  | None -> []
  | Some set ->
    let freed = ref [] in
    Itbl.iter
      (fun r () ->
        let sh = shard t r in
        match Itbl.find_opt sh.entries r with
        | None -> ()
        | Some e ->
          let mine, others = List.partition (fun h -> h.txn = txn) e.holders in
          if mine <> [] then begin
            List.iter
              (fun h ->
                t.grants <- t.grants - h.count;
                shard_remove_holder sh h.mode;
                match t.tracer with
                | Some tr ->
                  tr
                    (Released
                       { txn; resource = r; mode = h.mode; count = h.count;
                         kind = End_of_txn })
                | None -> ())
              mine;
            freed := r :: !freed;
            if others = [] then Itbl.remove sh.entries r
            else begin
              e.holders <- others;
              recompute_mask e
            end
          end)
      set;
    Itbl.remove t.by_txn txn;
    !freed

let holders t r =
  match Itbl.find_opt (shard t r).entries r with
  | None -> []
  | Some e -> List.map (fun h -> (h.txn, h.mode)) e.holders

let locks_of t ~txn =
  match Itbl.find_opt t.by_txn txn with
  | None -> []
  | Some set ->
    Itbl.fold
      (fun r () acc ->
        match Itbl.find_opt (shard t r).entries r with
        | None -> acc
        | Some e ->
          List.fold_left
            (fun acc h -> if h.txn = txn then (r, h.mode) :: acc else acc)
            acc e.holders)
      set []

let lock_count t = t.grants

let txn_holds t ~txn r mode =
  match Itbl.find_opt (shard t r).entries r with
  | None -> false
  | Some e ->
    List.exists (fun h -> h.txn = txn && h.mode = mode && h.count > 0) e.holders

let clear t =
  Array.iter
    (fun sh ->
      if sh != dummy_shard then begin
        Itbl.reset sh.entries;
        Array.fill sh.mode_counts 0 (Array.length sh.mode_counts) 0;
        sh.smask <- 0
      end)
    t.shards;
  Itbl.reset t.by_txn;
  t.grants <- 0;
  match t.tracer with Some tr -> tr Cleared | None -> ()
