module Intern = Dtx_util.Intern

(* A resource is a packed int: | doc_id:7 | value_id:24 | node:28 |, 59 bits.
   value_id 0 means "no value dimension"; interned value ids are stored
   shifted by one. Packing keeps 3 low bits spare so a (resource, mode) pair
   also fits one int (see [request_key]) and request lists dedupe with a
   plain integer sort. Doc names and lock values are process-global interned
   symbols: every table in a simulated cluster shares the same bijection,
   which costs nothing and keeps resources directly comparable across
   sites. *)
type resource = int

let node_bits = 28
let value_bits = 24
let doc_bits = 7
let node_limit = 1 lsl node_bits
let value_limit = (1 lsl value_bits) - 1
let doc_limit = 1 lsl doc_bits
let node_mask = node_limit - 1
let value_mask = (1 lsl value_bits) - 1

let doc_syms = Intern.create ~max_ids:doc_limit "document name"
let value_syms = Intern.create ~max_ids:value_limit "lock value"

(* Single-entry memo for the doc-name intern: derivation emits long runs of
   resources for the same physically-equal doc-name string, so the common
   case skips the string hash entirely. *)
let last_doc = ref ""
let last_doc_id = ref (-1)

let doc_id doc =
  if doc == !last_doc then !last_doc_id
  else begin
    let id = Intern.intern doc_syms doc in
    last_doc := doc;
    last_doc_id := id;
    id
  end

let resource doc node =
  if node < 0 || node >= node_limit then
    invalid_arg (Printf.sprintf "Table.resource: node id %d out of range" node);
  (doc_id doc lsl (node_bits + value_bits)) lor node

let value_resource doc node value =
  resource doc node lor ((Intern.intern value_syms value + 1) lsl node_bits)

let resource_doc r = Intern.lookup doc_syms (r lsr (node_bits + value_bits))

let resource_node r = r land node_mask

let resource_value r =
  match (r lsr node_bits) land value_mask with
  | 0 -> None
  | v -> Some (Intern.lookup value_syms (v - 1))

let compare_resource (a : resource) (b : resource) = compare a b

let pp_resource ppf r =
  match resource_value r with
  | None -> Format.fprintf ppf "%s#%d" (resource_doc r) (resource_node r)
  | Some v -> Format.fprintf ppf "%s#%d=%S" (resource_doc r) (resource_node r) v

let request_key r mode = (r lsl 3) lor Mode.index mode

let dedup_requests reqs =
  match reqs with
  | [] | [ _ ] -> reqs
  | _ ->
    List.rev_map (fun (r, m) -> request_key r m) reqs
    |> List.sort_uniq (fun (a : int) b -> compare a b)
    |> List.map (fun k -> (k lsr 3, Mode.of_index (k land 7)))

(* Int-keyed hashtable with a multiplicative mixer: no polymorphic hashing
   anywhere on the grant/conflict path. *)
module Itbl = Hashtbl.Make (struct
  type t = int

  let equal (a : int) b = a = b

  let hash x = (x * 0x2545F4914F6CDD1D) land max_int
end)

(* One grant: a transaction holding [mode] on a resource, reference-counted
   (the same operation may request the same lock several times, e.g. IS on a
   shared ancestor of two targets). *)
type holder = {
  txn : int;
  mode : Mode.t;
  mutable count : int;
}

(* [mask] is the union of the mode bits of every holder (the requester's own
   included); the common no-conflict acquire answers with one AND against it
   and never scans [holders]. *)
type entry = {
  mutable holders : holder list;
  mutable mask : int;
}

type release_kind = Undo | End_of_txn

type event =
  | Acquired of { txn : int; resource : resource; mode : Mode.t }
  | Released of {
      txn : int;
      resource : resource;
      mode : Mode.t;
      count : int;
      kind : release_kind;
    }
  | Cleared

let pp_event ppf = function
  | Acquired { txn; resource; mode } ->
    Format.fprintf ppf "t%d acquires %s on %a" txn (Mode.to_string mode)
      pp_resource resource
  | Released { txn; resource; mode; count; kind } ->
    Format.fprintf ppf "t%d releases %s on %a (x%d, %s)" txn
      (Mode.to_string mode) pp_resource resource count
      (match kind with Undo -> "undo" | End_of_txn -> "end")
  | Cleared -> Format.fprintf ppf "lock table cleared"

type t = {
  table : entry Itbl.t;
  by_txn : unit Itbl.t Itbl.t;  (* txn -> set of its resources *)
  mutable grants : int;
  mutable tracer : (event -> unit) option;
}

let create () =
  { table = Itbl.create 256; by_txn = Itbl.create 64; grants = 0; tracer = None }

let set_tracer t tr = t.tracer <- tr

let entry t r =
  match Itbl.find_opt t.table r with
  | Some e -> e
  | None ->
    let e = { holders = []; mask = 0 } in
    Itbl.replace t.table r e;
    e

let recompute_mask e =
  e.mask <- List.fold_left (fun m h -> m lor Mode.bit h.mode) 0 e.holders

let txn_set t txn =
  match Itbl.find_opt t.by_txn txn with
  | Some s -> s
  | None ->
    let s = Itbl.create 16 in
    Itbl.replace t.by_txn txn s;
    s

let rec find_holder holders txn (mode : Mode.t) =
  match holders with
  | [] -> None
  | h :: rest ->
    if h.txn = txn && h.mode = mode then Some h else find_holder rest txn mode

let ungrant t ~txn r mode =
  match Itbl.find_opt t.table r with
  | None -> ()
  | Some e -> (
    match find_holder e.holders txn mode with
    | None -> ()
    | Some h ->
      h.count <- h.count - 1;
      t.grants <- t.grants - 1;
      (match t.tracer with
       | Some tr ->
         tr (Released { txn; resource = r; mode; count = 1; kind = Undo })
       | None -> ());
      if h.count = 0 then begin
        e.holders <- List.filter (fun h' -> not (h' == h)) e.holders;
        if e.holders = [] then Itbl.remove t.table r else recompute_mask e;
        (* Keep the per-transaction resource set exact: once the last of the
           transaction's holds on [r] is undone, [r] must leave its set, so
           a later [release_txn] never touches entries the transaction no
           longer owns (they may belong to someone else by then). *)
        if not (List.exists (fun h' -> h'.txn = txn) e.holders) then
          match Itbl.find_opt t.by_txn txn with
          | Some set ->
            Itbl.remove set r;
            if Itbl.length set = 0 then Itbl.remove t.by_txn txn
          | None -> ()
      end)

let sort_uniq_ints l = List.sort_uniq compare l

let acquire_all t ~txn requests =
  (* First pass: collect every conflicting transaction without mutating. The
     mask fast path makes the no-conflict case two hashtable probes per
     request (entry here, holder update below) and no allocation. *)
  let conflicting = ref [] in
  List.iter
    (fun (r, mode) ->
      match Itbl.find_opt t.table r with
      | None -> ()
      | Some e ->
        if not (Mode.mask_compatible mode ~held_mask:e.mask) then
          List.iter
            (fun h ->
              if h.txn <> txn && not (Mode.compatible h.mode mode) then
                conflicting := h.txn :: !conflicting)
            e.holders)
    requests;
  match sort_uniq_ints !conflicting with
  | [] ->
    (* Grant pass: all requests share [txn], so resolve its resource set
       once instead of per grant. *)
    let set = txn_set t txn in
    let grant (r, mode) =
      let e = entry t r in
      (match find_holder e.holders txn mode with
       | Some h -> h.count <- h.count + 1
       | None ->
         e.holders <- { txn; mode; count = 1 } :: e.holders;
         e.mask <- e.mask lor Mode.bit mode);
      t.grants <- t.grants + 1;
      Itbl.replace set r ()
    in
    (match t.tracer with
     | None -> List.iter grant requests
     | Some tr ->
       List.iter
         (fun ((r, mode) as req) ->
           grant req;
           tr (Acquired { txn; resource = r; mode }))
         requests);
    Ok ()
  | blockers -> Error blockers

let release_request t ~txn requests =
  List.iter (fun (r, mode) -> ungrant t ~txn r mode) requests

let release_txn t ~txn =
  match Itbl.find_opt t.by_txn txn with
  | None -> []
  | Some set ->
    let freed = ref [] in
    Itbl.iter
      (fun r () ->
        match Itbl.find_opt t.table r with
        | None -> ()
        | Some e ->
          let mine, others = List.partition (fun h -> h.txn = txn) e.holders in
          if mine <> [] then begin
            List.iter
              (fun h ->
                t.grants <- t.grants - h.count;
                match t.tracer with
                | Some tr ->
                  tr
                    (Released
                       { txn; resource = r; mode = h.mode; count = h.count;
                         kind = End_of_txn })
                | None -> ())
              mine;
            freed := r :: !freed;
            if others = [] then Itbl.remove t.table r
            else begin
              e.holders <- others;
              recompute_mask e
            end
          end)
      set;
    Itbl.remove t.by_txn txn;
    !freed

let holders t r =
  match Itbl.find_opt t.table r with
  | None -> []
  | Some e -> List.map (fun h -> (h.txn, h.mode)) e.holders

let locks_of t ~txn =
  match Itbl.find_opt t.by_txn txn with
  | None -> []
  | Some set ->
    Itbl.fold
      (fun r () acc ->
        match Itbl.find_opt t.table r with
        | None -> acc
        | Some e ->
          List.fold_left
            (fun acc h -> if h.txn = txn then (r, h.mode) :: acc else acc)
            acc e.holders)
      set []

let lock_count t = t.grants

let txn_holds t ~txn r mode =
  match Itbl.find_opt t.table r with
  | None -> false
  | Some e ->
    List.exists (fun h -> h.txn = txn && h.mode = mode && h.count > 0) e.holders

let clear t =
  Itbl.reset t.table;
  Itbl.reset t.by_txn;
  t.grants <- 0;
  match t.tracer with Some tr -> tr Cleared | None -> ()
