module Intern = Dtx_util.Intern
module Race = Dtx_race.Race

(* A resource is a packed int: | doc_id:11 | value_id:20 | node:28 |, 59 bits.
   value_id 0 means "no value dimension"; interned value ids are stored
   shifted by one. Packing keeps 3 low bits spare so a (resource, mode) pair
   also fits one int (see [request_key]) and request lists dedupe with a
   plain integer sort. Doc names and lock values are process-global interned
   symbols: every table in a simulated cluster shares the same bijection,
   which costs nothing and keeps resources directly comparable across
   sites. 11 doc bits allow the 1000+ fragment documents a thousand-site
   scale run creates (7 bits capped runs at 128 sites). *)
type resource = int

let node_bits = 28
let value_bits = 20
let doc_bits = 11
let node_limit = 1 lsl node_bits
let value_limit = (1 lsl value_bits) - 1
let doc_limit = 1 lsl doc_bits
let node_mask = node_limit - 1
let value_mask = (1 lsl value_bits) - 1

let doc_syms = Intern.create ~max_ids:doc_limit "document name"
let value_syms = Intern.create ~max_ids:value_limit "lock value"

(* Site setup pre-interns every replica's name on the main domain: the
   symbol tables are process-global and growth assigns ids in
   mutex-arrival order, so letting the first lock request for a document
   intern it from a worker domain would make the id depend on the
   parallel schedule (DTX_RACE=1 flags exactly that). After warm-up the
   per-lock path only ever takes the hit path, which is order-free. *)
let preintern_doc doc = ignore (Intern.intern doc_syms doc)

(* Single-entry memo for the doc-name intern: derivation emits long runs of
   resources for the same physically-equal doc-name string, so the common
   case skips the string hash entirely. The (doc, id) pair lives in ONE ref
   cell so the memo stays consistent under concurrent writers (worker
   domains in a parallel simulator tick): a racy read sees some complete
   pair, never a doc matched with another doc's id. *)
let last_doc = ref ("", -1)

let doc_id doc =
  let d, id = !last_doc in
  if doc == d then id
  else begin
    let id = Intern.intern doc_syms doc in
    last_doc := (doc, id);
    id
  end

let resource doc node =
  if node < 0 || node >= node_limit then
    invalid_arg (Printf.sprintf "Table.resource: node id %d out of range" node);
  (doc_id doc lsl (node_bits + value_bits)) lor node

let value_resource doc node value =
  resource doc node lor ((Intern.intern value_syms value + 1) lsl node_bits)

let resource_doc r = Intern.lookup doc_syms (r lsr (node_bits + value_bits))

let resource_node r = r land node_mask

let resource_value r =
  match (r lsr node_bits) land value_mask with
  | 0 -> None
  | v -> Some (Intern.lookup value_syms (v - 1))

let compare_resource (a : resource) (b : resource) = compare a b

let pp_resource ppf r =
  match resource_value r with
  | None -> Format.fprintf ppf "%s#%d" (resource_doc r) (resource_node r)
  | Some v -> Format.fprintf ppf "%s#%d=%S" (resource_doc r) (resource_node r) v

let request_key r mode = (r lsl 3) lor Mode.index mode

let dedup_requests reqs =
  match reqs with
  | [] | [ _ ] -> reqs
  | _ ->
    List.rev_map (fun (r, m) -> request_key r m) reqs
    |> List.sort_uniq (fun (a : int) b -> compare a b)
    |> List.map (fun k -> (k lsr 3, Mode.of_index (k land 7)))

(* Int-keyed hashtable with a multiplicative mixer: no polymorphic hashing
   anywhere on the grant/conflict path. *)
module Itbl = Hashtbl.Make (struct
  type t = int

  let equal (a : int) b = a = b

  let hash x = (x * 0x2545F4914F6CDD1D) land max_int
end)

(* One grant: a transaction holding [mode] on a resource, reference-counted
   (the same operation may request the same lock several times, e.g. IS on a
   shared ancestor of two targets). *)
type holder = {
  txn : int;
  mode : Mode.t;
  mutable count : int;
}

(* [mask] is the union of the mode bits of every holder (the requester's own
   included); the common no-conflict acquire answers with one AND against it
   and never scans [holders]. *)
type entry = {
  mutable holders : holder list;
  mutable mask : int;
}

type release_kind = Undo | End_of_txn

type event =
  | Acquired of { txn : int; resource : resource; mode : Mode.t }
  | Released of {
      txn : int;
      resource : resource;
      mode : Mode.t;
      count : int;
      kind : release_kind;
    }
  | Cleared

let pp_event ppf = function
  | Acquired { txn; resource; mode } ->
    Format.fprintf ppf "t%d acquires %s on %a" txn (Mode.to_string mode)
      pp_resource resource
  | Released { txn; resource; mode; count; kind } ->
    Format.fprintf ppf "t%d releases %s on %a (x%d, %s)" txn
      (Mode.to_string mode) pp_resource resource count
      (match kind with Undo -> "undo" | End_of_txn -> "end")
  | Cleared -> Format.fprintf ppf "lock table cleared"

(* The entry map is sharded by a (doc, DataGuide-subtree) bucket computed
   from the packed resource with one xor and one mask: doc id xor node>>4.
   Nodes numbered in DataGuide/document order land siblings in the same
   16-node window, so a transaction's lock batch (target + ancestors) touches
   few shards while distinct documents spread across all of them. Each shard
   keeps [smask], the exact union of the mode bits of every holder it
   contains (maintained by per-mode holder counts), so a whole batch of
   compatible requests can skip the per-entry probes in the conflict pass.
   [by_txn], [grants] and the tracer stay table-global, which keeps
   [release_txn] iteration order — and therefore every traced event — the
   same as the unsharded table's. *)

let default_shard_count = 64

let shard_count =
  match Sys.getenv_opt "DTX_LOCK_SHARDS" with
  | None -> default_shard_count
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 && n <= 4096 && n land (n - 1) = 0 -> n
    | _ ->
      invalid_arg "DTX_LOCK_SHARDS must be a power of two between 1 and 4096")

let shard_mask = shard_count - 1

let shard_of r =
  ((r lsr (node_bits + value_bits)) lxor (r lsr 4)) land shard_mask

type shard = {
  entries : entry Itbl.t;
  mode_counts : int array;  (* holder records per mode index *)
  mutable smask : int;  (* union of mode bits held anywhere in the shard *)
}

(* Shards materialize on first grant; until then every slot aliases this
   never-mutated empty shard, so [create] is one [Array.make] instead of 64
   hashtable allocations (tables are created per site, and short-lived ones
   are common in tests and DPOR replays). Read paths may see the dummy —
   its [entries] is empty and [smask] is 0, which answer correctly. *)
let dummy_shard = { entries = Itbl.create 1; mode_counts = [||]; smask = 0 }

(* A transaction's lock footprint, in grant order: parallel arrays of the
   resource and its table entry. Append-only arrays beat a per-transaction
   hash set on the grant path (one bounds check and two stores per new
   resource, no table allocation per transaction), and carrying the entry
   pointer — valid for the table's lifetime, since released entries remain
   as tombstones — lets the release walk skip the entry-map probe
   entirely. Slots may go stale: an undo leaves the resource in the array,
   and re-acquiring it later appends it again, so the release walk must
   tolerate resources the transaction no longer holds (it strips holders by
   txn, and a stale visit simply finds none). *)
type txn_locks = {
  mutable rs : int array;
  mutable es : entry array;
  mutable n : int;
}

type t = {
  shards : shard array;
  by_txn : txn_locks Itbl.t;  (* txn -> its resources, in grant order *)
  mutable grants : int;
  mutable tracer : (event -> unit) option;
  (* Preallocated scratch for [acquire_all]'s conflict pass: blocker txn
     ids land here instead of a consed list, so the (overwhelmingly common)
     no-conflict batch allocates nothing at all. *)
  mutable conflict_scratch : int array;
  (* One shadow cell for the whole table (shards + [by_txn] + [grants]):
     tables are per-site, so the discipline being checked is exactly
     "only the owning site's events touch this table inside a parallel
     section" — table granularity detects any cross-site access. *)
  race : Race.cell;
}

let create () =
  { shards = Array.make shard_count dummy_shard;
    by_txn = Itbl.create 64;
    grants = 0;
    tracer = None;
    conflict_scratch = Array.make 16 0;
    race = Race.cell "locks.table" }

let dummy_entry = { holders = []; mask = 0 }

let txn_locks t txn =
  match Itbl.find t.by_txn txn with
  | l -> l
  | exception Not_found ->
    let l = { rs = Array.make 8 0; es = Array.make 8 dummy_entry; n = 0 } in
    Itbl.replace t.by_txn txn l;
    l

let push_lock (l : txn_locks) r e =
  if l.n >= Array.length l.rs then begin
    let n = Array.length l.rs in
    let rs = Array.make (2 * n) 0 in
    let es = Array.make (2 * n) dummy_entry in
    Array.blit l.rs 0 rs 0 l.n;
    Array.blit l.es 0 es 0 l.n;
    l.rs <- rs;
    l.es <- es
  end;
  l.rs.(l.n) <- r;
  l.es.(l.n) <- e;
  l.n <- l.n + 1

let set_tracer t tr = t.tracer <- tr

let shard t r = t.shards.(shard_of r)

(* Only the grant path needs a real shard; everything else treats the dummy
   as the empty shard it is. *)
let materialize t r =
  let i = shard_of r in
  let sh = t.shards.(i) in
  if sh != dummy_shard then sh
  else begin
    let sh =
      { entries = Itbl.create 16;
        mode_counts = Array.make (List.length Mode.all) 0;
        smask = 0 }
    in
    t.shards.(i) <- sh;
    sh
  end

(* Exact [smask] maintenance: a mode bit is set iff some holder record with
   that mode lives in the shard. Refcount bumps don't change the counts. *)
let shard_add_holder sh (mode : Mode.t) =
  let i = Mode.index mode in
  let c = sh.mode_counts.(i) in
  sh.mode_counts.(i) <- c + 1;
  if c = 0 then sh.smask <- sh.smask lor Mode.bit mode

let shard_remove_holder sh (mode : Mode.t) =
  let i = Mode.index mode in
  let c = sh.mode_counts.(i) - 1 in
  sh.mode_counts.(i) <- c;
  if c = 0 then sh.smask <- sh.smask land lnot (Mode.bit mode)

(* [Itbl.find] + [Not_found] rather than [find_opt]: the exception is a
   preallocated constant, the [Some] box is a fresh two-word block per
   probe — and these probes run once per grant and once per release. *)
let entry sh r =
  match Itbl.find sh.entries r with
  | e -> e
  | exception Not_found ->
    let e = { holders = []; mask = 0 } in
    Itbl.replace sh.entries r e;
    e

let recompute_mask e =
  e.mask <- List.fold_left (fun m h -> m lor Mode.bit h.mode) 0 e.holders

let rec find_holder holders txn (mode : Mode.t) =
  match holders with
  | [] -> None
  | h :: rest ->
    if h.txn = txn && h.mode = mode then Some h else find_holder rest txn mode

let ungrant t ~txn r mode =
  Race.write ~ctx:"Table.ungrant" t.race;
  let sh = shard t r in
  match Itbl.find_opt sh.entries r with
  | None -> ()
  | Some e -> (
    match find_holder e.holders txn mode with
    | None -> ()
    | Some h ->
      h.count <- h.count - 1;
      t.grants <- t.grants - 1;
      (match t.tracer with
       | Some tr ->
         tr (Released { txn; resource = r; mode; count = 1; kind = Undo })
       | None -> ());
      if h.count = 0 then begin
        e.holders <- List.filter (fun h' -> not (h' == h)) e.holders;
        shard_remove_holder sh mode;
        (* The entry stays (as an empty tombstone) and so does the resource
           in the transaction's footprint array: both are reused on the next
           acquire, and [release_txn] partitions holders by txn, so visiting
           an entry the transaction no longer owns — even one that belongs
           to someone else by then — is a no-op. *)
        recompute_mask e
      end)

(* [Ok ()] preallocated: the grant path returns it thousands of times per
   simulated second and must not cons a fresh block each time. *)
let ok_unit : (unit, int list) result = Ok ()

let push_conflict t n txn =
  if n >= Array.length t.conflict_scratch then begin
    let bigger = Array.make (2 * Array.length t.conflict_scratch) 0 in
    Array.blit t.conflict_scratch 0 bigger 0 n;
    t.conflict_scratch <- bigger
  end;
  t.conflict_scratch.(n) <- txn;
  n + 1

(* Sorted unique list of the first [n] scratch entries — only ever built on
   the (rare) conflicting path, so it may allocate freely. *)
let scratch_blockers t n =
  let a = Array.sub t.conflict_scratch 0 n in
  Array.sort (fun (x : int) y -> compare x y) a;
  let rec uniq i prev acc =
    if i < 0 then acc
    else
      let x = a.(i) in
      if x = prev then uniq (i - 1) prev acc else uniq (i - 1) x (x :: acc)
  in
  uniq (n - 2) a.(n - 1) [ a.(n - 1) ]

let acquire_all t ~txn requests =
  Race.write ~ctx:"Table.acquire_all" t.race;
  (* First pass: collect every conflicting transaction without mutating.
     Requests route to their shard with one xor+mask; when the request mode
     is compatible with the shard's whole-shard mask no entry in the shard
     can conflict, so the common uncontended case never even probes the
     entry map. Otherwise the per-entry mask keeps the old fast path.
     Explicit recursion (no closures) and the table's scratch array keep
     this pass allocation-free. *)
  let rec scan_holders holders mode n =
    match holders with
    | [] -> n
    | h :: rest ->
      let n =
        if h.txn <> txn && not (Mode.compatible h.mode mode) then
          push_conflict t n h.txn
        else n
      in
      scan_holders rest mode n
  in
  let rec conflict_pass reqs n =
    match reqs with
    | [] -> n
    | (r, mode) :: rest ->
      let sh = shard t r in
      let n =
        if Mode.mask_compatible mode ~held_mask:sh.smask then n
        else
          match Itbl.find_opt sh.entries r with
          | None -> n
          | Some e ->
            if Mode.mask_compatible mode ~held_mask:e.mask then n
            else scan_holders e.holders mode n
      in
      conflict_pass rest n
  in
  let conflicts = conflict_pass requests 0 in
  if conflicts > 0 then Error (scratch_blockers t conflicts)
  else begin
    (* Grant pass: all requests share [txn], so resolve its footprint array
       once instead of per grant. Iteration stays in request order (not
       shard order) so traced Acquired events are unchanged. A resource
       joins the footprint only when the transaction gains its first holder
       on it (refcount bumps and extra modes reuse the existing slot). *)
    let locks = txn_locks t txn in
    let rec among holders =
      match holders with
      | [] -> false
      | h :: rest -> h.txn = txn || among rest
    in
    let rec grant_pass reqs =
      match reqs with
      | [] -> ()
      | (r, mode) :: rest ->
        let sh = materialize t r in
        let e = entry sh r in
        (match find_holder e.holders txn mode with
         | Some h -> h.count <- h.count + 1
         | None ->
           if not (among e.holders) then push_lock locks r e;
           e.holders <- { txn; mode; count = 1 } :: e.holders;
           e.mask <- e.mask lor Mode.bit mode;
           shard_add_holder sh mode);
        t.grants <- t.grants + 1;
        (match t.tracer with
         | Some tr -> tr (Acquired { txn; resource = r; mode })
         | None -> ());
        grant_pass rest
    in
    grant_pass requests;
    ok_unit
  end

let release_request t ~txn requests =
  List.iter (fun (r, mode) -> ungrant t ~txn r mode) requests

let release_txn t ~txn =
  Race.write ~ctx:"Table.release_txn" t.race;
  match Itbl.find_opt t.by_txn txn with
  | None -> []
  | Some locks ->
    let freed = ref [] in
    (* Walk the footprint in grant order — deterministic and independent of
       the shard layout, so traced Released events cannot vary with
       DTX_LOCK_SHARDS. Stale slots (undone or already-visited resources)
       find no holders for [txn] and fall through. *)
    let rec strip sh r holders kept =
      match holders with
      | [] -> kept
      | h :: rest ->
        if h.txn = txn then begin
          t.grants <- t.grants - h.count;
          shard_remove_holder sh h.mode;
          (match t.tracer with
           | Some tr ->
             tr
               (Released
                  { txn; resource = r; mode = h.mode; count = h.count;
                    kind = End_of_txn })
           | None -> ());
          strip sh r rest kept
        end
        else strip sh r rest (h :: kept)
    in
    for i = 0 to locks.n - 1 do
      let r = locks.rs.(i) in
      let e = locks.es.(i) in
      let sh = shard t r in
      (* [grants] moves iff [strip] removed one of [txn]'s holders, so it
         doubles as the found-flag without a tuple return. *)
      let g0 = t.grants in
      let kept = strip sh r e.holders [] in
      if t.grants <> g0 then begin
        freed := r :: !freed;
        e.holders <- kept;
        recompute_mask e
      end
    done;
    Itbl.remove t.by_txn txn;
    !freed

let holders t r =
  Race.read ~ctx:"Table.holders" t.race;
  match Itbl.find_opt (shard t r).entries r with
  | None -> []
  | Some e -> List.map (fun h -> (h.txn, h.mode)) e.holders

let locks_of t ~txn =
  Race.read ~ctx:"Table.locks_of" t.race;
  match Itbl.find_opt t.by_txn txn with
  | None -> []
  | Some locks ->
    let acc = ref [] in
    for i = 0 to locks.n - 1 do
      let r = locks.rs.(i) in
      List.iter
        (fun h -> if h.txn = txn then acc := (r, h.mode) :: !acc)
        locks.es.(i).holders
    done;
    (* A re-acquired-after-undo resource can sit in the footprint twice;
       collapse the duplicate pairs. *)
    List.sort_uniq compare !acc

let lock_count t = t.grants

let txn_holds t ~txn r mode =
  Race.read ~ctx:"Table.txn_holds" t.race;
  match Itbl.find_opt (shard t r).entries r with
  | None -> false
  | Some e ->
    List.exists (fun h -> h.txn = txn && h.mode = mode && h.count > 0) e.holders

let clear t =
  Race.write ~ctx:"Table.clear" t.race;
  Array.iter
    (fun sh ->
      if sh != dummy_shard then begin
        Itbl.reset sh.entries;
        Array.fill sh.mode_counts 0 (Array.length sh.mode_counts) 0;
        sh.smask <- 0
      end)
    t.shards;
  Itbl.reset t.by_txn;
  t.grants <- 0;
  match t.tracer with Some tr -> tr Cleared | None -> ()
