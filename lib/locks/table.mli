(** The lock table: who holds which mode on which resource.

    A {e resource} is a (document, node, value option) triple; which node-id
    space it refers to depends on the protocol (XDGL locks DataGuide node
    ids, Node2PL locks document node ids, Doc2PL locks the pseudo-node 0 of
    each document). The table itself is protocol-agnostic.

    Internally a resource is a packed integer — document names and lock
    values are interned ({!Dtx_util.Intern}) into small ids and packed with
    the node id into one word — so the table is an int-keyed hashtable with
    no polymorphic hashing or comparison on the grant path, and each entry
    carries the bitmask union of its held modes so the common conflict-free
    acquire is answered by a single AND ({!Mode.mask_compatible}) instead of
    a holder-list scan.

    Acquisition is {e all-or-nothing} over a request list, matching
    Alg. 3: either every requested lock is granted, or none is recorded and
    the conflicting transactions are reported (they become wait-for graph
    edges). Re-acquiring a mode already held is counted, so releases on undo
    are balanced. *)

type resource
(** Packed (doc, node, value) key. Equality and polymorphic compare behave
    like integer comparison; use the accessors below to recover the
    components. The value dimension serves XDGL's logical/value locks:
    [(node, Some v)] resources are disjoint from [(node, None)] and from
    other values, so predicate readers of one value never collide with
    writers of another. *)

val preintern_doc : string -> unit
(** Intern a document name into the process-global symbol table now, on
    the calling (main) domain. Site setup warms every replica's name so
    the per-lock fast path never grows the table from a worker domain —
    growth there assigns ids in mutex-arrival order, which the parallel
    tick cannot make deterministic (and DTX_RACE=1 reports). *)

val resource : string -> int -> resource
(** Plain structural resource (no value dimension). Node ids must fit 28
    bits; at most 2048 distinct document names and 2^20-1 distinct lock
    values may be interned per process. @raise Invalid_argument beyond. *)

val value_resource : string -> int -> string -> resource

val resource_doc : resource -> string

val resource_node : resource -> int

val resource_value : resource -> string option

val compare_resource : resource -> resource -> int

val pp_resource : Format.formatter -> resource -> unit

val shard_count : int
(** Number of internal lock shards, a power of two. Defaults to 64;
    overridable via the [DTX_LOCK_SHARDS] environment variable (set it to 1
    for the unsharded ablation). Sharding is invisible in the API — it only
    changes which entry map a resource lives in. *)

val shard_of : resource -> int
(** The (doc, DataGuide-subtree) bucket a resource routes to:
    [doc_id xor (node >> 4)], masked to [shard_count]. Exposed for tests. *)

val dedup_requests : (resource * Mode.t) list -> (resource * Mode.t) list
(** Sort and deduplicate a request list via single-int (resource, mode) keys
    — the protocols' replacement for [List.sort_uniq compare] over records. *)

type release_kind =
  | Undo  (** operation rollback: one reference-count decrement *)
  | End_of_txn  (** Strict 2PL end-of-transaction bulk release *)

type event =
  | Acquired of { txn : int; resource : resource; mode : Mode.t }
  | Released of {
      txn : int;
      resource : resource;
      mode : Mode.t;
      count : int;  (** reference counts dropped by this release *)
      kind : release_kind;
    }
  | Cleared  (** {!clear}: the site lost its volatile lock state *)

val pp_event : Format.formatter -> event -> unit

type t

val create : unit -> t

val set_tracer : t -> (event -> unit) option -> unit
(** Install (or remove) a trace sink. With [None] — the default — the grant
    and release paths are unchanged except for one immediate [match], so
    tracing costs nothing when disabled. The tracer fires after the table
    mutated, i.e. an [Acquired] event observes the lock already held. *)

val acquire_all :
  t -> txn:int -> (resource * Mode.t) list -> (unit, int list) result
(** [acquire_all t ~txn requests] grants every request or none. [Error txns]
    lists the distinct transactions whose held locks conflict (the wait-for
    edges to add). Requests by [txn] never conflict with [txn]'s own locks.
    Granted duplicates within one call are reference-counted. *)

val release_txn : t -> txn:int -> resource list
(** Release everything [txn] holds (Strict 2PL end-of-transaction release);
    returns the resources freed so the scheduler can wake waiters. *)

val release_request :
  t -> txn:int -> (resource * Mode.t) list -> unit
(** Undo one granted [acquire_all] (used when an operation is rolled back at
    a site while its transaction lives on and keeps its other locks). *)

val holders : t -> resource -> (int * Mode.t) list
(** Current holders of a resource (one entry per (txn, mode)). *)

val locks_of : t -> txn:int -> (resource * Mode.t) list
(** Every (resource, mode) held by [txn]. *)

val lock_count : t -> int
(** Total number of (txn, mode, resource) grants currently recorded — the
    "lock management overhead" the paper talks about. *)

val txn_holds : t -> txn:int -> resource -> Mode.t -> bool

val clear : t -> unit
(** Drop every grant (crash simulation: a restarting site loses its
    volatile lock state). *)
