(** Simulated message passing between DTX sites.

    Every inter-scheduler interaction of the paper — remote operations and
    their status replies (Alg. 1 l. 13, Alg. 2 l. 13), commit/abort/fail
    messages (Algs. 5–6), and the deadlock detector's wait-for-graph requests
    (Alg. 4 l. 4) — crosses this layer as a typed {!Msg.t} value routed by
    {!dispatch}. Each message costs a base latency plus a per-byte term
    (its {e actual} serialized size, {!Msg.size}), modelling the paper's
    100 Mbit/s switched LAN; local (same-site) deliveries are free but still
    go through the event queue, preserving causal ordering.

    Traffic is counted per message kind ({!traffic}) and in total; both feed
    the experiment reports (the "communication and synchronization overhead"
    visible in the total-replication results). *)

type t

type profile = {
  base_latency_ms : float;  (** one-way latency floor *)
  per_kb_ms : float;  (** serialization cost per KiB *)
}

val lan : profile
(** The paper's testbed: a 100 Mbit/s switched LAN
    ([base_latency_ms = 0.35], [per_kb_ms = 0.08]). *)

val wan : profile
(** The paper's future-work target ("evaluate DTX in WAN environments"):
    ~20 ms one-way latency, ~10 Mbit/s ([base_latency_ms = 20.0],
    [per_kb_ms = 0.8]). *)

val create :
  sim:Dtx_sim.Sim.t ->
  ?profile:profile ->
  ?base_latency_ms:float ->
  ?per_kb_ms:float ->
  ?drop_pct:int ->
  ?seed:int ->
  unit ->
  t
(** Defaults to {!lan}; the scalar arguments override the profile's
    fields individually. [drop_pct] (default 0) makes the link lossy:
    each unreliable remote message is dropped with that probability
    (deterministically, from [seed]). *)

type handler = src:int -> dst:int -> Msg.t -> unit

val set_handler : t -> handler -> unit
(** Register the cluster's message router: every {!dispatch}ed message is
    delivered to it after the link delay. Exactly one handler serves a
    network; a later call replaces the earlier one. *)

type dir =
  | Send  (** [dispatch] accepted the message (before any loss decision) *)
  | Drop  (** the lossy link discarded it *)
  | Deliver  (** about to run the handler, at delivery time *)

type tracer = src:int -> dst:int -> dir -> Msg.t -> unit

val set_tracer : t -> tracer option -> unit
(** Install (or remove) a trace sink on {!dispatch}ed messages. [Deliver]
    fires inside the simulator event, immediately before the handler, so a
    tracer observes exactly the causal order the cluster does. The untyped
    {!send} path is not traced. [None] (the default) leaves dispatch
    unchanged beyond one immediate [match] per message. *)

val dispatch : t -> src:int -> dst:int -> ?reliable:bool -> Msg.t -> unit
(** Ship a protocol message: its {!Msg.size} is charged as traffic (counted
    per {!Msg.Kind}), and the registered handler receives it after the link
    delay. [src = dst] delivers at the next event with no delay and is not
    counted as network traffic. [reliable] (default [true]) exempts the
    message from loss — commit/abort/ack/wake traffic rides a retransmitting
    channel; only operation shipments and their status replies are sent
    unreliably by the cluster.
    @raise Invalid_argument if no handler was registered. *)

val send :
  t -> src:int -> dst:int -> bytes:int -> ?reliable:bool -> (unit -> unit) ->
  unit
(** Low-level untyped delivery (simulation plumbing and tests): deliver [k]
    after the link delay of a [bytes]-sized message. Counted in the totals
    but not in the per-kind {!traffic}. Same [src = dst] and [reliable]
    semantics as {!dispatch}. *)

val latency : t -> src:int -> dst:int -> bytes:int -> float
(** The delay a message would incur. *)

val messages : t -> int
(** Remote messages sent so far. *)

val dropped : t -> int
(** Unreliable messages lost to [drop_pct]. *)

val bytes_sent : t -> int

(** Per-message-kind counters (remote {!dispatch} traffic only). *)
type traffic = {
  t_kind : Msg.Kind.t;
  t_sent : int;
  t_dropped : int;
  t_bytes : int;
}

val traffic : t -> traffic list
(** One row per kind that saw traffic, in {!Msg.Kind.all} order. *)

val pp_traffic : Format.formatter -> t -> unit
(** A small table of {!traffic} (the bench/example "message breakdown"). *)

val reset_counters : t -> unit
