(** Simulated message passing between DTX sites.

    Every inter-scheduler interaction of the paper — remote operations and
    their status replies (Alg. 1 l. 13, Alg. 2 l. 13), commit/abort/fail
    messages (Algs. 5–6), and the deadlock detector's wait-for-graph requests
    (Alg. 4 l. 4) — crosses this layer as a typed {!Msg.t} value routed by
    {!dispatch}. Each message costs a base latency plus a per-byte term
    (its {e actual} serialized size, {!Msg.size}), modelling the paper's
    100 Mbit/s switched LAN; local (same-site) deliveries are free but still
    go through the event queue, preserving causal ordering.

    Traffic is counted per message kind ({!traffic}) and in total; both feed
    the experiment reports (the "communication and synchronization overhead"
    visible in the total-replication results).

    Fault injection (the chaos harness) plugs in through {!set_fault}: a
    {!fault} decides drop/duplicate/delay per remote message at send time and
    re-checks link reachability at delivery time, so partitions cut even
    in-flight traffic. With no fault installed the dispatch path is the
    plain one-schedule fast path. *)

type t

(** How a network is configured. [Config.t] collapses what used to be five
    overlapping optional arguments of {!create} into one value with
    functional updaters. *)
module Config : sig
  type t = {
    base_latency_ms : float;  (** one-way latency floor *)
    per_kb_ms : float;  (** serialization cost per KiB *)
    drop_pct : int;
        (** probability (percent) that an {!Unreliable} remote message is
            lost; 0 disables the lossy link *)
    seed : int;  (** seed of the deterministic loss stream *)
  }

  val lan : t
  (** The paper's testbed: a 100 Mbit/s switched LAN
      ([base_latency_ms = 0.35], [per_kb_ms = 0.08]), lossless. *)

  val wan : t
  (** The paper's future-work target ("evaluate DTX in WAN environments"):
      ~20 ms one-way latency, ~10 Mbit/s. *)

  val with_base_latency_ms : float -> t -> t

  val with_per_kb_ms : float -> t -> t

  val with_drop_pct : int -> t -> t
  (** @raise Invalid_argument outside 0..100. *)

  val with_seed : int -> t -> t

  val pp : Format.formatter -> t -> unit
end

val of_config : sim:Dtx_sim.Sim.t -> Config.t -> t
(** The constructor. [Net.of_config ~sim Net.Config.lan] is the common
    case; derive variants with the [Config.with_*] updaters.
    @raise Invalid_argument if [drop_pct] is outside 0..100. *)

(** Which transport a message rides. [Reliable] models a retransmitting
    channel: exempt from the {!Config.t} lossy link and from fault-plan
    drop/duplicate decisions (partitions and crashes still cut it —
    no transport survives a severed link). [Unreliable] is raw datagram
    service: the coordinator ships operations on it and recovers via
    timeout + retransmission. *)
type channel = Reliable | Unreliable

type handler = src:int -> dst:int -> Msg.t -> unit

val set_handler : t -> handler -> unit
(** Register the cluster's message router: every {!dispatch}ed message is
    delivered to it after the link delay. Exactly one handler serves a
    network; a later call replaces the earlier one. *)

type dir =
  | Send  (** [dispatch] accepted the message (before any loss decision) *)
  | Drop  (** the lossy link, fault plan, or a mid-flight partition discarded it *)
  | Deliver  (** about to run the handler, at delivery time *)

type tracer = src:int -> dst:int -> dir -> Msg.t -> unit

val set_tracer : t -> tracer option -> unit
(** Install (or remove) a trace sink on {!dispatch}ed messages. [Deliver]
    fires inside the simulator event, immediately before the handler, so a
    tracer observes exactly the causal order the cluster does. A duplicated
    message produces one [Send] and one [Deliver] {e per copy}. The untyped
    {!send} path is not traced. [None] (the default) leaves dispatch
    unchanged beyond one immediate [match] per message. *)

(** A fault-plan hook (see [Dtx_fault.Injector]). [f_offsets] is consulted
    once per remote {!dispatch}: it returns the extra delay of every copy to
    deliver — [[]] drops the message, [[0.0]] delivers it normally,
    [[0.0; j]] duplicates it with the copy [j] ms late, [[j]] just delays
    it. [f_deliverable] is consulted again when each copy's delivery event
    fires (and for local deliveries), so partitions and crashes swallow
    in-flight traffic; a swallowed copy is traced and counted as a drop. *)
type fault = {
  f_offsets :
    time:float -> src:int -> dst:int -> channel -> Msg.t -> float list;
  f_deliverable : time:float -> src:int -> dst:int -> bool;
}

val set_fault : t -> fault option -> unit
(** Install (or remove) the fault hook. [None] (the default) restores the
    unfaulted fast path. *)

val set_site_hint : t -> (int -> Msg.t -> int) option -> unit
(** [set_site_hint net (Some hint)] lets {!dispatch} tag delivery events
    with [hint dst msg] — the site whose local state the handler will touch,
    or [-1] when it touches shared or coordinator state. Site-tagged
    deliveries become eligible for parallel execution within a simulator
    tick ({!Dtx_sim.Sim}); the hint must only name a site when the handler
    provably confines its writes to that site. Ignored while a {!set_tracer}
    tracer is installed (traced runs stay serial so [Deliver] callbacks see
    the causal order). [None] (the default) tags nothing. *)

val dispatch : t -> src:int -> dst:int -> ?channel:channel -> Msg.t -> unit
(** Ship a protocol message: its {!Msg.size} is charged as traffic (counted
    per {!Msg.Kind}), and the registered handler receives it after the link
    delay. [src = dst] delivers at the next event with no delay and is not
    counted as network traffic. [channel] (default [Reliable]) picks the
    transport — commit/abort/ack/wake traffic rides [Reliable]; operation
    shipments and their status replies ride [Unreliable] and are guarded by
    coordinator retransmission.
    @raise Invalid_argument if no handler was registered. *)

val send :
  t -> src:int -> dst:int -> bytes:int -> ?channel:channel -> (unit -> unit) ->
  unit
(** Low-level untyped delivery (simulation plumbing and tests): deliver [k]
    after the link delay of a [bytes]-sized message. Counted in the totals
    but not in the per-kind {!traffic}, not traced, and not subject to
    fault plans. Same [src = dst] and [channel] semantics as {!dispatch}. *)

val latency : t -> src:int -> dst:int -> bytes:int -> float
(** The delay a message would incur. *)

type delivery = {
  d_src : int;
  d_dst : int;
  d_msg : Msg.t;
}
(** One in-flight {!dispatch} copy: the payload a pending simulator event
    will hand the handler when it fires. *)

val pending_deliveries : t -> (Dtx_sim.Sim.event_id * delivery) list
(** Every in-flight message copy, keyed by its simulator event id (the same
    ids {!Dtx_sim.Sim.candidates} reports), in no particular order. This is
    how the schedule explorer distinguishes reorderable message deliveries
    from internal timers among the pending events. Entries leave the set
    when their event fires — even if a mid-flight partition then swallows
    the copy. The untyped {!send} path is not tracked. *)

val messages : t -> int
(** Remote messages sent so far. *)

val dropped : t -> int
(** Unreliable messages lost to [drop_pct], plus fault-plan and
    mid-flight-partition drops. *)

val bytes_sent : t -> int

(** Per-message-kind counters (remote {!dispatch} traffic only). *)
type traffic = {
  t_kind : Msg.Kind.t;
  t_sent : int;
  t_dropped : int;
  t_bytes : int;
}

val traffic : t -> traffic list
(** One row per kind that saw traffic, in {!Msg.Kind.all} order. *)

val pp_traffic : Format.formatter -> t -> unit
(** A small table of {!traffic} (the bench/example "message breakdown"). *)

val reset_counters : t -> unit
