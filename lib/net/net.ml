module Sim = Dtx_sim.Sim
module Rng = Dtx_util.Rng
module Race = Dtx_race.Race

module Config = struct
  type t = {
    base_latency_ms : float;
    per_kb_ms : float;
    drop_pct : int;
    seed : int;
  }

  let lan = { base_latency_ms = 0.35; per_kb_ms = 0.08; drop_pct = 0; seed = 1 }

  let wan = { lan with base_latency_ms = 20.0; per_kb_ms = 0.8 }

  let with_base_latency_ms v t = { t with base_latency_ms = v }

  let with_per_kb_ms v t = { t with per_kb_ms = v }

  let with_drop_pct v t =
    if v < 0 || v > 100 then invalid_arg "Net.Config.with_drop_pct";
    { t with drop_pct = v }

  let with_seed v t = { t with seed = v }

  let pp ppf t =
    Format.fprintf ppf "latency=%.2fms +%.2fms/KiB drop=%d%% seed=%d"
      t.base_latency_ms t.per_kb_ms t.drop_pct t.seed
end

type channel = Reliable | Unreliable

type handler = src:int -> dst:int -> Msg.t -> unit

type dir = Send | Drop | Deliver

type tracer = src:int -> dst:int -> dir -> Msg.t -> unit

(* The chaos hook: [f_offsets] decides, at send time, when each copy of a
   remote message is delivered ([] drops it, [0.0] is a normal delivery, two
   entries duplicate it, a positive entry delays that copy); [f_deliverable]
   is consulted again when a copy's delivery event fires, so a partition
   that forms while the message is in flight still cuts it. *)
type fault = {
  f_offsets : time:float -> src:int -> dst:int -> channel -> Msg.t -> float list;
  f_deliverable : time:float -> src:int -> dst:int -> bool;
}

type delivery = {
  d_src : int;
  d_dst : int;
  d_msg : Msg.t;
}

type t = {
  sim : Sim.t;
  base_latency_ms : float;
  per_kb_ms : float;
  drop_pct : int;
  rng : Rng.t;
  mutable messages : int;
  mutable bytes : int;
  mutable dropped : int;
  sent_by_kind : int array;
  dropped_by_kind : int array;
  bytes_by_kind : int array;
  mutable handler : handler option;
  mutable tracer : tracer option;
  mutable fault : fault option;
  (* Maps (destination, message) to the site whose state the delivery
     handler will touch, or -1 when the handler touches shared/coordinator
     state. Site-tagged delivery events may run on worker domains during a
     parallel simulator tick (see {!Dtx_sim.Sim}); untagged ones are
     barriers. Installed by the cluster once routing is known. *)
  mutable site_hint : (int -> Msg.t -> int) option;
  (* Every in-flight [dispatch] copy, keyed by its simulator event id, so a
     schedule explorer can tell which pending events are message deliveries
     (and to whom). Entries retire when the delivery event fires — including
     copies a mid-flight partition then swallows. *)
  pending : (Sim.event_id, delivery) Hashtbl.t;
  (* Shadow cells for DTX_RACE=1: the traffic counters + loss RNG as one
     unit, and the pending table as another. Clean code never touches
     either from inside a parallel section — [send]/[dispatch]/retire all
     defer — so any in-epoch access is a discipline violation. *)
  race_counters : Race.cell;
  race_pending : Race.cell;
}

let of_config ~sim (c : Config.t) =
  if c.Config.drop_pct < 0 || c.Config.drop_pct > 100 then
    invalid_arg "Net.of_config: drop_pct";
  { sim;
    base_latency_ms = c.Config.base_latency_ms;
    per_kb_ms = c.Config.per_kb_ms;
    drop_pct = c.Config.drop_pct;
    rng = Rng.create c.Config.seed;
    messages = 0;
    bytes = 0;
    dropped = 0;
    sent_by_kind = Array.make Msg.Kind.count 0;
    dropped_by_kind = Array.make Msg.Kind.count 0;
    bytes_by_kind = Array.make Msg.Kind.count 0;
    handler = None;
    tracer = None;
    fault = None;
    site_hint = None;
    pending = Hashtbl.create 16;
    race_counters = Race.cell "Net.counters";
    race_pending = Race.cell "Net.pending" }

let set_handler t h = t.handler <- Some h

let set_tracer t tr = t.tracer <- tr

let set_fault t f = t.fault <- f

let set_site_hint t h = t.site_hint <- h

let latency t ~src ~dst ~bytes =
  if src = dst then 0.0
  else t.base_latency_ms +. (t.per_kb_ms *. (float_of_int bytes /. 1024.0))

(* The seeded lossy-link decision ([drop_pct]); fault-plan drops are decided
   by the installed {!fault}, not here. *)
let lossy_drop t ~src ~dst channel =
  src <> dst && channel = Unreliable && t.drop_pct > 0 && Rng.pct t.rng t.drop_pct

let send_now t ~src ~dst ~bytes ~channel k =
  Race.write ~ctx:"Net.send_now" t.race_counters;
  let delay = latency t ~src ~dst ~bytes in
  if src <> dst then begin
    t.messages <- t.messages + 1;
    t.bytes <- t.bytes + bytes
  end;
  if lossy_drop t ~src ~dst channel then t.dropped <- t.dropped + 1
  else ignore (Sim.schedule t.sim ~delay k)

let send t ~src ~dst ~bytes ?(channel = Reliable) k =
  (* Counters and the RNG are shared: from a worker domain during a parallel
     tick the whole send defers, replaying in serial order on the main
     domain. *)
  let go () = send_now t ~src ~dst ~bytes ~channel k in
  if not (Sim.defer go) then go ()

let dispatch_now t ~src ~dst ~channel msg =
  Race.write ~ctx:"Net.dispatch_now" t.race_counters;
  let h =
    match t.handler with
    | Some h -> h
    | None -> invalid_arg "Net.dispatch: no handler registered"
  in
  let bytes = Msg.size msg in
  let i = Msg.Kind.index (Msg.kind msg) in
  let delay = latency t ~src ~dst ~bytes in
  if src <> dst then begin
    t.messages <- t.messages + 1;
    t.bytes <- t.bytes + bytes;
    t.sent_by_kind.(i) <- t.sent_by_kind.(i) + 1;
    t.bytes_by_kind.(i) <- t.bytes_by_kind.(i) + bytes
  end;
  (match t.tracer with
   | Some tr -> tr ~src ~dst Send msg
   | None -> ());
  let count_drop () =
    Race.write ~ctx:"Net.count_drop" t.race_counters;
    t.dropped <- t.dropped + 1;
    t.dropped_by_kind.(i) <- t.dropped_by_kind.(i) + 1;
    match t.tracer with
    | Some tr -> tr ~src ~dst Drop msg
    | None -> ()
  in
  if lossy_drop t ~src ~dst channel then count_drop ()
  else begin
    let deliver () =
      let k =
        match t.tracer with
        | None -> fun () -> h ~src ~dst msg
        | Some tr ->
          fun () ->
            tr ~src ~dst Deliver msg;
            h ~src ~dst msg
      in
      match t.fault with
      | None -> k
      | Some f ->
        (* Re-check the link when the copy actually arrives: a partition
           (or crash) that formed in flight swallows it. The drop counters
           are shared state, so when the delivery fired on a worker domain
           the accounting defers to the main-domain replay. *)
        fun () ->
          if f.f_deliverable ~time:(Sim.now t.sim) ~src ~dst then k ()
          else if not (Sim.defer count_drop) then count_drop ()
    in
    (* Site-tag the delivery event when the cluster can prove the handler
       only touches [dst]'s site state — but never while a tracer watches:
       the tracer's [Deliver] callbacks must observe the serial causal
       order, so traced runs keep every delivery on the main domain. *)
    let site =
      match t.site_hint with
      | Some hint when t.tracer = None -> hint dst msg
      | Some _ | None -> -1
    in
    let schedule_delivery delay =
      let body = deliver () in
      let id = ref None in
      let seq =
        Sim.schedule t.sim ~site ~delay (fun () ->
            (match !id with
             | Some seq ->
               (* the pending table is shared across sites *)
               let retire () =
                 Race.write ~ctx:"Net.pending.retire" t.race_pending;
                 Hashtbl.remove t.pending seq
               in
               if not (Sim.defer retire) then retire ()
             | None -> ());
            body ())
      in
      id := Some seq;
      Race.write ~ctx:"Net.pending.add" t.race_pending;
      Hashtbl.replace t.pending seq { d_src = src; d_dst = dst; d_msg = msg }
    in
    match t.fault with
    | None -> schedule_delivery delay
    | Some f -> (
      (* Local deliveries never cross a link, so send-time faults do not
         apply; the delivery-time check still guards a crashed site. *)
      let offsets =
        if src = dst then [ 0.0 ]
        else f.f_offsets ~time:(Sim.now t.sim) ~src ~dst channel msg
      in
      match offsets with
      | [] -> count_drop ()
      | offsets ->
        List.iter
          (fun off -> schedule_delivery (delay +. Float.max 0.0 off))
          offsets)
  end

(* Traffic counters, the loss RNG, the tracer and the pending table are all
   shared, so a dispatch issued by a site-tagged action on a worker domain
   defers wholesale; the main-domain replay (in serial order) then performs
   the counting, loss decision and delivery scheduling exactly as a serial
   run would have. *)
let dispatch t ~src ~dst ?(channel = Reliable) msg =
  let go () = dispatch_now t ~src ~dst ~channel msg in
  if not (Sim.defer go) then go ()

let pending_deliveries t =
  Race.read ~ctx:"Net.pending_deliveries" t.race_pending;
  Hashtbl.fold (fun seq d acc -> (seq, d) :: acc) t.pending []

let messages t = t.messages

let dropped t = t.dropped

let bytes_sent t = t.bytes

type traffic = {
  t_kind : Msg.Kind.t;
  t_sent : int;
  t_dropped : int;
  t_bytes : int;
}

let traffic t =
  List.filter_map
    (fun k ->
      let i = Msg.Kind.index k in
      if t.sent_by_kind.(i) = 0 && t.dropped_by_kind.(i) = 0 then None
      else
        Some
          { t_kind = k;
            t_sent = t.sent_by_kind.(i);
            t_dropped = t.dropped_by_kind.(i);
            t_bytes = t.bytes_by_kind.(i) })
    Msg.Kind.all

let pp_traffic ppf t =
  let rows = traffic t in
  if rows = [] then Format.fprintf ppf "(no typed traffic)"
  else begin
    Format.fprintf ppf "%-12s %8s %8s %10s" "message" "sent" "dropped" "bytes";
    List.iter
      (fun r ->
        Format.fprintf ppf "@\n%-12s %8d %8d %10d"
          (Msg.Kind.to_string r.t_kind)
          r.t_sent r.t_dropped r.t_bytes)
      rows
  end

let reset_counters t =
  t.messages <- 0;
  t.bytes <- 0;
  t.dropped <- 0;
  Array.fill t.sent_by_kind 0 Msg.Kind.count 0;
  Array.fill t.dropped_by_kind 0 Msg.Kind.count 0;
  Array.fill t.bytes_by_kind 0 Msg.Kind.count 0
