module Sim = Dtx_sim.Sim

type profile = {
  base_latency_ms : float;
  per_kb_ms : float;
}

let lan = { base_latency_ms = 0.35; per_kb_ms = 0.08 }

let wan = { base_latency_ms = 20.0; per_kb_ms = 0.8 }

module Rng = Dtx_util.Rng

type handler = src:int -> dst:int -> Msg.t -> unit

type dir = Send | Drop | Deliver

type tracer = src:int -> dst:int -> dir -> Msg.t -> unit

type t = {
  sim : Sim.t;
  base_latency_ms : float;
  per_kb_ms : float;
  drop_pct : int;
  rng : Rng.t;
  mutable messages : int;
  mutable bytes : int;
  mutable dropped : int;
  sent_by_kind : int array;
  dropped_by_kind : int array;
  bytes_by_kind : int array;
  mutable handler : handler option;
  mutable tracer : tracer option;
}

let create ~sim ?(profile = lan) ?base_latency_ms ?per_kb_ms ?(drop_pct = 0)
    ?(seed = 1) () =
  if drop_pct < 0 || drop_pct > 100 then invalid_arg "Net.create: drop_pct";
  let pick override dflt = match override with Some v -> v | None -> dflt in
  { sim;
    base_latency_ms = pick base_latency_ms profile.base_latency_ms;
    per_kb_ms = pick per_kb_ms profile.per_kb_ms;
    drop_pct;
    rng = Rng.create seed;
    messages = 0;
    bytes = 0;
    dropped = 0;
    sent_by_kind = Array.make Msg.Kind.count 0;
    dropped_by_kind = Array.make Msg.Kind.count 0;
    bytes_by_kind = Array.make Msg.Kind.count 0;
    handler = None;
    tracer = None }

let set_handler t h = t.handler <- Some h

let set_tracer t tr = t.tracer <- tr

let latency t ~src ~dst ~bytes =
  if src = dst then 0.0
  else t.base_latency_ms +. (t.per_kb_ms *. (float_of_int bytes /. 1024.0))

let send t ~src ~dst ~bytes ?(reliable = true) k =
  let delay = latency t ~src ~dst ~bytes in
  if src <> dst then begin
    t.messages <- t.messages + 1;
    t.bytes <- t.bytes + bytes
  end;
  if
    src <> dst && (not reliable) && t.drop_pct > 0
    && Rng.pct t.rng t.drop_pct
  then t.dropped <- t.dropped + 1
  else ignore (Sim.schedule t.sim ~delay k)

let dispatch t ~src ~dst ?(reliable = true) msg =
  let h =
    match t.handler with
    | Some h -> h
    | None -> invalid_arg "Net.dispatch: no handler registered"
  in
  let bytes = Msg.size msg in
  let i = Msg.Kind.index (Msg.kind msg) in
  let delay = latency t ~src ~dst ~bytes in
  if src <> dst then begin
    t.messages <- t.messages + 1;
    t.bytes <- t.bytes + bytes;
    t.sent_by_kind.(i) <- t.sent_by_kind.(i) + 1;
    t.bytes_by_kind.(i) <- t.bytes_by_kind.(i) + bytes
  end;
  (match t.tracer with
   | Some tr -> tr ~src ~dst Send msg
   | None -> ());
  if
    src <> dst && (not reliable) && t.drop_pct > 0
    && Rng.pct t.rng t.drop_pct
  then begin
    t.dropped <- t.dropped + 1;
    t.dropped_by_kind.(i) <- t.dropped_by_kind.(i) + 1;
    match t.tracer with
    | Some tr -> tr ~src ~dst Drop msg
    | None -> ()
  end
  else
    let k =
      match t.tracer with
      | None -> fun () -> h ~src ~dst msg
      | Some tr ->
        fun () ->
          tr ~src ~dst Deliver msg;
          h ~src ~dst msg
    in
    ignore (Sim.schedule t.sim ~delay k)

let messages t = t.messages

let dropped t = t.dropped

let bytes_sent t = t.bytes

type traffic = {
  t_kind : Msg.Kind.t;
  t_sent : int;
  t_dropped : int;
  t_bytes : int;
}

let traffic t =
  List.filter_map
    (fun k ->
      let i = Msg.Kind.index k in
      if t.sent_by_kind.(i) = 0 && t.dropped_by_kind.(i) = 0 then None
      else
        Some
          { t_kind = k;
            t_sent = t.sent_by_kind.(i);
            t_dropped = t.dropped_by_kind.(i);
            t_bytes = t.bytes_by_kind.(i) })
    Msg.Kind.all

let pp_traffic ppf t =
  let rows = traffic t in
  if rows = [] then Format.fprintf ppf "(no typed traffic)"
  else begin
    Format.fprintf ppf "%-12s %8s %8s %10s" "message" "sent" "dropped" "bytes";
    List.iter
      (fun r ->
        Format.fprintf ppf "@\n%-12s %8d %8d %10d"
          (Msg.Kind.to_string r.t_kind)
          r.t_sent r.t_dropped r.t_bytes)
      rows
  end

let reset_counters t =
  t.messages <- 0;
  t.bytes <- 0;
  t.dropped <- 0;
  Array.fill t.sent_by_kind 0 Msg.Kind.count 0;
  Array.fill t.dropped_by_kind 0 Msg.Kind.count 0;
  Array.fill t.bytes_by_kind 0 Msg.Kind.count 0
