(** The DTX wire protocol: one typed constructor per message the paper's
    algorithms exchange between sites.

    Every inter-site interaction — operation shipment and status replies
    (Algs. 1/2), cross-site undo (Alg. 1 l. 16), wake notifications (§2.2),
    the commit/abort fan-out and its acks (Algs. 5/6), the 2PC vote round,
    wound/victim notifications, and the deadlock detector's wait-for-graph
    collection (Alg. 4) — is a value of {!t}, serialized by {!encode} so the
    network layer charges its {e real} size instead of a fixed guess.

    [Net.dispatch] routes these values; the per-kind traffic counters it
    keeps are what the experiment reports call "communication and
    synchronization overhead". *)

module Op = Dtx_update.Op

(** Outcome a participant reports for an operation shipment (Alg. 2 l. 13).
    [Blocked]/[Deadlock]/[Failed] refer to the first operation of the
    shipment that did not execute; [Op_status.granted] counts the prefix
    that did. *)
type op_status =
  | Granted  (** every operation of the shipment executed *)
  | Blocked  (** conflicting locks; wait-for edges were recorded *)
  | Deadlock  (** granting would close a local cycle (or wait-die death) *)
  | Failed of string  (** execution failed (bad target, site down, …) *)

(** One operation inside an {!t.Op_ship}. *)
type shipment = {
  s_index : int;  (** the operation's index in its transaction *)
  s_doc : string;  (** target document *)
  s_op : Op.t;
  s_text : string;
      (** the operation's canonical {!Op.to_string} rendering, computed once
          when the shipment is built (at transaction submit time) and written
          verbatim on the wire — sizing and encoding never re-render the
          operation *)
  s_optimistic : bool;
      (** the coordinator's commutativity classifier proved this operation
          commutes with every concurrently active one, so the participant
          may skip lock acquisition (read-only footprint) or downgrade to
          intention modes; always [false] outside the Commute protocol *)
}

val shipment : ?optimistic:bool -> index:int -> doc:string -> Op.t -> shipment
(** Build a shipment, rendering [s_text] from the operation. [optimistic]
    defaults to [false]. *)

type t =
  | Op_ship of { txn : int; attempt : int; seq : int; ops : shipment list }
      (** coordinator → participant: execute these operations (Alg. 1
          l. 13). Consecutive operations bound for the same single site
          ride one shipment. [seq] uniquely identifies this dispatch —
          retransmitted copies reuse it, so participants deduplicate
          replayed or network-duplicated shipments idempotently. *)
  | Op_status of {
      txn : int;
      attempt : int;
      seq : int;  (** echo of the shipment's [seq] *)
      granted : int;  (** how many shipped operations executed *)
      status : op_status;
      result_bytes : int;
          (** modelled payload of query results riding this reply (the
              simulation does not materialize result sets; this sizes
              them for the cost model) *)
    }  (** participant → coordinator: shipment outcome (Alg. 2 l. 13) *)
  | Op_undo of { txn : int; op_index : int; attempt : int }
      (** coordinator → participant: reverse one executed operation — the
          cross-site all-or-nothing rule (Alg. 1 l. 16) *)
  | Prepare of { txn : int }  (** 2PC phase one (future-work extension) *)
  | Vote of { txn : int; ok : bool }  (** participant's 2PC vote *)
  | Commit of { txn : int }  (** consolidation message (Alg. 5 l. 3) *)
  | Abort of { txn : int; quiet : bool }
      (** abort fan-out (Alg. 6 l. 3). [quiet] marks the best-effort
          "fail the transaction everywhere" broadcast sent when a normal
          abort could not complete (Alg. 6 l. 6-9): no ack is expected
          and no waiters are woken. *)
  | End_ack of { txn : int; ok : bool }
      (** participant → coordinator: commit/abort processed (or refused) *)
  | Wake of { txn : int }
      (** participant → coordinator: locks [txn] waited for were released;
          resume it (§2.2) *)
  | Wound of { txn : int }
      (** participant → coordinator: an older requester needs [txn]'s
          locks — abort it (wound-wait prevention) *)
  | Victim of { txn : int }
      (** detector → coordinator: [txn] is the newest transaction in a
          distributed cycle — abort it (Alg. 4 l. 7) *)
  | Wfg_request  (** detector → participant: send your wait-for graph *)
  | Wfg_reply of { edges : (int * int) list }
      (** participant → detector: local (waiter, holder) edges (Alg. 4
          l. 4) *)
  | Outcome_query of { txn : int }
      (** recovering participant → coordinator: WAL replay found [txn]
          in doubt (a [Prepared] record with no outcome) — what happened
          to it? This re-registers the restarted site with the
          coordinator (the presumed-abort uncertainty-period query). *)
  | Outcome_reply of { txn : int; committed : bool }
      (** coordinator → participant: the recorded outcome of a finalized
          transaction; a coordinator with no record answers
          [committed = false] (presumed abort). *)

(** Message kinds, for per-type traffic accounting. *)
module Kind : sig
  type t =
    | Op_ship
    | Op_status
    | Op_undo
    | Prepare
    | Vote
    | Commit
    | Abort
    | End_ack
    | Wake
    | Wound
    | Victim
    | Wfg_request
    | Wfg_reply
    | Outcome_query
    | Outcome_reply

  val count : int
  val all : t list
  val index : t -> int (* dense, 0 .. count-1 *)
  val to_string : t -> string
end

val kind : t -> Kind.t

val encode : t -> string
(** Compact binary rendering: a kind tag, then LEB128 varints for integers
    and length-prefixed strings (operations ride their {!Op.to_string}
    form). *)

val decode : string -> (t, string) result
(** Inverse of {!encode}: [decode (encode m)] reconstructs [m]. *)

val size : t -> int
(** Bytes this message occupies on the wire: exactly
    [String.length (encode m)], plus the modelled result payload for
    {!t.Op_status}. This is what every send charges the network. Computed
    arithmetically (varint widths + string lengths) without encoding, so
    the per-dispatch cost is allocation-free. *)

val pp : Format.formatter -> t -> unit
