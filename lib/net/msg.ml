module Op = Dtx_update.Op

type op_status =
  | Granted
  | Blocked
  | Deadlock
  | Failed of string

type shipment = {
  s_index : int;
  s_doc : string;
  s_op : Op.t;
  s_text : string;
  s_optimistic : bool;
}

let shipment ?(optimistic = false) ~index ~doc op =
  { s_index = index; s_doc = doc; s_op = op; s_text = Op.to_string op;
    s_optimistic = optimistic }

type t =
  | Op_ship of { txn : int; attempt : int; seq : int; ops : shipment list }
  | Op_status of {
      txn : int;
      attempt : int;
      seq : int;
      granted : int;
      status : op_status;
      result_bytes : int;
    }
  | Op_undo of { txn : int; op_index : int; attempt : int }
  | Prepare of { txn : int }
  | Vote of { txn : int; ok : bool }
  | Commit of { txn : int }
  | Abort of { txn : int; quiet : bool }
  | End_ack of { txn : int; ok : bool }
  | Wake of { txn : int }
  | Wound of { txn : int }
  | Victim of { txn : int }
  | Wfg_request
  | Wfg_reply of { edges : (int * int) list }
  | Outcome_query of { txn : int }
  | Outcome_reply of { txn : int; committed : bool }

module Kind = struct
  type t =
    | Op_ship
    | Op_status
    | Op_undo
    | Prepare
    | Vote
    | Commit
    | Abort
    | End_ack
    | Wake
    | Wound
    | Victim
    | Wfg_request
    | Wfg_reply
    | Outcome_query
    | Outcome_reply

  let all =
    [ Op_ship; Op_status; Op_undo; Prepare; Vote; Commit; Abort; End_ack;
      Wake; Wound; Victim; Wfg_request; Wfg_reply; Outcome_query;
      Outcome_reply ]

  let count = 15

  let index = function
    | Op_ship -> 0
    | Op_status -> 1
    | Op_undo -> 2
    | Prepare -> 3
    | Vote -> 4
    | Commit -> 5
    | Abort -> 6
    | End_ack -> 7
    | Wake -> 8
    | Wound -> 9
    | Victim -> 10
    | Wfg_request -> 11
    | Wfg_reply -> 12
    | Outcome_query -> 13
    | Outcome_reply -> 14

  let to_string = function
    | Op_ship -> "op_ship"
    | Op_status -> "op_status"
    | Op_undo -> "op_undo"
    | Prepare -> "prepare"
    | Vote -> "vote"
    | Commit -> "commit"
    | Abort -> "abort"
    | End_ack -> "end_ack"
    | Wake -> "wake"
    | Wound -> "wound"
    | Victim -> "victim"
    | Wfg_request -> "wfg_request"
    | Wfg_reply -> "wfg_reply"
    | Outcome_query -> "outcome_query"
    | Outcome_reply -> "outcome_reply"
end

let kind = function
  | Op_ship _ -> Kind.Op_ship
  | Op_status _ -> Kind.Op_status
  | Op_undo _ -> Kind.Op_undo
  | Prepare _ -> Kind.Prepare
  | Vote _ -> Kind.Vote
  | Commit _ -> Kind.Commit
  | Abort _ -> Kind.Abort
  | End_ack _ -> Kind.End_ack
  | Wake _ -> Kind.Wake
  | Wound _ -> Kind.Wound
  | Victim _ -> Kind.Victim
  | Wfg_request -> Kind.Wfg_request
  | Wfg_reply _ -> Kind.Wfg_reply
  | Outcome_query _ -> Kind.Outcome_query
  | Outcome_reply _ -> Kind.Outcome_reply

(* --- encoding ------------------------------------------------------- *)

let put_varint b n =
  if n < 0 then invalid_arg "Msg.encode: negative integer";
  let rec go n =
    if n < 0x80 then Buffer.add_char b (Char.chr n)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let put_bool b v = Buffer.add_char b (if v then '\001' else '\000')

let put_string b s =
  put_varint b (String.length s);
  Buffer.add_string b s

(* One process-wide scratch buffer: [encode] is off the simulation hot path
   (dispatch sizes messages arithmetically, see [size]) but round-trip
   tests and tooling still call it in tight loops; reusing the buffer makes
   each call allocate only its result string. Not used from worker domains
   — encoding only happens on serial paths. `dtx_cli lint` proves that
   statically (no call path from a site-tagged handler reaches [encode]),
   and the shadow cell re-checks it dynamically under DTX_RACE=1. *)
let encode_buf = Buffer.create 256

let race_encode_buf = Dtx_race.Race.cell "Msg.encode_buf"

let encode m =
  Dtx_race.Race.write ~ctx:"Msg.encode" race_encode_buf;
  let b = encode_buf in
  Buffer.clear b;
  Buffer.add_char b (Char.chr (Kind.index (kind m)));
  (match m with
   | Op_ship { txn; attempt; seq; ops } ->
     put_varint b txn;
     put_varint b attempt;
     put_varint b seq;
     put_varint b (List.length ops);
     List.iter
       (fun s ->
         put_varint b s.s_index;
         put_string b s.s_doc;
         put_string b s.s_text;
         put_bool b s.s_optimistic)
       ops
   | Op_status { txn; attempt; seq; granted; status; result_bytes } ->
     put_varint b txn;
     put_varint b attempt;
     put_varint b seq;
     put_varint b granted;
     (match status with
      | Granted -> Buffer.add_char b '\000'
      | Blocked -> Buffer.add_char b '\001'
      | Deadlock -> Buffer.add_char b '\002'
      | Failed msg ->
        Buffer.add_char b '\003';
        put_string b msg);
     put_varint b result_bytes
   | Op_undo { txn; op_index; attempt } ->
     put_varint b txn;
     put_varint b op_index;
     put_varint b attempt
   | Prepare { txn } | Commit { txn } | Wake { txn } | Wound { txn }
   | Victim { txn } | Outcome_query { txn } ->
     put_varint b txn
   | Vote { txn; ok } | End_ack { txn; ok } ->
     put_varint b txn;
     put_bool b ok
   | Outcome_reply { txn; committed } ->
     put_varint b txn;
     put_bool b committed
   | Abort { txn; quiet } ->
     put_varint b txn;
     put_bool b quiet
   | Wfg_request -> ()
   | Wfg_reply { edges } ->
     put_varint b (List.length edges);
     List.iter
       (fun (w, h) ->
         put_varint b w;
         put_varint b h)
       edges);
  Buffer.contents b

(* --- decoding ------------------------------------------------------- *)

exception Bad of string

let decode s =
  let pos = ref 0 in
  let len = String.length s in
  let byte () =
    if !pos >= len then raise (Bad "truncated message");
    let c = Char.code s.[!pos] in
    incr pos;
    c
  in
  let varint () =
    let rec go shift acc =
      if shift > 62 then raise (Bad "varint overflow");
      let c = byte () in
      let acc = acc lor ((c land 0x7f) lsl shift) in
      if c land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0
  in
  let bool_ () =
    match byte () with
    | 0 -> false
    | 1 -> true
    | n -> raise (Bad (Printf.sprintf "bad bool byte %d" n))
  in
  let string_ () =
    let n = varint () in
    if !pos + n > len then raise (Bad "truncated string");
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  (* The wire text is kept verbatim as [s_text]: re-encoding a decoded
     shipment writes the same bytes without re-rendering the operation. *)
  let op_ () =
    let txt = string_ () in
    match Op.parse txt with
    | Ok op -> (op, txt)
    | Error e -> raise (Bad (Printf.sprintf "bad operation %S: %s" txt e))
  in
  try
    if len = 0 then Error "empty message"
    else begin
      let tag = byte () in
      let m =
        match tag with
        | 0 ->
          let txn = varint () in
          let attempt = varint () in
          let seq = varint () in
          let n = varint () in
          let ops =
            List.init n (fun _ ->
                let s_index = varint () in
                let s_doc = string_ () in
                let s_op, s_text = op_ () in
                let s_optimistic = bool_ () in
                { s_index; s_doc; s_op; s_text; s_optimistic })
          in
          Op_ship { txn; attempt; seq; ops }
        | 1 ->
          let txn = varint () in
          let attempt = varint () in
          let seq = varint () in
          let granted = varint () in
          let status =
            match byte () with
            | 0 -> Granted
            | 1 -> Blocked
            | 2 -> Deadlock
            | 3 -> Failed (string_ ())
            | n -> raise (Bad (Printf.sprintf "bad status byte %d" n))
          in
          let result_bytes = varint () in
          Op_status { txn; attempt; seq; granted; status; result_bytes }
        | 2 ->
          let txn = varint () in
          let op_index = varint () in
          let attempt = varint () in
          Op_undo { txn; op_index; attempt }
        | 3 -> Prepare { txn = varint () }
        | 4 ->
          let txn = varint () in
          Vote { txn; ok = bool_ () }
        | 5 -> Commit { txn = varint () }
        | 6 ->
          let txn = varint () in
          Abort { txn; quiet = bool_ () }
        | 7 ->
          let txn = varint () in
          End_ack { txn; ok = bool_ () }
        | 8 -> Wake { txn = varint () }
        | 9 -> Wound { txn = varint () }
        | 10 -> Victim { txn = varint () }
        | 11 -> Wfg_request
        | 12 ->
          let n = varint () in
          let edges =
            List.init n (fun _ ->
                let w = varint () in
                let h = varint () in
                (w, h))
          in
          Wfg_reply { edges }
        | 13 -> Outcome_query { txn = varint () }
        | 14 ->
          let txn = varint () in
          Outcome_reply { txn; committed = bool_ () }
        | n -> raise (Bad (Printf.sprintf "unknown message tag %d" n))
      in
      if !pos <> len then Error "trailing bytes" else Ok m
    end
  with Bad e -> Error e

(* [size] is called by [Net.dispatch] for every message copy, so it computes
   the encoded width arithmetically — one varint-width sum per field, no
   buffer, no string, no allocation. [test_msg] pins it to
   [String.length (encode m)] for every constructor. *)
let varint_len n =
  let rec go n acc = if n < 0x80 then acc else go (n lsr 7) (acc + 1) in
  go n 1

let string_len s = varint_len (String.length s) + String.length s

let size m =
  1
  +
  match m with
  | Op_ship { txn; attempt; seq; ops } ->
    let rec ops_len l acc =
      match l with
      | [] -> acc
      | s :: rest ->
        ops_len rest
          (acc + varint_len s.s_index + string_len s.s_doc
          + string_len s.s_text + 1)
    in
    varint_len txn + varint_len attempt + varint_len seq
    + varint_len (List.length ops)
    + ops_len ops 0
  | Op_status { txn; attempt; seq; granted; status; result_bytes } ->
    varint_len txn + varint_len attempt + varint_len seq + varint_len granted
    + (match status with
      | Granted | Blocked | Deadlock -> 1
      | Failed msg -> 1 + string_len msg)
    + varint_len result_bytes
    (* the modelled result payload rides on top of the encoded bytes *)
    + result_bytes
  | Op_undo { txn; op_index; attempt } ->
    varint_len txn + varint_len op_index + varint_len attempt
  | Prepare { txn }
  | Commit { txn }
  | Wake { txn }
  | Wound { txn }
  | Victim { txn }
  | Outcome_query { txn } -> varint_len txn
  | Vote { txn; _ } | End_ack { txn; _ } | Abort { txn; _ }
  | Outcome_reply { txn; _ } -> varint_len txn + 1
  | Wfg_request -> 0
  | Wfg_reply { edges } ->
    let rec edges_len l acc =
      match l with
      | [] -> acc
      | (w, h) :: rest -> edges_len rest (acc + varint_len w + varint_len h)
    in
    varint_len (List.length edges) + edges_len edges 0

let pp ppf m =
  match m with
  | Op_ship { txn; attempt; seq; ops } ->
    Format.fprintf ppf "op_ship(t%d a%d s%d [%s])" txn attempt seq
      (String.concat "; "
         (List.map (fun s -> Printf.sprintf "#%d %s" s.s_index s.s_doc) ops))
  | Op_status { txn; attempt; seq; granted; status; result_bytes } ->
    Format.fprintf ppf "op_status(t%d a%d s%d granted=%d %s +%dB)" txn attempt
      seq granted
      (match status with
       | Granted -> "granted"
       | Blocked -> "blocked"
       | Deadlock -> "deadlock"
       | Failed e -> "failed:" ^ e)
      result_bytes
  | Op_undo { txn; op_index; attempt } ->
    Format.fprintf ppf "op_undo(t%d #%d a%d)" txn op_index attempt
  | Prepare { txn } -> Format.fprintf ppf "prepare(t%d)" txn
  | Vote { txn; ok } -> Format.fprintf ppf "vote(t%d %b)" txn ok
  | Commit { txn } -> Format.fprintf ppf "commit(t%d)" txn
  | Abort { txn; quiet } ->
    Format.fprintf ppf "abort(t%d%s)" txn (if quiet then " quiet" else "")
  | End_ack { txn; ok } -> Format.fprintf ppf "end_ack(t%d %b)" txn ok
  | Wake { txn } -> Format.fprintf ppf "wake(t%d)" txn
  | Wound { txn } -> Format.fprintf ppf "wound(t%d)" txn
  | Victim { txn } -> Format.fprintf ppf "victim(t%d)" txn
  | Wfg_request -> Format.fprintf ppf "wfg_request"
  | Wfg_reply { edges } ->
    Format.fprintf ppf "wfg_reply(%d edges)" (List.length edges)
  | Outcome_query { txn } -> Format.fprintf ppf "outcome_query(t%d)" txn
  | Outcome_reply { txn; committed } ->
    Format.fprintf ppf "outcome_reply(t%d %s)" txn
      (if committed then "committed" else "aborted")
