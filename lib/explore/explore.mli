(** Dtx_explore — stateless model checking of the distributed protocol over
    the space of {e inequivalent} message-delivery schedules.

    A scenario pins the workload completely (sites, documents, transactions,
    operations); the only nondeterminism left in the deterministic simulator
    is {e which pending message delivery fires next}. The explorer replays
    the cluster from scratch once per schedule, driving that choice through
    {!Dtx_sim.Sim.set_chooser}, and walks the schedule tree depth-first.

    Partial-order reduction uses {e sleep sets} (Godefroid) seeded by the
    static independence relation from {!Commute}: two pending deliveries are
    independent when they target different sites, serve different
    transactions, and both carry operation shipments whose payloads pairwise
    [Commutes]. Sleep sets alone are conservative — every reachable state is
    still visited, only provably-equivalent interleavings are skipped — so a
    clean exhaustive run is a proof over the {e whole} schedule space (unless
    [o_truncated] says a budget was hit).

    Each replay is audited by the {!Dtx_check.Checker} oracle; seeded
    protocol bugs ({!mutation}) validate that the explorer actually reaches
    the schedules where a bug manifests. *)

(** {1 Scenarios} *)

type scenario = {
  sc_name : string;
  sc_about : string;  (** one-line description for [--list] output *)
  sc_sites : int;
  sc_docs : (string * string * int list) list;
      (** (name, xml, placement sites) *)
  sc_txns : (int * (string * string) list) list;
      (** (coordinator site, (doc, op source text) list); submitted in list
          order, so entry [k] becomes transaction id [k+1] *)
}

val reference : scenario
(** ["ref"] — the acceptance scenario: 2 txns × 2 sites, conflicting on each
    site, independent across sites (so naive exploration overcounts). *)

val disjoint : scenario
(** ["disjoint"] — fully commuting single-op writers; maximal reduction. *)

val deadlock : scenario
(** ["deadlock"] — opposite-order writers; exercises detector + victim rule
    in every interleaving where both block. *)

val scenarios : scenario list

val find_scenario : string -> scenario option

(** {1 Configuration} *)

(** Seeded protocol bugs, mirroring [dtx_cli check --mutate]:
    - [Compat_flip] makes ST/IX compatible in a lattice audit — a static
      fault every schedule reports;
    - [Skip_release] hides the last transaction's end-of-transaction lock
      releases from the checker — {e schedule-dependent}: only interleavings
      where a rival acquires afterwards expose it (found by exploration,
      missed by bounded-jitter random schedules);
    - [Commit_reorder] hides the last transaction's yes-votes, so under 2PC
      its commit precedes any complete prepare round. *)
type mutation = Compat_flip | Skip_release | Commit_reorder

val mutation_to_string : mutation -> string

val mutation_of_string : string -> mutation option

type config = {
  protocol : Dtx_protocol.Protocol.kind;
  two_phase : bool;  (** 2PC commit instead of the paper's one-phase *)
  naive : bool;
      (** disable sleep sets: explore every delivery order (the baseline the
          ≥2× reduction gate compares against) *)
  mutate : mutation option;
  max_schedules : int;  (** explored + pruned budget; sets [o_truncated] *)
  max_events : int;  (** per-replay simulator event budget *)
  ring : int;  (** checker event-ring capacity per replay *)
  suffix : int;  (** events quoted per violation report *)
}

val default_config : config
(** XDGL, one-phase, DPOR on, no mutation, 20k schedules, ring 64. *)

(** {1 Outcomes} *)

type violating_schedule = {
  vs_path : int list;
      (** decision sequence (enabled-set indices) replaying the schedule *)
  vs_violations : Dtx_check.Checker.violation list;
}

type outcome = {
  o_scenario : string;
  o_config : config;
  o_explored : int;  (** complete replays (inequivalent schedules) *)
  o_pruned : int;
      (** redundant schedules avoided: sleep-suppressed alternatives plus
          replays cut short because every enabled choice slept *)
  o_max_depth : int;  (** longest decision sequence seen *)
  o_violating : violating_schedule list;  (** first few, with full reports *)
  o_violations : int;  (** total violations across all schedules *)
  o_unsound : string list;  (** {!Commute.self_check} findings (gate input) *)
  o_truncated : bool;
      (** a budget cap was hit: results are a bounded, not exhaustive,
          statement *)
}

(** {1 Running} *)

val setup :
  ?retransmit_ms:float ->
  scenario ->
  protocol:Dtx_protocol.Protocol.kind ->
  two_phase:bool ->
  Dtx_sim.Sim.t * Dtx.Cluster.t
(** The cluster construction every replay uses (fresh simulator, LAN net,
    5 ms detector period, shutdown-when-idle), without a schedule chooser.
    Exposed so the symbolic certifier's reachability runs audit exactly the
    machine exploration covers; [retransmit_ms] arms the recovery paths its
    crash/restart run needs. Submit {!scripts} (or call
    [Dtx.Cluster.submit]) and [Dtx_sim.Sim.run] to execute. *)

val scripts : scenario -> Dtx_workload.Workload.script list
(** The scenario's transactions as one workload script per client, ready
    for [Dtx_workload.Workload.submit_script]. *)

val explore : ?config:config -> scenario -> outcome
(** Exhaustively (up to [max_schedules]) explore the scenario's delivery
    schedules. Every replay builds a fresh simulator/net/cluster, so calls
    are independent and deterministic. *)

val random_run :
  ?jitter_ms:float -> scenario -> config -> seed:int -> Dtx_check.Checker.violation list
(** One chaos-style baseline run: no chooser, instead a seeded fault plan
    adds uniform [0, jitter_ms) delivery offsets to remote messages (local
    deliveries keep their fixed zero delay — exactly why jitter alone cannot
    reorder a local shipment past a remote round trip, and why
    [Skip_release] hides from this baseline). Default jitter 2.0 ms. *)

val random_runs :
  ?jitter_ms:float ->
  scenario ->
  config ->
  seeds:int list ->
  (int * Dtx_check.Checker.violation list) list
(** [random_run] per seed, pairing each seed with its violations. *)
