module Sim = Dtx_sim.Sim
module Net = Dtx_net.Net
module Msg = Dtx_net.Msg
module Op = Dtx_update.Op
module Protocol = Dtx_protocol.Protocol
module Allocation = Dtx_frag.Allocation
module Table = Dtx_locks.Table
module Cluster = Dtx.Cluster
module Participant = Dtx.Participant
module Checker = Dtx_check.Checker
module Workload = Dtx_workload.Workload
module Xml_parser = Dtx_xml.Parser
module Rng = Dtx_util.Rng

(* ------------------------------------------------------------------ *)
(* Scenarios                                                           *)
(* ------------------------------------------------------------------ *)

type scenario = {
  sc_name : string;
  sc_about : string;
  sc_sites : int;
  sc_docs : (string * string * int list) list;
  sc_txns : (int * (string * string) list) list;
}

let doc_a = "<r><a><x>0</x></a></r>"

let doc_b = "<r><b><y>0</y></b></r>"

let reference =
  { sc_name = "ref";
    sc_about =
      "2 txns x 2 sites: a writer updating both documents races a reader \
       scanning both — conflicting on each site, independent across sites";
    sc_sites = 2;
    sc_docs = [ ("A", doc_a, [ 0 ]); ("B", doc_b, [ 1 ]) ];
    sc_txns =
      [ (0, [ ("A", "CHANGE /r/a/x TO \"1\""); ("B", "CHANGE /r/b/y TO \"1\"") ]);
        (1, [ ("A", "QUERY /r/a"); ("B", "QUERY /r/b") ]) ] }

let disjoint =
  { sc_name = "disjoint";
    sc_about =
      "2 single-op writers on different documents at different sites — \
       fully commuting, the maximal-reduction case";
    sc_sites = 2;
    sc_docs = [ ("A", doc_a, [ 0 ]); ("B", doc_b, [ 1 ]) ];
    sc_txns =
      [ (0, [ ("A", "CHANGE /r/a/x TO \"1\"") ]);
        (1, [ ("B", "CHANGE /r/b/y TO \"2\"") ]) ] }

let deadlock =
  { sc_name = "deadlock";
    sc_about =
      "2 writers acquiring the same two documents in opposite orders — \
       every schedule either serializes or distributed-deadlocks and must \
       recover via the Alg. 4 detector";
    sc_sites = 2;
    sc_docs = [ ("A", doc_a, [ 0 ]); ("B", doc_b, [ 1 ]) ];
    sc_txns =
      [ (0, [ ("A", "CHANGE /r/a/x TO \"1\""); ("B", "CHANGE /r/b/y TO \"1\"") ]);
        (1, [ ("B", "CHANGE /r/b/y TO \"2\""); ("A", "CHANGE /r/a/x TO \"2\"") ]) ] }

let scenarios = [ reference; disjoint; deadlock ]

let find_scenario name =
  List.find_opt (fun s -> s.sc_name = name) scenarios

let parse_op src =
  match Op.parse src with
  | Ok op -> op
  | Error e -> invalid_arg (Printf.sprintf "Explore: bad scenario op %S: %s" src e)

(* Transactions with parsed operations, in submission (= txn id) order. *)
let txn_ops scen =
  List.map
    (fun (coord, ops) ->
      (coord, List.map (fun (doc, src) -> (doc, parse_op src)) ops))
    scen.sc_txns

let scripts scen =
  List.mapi
    (fun i (coord, ops) ->
      { Workload.sc_client = i; sc_coordinator = coord; sc_txns = [ ops ] })
    (txn_ops scen)

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type mutation = Compat_flip | Skip_release | Commit_reorder

let mutation_to_string = function
  | Compat_flip -> "compat-flip"
  | Skip_release -> "skip-release"
  | Commit_reorder -> "commit-reorder"

let mutation_of_string s =
  match String.lowercase_ascii s with
  | "compat-flip" -> Some Compat_flip
  | "skip-release" -> Some Skip_release
  | "commit-reorder" -> Some Commit_reorder
  | _ -> None

type config = {
  protocol : Protocol.kind;
  two_phase : bool;
  naive : bool;
  mutate : mutation option;
  max_schedules : int;
  max_events : int;
  ring : int;
  suffix : int;
}

let default_config =
  { protocol = Protocol.xdgl;
    two_phase = false;
    naive = false;
    mutate = None;
    max_schedules = 20_000;
    max_events = 50_000;
    ring = 64;
    suffix = 16 }

type violating_schedule = {
  vs_path : int list;
  vs_violations : Checker.violation list;
}

type outcome = {
  o_scenario : string;
  o_config : config;
  o_explored : int;  (** complete replays (inequivalent schedules) *)
  o_pruned : int;
      (** redundant schedules avoided: sleep-suppressed alternatives plus
          replays cut short because every enabled choice slept *)
  o_max_depth : int;  (** longest decision sequence seen *)
  o_violating : violating_schedule list;  (** first few, with full reports *)
  o_violations : int;  (** total violations across all schedules *)
  o_unsound : string list;  (** {!Commute.self_check} findings (gate input) *)
  o_truncated : bool;
      (** a budget cap was hit: results are a bounded, not exhaustive,
          statement *)
}

(* ------------------------------------------------------------------ *)
(* Trace mutations (seeded protocol bugs for the oracle to catch)      *)
(* ------------------------------------------------------------------ *)

(* Unlike the analyzer's one-shot taps, [Skip_release] here is
   {e schedule-dependent}: it hides the {e last} transaction's
   end-of-transaction lock releases (and its local finishes) from the
   checker. The mirror then believes that transaction still holds its locks
   forever, so a lock-compat violation surfaces {e only} in schedules where
   some other transaction acquires a conflicting lock after the victim
   released — i.e. only when the last-submitted transaction wins the race.
   Default (time, seq) order and bounded-jitter random schedules never
   produce that order in the reference scenario (the rival's local shipment
   always lands first); exhaustive delivery-order exploration does. *)
let mutation_tap mutation ~last_txn =
  match mutation with
  | None | Some Compat_flip -> None
  | Some Skip_release ->
    Some
      (fun ev ->
        match ev with
        | Checker.Lock
            { ev = Table.Released { txn; kind = Table.End_of_txn; _ }; _ }
          when txn = last_txn -> None
        | Checker.Part { ev = Participant.Finished { txn; _ }; _ }
          when txn = last_txn -> None
        | _ -> Some ev)
  | Some Commit_reorder ->
    (* Hide the last transaction's yes votes: its Commit then precedes any
       complete prepare round, which the 2PC-order check must flag (2PC
       configurations only). *)
    Some
      (fun ev ->
        match ev with
        | Checker.Net
            { dir = Net.Deliver; msg = Msg.Vote { txn; ok = true }; _ }
          when txn = last_txn -> None
        | _ -> Some ev)

let flipped_lattice () =
  let compat a b =
    match (a, b) with
    | Dtx_locks.Mode.ST, Dtx_locks.Mode.IX
    | Dtx_locks.Mode.IX, Dtx_locks.Mode.ST -> true
    | _ -> Dtx_locks.Mode.compatible a b
  in
  Dtx_check.Lattice.check_with ~compat
    ~conflict_mask:Dtx_locks.Mode.conflict_mask
    ~intention_for:Dtx_locks.Mode.intention_for ()

(* ------------------------------------------------------------------ *)
(* One replay under a decision prefix                                  *)
(* ------------------------------------------------------------------ *)

exception Pruned

exception Diverged of string

(* One enabled (pending) message delivery at a decision point. [en_key] is
   the schedule-stable identity used by sleep sets: replaying the same
   prefix yields the same pending set, so keys — not event ids — survive
   across replays. *)
type en = {
  en_seq : Sim.event_id;
  en_key : string;
  en_dst : int;
  en_txn : int option;
  en_fanout : bool;  (* one-to-many commit-phase broadcast (Prepare/Commit/Abort) *)
  en_ships : int option list option;
      (* global op indices for Op_ship payloads; None for other kinds *)
}

type dp = {
  dp_enabled : en array;  (* every pending delivery, (time, seq) order *)
  dp_sleep : en list;  (* asleep before the choice *)
  dp_chosen : int;
}

type run_res = {
  rr_trail : dp list;  (* post-prefix decision points, in order *)
  rr_violations : Checker.violation list;
  rr_pruned : bool;
  rr_incomplete : bool;
  rr_depth : int;
}

let msg_txn = function
  | Msg.Op_ship { txn; _ }
  | Msg.Op_status { txn; _ }
  | Msg.Op_undo { txn; _ }
  | Msg.Prepare { txn }
  | Msg.Vote { txn; _ }
  | Msg.Commit { txn }
  | Msg.Abort { txn; _ }
  | Msg.End_ack { txn; _ }
  | Msg.Wake { txn }
  | Msg.Wound { txn }
  | Msg.Victim { txn }
  | Msg.Outcome_query { txn }
  | Msg.Outcome_reply { txn; _ } -> Some txn
  | Msg.Wfg_request | Msg.Wfg_reply _ -> None

(* Two pending deliveries are independent — their delivery orders belong to
   the same Mazurkiewicz trace — iff they target different sites (each
   handler mutates only its destination site's lock table / coordinator /
   participant records, so the immediate effects touch disjoint state),
   serve different transactions, and, when both carry operation shipments,
   the static analysis proves every payload pair [Commutes] — the lock
   footprints are how shipment handlers interact {e later} (blocking,
   waking, deadlock), beyond their disjoint immediate effects. Anonymous
   traffic (detector sweeps) and same-site or same-txn pairs are
   conservatively dependent. *)
let independent_en verdicts a b =
  a.en_dst <> b.en_dst
  && (match (a.en_txn, b.en_txn) with
     | Some x, Some y when x <> y -> (
       match (a.en_ships, b.en_ships) with
       | Some xs, Some ys ->
         List.for_all
           (fun i ->
             List.for_all
               (fun j ->
                 match (i, j) with
                 | Some gi, Some gj ->
                   Commute.independent verdicts.(gi).(gj)
                 | _ -> false)
               ys)
           xs
       | _ -> true)
     | Some x, Some y ->
       (* Same transaction: only its one-to-many commit-phase broadcasts
          commute with each other — the participants react locally and the
          racing replies converge on the coordinator as same-destination
          (hence dependent, still explored) deliveries. *)
       x = y && a.en_fanout && b.en_fanout
     | _ -> false)

(* Also the certifier's reachability harness: Dtx_cert audits the FSM
   delivery tables against runs over the exact cluster construction the
   explorer replays, so "reachable" means the same thing in both tools. *)
let setup ?retransmit_ms scen ~protocol ~two_phase =
  let sim = Sim.create () in
  let net = Net.of_config ~sim Net.Config.lan in
  let placements =
    List.map
      (fun (name, xml, sites) ->
        { Allocation.doc = Xml_parser.parse ~name xml; sites })
      scen.sc_docs
  in
  let config =
    { (Cluster.default_config ~protocol ()) with
      deadlock_period_ms = 5.0;
      commit = (if two_phase then Cluster.Two_phase else Cluster.One_phase);
      retransmit_ms
    }
  in
  let cluster = Cluster.create ~sim ~net ~n_sites:scen.sc_sites config ~placements in
  Cluster.shutdown_when_idle cluster;
  (sim, cluster)

let build scen cfg =
  let sim, cluster =
    setup scen ~protocol:cfg.protocol ~two_phase:cfg.two_phase
  in
  (sim, Cluster.net cluster, cluster)

(* (txn id, op index) -> index into the flattened scenario op array the
   commutativity matrix is computed over. Txn ids are assigned 1.. in
   script order by the coordinator; op indices are 0-based per txn. *)
let op_lookup scen =
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun ti (_, ops) ->
      List.iteri
        (fun oi _ ->
          Hashtbl.replace tbl (ti + 1, oi) (Hashtbl.length tbl))
        ops)
    (txn_ops scen);
  fun key -> Hashtbl.find_opt tbl key

let replay scen cfg ~lookup ~verdicts ~prefix ~sleep0 =
  let sim, net, cluster = build scen cfg in
  let last_txn = List.length scen.sc_txns in
  let checker = Checker.create ~ring:cfg.ring ~suffix:cfg.suffix () in
  Checker.attach ?mutate:(mutation_tap cfg.mutate ~last_txn) checker cluster;
  Workload.submit_script cluster (scripts scen);
  let prefix = Array.of_list prefix in
  let plen = Array.length prefix in
  let depth = ref 0 in
  let sleep = ref (if plen = 0 then sleep0 else []) in
  let trail = ref [] in
  let indep a b = (not cfg.naive) && independent_en verdicts a b in
  let mk_en (c : Sim.candidate) (d : Net.delivery) =
    let ships =
      match d.Net.d_msg with
      | Msg.Op_ship { txn; ops; _ } ->
        Some (List.map (fun s -> lookup (txn, s.Msg.s_index)) ops)
      | _ -> None
    in
    let fanout =
      match d.Net.d_msg with
      | Msg.Prepare _ | Msg.Commit _ | Msg.Abort _ -> true
      | _ -> false
    in
    { en_seq = c.Sim.c_seq;
      en_key =
        Format.asprintf "%d>%d:%a" d.Net.d_src d.Net.d_dst Msg.pp d.Net.d_msg;
      en_dst = d.Net.d_dst;
      en_txn = msg_txn d.Net.d_msg;
      en_fanout = fanout;
      en_ships = ships }
  in
  let chooser cands =
    let deliveries = Net.pending_deliveries net in
    match cands with
    | [] -> assert false
    | first :: _ when not (List.mem_assoc first.Sim.c_seq deliveries) ->
      (* Internal event (timer, client callback) at the frontier: fire it
         deterministically — only message-delivery order branches. *)
      first.Sim.c_seq
    | _ ->
      let enabled =
        List.filter_map
          (fun (c : Sim.candidate) ->
            match List.assoc_opt c.Sim.c_seq deliveries with
            | None -> None
            | Some d -> Some (mk_en c d))
          cands
        |> Array.of_list
      in
      (* Identical payloads pending at once (retransmitted copies) would
         alias in the sleep sets; suffix duplicates by occurrence. *)
      let seen = Hashtbl.create 8 in
      Array.iteri
        (fun i e ->
          match Hashtbl.find_opt seen e.en_key with
          | None -> Hashtbl.replace seen e.en_key 1
          | Some n ->
            Hashtbl.replace seen e.en_key (n + 1);
            enabled.(i) <-
              { e with en_key = Printf.sprintf "%s#%d" e.en_key n })
        enabled;
      let d = !depth in
      incr depth;
      let chosen =
        if d < plen then begin
          let i = prefix.(d) in
          if i < 0 || i >= Array.length enabled then
            raise
              (Diverged
                 (Printf.sprintf
                    "decision %d: prefix index %d out of %d enabled" d i
                    (Array.length enabled)));
          i
        end
        else begin
          let sleeping k = List.exists (fun s -> s.en_key = k) !sleep in
          let rec first_awake i =
            if i >= Array.length enabled then raise Pruned
            else if sleeping enabled.(i).en_key then first_awake (i + 1)
            else i
          in
          first_awake 0
        end
      in
      (* The sleep set the parent computed applies from the point where the
         new branch decision (the last prefix entry) was taken. *)
      if d = plen - 1 then sleep := sleep0;
      if d >= plen then begin
        trail := { dp_enabled = enabled; dp_sleep = !sleep; dp_chosen = chosen }
                 :: !trail;
        sleep := List.filter (fun s -> indep s enabled.(chosen)) !sleep
      end;
      enabled.(chosen).en_seq
  in
  Sim.set_chooser sim (Some chooser);
  let pruned =
    try
      Sim.run ~max_events:cfg.max_events sim;
      false
    with Pruned -> true
  in
  let incomplete =
    (not pruned) && (Sim.pending sim > 0 || Cluster.active_txns cluster > 0)
  in
  let violations = if pruned then [] else Checker.finish checker in
  let violations =
    match cfg.mutate with
    | Some Compat_flip when not pruned -> (
      (* The flipped matrix is a static fault: surface it through the same
         verdict channel so every schedule reports it. *)
      match flipped_lattice () with
      | Ok () -> violations
      | Error msgs ->
        violations
        @ List.map
            (fun m ->
              { Checker.v_invariant = "mode-lattice";
                v_txn = None;
                v_site = None;
                v_detail = m;
                v_time = 0.0;
                v_suffix = [] })
            msgs)
    | _ -> violations
  in
  { rr_trail = List.rev !trail;
    rr_violations = violations;
    rr_pruned = pruned;
    rr_incomplete = incomplete;
    rr_depth = !depth }

(* ------------------------------------------------------------------ *)
(* The explorer: DFS over delivery orders with sleep sets              *)
(* ------------------------------------------------------------------ *)

let explore ?(config = default_config) scen =
  let cfg = config in
  let flat_ops = Array.of_list (List.concat_map snd (txn_ops scen)) in
  let commute =
    Commute.create ~protocol:cfg.protocol
      ~docs:(List.map (fun (n, xml, _) -> (n, xml)) scen.sc_docs)
  in
  let verdicts = Commute.matrix commute flat_ops in
  let unsound =
    match Commute.self_check commute flat_ops with
    | Ok () -> []
    | Error msgs -> msgs
  in
  let lookup = op_lookup scen in
  let indep a b = (not cfg.naive) && independent_en verdicts a b in
  let explored = ref 0 in
  let pruned = ref 0 in
  let truncated = ref false in
  let max_depth = ref 0 in
  let total_violations = ref 0 in
  let violating = ref [] in
  let stack = ref [ ([], []) ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (prefix, sleep0) :: rest ->
      stack := rest;
      if !explored + !pruned >= cfg.max_schedules then begin
        truncated := true;
        stack := []
      end
      else begin
        let rr = replay scen cfg ~lookup ~verdicts ~prefix ~sleep0 in
        if rr.rr_pruned then incr pruned
        else begin
          incr explored;
          if rr.rr_incomplete then truncated := true;
          if rr.rr_depth > !max_depth then max_depth := rr.rr_depth;
          if rr.rr_violations <> [] then begin
            total_violations := !total_violations + List.length rr.rr_violations;
            if List.length !violating < 5 then begin
              let path =
                prefix @ List.map (fun dp -> dp.dp_chosen) rr.rr_trail
              in
              violating :=
                !violating
                @ [ { vs_path = path; vs_violations = rr.rr_violations } ]
            end
          end;
          (* Schedule the unexplored alternatives of every post-prefix
             decision point, threading sleep sets: an alternative inherits
             the point's sleepers plus its already-scheduled siblings,
             minus everything dependent on the alternative itself. *)
          let rec walk path = function
            | [] -> ()
            | dp :: rest_dps ->
              let accum = ref (dp.dp_sleep @ [ dp.dp_enabled.(dp.dp_chosen) ]) in
              Array.iteri
                (fun i en ->
                  if i <> dp.dp_chosen then begin
                    if List.exists (fun s -> s.en_key = en.en_key) dp.dp_sleep
                    then incr pruned
                    else begin
                      let child_sleep =
                        List.filter (fun s -> indep s en) !accum
                      in
                      stack := (path @ [ i ], child_sleep) :: !stack;
                      accum := !accum @ [ en ]
                    end
                  end)
                dp.dp_enabled;
              walk (path @ [ dp.dp_chosen ]) rest_dps
          in
          walk prefix rr.rr_trail
        end
      end
  done;
  { o_scenario = scen.sc_name;
    o_config = cfg;
    o_explored = !explored;
    o_pruned = !pruned;
    o_max_depth = !max_depth;
    o_violating = !violating;
    o_violations = !total_violations;
    o_unsound = unsound;
    o_truncated = !truncated }

(* ------------------------------------------------------------------ *)
(* Random baseline: seeded bounded-jitter schedules (chaos-style)      *)
(* ------------------------------------------------------------------ *)

let random_run ?(jitter_ms = 2.0) scen cfg ~seed =
  let sim, net, cluster = build scen cfg in
  let last_txn = List.length scen.sc_txns in
  let checker = Checker.create ~ring:cfg.ring ~suffix:cfg.suffix () in
  Checker.attach ?mutate:(mutation_tap cfg.mutate ~last_txn) checker cluster;
  let rng = Rng.create seed in
  Net.set_fault net
    (Some
       { Net.f_offsets =
           (fun ~time:_ ~src:_ ~dst:_ _channel _msg ->
             [ Rng.float rng jitter_ms ]);
         f_deliverable = (fun ~time:_ ~src:_ ~dst:_ -> true) });
  Workload.submit_script cluster (scripts scen);
  Sim.run ~max_events:cfg.max_events sim;
  let violations = Checker.finish checker in
  match (cfg.mutate, violations) with
  | Some Compat_flip, vs -> (
    match flipped_lattice () with
    | Ok () -> vs
    | Error msgs ->
      vs
      @ List.map
          (fun m ->
            { Checker.v_invariant = "mode-lattice";
              v_txn = None;
              v_site = None;
              v_detail = m;
              v_time = 0.0;
              v_suffix = [] })
          msgs)
  | _, vs -> vs

let random_runs ?jitter_ms scen cfg ~seeds =
  List.map (fun seed -> (seed, random_run ?jitter_ms scen cfg ~seed)) seeds
