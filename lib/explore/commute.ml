module Op = Dtx_update.Op
module Ast = Dtx_xpath.Ast
module Mode = Dtx_locks.Mode
module Table = Dtx_locks.Table
module Protocol = Dtx_protocol.Protocol
module Dg = Dtx_dataguide.Dataguide
module Xml_parser = Dtx_xml.Parser

type verdict = Commutes | Conflicts | Unknown

let verdict_to_string = function
  | Commutes -> "commutes"
  | Conflicts -> "conflicts"
  | Unknown -> "unknown"

let independent = function Commutes -> true | Conflicts | Unknown -> false

(* The analyzer owns a private protocol instance over private document
   copies: XDGL lock derivation grows the DataGuide for insert targets
   ([Dg.ensure_path] creates count-0 nodes), and that mutation must never
   leak into — or depend on — the cluster the explorer is replaying.
   Phantom count-0 nodes only ever widen later footprints, which errs on
   the side of Conflicts. *)
type t = {
  proto : Protocol.t;
  kind : Protocol.kind;
}

let create ~protocol ~docs =
  let proto = Protocol.create protocol in
  List.iter
    (fun (name, xml) -> Protocol.add_doc proto (Xml_parser.parse ~name xml))
    docs;
  { proto; kind = protocol }

let order_sensitive = function
  | Op.Insert _ | Op.Transpose _ -> true
  | Op.Query _ | Op.Remove _ | Op.Rename _ | Op.Change _ -> false

let footprint t ~doc op =
  match Protocol.lock_requests t.proto ~doc op with
  | Ok (reqs, _) -> Some reqs
  | Error _ -> None

(* The one place the XDGL rules under-approximate an operation's {e read}
   set: INSERT AFTER/BEFORE locks the connect node (the parent) but not the
   target node whose position it reads, so a footprint intersection alone
   would call "INSERT AFTER /x" and "REMOVE /x" commuting. Charge every
   operation a virtual ST on each node its paths resolve to (IS above),
   closing that gap; for operations that already hold a stronger lock there
   the extra ST changes nothing. *)
let virtual_reads t ~doc op =
  match Protocol.dataguide t.proto doc with
  | None -> []
  | Some dg ->
    List.concat_map
      (fun p ->
        List.concat_map
          (fun (n : Dg.node) ->
            (Table.resource dg.Dg.doc_name n.Dg.dg_id, Mode.ST)
            :: List.map
                 (fun (a : Dg.node) ->
                   (Table.resource dg.Dg.doc_name a.Dg.dg_id, Mode.IS))
                 (Dg.ancestors n))
          (Dg.match_path dg (Ast.without_predicates p)))
      (Op.paths op)

let lists_conflict fp1 fp2 =
  List.exists
    (fun (r1, m1) ->
      List.exists
        (fun (r2, m2) ->
          Table.compare_resource r1 r2 = 0 && not (Mode.compatible m1 m2))
        fp2)
    fp1

(* Sibling-order sensitivity: two insertions (or transpose landings) whose
   shared-insert locks (SI/SA/SB — mutually compatible by design) meet on a
   common connect node produce different sibling orders depending on who
   goes first, even though neither blocks the other. *)
let shared_connect fp1 fp2 =
  let ins = function Mode.SI | Mode.SA | Mode.SB -> true | _ -> false in
  List.exists
    (fun (r1, m1) ->
      ins m1
      && List.exists
           (fun (r2, m2) -> ins m2 && Table.compare_resource r1 r2 = 0)
           fp2)
    fp1

let decide t (doc1, op1) (doc2, op2) =
  if doc1 <> doc2 then Commutes
  else if (not (Op.is_update op1)) && not (Op.is_update op2) then Commutes
  else
    match (footprint t ~doc:doc1 op1, footprint t ~doc:doc2 op2) with
    | None, _ | _, None -> Unknown
    | Some fp1, Some fp2 ->
      let vr1 = virtual_reads t ~doc:doc1 op1 in
      let vr2 = virtual_reads t ~doc:doc2 op2 in
      if lists_conflict (fp1 @ vr1) (fp2 @ vr2) then Conflicts
      else if order_sensitive op1 && order_sensitive op2 && shared_connect fp1 fp2
      then Unknown
      else if
        (* Without a DataGuide (Node2PL/Doc2PL/taDOM lock document nodes)
           there is no schema summary to read positions from, so two
           non-blocking updates on one document cannot be proved
           order-insensitive statically. *)
        Protocol.dataguide t.proto doc1 = None
        && Op.is_update op1 && Op.is_update op2
      then Unknown
      else Commutes

let matrix t ops =
  Array.map (fun o1 -> Array.map (fun o2 -> decide t o1 o2) ops) ops

let self_check t ops =
  let m = matrix t ops in
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  Array.iteri
    (fun i (d1, o1) ->
      Array.iteri
        (fun j (d2, o2) ->
          if m.(i).(j) <> m.(j).(i) then
            err "matrix asymmetric at (%d, %d): %s vs %s" i j
              (verdict_to_string m.(i).(j))
              (verdict_to_string m.(j).(i));
          if d1 = d2 then
            match (footprint t ~doc:d1 o1, footprint t ~doc:d2 o2) with
            | Some fp1, Some fp2 ->
              (* Soundness against the mode matrix: a raw lock-mode conflict
                 must never be declared commuting (Unknown is acceptable —
                 it falls back to Conflicts as an independence answer). *)
              if lists_conflict fp1 fp2 && m.(i).(j) = Commutes then
                err
                  "ops %d (%s on %s) and %d (%s on %s) hold conflicting lock \
                   modes yet were declared commuting"
                  i (Op.to_string o1) d1 j (Op.to_string o2) d2
            | None, _ | _, None ->
              if m.(i).(j) <> Unknown then
                err "underivable footprint at (%d, %d) must yield unknown" i j)
        ops)
    ops;
  match !errors with [] -> Ok () | es -> Error (List.rev es)
