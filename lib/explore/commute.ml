(* The commutativity engine lives in {!Dtx_protocol.Commute_rules} so the
   runtime coordinator (lib/core) can classify operations without depending
   on the explorer; this module re-exports it unchanged for the DPOR sleep
   sets and the analyzer CLI. *)
include Dtx_protocol.Commute_rules
