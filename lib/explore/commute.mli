(** Static pairwise operation commutativity, decided from lock footprints on
    the schema summary — never from document instances.

    Following Dekeyser et al.'s instance-independent view of semistructured
    conflicts, two operations commute when their statically derived
    footprints — the (resource, mode) sets {!Dtx_protocol.Protocol.lock_requests}
    computes against the DataGuide — cannot interact:

    - {e different documents}: disjoint resource spaces, commute;
    - {e two queries}: reads never conflict;
    - {e lock-mode conflict} on a shared resource (per
      {!Dtx_locks.Mode.compatible}, after charging each operation a virtual
      ST read lock on the nodes its paths resolve to, which closes the
      INSERT AFTER/BEFORE gap where the rules lock the connect node but not
      the position-defining target): [Conflicts];
    - two {e order-sensitive} operations (insert/transpose) whose
      shared-insert locks (SI/SA/SB, mutually compatible by design) meet on
      a common connect node: [Unknown] — they do not block each other but
      produce different sibling orders;
    - otherwise [Commutes].

    [Unknown] is the conservative verdict: consumers needing a yes/no
    independence answer must treat it as [Conflicts] ({!independent} does).
    The analyzer owns a {e private} protocol instance over private document
    copies, because XDGL lock derivation grows the DataGuide for insert
    targets and that mutation must not touch the system under test. *)

type verdict = Commutes | Conflicts | Unknown

val verdict_to_string : verdict -> string

val independent : verdict -> bool
(** [true] only for [Commutes] — [Unknown] conservatively counts as a
    conflict. This is the independence relation the schedule explorer's
    sleep sets are seeded with. *)

type t

val create :
  protocol:Dtx_protocol.Protocol.kind -> docs:(string * string) list -> t
(** [create ~protocol ~docs] builds the analyzer over [(name, xml)]
    documents. The XML is parsed into private replicas (the analysis
    instance is never shared with a running cluster). *)

val decide :
  t -> string * Dtx_update.Op.t -> string * Dtx_update.Op.t -> verdict
(** [decide t (doc1, op1) (doc2, op2)] — do the operations commute? Purely
    static: only the DataGuide (or, for instance-based protocols, the
    document-node footprint) and the mode matrix are consulted. An
    operation whose footprint cannot be derived (unknown document) yields
    [Unknown]. *)

val matrix :
  t -> (string * Dtx_update.Op.t) array -> verdict array array
(** Pairwise verdicts for a workload's operations; [m.(i).(j)] is
    [decide t ops.(i) ops.(j)]. Symmetric. Each operation's footprint and
    virtual-read set is derived once (after a warm-up pass that drives the
    DataGuide's insert-target growth to its fixed point), not per pair, so
    the n^2 loop decides every verdict against one consistent schema
    state. *)

val self_check :
  t -> (string * Dtx_update.Op.t) array -> (unit, string list) result
(** Soundness audit of {!matrix} over this workload: a raw lock-mode
    conflict (per {!Dtx_locks.Mode.compatible}, no virtual reads) must
    never be answered [Commutes], underivable footprints must be [Unknown],
    and the matrix must be symmetric. *)
