module Node = Dtx_xml.Node
module Doc = Dtx_xml.Doc
module Ast = Dtx_xpath.Ast
module Eval = Dtx_xpath.Eval
module Op = Dtx_update.Op
module Mode = Dtx_locks.Mode
module Table = Dtx_locks.Table

let res (doc : Doc.t) (n : Node.t) = Table.resource doc.Doc.name n.Node.id

(* Lock-coupling navigation: every node the evaluator examines costs one
   lock request, but the lock is released as the traversal moves on, so
   navigation contributes to [processed] only. *)
let navigation_cost doc (p : Ast.path) =
  let _, visited = Eval.select_traced doc p in
  List.length visited

(* [mode] on every node of [n]'s subtree, intention above [n] — these are
   the locks retained until transaction end. *)
let subtree_with_ancestors doc mode (n : Node.t) =
  let up = Mode.intention_for mode in
  Node.fold (fun acc m -> (res doc m, mode) :: acc) [] n
  @ List.map (fun a -> (res doc a, up)) (Node.ancestors n)

(* Retained-lock targets come from the predicate-free skeleton so the locks
   cover everything the operation may touch, mirroring Xdgl_rules. *)
let main_targets doc (p : Ast.path) =
  Eval.select doc (Ast.without_predicates p)

let parent_or_self (n : Node.t) =
  match n.Node.parent with Some p -> p | None -> n

let requests doc (op : Op.t) =
  let retained, nav =
    match op with
    | Op.Query p ->
      ( List.concat_map (subtree_with_ancestors doc Mode.ST) (main_targets doc p),
        navigation_cost doc p )
    | Op.Insert { target; pos; _ } ->
      let tnodes = main_targets doc target in
      let connects =
        match pos with
        | Op.Into -> tnodes
        | Op.After | Op.Before -> List.map parent_or_self tnodes
      in
      ( List.concat_map (subtree_with_ancestors doc Mode.X) connects,
        navigation_cost doc target )
    | Op.Remove p ->
      ( List.concat_map (subtree_with_ancestors doc Mode.X) (main_targets doc p),
        navigation_cost doc p )
    | Op.Rename { target; _ } | Op.Change { target; _ } ->
      ( List.concat_map (subtree_with_ancestors doc Mode.X) (main_targets doc target),
        navigation_cost doc target )
    | Op.Transpose { source; dest } ->
      ( List.concat_map (subtree_with_ancestors doc Mode.X) (main_targets doc source)
        @ List.concat_map (subtree_with_ancestors doc Mode.X) (main_targets doc dest),
        navigation_cost doc source + navigation_cost doc dest )
  in
  let retained = Table.dedup_requests retained in
  (retained, nav + List.length retained)
