(** Pluggable concurrency-control protocols.

    The paper stresses that DTX "was conceived in a flexible fashion, so that
    other concurrency control protocols can be employed" — its own evaluation
    swaps XDGL for Node2PL while keeping every other DTX component. This
    module is that seam: a protocol instance owns a site's document replicas
    plus whatever lock-representation structure it needs (a DataGuide for
    XDGL, nothing extra for the tree/document protocols), and translates each
    operation into the list of (resource, mode) lock requests its rules
    demand. The lock table, scheduler, network and deadlock detector are
    shared by all protocols.

    Four protocols are provided:
    - {b XDGL} — the paper's protocol: multi-granularity locks on DataGuide
      nodes (see {!Xdgl_rules} for the per-operation rules).
    - {b Node2PL} — tree locks on {e document} nodes: an operation locks the
      whole subtree it touches, node by node, which is what the paper uses
      to stand in for related work ("locks in trees").
    - {b Doc2PL} — the "traditional technique" of §3.2: one lock for the
      entire document.
    - {b taDOM} — the future-work extension (§5): taDOM-style
      multi-granularity locks on document nodes with intention-locked
      ancestor paths (see {!Tadom_rules}).
    - {b XDGL+VL} — XDGL with the original paper's value locks for
      predicates (see {!Xdgl_value_rules}). *)

type kind = Xdgl | Node2pl | Doc2pl | Tadom | Xdgl_value

val kind_to_string : kind -> string

val kind_of_string : string -> kind option

type t

val create : kind -> t
(** A fresh protocol instance managing no documents yet. *)

val kind : t -> kind

val name : t -> string

val add_doc : t -> Dtx_xml.Doc.t -> unit
(** Hand a document replica to the instance (builds the DataGuide for XDGL).
    Replaces any same-named document. *)

val doc : t -> string -> Dtx_xml.Doc.t option

val docs : t -> string list
(** Names of managed documents, sorted. *)

val lock_requests :
  t -> doc:string -> Dtx_update.Op.t ->
  ((Dtx_locks.Table.resource * Dtx_locks.Mode.t) list * int, string) result
(** [(requests, processed)] — the deduplicated lock set this operation must
    {e hold} on [doc] under this protocol, plus the number of lock requests
    the LockManager {e processes} to compute it ([processed >= length
    requests]). For Node2PL the two differ: navigation lock-couples through
    every node the evaluation visits (paying per-visit lock processing) but
    retains only the target path/subtree locks. [Error _] if the document
    is unknown. An empty list is possible (the operation cannot touch
    anything here, e.g. its path matches nothing). *)

val cache_stats : t -> int * int
(** [(hits, misses)] of the XDGL lock-derivation cache: {!lock_requests}
    memoizes the request set per (doc, op) against the DataGuide's version
    counter, so repeated operations over a stable guide skip the
    ancestor/predicate re-walk. Non-XDGL kinds never consult the cache, so
    both counters stay 0 for them. *)

val note_applied : t -> doc:string -> Dtx_update.Exec.dg_delta list -> unit
(** Maintain the protocol's lock-representation structure after an operation
    (or an undo) changed the document. No-op for Node2PL/Doc2PL. *)

val structure_size : t -> string -> int
(** Size of the lock-representation structure for [doc]: DataGuide nodes for
    XDGL, document nodes for Node2PL, 1 for Doc2PL. This is the "summarized
    data structure" advantage the paper measures indirectly. *)

val dataguide : t -> string -> Dtx_dataguide.Dataguide.t option
(** The DataGuide backing [doc] (XDGL only; [None] otherwise). Exposed for
    tests and for the examples that print Fig.-5-style views. *)
