(** Pluggable concurrency-control protocols.

    The paper stresses that DTX "was conceived in a flexible fashion, so that
    other concurrency control protocols can be employed" — its own evaluation
    swaps XDGL for Node2PL while keeping every other DTX component. This
    module is that seam, organised as a {e registry}: each protocol is a
    first-class {!kind} value bundling its lock-derivation rules, display
    name, lookup aliases and {!caps} capability flags, so adding a protocol
    is a {!register} call rather than an every-dispatch-site edit. A protocol
    {e instance} ({!t}) owns a site's document replicas plus whatever
    lock-representation structure the kind needs (a DataGuide for the XDGL
    family, nothing extra for the tree/document protocols), and translates
    each operation into the list of (resource, mode) lock requests its rules
    demand. The lock table, scheduler, network and deadlock detector are
    shared by all protocols.

    Six protocols are built in:
    - {b XDGL} ({!xdgl}) — the paper's protocol: multi-granularity locks on
      DataGuide nodes (see {!Xdgl_rules} for the per-operation rules).
    - {b Node2PL} ({!node2pl}) — tree locks on {e document} nodes: an
      operation locks the whole subtree it touches, node by node, which is
      what the paper uses to stand in for related work ("locks in trees").
    - {b Doc2PL} ({!doc2pl}) — the "traditional technique" of §3.2: one lock
      for the entire document.
    - {b taDOM} ({!tadom}) — the future-work extension (§5): taDOM-style
      multi-granularity locks on document nodes with intention-locked
      ancestor paths (see {!Tadom_rules}).
    - {b XDGL+VL} ({!xdgl_value}) — XDGL with the original paper's value
      locks for predicates (see {!Xdgl_value_rules}).
    - {b Commute} ({!commute}) — optimistic commutativity over XDGL
      (Dekeyser et al., arXiv cs/0505074): per-site derivation is exactly
      XDGL's, but the coordinator skips or intention-downgrades locks for
      operations the static analysis proves commuting, and validates the
      optimistic assumption at commit time (see {!Commute_rules}). *)

type caps = {
  uses_dataguide : bool;
      (** instances build and maintain a DataGuide per document *)
  caches_derivations : bool;
      (** lock derivation is memoized per (doc, op) against the guide
          version *)
  needs_validation : bool;
      (** optimistic: the coordinator must run a commutativity classifier
          and a commit-time validation phase *)
  two_pc_compatible : bool;
      (** the kind may be combined with two-phase commit *)
}

type kind
(** A registered protocol. Kinds are shared values handed out by the
    registry; structural equality ([=]) is safe and means "same
    registration". *)

val register :
  name:string ->
  aliases:string list ->
  caps:caps ->
  derive:
    (dg:Dtx_dataguide.Dataguide.t option ->
    Dtx_xml.Doc.t ->
    Dtx_update.Op.t ->
    ((Dtx_locks.Table.resource * Dtx_locks.Mode.t) list * int, string) result) ->
  structure:(dg:Dtx_dataguide.Dataguide.t option -> Dtx_xml.Doc.t -> int) ->
  unit ->
  kind
(** Register a protocol. [derive] maps an operation on a document (plus the
    instance's DataGuide when [caps.uses_dataguide]) to its
    [(requests, processed)] lock set; [structure] reports the size of the
    kind's lock-representation structure. [name] and every alias become
    {!kind_of_string} keys (case-insensitive). The returned kind is the
    shared registry value.
    @raise Invalid_argument if [name] or any alias (case-insensitively)
    collides with an already-registered protocol — silent shadowing would
    reroute every later {!kind_of_string} lookup. *)

val registered : unit -> kind list
(** All registered kinds, in registration order (built-ins first). This is
    what the CLI and the benches enumerate. *)

val caps : kind -> caps

val aliases : kind -> string list
(** The registered lookup aliases (excluding the display name). Every entry
    resolves back to this kind via {!kind_of_string} — the coherence the
    symbolic certifier's registry pass re-verifies. *)

val kind_to_string : kind -> string

val kind_of_string : string -> kind option

val xdgl : kind
val node2pl : kind
val doc2pl : kind
val tadom : kind
val xdgl_value : kind
val commute : kind

type t

val create : kind -> t
(** A fresh protocol instance managing no documents yet. *)

val kind : t -> kind

val name : t -> string

val add_doc : t -> Dtx_xml.Doc.t -> unit
(** Hand a document replica to the instance (builds the DataGuide for kinds
    with [caps.uses_dataguide]). Replaces any same-named document. *)

val doc : t -> string -> Dtx_xml.Doc.t option

val docs : t -> string list
(** Names of managed documents, sorted. *)

val lock_requests :
  t -> doc:string -> Dtx_update.Op.t ->
  ((Dtx_locks.Table.resource * Dtx_locks.Mode.t) list * int, string) result
(** [(requests, processed)] — the deduplicated lock set this operation must
    {e hold} on [doc] under this protocol, plus the number of lock requests
    the LockManager {e processes} to compute it ([processed >= length
    requests]). For Node2PL the two differ: navigation lock-couples through
    every node the evaluation visits (paying per-visit lock processing) but
    retains only the target path/subtree locks. [Error _] if the document
    is unknown. An empty list is possible (the operation cannot touch
    anything here, e.g. its path matches nothing). *)

val cache_stats : t -> int * int
(** [(hits, misses)] of the instance's lock-derivation cache. Kinds with
    [caps.caches_derivations] (XDGL, Commute) memoize the request set per
    (doc, op) against the DataGuide's version counter, so repeated
    operations over a stable guide skip the ancestor/predicate re-walk;
    kinds without a cache count every derivation as a miss, so
    [hits + misses] is the number of derivations performed for every
    protocol (no kind silently reports zeros). *)

val note_applied : t -> doc:string -> Dtx_update.Exec.dg_delta list -> unit
(** Maintain the protocol's lock-representation structure after an operation
    (or an undo) changed the document. No-op for kinds without a
    DataGuide. *)

val structure_size : t -> string -> int
(** Size of the lock-representation structure for [doc]: DataGuide nodes for
    the XDGL family, document nodes for Node2PL/taDOM, 1 for Doc2PL. This is
    the "summarized data structure" advantage the paper measures
    indirectly. *)

val dataguide : t -> string -> Dtx_dataguide.Dataguide.t option
(** The DataGuide backing [doc] ([caps.uses_dataguide] kinds only; [None]
    otherwise). Exposed for tests and for the examples that print
    Fig.-5-style views. *)
