module Dg = Dtx_dataguide.Dataguide
module Ast = Dtx_xpath.Ast
module Op = Dtx_update.Op
module Mode = Dtx_locks.Mode
module Table = Dtx_locks.Table

let frag_root_label fragment =
  let n = String.length fragment in
  let rec find_lt i = if i >= n then None else if fragment.[i] = '<' then Some (i + 1) else find_lt (i + 1) in
  match find_lt 0 with
  | None -> None
  | Some start ->
    let is_name_char c =
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
      || c = '_' || c = '-' || c = '.' || c = ':'
    in
    let rec stop i = if i < n && is_name_char fragment.[i] then stop (i + 1) else i in
    let e = stop start in
    if e = start then None else Some (String.sub fragment start (e - start))

let res (dg : Dg.t) (n : Dg.node) = Table.resource dg.Dg.doc_name n.Dg.dg_id

(* A lock on [n] plus the intention lock on each ancestor. *)
let with_ancestors dg mode (n : Dg.node) =
  let up = Mode.intention_for mode in
  (res dg n, mode) :: List.map (fun a -> (res dg a, up)) (Dg.ancestors n)

let concat_path (prefix : Ast.path) (rel : Ast.path) =
  { Ast.absolute = prefix.Ast.absolute; steps = prefix.Ast.steps @ rel.Ast.steps }

(* ST on every node a predicate can read, IS above. *)
let predicate_locks dg (p : Ast.path) =
  List.concat_map
    (fun (prefix, rel) ->
      let full = Ast.without_predicates (concat_path prefix rel) in
      List.concat_map (with_ancestors dg Mode.ST) (Dg.match_path dg full))
    (Ast.predicate_paths p)

let main_targets dg (p : Ast.path) = Dg.match_path dg (Ast.without_predicates p)

(* The DataGuide node where content with root label [l] lives when attached
   under [connect]; created (count 0) if the label path is new. *)
let new_location dg (connect : Dg.node) label =
  Dg.ensure_path dg (Dg.label_path connect @ [ label ])

let parent_or_self (n : Dg.node) =
  match n.Dg.parent with Some p -> p | None -> n

let insert_mode = function
  | Op.Into -> Mode.SI
  | Op.After -> Mode.SA
  | Op.Before -> Mode.SB

let requests dg (op : Op.t) =
  let locks =
    match op with
    | Op.Query p ->
      List.concat_map (with_ancestors dg Mode.ST) (main_targets dg p)
      @ predicate_locks dg p
    | Op.Insert { target; pos; fragment } ->
      let tnodes = main_targets dg target in
      let connects =
        match pos with
        | Op.Into -> tnodes
        | Op.After | Op.Before -> List.map parent_or_self tnodes
      in
      let frag_label = frag_root_label fragment in
      let new_nodes =
        match frag_label with
        | None -> []
        | Some l -> List.map (fun c -> new_location dg c l) connects
      in
      List.concat_map (with_ancestors dg Mode.X) new_nodes
      @ List.concat_map (with_ancestors dg (insert_mode pos)) connects
      @ predicate_locks dg target
    | Op.Remove p ->
      List.concat_map (with_ancestors dg Mode.XT) (main_targets dg p)
      @ predicate_locks dg p
    | Op.Rename { target; new_label } ->
      let tnodes = main_targets dg target in
      let new_nodes =
        List.filter_map
          (fun n ->
            match n.Dg.parent with
            | Some p -> Some (new_location dg p new_label)
            | None -> None)
          tnodes
      in
      List.concat_map (with_ancestors dg Mode.XT) tnodes
      @ List.concat_map (with_ancestors dg Mode.X) new_nodes
      @ predicate_locks dg target
    | Op.Change { target; _ } ->
      List.concat_map (with_ancestors dg Mode.X) (main_targets dg target)
      @ predicate_locks dg target
    | Op.Transpose { source; dest } ->
      let snodes = main_targets dg source in
      let dnodes = main_targets dg dest in
      let new_nodes =
        List.concat_map
          (fun (s : Dg.node) ->
            List.map (fun d -> new_location dg d s.Dg.label) dnodes)
          snodes
      in
      List.concat_map (with_ancestors dg Mode.XT) snodes
      @ List.concat_map (with_ancestors dg Mode.SI) dnodes
      @ List.concat_map (with_ancestors dg Mode.X) new_nodes
      @ predicate_locks dg source
      @ predicate_locks dg dest
  in
  Table.dedup_requests locks
