module Node = Dtx_xml.Node
module Doc = Dtx_xml.Doc
module Ast = Dtx_xpath.Ast
module Eval = Dtx_xpath.Eval
module Op = Dtx_update.Op
module Mode = Dtx_locks.Mode
module Table = Dtx_locks.Table

let res (doc : Doc.t) (n : Node.t) = Table.resource doc.Doc.name n.Node.id

(* [mode] on the node itself; intention locks up the ancestor path — the
   taDOM shape: the subtree is protected implicitly, not node by node. *)
let with_ancestors doc mode (n : Node.t) =
  let up = Mode.intention_for mode in
  (res doc n, mode) :: List.map (fun a -> (res doc a, up)) (Node.ancestors n)

(* taDOM locks the exact target set (predicates applied): lock acquisition
   and execution are atomic at a site, so the evaluated targets are exactly
   the nodes the operation touches, and predicate reads are covered by the
   separate predicate locks. This is what makes taDOM finer-grained than
   the structural protocols. *)
let main_targets doc (p : Ast.path) = Eval.select doc p

let concat_path (prefix : Ast.path) (rel : Ast.path) =
  { Ast.absolute = prefix.Ast.absolute; steps = prefix.Ast.steps @ rel.Ast.steps }

let predicate_locks doc (p : Ast.path) =
  List.concat_map
    (fun (prefix, rel) ->
      let full = Ast.without_predicates (concat_path prefix rel) in
      List.concat_map (with_ancestors doc Mode.ST) (Eval.select doc full))
    (Ast.predicate_paths p)

let parent_or_self (n : Node.t) =
  match n.Node.parent with Some p -> p | None -> n

let insert_mode = function
  | Op.Into -> Mode.SI
  | Op.After -> Mode.SA
  | Op.Before -> Mode.SB

let requests doc (op : Op.t) =
  let retained =
    match op with
    | Op.Query p ->
      List.concat_map (with_ancestors doc Mode.ST) (main_targets doc p)
      @ predicate_locks doc p
    | Op.Insert { target; pos; _ } ->
      let tnodes = main_targets doc target in
      let connects =
        match pos with
        | Op.Into -> tnodes
        | Op.After | Op.Before -> List.map parent_or_self tnodes
      in
      (* SI/SA/SB is taDOM's child-exclusive guard on the connect node: it
         admits concurrent inserts under the same parent but blocks subtree
         readers (ST) and exclusives. The new content itself needs no lock —
         no concurrent operation can name it yet. *)
      List.concat_map (with_ancestors doc (insert_mode pos)) connects
      @ predicate_locks doc target
    | Op.Remove p ->
      List.concat_map (with_ancestors doc Mode.XT) (main_targets doc p)
      @ predicate_locks doc p
    | Op.Rename { target; _ } ->
      List.concat_map (with_ancestors doc Mode.XT) (main_targets doc target)
      @ predicate_locks doc target
    | Op.Change { target; _ } ->
      List.concat_map (with_ancestors doc Mode.X) (main_targets doc target)
      @ predicate_locks doc target
    | Op.Transpose { source; dest } ->
      List.concat_map (with_ancestors doc Mode.XT) (main_targets doc source)
      @ List.concat_map (with_ancestors doc Mode.SI) (main_targets doc dest)
      @ predicate_locks doc source
      @ predicate_locks doc dest
  in
  let retained = Table.dedup_requests retained in
  (retained, List.length retained)
