module Dg = Dtx_dataguide.Dataguide
module Node = Dtx_xml.Node
module Doc = Dtx_xml.Doc
module Ast = Dtx_xpath.Ast
module Eval = Dtx_xpath.Eval
module Op = Dtx_update.Op
module Mode = Dtx_locks.Mode
module Table = Dtx_locks.Table

let res (dg : Dg.t) (n : Dg.node) = Table.resource dg.Dg.doc_name n.Dg.dg_id

let vres (dg : Dg.t) (n : Dg.node) v =
  Table.value_resource dg.Dg.doc_name n.Dg.dg_id v

let with_ancestors dg mode (n : Dg.node) =
  let up = Mode.intention_for mode in
  (res dg n, mode) :: List.map (fun a -> (res dg a, up)) (Dg.ancestors n)

let concat_path (prefix : Ast.path) (rel : Ast.path) =
  { Ast.absolute = prefix.Ast.absolute; steps = prefix.Ast.steps @ rel.Ast.steps }

(* Enumerate the path's predicates with their anchoring prefix and, for Eq,
   the literal compared against. (Ast.predicate_paths strips predicates from
   its prefixes, so the literal must be recovered here.) *)
let predicates_with_literals (p : Ast.path) =
  let rec walk prefix_rev steps acc =
    match steps with
    | [] -> List.rev acc
    | (s : Ast.step) :: rest ->
      let prefix_rev = { s with Ast.preds = [] } :: prefix_rev in
      let prefix =
        { Ast.absolute = p.Ast.absolute; steps = List.rev prefix_rev }
      in
      let rec visit acc pred =
        match pred with
        | Ast.Eq (rel, v) -> (prefix, Ast.without_predicates rel, Some v) :: acc
        | Ast.Exists rel | Ast.Neq (rel, _) ->
          (* != and existence read every value of the path. *)
          (prefix, Ast.without_predicates rel, None) :: acc
        | Ast.And (a, b) | Ast.Or (a, b) -> visit (visit acc a) b
        | Ast.Pos _ | Ast.Last -> acc
      in
      let acc = List.fold_left visit acc s.Ast.preds in
      walk prefix_rev rest acc
  in
  walk [] p.Ast.steps []

(* Value locks for predicates: an Eq predicate reads only one value of the
   predicate path, so ST goes on the (node, literal) resource; IS still
   covers the plain node and its ancestors. Exists predicates read every
   value and keep the full ST. *)
let predicate_locks dg (p : Ast.path) =
  List.concat_map
    (fun ((prefix : Ast.path), (rel : Ast.path), literal) ->
      let full = Ast.without_predicates (concat_path prefix rel) in
      let nodes = Dg.match_path dg full in
      match literal with
      | Some v ->
        List.concat_map
          (fun n ->
            (vres dg n v, Mode.ST)
            :: (res dg n, Mode.IS)
            :: List.map (fun a -> (res dg a, Mode.IS)) (Dg.ancestors n))
          nodes
      | None -> List.concat_map (with_ancestors dg Mode.ST) nodes)
    (predicates_with_literals p)

(* The predicates inside [p] resolve against [doc], so the affected node set
   is exact; for each affected document node, X the (DataGuide node, text)
   value resources the update invalidates. *)
let value_invalidations dg (doc : Doc.t) (p : Ast.path) ~new_text =
  let targets = Eval.select doc p in
  List.concat_map
    (fun (n : Node.t) ->
      match Dg.find_path dg (Node.label_path n) with
      | None -> []
      | Some dgn ->
        let old_v = Node.text_content n in
        let olds = if old_v = "" then [] else [ (vres dg dgn old_v, Mode.X) ] in
        let news =
          match new_text with
          | Some v when v <> old_v -> [ (vres dg dgn v, Mode.X) ]
          | _ -> []
        in
        olds @ news)
    targets

(* Value locks for a whole subtree leaving or entering the document. *)
let subtree_value_locks dg (root : Node.t) =
  List.rev
    (Node.fold
       (fun acc (n : Node.t) ->
         match (n.Node.text, Dg.find_path dg (Node.label_path n)) with
         | Some v, Some dgn when v <> "" -> (vres dg dgn v, Mode.X) :: acc
         | _ -> acc)
       [] root)

let parent_or_self (n : Dg.node) =
  match n.Dg.parent with Some p -> p | None -> n

let requests dg (doc : Doc.t) (op : Op.t) =
  (* Replace the coarse predicate ST locks of the structural rules with
     value-scoped ones: recompute the base rules on the predicate-free
     operation, then add our refined predicate locks. *)
  let strip (p : Ast.path) = Ast.without_predicates p in
  let base_op =
    match op with
    | Op.Query p -> Op.Query (strip p)
    | Op.Insert i -> Op.Insert { i with target = strip i.target }
    | Op.Remove p -> Op.Remove (strip p)
    | Op.Rename r -> Op.Rename { r with target = strip r.target }
    | Op.Change c -> Op.Change { c with target = strip c.target }
    | Op.Transpose t ->
      Op.Transpose { source = strip t.source; dest = strip t.dest }
  in
  let base = Xdgl_rules.requests dg base_op in
  let preds =
    List.concat_map (predicate_locks dg) (Op.paths op)
  in
  let values =
    match op with
    | Op.Query _ -> []
    | Op.Change { target; new_text } ->
      value_invalidations dg doc target ~new_text:(Some new_text)
    | Op.Rename { target; _ } ->
      value_invalidations dg doc target ~new_text:None
    | Op.Remove p ->
      List.concat_map (subtree_value_locks dg) (Eval.select doc p)
    | Op.Insert { target; pos; fragment } -> (
      (* Phantom protection: X the value resources the new content will
         occupy, so a predicate reader of that value conflicts with the
         insert. The new label paths are the connect node's path extended
         by the fragment's internal paths. *)
      match Dtx_xml.Parser.parse_fragment fragment with
      | exception Dtx_xml.Parser.Parse_error _ -> []
      | frag ->
        let tnodes = Dg.match_path dg (strip target) in
        let connects =
          match pos with
          | Op.Into -> tnodes
          | Op.After | Op.Before -> List.map parent_or_self tnodes
        in
        List.concat_map
          (fun connect ->
            List.rev
              (Node.fold
                 (fun acc (fn : Node.t) ->
                   match fn.Node.text with
                   | Some v when v <> "" ->
                     let full =
                       Dg.label_path connect @ Node.label_path fn
                     in
                     let dgn = Dg.ensure_path dg full in
                     (vres dg dgn v, Mode.X) :: acc
                   | _ -> acc)
                 [] frag.Doc.root))
          connects)
    | Op.Transpose { source; _ } ->
      (* Moved values keep their text but change paths; lock the old
         locations' values exclusively. *)
      List.concat_map (subtree_value_locks dg) (Eval.select doc source)
  in
  Table.dedup_requests (base @ preds @ values)
