module Op = Dtx_update.Op
module Ast = Dtx_xpath.Ast
module Mode = Dtx_locks.Mode
module Table = Dtx_locks.Table
module Dg = Dtx_dataguide.Dataguide
module Doc = Dtx_xml.Doc
module Xml_parser = Dtx_xml.Parser

type verdict = Commutes | Conflicts | Unknown

let verdict_to_string = function
  | Commutes -> "commutes"
  | Conflicts -> "conflicts"
  | Unknown -> "unknown"

let independent = function Commutes -> true | Conflicts | Unknown -> false

(* The analyzer owns a private protocol instance over private document
   copies: XDGL lock derivation grows the DataGuide for insert targets
   ([Dg.ensure_path] creates count-0 nodes), and that mutation must never
   leak into — or depend on — the cluster being analyzed. Phantom count-0
   nodes only ever widen later footprints, which errs on the side of
   Conflicts. *)
type t = {
  proto : Protocol.t;
  kind : Protocol.kind;
}

let create_of_docs ~protocol ~docs =
  let proto = Protocol.create protocol in
  List.iter (fun doc -> Protocol.add_doc proto (Doc.clone doc)) docs;
  { proto; kind = protocol }

let create ~protocol ~docs =
  let proto = Protocol.create protocol in
  List.iter
    (fun (name, xml) -> Protocol.add_doc proto (Xml_parser.parse ~name xml))
    docs;
  { proto; kind = protocol }

let guide_version t doc =
  match Protocol.dataguide t.proto doc with
  | Some dg -> Dg.shape_version dg
  | None -> 0

(* Mirror an admitted update onto the analyzer's private replica so its
   DataGuide tracks the structure concurrent transactions are {e about} to
   create: optimistic admission snapshots [guide_version] and a later
   structural mutation past that snapshot fails validation. Failures are
   ignored — the mirror is a conservative superset of what really commits
   (a mutation that never lands can only cause a spurious abort, never a
   missed one). *)
let apply_structural t ~doc op =
  if Op.is_update op then
    match Protocol.doc t.proto doc with
    | None -> ()
    | Some d -> (
      match Dtx_update.Exec.apply d op with
      | Ok eff -> Protocol.note_applied t.proto ~doc eff.Dtx_update.Exec.dg
      | Error _ -> ())

let order_sensitive = function
  | Op.Insert _ | Op.Transpose _ -> true
  | Op.Query _ | Op.Remove _ | Op.Rename _ | Op.Change _ -> false

let footprint t ~doc op =
  match Protocol.lock_requests t.proto ~doc op with
  | Ok (reqs, _) -> Some reqs
  | Error _ -> None

(* The one place the XDGL rules under-approximate an operation's {e read}
   set: INSERT AFTER/BEFORE locks the connect node (the parent) but not the
   target node whose position it reads, so a footprint intersection alone
   would call "INSERT AFTER /x" and "REMOVE /x" commuting. Charge every
   operation a virtual ST on each node its paths resolve to (IS above),
   closing that gap; for operations that already hold a stronger lock there
   the extra ST changes nothing. *)
let virtual_reads t ~doc op =
  match Protocol.dataguide t.proto doc with
  | None -> []
  | Some dg ->
    List.concat_map
      (fun p ->
        List.concat_map
          (fun (n : Dg.node) ->
            (Table.resource dg.Dg.doc_name n.Dg.dg_id, Mode.ST)
            :: List.map
                 (fun (a : Dg.node) ->
                   (Table.resource dg.Dg.doc_name a.Dg.dg_id, Mode.IS))
                 (Dg.ancestors n))
          (Dg.match_path dg (Ast.without_predicates p)))
      (Op.paths op)

let lists_conflict fp1 fp2 =
  List.exists
    (fun (r1, m1) ->
      List.exists
        (fun (r2, m2) ->
          Table.compare_resource r1 r2 = 0 && not (Mode.compatible m1 m2))
        fp2)
    fp1

(* Sibling-order sensitivity: two insertions (or transpose landings) whose
   shared-insert locks (SI/SA/SB — mutually compatible by design) meet on a
   common connect node produce different sibling orders depending on who
   goes first, even though neither blocks the other. *)
let shared_connect fp1 fp2 =
  let ins = function Mode.SI | Mode.SA | Mode.SB -> true | _ -> false in
  List.exists
    (fun (r1, m1) ->
      ins m1
      && List.exists
           (fun (r2, m2) -> ins m2 && Table.compare_resource r1 r2 = 0)
           fp2)
    fp1

(* A prepared operation: footprint and virtual-read set derived once, so
   the O(n^2) pair loops below stop re-deriving locks (a cache probe with
   structural Op hashing) and re-walking the DataGuide per pair. Derivation
   grows the guide for insert targets, so [prepare] first warms every
   operation once — driving the guide to its fixed point — and only then
   snapshots footprints: every pairwise verdict is decided against one
   consistent schema state. *)
type prepared = {
  p_doc : string;
  p_op : Op.t;
  p_fp : (Table.resource * Mode.t) list option;
  p_vr : (Table.resource * Mode.t) list;
}

let prepared_doc p = p.p_doc

let prepare t ops =
  Array.iter (fun (doc, op) -> ignore (footprint t ~doc op)) ops;
  Array.map
    (fun (doc, op) ->
      {
        p_doc = doc;
        p_op = op;
        p_fp = footprint t ~doc op;
        p_vr = virtual_reads t ~doc op;
      })
    ops

let decide_prepared t p1 p2 =
  if p1.p_doc <> p2.p_doc then Commutes
  else if (not (Op.is_update p1.p_op)) && not (Op.is_update p2.p_op) then
    Commutes
  else
    match (p1.p_fp, p2.p_fp) with
    | None, _ | _, None -> Unknown
    | Some fp1, Some fp2 ->
      if lists_conflict (fp1 @ p1.p_vr) (fp2 @ p2.p_vr) then Conflicts
      else if
        order_sensitive p1.p_op && order_sensitive p2.p_op
        && shared_connect fp1 fp2
      then Unknown
      else if
        (* Without a DataGuide (Node2PL/Doc2PL/taDOM lock document nodes)
           there is no schema summary to read positions from, so two
           non-blocking updates on one document cannot be proved
           order-insensitive statically. *)
        Protocol.dataguide t.proto p1.p_doc = None
        && Op.is_update p1.p_op && Op.is_update p2.p_op
      then Unknown
      else Commutes

let decide t o1 o2 =
  match prepare t [| o1; o2 |] with
  | [| p1; p2 |] -> decide_prepared t p1 p2
  | _ -> assert false

let matrix_prepared t ps =
  Array.map (fun p1 -> Array.map (fun p2 -> decide_prepared t p1 p2) ps) ps

let matrix t ops = matrix_prepared t (prepare t ops)

let self_check t ops =
  let ps = prepare t ops in
  let m = matrix_prepared t ps in
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  Array.iteri
    (fun i p1 ->
      Array.iteri
        (fun j p2 ->
          if m.(i).(j) <> m.(j).(i) then
            err "matrix asymmetric at (%d, %d): %s vs %s" i j
              (verdict_to_string m.(i).(j))
              (verdict_to_string m.(j).(i));
          if p1.p_doc = p2.p_doc then
            match (p1.p_fp, p2.p_fp) with
            | Some fp1, Some fp2 ->
              (* Soundness against the mode matrix: a raw lock-mode conflict
                 must never be declared commuting (Unknown is acceptable —
                 it falls back to Conflicts as an independence answer). *)
              if lists_conflict fp1 fp2 && m.(i).(j) = Commutes then
                err
                  "ops %d (%s on %s) and %d (%s on %s) hold conflicting lock \
                   modes yet were declared commuting"
                  i
                  (Op.to_string p1.p_op)
                  p1.p_doc j
                  (Op.to_string p2.p_op)
                  p2.p_doc
            | None, _ | _, None ->
              if m.(i).(j) <> Unknown then
                err "underivable footprint at (%d, %d) must yield unknown" i j)
        ps)
    ps;
  match !errors with [] -> Ok () | es -> Error (List.rev es)
