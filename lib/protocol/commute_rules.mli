(** Static pairwise operation commutativity, decided from lock footprints on
    the schema summary — never from document instances.

    Following Dekeyser et al.'s instance-independent view of semistructured
    conflicts (arXiv cs/0505074), two operations commute when their
    statically derived footprints — the (resource, mode) sets
    {!Protocol.lock_requests} computes against the DataGuide — cannot
    interact:

    - {e different documents}: disjoint resource spaces, commute;
    - {e two queries}: reads never conflict;
    - {e lock-mode conflict} on a shared resource (per
      {!Dtx_locks.Mode.compatible}, after charging each operation a virtual
      ST read lock on the nodes its paths resolve to, which closes the
      INSERT AFTER/BEFORE gap where the rules lock the connect node but not
      the position-defining target): [Conflicts];
    - two {e order-sensitive} operations (insert/transpose) whose
      shared-insert locks (SI/SA/SB, mutually compatible by design) meet on
      a common connect node: [Unknown] — they do not block each other but
      produce different sibling orders;
    - otherwise [Commutes].

    [Unknown] is the conservative verdict: consumers needing a yes/no
    independence answer must treat it as [Conflicts] ({!independent} does).
    The analyzer owns a {e private} protocol instance over private document
    copies, because XDGL lock derivation grows the DataGuide for insert
    targets and that mutation must not touch the system under analysis.

    Two consumers share this engine: the schedule explorer's DPOR sleep
    sets (via the {!Dtx_explore.Commute} re-export) and the {!Protocol.commute}
    runtime protocol, whose coordinator classifies each transaction's
    operations against the concurrently active ones and skips or
    intention-downgrades locks for provably-commuting operations. *)

type verdict = Commutes | Conflicts | Unknown

val verdict_to_string : verdict -> string

val independent : verdict -> bool
(** [true] only for [Commutes] — [Unknown] conservatively counts as a
    conflict. This is the independence relation the schedule explorer's
    sleep sets are seeded with. *)

type t

val create :
  protocol:Protocol.kind -> docs:(string * string) list -> t
(** [create ~protocol ~docs] builds the analyzer over [(name, xml)]
    documents. The XML is parsed into private replicas (the analysis
    instance is never shared with a running cluster). *)

val create_of_docs : protocol:Protocol.kind -> docs:Dtx_xml.Doc.t list -> t
(** Like {!create} but over already-parsed documents, which are deep-cloned
    into the analyzer (same node ids, private instance). This is what the
    runtime coordinator uses to build its classifier from the cluster's
    placement documents. *)

val guide_version : t -> string -> int
(** Current {e shape} version of the analyzer's private DataGuide for a
    document (0 if the document is unknown or the protocol keeps no guide):
    it advances only when label paths appear or vanish, the one kind of
    mutation that can stale a derived footprint. The optimistic runtime
    snapshots these at admission and aborts any transaction whose touched
    guides advanced — a concurrent structural mutation introduced schema
    paths the admission-time verdicts never saw. *)

val apply_structural : t -> doc:string -> Dtx_update.Op.t -> unit
(** Mirror an admitted update onto the analyzer's private replica, advancing
    its DataGuide for any novel structure. Queries and failed applications
    are no-ops. The mirror is a conservative superset of what really
    commits: a mutation that never lands can only cause a spurious
    validation abort, never a missed one. *)

val decide :
  t -> string * Dtx_update.Op.t -> string * Dtx_update.Op.t -> verdict
(** [decide t (doc1, op1) (doc2, op2)] — do the operations commute? Purely
    static: only the DataGuide (or, for instance-based protocols, the
    document-node footprint) and the mode matrix are consulted. An
    operation whose footprint cannot be derived (unknown document) yields
    [Unknown]. *)

type prepared
(** An operation with its footprint and virtual-read set derived once, so
    repeated pairwise decisions stop re-deriving locks. *)

val prepared_doc : prepared -> string
(** The document the prepared operation targets. *)

val prepare : t -> (string * Dtx_update.Op.t) array -> prepared array
(** Derive every operation's footprint once, after a warm-up pass that
    drives the DataGuide's insert-target growth to its fixed point, so each
    pairwise verdict is decided against one consistent schema state. *)

val decide_prepared : t -> prepared -> prepared -> verdict
(** {!decide} over pre-derived footprints; this is the O(1)-per-pair form
    the runtime classifier uses against the set of active transactions. *)

val matrix :
  t -> (string * Dtx_update.Op.t) array -> verdict array array
(** Pairwise verdicts for a workload's operations; [m.(i).(j)] is
    [decide t ops.(i) ops.(j)]. Symmetric. Each operation's footprint and
    virtual-read set is derived once (via {!prepare}), not per pair. *)

val self_check :
  t -> (string * Dtx_update.Op.t) array -> (unit, string list) result
(** Soundness audit of {!matrix} over this workload: a raw lock-mode
    conflict (per {!Dtx_locks.Mode.compatible}, no virtual reads) must
    never be answered [Commutes], underivable footprints must be [Unknown],
    and the matrix must be symmetric. *)
