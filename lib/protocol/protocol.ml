module Doc = Dtx_xml.Doc
module Dg = Dtx_dataguide.Dataguide
module Op = Dtx_update.Op
module Exec = Dtx_update.Exec
module Mode = Dtx_locks.Mode
module Table = Dtx_locks.Table

type caps = {
  uses_dataguide : bool;
  caches_derivations : bool;
  needs_validation : bool;
  two_pc_compatible : bool;
}

(* A registered protocol. The record is deliberately closure-free so the
   polymorphic comparisons the call sites use ([kind = kind],
   [Some kind = ...]) stay total; the rules functions live in [impls],
   keyed by [k_id]. *)
type kind = {
  k_id : int;
  k_name : string;
  k_aliases : string list;
  k_caps : caps;
}

type impl = {
  i_derive :
    dg:Dg.t option ->
    Doc.t ->
    Op.t ->
    ((Table.resource * Mode.t) list * int, string) result;
  i_structure : dg:Dg.t option -> Doc.t -> int;
}

let registry : kind list ref = ref []
let by_alias : (string, kind) Hashtbl.t = Hashtbl.create 16
let impls : (int, impl) Hashtbl.t = Hashtbl.create 16
let next_id = ref 0

let register ~name ~aliases ~caps ~derive ~structure () =
  (* Registration is append-only and global: silently shadowing an existing
     name/alias would reroute every later [kind_of_string] (CLI parsing,
     saved configs) to the new entry. Refuse loudly instead. *)
  List.iter
    (fun a ->
      match Hashtbl.find_opt by_alias (String.lowercase_ascii a) with
      | Some prior ->
        invalid_arg
          (Printf.sprintf
             "Protocol.register: alias %S of %S collides with registered \
              protocol %S"
             a name prior.k_name)
      | None -> ())
    (name :: aliases);
  let k =
    { k_id = !next_id; k_name = name; k_aliases = aliases; k_caps = caps }
  in
  incr next_id;
  registry := !registry @ [ k ];
  Hashtbl.replace impls k.k_id { i_derive = derive; i_structure = structure };
  List.iter
    (fun a -> Hashtbl.replace by_alias (String.lowercase_ascii a) k)
    (name :: aliases);
  k

let impl_of k = Hashtbl.find impls k.k_id

let registered () = !registry
let caps k = k.k_caps
let aliases k = k.k_aliases
let kind_to_string k = k.k_name
let kind_of_string s = Hashtbl.find_opt by_alias (String.lowercase_ascii s)

(* ------------------------------------------------------------------ *)
(* Built-in rule functions                                            *)

let xdgl_derive ~dg _d op =
  match dg with
  | None -> Error "XDGL: missing DataGuide"
  | Some dg ->
    let requests = Xdgl_rules.requests dg op in
    Ok (requests, List.length requests)

let xdgl_value_derive ~dg d op =
  match dg with
  | None -> Error "XDGL+VL: missing DataGuide"
  | Some dg ->
    let requests = Xdgl_value_rules.requests dg d op in
    Ok (requests, List.length requests)

let node2pl_derive ~dg:_ d op = Ok (Node2pl_rules.requests d op)
let tadom_derive ~dg:_ d op = Ok (Tadom_rules.requests d op)

let doc2pl_derive ~dg:_ (d : Doc.t) op =
  (* One lock on the whole document: pseudo-node 0. *)
  let mode = if Op.is_update op then Mode.X else Mode.ST in
  Ok ([ (Table.resource d.Doc.name 0, mode) ], 1)

let guide_structure ~dg _d = match dg with Some dg -> Dg.size dg | None -> 0
let doc_structure ~dg:_ d = Doc.size d
let unit_structure ~dg:_ _d = 1

let guide_caps =
  {
    uses_dataguide = true;
    caches_derivations = true;
    needs_validation = false;
    two_pc_compatible = true;
  }

let instance_caps =
  {
    uses_dataguide = false;
    caches_derivations = false;
    needs_validation = false;
    two_pc_compatible = true;
  }

let xdgl =
  register ~name:"XDGL" ~aliases:[ "xdgl" ] ~caps:guide_caps
    ~derive:xdgl_derive ~structure:guide_structure ()

let node2pl =
  register ~name:"Node2PL" ~aliases:[ "node2pl" ] ~caps:instance_caps
    ~derive:node2pl_derive ~structure:doc_structure ()

let doc2pl =
  register ~name:"Doc2PL" ~aliases:[ "doc2pl" ] ~caps:instance_caps
    ~derive:doc2pl_derive ~structure:unit_structure ()

let tadom =
  register ~name:"taDOM" ~aliases:[ "tadom" ] ~caps:instance_caps
    ~derive:tadom_derive ~structure:doc_structure ()

let xdgl_value =
  (* Value-lock derivation reads document text, which changes without a
     DataGuide version bump, so it cannot share XDGL's derivation cache. *)
  register ~name:"XDGL+VL"
    ~aliases:[ "xdgl+vl"; "xdgl-vl"; "xdglvl" ]
    ~caps:{ guide_caps with caches_derivations = false }
    ~derive:xdgl_value_derive ~structure:guide_structure ()

let commute =
  (* Optimistic commutativity on top of XDGL: per-site lock derivation is
     exactly XDGL's (the fallback path), and the optimistic skip/downgrade
     plus commit-time validation live in the coordinator (see
     {!Commute_rules} and lib/core). *)
  register ~name:"Commute"
    ~aliases:[ "commute"; "xdgl+commute" ]
    ~caps:{ guide_caps with needs_validation = true }
    ~derive:xdgl_derive ~structure:guide_structure ()

(* ------------------------------------------------------------------ *)
(* Instances                                                          *)

(* Memoized lock derivation for kinds with [caches_derivations]: the
   requests for an operation depend only on the operation itself and the
   DataGuide's current state, so they are cached per (doc, op) and validated
   against the guide's version counter. Insert-family derivations may
   themselves extend the guide (ensure_path on fresh label paths), so the
   version is sampled {e after} deriving: a later identical call finds those
   nodes in place and reproduces the same set. *)
type cache_entry = {
  c_version : int;
  c_requests : (Table.resource * Mode.t) list;
  c_processed : int;
}

let cache_capacity = 4096

type t = {
  kind : kind;
  docs : (string, Doc.t) Hashtbl.t;
  guides : (string, Dg.t) Hashtbl.t;  (* populated when caps.uses_dataguide *)
  derivations : (string * Op.t, cache_entry) Hashtbl.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let create kind =
  { kind;
    docs = Hashtbl.create 8;
    guides = Hashtbl.create 8;
    derivations = Hashtbl.create 256;
    cache_hits = 0;
    cache_misses = 0 }

let kind t = t.kind

let name t = t.kind.k_name

let add_doc t (doc : Doc.t) =
  Hashtbl.replace t.docs doc.Doc.name doc;
  if t.kind.k_caps.uses_dataguide then begin
    Hashtbl.replace t.guides doc.Doc.name (Dg.build doc);
    (* A rebuilt guide restarts its version counter; drop every memo rather
       than risk a stale entry whose version coincides. *)
    Hashtbl.reset t.derivations
  end

let cache_stats t = (t.cache_hits, t.cache_misses)

let doc t name = Hashtbl.find_opt t.docs name

let docs t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.docs [] |> List.sort compare

let lock_requests t ~doc:doc_name op =
  match Hashtbl.find_opt t.docs doc_name with
  | None -> Error (Printf.sprintf "%s: unknown document %s" (name t) doc_name)
  | Some d -> (
    let k = t.kind in
    let dg =
      if k.k_caps.uses_dataguide then Hashtbl.find_opt t.guides doc_name
      else None
    in
    match (k.k_caps.uses_dataguide, dg) with
    | true, None ->
      Error (Printf.sprintf "%s: no DataGuide for %s" k.k_name doc_name)
    | _, Some g when k.k_caps.caches_derivations -> (
      let key = (doc_name, op) in
      match Hashtbl.find_opt t.derivations key with
      | Some ce when ce.c_version = Dg.version g ->
        t.cache_hits <- t.cache_hits + 1;
        Ok (ce.c_requests, ce.c_processed)
      | _ -> (
        t.cache_misses <- t.cache_misses + 1;
        match (impl_of k).i_derive ~dg d op with
        | Error _ as e -> e
        | Ok (requests, processed) ->
          if Hashtbl.length t.derivations >= cache_capacity then
            Hashtbl.reset t.derivations;
          Hashtbl.replace t.derivations key
            { c_version = Dg.version g;
              c_requests = requests;
              c_processed = processed };
          Ok (requests, processed)))
    | _ ->
      (* Uncached kinds still count each derivation as a miss, so
         [cache_stats] reports derivation volume for every protocol. *)
      t.cache_misses <- t.cache_misses + 1;
      (impl_of k).i_derive ~dg d op)

let note_applied t ~doc:doc_name deltas =
  if t.kind.k_caps.uses_dataguide then
    match Hashtbl.find_opt t.guides doc_name with
    | None -> ()
    | Some dg ->
      List.iter
        (fun delta ->
          match delta with
          | Exec.Dg_add path -> ignore (Dg.add_instance dg path)
          | Exec.Dg_remove path -> Dg.remove_instance dg path)
        deltas

let structure_size t doc_name =
  match Hashtbl.find_opt t.docs doc_name with
  | None -> 0
  | Some d ->
    (impl_of t.kind).i_structure ~dg:(Hashtbl.find_opt t.guides doc_name) d

let dataguide t doc_name =
  if t.kind.k_caps.uses_dataguide then Hashtbl.find_opt t.guides doc_name
  else None
