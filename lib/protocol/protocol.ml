module Doc = Dtx_xml.Doc
module Dg = Dtx_dataguide.Dataguide
module Op = Dtx_update.Op
module Exec = Dtx_update.Exec
module Mode = Dtx_locks.Mode
module Table = Dtx_locks.Table

type kind = Xdgl | Node2pl | Doc2pl | Tadom | Xdgl_value

let kind_to_string = function
  | Xdgl -> "XDGL"
  | Node2pl -> "Node2PL"
  | Doc2pl -> "Doc2PL"
  | Tadom -> "taDOM"
  | Xdgl_value -> "XDGL+VL"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "xdgl" -> Some Xdgl
  | "node2pl" -> Some Node2pl
  | "doc2pl" -> Some Doc2pl
  | "tadom" -> Some Tadom
  | "xdgl+vl" | "xdgl-vl" | "xdglvl" -> Some Xdgl_value
  | _ -> None

(* Memoized XDGL lock derivation: the requests for an operation depend only
   on the operation itself and the DataGuide's current state, so they are
   cached per (doc, op) and validated against the guide's version counter.
   Insert-family derivations may themselves extend the guide (ensure_path on
   fresh label paths), so the version is sampled {e after} deriving: a later
   identical call finds those nodes in place and reproduces the same set.
   Value-lock derivation (XDGL+VL) also reads document text, which changes
   without a DataGuide version bump, so only plain XDGL is cached. *)
type cache_entry = {
  c_version : int;
  c_requests : (Table.resource * Mode.t) list;
  c_processed : int;
}

let cache_capacity = 4096

type t = {
  kind : kind;
  docs : (string, Doc.t) Hashtbl.t;
  guides : (string, Dg.t) Hashtbl.t;  (* populated for Xdgl only *)
  derivations : (string * Op.t, cache_entry) Hashtbl.t;  (* Xdgl only *)
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let create kind =
  { kind;
    docs = Hashtbl.create 8;
    guides = Hashtbl.create 8;
    derivations = Hashtbl.create 256;
    cache_hits = 0;
    cache_misses = 0 }

let kind t = t.kind

let name t = kind_to_string t.kind

let add_doc t (doc : Doc.t) =
  Hashtbl.replace t.docs doc.Doc.name doc;
  match t.kind with
  | Xdgl | Xdgl_value ->
    Hashtbl.replace t.guides doc.Doc.name (Dg.build doc);
    (* A rebuilt guide restarts its version counter; drop every memo rather
       than risk a stale entry whose version coincides. *)
    Hashtbl.reset t.derivations
  | Node2pl | Doc2pl | Tadom -> ()

let cache_stats t = (t.cache_hits, t.cache_misses)

let doc t name = Hashtbl.find_opt t.docs name

let docs t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.docs [] |> List.sort compare

let lock_requests t ~doc:doc_name op =
  match Hashtbl.find_opt t.docs doc_name with
  | None -> Error (Printf.sprintf "%s: unknown document %s" (name t) doc_name)
  | Some d -> (
    match t.kind with
    | Xdgl -> (
      match Hashtbl.find_opt t.guides doc_name with
      | None -> Error (Printf.sprintf "XDGL: no DataGuide for %s" doc_name)
      | Some dg -> (
        let key = (doc_name, op) in
        match Hashtbl.find_opt t.derivations key with
        | Some ce when ce.c_version = Dg.version dg ->
          t.cache_hits <- t.cache_hits + 1;
          Ok (ce.c_requests, ce.c_processed)
        | _ ->
          t.cache_misses <- t.cache_misses + 1;
          let requests = Xdgl_rules.requests dg op in
          let processed = List.length requests in
          if Hashtbl.length t.derivations >= cache_capacity then
            Hashtbl.reset t.derivations;
          Hashtbl.replace t.derivations key
            { c_version = Dg.version dg;
              c_requests = requests;
              c_processed = processed };
          Ok (requests, processed)))
    | Xdgl_value -> (
      match Hashtbl.find_opt t.guides doc_name with
      | None -> Error (Printf.sprintf "XDGL+VL: no DataGuide for %s" doc_name)
      | Some dg ->
        let requests = Xdgl_value_rules.requests dg d op in
        Ok (requests, List.length requests))
    | Node2pl ->
      let requests, processed = Node2pl_rules.requests d op in
      Ok (requests, processed)
    | Tadom ->
      let requests, processed = Tadom_rules.requests d op in
      Ok (requests, processed)
    | Doc2pl ->
      (* One lock on the whole document: pseudo-node 0. *)
      let mode = if Op.is_update op then Mode.X else Mode.ST in
      Ok ([ (Table.resource doc_name 0, mode) ], 1))

let note_applied t ~doc:doc_name deltas =
  match t.kind with
  | Node2pl | Doc2pl | Tadom -> ()
  | Xdgl | Xdgl_value -> (
    match Hashtbl.find_opt t.guides doc_name with
    | None -> ()
    | Some dg ->
      List.iter
        (fun delta ->
          match delta with
          | Exec.Dg_add path -> ignore (Dg.add_instance dg path)
          | Exec.Dg_remove path -> Dg.remove_instance dg path)
        deltas)

let structure_size t doc_name =
  match t.kind with
  | Xdgl | Xdgl_value -> (
    match Hashtbl.find_opt t.guides doc_name with
    | Some dg -> Dg.size dg
    | None -> 0)
  | Node2pl | Tadom -> (
    match Hashtbl.find_opt t.docs doc_name with
    | Some d -> Doc.size d
    | None -> 0)
  | Doc2pl -> if Hashtbl.mem t.docs doc_name then 1 else 0

let dataguide t doc_name =
  match t.kind with
  | Xdgl | Xdgl_value -> Hashtbl.find_opt t.guides doc_name
  | Node2pl | Doc2pl | Tadom -> None
