module Op = Dtx_update.Op

type status = Active | Waiting | Committed | Aborted | Failed

let status_to_string = function
  | Active -> "active"
  | Waiting -> "waiting"
  | Committed -> "committed"
  | Aborted -> "aborted"
  | Failed -> "failed"

type op_record = {
  op_index : int;
  doc : string;
  op : Op.t;
  op_text : string;
      (* canonical Op.to_string rendering, computed once at creation so
         shipment building and wire sizing never re-render the operation *)
  mutable executed : bool;
  mutable executed_sites : int list;
}

type t = {
  id : int;
  client : int;
  coordinator : int;
  ops : op_record array;
  mutable status : status;
  mutable next_op : int;
  mutable submitted_at : float;
  mutable finished_at : float;
  mutable wait_started : float;
  mutable waited_total : float;
  mutable restarts : int;
}

let create ~id ~client ~coordinator ops =
  let ops =
    Array.of_list
      (List.mapi
         (fun i (doc, op) ->
           { op_index = i; doc; op; op_text = Op.to_string op;
             executed = false; executed_sites = [] })
         ops)
  in
  { id; client; coordinator; ops; status = Active; next_op = 0;
    submitted_at = 0.0; finished_at = 0.0; wait_started = 0.0;
    waited_total = 0.0; restarts = 0 }

let next_operation t =
  if t.next_op < Array.length t.ops then Some t.ops.(t.next_op) else None

let advance t =
  (match next_operation t with
   | Some op -> op.executed <- true
   | None -> ());
  t.next_op <- t.next_op + 1

let is_finished t = t.next_op >= Array.length t.ops

let is_update t =
  Array.exists (fun r -> Op.is_update r.op) t.ops

let docs t =
  Array.to_list t.ops
  |> List.map (fun r -> r.doc)
  |> List.sort_uniq compare

let with_id t id =
  let ops =
    Array.map
      (fun r -> { r with executed = false; executed_sites = [] })
      t.ops
  in
  { t with id; ops; status = Active; next_op = 0; submitted_at = 0.0;
    finished_at = 0.0; wait_started = 0.0; waited_total = 0.0 }

let reset_for_restart t =
  let t' = with_id t t.id in
  t'.restarts <- t.restarts + 1;
  t'

let response_time t = t.finished_at -. t.submitted_at

let pp ppf t =
  Format.fprintf ppf "t%d[client=%d coord=s%d ops=%d status=%s]" t.id t.client
    t.coordinator (Array.length t.ops) (status_to_string t.status)
