(** Transactions: an ordered list of operations over named documents,
    executed under Strict 2PL by a coordinator site.

    Transaction ids are allocated monotonically cluster-wide, so "the most
    recent transaction in the cycle" (the deadlock victim rule, Alg. 4 l. 7)
    is simply the largest id. The paper's outcome taxonomy is the status
    machine here: a transaction always ends {e committed}, {e aborted} (by
    deadlock or by an operation failure) or {e failed} (abort processing
    itself failed at some site, §2.2). *)

type status =
  | Active  (** scheduled, executing operations *)
  | Waiting  (** blocked on a lock conflict; resumes when the blocker ends *)
  | Committed
  | Aborted
  | Failed

val status_to_string : status -> string

type op_record = {
  op_index : int;
  doc : string;  (** document the operation addresses *)
  op : Dtx_update.Op.t;
  op_text : string;
      (** canonical [Op.to_string] rendering, precomputed at {!create} so
          shipment building and wire sizing never re-render the operation *)
  mutable executed : bool;
  mutable executed_sites : int list;  (** sites where effects were applied *)
}

type t = {
  id : int;
  client : int;
  coordinator : int;  (** site id where the transaction was submitted *)
  ops : op_record array;
  mutable status : status;
  mutable next_op : int;  (** index of the first unexecuted operation *)
  mutable submitted_at : float;
  mutable finished_at : float;
  mutable wait_started : float;
  mutable waited_total : float;  (** accumulated lock-wait time *)
  mutable restarts : int;  (** times re-submitted after a deadlock abort *)
}

val create :
  id:int -> client:int -> coordinator:int ->
  (string * Dtx_update.Op.t) list -> t
(** [create ~id ~client ~coordinator ops] builds a transaction from
    (document, operation) pairs, in execution order. *)

val next_operation : t -> op_record option
(** The first unexecuted operation, if any (Alg. 1 l. 4). *)

val advance : t -> unit
(** Mark the current operation executed and move on. *)

val is_finished : t -> bool
(** No unexecuted operations remain (commit becomes possible, Alg. 1
    l. 24). *)

val is_update : t -> bool
(** Contains at least one update operation. *)

val docs : t -> string list
(** Distinct documents touched, sorted. *)

val reset_for_restart : t -> t
(** A fresh copy (same ops, same client/coordinator) with a {e new id} for
    client-level resubmission after an abort; increments [restarts]. The new
    id must be supplied by the caller via {!val:with_id}. *)

val with_id : t -> int -> t
(** Copy with a different id and all execution state cleared. *)

val response_time : t -> float
(** [finished_at - submitted_at]; meaningful once finished. *)

val pp : Format.formatter -> t -> unit
