module Msg = Dtx_net.Msg
module Rng = Dtx_util.Rng

type window = { from_ms : float; until_ms : float }

let in_window w time = time >= w.from_ms && time < w.until_ms

type link = { l_src : int option; l_dst : int option }

let any_link = { l_src = None; l_dst = None }

let link_matches l ~src ~dst =
  (match l.l_src with None -> true | Some s -> s = src)
  && (match l.l_dst with None -> true | Some d -> d = dst)

type link_fault = {
  lf_window : window;
  lf_link : link;
  lf_kinds : Msg.Kind.t list;
  lf_drop_pct : int;
  lf_dup_pct : int;
  lf_delay_ms : float;
  lf_jitter_ms : float;
}

let fault_matches lf ~time ~src ~dst kind =
  in_window lf.lf_window time
  && link_matches lf.lf_link ~src ~dst
  && (lf.lf_kinds = [] || List.mem kind lf.lf_kinds)

type partition = { p_window : window; p_group : int list }

type crash = {
  c_site : int;
  c_at_ms : float;
  c_restart_after_ms : float option;
}

type t = {
  seed : int;
  horizon_ms : float;
  link_faults : link_fault list;
  partitions : partition list;
  crashes : crash list;
}

let empty ~seed ~horizon_ms =
  { seed; horizon_ms; link_faults = []; partitions = []; crashes = [] }

let crashed t ~time ~site =
  List.exists
    (fun c ->
      c.c_site = site
      && time >= c.c_at_ms
      &&
      match c.c_restart_after_ms with
      | None -> true
      | Some d -> time < c.c_at_ms +. d)
    t.crashes

let cut t ~time ~src ~dst =
  src <> dst
  && (crashed t ~time ~site:src
     || crashed t ~time ~site:dst
     || List.exists
          (fun p ->
            in_window p.p_window time
            && List.mem src p.p_group <> List.mem dst p.p_group)
          t.partitions)

(* ------------------------------------------------------------------ *)
(* Seeded plan generation                                              *)
(* ------------------------------------------------------------------ *)

(* Every generated fault self-heals inside the horizon: partitions close,
   crashed sites restart. Termination then only needs the protocol's
   retransmission/timeout machinery, not an oracle. *)
let random ~seed ~n_sites ~horizon_ms =
  let rng = Rng.create (0x9e3779b9 + seed) in
  let window ~max_len =
    let from_ms = Rng.float rng (horizon_ms *. 0.6) in
    let len = 5.0 +. Rng.float rng (Float.min max_len (horizon_ms *. 0.35)) in
    { from_ms; until_ms = Float.min (from_ms +. len) (horizon_ms *. 0.95) }
  in
  let n_link_faults = 1 + Rng.int rng 3 in
  let link_faults =
    List.init n_link_faults (fun _ ->
        let scoped = Rng.bool rng in
        let lf_link =
          if scoped && n_sites > 1 then
            if Rng.bool rng then
              { l_src = Some (Rng.int rng n_sites); l_dst = None }
            else { l_src = None; l_dst = Some (Rng.int rng n_sites) }
          else any_link
        in
        let lf_kinds =
          (* Half the faults target the unreliable workhorse kinds; the
             rest hit everything. *)
          if Rng.bool rng then [ Msg.Kind.Op_ship; Msg.Kind.Op_status ]
          else []
        in
        { lf_window = window ~max_len:(horizon_ms *. 0.5);
          lf_link;
          lf_kinds;
          lf_drop_pct = Rng.int_in rng 5 40;
          lf_dup_pct = Rng.int_in rng 5 35;
          lf_delay_ms = Rng.float rng 3.0;
          lf_jitter_ms = Rng.float rng 8.0 })
  in
  let partitions =
    if n_sites >= 2 && Rng.pct rng 60 then
      let k = 1 + Rng.int rng (n_sites / 2) in
      let sites = Array.init n_sites (fun i -> i) in
      Rng.shuffle rng sites;
      [ { p_window = window ~max_len:(horizon_ms *. 0.25);
          p_group = Array.to_list (Array.sub sites 0 k) } ]
    else []
  in
  let crashes =
    if n_sites >= 2 && Rng.pct rng 55 then
      let c_site = Rng.int rng n_sites in
      let c_at_ms = 10.0 +. Rng.float rng (horizon_ms *. 0.5) in
      [ { c_site;
          c_at_ms;
          c_restart_after_ms = Some (10.0 +. Rng.float rng (horizon_ms *. 0.2))
        } ]
    else []
  in
  { seed; horizon_ms; link_faults; partitions; crashes }

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_window ppf w =
  Format.fprintf ppf "[%.0f,%.0f)ms" w.from_ms w.until_ms

let pp_link ppf l =
  match (l.l_src, l.l_dst) with
  | None, None -> Format.fprintf ppf "*->*"
  | Some s, None -> Format.fprintf ppf "%d->*" s
  | None, Some d -> Format.fprintf ppf "*->%d" d
  | Some s, Some d -> Format.fprintf ppf "%d->%d" s d

let pp ppf t =
  Format.fprintf ppf "@[<v>plan seed=%d horizon=%.0fms" t.seed t.horizon_ms;
  List.iter
    (fun lf ->
      Format.fprintf ppf
        "@,  link %a %a drop=%d%% dup=%d%% delay=%.1f+%.1fms%s" pp_link
        lf.lf_link pp_window lf.lf_window lf.lf_drop_pct lf.lf_dup_pct
        lf.lf_delay_ms lf.lf_jitter_ms
        (if lf.lf_kinds = [] then ""
         else
           " kinds=" ^ String.concat ","
             (List.map Msg.Kind.to_string lf.lf_kinds)))
    t.link_faults;
  List.iter
    (fun p ->
      Format.fprintf ppf "@,  partition %a {%s | rest}" pp_window p.p_window
        (String.concat "," (List.map string_of_int p.p_group)))
    t.partitions;
  List.iter
    (fun c ->
      Format.fprintf ppf "@,  crash site %d at %.0fms%s" c.c_site c.c_at_ms
        (match c.c_restart_after_ms with
         | Some d -> Printf.sprintf " restart +%.0fms" d
         | None -> " (no restart)"))
    t.crashes;
  Format.fprintf ppf "@]"
