module Sim = Dtx_sim.Sim
module Net = Dtx_net.Net
module Msg = Dtx_net.Msg
module Rng = Dtx_util.Rng
module Cluster = Dtx.Cluster

type t = {
  plan : Fault_plan.t;
  cluster : Cluster.t;
  rng : Rng.t;  (* the injector's own stream: plan decisions stay seeded *)
}

(* Send-time decision: the offsets list of every copy to deliver. [] drops
   the message; one zero offset is a normal delivery; an extra entry is a
   duplicate; positive offsets are extra delay — jittered copies overtake
   one another, which is where reordering comes from. *)
let offsets t ~time ~src ~dst channel msg =
  if Fault_plan.cut t.plan ~time ~src ~dst then []
  else begin
    let kind = Msg.kind msg in
    let active =
      List.filter
        (fun lf -> Fault_plan.fault_matches lf ~time ~src ~dst kind)
        t.plan.Fault_plan.link_faults
    in
    if active = [] then [ 0.0 ]
    else begin
      let unreliable = channel = Net.Unreliable in
      let dropped =
        unreliable
        && List.exists
             (fun lf -> Rng.pct t.rng lf.Fault_plan.lf_drop_pct)
             active
      in
      if dropped then []
      else begin
        let delay_of () =
          List.fold_left
            (fun acc lf ->
              acc +. lf.Fault_plan.lf_delay_ms
              +.
              if lf.Fault_plan.lf_jitter_ms > 0.0 then
                Rng.float t.rng lf.Fault_plan.lf_jitter_ms
              else 0.0)
            0.0 active
        in
        let first = delay_of () in
        let duplicated =
          unreliable
          && List.exists
               (fun lf -> Rng.pct t.rng lf.Fault_plan.lf_dup_pct)
               active
        in
        if duplicated then [ first; delay_of () ] else [ first ]
      end
    end
  end

let install cluster plan =
  let t =
    { plan; cluster; rng = Rng.create (plan.Fault_plan.seed lxor 0x5DEECE66) }
  in
  Net.set_fault (Cluster.net cluster)
    (Some
       { Net.f_offsets =
           (fun ~time ~src ~dst channel msg ->
             offsets t ~time ~src ~dst channel msg);
         f_deliverable =
           (fun ~time ~src ~dst ->
             not (Fault_plan.cut plan ~time ~src ~dst)) });
  let sim = Cluster.sim cluster in
  List.iter
    (fun (c : Fault_plan.crash) ->
      ignore
        (Sim.schedule_at sim ~time:c.Fault_plan.c_at_ms (fun () ->
             Cluster.crash_site cluster ~site:c.Fault_plan.c_site));
      match c.Fault_plan.c_restart_after_ms with
      | None -> ()
      | Some d ->
        ignore
          (Sim.schedule_at sim
             ~time:(c.Fault_plan.c_at_ms +. d)
             (fun () ->
               Cluster.restart_site cluster ~site:c.Fault_plan.c_site)))
    plan.Fault_plan.crashes;
  t

let remove t = Net.set_fault (Cluster.net t.cluster) None

let link_oracle t = fun ~time ~src ~dst -> Fault_plan.cut t.plan ~time ~src ~dst
