(** Turn a {!Fault_plan} into live machinery on a running cluster.

    {!install} does two things: it registers a {!Dtx_net.Net.set_fault}
    hook that consults the plan (and the injector's own seeded stream) for
    every remote dispatch — drop, duplicate, delay/jitter, partition
    enforcement at both send and delivery time — and it schedules the
    plan's site crash/restart events on the simulator
    ({!Dtx.Cluster.crash_site} / {!Dtx.Cluster.restart_site}, the latter
    running WAL-replay recovery). Call before {!Dtx_sim.Sim.run}. *)

type t

val install : Dtx.Cluster.t -> Fault_plan.t -> t
(** Hook the plan into the cluster's network and schedule its crashes.
    Equal plans (same seed) produce identical fault streams. *)

val remove : t -> unit
(** Uninstall the network fault hook (already-scheduled crash events still
    fire). *)

val link_oracle : t -> time:float -> src:int -> dst:int -> bool
(** The plan's {!Fault_plan.cut} as a closure, shaped for
    [Dtx_check.Checker.set_link_oracle]. *)
