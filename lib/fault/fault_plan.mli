(** Declarative fault plans: a seeded, simulated-time schedule of the
    failures a DTX cluster must survive.

    The paper leaves atomicity and durability as future work (§5); a plan
    is the scripted adversary that exercises those paths — message drop,
    duplication, reordering (delay jitter), network partitions with heal
    times, and site crash/restart events — all in virtual time, all
    reproducible from [seed]. {!Injector} turns a plan into live
    {!Dtx_net.Net} fault hooks and scheduled crash/restart events;
    [Dtx_check.Checker.set_link_oracle] consumes {!cut} to verify that
    severed links really deliver nothing. *)

type window = { from_ms : float; until_ms : float }
(** Half-open interval of simulated time: active at [t] iff
    [from_ms <= t < until_ms]. *)

val in_window : window -> float -> bool

type link = { l_src : int option; l_dst : int option }
(** A directed link selector; [None] matches any site. *)

val any_link : link

val link_matches : link -> src:int -> dst:int -> bool

(** One unreliability episode on matching links. Drop and duplication
    apply only to {!Dtx_net.Net.Unreliable} traffic (the reliable channel
    models a retransmitting transport); delay and jitter apply to both —
    latency spares no one, and jittered copies overtake each other, which
    is how reordering arises. *)
type link_fault = {
  lf_window : window;
  lf_link : link;
  lf_kinds : Dtx_net.Msg.Kind.t list;  (** restrict to kinds; [[]] = all *)
  lf_drop_pct : int;  (** per-message loss probability, percent *)
  lf_dup_pct : int;  (** per-message duplication probability, percent *)
  lf_delay_ms : float;  (** fixed extra delay *)
  lf_jitter_ms : float;  (** uniform extra delay in [0, jitter) per copy *)
}

val fault_matches :
  link_fault -> time:float -> src:int -> dst:int -> Dtx_net.Msg.Kind.t -> bool

type partition = { p_window : window; p_group : int list }
(** During [p_window], traffic between [p_group] and its complement is
    severed in both directions (the window's end is the heal time). *)

type crash = {
  c_site : int;
  c_at_ms : float;
  c_restart_after_ms : float option;
      (** [None]: the site never comes back *)
}

type t = {
  seed : int;  (** drives every probabilistic decision of the injector *)
  horizon_ms : float;  (** the run length the plan was built for *)
  link_faults : link_fault list;
  partitions : partition list;
  crashes : crash list;
}

val empty : seed:int -> horizon_ms:float -> t

val crashed : t -> time:float -> site:int -> bool
(** Is [site] down at [time] under this plan's crash schedule? *)

val cut : t -> time:float -> src:int -> dst:int -> bool
(** Is the [src -> dst] link severed at [time] — by a partition window or
    by either endpoint being crashed? (Local links are never cut.) This is
    both the injector's delivery gate and the checker's partition oracle. *)

val random : seed:int -> n_sites:int -> horizon_ms:float -> t
(** A seeded adversary: 1–3 link-fault episodes (drop 5–40%, dup 5–35%,
    delay + jitter), usually a partition, usually a crash. Every generated
    fault self-heals inside the horizon — partitions close and crashed
    sites restart — so a run's termination needs only the protocol's own
    retransmission and timeout machinery. *)

val pp : Format.formatter -> t -> unit
