(** A minimal reusable worker pool over OCaml 5 domains.

    Built for the simulator's parallel tick: one batch of independent jobs
    at a time, submitted from a single (main) domain which also works the
    batch itself. Worker domains spawn lazily on first use — a pool that
    never runs a batch costs one record — and then park between batches
    until {!shutdown} joins them (or the process exits). *)

type t

val create : unit -> t

val run : t -> workers:int -> (unit -> unit) array -> unit
(** [run t ~workers jobs] executes every job and returns once all finished,
    distributing them over the calling domain plus up to [workers] pooled
    domains (spawning only as many as the batch can use). Jobs must be
    mutually independent: they may run concurrently and in any order. If a
    job raised, the first such exception is re-raised after the batch
    drains. Not reentrant: only one [run] (from one domain) at a time. *)

val shutdown : t -> unit
(** [shutdown t] wakes the parked worker domains and joins them. Call it
    from the submitting domain with no batch in flight — typically a CLI
    or bench exit path, so long sweeps don't accumulate parked domains.
    Idempotent; the pool stays usable, a later {!run} spawns fresh
    workers. *)
