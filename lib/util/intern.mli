(** String interning: a bijective symbol table mapping strings to dense small
    ints, so hot paths can key hashtables and compare identifiers with plain
    integer arithmetic instead of polymorphic hashing over strings.

    Ids are assigned in first-come order starting at 0 and are never
    reclaimed — an interner is meant for low-cardinality name spaces
    (document names, lock values), bounded by [max_ids]. *)

type t

val create : ?max_ids:int -> string -> t
(** [create what] makes an empty table; [what] names the symbol space in
    error messages. [max_ids] (default unbounded) caps how many distinct
    symbols may be interned — needed when ids are packed into bit fields. *)

val intern : t -> string -> int
(** Id of [s], allocating the next dense id on first sight.
    @raise Invalid_argument when a fresh symbol would exceed [max_ids]. *)

val find_opt : t -> string -> int option
(** Id of [s] if already interned, without allocating. *)

val lookup : t -> int -> string
(** Inverse of {!intern}. @raise Invalid_argument on an unallocated id. *)

val count : t -> int
(** Number of distinct symbols interned so far. *)
