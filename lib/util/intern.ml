module Race = Dtx_race.Race

type t = {
  ids : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable count : int;
  max_ids : int;
  what : string;
  lock : Mutex.t;
  race : Race.cell;
}

let create ?(max_ids = max_int) what =
  { ids = Hashtbl.create 64; names = Array.make 16 ""; count = 0; max_ids;
    what; lock = Mutex.create (); race = Race.cell ("Intern." ^ what) }

let count t = t.count

(* Interning mutates the table, and resource construction can now run on a
   worker domain during a parallel simulator tick (see Dtx_sim.Sim), so the
   whole insert path is serialized by [lock]. The mutex is uncontended in
   serial runs and the lock-table's doc-name memo keeps it off the per-lock
   fast path, so the cost is a handful of nanoseconds per *new* symbol.

   The mutex makes the table memory-safe across domains, not id-stable: if
   two sites grow one table inside the same parallel section, the ids come
   out in mutex-acquisition order, which no barrier fixes. The shadow cell
   treats a hit as a read (freely shared) and growth as a write, so exactly
   that pattern is what DTX_RACE=1 flags. *)
let intern t s =
  Mutex.lock t.lock;
  let id =
    match Hashtbl.find_opt t.ids s with
    | Some id ->
      Race.read ~ctx:"Intern.hit" t.race;
      id
    | None ->
      Race.write ~ctx:"Intern.grow" t.race;
      let id = t.count in
      if id >= t.max_ids then begin
        Mutex.unlock t.lock;
        invalid_arg
          (Printf.sprintf "Intern: %s table overflow (max %d symbols)" t.what
             t.max_ids)
      end;
      if id >= Array.length t.names then begin
        let bigger = Array.make (2 * Array.length t.names) "" in
        Array.blit t.names 0 bigger 0 t.count;
        t.names <- bigger
      end;
      t.names.(id) <- s;
      t.count <- id + 1;
      Hashtbl.replace t.ids s id;
      id
  in
  Mutex.unlock t.lock;
  id

let find_opt t s =
  Race.read ~ctx:"Intern.find_opt" t.race;
  Hashtbl.find_opt t.ids s

let lookup t id =
  Race.read ~ctx:"Intern.lookup" t.race;
  if id < 0 || id >= t.count then
    invalid_arg (Printf.sprintf "Intern: unknown %s id %d" t.what id);
  t.names.(id)
