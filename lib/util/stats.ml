type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let summarize xs =
  match xs with
  | [] ->
    { count = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.;
      p50 = 0.; p95 = 0.; p99 = 0. }
  | _ ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let m = mean xs in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a
      /. float_of_int n
    in
    { count = n;
      mean = m;
      stddev = sqrt var;
      min = a.(0);
      max = a.(n - 1);
      p50 = percentile a 0.5;
      p95 = percentile a 0.95;
      p99 = percentile a 0.99 }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f"
    s.count s.mean s.stddev s.min s.p50 s.p95 s.p99 s.max

module Timeline = struct
  module Race = Dtx_race.Race

  type t = {
    bucket : float;
    table : (int, float ref) Hashtbl.t;
    race : Race.cell;
  }

  let create ~bucket =
    if bucket <= 0.0 then invalid_arg "Timeline.create";
    { bucket; table = Hashtbl.create 64; race = Race.cell "stats.timeline" }

  let slot t time = int_of_float (time /. t.bucket)

  (* Shared accumulator: a site-tagged handler must bump it through
     [Sim.defer], never directly from a worker. *)
  let add t ~time v =
    Race.write ~ctx:"Timeline.add" t.race;
    let k = slot t time in
    match Hashtbl.find_opt t.table k with
    | Some r -> r := !r +. v
    | None -> Hashtbl.add t.table k (ref v)

  let incr t ~time = add t ~time 1.0

  let buckets t =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.table []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (k, v) -> (float_of_int k *. t.bucket, v))

  let cumulative t =
    let raw =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.table []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    match raw with
    | [] -> []
    | (first, _) :: _ ->
      let last = List.fold_left (fun _ (k, _) -> k) first raw in
      let tbl = Hashtbl.create 64 in
      List.iter (fun (k, v) -> Hashtbl.replace tbl k v) raw;
      let acc = ref 0.0 in
      let out = ref [] in
      for k = first to last do
        (match Hashtbl.find_opt tbl k with
         | Some v -> acc := !acc +. v
         | None -> ());
        out := (float_of_int k *. t.bucket, !acc) :: !out
      done;
      List.rev !out
end
