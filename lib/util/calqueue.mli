(** Calendar queues (R. Brown, CACM 1988): a priority queue for event
    scheduling whose buckets partition time into fixed-width windows laid
    out round-robin over an array — "days on a calendar page". With bucket
    width tracking the mean inter-event gap, push and pop are O(1) expected
    versus the binary heap's O(log n), which is what keeps million-event
    scale runs flat.

    Elements carry a [(time, seq)] key read through the accessors given to
    {!create}; the queue dispatches in strictly increasing [(time, seq)]
    order. Equal times land in the same bucket and the per-bucket lists are
    kept sorted by [(time, seq)], so FIFO tie order is exactly the binary
    heap's — swapping one queue for the other cannot reorder a schedule.
    Every sizing decision (growth, shrink, bucket width) is a pure function
    of queue content, so runs are deterministic. *)

type 'a t

val create : time:('a -> float) -> seq:('a -> int) -> unit -> 'a t
(** An empty queue. [time] must be non-negative and [seq] unique per
    element; elements pushed in increasing [seq] order at equal [time]
    dispatch FIFO. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element by [(time, seq)] without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element by [(time, seq)]. *)

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Drop every element on which the predicate is false, in one pass —
    the simulator's cancelled-entry compaction. The queue is resized for
    the surviving population. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Every element in unspecified order (queue unchanged). *)
