(* Calendar queue (Brown 1988). The array length is always a power of two
   so the bucket index is one mask. Each bucket is a time-sorted list of
   {e groups}, one per distinct timestamp; a group's elements sit in a FIFO
   in ascending [seq] order. Grouping is what survives the simulator's
   heavily tied timestamps: thousands of events at one instant cost O(1)
   each to insert (append to the group's queue), where a flat sorted bucket
   would degrade to O(n) per insert.

   Every placement decision derives from ONE function of a timestamp — its
   absolute window number [win tm = floor (tm / width)], an integer. The
   bucket is [win tm land mask]; the scan walks window numbers and accepts
   a bucket head iff the head's own window number equals the scanned one.
   Deriving both sides from the same monotone integer is what makes the
   dispatch order {e exactly} (time, seq): mixing [Float.rem]-based binning
   with incrementally-added window tops (the textbook formulation) lets the
   two computations disagree by one window near a bucket boundary, and once
   the calendar wraps laps such an event can fire after a later-timed one.

   A full fruitless lap falls back to a direct min-scan over bucket heads
   (the classic "jump" for sparse, far-future events). All sizing is
   content-determined: no randomness, no wall clock. *)

type 'a group = {
  g_time : float;
  g_q : 'a Queue.t;  (* non-empty, ascending seq *)
  mutable g_last : int;  (* max seq ever enqueued — the fast-append check *)
}

module Race = Dtx_race.Race

type 'a t = {
  time : 'a -> float;
  seq : 'a -> int;
  race : Race.cell;
  mutable buckets : 'a group list array;
  mutable width : float;  (* window width; > 0, finite *)
  mutable count : int;  (* elements *)
  mutable groups : int;  (* distinct timestamps, across all buckets *)
  mutable cur_win : int;
      (* scan frontier: absolute window number, <= the window of every
         pending event; [parked] forces the next access to direct-scan *)
}

let min_buckets = 16

let parked = min_int

let create ~time ~seq () =
  { time;
    seq;
    race = Race.cell "sim.calqueue";
    buckets = Array.make min_buckets [];
    width = 1.0;
    count = 0;
    groups = 0;
    cur_win = parked }

let length q = q.count

let is_empty q = q.count = 0

(* Absolute window number of a timestamp. Monotone in [tm] (float division
   and floor both are), which is all the ordering proof needs. *)
let win q tm = int_of_float (Float.floor (tm /. q.width))

let bucket_of q tm = win q tm land (Array.length q.buckets - 1)

(* Add to an existing group. Pushes within one timestamp almost always
   arrive in ascending seq (the simulator numbers events globally), so the
   common case is a plain FIFO append; an out-of-order seq rebuilds the
   small queue with an in-order insert, keeping the ascending-seq
   invariant in full generality. *)
let group_add q g x =
  let sx = q.seq x in
  if sx >= g.g_last || Queue.is_empty g.g_q then begin
    Queue.add x g.g_q;
    if sx > g.g_last then g.g_last <- sx
  end
  else begin
    let items = List.rev (Queue.fold (fun acc y -> y :: acc) [] g.g_q) in
    let rec ins = function
      | [] -> [ x ]
      | y :: rest -> if sx < q.seq y then x :: y :: rest else y :: ins rest
    in
    Queue.clear g.g_q;
    List.iter (fun y -> Queue.add y g.g_q) (ins items)
  end

let singleton_group q x =
  let gq = Queue.create () in
  Queue.add x gq;
  { g_time = q.time x; g_q = gq; g_last = q.seq x }

let bucket_add q i x =
  let tm = q.time x in
  let rec go = function
    | [] ->
      q.groups <- q.groups + 1;
      [ singleton_group q x ]
    | g :: rest ->
      if g.g_time = tm then begin
        group_add q g x;
        g :: rest
      end
      else if tm < g.g_time then begin
        q.groups <- q.groups + 1;
        singleton_group q x :: g :: rest
      end
      else g :: go rest
  in
  q.buckets.(i) <- go q.buckets.(i)

(* Whole-group reinsertion (resize path): group times are globally unique,
   so this never merges — it only finds the sorted slot. *)
let bucket_add_group q i g =
  let rec go = function
    | [] -> [ g ]
    | g' :: rest ->
      if g.g_time < g'.g_time then g :: g' :: rest else g' :: go rest
  in
  q.buckets.(i) <- go q.buckets.(i)

(* Rebuild with [n'] buckets and a width matching the current population:
   Brown's rule — twice the mean gap between the {e earliest} distinct
   timestamps, so roughly half the windows near the head hold one. A
   global min-to-max spread would mis-size skewed queues (the simulator's
   steady state: thousands of events just ahead of the clock plus a few
   far-future timers would stretch the windows until hundreds of dense
   groups pile into each bucket). Far-future events simply wrap extra
   laps, which the window scan handles. Degenerate spreads (all-equal
   times) get width 1.0. *)
let resize q n' =
  let gs = Array.fold_left (fun acc b -> List.rev_append b acc) [] q.buckets in
  let w =
    if q.groups <= 1 then 1.0
    else begin
      let times = List.sort compare (List.map (fun g -> g.g_time) gs) in
      let k = min 32 (q.groups - 1) in
      let t0 = List.hd times in
      let tk = List.nth times k in
      (tk -. t0) /. float_of_int k *. 2.0
    end
  in
  q.width <- (if Float.is_finite w && w > 1e-9 then w else 1e-9);
  q.buckets <- Array.make n' [];
  List.iter (fun g -> bucket_add_group q (bucket_of q g.g_time) g) gs;
  (* Park the scan state; the next access direct-searches once and
     re-anchors the frontier on the true minimum. *)
  q.cur_win <- parked

(* The simulator owns the queue on the main domain; a worker has no
   business here at all, so every entry point is a shadow write (even
   [peek] moves the scan frontier). *)
let push q x =
  Race.write ~ctx:"Calqueue.push" q.race;
  let tm = q.time x in
  bucket_add q (bucket_of q tm) x;
  q.count <- q.count + 1;
  let j = win q tm in
  if q.count = 1 then q.cur_win <- j (* first event anchors the calendar *)
  else if q.cur_win <> parked && j < q.cur_win then
    (* push behind the frontier: rewind so the scan can't miss it *)
    q.cur_win <- j;
  if q.groups > 2 * Array.length q.buckets then
    resize q (2 * Array.length q.buckets)

(* Find the bucket holding the minimal element; commits the frontier so the
   follow-up pop (or the next locate) starts on target.

   Exactness: windows [cur_win .. J-1] are proven empty as the scan passes
   them — window J' has events only in bucket [J' land mask], that bucket's
   head is its time-minimal group, and a head whose own window is not J'
   puts every event of the bucket in a window > J' (all are >= cur_win and
   congruent mod the bucket count). Acceptance at J therefore finds the
   global (time, seq) minimum: any pending event in a later window has a
   later-or-equal time ([win] is monotone), and equal times share a window,
   hence a bucket, hence one seq-ordered group. *)
let locate q =
  if q.count = 0 then None
  else begin
    let n = Array.length q.buckets in
    let mask = n - 1 in
    let direct () =
      let best = ref None in
      Array.iteri
        (fun i b ->
          match b with
          | [] -> ()
          | g :: _ -> (
            match !best with
            | Some (_, bg) when
                bg.g_time < g.g_time
                || (bg.g_time = g.g_time
                    && q.seq (Queue.peek bg.g_q) <= q.seq (Queue.peek g.g_q))
              -> ()
            | _ -> best := Some (i, g)))
        q.buckets;
      match !best with
      | None -> assert false (* count > 0 *)
      | Some (i, g) ->
        q.cur_win <- win q g.g_time;
        i
    in
    if q.cur_win = parked then Some (direct ())
    else begin
      let rec scan k =
        if k = n then direct ()
        else
          let j = q.cur_win + k in
          match q.buckets.(j land mask) with
          | g :: _ when win q g.g_time = j ->
            q.cur_win <- j;
            j land mask
          | _ -> scan (k + 1)
      in
      Some (scan 0)
    end
  end

let peek q =
  Race.write ~ctx:"Calqueue.peek" q.race;
  match locate q with
  | None -> None
  | Some i -> (
    match q.buckets.(i) with
    | g :: _ -> Some (Queue.peek g.g_q)
    | [] -> assert false)

let pop q =
  Race.write ~ctx:"Calqueue.pop" q.race;
  match locate q with
  | None -> None
  | Some i -> (
    match q.buckets.(i) with
    | [] -> assert false
    | g :: rest ->
      let x = Queue.take g.g_q in
      if Queue.is_empty g.g_q then begin
        q.buckets.(i) <- rest;
        q.groups <- q.groups - 1
      end;
      q.count <- q.count - 1;
      let n = Array.length q.buckets in
      if n > min_buckets && q.groups * 8 < n then resize q (n / 2);
      Some x)

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let filter_in_place f q =
  Race.write ~ctx:"Calqueue.filter_in_place" q.race;
  let kept = ref 0 in
  let kept_groups = ref 0 in
  Array.iteri
    (fun i b ->
      let b' =
        List.filter_map
          (fun g ->
            let items =
              List.rev
                (Queue.fold (fun acc y -> if f y then y :: acc else acc) [] g.g_q)
            in
            match items with
            | [] -> None
            | _ ->
              let gq = Queue.create () in
              List.iter (fun y -> Queue.add y gq) items;
              kept := !kept + Queue.length gq;
              incr kept_groups;
              (* g_last stays the historical max — a conservative, correct
                 fast-append bound *)
              Some { g with g_q = gq })
          b
      in
      q.buckets.(i) <- b')
    q.buckets;
  q.count <- !kept;
  q.groups <- !kept_groups;
  resize q (next_pow2 (max 1 !kept_groups) min_buckets)

let clear q =
  q.buckets <- Array.make min_buckets [];
  q.width <- 1.0;
  q.count <- 0;
  q.groups <- 0;
  q.cur_win <- parked

let to_list q =
  Array.fold_left
    (fun acc b ->
      List.fold_left
        (fun acc g -> Queue.fold (fun acc y -> y :: acc) acc g.g_q)
        acc b)
    [] q.buckets
