(* A tiny fixed worker pool over OCaml 5 domains. One batch runs at a time:
   the submitting (main) domain publishes an array of jobs, workers and the
   submitter itself pull indices off a shared counter under [lock], and the
   submitter returns when every job finished. Domains are spawned lazily on
   first use and kept until [shutdown] (they park in [Condition.wait]
   between batches; process exit also reaps them, but a long-lived process
   that is done with a pool — bench sweeps, tests — should join them
   explicitly). *)

type t = {
  lock : Mutex.t;
  work : Condition.t;  (* wakes parked workers when a batch is published *)
  done_ : Condition.t;  (* wakes the submitter when the batch drains *)
  mutable jobs : (unit -> unit) array;
  mutable next : int;  (* next unclaimed job index *)
  mutable unfinished : int;  (* jobs claimed or unclaimed but not yet done *)
  mutable generation : int;  (* batch counter; workers park until it moves *)
  mutable exn : (exn * Printexc.raw_backtrace) option;  (* first failure *)
  mutable spawned : int;
  mutable stop : bool;  (* tells parked workers to exit *)
  mutable domains : unit Domain.t list;  (* handles for [shutdown] to join *)
}

let create () =
  { lock = Mutex.create ();
    work = Condition.create ();
    done_ = Condition.create ();
    jobs = [||];
    next = 0;
    unfinished = 0;
    generation = 0;
    exn = None;
    spawned = 0;
    stop = false;
    domains = [] }

(* Claim and run jobs until the current batch has none left. Called with
   [lock] held; returns with [lock] held. *)
let drain t =
  while t.next < Array.length t.jobs do
    let i = t.next in
    t.next <- i + 1;
    Mutex.unlock t.lock;
    (try t.jobs.(i) ()
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       Mutex.lock t.lock;
       if t.exn = None then t.exn <- Some (e, bt);
       Mutex.unlock t.lock);
    Mutex.lock t.lock;
    t.unfinished <- t.unfinished - 1;
    if t.unfinished = 0 then Condition.broadcast t.done_
  done

let worker t =
  let rec loop gen =
    Mutex.lock t.lock;
    while t.generation = gen && not t.stop do
      Condition.wait t.work t.lock
    done;
    if t.stop then Mutex.unlock t.lock
    else begin
      let gen = t.generation in
      drain t;
      Mutex.unlock t.lock;
      loop gen
    end
  in
  loop 0

let ensure_workers t n =
  while t.spawned < n do
    t.spawned <- t.spawned + 1;
    t.domains <- Domain.spawn (fun () -> worker t) :: t.domains
  done

(* Join the parked workers. Callable only between batches (same domain as
   [run]); idempotent, and a later [run] just respawns a fresh set. *)
let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work;
  let ds = t.domains in
  t.domains <- [];
  t.spawned <- 0;
  Mutex.unlock t.lock;
  List.iter Domain.join ds;
  Mutex.lock t.lock;
  t.stop <- false;
  Mutex.unlock t.lock

(* Run every job, using up to [workers] extra domains plus the calling one.
   Jobs may run in any order and must not touch shared mutable state. The
   first exception a job raised is re-raised here after the whole batch
   drained. *)
let run t ~workers jobs =
  if Array.length jobs > 0 then begin
    Mutex.lock t.lock;
    ensure_workers t (min workers (Array.length jobs - 1));
    t.jobs <- jobs;
    t.next <- 0;
    t.unfinished <- Array.length jobs;
    t.exn <- None;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work;
    drain t;
    while t.unfinished > 0 do
      Condition.wait t.done_ t.lock
    done;
    t.jobs <- [||];
    let failed = t.exn in
    t.exn <- None;
    Mutex.unlock t.lock;
    match failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end
