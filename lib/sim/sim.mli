(** Deterministic discrete-event simulator.

    The whole DTX cluster runs inside one of these: sites, clients, the
    network and the periodic deadlock detector are all callbacks scheduled on
    a single virtual clock. Events with equal timestamps fire in scheduling
    (FIFO) order, which — together with the seeded {!Dtx_util.Rng} — makes
    every experiment bit-for-bit reproducible.

    Time is a [float] in {e simulated milliseconds}.

    The dispatch queue is a calendar queue ({!Dtx_util.Calqueue}) with O(1)
    expected operations; both it and the legacy binary heap (selectable
    with [DTX_SIM_QUEUE=heap], read at {!create}) dispatch in the same
    (time, seq) total order, so the backend choice cannot change a trace.
    Setting [DTX_SIM_DEBUG=1] enables queue/live-table consistency
    assertions after each cancelled-entry compaction.

    {b Parallel ticks.} With [DTX_DOMAINS=n] (n > 1, read at {!create}) and
    no chooser, tracer, horizon or event cap installed, {!run} executes each
    batch of equal-timestamp events in parallel across a fixed domain pool:
    events tagged with a [?site] are partitioned by site and run
    concurrently, while untagged events act as in-batch barriers and run
    serially in sequence order. Site-tagged actions defer every shared
    effect — schedules and anything routed through {!defer} — into
    per-event buffers that replay on the main domain in global sequence
    order, so a parallel run is byte-identical to the serial one. *)

type t

type event_id
(** Handle for a scheduled event, usable with {!cancel}. *)

val create : unit -> t
(** A fresh simulator with clock at [0.0]. *)

val now : t -> float
(** Current virtual time (ms). *)

val schedule : t -> ?site:int -> delay:float -> (unit -> unit) -> event_id
(** [schedule sim ~delay f] runs [f] at [now sim +. delay]. [delay] must be
    non-negative. [?site] (default [-1] = unpartitioned) tags the event as
    touching only that site's state, making it eligible for parallel
    execution within its tick; tag an event {e only} if its action confines
    its writes to site-local state and routes shared effects through the
    simulator (schedules are deferred automatically, other effects via
    {!defer}). When called from a worker domain during a parallel section
    the schedule itself is deferred and the returned id is a [-1] sentinel
    ({!cancel} on it is a no-op). @raise Invalid_argument on a negative
    delay. *)

val schedule_at : t -> ?site:int -> time:float -> (unit -> unit) -> event_id
(** [schedule_at sim ~time f] runs [f] at absolute [time] (clamped to [now] if
    in the past). [?site] as in {!schedule}. *)

val defer : (unit -> unit) -> bool
(** [defer f] appends [f] to the executing event's effect buffer when called
    from a site-tagged action running on a worker domain during a parallel
    section, returning [true]; the buffered thunks replay on the main domain
    in global sequence order after the section joins. Outside a parallel
    section it returns [false] and the caller must perform the effect
    immediately ([if not (Sim.defer f) then f ()]). Shared-state mutations
    reachable from site-tagged actions (network dispatch, pending-table
    upkeep) must route through this to keep parallel runs byte-identical. *)

val set_serial_only : t -> bool -> unit
(** [set_serial_only sim true] forces the serial dispatch loop even when
    [DTX_DOMAINS > 1] — for consumers that observe raw execution order
    outside the simulator (e.g. history recording). Default [false]. *)

val domains : t -> int
(** Domain count read from [DTX_DOMAINS] at {!create} (default 1). *)

val shutdown_pool : unit -> unit
(** Join the process-wide worker pool's parked domains (see
    {!Dtx_util.Dpool.shutdown}). Call from CLI/bench exit paths; a no-op
    when no parallel tick ever ran, and a later parallel run just
    respawns workers. *)

val cancel : t -> event_id -> unit
(** [cancel sim id] prevents a pending event from firing; cancelling an
    already-fired or unknown event is a no-op that retains no state (a
    cancellation mark lives only as long as the event sits in the queue). *)

val cancelled_backlog : t -> int
(** Number of still-queued events marked cancelled — bookkeeping the
    simulator currently retains for cancellations. Drops back to zero once
    those events' times pass, or earlier when compaction kicks in: once at
    least 64 cancellations are pending {e and} they outnumber half the
    queued events, the queue is rebuilt without them in one pass, so the
    backlog can never grow unboundedly ahead of the clock. Cancels aimed at
    fired or unknown ids never contribute. Exposed for leak regression
    tests. *)

val every : t -> period:float -> ?start:float -> (unit -> bool) -> unit
(** [every sim ~period f] runs [f] at [start] (default [period]) and then
    every [period] ms for as long as [f] returns [true]. This is how the
    distributed deadlock detector is driven. *)

val pending : t -> int
(** Number of events still queued. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** [run sim] processes events in timestamp order until the queue drains, the
    clock passes [until], or [max_events] events have fired. The clock ends at
    the last processed event's time. With a {!set_chooser} hook installed,
    [until] bounds the {e earliest} pending event (the chooser may still fire
    a later one) and "timestamp order" becomes whatever the chooser picks.
    The parallel tick path (see module docs) engages only on the
    unrestricted form [run sim] — any of [until], [max_events], a chooser, a
    tracer or {!set_serial_only} falls back to the serial loop. *)

val step : t -> bool
(** [step sim] processes exactly one event; [false] if the queue was empty. *)

(** {1 Controllable scheduling — the model-checking hook} *)

type candidate = { c_time : float; c_seq : event_id }
(** One pending event a chooser may fire next. *)

val candidates : t -> candidate list
(** Every live, non-cancelled event, sorted by (time, seq) — the enabled set
    a schedule explorer branches over. Calling this retires events already
    {!cancel}led (they are not schedule choices), so it perturbs
    {!cancelled_backlog}; the normal dispatch path never calls it. *)

val set_chooser : t -> (candidate list -> event_id) option -> unit
(** Install (or remove) a scheduler hook. While installed, {!step} (and
    {!run}) present the full {!candidates} list and fire the event whose id
    the hook returns instead of the earliest one — this is how the schedule
    explorer substitutes its own delivery/interleaving order. Firing an
    event behind the timestamp frontier never rewinds the clock: the clock
    advances to [max now chosen.c_time], so [now] stays monotone and events
    the fired action schedules land in the future. With [None] (the
    default) dispatch order is the classic (time, seq) heap order.
    @raise Invalid_argument if the hook returns an id that is not live. *)

val set_tracer : t -> (time:float -> seq:int -> unit) option -> unit
(** Install (or remove) a trace sink called for every fired event (cancelled
    ones included), after the clock advanced to its timestamp. Used by the
    analyzer to check clock monotonicity; [None] (the default) keeps the
    dispatch loop unchanged beyond one immediate [match]. *)
