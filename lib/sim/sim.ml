module Heap = Dtx_util.Heap

type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type event_id = int

type candidate = { c_time : float; c_seq : event_id }

(* [live] maps the seq of every still-queued event to the event itself, so
   cancel can mark the event in place and a cancel aimed at an already-fired
   (or unknown) id is a true no-op — nothing is ever retained for ids that
   are no longer in the queue.

   With a chooser installed the heap is demoted to a hint: the chooser picks
   any live event, [fire] drops it from [live], and later heap pops skip
   entries whose seq is no longer live (lazy deletion — [Heap] has no
   arbitrary removal). *)
type t = {
  mutable clock : float;
  mutable next_seq : int;
  queue : event Heap.t;
  live : (int, event) Hashtbl.t;
  mutable cancelled_pending : int;
  mutable tracer : (time:float -> seq:int -> unit) option;
  mutable chooser : (candidate list -> event_id) option;
}

let cmp_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  { clock = 0.0;
    next_seq = 0;
    queue = Heap.create ~cmp:cmp_event;
    live = Hashtbl.create 16;
    cancelled_pending = 0;
    tracer = None;
    chooser = None }

let set_tracer t tr = t.tracer <- tr

let set_chooser t c = t.chooser <- c

let now t = t.clock

let schedule_at t ~time action =
  let time = if time < t.clock then t.clock else time in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let ev = { time; seq; action; cancelled = false } in
  Heap.push t.queue ev;
  Hashtbl.replace t.live seq ev;
  seq

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let cancel t id =
  match Hashtbl.find_opt t.live id with
  | Some ev when not ev.cancelled ->
    ev.cancelled <- true;
    t.cancelled_pending <- t.cancelled_pending + 1
  | Some _ | None -> ()

let cancelled_backlog t = t.cancelled_pending

let rec every t ~period ?start f =
  if period <= 0.0 then invalid_arg "Sim.every: period must be positive";
  let delay = match start with Some s -> s | None -> period in
  ignore
    (schedule t ~delay (fun () -> if f () then every t ~period ~start:period f))

let pending t = Hashtbl.length t.live

(* A chooser may fire events behind the timestamp frontier, so the clock
   only ever ratchets forward; without a chooser [ev.time >= t.clock] always
   holds and this is the old assignment. The tracer sees the post-advance
   clock, keeping the observed tick sequence monotone either way. *)
let fire t ev =
  if ev.time > t.clock then t.clock <- ev.time;
  (match t.tracer with
   | Some tr -> tr ~time:t.clock ~seq:ev.seq
   | None -> ());
  Hashtbl.remove t.live ev.seq;
  if ev.cancelled then t.cancelled_pending <- t.cancelled_pending - 1
  else ev.action ()

(* Pop heap entries until one is still live (lazy deletion of events a
   chooser already fired out of band). *)
let rec pop_live t =
  match Heap.pop t.queue with
  | None -> None
  | Some ev -> if Hashtbl.mem t.live ev.seq then Some ev else pop_live t

let candidates t =
  (* Cancelled events never reach a chooser: retire them here so a chosen
     schedule branches only on events that will actually run. *)
  let dead =
    Hashtbl.fold (fun seq ev acc -> if ev.cancelled then seq :: acc else acc)
      t.live []
  in
  List.iter
    (fun seq ->
      Hashtbl.remove t.live seq;
      t.cancelled_pending <- t.cancelled_pending - 1)
    dead;
  Hashtbl.fold (fun _ ev acc -> { c_time = ev.time; c_seq = ev.seq } :: acc)
    t.live []
  |> List.sort (fun a b ->
         let c = compare a.c_time b.c_time in
         if c <> 0 then c else compare a.c_seq b.c_seq)

let step t =
  match t.chooser with
  | None -> (
    match pop_live t with
    | None -> false
    | Some ev ->
      fire t ev;
      true)
  | Some choose -> (
    match candidates t with
    | [] -> false
    | cands -> (
      let seq = choose cands in
      match Hashtbl.find_opt t.live seq with
      | Some ev ->
        fire t ev;
        true
      | None -> invalid_arg "Sim.step: chooser picked a dead event"))

let next_time t =
  match t.chooser with
  | None -> (
    (* peek through stale heap entries without losing the live one *)
    let rec peek () =
      match Heap.peek t.queue with
      | None -> None
      | Some ev ->
        if Hashtbl.mem t.live ev.seq then Some ev.time
        else begin
          ignore (Heap.pop t.queue);
          peek ()
        end
    in
    peek ())
  | Some _ -> (
    match candidates t with [] -> None | c :: _ -> Some c.c_time)

let run ?until ?max_events t =
  let fired = ref 0 in
  let continue () =
    match max_events with Some m -> !fired < m | None -> true
  in
  let in_horizon tm =
    match until with Some u -> tm <= u | None -> true
  in
  let rec loop () =
    if continue () then
      match next_time t with
      | Some tm when in_horizon tm ->
        if step t then begin
          incr fired;
          loop ()
        end
      | _ -> ()
  in
  loop ()
