module Heap = Dtx_util.Heap
module Calqueue = Dtx_util.Calqueue
module Dpool = Dtx_util.Dpool
module Race = Dtx_race.Race

type event = {
  time : float;
  seq : int;
  site : int;  (* owning site for parallel ticks; -1 = unpartitioned *)
  action : unit -> unit;
  mutable cancelled : bool;
}

type event_id = int

type candidate = { c_time : float; c_seq : event_id }

(* The dispatch queue is a calendar queue by default — O(1) expected push
   and pop keep 10k-client scale runs flat where the binary heap's log n
   starts to show. Both queues dispatch in identical (time, seq) order, so
   the choice is invisible in any trace; DTX_SIM_QUEUE=heap selects the
   legacy heap for the byte-identical ablation gate. *)
type queue = Cal of event Calqueue.t | Bin of event Heap.t

(* [live] maps the seq of every still-queued event to the event itself, so
   cancel can mark the event in place and a cancel aimed at an already-fired
   (or unknown) id is a true no-op — nothing is ever retained for ids that
   are no longer in the queue.

   With a chooser installed the heap is demoted to a hint: the chooser picks
   any live event, [fire] drops it from [live], and later heap pops skip
   entries whose seq is no longer live (lazy deletion — [Heap] has no
   arbitrary removal). *)
type t = {
  mutable clock : float;
  mutable next_seq : int;
  queue : queue;
  live : (int, event) Hashtbl.t;
  mutable cancelled_pending : int;
  mutable tracer : (time:float -> seq:int -> unit) option;
  mutable chooser : (candidate list -> event_id) option;
  domains : int;  (* DTX_DOMAINS at create time; > 1 enables parallel ticks *)
  mutable serial_only : bool;  (* opt-out for history/analysis consumers *)
  race_live : Race.cell;  (* shadows [live] + queue mutation entry points *)
}

let cmp_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

(* Consistency checks (queue contents vs the [live] table) are O(pending)
   per compaction, so they hide behind an env flag. *)
let debug_checks =
  match Sys.getenv_opt "DTX_SIM_DEBUG" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let create () =
  let queue =
    (* read per [create], not at module load, so tests can flip backends *)
    match Sys.getenv_opt "DTX_SIM_QUEUE" with
    | Some "heap" -> Bin (Heap.create ~cmp:cmp_event)
    | None | Some "calendar" ->
      Cal (Calqueue.create ~time:(fun e -> e.time) ~seq:(fun e -> e.seq) ())
    | Some other ->
      invalid_arg ("Sim: unknown DTX_SIM_QUEUE backend: " ^ other)
  in
  let domains =
    match Sys.getenv_opt "DTX_DOMAINS" with
    | None -> 1
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 && n <= 64 -> n
      | _ -> invalid_arg "DTX_DOMAINS must be an integer between 1 and 64")
  in
  { clock = 0.0;
    next_seq = 0;
    queue;
    live = Hashtbl.create 16;
    cancelled_pending = 0;
    tracer = None;
    chooser = None;
    domains;
    serial_only = false;
    race_live = Race.cell "sim.schedule" }

let qpush t ev =
  match t.queue with Cal q -> Calqueue.push q ev | Bin h -> Heap.push h ev

let qpop t =
  match t.queue with Cal q -> Calqueue.pop q | Bin h -> Heap.pop h

let qpeek t =
  match t.queue with Cal q -> Calqueue.peek q | Bin h -> Heap.peek h

let qlength t =
  match t.queue with Cal q -> Calqueue.length q | Bin h -> Heap.length h

let set_tracer t tr = t.tracer <- tr

let set_chooser t c = t.chooser <- c

let set_serial_only t v = t.serial_only <- v

let domains t = t.domains

let now t = t.clock

(* --- deferred effects (parallel ticks) ------------------------------- *)

(* While a worker domain executes one site's events of a parallel batch,
   this domain-local slot holds the event's effect buffer: every schedule
   (and, via {!defer}, every other shared-state effect such as a network
   dispatch) is appended instead of performed, then replayed on the main
   domain in global (seq, call) order once the batch joined. That replay
   order is exactly the order a serial run would have performed the same
   effects in, so sequence numbers, RNG draws and counters come out
   byte-identical. On the main domain the slot is [None] and every
   operation takes its normal immediate path. *)
let sink_key : (unit -> unit) list ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let defer thunk =
  match Domain.DLS.get sink_key with
  | Some buf ->
    buf := thunk :: !buf;
    true
  | None -> false

(* Id handed back for a schedule deferred from a worker: the real event is
   created at replay time, after the caller's frame is gone. Callers on
   parallel paths ignore schedule ids (asserted by audit, not by type);
   [cancel] on it is a no-op. *)
let deferred_id : event_id = -1

let rec schedule_at t ?(site = -1) ~time action =
  if
    defer (fun () -> ignore (schedule_at t ~site ~time action))
  then deferred_id
  else begin
    (* A site-tagged action inside a parallel section can only get here by
       bypassing [defer] (no sink installed where one should be) — exactly
       the discipline violation the detector exists to flag. *)
    Race.write ~ctx:"Sim.schedule_at" t.race_live;
    let time = if time < t.clock then t.clock else time in
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let ev = { time; seq; site; action; cancelled = false } in
    qpush t ev;
    Hashtbl.replace t.live seq ev;
    seq
  end

let schedule t ?site ~delay action =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ?site ~time:(t.clock +. delay) action

(* Compaction: physically drop cancelled (and chooser-retired) entries from
   the queue instead of letting lazy deletion accumulate them. A cancelled
   event compacted away neither ticks the tracer nor ratchets the clock when
   its time comes — the same silent retirement [candidates] has always
   applied on the chooser path, and nothing downstream observes it. *)
let check_consistency t =
  if debug_checks then begin
    if qlength t <> Hashtbl.length t.live then
      failwith
        (Printf.sprintf "Sim: queue/live desync after compaction: %d vs %d"
           (qlength t) (Hashtbl.length t.live));
    Hashtbl.iter
      (fun _ ev ->
        if ev.cancelled then failwith "Sim: cancelled event survived compaction")
      t.live
  end

let compact t =
  let dead =
    Hashtbl.fold
      (fun seq ev acc -> if ev.cancelled then seq :: acc else acc)
      t.live []
  in
  List.iter (fun seq -> Hashtbl.remove t.live seq) dead;
  t.cancelled_pending <- 0;
  let keep ev = Hashtbl.mem t.live ev.seq in
  (match t.queue with
  | Cal q -> Calqueue.filter_in_place keep q
  | Bin h ->
    let all = Heap.to_list h in
    Heap.clear h;
    List.iter (fun ev -> if keep ev then Heap.push h ev) all);
  check_consistency t

(* Compact once the cancelled population passes half the live count (and a
   floor that keeps tiny test queues byte-for-byte untouched). *)
let maybe_compact t =
  if t.cancelled_pending >= 64
     && t.cancelled_pending * 2 > Hashtbl.length t.live
  then compact t

let cancel t id =
  Race.write ~ctx:"Sim.cancel" t.race_live;
  match Hashtbl.find_opt t.live id with
  | Some ev when not ev.cancelled ->
    ev.cancelled <- true;
    t.cancelled_pending <- t.cancelled_pending + 1;
    maybe_compact t
  | Some _ | None -> ()

let cancelled_backlog t = t.cancelled_pending

let rec every t ~period ?start f =
  if period <= 0.0 then invalid_arg "Sim.every: period must be positive";
  let delay = match start with Some s -> s | None -> period in
  ignore
    (schedule t ~delay (fun () -> if f () then every t ~period ~start:period f))

let pending t = Hashtbl.length t.live

(* A chooser may fire events behind the timestamp frontier, so the clock
   only ever ratchets forward; without a chooser [ev.time >= t.clock] always
   holds and this is the old assignment. The tracer sees the post-advance
   clock, keeping the observed tick sequence monotone either way. *)
let fire t ev =
  if ev.time > t.clock then t.clock <- ev.time;
  (match t.tracer with
   | Some tr -> tr ~time:t.clock ~seq:ev.seq
   | None -> ());
  Hashtbl.remove t.live ev.seq;
  if ev.cancelled then t.cancelled_pending <- t.cancelled_pending - 1
  else ev.action ()

(* Pop heap entries until one is still live (lazy deletion of events a
   chooser already fired out of band). *)
let rec pop_live t =
  match qpop t with
  | None -> None
  | Some ev -> if Hashtbl.mem t.live ev.seq then Some ev else pop_live t

let candidates t =
  (* Cancelled events never reach a chooser: retire them here so a chosen
     schedule branches only on events that will actually run. *)
  let dead =
    Hashtbl.fold (fun seq ev acc -> if ev.cancelled then seq :: acc else acc)
      t.live []
  in
  List.iter
    (fun seq ->
      Hashtbl.remove t.live seq;
      t.cancelled_pending <- t.cancelled_pending - 1)
    dead;
  Hashtbl.fold (fun _ ev acc -> { c_time = ev.time; c_seq = ev.seq } :: acc)
    t.live []
  |> List.sort (fun a b ->
         let c = compare a.c_time b.c_time in
         if c <> 0 then c else compare a.c_seq b.c_seq)

let step t =
  match t.chooser with
  | None -> (
    match pop_live t with
    | None -> false
    | Some ev ->
      fire t ev;
      true)
  | Some choose -> (
    match candidates t with
    | [] -> false
    | cands -> (
      let seq = choose cands in
      match Hashtbl.find_opt t.live seq with
      | Some ev ->
        fire t ev;
        true
      | None -> invalid_arg "Sim.step: chooser picked a dead event"))

let next_time t =
  match t.chooser with
  | None -> (
    (* peek through stale queue entries without losing the live one *)
    let rec peek () =
      match qpeek t with
      | None -> None
      | Some ev ->
        if Hashtbl.mem t.live ev.seq then Some ev.time
        else begin
          ignore (qpop t);
          peek ()
        end
    in
    peek ())
  | Some _ -> (
    match candidates t with [] -> None | c :: _ -> Some c.c_time)

(* --- parallel ticks --------------------------------------------------- *)

(* One pool for the whole process: sims come and go (sweeps, tests), the
   domains persist, parked between batches. Only the main domain submits. *)
let pool = lazy (Dpool.create ())

(* Join the process-wide pool's parked workers (CLI/bench exit paths). A
   pool that never forced — serial runs — has nothing to join. *)
let shutdown_pool () = if Lazy.is_val pool then Dpool.shutdown (Lazy.force pool)

(* Execute one batch — every live event sharing the minimum timestamp — by
   splitting it, in ascending seq order, into maximal runs of site-tagged
   events separated by untagged ones. Untagged events (coordinator steps,
   client submissions, the deadlock detector) touch global state and run
   serially, exactly in seq order. A run of tagged events partitions by
   site: different sites touch disjoint site-local state and defer every
   shared effect (schedules, network dispatches) into per-event buffers, so
   the runs may execute on worker domains concurrently; the buffers then
   replay on the main domain in seq order, reproducing the serial execution
   byte for byte. Same-site events stay in seq order within their group.

   Two invariants this relies on (audited, not enforced):
   - a site-tagged action touches only its site's state, [now], and
     read-only global tables that no same-tick tagged action writes;
   - tagged actions never [cancel] same-tick tagged events (cancel is
     currently test-only). *)
let run_section t section =
  match section with
  | [] -> ()
  | [ ev ] ->
    (* nothing to overlap with — run in place, effects undeferred *)
    Hashtbl.remove t.live ev.seq;
    ev.action ()
  | evs ->
    let groups : (int, (event * (unit -> unit) list ref) list ref) Hashtbl.t =
      Hashtbl.create 8
    in
    let order =
      List.map
        (fun ev ->
          Hashtbl.remove t.live ev.seq;
          let slot = ref [] in
          (match Hashtbl.find_opt groups ev.site with
           | Some l -> l := (ev, slot) :: !l
           | None -> Hashtbl.add groups ev.site (ref [ (ev, slot) ]));
          (ev, slot))
        evs
    in
    let job_lists = Hashtbl.fold (fun _ l acc -> List.rev !l :: acc) groups [] in
    (match job_lists with
     | [ one ] ->
       (* a single site: already sequential, skip the deferral machinery *)
       List.iter (fun (ev, _) -> ev.action ()) one
     | _ ->
       let jobs =
         Array.of_list
           (List.map
              (fun group () ->
                let (ev0 : event), _ = List.hd group in
                Race.enter_group ~site:ev0.site;
                Fun.protect ~finally:Race.leave_group @@ fun () ->
                List.iter
                  (fun ((ev : event), slot) ->
                    Domain.DLS.set sink_key (Some slot);
                    match ev.action () with
                    | () -> Domain.DLS.set sink_key None
                    | exception e ->
                      Domain.DLS.set sink_key None;
                      raise e)
                  group)
              job_lists)
       in
       (* The epoch brackets only the fan-out: batch collection before it
          and the deferred-effect replay after it run serially on the main
          domain and must never produce findings. *)
       Race.epoch_begin ();
       Fun.protect ~finally:Race.epoch_end (fun () ->
           Dpool.run (Lazy.force pool) ~workers:(t.domains - 1) jobs);
       List.iter
         (fun (_ev, slot) -> List.iter (fun k -> k ()) (List.rev !slot))
         order)

let process_batch t evs =
  let rec go section evs =
    match evs with
    | [] -> run_section t (List.rev section)
    | (ev : event) :: rest ->
      if not (Hashtbl.mem t.live ev.seq) then go section rest (* compacted *)
      else if ev.cancelled then begin
        (* same silent retirement as [fire]'s cancelled branch *)
        Hashtbl.remove t.live ev.seq;
        t.cancelled_pending <- t.cancelled_pending - 1;
        go section rest
      end
      else if ev.site >= 0 then go (ev :: section) rest
      else begin
        (* untagged: a barrier — finish the tagged run, then fire it here *)
        run_section t (List.rev section);
        Hashtbl.remove t.live ev.seq;
        ev.action ();
        go [] rest
      end
  in
  go [] evs

let run_parallel t =
  let rec loop () =
    match next_time t with
    | None -> ()
    | Some tm ->
      if tm > t.clock then t.clock <- tm;
      let rec collect acc =
        match qpeek t with
        | Some ev when ev.time = tm ->
          ignore (qpop t);
          collect (ev :: acc)
        | _ -> acc
      in
      let evs =
        List.sort (fun a b -> compare a.seq b.seq) (collect [])
      in
      process_batch t evs;
      loop ()
  in
  loop ()

let run ?until ?max_events t =
  if
    t.domains > 1 && until = None && max_events = None && t.chooser = None
    && t.tracer = None
    && not t.serial_only
  then run_parallel t
  else begin
    let fired = ref 0 in
    let continue () =
      match max_events with Some m -> !fired < m | None -> true
    in
    let in_horizon tm =
      match until with Some u -> tm <= u | None -> true
    in
    let rec loop () =
      if continue () then
        match next_time t with
        | Some tm when in_horizon tm ->
          if step t then begin
            incr fired;
            loop ()
          end
        | _ -> ()
    in
    loop ()
  end
