module Heap = Dtx_util.Heap

type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type event_id = int

(* [live] maps the seq of every still-queued event to the event itself, so
   cancel can mark the event in place and a cancel aimed at an already-fired
   (or unknown) id is a true no-op — nothing is ever retained for ids that
   are no longer in the queue. *)
type t = {
  mutable clock : float;
  mutable next_seq : int;
  queue : event Heap.t;
  live : (int, event) Hashtbl.t;
  mutable cancelled_pending : int;
  mutable tracer : (time:float -> seq:int -> unit) option;
}

let cmp_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  { clock = 0.0;
    next_seq = 0;
    queue = Heap.create ~cmp:cmp_event;
    live = Hashtbl.create 16;
    cancelled_pending = 0;
    tracer = None }

let set_tracer t tr = t.tracer <- tr

let now t = t.clock

let schedule_at t ~time action =
  let time = if time < t.clock then t.clock else time in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let ev = { time; seq; action; cancelled = false } in
  Heap.push t.queue ev;
  Hashtbl.replace t.live seq ev;
  seq

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let cancel t id =
  match Hashtbl.find_opt t.live id with
  | Some ev when not ev.cancelled ->
    ev.cancelled <- true;
    t.cancelled_pending <- t.cancelled_pending + 1
  | Some _ | None -> ()

let cancelled_backlog t = t.cancelled_pending

let rec every t ~period ?start f =
  if period <= 0.0 then invalid_arg "Sim.every: period must be positive";
  let delay = match start with Some s -> s | None -> period in
  ignore
    (schedule t ~delay (fun () -> if f () then every t ~period ~start:period f))

let pending t = Heap.length t.queue

let fire t ev =
  t.clock <- ev.time;
  (match t.tracer with
   | Some tr -> tr ~time:ev.time ~seq:ev.seq
   | None -> ());
  Hashtbl.remove t.live ev.seq;
  if ev.cancelled then t.cancelled_pending <- t.cancelled_pending - 1
  else ev.action ()

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    fire t ev;
    true

let run ?until ?max_events t =
  let fired = ref 0 in
  let continue () =
    match max_events with Some m -> !fired < m | None -> true
  in
  let in_horizon ev =
    match until with Some u -> ev.time <= u | None -> true
  in
  let rec loop () =
    if continue () then
      match Heap.peek t.queue with
      | Some ev when in_horizon ev ->
        ignore (Heap.pop t.queue);
        fire t ev;
        incr fired;
        loop ()
      | _ -> ()
  in
  loop ()
