module Heap = Dtx_util.Heap
module Calqueue = Dtx_util.Calqueue

type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type event_id = int

type candidate = { c_time : float; c_seq : event_id }

(* The dispatch queue is a calendar queue by default — O(1) expected push
   and pop keep 10k-client scale runs flat where the binary heap's log n
   starts to show. Both queues dispatch in identical (time, seq) order, so
   the choice is invisible in any trace; DTX_SIM_QUEUE=heap selects the
   legacy heap for the byte-identical ablation gate. *)
type queue = Cal of event Calqueue.t | Bin of event Heap.t

(* [live] maps the seq of every still-queued event to the event itself, so
   cancel can mark the event in place and a cancel aimed at an already-fired
   (or unknown) id is a true no-op — nothing is ever retained for ids that
   are no longer in the queue.

   With a chooser installed the heap is demoted to a hint: the chooser picks
   any live event, [fire] drops it from [live], and later heap pops skip
   entries whose seq is no longer live (lazy deletion — [Heap] has no
   arbitrary removal). *)
type t = {
  mutable clock : float;
  mutable next_seq : int;
  queue : queue;
  live : (int, event) Hashtbl.t;
  mutable cancelled_pending : int;
  mutable tracer : (time:float -> seq:int -> unit) option;
  mutable chooser : (candidate list -> event_id) option;
}

let cmp_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

(* Consistency checks (queue contents vs the [live] table) are O(pending)
   per compaction, so they hide behind an env flag. *)
let debug_checks =
  match Sys.getenv_opt "DTX_SIM_DEBUG" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let create () =
  let queue =
    (* read per [create], not at module load, so tests can flip backends *)
    match Sys.getenv_opt "DTX_SIM_QUEUE" with
    | Some "heap" -> Bin (Heap.create ~cmp:cmp_event)
    | None | Some "calendar" ->
      Cal (Calqueue.create ~time:(fun e -> e.time) ~seq:(fun e -> e.seq) ())
    | Some other ->
      invalid_arg ("Sim: unknown DTX_SIM_QUEUE backend: " ^ other)
  in
  { clock = 0.0;
    next_seq = 0;
    queue;
    live = Hashtbl.create 16;
    cancelled_pending = 0;
    tracer = None;
    chooser = None }

let qpush t ev =
  match t.queue with Cal q -> Calqueue.push q ev | Bin h -> Heap.push h ev

let qpop t =
  match t.queue with Cal q -> Calqueue.pop q | Bin h -> Heap.pop h

let qpeek t =
  match t.queue with Cal q -> Calqueue.peek q | Bin h -> Heap.peek h

let qlength t =
  match t.queue with Cal q -> Calqueue.length q | Bin h -> Heap.length h

let set_tracer t tr = t.tracer <- tr

let set_chooser t c = t.chooser <- c

let now t = t.clock

let schedule_at t ~time action =
  let time = if time < t.clock then t.clock else time in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let ev = { time; seq; action; cancelled = false } in
  qpush t ev;
  Hashtbl.replace t.live seq ev;
  seq

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

(* Compaction: physically drop cancelled (and chooser-retired) entries from
   the queue instead of letting lazy deletion accumulate them. A cancelled
   event compacted away neither ticks the tracer nor ratchets the clock when
   its time comes — the same silent retirement [candidates] has always
   applied on the chooser path, and nothing downstream observes it. *)
let check_consistency t =
  if debug_checks then begin
    if qlength t <> Hashtbl.length t.live then
      failwith
        (Printf.sprintf "Sim: queue/live desync after compaction: %d vs %d"
           (qlength t) (Hashtbl.length t.live));
    Hashtbl.iter
      (fun _ ev ->
        if ev.cancelled then failwith "Sim: cancelled event survived compaction")
      t.live
  end

let compact t =
  let dead =
    Hashtbl.fold
      (fun seq ev acc -> if ev.cancelled then seq :: acc else acc)
      t.live []
  in
  List.iter (fun seq -> Hashtbl.remove t.live seq) dead;
  t.cancelled_pending <- 0;
  let keep ev = Hashtbl.mem t.live ev.seq in
  (match t.queue with
  | Cal q -> Calqueue.filter_in_place keep q
  | Bin h ->
    let all = Heap.to_list h in
    Heap.clear h;
    List.iter (fun ev -> if keep ev then Heap.push h ev) all);
  check_consistency t

(* Compact once the cancelled population passes half the live count (and a
   floor that keeps tiny test queues byte-for-byte untouched). *)
let maybe_compact t =
  if t.cancelled_pending >= 64
     && t.cancelled_pending * 2 > Hashtbl.length t.live
  then compact t

let cancel t id =
  match Hashtbl.find_opt t.live id with
  | Some ev when not ev.cancelled ->
    ev.cancelled <- true;
    t.cancelled_pending <- t.cancelled_pending + 1;
    maybe_compact t
  | Some _ | None -> ()

let cancelled_backlog t = t.cancelled_pending

let rec every t ~period ?start f =
  if period <= 0.0 then invalid_arg "Sim.every: period must be positive";
  let delay = match start with Some s -> s | None -> period in
  ignore
    (schedule t ~delay (fun () -> if f () then every t ~period ~start:period f))

let pending t = Hashtbl.length t.live

(* A chooser may fire events behind the timestamp frontier, so the clock
   only ever ratchets forward; without a chooser [ev.time >= t.clock] always
   holds and this is the old assignment. The tracer sees the post-advance
   clock, keeping the observed tick sequence monotone either way. *)
let fire t ev =
  if ev.time > t.clock then t.clock <- ev.time;
  (match t.tracer with
   | Some tr -> tr ~time:t.clock ~seq:ev.seq
   | None -> ());
  Hashtbl.remove t.live ev.seq;
  if ev.cancelled then t.cancelled_pending <- t.cancelled_pending - 1
  else ev.action ()

(* Pop heap entries until one is still live (lazy deletion of events a
   chooser already fired out of band). *)
let rec pop_live t =
  match qpop t with
  | None -> None
  | Some ev -> if Hashtbl.mem t.live ev.seq then Some ev else pop_live t

let candidates t =
  (* Cancelled events never reach a chooser: retire them here so a chosen
     schedule branches only on events that will actually run. *)
  let dead =
    Hashtbl.fold (fun seq ev acc -> if ev.cancelled then seq :: acc else acc)
      t.live []
  in
  List.iter
    (fun seq ->
      Hashtbl.remove t.live seq;
      t.cancelled_pending <- t.cancelled_pending - 1)
    dead;
  Hashtbl.fold (fun _ ev acc -> { c_time = ev.time; c_seq = ev.seq } :: acc)
    t.live []
  |> List.sort (fun a b ->
         let c = compare a.c_time b.c_time in
         if c <> 0 then c else compare a.c_seq b.c_seq)

let step t =
  match t.chooser with
  | None -> (
    match pop_live t with
    | None -> false
    | Some ev ->
      fire t ev;
      true)
  | Some choose -> (
    match candidates t with
    | [] -> false
    | cands -> (
      let seq = choose cands in
      match Hashtbl.find_opt t.live seq with
      | Some ev ->
        fire t ev;
        true
      | None -> invalid_arg "Sim.step: chooser picked a dead event"))

let next_time t =
  match t.chooser with
  | None -> (
    (* peek through stale queue entries without losing the live one *)
    let rec peek () =
      match qpeek t with
      | None -> None
      | Some ev ->
        if Hashtbl.mem t.live ev.seq then Some ev.time
        else begin
          ignore (qpop t);
          peek ()
        end
    in
    peek ())
  | Some _ -> (
    match candidates t with [] -> None | c :: _ -> Some c.c_time)

let run ?until ?max_events t =
  let fired = ref 0 in
  let continue () =
    match max_events with Some m -> !fired < m | None -> true
  in
  let in_horizon tm =
    match until with Some u -> tm <= u | None -> true
  in
  let rec loop () =
    if continue () then
      match next_time t with
      | Some tm when in_horizon tm ->
        if step t then begin
          incr fired;
          loop ()
        end
      | _ -> ()
  in
  loop ()
