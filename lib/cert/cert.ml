(* Dtx_cert — the symbolic soundness certifier.

   Three no-execution passes over every registered protocol:

   (a) lock-coverage soundness on a bounded universe: a semantic conflict
       oracle (read/write sets over (node, aspect) pairs) decides which
       operation pairs conflict, and every conflicting pair must receive
       lock footprints with at least one incompatible pair — except the
       documented XDGL positional gap, which is reported with provenance
       rather than failed.  Non-conflicting pairs whose locks still collide
       are counted as false collisions, yielding a precision metric.
   (b) FSM exhaustiveness: the static (phase x message-kind) classification
       tables co-located with the coordinator/participant handlers are
       walked in full, and cross-checked against the (state, kind) pairs a
       battery of explore-style runs actually delivers — including 2PC,
       deadlock-victim and crash/restart recovery choreographies.  A
       reachable pair the table calls impossible (or, under the seeded
       [Drop_handler] fault, drops) fails certification.  WAL crash points
       are mapped to their recovery transitions symbolically.
   (c) registry-capability coherence: each kind's capability flags are
       checked against observable behaviour (DataGuide presence, cache
       hits, validation wiring, alias resolution).

   Seeded faults ([mutation]) invert each pass for self-testing: a correct
   certifier must reject all four. *)

module Ast = Dtx_xpath.Ast
module Eval = Dtx_xpath.Eval
module Doc = Dtx_xml.Doc
module Node = Dtx_xml.Node
module Xml_parser = Dtx_xml.Parser
module Dg = Dtx_dataguide.Dataguide
module Op = Dtx_update.Op
module Mode = Dtx_locks.Mode
module Table = Dtx_locks.Table
module Protocol = Dtx_protocol.Protocol
module Commute_rules = Dtx_protocol.Commute_rules
module Xdgl_rules = Dtx_protocol.Xdgl_rules
module Msg = Dtx_net.Msg
module Net = Dtx_net.Net
module Sim = Dtx_sim.Sim
module Cluster = Dtx.Cluster
module Coordinator = Dtx.Coordinator
module Participant = Dtx.Participant
module Wal = Dtx.Wal
module Explore = Dtx_explore.Explore

(* ------------------------------------------------------------------ *)
(* Seeded faults                                                       *)

type mutation =
  | Flip_compat_bit  (** treat ST/IX as compatible in the collision check *)
  | Drop_handler  (** classify the coordinator's (Waiting, Wake) as dropped *)
  | Wrong_caps  (** register a probe kind whose capability flags lie *)
  | Weaken_commute  (** replace the commute verdicts with a gap-blind rule *)

let mutation_to_string = function
  | Flip_compat_bit -> "flip-compat-bit"
  | Drop_handler -> "drop-handler"
  | Wrong_caps -> "wrong-caps"
  | Weaken_commute -> "weaken-commute"

let mutation_of_string = function
  | "flip-compat-bit" -> Some Flip_compat_bit
  | "drop-handler" -> Some Drop_handler
  | "wrong-caps" -> Some Wrong_caps
  | "weaken-commute" -> Some Weaken_commute
  | _ -> None

let mutations = [ Flip_compat_bit; Drop_handler; Wrong_caps; Weaken_commute ]

(* ------------------------------------------------------------------ *)
(* The bounded universe                                                *)

let universe_name = "U"
let universe_xml = "<r><a><b>1</b><b>2</b><c>t</c></a><d><b>3</b></d></r>"

(* Small enough that the all-pairs loop is instant, rich enough to exercise
   every operation family, shared and disjoint subtrees, a predicate, a
   descendant axis, same-label and fresh-label inserts (the latter paired
   with REMOVE is the canonical positional-gap pair), and a transpose. *)
let template_texts =
  [
    "QUERY /r/a";
    "QUERY /r/a/b";
    "QUERY //b";
    "QUERY /r/a[c = \"t\"]";
    "QUERY /r/d";
    "CHANGE /r/a/c TO \"u\"";
    "CHANGE /r/a TO \"w\"";
    "CHANGE /r/d/b TO \"v\"";
    "REMOVE /r/a/b";
    "REMOVE /r/d";
    "RENAME /r/a/c TO e";
    "INSERT INTO /r/a <c>x</c>";
    "INSERT INTO /r/d <z>x</z>";
    "INSERT AFTER /r/a/b <b>9</b>";
    "INSERT AFTER /r/a/b <n>9</n>";
    "INSERT BEFORE /r/a/c <q>p</q>";
    "TRANSPOSE /r/d/b INTO /r/a";
  ]

let parse_universe () = Xml_parser.parse ~name:universe_name universe_xml

let parse_templates () =
  List.map
    (fun s ->
      match Op.parse s with
      | Ok op -> (s, op)
      | Error e -> invalid_arg (Printf.sprintf "cert template %S: %s" s e))
    template_texts
  |> Array.of_list

(* ------------------------------------------------------------------ *)
(* The semantic conflict oracle                                        *)

(* An operation's footprint on the universe as reads/writes of
   (node, aspect) pairs:
   - [A_struct]: the node's existence and label;
   - [A_content]: its text;
   - [A_list]: its child list (order and membership).
   Two operations conflict when some (node, aspect) sees a write from one
   and any access from the other — except two [A_list] writes, because
   sibling order among independently inserted/removed children is
   deliberately left unordered (XDGL's SI/SA/SB design).  [a_positional]
   tags the S-read an AFTER/BEFORE insert performs on the node whose
   position it reads — exactly the access XDGL's connect-node locks do not
   cover (the documented gap): a conflict that vanishes when positional
   accesses are dropped is classified [known-gap], not a violation. *)
type aspect = A_struct | A_content | A_list

type access = {
  a_node : int;
  a_aspect : aspect;
  a_write : bool;
  a_positional : bool;
}

let conflicts ?(include_positional = true) acc1 acc2 =
  let kept a = include_positional || not a.a_positional in
  List.exists
    (fun a1 ->
      kept a1
      && List.exists
           (fun a2 ->
             kept a2 && a1.a_node = a2.a_node && a1.a_aspect = a2.a_aspect
             && (a1.a_write || a2.a_write)
             && not (a1.a_aspect = A_list && a1.a_write && a2.a_write))
           acc2)
    acc1

let pred_target_paths p =
  List.map
    (fun ((prefix : Ast.path), (rel : Ast.path)) ->
      { prefix with Ast.steps = prefix.Ast.steps @ rel.Ast.steps })
    (Ast.predicate_paths p)

let last_label (p : Ast.path) =
  match List.rev p.Ast.steps with
  | { Ast.test = Ast.Name l; _ } :: _ -> Some l
  | _ -> None

let frag_label fragment =
  match Xdgl_rules.frag_root_label fragment with
  | Some l -> l
  | None -> "#frag"

(* Guide-level oracle (XDGL family): nodes are DataGuide ids, i.e. one node
   per label path — conservative (instances of one path are merged) and
   phantom-aware (insert targets exist as guide nodes after warm-up). *)
let guide_accesses dg op =
  let acc = ref [] in
  let add ?(positional = false) ~write (n : Dg.node) aspect =
    acc :=
      { a_node = n.Dg.dg_id; a_aspect = aspect; a_write = write;
        a_positional = positional }
      :: !acc
  in
  let nav ?(positional = false) p =
    let matches = Dg.match_path dg p in
    List.iter
      (fun n ->
        add ~positional ~write:false n A_struct;
        List.iter (fun a -> add ~write:false a A_struct) (Dg.ancestors n))
      matches;
    List.iter
      (fun pp ->
        List.iter
          (fun n ->
            add ~write:false n A_struct;
            add ~write:false n A_content)
          (Dg.match_path dg pp))
      (pred_target_paths p);
    matches
  in
  let subtree n = Dg.descendants_or_self n in
  let new_location connect label =
    (* [ensure_path] is safe here: the oracle guide reached its shape
       fixed point during the warm-up pass, so this only looks up. *)
    Dg.ensure_path dg (Dg.label_path connect @ [ label ])
  in
  let parents ns =
    List.filter_map (fun (n : Dg.node) -> n.Dg.parent) ns
  in
  (match op with
  | Op.Query p ->
    let matches = nav p in
    List.iter
      (fun n ->
        List.iter
          (fun d ->
            add ~write:false d A_struct;
            add ~write:false d A_content;
            add ~write:false d A_list)
          (subtree n))
      matches
  | Op.Change { target; new_text = _ } ->
    let matches = nav target in
    List.iter (fun n -> add ~write:true n A_content) matches
  | Op.Remove p ->
    let matches = nav p in
    List.iter
      (fun n ->
        List.iter
          (fun d ->
            add ~write:true d A_struct;
            add ~write:true d A_content)
          (subtree n))
      matches;
    List.iter (fun par -> add ~write:true par A_list) (parents matches)
  | Op.Rename { target; new_label } ->
    let matches = nav target in
    List.iter
      (fun n ->
        List.iter (fun d -> add ~write:true d A_struct) (subtree n))
      matches;
    List.iter
      (fun par ->
        let u = new_location par new_label in
        add ~write:true u A_struct)
      (parents matches)
  | Op.Insert { target; pos = Op.Into; fragment } ->
    let matches = nav target in
    List.iter
      (fun n ->
        add ~write:true n A_list;
        let u = new_location n (frag_label fragment) in
        add ~write:true u A_struct;
        add ~write:true u A_content)
      matches
  | Op.Insert { target; pos = Op.After | Op.Before; fragment } ->
    let matches = nav ~positional:true target in
    List.iter
      (fun par ->
        add ~write:true par A_list;
        let u = new_location par (frag_label fragment) in
        add ~write:true u A_struct;
        add ~write:true u A_content)
      (parents matches)
  | Op.Transpose { source; dest } ->
    let src = nav source in
    let dst = nav dest in
    List.iter
      (fun n ->
        List.iter
          (fun d ->
            add ~write:true d A_struct;
            add ~write:true d A_content)
          (subtree n))
      src;
    List.iter (fun par -> add ~write:true par A_list) (parents src);
    List.iter
      (fun n ->
        add ~write:true n A_list;
        match last_label source with
        | Some l ->
          let u = new_location n l in
          add ~write:true u A_struct;
          add ~write:true u A_content
        | None -> ())
      dst);
  !acc

let build_guide_oracle ops =
  let doc = parse_universe () in
  let dg = Dg.build doc in
  (* Warm-up: drive the guide's insert/rename/transpose phantom nodes to
     their fixed point, so every access list is computed against one
     consistent shape (mirrors Commute_rules.prepare). *)
  Array.iter (fun (_, op) -> ignore (guide_accesses dg op)) ops;
  Array.map (fun (_, op) -> guide_accesses dg op) ops

(* Instance-level oracle (Node2PL / taDOM / Doc2PL): nodes are document
   node ids.  Phantom-blind by construction — an insert's new content has
   no pre-existing document node — which matches what instance-granular
   protocols can lock; the connect node's child-list write carries the
   conflict instead. *)
let instance_accesses doc op =
  let acc = ref [] in
  let add ?(positional = false) ~write (n : Node.t) aspect =
    acc :=
      { a_node = n.Node.id; a_aspect = aspect; a_write = write;
        a_positional = positional }
      :: !acc
  in
  let nav ?(positional = false) p =
    let matches = Eval.select doc p in
    List.iter
      (fun n ->
        add ~positional ~write:false n A_struct;
        List.iter (fun a -> add ~write:false a A_struct) (Node.ancestors n))
      matches;
    List.iter
      (fun pp ->
        List.iter
          (fun n ->
            add ~write:false n A_struct;
            add ~write:false n A_content)
          (Eval.select doc pp))
      (pred_target_paths p);
    matches
  in
  let parents ns = List.filter_map (fun (n : Node.t) -> n.Node.parent) ns in
  (match op with
  | Op.Query p ->
    let matches = nav p in
    List.iter
      (fun n ->
        List.iter
          (fun d ->
            add ~write:false d A_struct;
            add ~write:false d A_content;
            add ~write:false d A_list)
          (Node.descendant_or_self n))
      matches
  | Op.Change { target; new_text = _ } ->
    let matches = nav target in
    List.iter (fun n -> add ~write:true n A_content) matches
  | Op.Remove p ->
    let matches = nav p in
    List.iter
      (fun n ->
        List.iter
          (fun d ->
            add ~write:true d A_struct;
            add ~write:true d A_content)
          (Node.descendant_or_self n))
      matches;
    List.iter (fun par -> add ~write:true par A_list) (parents matches)
  | Op.Rename { target; new_label = _ } ->
    let matches = nav target in
    List.iter (fun n -> add ~write:true n A_struct) matches
  | Op.Insert { target; pos = Op.Into; fragment = _ } ->
    let matches = nav target in
    List.iter (fun n -> add ~write:true n A_list) matches
  | Op.Insert { target; pos = Op.After | Op.Before; fragment = _ } ->
    let matches = nav ~positional:true target in
    List.iter (fun par -> add ~write:true par A_list) (parents matches)
  | Op.Transpose { source; dest } ->
    let src = nav source in
    let dst = nav dest in
    List.iter
      (fun n ->
        List.iter
          (fun d ->
            add ~write:true d A_struct;
            add ~write:true d A_content)
          (Node.descendant_or_self n))
      src;
    List.iter (fun par -> add ~write:true par A_list) (parents src);
    List.iter (fun n -> add ~write:true n A_list) dst);
  !acc

let build_instance_oracle ops =
  let doc = parse_universe () in
  Array.map (fun (_, op) -> instance_accesses doc op) ops

(* ------------------------------------------------------------------ *)
(* Lock-collision machinery                                            *)

(* The [Flip_compat_bit] fault: ST and IX — the incompatibility driving the
   paper's Fig. 6 deadlock — are treated as compatible, exactly the
   flipped-lattice fault the explorer's mutation gate uses. *)
let flipped_compatible m1 m2 =
  match (m1, m2) with
  | Mode.ST, Mode.IX | Mode.IX, Mode.ST -> true
  | _ -> Mode.compatible m1 m2

let lists_conflict compat fp1 fp2 =
  List.exists
    (fun (r1, m1) ->
      List.exists
        (fun (r2, m2) ->
          Table.compare_resource r1 r2 = 0 && not (compat m1 m2))
        fp2)
    fp1

(* The Commute coordinator's optimistic downgrade (Site.optimistic_requests
   re-stated): a read-only footprint is skipped outright, an update's is
   downgraded to its ancestors' intention modes.  Downgrading never creates
   a collision XDGL did not have — [compatible m1 m2] implies
   [compatible (intention_for m1) m2] throughout the lattice — so the
   commute precision this models is provably >= XDGL's. *)
let optimistic_requests op fp =
  if
    (not (Op.is_update op))
    && not (List.exists (fun (_, m) -> Mode.is_exclusive m) fp)
  then []
  else
    List.sort_uniq compare
      (List.map (fun (r, m) -> (r, Mode.intention_for m)) fp)

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)

type proto_report = {
  pr_name : string;
  pr_pairs : int;
  pr_conflicting : int;
  pr_known_gaps : int;  (** conflicts excused by the positional gap *)
  pr_false_collisions : int;  (** non-conflicting pairs whose locks collide *)
  pr_precision : float;
  pr_commute_checked : int;
      (** commute-only: pairs put through the three-way c1/c2/c3 agreement *)
  pr_violations : string list;
}

type fsm_report = {
  f_machine : string;
  f_handled : int;
  f_ignored : int;
  f_impossible : int;
  f_dropped : int;  (** only under the [Drop_handler] fault *)
  f_reached : int;  (** distinct (state, kind) pairs delivered by the runs *)
  f_violations : string list;
}

type caps_report = { c_name : string; c_violations : string list }

type report = {
  r_mutation : mutation option;
  r_protocols : proto_report list;
  r_fsm : fsm_report list;
  r_required_missing : string list;
      (** certifier self-integrity: pairs the runs were designed to reach *)
  r_wal_violations : string list;
  r_caps : caps_report list;
  r_universe_seconds : float;  (** pass (a): oracle build + all-pairs loop *)
  r_runtime_seconds : float;
  r_violations : int;
  r_certified : bool;
}

(* ------------------------------------------------------------------ *)
(* Pass (a): lock-coverage soundness + precision                       *)

let footprints kind ops =
  let inst = Protocol.create kind in
  Protocol.add_doc inst (parse_universe ());
  (* Warm pass: XDGL-family derivation grows the DataGuide for insert
     targets; a second pass snapshots footprints against the fixed point. *)
  Array.iter
    (fun (_, op) -> ignore (Protocol.lock_requests inst ~doc:universe_name op))
    ops;
  Array.map
    (fun (_, op) ->
      match Protocol.lock_requests inst ~doc:universe_name op with
      | Ok (reqs, _) -> Ok reqs
      | Error e -> Error e)
    ops

let pair_name ops i j = Printf.sprintf "[%s] x [%s]" (fst ops.(i)) (fst ops.(j))

(* The weakened commute rule seeded by [Weaken_commute]: no virtual reads,
   no Unknown — blind to the positional gap, which pass (a) must notice. *)
let weakened_verdict ops fps i j =
  let _, op_i = ops.(i) and _, op_j = ops.(j) in
  if (not (Op.is_update op_i)) && not (Op.is_update op_j) then
    Commute_rules.Commutes
  else
    match (fps.(i), fps.(j)) with
    | Ok f1, Ok f2 when lists_conflict Mode.compatible f1 f2 ->
      Commute_rules.Conflicts
    | _ -> Commute_rules.Commutes

let certify_protocol ~compat ~mutate ~guide_oracle ~instance_oracle ops kind =
  let name = Protocol.kind_to_string kind in
  let caps = Protocol.caps kind in
  let oracle = if caps.Protocol.uses_dataguide then guide_oracle
    else instance_oracle
  in
  let fps = footprints kind ops in
  let is_commute = kind = Protocol.commute in
  let verdict =
    if not is_commute then fun _ _ -> Commute_rules.Unknown
    else if mutate = Some Weaken_commute then weakened_verdict ops fps
    else begin
      let cr =
        Commute_rules.create ~protocol:kind
          ~docs:[ (universe_name, universe_xml) ]
      in
      let prepared =
        Commute_rules.prepare cr
          (Array.map (fun (_, op) -> (universe_name, op)) ops)
      in
      fun i j -> Commute_rules.decide_prepared cr prepared.(i) prepared.(j)
    end
  in
  let n = Array.length ops in
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let pairs = ref 0 and conflicting = ref 0 and gaps = ref 0 in
  let false_collisions = ref 0 and nonconflicting = ref 0 in
  let commute_checked = ref 0 in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      incr pairs;
      match (fps.(i), fps.(j)) with
      | Error e, _ | _, Error e ->
        fail "%s: %s: footprint underivable: %s" name (pair_name ops i j) e
      | Ok f1, Ok f2 ->
        let conflict = conflicts oracle.(i) oracle.(j) in
        let gap =
          conflict
          && not (conflicts ~include_positional:false oracle.(i) oracle.(j))
        in
        let collide = lists_conflict compat f1 f2 in
        if conflict then incr conflicting else incr nonconflicting;
        if not is_commute then begin
          if conflict && not collide then
            if gap then incr gaps
            else
              fail
                "%s: %s: semantic conflict but lock footprints are fully \
                 compatible"
                name (pair_name ops i j);
          if (not conflict) && collide then incr false_collisions
        end
        else begin
          (* Three-way agreement for the optimistic protocol.  A Conflicts
             verdict on a pair the oracle clears is mere conservatism (the
             fallback locks need not collide there); the checks bind only
             where shipment safety or fallback safety is at stake. *)
          incr commute_checked;
          let v = verdict i j in
          if v = Commute_rules.Commutes && conflict then
            fail
              "Commute: %s: verdict Commutes but the oracle sees a conflict \
               (c1: unsafe optimistic shipment)"
              (pair_name ops i j);
          if conflict && v = Commute_rules.Conflicts && (not collide)
             && not gap
          then
            fail
              "Commute: %s: conflicting pair judged Conflicts but the XDGL \
               fallback locks never collide (c2)"
              (pair_name ops i j);
          if conflict && v <> Commute_rules.Conflicts
             && v <> Commute_rules.Commutes
             && (not collide) && not gap
          then
            fail
              "Commute: %s: conflicting pair left Unknown with neither \
               colliding fallback locks nor gap provenance (c3)"
              (pair_name ops i j);
          if conflict && gap then incr gaps;
          (* Precision under the optimistic downgrade: in either admission
             order, the earlier operation runs downgraded; the later one is
             downgraded only when the pair's verdict is Commutes. *)
          if not conflict then begin
            let _, op_i = ops.(i) and _, op_j = ops.(j) in
            let opt1 = optimistic_requests op_i f1
            and opt2 = optimistic_requests op_j f2 in
            let late1 = if v = Commute_rules.Commutes then opt1 else f1
            and late2 = if v = Commute_rules.Commutes then opt2 else f2 in
            if
              lists_conflict compat opt1 late2
              || lists_conflict compat opt2 late1
            then incr false_collisions
          end
        end
    done
  done;
  let precision =
    if !nonconflicting = 0 then 1.0
    else
      1.0
      -. (float_of_int !false_collisions /. float_of_int !nonconflicting)
  in
  {
    pr_name = name;
    pr_pairs = !pairs;
    pr_conflicting = !conflicting;
    pr_known_gaps = !gaps;
    pr_false_collisions = !false_collisions;
    pr_precision = precision;
    pr_commute_checked = !commute_checked;
    pr_violations = List.rev !violations;
  }

(* ------------------------------------------------------------------ *)
(* Pass (b): FSM exhaustiveness                                        *)

let coordinator_phases =
  Coordinator.
    [ Executing; Awaiting_replies; Waiting; Preparing; Ending; Done ]

let participant_states =
  Participant.[ P_idle; P_executing; P_ended; P_recovering ]

(* A certifier-side disposition that adds the state a seeded fault
   produces: a reachable delivery the machine would silently lose. *)
type cdisposition =
  | C_handled
  | C_ignored
  | C_impossible
  | C_dropped

let classify_coordinator ~mutate phase kind =
  if mutate = Some Drop_handler && phase = Coordinator.Waiting
     && kind = Msg.Kind.Wake
  then C_dropped
  else
    match Coordinator.classify_delivery phase kind with
    | Coordinator.Handled _ -> C_handled
    | Coordinator.Ignored _ -> C_ignored
    | Coordinator.Impossible _ -> C_impossible

let classify_participant ~mutate:_ st kind =
  match Participant.classify_delivery st kind with
  | Participant.Handled _ -> C_handled
  | Participant.Ignored _ -> C_ignored
  | Participant.Impossible _ -> C_impossible

let participant_bound kind =
  match kind with
  | Msg.Kind.Op_ship | Msg.Kind.Op_undo | Msg.Kind.Prepare | Msg.Kind.Commit
  | Msg.Kind.Abort | Msg.Kind.Wfg_request | Msg.Kind.Outcome_reply ->
    true
  | _ -> false

let txn_of_msg = function
  | Msg.Op_ship { txn; _ }
  | Msg.Op_status { txn; _ }
  | Msg.Op_undo { txn; _ }
  | Msg.Prepare { txn }
  | Msg.Vote { txn; _ }
  | Msg.Commit { txn }
  | Msg.Abort { txn; _ }
  | Msg.End_ack { txn; _ }
  | Msg.Wake { txn }
  | Msg.Wound { txn }
  | Msg.Victim { txn }
  | Msg.Outcome_query { txn }
  | Msg.Outcome_reply { txn; _ } ->
    txn
  | Msg.Wfg_request | Msg.Wfg_reply _ -> -1

(* Reachability recording: sample the destination machine's state at the
   instant of delivery.  The cluster tracer fires [Deliver] immediately
   before the handler runs, so the sample is the pre-handling state the
   classification tables describe. *)
type reached = {
  coord : (Coordinator.phase * Msg.Kind.t, unit) Hashtbl.t;
  part : (Participant.pstate * Msg.Kind.t, unit) Hashtbl.t;
}

let record_deliveries reached cluster ~time:_ ev =
  match ev with
  | Cluster.Tr_net { dst; dir = Net.Deliver; msg; _ } -> (
    let kind = Msg.kind msg in
    let txn = txn_of_msg msg in
    if participant_bound kind then
      let parts = Cluster.participants cluster in
      if dst >= 0 && dst < Array.length parts then
        let st = Participant.state_of parts.(dst) ~txn in
        Hashtbl.replace reached.part (st, kind) ()
      else ()
    else
      match kind with
      | Msg.Kind.Wfg_reply -> ()  (* detector-bound, no FSM *)
      | _ -> (
        match Coordinator.phase_of (Cluster.coordinator cluster) ~txn with
        | Some phase -> Hashtbl.replace reached.coord (phase, kind) ()
        | None -> ()))
  | _ -> ()

let drive sim = Sim.run ~until:10_000.0 ~max_events:2_000_000 sim

(* Plain reachability runs: the explorer's scenarios, built through the
   very same [Explore.setup] every model-checking replay uses. *)
let scenario_run reached scen ~protocol ~two_phase =
  let sim, cluster = Explore.setup scen ~protocol ~two_phase in
  Cluster.attach_tracer cluster (record_deliveries reached cluster);
  Dtx_workload.Workload.submit_script cluster (Explore.scripts scen);
  drive sim

(* Crash/restart choreographies: a 2-site 2PC transaction whose remote
   participant crashes right after writing its Prepared record.  Crashed
   sites still NACK deliveries, so the crash window is modelled as a
   partition (a fault plan that swallows traffic to the down site) — the
   coordinator's retransmission path then drives recovery, exactly like
   the chaos harness. *)
let recovery_scenario =
  {
    Explore.sc_name = "recovery";
    sc_about = "2PC crash/restart reachability";
    sc_sites = 2;
    sc_docs =
      [
        ("A", "<r><a><x>0</x></a></r>", [ 0 ]);
        ("B", "<r><b><y>0</y></b></r>", [ 1 ]);
      ];
    sc_txns = [];
  }

let parse_op s =
  match Op.parse s with Ok op -> op | Error e -> invalid_arg e

(* R1 — fast restart: crash at Prepared, restart 30 ms later while the
   coordinator is still retransmitting Commit, and stall the link back to
   the coordinator for 8 ms so the restarted site stays in recovery long
   enough for a fresh shipment and the retransmitted Commit to land on it
   ([P_recovering] x Op_ship/Commit), and so the coordinator answers the
   outcome query from [Ending]. *)
let recovery_run_fast reached =
  let sim, cluster =
    Explore.setup ~retransmit_ms:2.0 recovery_scenario ~protocol:Protocol.xdgl
      ~two_phase:true
  in
  let net = Cluster.net cluster in
  let down : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let stall_until = ref neg_infinity in
  Net.set_fault net
    (Some
       {
         Net.f_offsets = (fun ~time:_ ~src:_ ~dst:_ _ _ -> [ 0.0 ]);
         f_deliverable =
           (fun ~time ~src:_ ~dst ->
             (not (Hashtbl.mem down dst))
             && not (dst = 0 && time < !stall_until));
       });
  let crashed = ref false in
  Cluster.attach_tracer cluster (fun ~time ev ->
      record_deliveries reached cluster ~time ev;
      match ev with
      | Cluster.Tr_part { site = 1; ev = Participant.Prepared _ }
        when not !crashed ->
        crashed := true;
        ignore
          (Sim.schedule sim ~delay:0.2 (fun () ->
               Hashtbl.replace down 1 ();
               Cluster.crash_site cluster ~site:1;
               ignore
                 (Sim.schedule sim ~delay:30.0 (fun () ->
                      Hashtbl.remove down 1;
                      stall_until := Sim.now sim +. 8.0;
                      Cluster.restart_site cluster ~site:1;
                      ignore
                        (Sim.schedule sim ~delay:1.0 (fun () ->
                             ignore
                               (Cluster.submit cluster ~client:99
                                  ~coordinator:0
                                  ~ops:
                                    [ ("B", parse_op "CHANGE /r/b/y TO \"2\"") ]
                                  ~on_finish:(fun _ -> ()))))))))
      | _ -> ());
  ignore
    (Cluster.submit cluster ~client:1 ~coordinator:0
       ~ops:
         [
           ("A", parse_op "CHANGE /r/a/x TO \"1\"");
           ("B", parse_op "CHANGE /r/b/y TO \"1\"");
         ]
       ~on_finish:(fun _ -> ()));
  drive sim

(* R2 — slow restart: the crashed site stays partitioned past the
   coordinator's retransmission give-up, so the transaction is finalized
   Committed without it; the eventual restart resolves its in-doubt WAL
   record against a [Done] coordinator ([Done] x Outcome_query,
   [P_recovering] x Outcome_reply, redo replay). *)
let recovery_run_slow reached =
  let sim, cluster =
    Explore.setup ~retransmit_ms:2.0 recovery_scenario ~protocol:Protocol.xdgl
      ~two_phase:true
  in
  let net = Cluster.net cluster in
  let down : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  Net.set_fault net
    (Some
       {
         Net.f_offsets = (fun ~time:_ ~src:_ ~dst:_ _ _ -> [ 0.0 ]);
         f_deliverable =
           (fun ~time:_ ~src:_ ~dst -> not (Hashtbl.mem down dst));
       });
  let crashed = ref false in
  Cluster.attach_tracer cluster (fun ~time ev ->
      record_deliveries reached cluster ~time ev;
      match ev with
      | Cluster.Tr_part { site = 1; ev = Participant.Prepared _ }
        when not !crashed ->
        crashed := true;
        ignore
          (Sim.schedule sim ~delay:0.2 (fun () ->
               Hashtbl.replace down 1 ();
               Cluster.crash_site cluster ~site:1;
               ignore
                 (Sim.schedule sim ~delay:1200.0 (fun () ->
                      Hashtbl.remove down 1;
                      Cluster.restart_site cluster ~site:1))))
      | _ -> ());
  ignore
    (Cluster.submit cluster ~client:1 ~coordinator:0
       ~ops:
         [
           ("A", parse_op "CHANGE /r/a/x TO \"1\"");
           ("B", parse_op "CHANGE /r/b/y TO \"1\"");
         ]
       ~on_finish:(fun _ -> ()));
  drive sim

(* Pairs the run battery is designed to reach: their absence means the
   certifier's own reachability evidence broke, not the machine. *)
let required_coordinator =
  Coordinator.
    [
      (Awaiting_replies, Msg.Kind.Op_status);
      (Waiting, Msg.Kind.Wake);
      (Preparing, Msg.Kind.Vote);
      (Ending, Msg.Kind.End_ack);
      (Done, Msg.Kind.Outcome_query);
    ]

let required_participant =
  Participant.
    [
      (P_idle, Msg.Kind.Op_ship);
      (P_executing, Msg.Kind.Commit);
      (P_executing, Msg.Kind.Prepare);
      (P_recovering, Msg.Kind.Outcome_reply);
    ]

(* WAL crash points: every prefix of the participant's 2PC log must map to
   a recovery disposition the classification tables actually provide. *)
let wal_crash_point_checks () =
  let violations = ref [] in
  let fail fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let mk entries =
    let w = Wal.create () in
    List.iter (Wal.append w) entries;
    w
  in
  let prep =
    Wal.Prepared
      { txn = 7; time = 1.0; coord = 0; redo = [ ("U", "CHANGE /r/a/c TO \"u\"") ] }
  in
  let handled = function Participant.Handled _ -> true | _ -> false in
  (* Crash before Prepared: nothing in doubt, presumed abort needs no
     transition. *)
  let w = mk [] in
  if Wal.in_doubt w <> [] then fail "WAL: empty log reports in-doubt txns";
  if Wal.outcome_of w 7 <> `Unknown then
    fail "WAL: empty log knows an outcome for txn 7";
  (* Crash after Prepared: in doubt; recovery must be able to consume the
     coordinator's Outcome_reply while recovering. *)
  let w = mk [ prep ] in
  if Wal.in_doubt w <> [ 7 ] then
    fail "WAL: Prepared-only log does not report txn 7 in doubt";
  if Wal.outcome_of w 7 <> `In_doubt then
    fail "WAL: Prepared-only log outcome is not `In_doubt";
  (match Wal.prepared_record w 7 with
  | Some (0, [ ("U", _) ]) -> ()
  | _ -> fail "WAL: Prepared-only log lost the (coord, redo) recovery inputs");
  if
    not
      (handled
         (Participant.classify_delivery Participant.P_recovering
            Msg.Kind.Outcome_reply))
  then
    fail
      "WAL: in-doubt crash point has no handled (P_recovering, \
       Outcome_reply) recovery transition";
  if
    not
      (handled
         (Participant.classify_delivery Participant.P_recovering
            Msg.Kind.Commit))
  then
    fail
      "WAL: in-doubt crash point cannot consume a retransmitted Commit \
       while recovering";
  let resolved = Wal.resolve_presumed_abort w in
  if resolved <> [ 7 ] then
    fail "WAL: resolve_presumed_abort did not settle txn 7";
  if Wal.in_doubt w <> [] || Wal.outcome_of w 7 <> `Aborted then
    fail "WAL: presumed abort left txn 7 unsettled";
  (* Crash after an outcome record: idempotent re-acknowledgement. *)
  List.iter
    (fun (entry, expect) ->
      let w = mk [ prep; entry ] in
      if Wal.in_doubt w <> [] then
        fail "WAL: outcome-recorded log still reports txn 7 in doubt";
      if Wal.outcome_of w 7 <> expect then
        fail "WAL: outcome-recorded log reports the wrong outcome";
      if
        not
          (handled
             (Participant.classify_delivery Participant.P_ended
                (match expect with
                | `Committed -> Msg.Kind.Commit
                | _ -> Msg.Kind.Abort)))
      then
        fail
          "WAL: finalized crash point cannot re-acknowledge a duplicated \
           outcome message")
    [
      (Wal.Committed { txn = 7; time = 2.0 }, `Committed);
      (Wal.Aborted { txn = 7; time = 2.0 }, `Aborted);
    ];
  List.rev !violations

let fsm_audit ~mutate () =
  let reached = { coord = Hashtbl.create 64; part = Hashtbl.create 64 } in
  scenario_run reached Explore.reference ~protocol:Protocol.xdgl
    ~two_phase:false;
  scenario_run reached Explore.disjoint ~protocol:Protocol.xdgl
    ~two_phase:false;
  scenario_run reached Explore.deadlock ~protocol:Protocol.xdgl
    ~two_phase:false;
  scenario_run reached Explore.reference ~protocol:Protocol.xdgl
    ~two_phase:true;
  recovery_run_fast reached;
  recovery_run_slow reached;
  let audit machine states classify state_name reached_tbl =
    let handled = ref 0 and ignored = ref 0 in
    let impossible = ref 0 and dropped = ref 0 in
    let violations = ref [] in
    List.iter
      (fun st ->
        List.iter
          (fun kind ->
            let c = classify st kind in
            (match c with
            | C_handled -> incr handled
            | C_ignored -> incr ignored
            | C_impossible -> incr impossible
            | C_dropped -> incr dropped);
            if Hashtbl.mem reached_tbl (st, kind) then
              match c with
              | C_handled | C_ignored -> ()
              | C_impossible ->
                violations :=
                  Printf.sprintf
                    "%s: (%s, %s) was delivered by a run but is classified \
                     impossible"
                    machine (state_name st) (Msg.Kind.to_string kind)
                  :: !violations
              | C_dropped ->
                violations :=
                  Printf.sprintf
                    "%s: (%s, %s) is reachable but silently dropped"
                    machine (state_name st) (Msg.Kind.to_string kind)
                  :: !violations)
          Msg.Kind.all)
      states;
    {
      f_machine = machine;
      f_handled = !handled;
      f_ignored = !ignored;
      f_impossible = !impossible;
      f_dropped = !dropped;
      f_reached = Hashtbl.length reached_tbl;
      f_violations = List.rev !violations;
    }
  in
  let coord_report =
    audit "coordinator" coordinator_phases
      (classify_coordinator ~mutate)
      Coordinator.phase_to_string reached.coord
  in
  let part_report =
    audit "participant" participant_states
      (classify_participant ~mutate)
      Participant.pstate_to_string reached.part
  in
  let required_missing =
    List.filter_map
      (fun (ph, k) ->
        if Hashtbl.mem reached.coord (ph, k) then None
        else
          Some
            (Printf.sprintf "coordinator (%s, %s) never reached"
               (Coordinator.phase_to_string ph)
               (Msg.Kind.to_string k)))
      required_coordinator
    @ List.filter_map
        (fun (st, k) ->
          if Hashtbl.mem reached.part (st, k) then None
          else
            Some
              (Printf.sprintf "participant (%s, %s) never reached"
                 (Participant.pstate_to_string st)
                 (Msg.Kind.to_string k)))
        required_participant
  in
  ([ coord_report; part_report ], required_missing, wal_crash_point_checks ())

(* ------------------------------------------------------------------ *)
(* Pass (c): registry-capability coherence                             *)

let probe_name = "CertWrongCaps"

(* The [Wrong_caps] fault: a kind whose flags lie — it claims to cache
   derivations, but without a DataGuide the caching arm never engages, so
   observed hits stay zero and the coherence pass must object.  Registered
   lazily (the registry rejects duplicates) and excluded from every other
   pass. *)
let probe_kind =
  lazy
    (Protocol.register ~name:probe_name ~aliases:[ "certwrongcaps" ]
       ~caps:
         {
           Protocol.uses_dataguide = false;
           caches_derivations = true;
           needs_validation = false;
           two_pc_compatible = false;
         }
       ~derive:(fun ~dg:_ (d : Doc.t) op ->
         let mode = if Op.is_update op then Mode.X else Mode.ST in
         Ok ([ (Table.resource d.Doc.name 0, mode) ], 1))
       ~structure:(fun ~dg:_ _ -> 1)
       ())

let caps_audit_kind kind =
  let name = Protocol.kind_to_string kind in
  let caps = Protocol.caps kind in
  let violations = ref [] in
  let fail fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  (* uses_dataguide <=> the instance exposes a DataGuide after add_doc. *)
  let inst = Protocol.create kind in
  Protocol.add_doc inst (parse_universe ());
  let has_guide = Protocol.dataguide inst universe_name <> None in
  if has_guide <> caps.Protocol.uses_dataguide then
    fail "%s: uses_dataguide=%b but instance %s a DataGuide" name
      caps.Protocol.uses_dataguide
      (if has_guide then "exposes" else "does not expose");
  (* caches_derivations <=> repeating an identical derivation can hit. *)
  let q = parse_op "QUERY /r/a" in
  ignore (Protocol.lock_requests inst ~doc:universe_name q);
  ignore (Protocol.lock_requests inst ~doc:universe_name q);
  let hits, _ = Protocol.cache_stats inst in
  if caps.Protocol.caches_derivations && hits = 0 then
    fail
      "%s: caches_derivations=true but repeating an identical derivation \
       never hits"
      name;
  if (not caps.Protocol.caches_derivations) && hits > 0 then
    fail "%s: caches_derivations=false but the instance reported cache hits"
      name;
  (* needs_validation <=> a cluster built with the kind installs the
     optimistic validation classifier on its coordinator. *)
  let sim = Sim.create () in
  let net = Net.of_config ~sim Net.Config.lan in
  let config = Cluster.default_config ~protocol:kind () in
  let cluster =
    Cluster.create ~sim ~net ~n_sites:1 config
      ~placements:
        [ { Dtx_frag.Allocation.doc = parse_universe (); sites = [ 0 ] } ]
  in
  let has_optimist = Coordinator.has_optimist (Cluster.coordinator cluster) in
  if has_optimist <> caps.Protocol.needs_validation then
    fail "%s: needs_validation=%b but the coordinator %s a validator" name
      caps.Protocol.needs_validation
      (if has_optimist then "installs" else "does not install");
  (* Registry coherence: name and every alias resolve back to this kind. *)
  List.iter
    (fun a ->
      match Protocol.kind_of_string a with
      | Some k when k = kind -> ()
      | _ -> fail "%s: alias %S does not resolve back to the kind" name a)
    (Protocol.kind_to_string kind :: Protocol.aliases kind);
  { c_name = name; c_violations = List.rev !violations }

let caps_audit ~mutate () =
  let kinds =
    List.filter
      (fun k -> Protocol.kind_to_string k <> probe_name)
      (Protocol.registered ())
  in
  let kinds =
    if mutate = Some Wrong_caps then kinds @ [ Lazy.force probe_kind ]
    else kinds
  in
  List.map caps_audit_kind kinds

(* ------------------------------------------------------------------ *)
(* Certification entry points                                          *)

let certify ?mutate ?(max_seconds = 60.0) () =
  let t0 = Unix.gettimeofday () in
  let compat =
    if mutate = Some Flip_compat_bit then flipped_compatible
    else Mode.compatible
  in
  let ops = parse_templates () in
  let guide_oracle = build_guide_oracle ops in
  let instance_oracle = build_instance_oracle ops in
  let kinds =
    List.filter
      (fun k -> Protocol.kind_to_string k <> probe_name)
      (Protocol.registered ())
  in
  let protocols =
    List.map
      (certify_protocol ~compat ~mutate ~guide_oracle ~instance_oracle ops)
      kinds
  in
  (* The optimistic protocol must buy measurable precision with its
     validation machinery: downgrade monotonicity already guarantees >=
     XDGL, and the universe contains pairs only the verdicts can clear,
     so the inequality is required to be strict. *)
  let protocols =
    match
      ( List.find_opt (fun p -> p.pr_name = "Commute") protocols,
        List.find_opt (fun p -> p.pr_name = "XDGL") protocols )
    with
    | Some c, Some x when c.pr_precision <= x.pr_precision ->
      List.map
        (fun p ->
          if p.pr_name = "Commute" then
            {
              p with
              pr_violations =
                p.pr_violations
                @ [
                    Printf.sprintf
                      "Commute: precision %.4f is not strictly above XDGL's \
                       %.4f — the optimistic verdicts cleared no pair the \
                       fallback locks would not"
                      c.pr_precision x.pr_precision;
                  ];
            }
          else p)
        protocols
    | _ -> protocols
  in
  let universe_seconds = Unix.gettimeofday () -. t0 in
  let fsm, required_missing, wal_violations = fsm_audit ~mutate () in
  let caps_reports = caps_audit ~mutate () in
  let budget_violations =
    if universe_seconds > max_seconds then
      [
        Printf.sprintf
          "universe pass took %.1f s, over the %.1f s certification budget"
          universe_seconds max_seconds;
      ]
    else []
  in
  let violations =
    List.length budget_violations
    + List.fold_left (fun n p -> n + List.length p.pr_violations) 0 protocols
    + List.fold_left (fun n f -> n + List.length f.f_violations) 0 fsm
    + List.length required_missing
    + List.length wal_violations
    + List.fold_left (fun n c -> n + List.length c.c_violations) 0
        caps_reports
  in
  {
    r_mutation = mutate;
    r_protocols = protocols;
    r_fsm = fsm;
    r_required_missing = required_missing @ budget_violations;
    r_wal_violations = wal_violations;
    r_caps = caps_reports;
    r_universe_seconds = universe_seconds;
    r_runtime_seconds = Unix.gettimeofday () -. t0;
    r_violations = violations;
    r_certified = violations = 0;
  }

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_strings l =
  "[" ^ String.concat ", " (List.map (fun s -> "\"" ^ json_escape s ^ "\"") l)
  ^ "]"

let to_json r =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"mutation\": %s,\n"
    (match r.r_mutation with
    | None -> "null"
    | Some m -> "\"" ^ mutation_to_string m ^ "\"");
  add "  \"protocols\": [\n";
  List.iteri
    (fun i p ->
      add
        "    {\"name\": \"%s\", \"pairs\": %d, \"conflicting\": %d, \
         \"known_gaps\": %d, \"false_collisions\": %d, \"precision\": %.4f, \
         \"commute_checked\": %d, \"violations\": %s}%s\n"
        (json_escape p.pr_name) p.pr_pairs p.pr_conflicting p.pr_known_gaps
        p.pr_false_collisions p.pr_precision p.pr_commute_checked
        (json_strings p.pr_violations)
        (if i = List.length r.r_protocols - 1 then "" else ","))
    r.r_protocols;
  add "  ],\n";
  add "  \"fsm\": [\n";
  List.iteri
    (fun i f ->
      add
        "    {\"machine\": \"%s\", \"handled\": %d, \"ignored\": %d, \
         \"impossible\": %d, \"dropped\": %d, \"reached_pairs\": %d, \
         \"violations\": %s}%s\n"
        (json_escape f.f_machine) f.f_handled f.f_ignored f.f_impossible
        f.f_dropped f.f_reached
        (json_strings f.f_violations)
        (if i = List.length r.r_fsm - 1 then "" else ","))
    r.r_fsm;
  add "  ],\n";
  add "  \"required_missing\": %s,\n" (json_strings r.r_required_missing);
  add "  \"wal_violations\": %s,\n" (json_strings r.r_wal_violations);
  add "  \"caps\": [\n";
  List.iteri
    (fun i c ->
      add "    {\"name\": \"%s\", \"violations\": %s}%s\n"
        (json_escape c.c_name)
        (json_strings c.c_violations)
        (if i = List.length r.r_caps - 1 then "" else ","))
    r.r_caps;
  add "  ],\n";
  add "  \"universe_seconds\": %.3f,\n" r.r_universe_seconds;
  add "  \"runtime_seconds\": %.3f,\n" r.r_runtime_seconds;
  add "  \"violations\": %d,\n" r.r_violations;
  add "  \"certified\": %b\n" r.r_certified;
  add "}";
  Buffer.contents b

let run ?mutate ?max_seconds () =
  let r = certify ?mutate ?max_seconds () in
  print_string (to_json r);
  print_newline ();
  if r.r_certified then 0 else 1
