(** The DTX cluster: the paper's distributed concurrency-control mechanism,
    assembled.

    One [Cluster.t] wires N {!Site} instances to a simulated {!Dtx_net.Net}
    and runs the paper's algorithms:

    - {b Algorithm 1} (coordinator): each submitted transaction executes its
      operations in order; an operation is shipped to {e every} site holding
      its document (the catalog answers which); if any participant cannot
      acquire the locks, the operation's effects are undone at the sites
      where it did run and the transaction waits; a failure or deadlock
      aborts it; running out of operations commits it.
    - {b Algorithm 2} (participants): remote operations are processed
      through the local LockManager and their status is reported back.
    - {b Algorithm 3} lives in {!Site.process_operation}.
    - {b Algorithm 4}: a periodic process collects every site's wait-for
      graph, unions them, and aborts the {e newest} transaction of any
      cycle.
    - {b Algorithms 5/6}: commit and abort messages fan out to the involved
      sites; participants persist or undo, release locks, and wake waiting
      transactions.

    Waiting transactions are resumed by {e wake} messages sent when the
    transaction they wait for releases its locks — "when a transaction
    commits, those that entered wait mode waiting for the locks of the one
    that committed, start executing again" (§2.2). *)

type commit_protocol = Coordinator.commit_protocol =
  | One_phase
      (** the paper's DTX: the coordinator sends consolidation messages and
          every site applies them (Alg. 5) — atomicity is future work *)
  | Two_phase
      (** the future-work extension: a prepare/vote round first, with
          {!Wal} records making recovery presumed-abort safe; costs one
          extra message round-trip per involved site at commit *)

type config = {
  protocol : Dtx_protocol.Protocol.kind;
  cost : Cost.t;
  deadlock_period_ms : float;
      (** period of the Algorithm-4 detector (paper: "periodically") *)
  storage : [ `Memory | `Filesystem of string | `Paged of string ];
      (** DataManager backend per site: in-memory (the default), one XML
          file per document, or the paged single-file store with a bounded
          buffer pool (the future-work "not everything in main memory"
          backend) *)
  commit : commit_protocol;
  deadlock_policy : Site.deadlock_policy;
      (** {!Site.Detection} (the paper), or wait-die / wound-wait
          prevention for the deadlock study the paper calls for *)
  op_timeout_ms : float option;
      (** abort a transaction whose in-flight operation got no participant
          reply within this delay — the recovery knob for lossy links
          (operation traffic is sent unreliably when the {!Dtx_net.Net} has
          a [drop_pct]); [None] (default) disables timeouts *)
  retransmit_ms : float option;
      (** arm coordinator retransmission (exponential backoff, base this
          many ms) of unreliably-shipped operations and of severed
          prepare/commit/abort traffic, plus the participant's recovery
          outcome queries — the fault-plan survival kit; [None] (default)
          keeps the wire behaviour of the unfaulted protocol *)
  txn_timeout_ms : float option;
      (** chaos safety valve: abort any transaction still short of its end
          protocol after this long (e.g. its Wake died in a never-healed
          partition); [None] (default) disables it *)
}

val default_config : ?protocol:Dtx_protocol.Protocol.kind -> unit -> config
(** XDGL, default costs, 40 ms detector period, memory storage, one-phase
    commit (the paper's behaviour). *)

(** Cluster-wide counters and series for the experiment harness. *)
type stats = Coordinator.stats = {
  mutable submitted : int;
  mutable committed : int;
  mutable aborted : int;
  mutable failed : int;
  mutable deadlock_aborts : int;
      (** aborts whose reason was a (local or distributed) deadlock — the
          paper's "number of deadlocks" metric *)
  mutable distributed_deadlocks : int;  (** found by the Alg.-4 detector *)
  mutable local_deadlocks : int;  (** found inside one site's LockManager *)
  mutable op_undos : int;  (** operation-level cross-site undos (Alg. 1 l. 16) *)
  mutable wake_messages : int;
  mutable wounded : int;
      (** wound-wait: transactions aborted because an older requester
          needed their locks *)
  mutable retransmits : int;
      (** messages re-sent by the coordinator's backoff timers *)
  mutable validation_aborts : int;
      (** Commute protocol: transactions aborted because their optimistic
          commutativity assumption was invalidated by a concurrent
          admission or structural mutation *)
  mutable last_finish : float;  (** time the last transaction ended *)
  response_times : float Dtx_util.Vec.t;  (** committed transactions only *)
  commit_stamps : float Dtx_util.Vec.t;  (** commit times (Fig. 12 input) *)
  concurrency_samples : (float * int) Dtx_util.Vec.t;
      (** (time, active transactions) at every change (Fig. 12 input) *)
}

type t

val create :
  sim:Dtx_sim.Sim.t ->
  net:Dtx_net.Net.t ->
  n_sites:int ->
  config ->
  placements:Dtx_frag.Allocation.placement list ->
  t
(** Build the cluster: every placement's document is replicated (cloned) to
    its sites, protocol instances and stores included. The deadlock detector
    starts automatically and stops once {!shutdown_when_idle} has been called
    and no transaction is active. *)

val submit :
  t ->
  client:int ->
  coordinator:int ->
  ops:(string * Dtx_update.Op.t) list ->
  on_finish:(Dtx_txn.Txn.t -> unit) ->
  Dtx_txn.Txn.t
(** Hand a transaction to the Listener of site [coordinator]. [on_finish]
    fires exactly once, with status [Committed], [Aborted] or [Failed]. *)

val shutdown_when_idle : t -> unit
(** Let the periodic detector stop once no transactions remain, so the event
    queue can drain and {!Dtx_sim.Sim.run} returns. *)

val stats : t -> stats

val active_txns : t -> int

val sites : t -> Site.t array

val sim : t -> Dtx_sim.Sim.t

val net : t -> Dtx_net.Net.t

val coordinator : t -> Coordinator.t

val participants : t -> Participant.ctx array
(** The wired layers, exposed so an external observer (the [Dtx_check]
    analyzer) can install its trace sinks without the cluster knowing about
    it. Index [i] of {!participants} serves site [i]. *)

val catalog : t -> Dtx_frag.Allocation.catalog

val txn_status : t -> int -> Dtx_txn.Txn.status option

val total_lock_requests : t -> int
(** Sum of lock requests processed across all sites. *)

val total_blocked_ops : t -> int

val enable_history : t -> History.t
(** Start recording the execution history (lock grants, undos, commit
    order). Call before submitting transactions; returns the history, which
    keeps filling as the simulation runs. Idempotent. *)

val history : t -> History.t option

val check_serializable : t -> (unit, string) result
(** {!History.check_serializable} on the recorded history.
    @raise Invalid_argument if {!enable_history} was never called. *)

val inject_site_failure : t -> site:int -> unit
(** Failure injection: the site stops acknowledging commit/abort requests,
    driving transactions that involve it into the paper's abort/fail paths
    (commit that cannot complete → abort; abort that cannot complete →
    failure, §2.2). Used by tests. *)

val heal_site : t -> site:int -> unit

val crash_site : t -> site:int -> unit
(** Crash simulation: the site stops serving (as {!inject_site_failure})
    {e and} loses its volatile state — replicas, locks, wait-for graph,
    undo logs. Transactions that involve it will abort or fail; their
    effects at healthy sites are rolled back, so the system stays
    consistent. *)

val recover_site : t -> site:int -> unit
(** Restart a crashed site {e offline}: reload its replicas from its durable
    store and resolve every in-doubt WAL transaction as presumed abort on
    the spot, without consulting anyone. Correct only when no coordinator
    holds a commit record for them; the chaos harness uses
    {!restart_site} instead. See {!Site.recover_from_storage}. *)

val restart_site : t -> site:int -> unit
(** Restart a crashed site {e online}: reload its replicas, rejoin the
    cluster, and let the participant resolve each in-doubt transaction by
    querying its coordinator ([Outcome_query], capped backoff) — committed
    answers replay the WAL redo list, aborted or absent answers are
    presumed abort. New shipments are refused until recovery completes. *)

(** {2 Unified tracing}

    The analyzer ({!Dtx_check.Checker}) consumes five trace streams —
    simulator ticks, network dispatch, coordinator phase transitions, lock
    tables, participant events. {!attach_tracer} installs all five sinks in
    one call; {!detach_tracer} removes them. *)

type trace_event =
  | Tr_lock of { site : int; ev : Dtx_locks.Table.event }
  | Tr_net of { src : int; dst : int; dir : Dtx_net.Net.dir; msg : Dtx_net.Msg.t }
  | Tr_phase of {
      txn : int;
      from_ : Coordinator.phase option;
      to_ : Coordinator.phase;
    }
  | Tr_part of { site : int; ev : Participant.event }
  | Tr_tick  (** one simulator event executed (clock-monotonicity probes) *)

type tracer = time:float -> trace_event -> unit

val attach_tracer : t -> tracer -> unit
(** Install [f] as the sink of all five trace streams. Events arrive in the
    causal order the cluster produced them; a later call replaces the
    earlier sink. *)

val detach_tracer : t -> unit
