(** The simulation cost model — the stand-in for the paper's testbed
    (3 GHz PCs on a 100 Mbit/s hub; see DESIGN.md "Substitutions").

    Every experiment outcome the paper reports is a {e relative} effect of
    (a) how many locks a protocol requests, (b) how many document nodes an
    operation touches, and (c) how many messages synchronization needs.
    The constants here only set the exchange rate between those three and
    simulated milliseconds; the benches' ablation sweep shows the
    qualitative results are insensitive to them over wide ranges. *)

type t = {
  lock_request_ms : float;
      (** processing one (resource, mode) lock request in the LockManager *)
  node_touch_ms : float;
      (** visiting or writing one document node during query/update work *)
  sched_ms : float;  (** fixed Scheduler overhead per operation dispatch *)
  persist_node_ms : float;
      (** DataManager write-back per touched node at commit *)
  result_bytes_per_node : int;
      (** per query-result node shipped back in a status reply (message
          envelopes themselves are sized by {!Dtx_net.Msg.size}) *)
}

val default : t

val scaled : ?factor:float -> t -> t
(** Multiply all time constants by [factor] (sensitivity analyses). *)
