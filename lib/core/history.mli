(** Transaction histories and conflict-serializability checking.

    The paper argues DTX's global serializability informally (§2.2, citing
    Türker et al.'s proof schema). This module provides the {e mechanical}
    counterpart: record every lock grant a site makes, drop the ones undone
    by operation-level rollback or abort, and check that the committed
    transactions' conflict graph — an edge [Ti → Tj] whenever [Ti] accessed
    a resource before [Tj] in incompatible modes — is acyclic. Strict 2PL
    plus DTX's all-or-nothing cross-site operations should make this hold
    for every execution; the integration tests run random workloads under
    all three protocols and assert it. *)

type access = {
  a_time : float;
  a_site : int;
  a_txn : int;
  a_op : int;
  a_attempt : int;
  a_resource : Dtx_locks.Table.resource;
  a_mode : Dtx_locks.Mode.t;
}

type t

val create : unit -> t

val record :
  t ->
  time:float -> site:int -> txn:int -> op_index:int -> attempt:int ->
  (Dtx_locks.Table.resource * Dtx_locks.Mode.t) list ->
  unit
(** Log the lock grants of one executed operation attempt. *)

val invalidate : t -> txn:int -> op_index:int -> attempt:int -> unit
(** The attempt's effects were undone; its accesses no longer count. *)

val wipe_site : t -> site:int -> keep:(int -> bool) -> unit
(** A crash erased [site]'s volatile effects: accesses recorded there so
    far no longer describe reachable state and are dropped from the
    conflict graph — except those of transactions [keep] accepts
    (WAL-protected: prepared ones are re-instated verbatim by redo replay,
    finished ones were already durable). Post-restart re-executions record
    fresh accesses and are unaffected. *)

val note_commit : t -> txn:int -> time:float -> unit

val note_abort : t -> txn:int -> unit
(** Drops every access of the transaction. *)

val committed : t -> (int * float) list
(** Committed transactions with commit times, by commit order. *)

val accesses : t -> access list
(** Valid accesses of committed transactions, in time order. *)

val conflict_edges : t -> (int * int) list
(** Distinct [Ti → Tj] pairs: [Ti]'s access precedes [Tj]'s incompatible
    access to the same (site, resource), both committed. *)

val check_serializable : t -> (unit, string) result
(** [Ok ()] iff the conflict graph is acyclic; [Error] names a cycle. *)

val size : t -> int
(** Number of raw access records (diagnostics). *)
