module Sim = Dtx_sim.Sim
module Net = Dtx_net.Net
module Msg = Dtx_net.Msg
module Wfg = Dtx_locks.Wfg
module Allocation = Dtx_frag.Allocation
module Storage = Dtx_storage.Storage
module Protocol = Dtx_protocol.Protocol

type commit_protocol = Coordinator.commit_protocol = One_phase | Two_phase

type config = {
  protocol : Protocol.kind;
  cost : Cost.t;
  deadlock_period_ms : float;
  storage : [ `Memory | `Filesystem of string | `Paged of string ];
  commit : commit_protocol;
  deadlock_policy : Site.deadlock_policy;
  op_timeout_ms : float option;
  retransmit_ms : float option;
  txn_timeout_ms : float option;
}

let default_config ?(protocol = Protocol.xdgl) () =
  { protocol; cost = Cost.default; deadlock_period_ms = 40.0;
    storage = `Memory; commit = One_phase;
    deadlock_policy = Site.Detection; op_timeout_ms = None;
    retransmit_ms = None; txn_timeout_ms = None }

type stats = Coordinator.stats = {
  mutable submitted : int;
  mutable committed : int;
  mutable aborted : int;
  mutable failed : int;
  mutable deadlock_aborts : int;
  mutable distributed_deadlocks : int;
  mutable local_deadlocks : int;
  mutable op_undos : int;
  mutable wake_messages : int;
  mutable wounded : int;
  mutable retransmits : int;
  mutable validation_aborts : int;
  mutable last_finish : float;
  response_times : float Dtx_util.Vec.t;
  commit_stamps : float Dtx_util.Vec.t;
  concurrency_samples : (float * int) Dtx_util.Vec.t;
}

type t = {
  sim : Sim.t;
  net : Net.t;
  config : config;
  n_sites : int;
  sites : Site.t array;
  catalog : Allocation.catalog;
  coord : Coordinator.t;
  participants : Participant.ctx array;
  failed_sites : (int, unit) Hashtbl.t;
  mutable shutdown_requested : bool;
  mutable detector_busy : bool;
  mutable detector_merged : Wfg.t;
  mutable history : History.t option;
}

(* One funnel for every trace stream the analyzer consumes (see
   {!attach_tracer}). *)
type trace_event =
  | Tr_lock of { site : int; ev : Dtx_locks.Table.event }
  | Tr_net of { src : int; dst : int; dir : Net.dir; msg : Msg.t }
  | Tr_phase of {
      txn : int;
      from_ : Coordinator.phase option;
      to_ : Coordinator.phase;
    }
  | Tr_part of { site : int; ev : Participant.event }
  | Tr_tick

type tracer = time:float -> trace_event -> unit

let stats t = Coordinator.stats t.coord

let active_txns t = Coordinator.active t.coord

let sites t = t.sites

let sim t = t.sim

let net t = t.net

let coordinator t = t.coord

let participants t = t.participants

let catalog t = t.catalog

let txn_status t id = Coordinator.txn_status t.coord id

let total_lock_requests t =
  Array.fold_left (fun acc s -> acc + s.Site.stats.Site.lock_requests) 0 t.sites

let total_blocked_ops t =
  Array.fold_left (fun acc s -> acc + s.Site.stats.Site.blocked_ops) 0 t.sites

let inject_site_failure t ~site = Hashtbl.replace t.failed_sites site ()

let heal_site t ~site = Hashtbl.remove t.failed_sites site

let crash_site t ~site =
  Hashtbl.replace t.failed_sites site ();
  (* The history mirror must forget accesses whose effects just died with
     the volatile state, or a post-restart re-execution shows up twice and
     fabricates precedence cycles. WAL-protected transactions keep theirs:
     redo replay re-instates a prepared transaction's effects verbatim. *)
  (match t.history with
   | None -> ()
   | Some h ->
     let wal = t.sites.(site).Site.wal in
     History.wipe_site h ~site ~keep:(fun txn ->
         Wal.outcome_of wal txn <> `Unknown));
  Site.wipe_volatile t.sites.(site);
  Participant.crash t.participants.(site)

let recover_site t ~site =
  Site.recover_from_storage t.sites.(site);
  (* Presumed abort: in-doubt transactions never reached the store. *)
  ignore (Wal.resolve_presumed_abort t.sites.(site).Site.wal);
  Hashtbl.remove t.failed_sites site

(* The online alternative to {!recover_site}: reload the store, rejoin, and
   let the participant resolve its in-doubt transactions by querying their
   coordinators (committed answers replay the WAL redo lists). Used by the
   chaos harness, where the coordinator may well hold a Committed outcome
   the blunt presumed-abort of {!recover_site} would contradict. *)
let restart_site t ~site =
  Site.recover_from_storage t.sites.(site);
  Hashtbl.remove t.failed_sites site;
  Participant.restart t.participants.(site)

let site_failed t site = Hashtbl.mem t.failed_sites site

(* ------------------------------------------------------------------ *)
(* Distributed deadlock detection: Algorithm 4                         *)
(* ------------------------------------------------------------------ *)

(* Site 0 plays the paper's detector: it polls each live site for its
   wait-for graph (one Wfg_request at a time), merges the replies, and on
   the first cycle notifies the victim's coordinator with a Victim
   message — "the most recent transaction involved in the circle is
   aborted" (ids grow monotonically with start time). *)

let detector_site = 0

let rec detector_request t i =
  if i >= t.n_sites then t.detector_busy <- false
  else if site_failed t i then (* unreachable: treat as an empty graph *)
    detector_request t (i + 1)
  else Net.dispatch t.net ~src:detector_site ~dst:i Msg.Wfg_request

let detector_reply t ~src edges =
  if t.detector_busy then begin
    List.iter
      (fun (w, h) -> Wfg.add_wait t.detector_merged ~waiter:w ~holders:[ h ])
      edges;
    match Wfg.find_cycle t.detector_merged with
    | None -> detector_request t (src + 1)
    | Some cycle -> (
      t.detector_busy <- false;
      let victim = Coordinator.newest_of t.coord cycle in
      match Coordinator.home_of t.coord ~txn:victim with
      | Some coordinator ->
        Net.dispatch t.net ~src:detector_site ~dst:coordinator
          (Msg.Victim { txn = victim })
      | None -> ())
  end

let detect_deadlocks t =
  if not t.detector_busy then begin
    t.detector_busy <- true;
    t.detector_merged <- Wfg.create ();
    detector_request t 0
  end

(* ------------------------------------------------------------------ *)
(* The Listener: route delivered messages by type                      *)
(* ------------------------------------------------------------------ *)

let route t ~src ~dst (msg : Msg.t) =
  match msg with
  | Msg.Op_ship _ | Msg.Op_undo _ | Msg.Prepare _ | Msg.Commit _
  | Msg.Abort _ | Msg.Wfg_request | Msg.Outcome_reply _ ->
    Participant.handle t.participants.(dst) ~src msg
  | Msg.Wfg_reply { edges } -> detector_reply t ~src edges
  | Msg.Op_status _ | Msg.Vote _ | Msg.End_ack _ | Msg.Wake _ | Msg.Wound _
  | Msg.Victim _ | Msg.Outcome_query _ ->
    Coordinator.dispatch t.coord ~src msg

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)
(* ------------------------------------------------------------------ *)

let create ~sim ~net ~n_sites config ~placements =
  if n_sites < 1 then invalid_arg "Cluster.create: n_sites < 1";
  let site_docs i =
    List.filter_map
      (fun (p : Allocation.placement) ->
        if List.mem i p.Allocation.sites then Some p.Allocation.doc else None)
      placements
  in
  let make_site i =
    let storage =
      match config.storage with
      | `Memory -> Storage.memory ()
      | `Filesystem dir ->
        Storage.filesystem ~dir:(Filename.concat dir (Printf.sprintf "site%d" i))
      | `Paged dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        Storage.paged
          ~path:(Filename.concat dir (Printf.sprintf "site%d.dtxp" i))
          ()
    in
    Site.create ~id:i ~protocol_kind:config.protocol
      ~deadlock_policy:config.deadlock_policy ~storage ~docs:(site_docs i) ()
  in
  let sites = Array.init n_sites make_site in
  let catalog = Allocation.catalog placements in
  let failed_sites = Hashtbl.create 4 in
  let coord =
    Coordinator.create ~sim ~net ~cost:config.cost ~catalog
      ~commit:config.commit ~op_timeout_ms:config.op_timeout_ms
      ?retransmit_ms:config.retransmit_ms
      ?txn_timeout_ms:config.txn_timeout_ms
      ~site_failed:(fun s -> Hashtbl.mem failed_sites s)
      ~n_sites ()
  in
  (* The Commute protocol needs its coordinator-side classifier, built over
     private clones of the placement documents. *)
  if (Protocol.caps config.protocol).Protocol.needs_validation then
    Coordinator.set_optimist coord
      (Optimist.create ~protocol:config.protocol
         ~docs:
           (List.map (fun (p : Allocation.placement) -> p.Allocation.doc)
              placements));
  let participants =
    Array.map
      (fun (site : Site.t) ->
        { Participant.sim;
          net;
          cost = config.cost;
          site;
          two_phase = config.commit = Two_phase;
          site_failed = (fun () -> Hashtbl.mem failed_sites site.Site.id);
          txn_live = (fun ~txn ~attempt -> Coordinator.txn_live coord ~txn ~attempt);
          retransmit_ms = config.retransmit_ms;
          replies = Hashtbl.create 64;
          txn_seqs = Hashtbl.create 64;
          ended = Hashtbl.create 64;
          recovering = Hashtbl.create 4;
          tracer = None })
      sites
  in
  let t =
    { sim;
      net;
      config;
      n_sites;
      sites;
      catalog;
      coord;
      participants;
      failed_sites;
      shutdown_requested = false;
      detector_busy = false;
      detector_merged = Wfg.create ();
      history = None }
  in
  Net.set_handler net (fun ~src ~dst msg -> route t ~src ~dst msg);
  (* Parallel-tick routing hint: mirror [route]'s participant-bound arm.
     Those handlers write only site [dst]'s state (its lock table, store,
     participant caches) and reach everything shared — replies, coordinator
     reads-turned-writes, the network itself — through deferrable paths, so
     their deliveries may run on worker domains. Coordinator-bound replies
     and the detector's [Wfg_reply] mutate cluster-wide state and stay
     serial. *)
  Net.set_site_hint net
    (Some
       (fun dst msg ->
         match msg with
         | Msg.Op_ship _ | Msg.Op_undo _ | Msg.Prepare _ | Msg.Commit _
         | Msg.Abort _ | Msg.Wfg_request | Msg.Outcome_reply _ -> dst
         | Msg.Wfg_reply _ | Msg.Op_status _ | Msg.Vote _ | Msg.End_ack _
         | Msg.Wake _ | Msg.Wound _ | Msg.Victim _ | Msg.Outcome_query _ ->
           -1));
  Sim.every sim ~period:config.deadlock_period_ms (fun () ->
      if Coordinator.active coord > 0 then detect_deadlocks t;
      not (t.shutdown_requested && Coordinator.active coord = 0));
  t

let shutdown_when_idle t = t.shutdown_requested <- true

(* ------------------------------------------------------------------ *)
(* Unified tracing                                                     *)
(* ------------------------------------------------------------------ *)

(* One call installs every per-module trace sink the analyzer needs: the
   simulator clock, the network dispatch path, the coordinator FSM, each
   site's lock table and each participant. The sink sees events in the
   exact causal order the cluster produced them. *)
let attach_tracer t (f : tracer) =
  Sim.set_tracer t.sim (Some (fun ~time ~seq:_ -> f ~time Tr_tick));
  Net.set_tracer t.net
    (Some
       (fun ~src ~dst dir msg ->
         f ~time:(Sim.now t.sim) (Tr_net { src; dst; dir; msg })));
  Coordinator.set_tracer t.coord
    (Some
       (fun ~txn ~from_ ~to_ ->
         f ~time:(Sim.now t.sim) (Tr_phase { txn; from_; to_ })));
  Array.iter
    (fun (site : Site.t) ->
      let id = site.Site.id in
      Dtx_locks.Table.set_tracer site.Site.table
        (Some (fun ev -> f ~time:(Sim.now t.sim) (Tr_lock { site = id; ev }))))
    t.sites;
  Array.iter
    (fun (p : Participant.ctx) ->
      let id = p.Participant.site.Site.id in
      p.Participant.tracer <-
        Some (fun ev -> f ~time:(Sim.now t.sim) (Tr_part { site = id; ev })))
    t.participants

let detach_tracer t =
  Sim.set_tracer t.sim None;
  Net.set_tracer t.net None;
  Coordinator.set_tracer t.coord None;
  Array.iter
    (fun (site : Site.t) -> Dtx_locks.Table.set_tracer site.Site.table None)
    t.sites;
  Array.iter (fun (p : Participant.ctx) -> p.Participant.tracer <- None)
    t.participants

let enable_history t =
  match t.history with
  | Some h -> h
  | None ->
    let h = History.create () in
    t.history <- Some h;
    (* The per-site access/undo sinks append to one shared history in raw
       execution order; keep that order serial rather than defer it. *)
    Sim.set_serial_only t.sim true;
    Coordinator.set_history t.coord h;
    Array.iter
      (fun (site : Site.t) ->
        site.Site.access_sink <-
          Some
            (fun ~txn ~op_index ~attempt grants ->
              History.record h ~time:(Sim.now t.sim) ~site:site.Site.id ~txn
                ~op_index ~attempt grants);
        site.Site.undo_sink <-
          Some (fun ~txn ~op_index ~attempt ->
              History.invalidate h ~txn ~op_index ~attempt))
      t.sites;
    h

let history t = t.history

let check_serializable t =
  match t.history with
  | Some h -> History.check_serializable h
  | None -> invalid_arg "Cluster.check_serializable: history not enabled"

let submit t ~client ~coordinator ~ops ~on_finish =
  if coordinator < 0 || coordinator >= t.n_sites then
    invalid_arg "Cluster.submit: bad coordinator site";
  Coordinator.submit t.coord ~client ~coordinator ~ops ~on_finish
