(** The coordinator side of the paper's Scheduler: Algorithm 1 as an
    explicit per-transaction state machine.

    Each transaction moves through the phases

    {v Executing -> Awaiting_replies -> (Waiting ->) ... -> Preparing?
       -> Ending -> Done v}

    - {e Executing}: picking the next operation (or batch) to ship;
    - {e Awaiting_replies}: one shipment is in flight to one participant
      (participants are visited one at a time, in ascending site order —
      a global acquisition order that prevents cross-site livelock);
    - {e Waiting}: blocked on a lock conflict, waiting for a [Wake];
    - {e Preparing}: the 2PC vote round (future-work extension);
    - {e Ending}: commit/abort fan-out outstanding (Algs. 5/6);
    - {e Done}: finalized, removed from the table.

    Consecutive operations bound for the same single site are batched into
    one [Op_ship] (one message round-trip instead of one per operation);
    multi-site operations still traverse their replica sites one by one.

    All incoming coordinator-bound messages ([Op_status], [Vote],
    [End_ack], [Wake], [Wound], [Victim], [Outcome_query]) enter through
    {!dispatch}.

    Unreliable-channel recovery: operation shipments carry a global
    sequence number and are retransmitted with exponential backoff (when
    [retransmit_ms] is set) until their status reply lands; participants
    deduplicate by [(txn, seq)], so duplicated or replayed shipments never
    double-apply. Prepare and commit/abort rounds track outstanding
    {e per-site} acknowledgements — duplicated votes/acks are harmless —
    and are likewise nudged under retransmission. The coordinator records
    every finalized outcome so a crashed-and-restarted participant can
    resolve its in-doubt transactions with [Outcome_query]; unknown
    transactions are presumed aborted. *)

type commit_protocol = One_phase | Two_phase

(** The per-transaction FSM phases, exposed so the analyzer can check
    transition legality against the documented machine. *)
type phase =
  | Executing  (** picking / scheduling the next shipment *)
  | Awaiting_replies  (** a shipment is in flight to one participant *)
  | Waiting  (** blocked; resumes on [Wake] *)
  | Preparing  (** 2PC vote round outstanding *)
  | Ending  (** commit/abort fan-out outstanding *)
  | Done

val phase_to_string : phase -> string

type phase_tracer = txn:int -> from_:phase option -> to_:phase -> unit
(** Called on every phase {e change} (same-phase re-assignments are
    suppressed). [from_ = None] marks transaction admission. *)

(** Cluster-wide counters and series for the experiment harness
    (re-exported as [Cluster.stats]). *)
type stats = {
  mutable submitted : int;
  mutable committed : int;
  mutable aborted : int;
  mutable failed : int;
  mutable deadlock_aborts : int;
  mutable distributed_deadlocks : int;
  mutable local_deadlocks : int;
  mutable op_undos : int;
  mutable wake_messages : int;
  mutable wounded : int;
  mutable retransmits : int;
  mutable validation_aborts : int;
      (** transactions aborted because their optimistic commutativity
          assumption was invalidated (Commute protocol only) *)
  mutable last_finish : float;
  response_times : float Dtx_util.Vec.t;
  commit_stamps : float Dtx_util.Vec.t;
  concurrency_samples : (float * int) Dtx_util.Vec.t;
}

type t

val create :
  sim:Dtx_sim.Sim.t ->
  net:Dtx_net.Net.t ->
  cost:Cost.t ->
  catalog:Dtx_frag.Allocation.catalog ->
  commit:commit_protocol ->
  op_timeout_ms:float option ->
  ?retransmit_ms:float ->
  ?txn_timeout_ms:float ->
  site_failed:(int -> bool) ->
  n_sites:int ->
  unit ->
  t
(** [retransmit_ms] (default [None] — off) arms exponential-backoff
    retransmission of shipments, prepares and commit/abort messages, plus
    the give-up fallbacks that keep transactions from stranding when a
    destination stays unreachable. [txn_timeout_ms] (default [None]) is the
    chaos safety valve: a transaction still short of its end protocol after
    that long is aborted outright. *)

val submit :
  t ->
  client:int ->
  coordinator:int ->
  ops:(string * Dtx_update.Op.t) list ->
  on_finish:(Dtx_txn.Txn.t -> unit) ->
  Dtx_txn.Txn.t

val dispatch : t -> src:int -> Dtx_net.Msg.t -> unit
(** Single entry point for coordinator-bound messages; participant-bound
    kinds are ignored. *)

val stats : t -> stats

val active : t -> int
(** Transactions not yet finalized. *)

val txn_status : t -> int -> Dtx_txn.Txn.status option

val txn_live : t -> txn:int -> attempt:int -> bool
(** Participant liveness peek: [txn] exists, is not yet committing or
    aborting, and [attempt] is its current shipment round. *)

val home_of : t -> txn:int -> int option
(** The coordinator site of a live transaction (where the detector
    addresses its [Victim] notification). *)

val newest_of : t -> int list -> int
(** Deadlock-victim choice (Alg. 4 l. 7): the transaction in the cycle with
    the largest submission timestamp, equal timestamps broken by the larger
    id — a deterministic total order, so schedule replays always abort the
    same victim. Unknown (already-finalized) transactions rank oldest.
    @raise Invalid_argument on an empty list. *)

val set_history : t -> History.t -> unit
(** Record commit/abort events into [h] at finalization. *)

val set_tracer : t -> phase_tracer option -> unit
(** Install (or remove) a phase-transition sink. [None] (the default) keeps
    phase assignment a plain store plus one immediate [match]. *)

(** How a delivered [(phase, Msg.Kind)] pair relates to the machine — the
    static classification the symbolic certifier ({!Dtx_cert}) audits for
    exhaustiveness. The payload string is provenance: the handler action
    ([Handled]), the staleness/idempotency guard that makes dropping
    deliberate ([Ignored]), or why delivery cannot happen here at all
    ([Impossible]). *)
type disposition =
  | Handled of string
  | Ignored of string
  | Impossible of string

val classify_delivery : phase -> Dtx_net.Msg.Kind.t -> disposition
(** Total over [phase] x {!Dtx_net.Msg.Kind.t}; co-located with the
    handlers so classification and guards are edited together. *)

val phase_of : t -> txn:int -> phase option
(** The phase a delivery for [txn] would find: the live phase if tracked,
    [Some Done] if finalized (outcome recorded), [None] if never
    submitted. *)

val has_optimist : t -> bool
(** Whether a Commute-protocol validation classifier is installed
    (capability-coherence probe for [needs_validation]). *)

val set_optimist : t -> Optimist.t -> unit
(** Install the Commute protocol's commutativity classifier. From then on
    every {!submit} classifies its operations against the active set (the
    resulting flags ride the shipments), transactions are validated on the
    way into their end protocol, and invalidated ones abort with a
    validation abort. Without a classifier (the default) all operations
    ship pessimistically and validation always passes. *)
