(** The coordinator-side optimistic commutativity classifier — the runtime
    half of the Commute protocol ({!Dtx_protocol.Protocol.commute}).

    At submit, every transaction's operations are classified against the
    operations of all concurrently active transactions using the
    instance-independent verdicts of {!Dtx_protocol.Commute_rules}
    (Dekeyser et al., arXiv cs/0505074). Operations proved to commute with
    everything active ship with the optimistic flag: the participant skips
    lock acquisition for read-only footprints and downgrades update
    footprints to intention modes. [Conflicts]/[Unknown] operations ship
    pessimistically and take the full XDGL-derived lock set.

    The optimism is kept sound by two commit-time checks, both enforced
    just before the transaction enters its end protocol (one-phase) or its
    prepare phase (2PC):

    - {e pairwise invalidation}: admitting an operation that does {e not}
      commute with an optimistically executed operation of an active
      transaction invalidates that transaction — unless it has already
      executed all its operations, in which case every dependency points
      from it to the newcomer and the assumption still holds;
    - {e structural validation}: the classifier snapshots its private
      DataGuide version for each document a transaction touches; if a
      concurrent admission grew the guide (a structural mutation introduced
      schema paths the admission-time verdicts never saw), the transaction
      aborts rather than trust stale footprints.

    Invalidated transactions abort (a {e validation abort}) and are retried
    by the workload layer like any other abort.

    The classifier owns a private analyzer over cloned documents; it never
    shares state with the sites it classifies for. *)

type t

val create :
  protocol:Dtx_protocol.Protocol.kind -> docs:Dtx_xml.Doc.t list -> t
(** Build the classifier over the cluster's placement documents (deep
    cloned; the analyzer instance is private). *)

val admit : t -> txn:int -> ops:(string * Dtx_update.Op.t) array -> bool array
(** Classify a submitting transaction against every active one and register
    it. Returns the per-operation optimistic flags (a copy). May invalidate
    active transactions whose optimistic assumption this admission
    breaks. *)

val invalidated : t -> txn:int -> string option
(** The invalidation reason, if a later admission broke this transaction's
    optimistic assumption — the coordinator polls this to abort early
    instead of finishing doomed work. *)

val note_all_executed : t -> txn:int -> unit
(** Mark that the transaction executed all its operations (it is entering
    its end protocol): from now on a conflicting admission no longer
    invalidates it. *)

val validate : t -> txn:int -> (unit, string) result
(** The prepare-time validation step: [Error reason] if the transaction was
    pairwise-invalidated or a touched document's DataGuide advanced past
    its admission snapshot. *)

val remove : t -> txn:int -> unit
(** Drop the transaction from the active set (at finalize, whatever the
    outcome). *)

val active_count : t -> int
