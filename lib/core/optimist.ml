module Cr = Dtx_protocol.Commute_rules

(* One active transaction as the classifier sees it. *)
type entry = {
  e_prepared : Cr.prepared array;  (* per-op footprints, derived at admit *)
  e_flags : bool array;  (* per-op: shipped with the optimistic flag *)
  e_guides : (string * int) list;
      (* analyzer DataGuide version per touched doc, sampled after this
         transaction's own prepare pass (so its own insert-target growth is
         part of the baseline) *)
  mutable e_executed_all : bool;
  mutable e_invalidated : string option;
}

type t = {
  analyzer : Cr.t;
  active : (int, entry) Hashtbl.t;
}

let create ~protocol ~docs =
  { analyzer = Cr.create_of_docs ~protocol ~docs;
    active = Hashtbl.create 64 }

let admit t ~txn ~ops =
  let ps = Cr.prepare t.analyzer ops in
  let flags = Array.make (Array.length ps) true in
  (* An operation ships optimistically only if it commutes with {e every}
     operation of {e every} concurrently active transaction — whether that
     operation ran optimistically or under full locks: a lock-skipping read
     must not slide under a pessimistic writer's exclusive lock either.
     Conversely, an active transaction that already executed operations
     without full locks is invalidated by a conflicting newcomer {e unless}
     it has executed everything: then all its accesses precede all of the
     newcomer's, the dependency can only point old -> new, and its
     optimistic assumption still holds. *)
  Hashtbl.iter
    (fun other (e : entry) ->
      Array.iteri
        (fun i p ->
          Array.iteri
            (fun j q ->
              match Cr.decide_prepared t.analyzer q p with
              | Cr.Commutes -> ()
              | Cr.Conflicts | Cr.Unknown ->
                flags.(i) <- false;
                if
                  e.e_flags.(j) && (not e.e_executed_all)
                  && e.e_invalidated = None
                then
                  e.e_invalidated <-
                    Some
                      (Printf.sprintf
                         "operation of t%d conflicts with an optimistically \
                          executed operation of t%d"
                         txn other))
            e.e_prepared)
        ps)
    t.active;
  (* Mirror this transaction's updates onto the analyzer replica {e before}
     snapshotting guide versions: its own insert-target growth is part of
     its baseline, while any {e later} admission's structural growth
     advances past the snapshot and fails validation. *)
  Array.iter (fun (doc, op) -> Cr.apply_structural t.analyzer ~doc op) ops;
  let touched =
    List.sort_uniq compare
      (Array.to_list (Array.map Cr.prepared_doc ps))
  in
  let e_guides =
    List.map (fun d -> (d, Cr.guide_version t.analyzer d)) touched
  in
  Hashtbl.replace t.active txn
    { e_prepared = ps; e_flags = flags; e_guides;
      e_executed_all = false; e_invalidated = None };
  Array.copy flags

let invalidated t ~txn =
  match Hashtbl.find_opt t.active txn with
  | Some e -> e.e_invalidated
  | None -> None

let note_all_executed t ~txn =
  match Hashtbl.find_opt t.active txn with
  | Some e -> e.e_executed_all <- true
  | None -> ()

let validate t ~txn =
  match Hashtbl.find_opt t.active txn with
  | None -> Ok ()
  | Some e -> (
    match e.e_invalidated with
    | Some reason -> Error reason
    | None ->
      if
        Array.exists (fun f -> f) e.e_flags
        && List.exists
             (fun (d, v) -> Cr.guide_version t.analyzer d > v)
             e.e_guides
      then
        Error
          "a concurrent structural mutation advanced the DataGuide past \
           this transaction's admission snapshot"
      else Ok ())

let remove t ~txn = Hashtbl.remove t.active txn

let active_count t = Hashtbl.length t.active
