module Protocol = Dtx_protocol.Protocol
module Mode = Dtx_locks.Mode
module Table = Dtx_locks.Table
module Wfg = Dtx_locks.Wfg
module Storage = Dtx_storage.Storage
module Doc = Dtx_xml.Doc
module Op = Dtx_update.Op
module Exec = Dtx_update.Exec

type deadlock_policy = Detection | Wait_die | Wound_wait

type op_outcome =
  | Granted of { lock_requests : int; touched : int; result_nodes : int }
  | Blocked of { lock_requests : int; blockers : int list; wound : int list }
  | Deadlock of { lock_requests : int }
  | Op_failed of string

type waiter = {
  waiting_txn : int;
  waiting_coordinator : int;
}

type stats = {
  mutable ops_processed : int;
  mutable lock_requests : int;
  mutable blocked_ops : int;
  mutable local_deadlocks : int;
}

type t = {
  id : int;
  protocol : Protocol.t;
  deadlock_policy : deadlock_policy;
  table : Table.t;
  wfg : Wfg.t;
  storage : Storage.t;
  op_effects : (int * int, op_effect) Hashtbl.t;
  txn_ops : (int, int list ref) Hashtbl.t;
  waiters : (int, waiter list ref) Hashtbl.t;
  txn_coords : (int, int) Hashtbl.t;
  mutable busy_until : float;
  stats : stats;
  mutable access_sink :
    (txn:int -> op_index:int -> attempt:int ->
     (Table.resource * Dtx_locks.Mode.t) list -> unit)
    option;
  mutable undo_sink : (txn:int -> op_index:int -> attempt:int -> unit) option;
  wal : Wal.t;
}

and op_effect = {
  eff_doc : string;
  eff_op : Op.t;
  eff_attempt : int;
  eff_requests : (Table.resource * Dtx_locks.Mode.t) list;
  eff_undo : Exec.undo_entry list;
  eff_touched : int;
}

let create ~id ~protocol_kind ?(deadlock_policy = Detection) ~storage ~docs () =
  let protocol = Protocol.create protocol_kind in
  List.iter
    (fun doc ->
      let replica = Doc.clone doc in
      (* Warm the process-global doc-symbol table here, on the main
         domain, so the first lock request for this replica — possibly on
         a worker domain during a parallel tick — never grows it. *)
      Table.preintern_doc replica.Doc.name;
      Protocol.add_doc protocol replica;
      Storage.store storage replica)
    docs;
  { id;
    protocol;
    deadlock_policy;
    table = Table.create ();
    wfg = Wfg.create ();
    storage;
    op_effects = Hashtbl.create 64;
    txn_ops = Hashtbl.create 32;
    waiters = Hashtbl.create 32;
    txn_coords = Hashtbl.create 32;
    busy_until = 0.0;
    stats =
      { ops_processed = 0; lock_requests = 0; blocked_ops = 0;
        local_deadlocks = 0 };
    access_sink = None;
    undo_sink = None;
    wal = Wal.create () }

let has_doc t name = Protocol.doc t.protocol name <> None

let note_txn_op t ~txn ~op_index =
  match Hashtbl.find_opt t.txn_ops txn with
  | Some l -> l := op_index :: !l
  | None -> Hashtbl.replace t.txn_ops txn (ref [ op_index ])

let undo_effect t ~txn ~op_index (eff : op_effect) =
  (match t.undo_sink with
   | Some sink -> sink ~txn ~op_index ~attempt:eff.eff_attempt
   | None -> ());
  (match Protocol.doc t.protocol eff.eff_doc with
   | Some doc ->
     let dg = Exec.undo doc eff.eff_undo in
     Protocol.note_applied t.protocol ~doc:eff.eff_doc dg
   | None -> ());
  Table.release_request t.table ~txn eff.eff_requests;
  Hashtbl.remove t.op_effects (txn, op_index);
  match Hashtbl.find_opt t.txn_ops txn with
  | Some l -> l := List.filter (fun i -> i <> op_index) !l
  | None -> ()

(* The Commute protocol's optimistic execution path: the coordinator's
   classifier proved this operation commutes with everything active, so a
   read-only footprint acquires nothing at all and an update footprint is
   downgraded to intention modes (IS/IX are mutually compatible, so
   optimistic transactions never block each other, while IX still collides
   with a pessimistic holder's ST/X — the safety net). The {e full} derived
   footprint is still recorded with the history sink, so the
   serializability checker judges the real access pattern, not the
   downgraded locks. *)
let optimistic_requests op requests =
  if
    (not (Op.is_update op))
    && not (List.exists (fun (_, m) -> Mode.is_exclusive m) requests)
  then []
  else
    List.sort_uniq
      (fun (r1, m1) (r2, m2) ->
        let c = Table.compare_resource r1 r2 in
        if c <> 0 then c else compare m1 m2)
      (List.map (fun (r, m) -> (r, Mode.intention_for m)) requests)

let process_operation_fresh ?(optimistic = false) t ~txn ~op_index ~attempt
    ~doc:doc_name op =
  t.stats.ops_processed <- t.stats.ops_processed + 1;
  (* A transaction runs one operation at a time, so any of its previous wait
     edges here are stale (it was woken, or this is another attempt). *)
  Wfg.clear_waits_of t.wfg txn;
  match Protocol.lock_requests t.protocol ~doc:doc_name op with
  | Error e -> Op_failed e
  | Ok (full_requests, processed) -> (
    let requests =
      if optimistic then optimistic_requests op full_requests
      else full_requests
    in
    (* Optimistic operations are charged only for the locks they actually
       take — the skipped lock-manager work is the protocol's win. *)
    let n_requests = if optimistic then List.length requests else processed in
    t.stats.lock_requests <- t.stats.lock_requests + n_requests;
    match Table.acquire_all t.table ~txn requests with
    | Error blockers -> (
      t.stats.blocked_ops <- t.stats.blocked_ops + 1;
      match t.deadlock_policy with
      | Detection ->
        Wfg.add_wait t.wfg ~waiter:txn ~holders:blockers;
        if Wfg.find_cycle t.wfg <> None then begin
          t.stats.local_deadlocks <- t.stats.local_deadlocks + 1;
          Deadlock { lock_requests = n_requests }
        end
        else Blocked { lock_requests = n_requests; blockers; wound = [] }
      | Wait_die ->
        (* Ids are ages: smaller id = older. The requester may only wait
           for younger holders; waits therefore always point old -> young,
           so no cycle can ever form. *)
        if List.exists (fun b -> b < txn) blockers then begin
          t.stats.local_deadlocks <- t.stats.local_deadlocks + 1;
          Deadlock { lock_requests = n_requests }
        end
        else begin
          Wfg.add_wait t.wfg ~waiter:txn ~holders:blockers;
          Blocked { lock_requests = n_requests; blockers; wound = [] }
        end
      | Wound_wait ->
        (* The requester wounds younger holders and waits for older ones;
           waits point young -> old, again acyclic. *)
        let wound = List.filter (fun b -> b > txn) blockers in
        let older = List.filter (fun b -> b < txn) blockers in
        Wfg.add_wait t.wfg ~waiter:txn ~holders:older;
        Blocked { lock_requests = n_requests; blockers; wound })
    | Ok () -> (
      let doc =
        match Protocol.doc t.protocol doc_name with
        | Some d -> d
        | None -> assert false (* lock_requests already checked *)
      in
      match Exec.apply doc op with
      | Error e ->
        (* Locks were granted but the operation itself cannot run; give the
           locks back — the transaction will be aborted, not blocked. *)
        Table.release_request t.table ~txn requests;
        Op_failed (Exec.error_to_string e)
      | Ok effect ->
        Protocol.note_applied t.protocol ~doc:doc_name effect.Exec.dg;
        Hashtbl.replace t.op_effects (txn, op_index)
          { eff_doc = doc_name;
            eff_op = op;
            eff_attempt = attempt;
            eff_requests = requests;
            eff_undo = effect.Exec.undo;
            eff_touched = effect.Exec.touched };
        note_txn_op t ~txn ~op_index;
        (match t.access_sink with
         | Some sink -> sink ~txn ~op_index ~attempt full_requests
         | None -> ());
        Granted
          { lock_requests = n_requests;
            touched = effect.Exec.touched;
            result_nodes = effect.Exec.result_count }))

let process_operation ?(optimistic = false) t ~txn ~op_index ~attempt
    ~doc:doc_name op =
  (* A lingering effect from an earlier attempt means the cross-site undo
     message has not landed yet (the coordinator already decided to retry);
     reverse it before re-executing so effects never double-apply. *)
  (match Hashtbl.find_opt t.op_effects (txn, op_index) with
   | Some eff -> undo_effect t ~txn ~op_index eff
   | None -> ());
  process_operation_fresh ~optimistic t ~txn ~op_index ~attempt ~doc:doc_name
    op

let undo_operation ?only_attempt t ~txn ~op_index =
  match Hashtbl.find_opt t.op_effects (txn, op_index) with
  | None -> ()
  | Some eff ->
    let matches =
      match only_attempt with None -> true | Some a -> a = eff.eff_attempt
    in
    if matches then undo_effect t ~txn ~op_index eff

let register_waiter t ~blocker w =
  match Hashtbl.find_opt t.waiters blocker with
  | Some l ->
    if
      not
        (List.exists
           (fun w' ->
             w'.waiting_txn = w.waiting_txn
             && w'.waiting_coordinator = w.waiting_coordinator)
           !l)
    then l := w :: !l
  | None -> Hashtbl.replace t.waiters blocker (ref [ w ])

let take_waiters t ~blocker =
  match Hashtbl.find_opt t.waiters blocker with
  | Some l ->
    Hashtbl.remove t.waiters blocker;
    !l
  | None -> []

let txn_docs_touched t ~txn =
  match Hashtbl.find_opt t.txn_ops txn with
  | None -> []
  | Some l ->
    List.filter_map
      (fun op_index ->
        match Hashtbl.find_opt t.op_effects (txn, op_index) with
        | Some eff when eff.eff_undo <> [] -> Some eff.eff_doc
        | _ -> None)
      !l
    |> List.sort_uniq compare

(* The redo list a Prepared WAL record carries: this transaction's update
   operations here, oldest first, in their wire (textual) form. Queries are
   omitted — replaying them would change nothing. *)
let txn_redo t ~txn =
  match Hashtbl.find_opt t.txn_ops txn with
  | None -> []
  | Some l ->
    List.rev !l
    |> List.filter_map (fun op_index ->
        match Hashtbl.find_opt t.op_effects (txn, op_index) with
        | Some eff when eff.eff_undo <> [] ->
          Some (eff.eff_doc, Op.to_string eff.eff_op)
        | _ -> None)

(* Recovery commit: the volatile effects died with the crash, so re-apply
   the durable redo list against the recovered (last-committed) replicas
   and persist the result — the write-back the lost commit would have
   done. *)
let replay_redo t redo =
  let rec go touched = function
    | [] -> Ok touched
    | (doc_name, op_text) :: rest -> (
      match Protocol.doc t.protocol doc_name with
      | None -> Error (Printf.sprintf "redo: no replica of %s" doc_name)
      | Some doc -> (
        match Op.parse op_text with
        | Error e -> Error (Printf.sprintf "redo: bad operation %S: %s" op_text e)
        | Ok op -> (
          match Exec.apply doc op with
          | Error e ->
            Error
              (Printf.sprintf "redo: %s failed: %s" op_text
                 (Exec.error_to_string e))
          | Ok effect ->
            Protocol.note_applied t.protocol ~doc:doc_name effect.Exec.dg;
            go (List.sort_uniq compare (doc_name :: touched)) rest)))
  in
  match go [] redo with
  | Error _ as e -> e
  | Ok touched ->
    List.iter
      (fun doc_name ->
        match Protocol.doc t.protocol doc_name with
        | Some doc -> Storage.store t.storage doc
        | None -> ())
      touched;
    Ok touched

let txn_touched_total t ~txn =
  match Hashtbl.find_opt t.txn_ops txn with
  | None -> 0
  | Some l ->
    List.fold_left
      (fun acc op_index ->
        match Hashtbl.find_opt t.op_effects (txn, op_index) with
        | Some eff when eff.eff_undo <> [] -> acc + eff.eff_touched
        | _ -> acc)
      0 !l

let finish_txn t ~txn ~commit =
  (* Abort: undo this transaction's operations here, newest first
     (Alg. 6 participant side). Commit: write updated documents back to the
     store (Alg. 5 l. 10). *)
  let ops = match Hashtbl.find_opt t.txn_ops txn with Some l -> !l | None -> [] in
  if commit then
    List.iter
      (fun doc_name ->
        match Protocol.doc t.protocol doc_name with
        | Some doc -> Storage.store t.storage doc
        | None -> ())
      (txn_docs_touched t ~txn)
  else
    List.iter (fun op_index -> undo_operation t ~txn ~op_index) ops;
  (* Strict 2PL: everything releases at the end, in both outcomes. *)
  ignore (Table.release_txn t.table ~txn);
  List.iter (fun op_index -> Hashtbl.remove t.op_effects (txn, op_index)) ops;
  Hashtbl.remove t.txn_ops txn;
  Hashtbl.remove t.txn_coords txn;
  Wfg.remove_txn t.wfg txn;
  take_waiters t ~blocker:txn

let note_coordinator t ~txn ~coordinator =
  Hashtbl.replace t.txn_coords txn coordinator

let coordinator_of t ~txn = Hashtbl.find_opt t.txn_coords txn

let wfg_snapshot t = Wfg.copy t.wfg

let wipe_volatile t =
  (* A fresh protocol instance with no documents stands in for lost memory;
     recover_from_storage repopulates it. *)
  List.iter
    (fun name -> Protocol.add_doc t.protocol (Doc.create ~name ~root_label:"#lost"))
    (Protocol.docs t.protocol);
  Table.clear t.table;
  Wfg.clear t.wfg;
  Hashtbl.reset t.op_effects;
  Hashtbl.reset t.txn_ops;
  Hashtbl.reset t.waiters;
  Hashtbl.reset t.txn_coords;
  t.busy_until <- 0.0

let recover_from_storage t =
  List.iter
    (fun name ->
      match Storage.load t.storage name with
      | Some doc -> Protocol.add_doc t.protocol doc
      | None -> ())
    (Storage.list t.storage)
