module Sim = Dtx_sim.Sim
module Net = Dtx_net.Net
module Msg = Dtx_net.Msg

type event =
  | Undone of { txn : int; op_index : int; attempt : int }
  | Prepared of { txn : int }
  | Finished of { txn : int; committed : bool }

let pp_event ppf = function
  | Undone { txn; op_index; attempt } ->
    Format.fprintf ppf "t%d op%d undone (attempt %d)" txn op_index attempt
  | Prepared { txn } -> Format.fprintf ppf "t%d logged Prepared" txn
  | Finished { txn; committed } ->
    Format.fprintf ppf "t%d finished locally (%s)" txn
      (if committed then "commit" else "abort")

type ctx = {
  sim : Sim.t;
  net : Net.t;
  cost : Cost.t;
  site : Site.t;
  two_phase : bool;
  site_failed : unit -> bool;
  txn_live : txn:int -> attempt:int -> bool;
  mutable tracer : (event -> unit) option;
}

let emit ctx ev =
  match ctx.tracer with Some tr -> tr ev | None -> ()

(* Serialize heavy work on the site's scheduler: run [k] once the site is
   free; [k] must set [busy_until] itself (via [charge]). *)
let rec on_site_free ctx k =
  let now = Sim.now ctx.sim in
  if now >= ctx.site.Site.busy_until then k ()
  else
    ignore
      (Sim.schedule_at ctx.sim ~time:ctx.site.Site.busy_until (fun () ->
           on_site_free ctx k))

let charge ctx cost = ctx.site.Site.busy_until <- Sim.now ctx.sim +. cost

let reply ctx ~dst ?reliable msg = Net.dispatch ctx.net ~src:ctx.site.Site.id ~dst ?reliable msg

let wake_waiters ctx waiters =
  List.iter
    (fun (w : Site.waiter) ->
      reply ctx ~dst:w.Site.waiting_coordinator
        (Msg.Wake { txn = w.Site.waiting_txn }))
    waiters

(* Algorithm 2: run a shipment of operations through the local LockManager
   and report how far it got. *)
let handle_op_ship ctx ~src ~txn ~attempt ops =
  let status ~granted ~result_nodes st =
    Msg.Op_status
      { txn; attempt; granted; status = st;
        result_bytes = result_nodes * ctx.cost.Cost.result_bytes_per_node }
  in
  if ctx.site_failed () then
    reply ctx ~dst:src ~reliable:false
      (status ~granted:0 ~result_nodes:0 (Msg.Failed "site unavailable"))
  else
    on_site_free ctx (fun () ->
        if not (ctx.txn_live ~txn ~attempt) then
          reply ctx ~dst:src ~reliable:false
            (status ~granted:0 ~result_nodes:0 (Msg.Failed "transaction ended"))
        else begin
          Site.note_coordinator ctx.site ~txn ~coordinator:src;
          let c = ctx.cost in
          (* Execute in shipment order, stopping at the first operation the
             LockManager does not grant; the granted prefix keeps its locks
             and effects (the coordinator advances past it). *)
          let rec go todo granted work result_nodes =
            match todo with
            | [] -> (granted, work, result_nodes, Msg.Granted)
            | (s : Msg.shipment) :: rest -> (
              let outcome =
                Site.process_operation ctx.site ~txn ~op_index:s.Msg.s_index
                  ~attempt ~doc:s.Msg.s_doc s.Msg.s_op
              in
              match outcome with
              | Site.Granted { lock_requests; touched; result_nodes = rn } ->
                let work =
                  work +. c.Cost.sched_ms
                  +. (float_of_int lock_requests *. c.Cost.lock_request_ms)
                  +. (float_of_int touched *. c.Cost.node_touch_ms)
                in
                go rest (granted + 1) work (result_nodes + rn)
              | Site.Blocked { lock_requests; blockers; wound } ->
                List.iter
                  (fun b ->
                    Site.register_waiter ctx.site ~blocker:b
                      { Site.waiting_txn = txn; waiting_coordinator = src })
                  blockers;
                (* Wound-wait: tell each younger holder's coordinator to
                   abort it; the requester's wake arrives when their locks
                   release. *)
                List.iter
                  (fun victim ->
                    match Site.coordinator_of ctx.site ~txn:victim with
                    | Some coord -> reply ctx ~dst:coord (Msg.Wound { txn = victim })
                    | None -> ())
                  wound;
                ( granted,
                  work +. c.Cost.sched_ms
                  +. (float_of_int lock_requests *. c.Cost.lock_request_ms),
                  result_nodes, Msg.Blocked )
              | Site.Deadlock { lock_requests } ->
                ( granted,
                  work +. c.Cost.sched_ms
                  +. (float_of_int lock_requests *. c.Cost.lock_request_ms),
                  result_nodes, Msg.Deadlock )
              | Site.Op_failed msg ->
                (granted, work +. c.Cost.sched_ms, result_nodes, Msg.Failed msg))
          in
          let granted, work, result_nodes, st = go ops 0 0.0 0 in
          charge ctx work;
          ignore
            (Sim.schedule ctx.sim ~delay:work (fun () ->
                 reply ctx ~dst:src ~reliable:false
                   (status ~granted ~result_nodes st)))
        end)

(* Alg. 1 l. 16: reverse one operation; its released locks may already
   unblock a waiter. *)
let handle_op_undo ctx ~txn ~op_index ~attempt =
  on_site_free ctx (fun () ->
      Site.undo_operation ~only_attempt:attempt ctx.site ~txn ~op_index;
      emit ctx (Undone { txn; op_index; attempt });
      charge ctx ctx.cost.Cost.sched_ms;
      wake_waiters ctx (Site.take_waiters ctx.site ~blocker:txn))

(* 2PC phase one: durably log Prepared before voting yes. *)
let handle_prepare ctx ~src ~txn =
  if ctx.site_failed () then reply ctx ~dst:src (Msg.Vote { txn; ok = false })
  else
    on_site_free ctx (fun () ->
        Wal.append ctx.site.Site.wal
          (Wal.Prepared { txn; time = Sim.now ctx.sim });
        emit ctx (Prepared { txn });
        let work = ctx.cost.Cost.sched_ms in
        charge ctx work;
        ignore
          (Sim.schedule ctx.sim ~delay:work (fun () ->
               reply ctx ~dst:src (Msg.Vote { txn; ok = true }))))

(* Algorithms 5/6 participant side: persist or undo, release locks, wake
   waiters, acknowledge. *)
let handle_end ctx ~src ~txn ~commit =
  if ctx.site_failed () then
    (* "the message sent to the site is not served" (Alg. 5 l. 5 / 6 l. 5) *)
    reply ctx ~dst:src (Msg.End_ack { txn; ok = false })
  else
    on_site_free ctx (fun () ->
        let touched = Site.txn_touched_total ctx.site ~txn in
        let waiters = Site.finish_txn ctx.site ~txn ~commit in
        emit ctx (Finished { txn; committed = commit });
        (* The outcome record follows the DataManager write-back, so the
           durable store and the log can never disagree (see Wal). *)
        if ctx.two_phase then
          Wal.append ctx.site.Site.wal
            (if commit then Wal.Committed { txn; time = Sim.now ctx.sim }
             else Wal.Aborted { txn; time = Sim.now ctx.sim });
        let c = ctx.cost in
        let work =
          c.Cost.sched_ms
          +.
          if commit then float_of_int touched *. c.Cost.persist_node_ms
          else float_of_int touched *. c.Cost.node_touch_ms
        in
        charge ctx work;
        wake_waiters ctx waiters;
        ignore
          (Sim.schedule ctx.sim ~delay:work (fun () ->
               reply ctx ~dst:src (Msg.End_ack { txn; ok = true }))))

(* Alg. 6 l. 6-9: the best-effort "fail everywhere" broadcast — release
   whatever this site holds, wake nobody, acknowledge nothing. *)
let handle_quiet_abort ctx ~txn =
  ignore (Site.finish_txn ctx.site ~txn ~commit:false);
  emit ctx (Finished { txn; committed = false })

let handle_wfg_request ctx ~src =
  let snap = Site.wfg_snapshot ctx.site in
  reply ctx ~dst:src (Msg.Wfg_reply { edges = Dtx_locks.Wfg.edges snap })

let handle ctx ~src (msg : Msg.t) =
  match msg with
  | Msg.Op_ship { txn; attempt; ops } -> handle_op_ship ctx ~src ~txn ~attempt ops
  | Msg.Op_undo { txn; op_index; attempt } -> handle_op_undo ctx ~txn ~op_index ~attempt
  | Msg.Prepare { txn } -> handle_prepare ctx ~src ~txn
  | Msg.Commit { txn } -> handle_end ctx ~src ~txn ~commit:true
  | Msg.Abort { txn; quiet = false } -> handle_end ctx ~src ~txn ~commit:false
  | Msg.Abort { txn; quiet = true } -> handle_quiet_abort ctx ~txn
  | Msg.Wfg_request -> handle_wfg_request ctx ~src
  | Msg.Op_status _ | Msg.Vote _ | Msg.End_ack _ | Msg.Wake _ | Msg.Wound _
  | Msg.Victim _ | Msg.Wfg_reply _ ->
    (* coordinator-bound: not ours *)
    ()
