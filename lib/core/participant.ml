module Sim = Dtx_sim.Sim
module Net = Dtx_net.Net
module Msg = Dtx_net.Msg

type event =
  | Undone of { txn : int; op_index : int; attempt : int }
  | Prepared of { txn : int }
  | Finished of { txn : int; committed : bool }
  | Executed of { txn : int; seq : int }
  | Crashed
  | Restarted
  | Recovery_begun of { in_doubt : int list }
  | Recovery_resolved of { txn : int; committed : bool }

let pp_event ppf = function
  | Undone { txn; op_index; attempt } ->
    Format.fprintf ppf "t%d op%d undone (attempt %d)" txn op_index attempt
  | Prepared { txn } -> Format.fprintf ppf "t%d logged Prepared" txn
  | Finished { txn; committed } ->
    Format.fprintf ppf "t%d finished locally (%s)" txn
      (if committed then "commit" else "abort")
  | Executed { txn; seq } ->
    Format.fprintf ppf "t%d shipment s%d executed" txn seq
  | Crashed -> Format.fprintf ppf "crashed (volatile state lost)"
  | Restarted -> Format.fprintf ppf "restarted"
  | Recovery_begun { in_doubt } ->
    Format.fprintf ppf "recovery begun (in doubt:%s)"
      (String.concat ""
         (List.map (fun t -> Printf.sprintf " t%d" t) in_doubt))
  | Recovery_resolved { txn; committed } ->
    Format.fprintf ppf "t%d resolved by recovery (%s)" txn
      (if committed then "commit" else "abort")

type ctx = {
  sim : Sim.t;
  net : Net.t;
  cost : Cost.t;
  site : Site.t;
  two_phase : bool;
  site_failed : unit -> bool;
  txn_live : txn:int -> attempt:int -> bool;
  retransmit_ms : float option;
  replies : (int * int, Msg.t option) Hashtbl.t;
  txn_seqs : (int, int list ref) Hashtbl.t;
  ended : (int, bool) Hashtbl.t;
  recovering : (int, unit) Hashtbl.t;
  mutable tracer : (event -> unit) option;
}

let emit ctx ev =
  match ctx.tracer with Some tr -> tr ev | None -> ()

(* Serialize heavy work on the site's scheduler: run [k] once the site is
   free; [k] must set [busy_until] itself (via [charge]). *)
let rec on_site_free ctx k =
  let now = Sim.now ctx.sim in
  if now >= ctx.site.Site.busy_until then k ()
  else
    ignore
      (Sim.schedule_at ctx.sim ~site:ctx.site.Site.id
         ~time:ctx.site.Site.busy_until (fun () ->
           on_site_free ctx k))

let charge ctx cost = ctx.site.Site.busy_until <- Sim.now ctx.sim +. cost

let reply ctx ~dst ?channel msg =
  Net.dispatch ctx.net ~src:ctx.site.Site.id ~dst ?channel msg

let wake_waiters ctx waiters =
  List.iter
    (fun (w : Site.waiter) ->
      reply ctx ~dst:w.Site.waiting_coordinator
        (Msg.Wake { txn = w.Site.waiting_txn }))
    waiters

(* At-most-once bookkeeping: remember the final reply of each (txn, seq)
   shipment so a retransmitted or duplicated copy is answered from the
   cache instead of re-executed. *)
let cache_start ctx ~txn ~seq =
  Hashtbl.replace ctx.replies (txn, seq) None;
  let l =
    match Hashtbl.find_opt ctx.txn_seqs txn with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace ctx.txn_seqs txn l;
      l
  in
  l := seq :: !l

let cache_reply ctx ~txn ~seq msg = Hashtbl.replace ctx.replies (txn, seq) (Some msg)

let forget_txn ctx ~txn =
  (match Hashtbl.find_opt ctx.txn_seqs txn with
   | Some l -> List.iter (fun seq -> Hashtbl.remove ctx.replies (txn, seq)) !l
   | None -> ());
  Hashtbl.remove ctx.txn_seqs txn

(* Algorithm 2: run a shipment of operations through the local LockManager
   and report how far it got. Replies ride the unreliable channel; the
   coordinator retransmits, and the (txn, seq) cache makes that safe. *)
let handle_op_ship ctx ~src ~txn ~attempt ~seq ops =
  let status ~granted ~result_nodes st =
    Msg.Op_status
      { txn; attempt; seq; granted; status = st;
        result_bytes = result_nodes * ctx.cost.Cost.result_bytes_per_node }
  in
  if ctx.site_failed () then
    reply ctx ~dst:src ~channel:Unreliable
      (status ~granted:0 ~result_nodes:0 (Msg.Failed "site unavailable"))
  else
    match Hashtbl.find_opt ctx.replies (txn, seq) with
    | Some None -> () (* still executing; the pending reply covers this copy *)
    | Some (Some r) -> reply ctx ~dst:src ~channel:Unreliable r
    | None ->
      if Hashtbl.length ctx.recovering > 0 then
        (* In-doubt transactions still hold durable promises here; refuse
           new work until every one is resolved (reply left uncached so a
           post-recovery retransmission succeeds). *)
        reply ctx ~dst:src ~channel:Unreliable
          (status ~granted:0 ~result_nodes:0 (Msg.Failed "recovering"))
      else begin
        cache_start ctx ~txn ~seq;
        on_site_free ctx (fun () ->
            if not (ctx.txn_live ~txn ~attempt) then begin
              let r = status ~granted:0 ~result_nodes:0 (Msg.Failed "transaction ended") in
              cache_reply ctx ~txn ~seq r;
              reply ctx ~dst:src ~channel:Unreliable r
            end
            else begin
              Site.note_coordinator ctx.site ~txn ~coordinator:src;
              emit ctx (Executed { txn; seq });
              let c = ctx.cost in
              (* Execute in shipment order, stopping at the first operation the
                 LockManager does not grant; the granted prefix keeps its locks
                 and effects (the coordinator advances past it). *)
              let rec go todo granted work result_nodes =
                match todo with
                | [] -> (granted, work, result_nodes, Msg.Granted)
                | (s : Msg.shipment) :: rest -> (
                  let outcome =
                    Site.process_operation ~optimistic:s.Msg.s_optimistic
                      ctx.site ~txn ~op_index:s.Msg.s_index ~attempt
                      ~doc:s.Msg.s_doc s.Msg.s_op
                  in
                  match outcome with
                  | Site.Granted { lock_requests; touched; result_nodes = rn } ->
                    let work =
                      work +. c.Cost.sched_ms
                      +. (float_of_int lock_requests *. c.Cost.lock_request_ms)
                      +. (float_of_int touched *. c.Cost.node_touch_ms)
                    in
                    go rest (granted + 1) work (result_nodes + rn)
                  | Site.Blocked { lock_requests; blockers; wound } ->
                    List.iter
                      (fun b ->
                        Site.register_waiter ctx.site ~blocker:b
                          { Site.waiting_txn = txn; waiting_coordinator = src })
                      blockers;
                    (* Wound-wait: tell each younger holder's coordinator to
                       abort it; the requester's wake arrives when their locks
                       release. *)
                    List.iter
                      (fun victim ->
                        match Site.coordinator_of ctx.site ~txn:victim with
                        | Some coord -> reply ctx ~dst:coord (Msg.Wound { txn = victim })
                        | None -> ())
                      wound;
                    ( granted,
                      work +. c.Cost.sched_ms
                      +. (float_of_int lock_requests *. c.Cost.lock_request_ms),
                      result_nodes, Msg.Blocked )
                  | Site.Deadlock { lock_requests } ->
                    ( granted,
                      work +. c.Cost.sched_ms
                      +. (float_of_int lock_requests *. c.Cost.lock_request_ms),
                      result_nodes, Msg.Deadlock )
                  | Site.Op_failed msg ->
                    (granted, work +. c.Cost.sched_ms, result_nodes, Msg.Failed msg))
              in
              let granted, work, result_nodes, st = go ops 0 0.0 0 in
              charge ctx work;
              ignore
                (Sim.schedule ctx.sim ~site:ctx.site.Site.id ~delay:work (fun () ->
                     let r = status ~granted ~result_nodes st in
                     cache_reply ctx ~txn ~seq r;
                     reply ctx ~dst:src ~channel:Unreliable r))
            end)
      end

(* Alg. 1 l. 16: reverse one operation; its released locks may already
   unblock a waiter. *)
let handle_op_undo ctx ~txn ~op_index ~attempt =
  on_site_free ctx (fun () ->
      Site.undo_operation ~only_attempt:attempt ctx.site ~txn ~op_index;
      emit ctx (Undone { txn; op_index; attempt });
      charge ctx ctx.cost.Cost.sched_ms;
      wake_waiters ctx (Site.take_waiters ctx.site ~blocker:txn))

(* 2PC phase one: durably log Prepared before voting yes. The record
   carries the coordinator and the redo list, so the yes vote survives a
   crash (see Wal). A duplicated Prepare re-votes from the WAL instead of
   logging twice. *)
let handle_prepare ctx ~src ~txn =
  if ctx.site_failed () then reply ctx ~dst:src (Msg.Vote { txn; ok = false })
  else
    match Wal.outcome_of ctx.site.Site.wal txn with
    | `In_doubt | `Committed -> reply ctx ~dst:src (Msg.Vote { txn; ok = true })
    | `Aborted -> reply ctx ~dst:src (Msg.Vote { txn; ok = false })
    | `Unknown ->
      if Site.coordinator_of ctx.site ~txn = None then
        (* No trace of this transaction — its execution died in a crash
           before anything was logged. A yes vote would promise a redo we
           do not have, so refuse and let the coordinator abort. *)
        reply ctx ~dst:src (Msg.Vote { txn; ok = false })
      else
      on_site_free ctx (fun () ->
          Wal.append ctx.site.Site.wal
            (Wal.Prepared
               { txn; time = Sim.now ctx.sim; coord = src;
                 redo = Site.txn_redo ctx.site ~txn });
          emit ctx (Prepared { txn });
          let work = ctx.cost.Cost.sched_ms in
          charge ctx work;
          ignore
            (Sim.schedule ctx.sim ~site:ctx.site.Site.id ~delay:work (fun () ->
                 reply ctx ~dst:src (Msg.Vote { txn; ok = true }))))

(* Resolve one in-doubt transaction from its durable Prepared record: a
   committed outcome replays the redo list against the recovered store (the
   volatile effects died with the crash); an aborted — or unknown, i.e.
   presumed-abort — outcome just records Aborted, since nothing uncommitted
   ever reached the store. *)
let resolve_in_doubt ctx ~txn ~committed =
  Hashtbl.remove ctx.recovering txn;
  let wal = ctx.site.Site.wal in
  if committed then begin
    (match Wal.prepared_record wal txn with
     | Some (_, redo) -> (
       match Site.replay_redo ctx.site redo with
       | Ok _ -> ()
       | Error e -> failwith (Printf.sprintf "site %d: %s" ctx.site.Site.id e))
     | None -> ());
    Wal.append wal (Wal.Committed { txn; time = Sim.now ctx.sim })
  end
  else Wal.append wal (Wal.Aborted { txn; time = Sim.now ctx.sim });
  Hashtbl.replace ctx.ended txn committed;
  emit ctx (Recovery_resolved { txn; committed });
  emit ctx (Finished { txn; committed })

(* Algorithms 5/6 participant side: persist or undo, release locks, wake
   waiters, acknowledge. Idempotent: a retransmitted Commit/Abort for an
   already-ended transaction is re-acknowledged without re-applying, and one
   arriving at a restarted site resolves the in-doubt record by replay. *)
let handle_end ctx ~src ~txn ~commit =
  if ctx.site_failed () then
    (* "the message sent to the site is not served" (Alg. 5 l. 5 / 6 l. 5) *)
    reply ctx ~dst:src (Msg.End_ack { txn; ok = false })
  else if Hashtbl.mem ctx.ended txn then
    reply ctx ~dst:src (Msg.End_ack { txn; ok = true })
  else if Hashtbl.mem ctx.recovering txn then begin
    resolve_in_doubt ctx ~txn ~committed:commit;
    reply ctx ~dst:src (Msg.End_ack { txn; ok = true })
  end
  else
    on_site_free ctx (fun () ->
        if Hashtbl.mem ctx.ended txn then
          reply ctx ~dst:src (Msg.End_ack { txn; ok = true })
        else begin
        let touched = Site.txn_touched_total ctx.site ~txn in
        let waiters = Site.finish_txn ctx.site ~txn ~commit in
        Hashtbl.replace ctx.ended txn commit;
        forget_txn ctx ~txn;
        emit ctx (Finished { txn; committed = commit });
        (* The outcome record follows the DataManager write-back, so the
           durable store and the log can never disagree (see Wal). *)
        if ctx.two_phase then
          Wal.append ctx.site.Site.wal
            (if commit then Wal.Committed { txn; time = Sim.now ctx.sim }
             else Wal.Aborted { txn; time = Sim.now ctx.sim });
        let c = ctx.cost in
        let work =
          c.Cost.sched_ms
          +.
          if commit then float_of_int touched *. c.Cost.persist_node_ms
          else float_of_int touched *. c.Cost.node_touch_ms
        in
        charge ctx work;
        wake_waiters ctx waiters;
        ignore
          (Sim.schedule ctx.sim ~site:ctx.site.Site.id ~delay:work (fun () ->
               reply ctx ~dst:src (Msg.End_ack { txn; ok = true })))
        end)

(* Alg. 6 l. 6-9: the best-effort "fail everywhere" broadcast — release
   whatever this site holds, wake nobody, acknowledge nothing. *)
let handle_quiet_abort ctx ~txn =
  if not (Hashtbl.mem ctx.ended txn) then begin
    ignore (Site.finish_txn ctx.site ~txn ~commit:false);
    forget_txn ctx ~txn;
    emit ctx (Finished { txn; committed = false })
  end

let handle_wfg_request ctx ~src =
  let snap = Site.wfg_snapshot ctx.site in
  reply ctx ~dst:src (Msg.Wfg_reply { edges = Dtx_locks.Wfg.edges snap })

let handle_outcome_reply ctx ~txn ~committed =
  if Hashtbl.mem ctx.recovering txn then resolve_in_doubt ctx ~txn ~committed

(* Keep asking the coordinator until the in-doubt transaction resolves (the
   query or its answer may be lost to the very faults that caused the
   crash). Capped: after [max_queries] the answer is presumed abort. *)
let max_queries = 12

let rec query_outcome ctx ~txn ~tries =
  if Hashtbl.mem ctx.recovering txn then
    match Wal.prepared_record ctx.site.Site.wal txn with
    | None -> resolve_in_doubt ctx ~txn ~committed:false
    | Some (coord, _) ->
      if tries >= max_queries then resolve_in_doubt ctx ~txn ~committed:false
      else begin
        reply ctx ~dst:coord ~channel:Unreliable (Msg.Outcome_query { txn });
        match ctx.retransmit_ms with
        | None -> ()
        | Some base ->
          let backoff = base *. Float.of_int (1 lsl min tries 6) in
          ignore
            (Sim.schedule ctx.sim ~site:ctx.site.Site.id ~delay:backoff (fun () ->
                 query_outcome ctx ~txn ~tries:(tries + 1)))
      end

let crash ctx =
  Hashtbl.reset ctx.replies;
  Hashtbl.reset ctx.txn_seqs;
  Hashtbl.reset ctx.ended;
  Hashtbl.reset ctx.recovering;
  emit ctx Crashed

let restart ctx =
  emit ctx Restarted;
  let in_doubt = Wal.in_doubt ctx.site.Site.wal in
  List.iter (fun txn -> Hashtbl.replace ctx.recovering txn ()) in_doubt;
  emit ctx (Recovery_begun { in_doubt });
  List.iter (fun txn -> query_outcome ctx ~txn ~tries:0) in_doubt

let recovering ctx =
  Hashtbl.fold (fun txn () acc -> txn :: acc) ctx.recovering [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Static delivery classification (consumed by Dtx_cert)               *)
(* ------------------------------------------------------------------ *)

(* The participant has no explicit phase field; its observable state is
   derived from the four bookkeeping tables, in precedence order — a
   recovering transaction may also appear in [ended] (once resolved) and a
   live one always has cached seqs. *)
type pstate = P_idle | P_executing | P_ended | P_recovering

let pstate_to_string = function
  | P_idle -> "Idle"
  | P_executing -> "Executing"
  | P_ended -> "Ended"
  | P_recovering -> "Recovering"

let state_of ctx ~txn =
  if Hashtbl.mem ctx.recovering txn then P_recovering
  else if Hashtbl.mem ctx.ended txn then P_ended
  else if Hashtbl.mem ctx.txn_seqs txn then P_executing
  else P_idle

type disposition = Coordinator.disposition =
  | Handled of string
  | Ignored of string
  | Impossible of string

(* The participant's (state x Msg.Kind) table, kept next to [handle] so a
   handler change and its classification are edited together. Most handler
   entry points are deliberately total over the derived state — idempotency
   and the WAL carry the burden — so most rows are [Handled] with the
   state-specific action named. *)
let classify_delivery (state : pstate) (kind : Msg.Kind.t) : disposition =
  let coordinator_bound =
    Impossible "coordinator-bound: Cluster.route delivers to Coordinator"
  in
  match (kind : Msg.Kind.t) with
  | Msg.Kind.Op_status | Msg.Kind.Vote | Msg.Kind.End_ack | Msg.Kind.Wake
  | Msg.Kind.Wound | Msg.Kind.Victim | Msg.Kind.Outcome_query ->
    coordinator_bound
  | Msg.Kind.Wfg_reply ->
    Impossible "detector-bound: Cluster.route delivers to the WFG detector"
  | Msg.Kind.Op_ship -> (
    match state with
    | P_idle -> Handled "handle_op_ship: fresh execution via the LockManager"
    | P_executing ->
      Handled
        "handle_op_ship: (txn, seq) reply cache absorbs duplicates; a new \
         seq executes"
    | P_ended ->
      Handled
        "handle_op_ship: txn_live refuses with Failed \"transaction \
         ended\" (forget_txn wiped the reply cache)"
    | P_recovering ->
      Handled
        "handle_op_ship: refused with Failed \"recovering\", reply \
         uncached so a post-recovery retransmission succeeds")
  | Msg.Kind.Op_undo ->
    Handled
      "handle_op_undo: undo_operation is attempt-guarded and idempotent \
       in every state"
  | Msg.Kind.Prepare -> (
    match state with
    | P_idle | P_executing ->
      Handled "handle_prepare: log Prepared (or refuse if no redo), vote"
    | P_ended | P_recovering ->
      Handled
        "handle_prepare: re-vote from the WAL outcome (In_doubt/Committed \
         -> yes, Aborted -> no) without logging twice")
  | Msg.Kind.Commit | Msg.Kind.Abort -> (
    match state with
    | P_idle | P_executing ->
      Handled "handle_end/handle_quiet_abort: persist or undo, release, ack"
    | P_ended -> Handled "handle_end: re-acknowledge without re-applying"
    | P_recovering ->
      Handled "handle_end: resolve_in_doubt from the durable record, ack")
  | Msg.Kind.Wfg_request ->
    Handled "handle_wfg_request: stateless wait-for-graph snapshot"
  | Msg.Kind.Outcome_reply -> (
    match state with
    | P_recovering ->
      Handled "handle_outcome_reply: resolve_in_doubt with the answer"
    | P_idle | P_executing | P_ended ->
      Ignored
        "late or duplicated recovery answer: handle_outcome_reply only \
         acts while the transaction is in [recovering]")

let handle ctx ~src (msg : Msg.t) =
  match msg with
  | Msg.Op_ship { txn; attempt; seq; ops } ->
    handle_op_ship ctx ~src ~txn ~attempt ~seq ops
  | Msg.Op_undo { txn; op_index; attempt } -> handle_op_undo ctx ~txn ~op_index ~attempt
  | Msg.Prepare { txn } -> handle_prepare ctx ~src ~txn
  | Msg.Commit { txn } -> handle_end ctx ~src ~txn ~commit:true
  | Msg.Abort { txn; quiet = false } -> handle_end ctx ~src ~txn ~commit:false
  | Msg.Abort { txn; quiet = true } -> handle_quiet_abort ctx ~txn
  | Msg.Wfg_request -> handle_wfg_request ctx ~src
  | Msg.Outcome_reply { txn; committed } -> handle_outcome_reply ctx ~txn ~committed
  | Msg.Op_status _ | Msg.Vote _ | Msg.End_ack _ | Msg.Wake _ | Msg.Wound _
  | Msg.Victim _ | Msg.Wfg_reply _ | Msg.Outcome_query _ ->
    (* coordinator-bound: not ours *)
    ()
