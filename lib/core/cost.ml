type t = {
  lock_request_ms : float;
  node_touch_ms : float;
  sched_ms : float;
  persist_node_ms : float;
  result_bytes_per_node : int;
}

let default =
  { lock_request_ms = 0.012;
    node_touch_ms = 0.002;
    sched_ms = 0.05;
    persist_node_ms = 0.001;
    result_bytes_per_node = 64 }

let scaled ?(factor = 1.0) t =
  { t with
    lock_request_ms = t.lock_request_ms *. factor;
    node_touch_ms = t.node_touch_ms *. factor;
    sched_ms = t.sched_ms *. factor;
    persist_node_ms = t.persist_node_ms *. factor }
