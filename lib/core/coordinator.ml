module Sim = Dtx_sim.Sim
module Net = Dtx_net.Net
module Msg = Dtx_net.Msg
module Txn = Dtx_txn.Txn
module Allocation = Dtx_frag.Allocation
module Vec = Dtx_util.Vec

let src = Logs.Src.create "dtx.coordinator" ~doc:"DTX coordinator events"

module Log = (val Logs.src_log src : Logs.LOG)

type commit_protocol = One_phase | Two_phase

type stats = {
  mutable submitted : int;
  mutable committed : int;
  mutable aborted : int;
  mutable failed : int;
  mutable deadlock_aborts : int;
  mutable distributed_deadlocks : int;
  mutable local_deadlocks : int;
  mutable op_undos : int;
  mutable wake_messages : int;
  mutable wounded : int;
  mutable retransmits : int;
  mutable validation_aborts : int;
  mutable last_finish : float;
  response_times : float Vec.t;
  commit_stamps : float Vec.t;
  concurrency_samples : (float * int) Vec.t;
}

let fresh_stats () =
  { submitted = 0; committed = 0; aborted = 0; failed = 0; deadlock_aborts = 0;
    distributed_deadlocks = 0; local_deadlocks = 0; op_undos = 0;
    wake_messages = 0; wounded = 0; retransmits = 0; validation_aborts = 0;
    last_finish = 0.0;
    response_times = Vec.create ();
    commit_stamps = Vec.create (); concurrency_samples = Vec.create () }

(* Why a transaction ended the way it did (drives the deadlock counters). *)
type end_reason =
  | Reason_normal
  | Reason_deadlock
  | Reason_op_failure of string
  | Reason_validation of string

type phase =
  | Executing  (** picking / scheduling the next shipment *)
  | Awaiting_replies  (** a shipment is in flight to [awaiting_site] *)
  | Waiting  (** blocked; resumes on [Wake] *)
  | Preparing  (** 2PC vote round outstanding *)
  | Ending  (** commit/abort fan-out outstanding *)
  | Done

type txn_state = {
  txn : Txn.t;
  on_finish : Txn.t -> unit;
  opt_flags : bool array;
      (** per-operation optimistic flags from {!Optimist.admit}; empty
          outside the Commute protocol *)
  op_sites : int list array;
      (** per-operation replica sites (ascending), resolved from the catalog
          once at submit — the shipping loop never re-derives them *)
  involved : int list;
      (** every site that may hold locks, wait edges or effects for this
          transaction: the replica sites of every document it references plus
          the coordinator, sorted unique; precomputed at submit (the catalog
          is static for the life of a run) *)
  mutable phase : phase;
  mutable attempt : int;  (** shipment-round counter (tags effects/undos) *)
  mutable batch : Txn.op_record list;  (** operations in the current shipment *)
  mutable sites_left : int list;  (** participants still to visit, ascending *)
  mutable sites_done : int list;  (** participants that executed this attempt *)
  mutable awaiting_site : int option;
      (** participant whose status reply is outstanding (timeout guard) *)
  mutable awaiting_seq : int option;
      (** sequence number of the outstanding shipment — a status reply
          carrying any other seq is a stale duplicate and is dropped *)
  mutable wake_pending : bool;
      (** a wake arrived while this attempt was in flight; retry instead of
          sleeping (prevents the lost-wakeup race) *)
  mutable prepared : bool;  (** 2PC: the vote round completed successfully *)
  mutable end_commit : bool;  (** the in-flight end protocol is a commit *)
  mutable pending_sites : int list;
      (** sites whose vote / end-ack is still outstanding in the current
          round; per-site membership makes duplicated replies harmless *)
  mutable round_failed : bool;
  mutable round : int;  (** vote/end round counter (staleness guard) *)
  mutable reason : end_reason;
}

let finishing st =
  match st.phase with
  | Preparing | Ending | Done -> true
  | Executing | Awaiting_replies | Waiting -> false

let phase_to_string = function
  | Executing -> "Executing"
  | Awaiting_replies -> "Awaiting_replies"
  | Waiting -> "Waiting"
  | Preparing -> "Preparing"
  | Ending -> "Ending"
  | Done -> "Done"

type phase_tracer = txn:int -> from_:phase option -> to_:phase -> unit

type t = {
  sim : Sim.t;
  net : Net.t;
  cost : Cost.t;
  catalog : Allocation.catalog;
  commit : commit_protocol;
  op_timeout_ms : float option;
  retransmit_ms : float option;
  txn_timeout_ms : float option;
  site_failed : int -> bool;
  n_sites : int;
  txns : (int, txn_state) Hashtbl.t;
  outcomes : (int, bool * int) Hashtbl.t;
      (** txn → (committed, coordinator site), recorded at finalize — the
          durable-enough answer store for recovery outcome queries *)
  mutable next_txn_id : int;
  mutable next_seq : int;
  stats : stats;
  mutable active : int;
  mutable history : History.t option;
  mutable tracer : phase_tracer option;
  mutable optimist : Optimist.t option;
}

let create ~sim ~net ~cost ~catalog ~commit ~op_timeout_ms ?retransmit_ms
    ?txn_timeout_ms ~site_failed ~n_sites () =
  { sim; net; cost; catalog; commit; op_timeout_ms; retransmit_ms;
    txn_timeout_ms; site_failed; n_sites;
    txns = Hashtbl.create 128;
    outcomes = Hashtbl.create 128;
    next_txn_id = 1;
    next_seq = 1;
    stats = fresh_stats ();
    active = 0;
    history = None;
    tracer = None;
    optimist = None }

let set_tracer t tr = t.tracer <- tr

let set_optimist t o = t.optimist <- Some o

let optimistic_flag (st : txn_state) i =
  i < Array.length st.opt_flags && st.opt_flags.(i)

(* Every phase change funnels through here so the analyzer sees the FSM as
   it actually runs. Same-phase assignments are suppressed: they are not
   transitions. *)
let set_phase t (st : txn_state) p =
  if st.phase <> p then begin
    (match t.tracer with
     | Some tr -> tr ~txn:st.txn.Txn.id ~from_:(Some st.phase) ~to_:p
     | None -> ());
    st.phase <- p
  end

let stats t = t.stats

let active t = t.active

let txn_status t id =
  match Hashtbl.find_opt t.txns id with
  | Some st -> Some st.txn.Txn.status
  | None -> None

let txn_live t ~txn ~attempt =
  match Hashtbl.find_opt t.txns txn with
  | Some st -> (not (finishing st)) && st.attempt = attempt
  | None -> false

let home_of t ~txn =
  match Hashtbl.find_opt t.txns txn with
  | Some st when not (finishing st) -> Some st.txn.Txn.coordinator
  | _ -> None

(* "The most recent transaction involved in the circle is aborted"
   (Alg. 4 l. 7): newest by submission timestamp, ties (same-tick
   submissions) broken by the larger id so victim choice — and therefore
   any schedule replay — is deterministic. Transactions the coordinator no
   longer tracks rank oldest. *)
let newest_of t ids =
  let birth id =
    match Hashtbl.find_opt t.txns id with
    | Some st -> st.txn.Txn.submitted_at
    | None -> neg_infinity
  in
  match ids with
  | [] -> invalid_arg "Coordinator.newest_of: empty cycle"
  | id :: rest ->
    List.fold_left
      (fun best id ->
        let c = compare (birth id) (birth best) in
        if c > 0 || (c = 0 && id > best) then id else best)
      id rest

let set_history t h = t.history <- Some h

let sample_concurrency t =
  Vec.push t.stats.concurrency_samples (Sim.now t.sim, t.active)

(* Retry delay after a wake: a deterministic, per-transaction stagger.
   Without it, two transactions blocked on each other's undone operations
   wake simultaneously, collide again, undo again — a livelock the periodic
   detector would eventually resolve by aborting one of them. Staggering by
   id and attempt lets the earlier transaction win the race instead. *)
let retry_delay t (st : txn_state) =
  t.cost.Cost.sched_ms
  +. (0.3 *. float_of_int (st.txn.Txn.id mod 8))
  +. (0.2 *. float_of_int (min st.attempt 20))

let singleton_site (st : txn_state) i =
  match st.op_sites.(i) with [ s ] -> Some s | _ -> None

(* Retransmission (enabled by [retransmit_ms]): re-send with exponential
   backoff while [still_pending ()] holds; after [max_retransmits] resends
   hand the problem to [give_up]. With [retransmit_ms = None] (the default)
   nothing is scheduled and the protocol behaves exactly as before. *)
let max_retransmits = 8

let retransmit_loop t ~still_pending ~resend ~give_up =
  match t.retransmit_ms with
  | None -> ()
  | Some base ->
    let rec arm ~delay ~tries =
      ignore
        (Sim.schedule t.sim ~delay (fun () ->
             if still_pending () then
               if tries >= max_retransmits then give_up ()
               else begin
                 t.stats.retransmits <- t.stats.retransmits + 1;
                 resend ();
                 arm ~delay:(delay *. 2.0) ~tries:(tries + 1)
               end))
    in
    arm ~delay:base ~tries:0

(* ------------------------------------------------------------------ *)
(* Algorithm 1: ship operations, site by site                          *)
(* ------------------------------------------------------------------ *)

let rec coordinator_step t (st : txn_state) =
  if st.phase = Executing && st.txn.Txn.status = Txn.Active then begin
    let doomed =
      match t.optimist with
      | Some o -> Optimist.invalidated o ~txn:st.txn.Txn.id
      | None -> None
    in
    match doomed with
    | Some reason ->
      (* A concurrent admission broke this transaction's optimistic
         assumption: abort now instead of finishing doomed work (the
         validation step would reject it anyway). *)
      st.reason <- Reason_validation reason;
      start_end_protocol t st ~commit:false
    | None -> (
    match Txn.next_operation st.txn with
    | None -> start_end_protocol t st ~commit:true
    | Some op_rec -> (
      let doc = op_rec.Txn.doc in
      match st.op_sites.(op_rec.Txn.op_index) with
      | [] ->
        st.reason <- Reason_op_failure (Printf.sprintf "no site holds %s" doc);
        start_end_protocol t st ~commit:false
      | op_sites ->
        (* Visit participants one at a time, in ascending site order (a
           global acquisition order: two operations contending for the same
           replicas meet at the same first site, so one queues there holding
           nothing — no cross-site livelock between single operations). *)
        let batch =
          match op_sites with
          | [ s ] ->
            (* Batch the maximal run of follow-on operations bound for the
               same single site into this shipment: one message round-trip
               executes them all, and a block inside the batch leaves
               nothing to undo elsewhere (no other site was visited). *)
            let ops = st.txn.Txn.ops in
            let n = Array.length ops in
            let rec collect i acc =
              if i >= n then List.rev acc
              else if singleton_site st i = Some s then
                collect (i + 1) (ops.(i) :: acc)
              else List.rev acc
            in
            collect (op_rec.Txn.op_index + 1) [ op_rec ]
          | _ -> [ op_rec ]
        in
        st.attempt <- st.attempt + 1;
        st.batch <- batch;
        st.sites_left <- op_sites;
        st.sites_done <- [];
        Log.debug (fun m ->
            m "t%d op%d (batch %d) attempt %d -> sites [%s]" st.txn.Txn.id
              op_rec.Txn.op_index (List.length batch) st.attempt
              (String.concat ";" (List.map string_of_int op_sites)));
        visit_next_site t st))
  end

and visit_next_site t (st : txn_state) =
  match st.sites_left with
  | [] ->
    (* Executed at every participant: the shipment is done (Alg. 1). *)
    List.iter
      (fun (r : Txn.op_record) ->
        r.Txn.executed_sites <- st.sites_done;
        Txn.advance st.txn)
      st.batch;
    set_phase t st Executing;
    ignore
      (Sim.schedule t.sim ~delay:t.cost.Cost.sched_ms (fun () ->
           coordinator_step t st))
  | dst :: rest ->
    st.sites_left <- rest;
    st.awaiting_site <- Some dst;
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    st.awaiting_seq <- Some seq;
    set_phase t st Awaiting_replies;
    let attempt = st.attempt in
    let shipments =
      List.map
        (fun (r : Txn.op_record) ->
          { Msg.s_index = r.Txn.op_index; s_doc = r.Txn.doc; s_op = r.Txn.op;
            s_text = r.Txn.op_text;
            s_optimistic = optimistic_flag st r.Txn.op_index })
        st.batch
    in
    let msg = Msg.Op_ship { txn = st.txn.Txn.id; attempt; seq; ops = shipments } in
    let ship () =
      Net.dispatch t.net ~src:st.txn.Txn.coordinator ~dst ~channel:Unreliable msg
    in
    ship ();
    (* The shipment (and its status reply) ride the unreliable channel: the
       same seq is re-shipped on a backoff timer until the reply lands, and
       the participant's (txn, seq) cache absorbs the duplicates. *)
    let still_pending () =
      Hashtbl.mem t.txns st.txn.Txn.id
      && st.phase = Awaiting_replies
      && st.awaiting_seq = Some seq
    in
    retransmit_loop t ~still_pending ~resend:ship ~give_up:(fun () ->
        if still_pending () then begin
          st.reason <-
            Reason_op_failure
              (Printf.sprintf "shipment undeliverable at site %d" dst);
          start_end_protocol t st ~commit:false
        end);
    (match t.op_timeout_ms with
     | None -> ()
     | Some timeout ->
       ignore
         (Sim.schedule t.sim ~delay:timeout (fun () ->
              if
                st.attempt = attempt
                && st.phase = Awaiting_replies
                && st.awaiting_site = Some dst
                && st.txn.Txn.status = Txn.Active
                && Hashtbl.mem t.txns st.txn.Txn.id
              then begin
                Log.debug (fun m ->
                    m "t%d op timeout at site %d" st.txn.Txn.id dst);
                st.reason <-
                  Reason_op_failure
                    (Printf.sprintf "operation timed out at site %d" dst);
                start_end_protocol t st ~commit:false
              end)))

and handle_op_status t ~src ~txn ~attempt ~seq ~granted status =
  match Hashtbl.find_opt t.txns txn with
  | None -> ()
  | Some st ->
    if
      st.attempt = attempt && st.phase = Awaiting_replies
      && st.awaiting_seq = Some seq
    then begin
      st.awaiting_site <- None;
      st.awaiting_seq <- None;
      match (status : Msg.op_status) with
      | Msg.Deadlock ->
        t.stats.local_deadlocks <- t.stats.local_deadlocks + 1;
        st.reason <- Reason_deadlock;
        start_end_protocol t st ~commit:false
      | Msg.Failed msg ->
        st.reason <- Reason_op_failure msg;
        start_end_protocol t st ~commit:false
      | Msg.Granted ->
        st.sites_done <- src :: st.sites_done;
        visit_next_site t st
      | Msg.Blocked ->
        (* A granted prefix of the batch completed at its (only) site;
           advance past it so only the blocked operation retries. *)
        let rec advance_prefix k batch =
          if k = 0 then batch
          else
            match batch with
            | (r : Txn.op_record) :: rest ->
              r.Txn.executed_sites <- [ src ];
              Txn.advance st.txn;
              advance_prefix (k - 1) rest
            | [] -> []
        in
        st.batch <- advance_prefix granted st.batch;
        (* Blocked at this participant: undo where the operation already
           ran (Alg. 1 l. 15-17) — the undo's released locks may wake other
           transactions at those sites — then wait. *)
        (match Txn.next_operation st.txn with
         | Some op_rec ->
           let op_index = op_rec.Txn.op_index in
           let attempt = st.attempt in
           if st.sites_done <> [] then
             t.stats.op_undos <- t.stats.op_undos + List.length st.sites_done;
           List.iter
             (fun site_id ->
               Net.dispatch t.net ~src:st.txn.Txn.coordinator ~dst:site_id
                 (Msg.Op_undo { txn = st.txn.Txn.id; op_index; attempt }))
             st.sites_done
         | None -> ());
        enter_wait t st
    end

and enter_wait t (st : txn_state) =
  if st.wake_pending then begin
    (* The blocker already finished while we were deciding; retry now. *)
    st.wake_pending <- false;
    set_phase t st Executing;
    ignore
      (Sim.schedule t.sim ~delay:(retry_delay t st) (fun () ->
           coordinator_step t st))
  end
  else begin
    set_phase t st Waiting;
    st.txn.Txn.status <- Txn.Waiting;
    st.txn.Txn.wait_started <- Sim.now t.sim
  end

and handle_wake t ~txn =
  t.stats.wake_messages <- t.stats.wake_messages + 1;
  match Hashtbl.find_opt t.txns txn with
  | None -> ()
  | Some st -> (
    match st.phase with
    | Waiting ->
      set_phase t st Executing;
      st.txn.Txn.status <- Txn.Active;
      st.txn.Txn.waited_total <-
        st.txn.Txn.waited_total +. (Sim.now t.sim -. st.txn.Txn.wait_started);
      ignore
        (Sim.schedule t.sim ~delay:(retry_delay t st) (fun () ->
             coordinator_step t st))
    | Executing | Awaiting_replies -> st.wake_pending <- true
    | Preparing | Ending | Done -> ())

(* Wound-wait: an older requester needs this transaction's locks. *)
and handle_wound t ~txn =
  match Hashtbl.find_opt t.txns txn with
  | None -> ()
  | Some st ->
    if not (finishing st) then begin
      t.stats.wounded <- t.stats.wounded + 1;
      st.reason <- Reason_deadlock;
      start_end_protocol t st ~commit:false
    end

(* Alg. 4 l. 7: the detector chose this transaction as a cycle's victim. *)
and handle_victim t ~txn =
  match Hashtbl.find_opt t.txns txn with
  | None -> ()
  | Some st ->
    if not (finishing st) then begin
      t.stats.distributed_deadlocks <- t.stats.distributed_deadlocks + 1;
      Log.debug (fun m -> m "distributed deadlock: aborting t%d" txn);
      st.reason <- Reason_deadlock;
      start_end_protocol t st ~commit:false
    end

(* ------------------------------------------------------------------ *)
(* Commit / abort: Algorithms 5 and 6                                  *)
(* ------------------------------------------------------------------ *)

and involved_sites _t (st : txn_state) = st.involved

and start_end_protocol t (st : txn_state) ~commit =
  if not (finishing st) then begin
    (* The Commute protocol's validation step, run once per transaction on
       the way into its end protocol — before the prepare phase under 2PC,
       so an invalidated optimistic assumption aborts instead of
       preparing. *)
    let commit =
      commit
      &&
      match t.optimist with
      | None -> true
      | Some o -> (
        Optimist.note_all_executed o ~txn:st.txn.Txn.id;
        match Optimist.validate o ~txn:st.txn.Txn.id with
        | Ok () -> true
        | Error reason ->
          st.reason <- Reason_validation reason;
          false)
    in
    if commit && t.commit = Two_phase && not st.prepared then
      start_prepare_phase t st
    else begin_ending t st ~commit
  end

and begin_ending t (st : txn_state) ~commit =
  set_phase t st Ending;
  st.end_commit <- commit;
  st.round_failed <- false;
  st.round <- st.round + 1;
  let round = st.round in
  let sites_involved = involved_sites t st in
  st.pending_sites <- sites_involved;
  Log.debug (fun m ->
      m "t%d %s across [%s]" st.txn.Txn.id
        (if commit then "commit" else "abort")
        (String.concat ";" (List.map string_of_int sites_involved)));
  if sites_involved = [] then
    finalize t st (if commit then Txn.Committed else Txn.Aborted)
  else begin
    let msg =
      if commit then Msg.Commit { txn = st.txn.Txn.id }
      else Msg.Abort { txn = st.txn.Txn.id; quiet = false }
    in
    let send_pending () =
      List.iter
        (fun dst -> Net.dispatch t.net ~src:st.txn.Txn.coordinator ~dst msg)
        st.pending_sites
    in
    send_pending ();
    (* Commit/abort ride the reliable channel, but a partition (or crashed
       site) severs even that: keep nudging the silent sites. A site that
       already applied the outcome re-acknowledges idempotently. If the
       round never completes, conclude anyway — a commit is safe to
       finalize (the decision is recorded; an unreachable site resolves it
       by recovery query or a later retransmission), an abort falls back to
       the fail broadcast (Alg. 6 l. 6-9). *)
    retransmit_loop t
      ~still_pending:(fun () ->
        Hashtbl.mem t.txns st.txn.Txn.id
        && st.phase = Ending && st.round = round && st.pending_sites <> [])
      ~resend:send_pending
      ~give_up:(fun () -> conclude_ending t st ~forced:true)
  end

(* 2PC phase one: collect votes; every participant durably logs Prepared
   before voting yes. *)
and start_prepare_phase t (st : txn_state) =
  set_phase t st Preparing;
  st.round_failed <- false;
  st.round <- st.round + 1;
  let round = st.round in
  let sites_involved = involved_sites t st in
  st.pending_sites <- sites_involved;
  Log.debug (fun m ->
      m "t%d prepare across [%s]" st.txn.Txn.id
        (String.concat ";" (List.map string_of_int sites_involved)));
  let msg = Msg.Prepare { txn = st.txn.Txn.id } in
  let send_pending () =
    List.iter
      (fun dst -> Net.dispatch t.net ~src:st.txn.Txn.coordinator ~dst msg)
      st.pending_sites
  in
  send_pending ();
  (* A participant that logged Prepared re-votes from its WAL, so resending
     is idempotent; a vote round that never completes is a no-vote. *)
  retransmit_loop t
    ~still_pending:(fun () ->
      Hashtbl.mem t.txns st.txn.Txn.id
      && st.phase = Preparing && st.round = round && st.pending_sites <> [])
    ~resend:send_pending
    ~give_up:(fun () ->
      if st.phase = Preparing && st.round = round && st.pending_sites <> []
      then begin
        st.reason <- Reason_op_failure "prepare phase timed out";
        begin_ending t st ~commit:false
      end)

and conclude_prepare t (st : txn_state) =
  if st.round_failed then begin
    (* A participant voted no: abort (its Prepared record, if any,
       resolves as presumed abort). *)
    st.reason <- Reason_op_failure "prepare phase rejected";
    begin_ending t st ~commit:false
  end
  else begin
    st.prepared <- true;
    begin_ending t st ~commit:true
  end

and handle_vote t ~src ~txn ~ok =
  match Hashtbl.find_opt t.txns txn with
  | None -> ()
  | Some st ->
    if st.phase = Preparing && List.mem src st.pending_sites then begin
      if not ok then st.round_failed <- true;
      st.pending_sites <- List.filter (fun s -> s <> src) st.pending_sites;
      if st.pending_sites = [] then conclude_prepare t st
    end

and conclude_ending t (st : txn_state) ~forced =
  let failed = st.round_failed || (forced && st.pending_sites <> []) in
  if st.end_commit then begin
    if failed && not forced then begin
      (* Commit could not complete at some site: abort (Alg. 5 l. 6). *)
      st.reason <- Reason_op_failure "commit rejected at a site";
      begin_ending t st ~commit:false
    end
    else
      (* [forced]: the decision stands even if a site is unreachable — it
         learns the outcome from a recovery query or later delivery. *)
      finalize t st Txn.Committed
  end
  else if failed then begin
    (* Abort could not complete: tell everyone to fail the transaction
       (Alg. 6 l. 6-9). *)
    List.iter
      (fun dst ->
        if not (t.site_failed dst) then
          Net.dispatch t.net ~src:st.txn.Txn.coordinator ~dst
            (Msg.Abort { txn = st.txn.Txn.id; quiet = true }))
      (involved_sites t st);
    finalize t st Txn.Failed
  end
  else finalize t st Txn.Aborted

and handle_end_ack t ~src ~txn ~ok =
  match Hashtbl.find_opt t.txns txn with
  | None -> ()
  | Some st ->
    if st.phase = Ending && List.mem src st.pending_sites then begin
      if not ok then st.round_failed <- true;
      st.pending_sites <- List.filter (fun s -> s <> src) st.pending_sites;
      if st.pending_sites = [] then conclude_ending t st ~forced:false
    end

and finalize t (st : txn_state) status =
  (match (status, st.reason) with
   | Txn.Aborted, Reason_op_failure msg ->
     Log.debug (fun m -> m "t%d aborted: %s" st.txn.Txn.id msg)
   | _ -> ());
  set_phase t st Done;
  st.txn.Txn.status <- status;
  st.txn.Txn.finished_at <- Sim.now t.sim;
  t.stats.last_finish <- Sim.now t.sim;
  Hashtbl.remove t.txns st.txn.Txn.id;
  (match t.optimist with
   | Some o -> Optimist.remove o ~txn:st.txn.Txn.id
   | None -> ());
  Hashtbl.replace t.outcomes st.txn.Txn.id
    (status = Txn.Committed, st.txn.Txn.coordinator);
  t.active <- t.active - 1;
  sample_concurrency t;
  (match (status, t.history) with
   | Txn.Committed, Some h ->
     History.note_commit h ~txn:st.txn.Txn.id ~time:(Sim.now t.sim)
   | (Txn.Aborted | Txn.Failed), Some h -> History.note_abort h ~txn:st.txn.Txn.id
   | _ -> ());
  (match status with
   | Txn.Committed ->
     t.stats.committed <- t.stats.committed + 1;
     Vec.push t.stats.response_times (Txn.response_time st.txn);
     Vec.push t.stats.commit_stamps st.txn.Txn.finished_at
   | Txn.Aborted -> (
     t.stats.aborted <- t.stats.aborted + 1;
     match st.reason with
     | Reason_deadlock ->
       t.stats.deadlock_aborts <- t.stats.deadlock_aborts + 1
     | Reason_validation _ ->
       t.stats.validation_aborts <- t.stats.validation_aborts + 1
     | Reason_normal | Reason_op_failure _ -> ())
   | Txn.Failed -> t.stats.failed <- t.stats.failed + 1
   | Txn.Active | Txn.Waiting -> assert false);
  st.on_finish st.txn

(* A recovering participant asking how an in-doubt transaction ended.
   Finalized: answer from the outcome store. Still deciding: stay silent —
   the participant's backoff re-asks, and an answer exists once the
   decision is made. Never heard of: silence too; the participant's capped
   retry then resolves it as presumed abort, which is right. *)
let handle_outcome_query t ~src ~txn =
  match Hashtbl.find_opt t.outcomes txn with
  | Some (committed, coord) ->
    Net.dispatch t.net ~src:coord ~dst:src ~channel:Unreliable
      (Msg.Outcome_reply { txn; committed })
  | None -> (
    match Hashtbl.find_opt t.txns txn with
    | Some st when st.phase = Ending ->
      (* Decided but not yet finalized: the outcome is already fixed. *)
      Net.dispatch t.net ~src:st.txn.Txn.coordinator ~dst:src
        ~channel:Unreliable
        (Msg.Outcome_reply { txn; committed = st.end_commit })
    | _ -> ())

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let dispatch t ~src (msg : Msg.t) =
  match msg with
  | Msg.Op_status { txn; attempt; seq; granted; status; _ } ->
    handle_op_status t ~src ~txn ~attempt ~seq ~granted status
  | Msg.Vote { txn; ok } -> handle_vote t ~src ~txn ~ok
  | Msg.End_ack { txn; ok } -> handle_end_ack t ~src ~txn ~ok
  | Msg.Wake { txn } -> handle_wake t ~txn
  | Msg.Wound { txn } -> handle_wound t ~txn
  | Msg.Victim { txn } -> handle_victim t ~txn
  | Msg.Outcome_query { txn } -> handle_outcome_query t ~src ~txn
  | Msg.Op_ship _ | Msg.Op_undo _ | Msg.Prepare _ | Msg.Commit _
  | Msg.Abort _ | Msg.Wfg_request | Msg.Wfg_reply _ | Msg.Outcome_reply _ ->
    (* participant-bound: not ours *)
    ()

(* ------------------------------------------------------------------ *)
(* Static delivery classification (consumed by Dtx_cert)               *)
(* ------------------------------------------------------------------ *)

(* One constructor per way a delivered message can relate to the machine.
   The string is the provenance note the certifier reports: for [Handled]
   the handler's action, for [Ignored] the guard that makes dropping safe,
   for [Impossible] why the pair cannot be delivered here at all. There is
   deliberately no "silently dropped" constructor — a pair that reaches
   [dispatch] and matches no row below is exactly the bug the certifier
   exists to find. *)
type disposition =
  | Handled of string
  | Ignored of string
  | Impossible of string

(* The coordinator's (phase x Msg.Kind) table, kept next to [dispatch] and
   the handlers so a new handler guard and its classification are edited
   together. Every [Ignored] row names the staleness/idempotency guard in
   the matching handler that makes the drop deliberate. *)
let classify_delivery (phase : phase) (kind : Msg.Kind.t) : disposition =
  let participant_bound =
    Impossible "participant-bound: Cluster.route delivers to Participant"
  in
  match (kind : Msg.Kind.t) with
  | Msg.Kind.Op_ship | Msg.Kind.Op_undo | Msg.Kind.Prepare | Msg.Kind.Commit
  | Msg.Kind.Abort | Msg.Kind.Wfg_request | Msg.Kind.Outcome_reply ->
    participant_bound
  | Msg.Kind.Wfg_reply ->
    Impossible "detector-bound: Cluster.route delivers to the WFG detector"
  | Msg.Kind.Op_status -> (
    match phase with
    | Awaiting_replies ->
      Handled "handle_op_status: advance / undo-and-wait / abort"
    | Executing | Waiting | Preparing | Ending | Done ->
      Ignored
        "stale or duplicated status reply: handle_op_status requires \
         phase = Awaiting_replies and a matching (attempt, seq)")
  | Msg.Kind.Vote -> (
    match phase with
    | Preparing -> Handled "handle_vote: record vote, conclude when round empty"
    | Executing | Awaiting_replies | Waiting | Ending | Done ->
      Ignored
        "duplicated or stale vote: handle_vote requires phase = Preparing \
         and src in pending_sites")
  | Msg.Kind.End_ack -> (
    match phase with
    | Ending -> Handled "handle_end_ack: record ack, finalize when round empty"
    | Executing | Awaiting_replies | Waiting | Preparing | Done ->
      Ignored
        "duplicated or stale end-ack: handle_end_ack requires phase = \
         Ending and src in pending_sites")
  | Msg.Kind.Wake -> (
    match phase with
    | Waiting -> Handled "handle_wake: resume, reschedule coordinator_step"
    | Executing | Awaiting_replies ->
      Handled
        "handle_wake: latch wake_pending so enter_wait retries instead of \
         sleeping (lost-wakeup guard)"
    | Preparing | Ending | Done ->
      Ignored "wake for a finishing transaction: outcome already decided")
  | Msg.Kind.Wound -> (
    match phase with
    | Executing | Awaiting_replies | Waiting ->
      Handled "handle_wound: abort (wound-wait)"
    | Preparing | Ending | Done ->
      Ignored "wound for a finishing transaction: outcome already decided")
  | Msg.Kind.Victim -> (
    match phase with
    | Executing | Awaiting_replies | Waiting ->
      Handled "handle_victim: abort the detector's chosen cycle victim"
    | Preparing | Ending | Done ->
      Ignored "victim for a finishing transaction: outcome already decided")
  | Msg.Kind.Outcome_query -> (
    match phase with
    | Done -> Handled "handle_outcome_query: answer from the outcome store"
    | Ending ->
      Handled
        "handle_outcome_query: the decision is fixed; answer st.end_commit"
    | Executing | Awaiting_replies | Waiting | Preparing ->
      Ignored
        "outcome not yet decided: stay silent, the recovering \
         participant's capped backoff re-queries (or presumes abort)")

(* Phase peek for the certifier's dynamic cross-check: a transaction the
   coordinator no longer tracks but whose outcome is recorded is [Done]
   (finalize removes from [txns] and inserts into [outcomes] atomically
   within one handler). *)
let phase_of t ~txn =
  match Hashtbl.find_opt t.txns txn with
  | Some st -> Some st.phase
  | None -> if Hashtbl.mem t.outcomes txn then Some Done else None

let has_optimist t = t.optimist <> None

let submit t ~client ~coordinator ~ops ~on_finish =
  let id = t.next_txn_id in
  t.next_txn_id <- id + 1;
  let txn = Txn.create ~id ~client ~coordinator ops in
  txn.Txn.submitted_at <- Sim.now t.sim;
  (* Precompute the transaction's site footprint once, here at submit: the
     catalog never changes during a run, so the shipping loop and the end
     protocol read these instead of re-deriving them per round. *)
  let op_sites =
    Array.map
      (fun (r : Txn.op_record) ->
        List.sort compare (Allocation.sites_of t.catalog r.Txn.doc))
      txn.Txn.ops
  in
  let involved =
    List.sort_uniq compare
      (coordinator
      :: Array.fold_left (fun acc ss -> List.rev_append ss acc) [] op_sites)
  in
  (* The Commute protocol's admission step: classify every operation
     against the active set; provably-commuting ones ship optimistic. *)
  let opt_flags =
    match t.optimist with
    | None -> [||]
    | Some o ->
      Optimist.admit o ~txn:id
        ~ops:
          (Array.map
             (fun (r : Txn.op_record) -> (r.Txn.doc, r.Txn.op))
             txn.Txn.ops)
  in
  let st =
    { txn; on_finish; opt_flags; op_sites; involved;
      phase = Executing; attempt = 0; batch = [];
      sites_left = []; sites_done = []; awaiting_site = None;
      awaiting_seq = None; wake_pending = false; prepared = false;
      end_commit = false; pending_sites = []; round_failed = false;
      round = 0; reason = Reason_normal }
  in
  Hashtbl.replace t.txns id st;
  (match t.tracer with
   | Some tr -> tr ~txn:id ~from_:None ~to_:Executing
   | None -> ());
  t.stats.submitted <- t.stats.submitted + 1;
  t.active <- t.active + 1;
  sample_concurrency t;
  (* The chaos safety valve: a transaction stranded by faults the
     retransmission layer cannot beat (e.g. a never-healed partition
     swallowing its Wake) is aborted outright after [txn_timeout_ms].
     Transactions already in their end protocol are left to the
     retransmission give-up paths. *)
  (match t.txn_timeout_ms with
   | None -> ()
   | Some timeout ->
     ignore
       (Sim.schedule t.sim ~delay:timeout (fun () ->
            if Hashtbl.mem t.txns id && not (finishing st) then begin
              Log.debug (fun m -> m "t%d transaction timeout" id);
              st.reason <- Reason_op_failure "transaction timed out";
              start_end_protocol t st ~commit:false
            end)));
  ignore
    (Sim.schedule t.sim ~delay:t.cost.Cost.sched_ms (fun () ->
         coordinator_step t st));
  txn
