(** The participant side of the paper's Scheduler: an explicit state
    machine over one {!Site}, driven entirely by {!Dtx_net.Msg.t} values.

    It implements Algorithm 2 (execute a shipped operation in the local
    LockManager and report its status), the participant halves of
    Algorithms 5/6 (persist or undo, release locks, wake waiters,
    acknowledge), the 2PC prepare/vote leg, cross-site operation undo
    (Alg. 1 l. 16), and the detector's wait-for-graph request (Alg. 4
    l. 4). Every reply it emits goes back through {!Dtx_net.Net.dispatch} —
    the participant holds no reference to any coordinator state.

    Delivery is {e at-most-once}: each operation shipment carries a
    [(txn, seq)] key, and the participant caches its final reply per key,
    so a retransmitted or fault-duplicated shipment is answered from the
    cache instead of re-executed. Commit/abort and prepare are idempotent
    via the ended-set and the WAL respectively.

    Crash/restart (the chaos harness): {!crash} marks the loss of all
    volatile state (the owning {!Site} is wiped separately); {!restart}
    reads the surviving WAL and resolves every in-doubt transaction by
    querying its coordinator ([Msg.Outcome_query]) — a committed answer
    replays the durable redo list, an aborted or absent answer is presumed
    abort (paper §5 future work). *)

(** Local state changes the analyzer cares about, emitted at the moment the
    site applied them (not when the corresponding reply is delivered). *)
type event =
  | Undone of { txn : int; op_index : int; attempt : int }
      (** an [Op_undo] was processed (Alg. 1 l. 16) *)
  | Prepared of { txn : int }  (** the Prepared record hit the WAL *)
  | Finished of { txn : int; committed : bool }
      (** commit/abort applied locally: effects persisted or undone, locks
          released (quiet aborts and recovery resolutions included) *)
  | Executed of { txn : int; seq : int }
      (** shipment [seq] actually ran here — emitted once per fresh
          execution, never for a cache-answered duplicate (the checker's
          double-apply invariant watches this) *)
  | Crashed  (** volatile state lost *)
  | Restarted  (** back up; recovery may follow *)
  | Recovery_begun of { in_doubt : int list }
      (** the WAL scan at restart: transactions to resolve *)
  | Recovery_resolved of { txn : int; committed : bool }
      (** one in-doubt transaction settled (redo replayed if committed) *)

val pp_event : Format.formatter -> event -> unit

type ctx = {
  sim : Dtx_sim.Sim.t;
  net : Dtx_net.Net.t;
  cost : Cost.t;
  site : Site.t;
  two_phase : bool;  (** append WAL prepare/outcome records (2PC mode) *)
  site_failed : unit -> bool;
      (** failure injection: a failed site answers operation shipments and
          end-protocol messages with refusals ("the message sent to the
          site is not served", Alg. 5 l. 5 / 6 l. 5) *)
  txn_live : txn:int -> attempt:int -> bool;
      (** liveness peek before executing a shipment: the transaction may
          have been aborted while the message was in flight, and executing
          for a dead transaction would leak effects no later abort cleans
          up *)
  retransmit_ms : float option;
      (** backoff base for recovery outcome queries; [None] sends each
          query once (enough on a lossless, fault-free link) *)
  replies : (int * int, Dtx_net.Msg.t option) Hashtbl.t;
      (** (txn, seq) → cached final reply ([None] while executing) — the
          at-most-once dedup table; wiped by {!crash} *)
  txn_seqs : (int, int list ref) Hashtbl.t;
      (** txn → its cached seqs, for per-transaction cleanup at end *)
  ended : (int, bool) Hashtbl.t;
      (** txn → outcome applied here, for idempotent Commit/Abort *)
  recovering : (int, unit) Hashtbl.t;
      (** in-doubt transactions awaiting an outcome after {!restart}; new
          shipments are refused ("recovering") while non-empty *)
  mutable tracer : (event -> unit) option;
      (** trace sink; [None] (the default) costs one immediate [match] per
          would-be event *)
}

val handle : ctx -> src:int -> Dtx_net.Msg.t -> unit
(** Consume one participant-bound message ([Op_ship], [Op_undo],
    [Prepare], [Commit], [Abort], [Wfg_request], [Outcome_reply]);
    coordinator-bound messages are ignored. *)

val crash : ctx -> unit
(** Drop all volatile participant state (dedup cache, ended set, recovery
    set) and emit [Crashed]. The caller wipes the {!Site} itself. *)

val restart : ctx -> unit
(** Begin recovery: emit [Restarted] and [Recovery_begun], then resolve
    each WAL in-doubt transaction by querying its coordinator with
    capped exponential backoff; exhaustion resolves as presumed abort.
    Call after {!Site.recover_from_storage}. *)

val recovering : ctx -> int list
(** In-doubt transactions still unresolved (sorted); [[]] once recovery is
    complete. *)

(** The participant's observable per-transaction state, derived from its
    bookkeeping tables (it has no explicit phase field): [P_recovering]
    takes precedence over [P_ended] (a resolved transaction leaves
    [recovering] first), and a live execution always has cached seqs. *)
type pstate = P_idle | P_executing | P_ended | P_recovering

val pstate_to_string : pstate -> string

val state_of : ctx -> txn:int -> pstate
(** The state a delivery concerning [txn] would find. For transaction-less
    messages ([Wfg_request]) pass a txn that is certainly untracked (e.g.
    [-1]) — the derived state is [P_idle]. *)

(** Same classification as {!Coordinator.disposition} (re-exported so both
    tables share one type). *)
type disposition = Coordinator.disposition =
  | Handled of string
  | Ignored of string
  | Impossible of string

val classify_delivery : pstate -> Dtx_net.Msg.Kind.t -> disposition
(** Total over {!pstate} x [Msg.Kind.t]; co-located with {!handle} so the
    classification and the handlers are edited together. *)
