(** The participant side of the paper's Scheduler: an explicit state
    machine over one {!Site}, driven entirely by {!Dtx_net.Msg.t} values.

    It implements Algorithm 2 (execute a shipped operation in the local
    LockManager and report its status), the participant halves of
    Algorithms 5/6 (persist or undo, release locks, wake waiters,
    acknowledge), the 2PC prepare/vote leg, cross-site operation undo
    (Alg. 1 l. 16), and the detector's wait-for-graph request (Alg. 4
    l. 4). Every reply it emits goes back through {!Dtx_net.Net.dispatch} —
    the participant holds no reference to any coordinator state. *)

(** Local state changes the analyzer cares about, emitted at the moment the
    site applied them (not when the corresponding reply is delivered). *)
type event =
  | Undone of { txn : int; op_index : int; attempt : int }
      (** an [Op_undo] was processed (Alg. 1 l. 16) *)
  | Prepared of { txn : int }  (** the Prepared record hit the WAL *)
  | Finished of { txn : int; committed : bool }
      (** commit/abort applied locally: effects persisted or undone, locks
          released (quiet aborts included) *)

val pp_event : Format.formatter -> event -> unit

type ctx = {
  sim : Dtx_sim.Sim.t;
  net : Dtx_net.Net.t;
  cost : Cost.t;
  site : Site.t;
  two_phase : bool;  (** append WAL prepare/outcome records (2PC mode) *)
  site_failed : unit -> bool;
      (** failure injection: a failed site answers operation shipments and
          end-protocol messages with refusals ("the message sent to the
          site is not served", Alg. 5 l. 5 / 6 l. 5) *)
  txn_live : txn:int -> attempt:int -> bool;
      (** liveness peek before executing a shipment: the transaction may
          have been aborted while the message was in flight, and executing
          for a dead transaction would leak effects no later abort cleans
          up *)
  mutable tracer : (event -> unit) option;
      (** trace sink; [None] (the default) costs one immediate [match] per
          would-be event *)
}

val handle : ctx -> src:int -> Dtx_net.Msg.t -> unit
(** Consume one participant-bound message ([Op_ship], [Op_undo],
    [Prepare], [Commit], [Abort], [Wfg_request]); coordinator-bound
    messages are ignored. *)
