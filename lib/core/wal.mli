(** Per-site write-ahead commit log — the durability half of the paper's
    future work ("develop solutions for DTX to work with the properties of
    atomicity and durability", §5).

    Under two-phase commit each participant logs [Prepared] before voting
    yes, and logs the outcome ([Committed] {e after} the DataManager's
    write-back, [Aborted] otherwise). The log is durable: it survives
    {!Site.wipe_volatile}. Because the outcome record is written only after
    persistence completes, the store is always consistent with the log.

    A [Prepared] record carries everything the site needs to honour its yes
    vote across a crash: the coordinator to re-register with
    ([Msg.Outcome_query]) and the {e redo} list — the transaction's
    operations at this site, in execution order, in their textual form.
    Crash recovery is presumed abort with an uncertainty period: an
    in-doubt transaction (prepared, no outcome) is resolved by asking its
    coordinator; a committed answer replays the redo list against the
    recovered store, an aborted (or unknown — {e presumed abort}) answer
    just records [Aborted], since the volatile effects never reached the
    store. *)

type entry =
  | Prepared of {
      txn : int;
      time : float;
      coord : int;  (** coordinator site, for the recovery outcome query *)
      redo : (string * string) list;
          (** (document, operation text) in execution order — what commit
              must re-apply if the volatile effects died in a crash *)
    }
  | Committed of { txn : int; time : float }
  | Aborted of { txn : int; time : float }

val entry_txn : entry -> int

type t

val create : unit -> t

val append : t -> entry -> unit

val entries : t -> entry list
(** In append order. *)

val length : t -> int

val outcome_of : t -> int -> [ `Committed | `Aborted | `In_doubt | `Unknown ]
(** The latest state the log records for a transaction: [`Unknown] if it
    never prepared here. *)

val in_doubt : t -> int list
(** Transactions with a [Prepared] record and no outcome record — what a
    recovering site must resolve (sorted). *)

val prepared_record : t -> int -> (int * (string * string) list) option
(** [(coordinator, redo)] of the transaction's latest [Prepared] record,
    if any — the recovery inputs. *)

val resolve_presumed_abort : t -> int list
(** Append [Aborted] for every in-doubt transaction without consulting
    anyone (the blunt offline resolution: correct only when the log owner
    knows its coordinators hold no commit record); returns the transactions
    resolved. The online path — {!Site} restart via [Participant] — asks
    the coordinator instead. *)
