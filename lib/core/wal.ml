module Vec = Dtx_util.Vec

type entry =
  | Prepared of {
      txn : int;
      time : float;
      coord : int;
      redo : (string * string) list;
    }
  | Committed of { txn : int; time : float }
  | Aborted of { txn : int; time : float }

let entry_txn = function
  | Prepared { txn; _ } | Committed { txn; _ } | Aborted { txn; _ } -> txn

type t = { log : entry Vec.t }

let create () = { log = Vec.create () }

let append t e = Vec.push t.log e

let entries t = Vec.to_list t.log

let length t = Vec.length t.log

let outcome_of t txn =
  Vec.fold_left
    (fun acc e ->
      match e with
      | Prepared p when p.txn = txn && acc = `Unknown -> `In_doubt
      | Committed c when c.txn = txn -> `Committed
      | Aborted a when a.txn = txn -> `Aborted
      | _ -> acc)
    `Unknown t.log

let in_doubt t =
  let prepared = Hashtbl.create 16 in
  Vec.iter
    (fun e ->
      match e with
      | Prepared { txn; _ } -> Hashtbl.replace prepared txn true
      | Committed { txn; _ } | Aborted { txn; _ } ->
        Hashtbl.replace prepared txn false)
    t.log;
  Hashtbl.fold (fun txn pending acc -> if pending then txn :: acc else acc)
    prepared []
  |> List.sort compare

let prepared_record t txn =
  Vec.fold_left
    (fun acc e ->
      match e with
      | Prepared { txn = txn'; coord; redo; _ } when txn' = txn ->
        Some (coord, redo)
      | _ -> acc)
    None t.log

let resolve_presumed_abort t =
  let pending = in_doubt t in
  List.iter (fun txn -> append t (Aborted { txn; time = 0.0 })) pending;
  pending
