(** One DTX instance — the per-site state of Fig. 1's architecture.

    The pieces map onto the paper's components as follows: the {e Listener}
    is {!Cluster}'s message dispatch; the {e Scheduler} is the coordinator /
    participant logic in {!Cluster}; this module is the {e TransactionManager}
    core that both share — the {b LockManager} ({!process_operation} is
    Algorithm 3: lock acquisition over the protocol's representation
    structure, wait-for-graph maintenance, local deadlock detection, and
    operation execution with undo logging) and the {b DataManager}
    ({!persist_txn} / storage write-back). *)

(** How lock conflicts that could deadlock are handled. The paper uses
    {e detection} (wait-for graphs + the periodic Algorithm-4 union) and
    reports "a considerable number of deadlocks … a deeper study of these
    results is necessary" (§5); the two classical {e prevention} policies
    are provided for exactly that study (see the bench ablation). Since
    transaction ids grow with start time, id order is age order. *)
type deadlock_policy =
  | Detection  (** wait and detect cycles (the paper's DTX) *)
  | Wait_die
      (** non-preemptive prevention: a requester may wait only for younger
          lock holders; if any holder is older, the requester dies *)
  | Wound_wait
      (** preemptive prevention: an older requester wounds (aborts) younger
          holders; a younger requester waits *)

type op_outcome =
  | Granted of {
      lock_requests : int;  (** locks processed (the overhead driver) *)
      touched : int;  (** document nodes visited/written *)
      result_nodes : int;  (** query result cardinality *)
    }
  | Blocked of {
      lock_requests : int;
      blockers : int list;
      wound : int list;
          (** wound-wait: younger holders the scheduler must abort *)
    }
      (** conflicting transactions hold locks; edges were added to the
          wait-for graph *)
  | Deadlock of { lock_requests : int }
      (** detection: adding the wait edges closed a cycle here (Alg. 3
          l. 9); wait-die: the requester must die *)
  | Op_failed of string
      (** locks were obtainable but execution failed (target vanished,
          bad fragment, …) — aborts the transaction (Alg. 1 l. 19) *)

type waiter = {
  waiting_txn : int;
  waiting_coordinator : int;  (** site to notify when the blocker ends *)
}

type stats = {
  mutable ops_processed : int;
  mutable lock_requests : int;
  mutable blocked_ops : int;
  mutable local_deadlocks : int;
}

type t = {
  id : int;
  protocol : Dtx_protocol.Protocol.t;
  deadlock_policy : deadlock_policy;
  table : Dtx_locks.Table.t;
  wfg : Dtx_locks.Wfg.t;
  storage : Dtx_storage.Storage.t;
  op_effects : (int * int, op_effect) Hashtbl.t;
      (** (txn, op_index) → what that operation did here *)
  txn_ops : (int, int list ref) Hashtbl.t;
      (** txn → op indexes executed here, newest first *)
  waiters : (int, waiter list ref) Hashtbl.t;  (** blocker txn → waiters *)
  txn_coords : (int, int) Hashtbl.t;
      (** txn → coordinator site, recorded from each operation shipment, so
          the participant can address wound notifications (wound-wait) *)
  mutable busy_until : float;  (** scheduler serialization point *)
  stats : stats;
  mutable access_sink :
    (txn:int -> op_index:int -> attempt:int ->
     (Dtx_locks.Table.resource * Dtx_locks.Mode.t) list -> unit)
    option;
      (** history hook: called with the lock grants of each executed
          operation (see {!History}) *)
  mutable undo_sink : (txn:int -> op_index:int -> attempt:int -> unit) option;
      (** history hook: called when an executed operation is undone *)
  wal : Wal.t;  (** durable commit log (survives {!wipe_volatile}) *)
}

and op_effect = {
  eff_doc : string;
  eff_op : Dtx_update.Op.t;  (** the operation itself (redo logging) *)
  eff_attempt : int;  (** coordinator attempt that produced this effect *)
  eff_requests : (Dtx_locks.Table.resource * Dtx_locks.Mode.t) list;
  eff_undo : Dtx_update.Exec.undo_entry list;
  eff_touched : int;
}

val create :
  id:int ->
  protocol_kind:Dtx_protocol.Protocol.kind ->
  ?deadlock_policy:deadlock_policy ->
  storage:Dtx_storage.Storage.t ->
  docs:Dtx_xml.Doc.t list ->
  unit ->
  t
(** A site holding private replicas of [docs] (clones are taken; the
    originals are not shared) and persisting them into [storage].
    [deadlock_policy] defaults to {!Detection}. *)

val process_operation :
  ?optimistic:bool -> t -> txn:int -> op_index:int -> attempt:int ->
  doc:string -> Dtx_update.Op.t -> op_outcome
(** Algorithm 3. On [Granted] the operation's effects are applied to the
    local replica, its undo log is saved (tagged with [attempt]), and its
    locks are held (Strict 2PL). On [Blocked] wait-for edges
    [txn → blockers] are recorded here. Stale wait edges of [txn] at this
    site are cleared first, and a leftover effect of an earlier attempt of
    the same operation is reversed before re-executing (the coordinator's
    cross-site undo may still be in flight).

    [optimistic] (default [false]) is the Commute protocol's fast path:
    the coordinator proved the operation commutes with everything active,
    so a read-only footprint acquires no locks at all and an update
    footprint is downgraded to intention modes ({!Dtx_locks.Mode.intention_for});
    only the locks actually taken are charged, released on undo/finish, and
    mirrored by the checker, while the {e full} derived footprint is still
    reported to the history sink so serializability stays strictly
    checked. *)

val undo_operation : ?only_attempt:int -> t -> txn:int -> op_index:int -> unit
(** Reverse one executed operation and release the locks it took (the
    cross-site all-or-nothing rule, Alg. 1 l. 16). No-op if the operation
    never executed here, or if [only_attempt] is given and does not match
    the recorded attempt (a stale undo message). *)

val register_waiter : t -> blocker:int -> waiter -> unit

val note_coordinator : t -> txn:int -> coordinator:int -> unit
(** Remember which site coordinates [txn] (from an operation shipment's
    source). Cleared by {!finish_txn} and {!wipe_volatile}. *)

val coordinator_of : t -> txn:int -> int option

val take_waiters : t -> blocker:int -> waiter list
(** Remove and return the transactions waiting on [blocker] here. Called
    whenever [blocker] releases locks — at transaction end, but also after
    an operation-level undo (Alg. 1 l. 16), whose released locks may already
    unblock a waiter. A woken transaction re-registers if it blocks again. *)

val finish_txn : t -> txn:int -> commit:bool -> waiter list
(** End the transaction at this site: on commit persist its documents
    (write-back to storage), on abort undo everything it did here; then
    release all its locks, drop it from the wait-for graph and return the
    waiters to wake (Algs. 5/6 participant side). *)

val txn_docs_touched : t -> txn:int -> string list
(** Documents this transaction updated at this site. *)

val txn_redo : t -> txn:int -> (string * string) list
(** The redo list a [Wal.Prepared] record carries: this transaction's
    update operations at this site, oldest first, as
    [(document, operation text)] pairs. Queries are omitted. *)

val replay_redo : t -> (string * string) list -> (string list, string) result
(** Re-apply a durable redo list against the recovered replicas and persist
    the touched documents — the write-back a crash-lost commit would have
    done. Returns the documents persisted. *)

val txn_touched_total : t -> txn:int -> int
(** Total document nodes this transaction wrote at this site (sizes the
    DataManager's commit write-back cost). *)

val has_doc : t -> string -> bool

val wfg_snapshot : t -> Dtx_locks.Wfg.t
(** Copy of the local wait-for graph (what the detector ships around). *)

val wipe_volatile : t -> unit
(** Crash simulation: lose everything held in main memory — replicas, the
    DataGuide, the lock table, the wait-for graph, undo logs, waiter lists.
    The durable store is untouched. *)

val recover_from_storage : t -> unit
(** Restart after a crash: rebuild the replicas (and, for XDGL, their
    DataGuides) from the last states the DataManager persisted — i.e. the
    effects of every transaction that committed here, and nothing else.
    This is the recovery strategy the paper lists as future work (§5):
    commit-time write-back makes the store a consistent checkpoint, so
    recovery is a reload. *)
