module Table = Dtx_locks.Table
module Mode = Dtx_locks.Mode
module Wfg = Dtx_locks.Wfg
module Vec = Dtx_util.Vec

type access = {
  a_time : float;
  a_site : int;
  a_txn : int;
  a_op : int;
  a_attempt : int;
  a_resource : Table.resource;
  a_mode : Mode.t;
}

type t = {
  log : access Vec.t;
  invalidated : (int * int * int, unit) Hashtbl.t;
  wiped : (int, unit) Hashtbl.t;  (* log indices whose effects died in a crash *)
  commits : (int, float) Hashtbl.t;
  aborted : (int, unit) Hashtbl.t;
}

let create () =
  { log = Vec.create ();
    invalidated = Hashtbl.create 64;
    wiped = Hashtbl.create 16;
    commits = Hashtbl.create 64;
    aborted = Hashtbl.create 64 }

let record t ~time ~site ~txn ~op_index ~attempt grants =
  List.iter
    (fun (resource, mode) ->
      Vec.push t.log
        { a_time = time; a_site = site; a_txn = txn; a_op = op_index;
          a_attempt = attempt; a_resource = resource; a_mode = mode })
    grants

let invalidate t ~txn ~op_index ~attempt =
  Hashtbl.replace t.invalidated (txn, op_index, attempt) ()

(* A crash wipes the site's volatile effects, so accesses recorded there
   describe state that no longer exists: a retransmitted shipment re-executes
   against the recovered store and records fresh accesses at a later time.
   Keeping the dead recording would order the re-executed transaction both
   before and after its conflict partners — a phantom cycle. Transactions
   [keep] says are WAL-protected stay: a prepared one is re-instated
   verbatim by redo replay, a finished one was already durable. Wiping by
   log index leaves any post-restart re-recording of the same operation
   untouched. *)
let wipe_site t ~site ~keep =
  Vec.iteri
    (fun idx a ->
      if a.a_site = site && not (keep a.a_txn) then
        Hashtbl.replace t.wiped idx ())
    t.log

let note_commit t ~txn ~time = Hashtbl.replace t.commits txn time

let note_abort t ~txn = Hashtbl.replace t.aborted txn ()

let committed t =
  Hashtbl.fold (fun txn time acc -> (txn, time) :: acc) t.commits []
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let valid t a =
  Hashtbl.mem t.commits a.a_txn
  && (not (Hashtbl.mem t.aborted a.a_txn))
  && not (Hashtbl.mem t.invalidated (a.a_txn, a.a_op, a.a_attempt))

let accesses t =
  let acc = ref [] in
  Vec.iteri
    (fun idx a ->
      if valid t a && not (Hashtbl.mem t.wiped idx) then acc := a :: !acc)
    t.log;
  List.sort (fun a b -> compare a.a_time b.a_time) !acc

let conflict_edges t =
  (* Group valid accesses per (site, resource); a conflicting pair in time
     order yields an edge. Quadratic per group, which is fine: groups are
     small (a resource is rarely touched by many committed transactions). *)
  let groups : (int * Table.resource, access list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter
    (fun a ->
      let key = (a.a_site, a.a_resource) in
      match Hashtbl.find_opt groups key with
      | Some l -> l := a :: !l (* reverse time order *)
      | None -> Hashtbl.add groups key (ref [ a ]))
    (accesses t);
  let edges = Hashtbl.create 256 in
  Hashtbl.iter
    (fun _ group ->
      let items = Array.of_list (List.rev !group) in
      let n = Array.length items in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let a = items.(i) and b = items.(j) in
          if a.a_txn <> b.a_txn && not (Mode.compatible a.a_mode b.a_mode) then
            Hashtbl.replace edges (a.a_txn, b.a_txn) ()
        done
      done)
    groups;
  Hashtbl.fold (fun e () acc -> e :: acc) edges [] |> List.sort compare

let check_serializable t =
  let g = Wfg.create () in
  List.iter
    (fun (a, b) -> Wfg.add_wait g ~waiter:a ~holders:[ b ])
    (conflict_edges t);
  match Wfg.find_cycle g with
  | None -> Ok ()
  | Some cycle ->
    Error
      (Printf.sprintf "conflict cycle among committed transactions: %s"
         (String.concat " -> " (List.map string_of_int cycle)))

let size t = Vec.length t.log
