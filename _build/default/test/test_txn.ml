(* Tests for the transaction record and its status machine. *)

module Txn = Dtx_txn.Txn
module Op = Dtx_update.Op
module P = Dtx_xpath.Parser

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let mk_ops () =
  [ ("d1", Op.Query (P.parse "/people/person"));
    ("d2", Op.Insert { target = P.parse "/products"; pos = Op.Into; fragment = "<p/>" });
    ("d1", Op.Query (P.parse "/people/person/name")) ]

let test_create () =
  let t = Txn.create ~id:7 ~client:2 ~coordinator:1 (mk_ops ()) in
  check "id" 7 t.Txn.id;
  check "ops" 3 (Array.length t.Txn.ops);
  checkb "active" true (t.Txn.status = Txn.Active);
  checkb "not finished" false (Txn.is_finished t);
  Alcotest.(check (list string)) "docs sorted unique" [ "d1"; "d2" ] (Txn.docs t)

let test_op_iteration () =
  let t = Txn.create ~id:1 ~client:0 ~coordinator:0 (mk_ops ()) in
  (match Txn.next_operation t with
   | Some r ->
     check "first op index" 0 r.Txn.op_index;
     Alcotest.(check string) "doc" "d1" r.Txn.doc
   | None -> Alcotest.fail "expected op");
  Txn.advance t;
  (match Txn.next_operation t with
   | Some r -> check "second" 1 r.Txn.op_index
   | None -> Alcotest.fail "expected op");
  checkb "first marked executed" true t.Txn.ops.(0).Txn.executed;
  Txn.advance t;
  Txn.advance t;
  checkb "finished" true (Txn.is_finished t);
  checkb "no more ops" true (Txn.next_operation t = None);
  (* Advancing past the end is harmless. *)
  Txn.advance t

let test_is_update () =
  let t = Txn.create ~id:1 ~client:0 ~coordinator:0 (mk_ops ()) in
  checkb "has update" true (Txn.is_update t);
  let ro =
    Txn.create ~id:2 ~client:0 ~coordinator:0
      [ ("d1", Op.Query (P.parse "/a")) ]
  in
  checkb "read-only" false (Txn.is_update ro)

let test_with_id_resets () =
  let t = Txn.create ~id:1 ~client:0 ~coordinator:0 (mk_ops ()) in
  Txn.advance t;
  t.Txn.status <- Txn.Aborted;
  t.Txn.ops.(0).Txn.executed_sites <- [ 0; 1 ];
  let t' = Txn.with_id t 9 in
  check "new id" 9 t'.Txn.id;
  checkb "active again" true (t'.Txn.status = Txn.Active);
  check "back at op 0" 0 t'.Txn.next_op;
  checkb "exec flags cleared" false t'.Txn.ops.(0).Txn.executed;
  Alcotest.(check (list int)) "sites cleared" [] t'.Txn.ops.(0).Txn.executed_sites;
  (* The original is untouched. *)
  checkb "original still aborted" true (t.Txn.status = Txn.Aborted)

let test_reset_for_restart_counts () =
  let t = Txn.create ~id:1 ~client:0 ~coordinator:0 (mk_ops ()) in
  let t' = Txn.reset_for_restart t in
  check "restarts" 1 t'.Txn.restarts;
  let t'' = Txn.reset_for_restart t' in
  check "restarts again" 2 t''.Txn.restarts

let test_response_time () =
  let t = Txn.create ~id:1 ~client:0 ~coordinator:0 (mk_ops ()) in
  t.Txn.submitted_at <- 10.0;
  t.Txn.finished_at <- 35.5;
  Alcotest.(check (float 1e-9)) "response" 25.5 (Txn.response_time t)

let test_status_strings () =
  Alcotest.(check (list string)) "statuses"
    [ "active"; "waiting"; "committed"; "aborted"; "failed" ]
    (List.map Txn.status_to_string
       [ Txn.Active; Txn.Waiting; Txn.Committed; Txn.Aborted; Txn.Failed ])

let test_empty_txn () =
  let t = Txn.create ~id:1 ~client:0 ~coordinator:0 [] in
  checkb "immediately finished" true (Txn.is_finished t);
  checkb "no ops" true (Txn.next_operation t = None);
  Alcotest.(check (list string)) "no docs" [] (Txn.docs t)

let () =
  Alcotest.run "txn"
    [ ( "lifecycle",
        [ Alcotest.test_case "create" `Quick test_create;
          Alcotest.test_case "op iteration" `Quick test_op_iteration;
          Alcotest.test_case "is_update" `Quick test_is_update;
          Alcotest.test_case "with_id resets" `Quick test_with_id_resets;
          Alcotest.test_case "restart counter" `Quick test_reset_for_restart_counts;
          Alcotest.test_case "response time" `Quick test_response_time;
          Alcotest.test_case "status strings" `Quick test_status_strings;
          Alcotest.test_case "empty txn" `Quick test_empty_txn ] ) ]
