(* Tests for fragmentation (size balance, coverage) and replica allocation
   (total/partial, catalog). *)

module Fragment = Dtx_frag.Fragment
module Allocation = Dtx_frag.Allocation
module Node = Dtx_xml.Node
module Doc = Dtx_xml.Doc
module Generator = Dtx_xmark.Generator

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let base nodes = Generator.generate (Generator.params_of_nodes nodes)

let test_fragment_names () =
  Alcotest.(check (list string)) "names" [ "x#0"; "x#1"; "x#2" ]
    (Fragment.fragment_names "x" ~parts:3)

let test_single_part_copy () =
  let doc = base 300 in
  match Fragment.fragment doc ~parts:1 with
  | [ f ] ->
    Alcotest.(check string) "renamed" "xmark#0" f.Doc.name;
    checkb "identical content" true (Doc.equal_structure doc f)
  | l -> Alcotest.failf "expected 1 fragment, got %d" (List.length l)

let test_invalid_parts () =
  Alcotest.check_raises "parts=0"
    (Invalid_argument "Fragment.fragment: parts must be >= 1") (fun () ->
      ignore (Fragment.fragment (base 300) ~parts:0))

let test_fragments_share_schema () =
  let doc = base 500 in
  let frags = Fragment.fragment doc ~parts:3 in
  check "three fragments" 3 (List.length frags);
  List.iter
    (fun f ->
      Alcotest.(check string) "root" "site" f.Doc.root.Node.label;
      (* Every first-level section is present in every fragment. *)
      let sections = List.map (fun n -> n.Node.label) (Node.children f.Doc.root) in
      List.iter
        (fun s -> checkb ("has " ^ s) true (List.mem s sections))
        [ "regions"; "categories"; "people"; "open_auctions"; "closed_auctions" ])
    frags

let test_units_partition () =
  (* Every second-level unit of the base appears in exactly one fragment. *)
  let doc = base 600 in
  let frags = Fragment.fragment doc ~parts:4 in
  let count_label l d =
    Node.fold (fun acc n -> if n.Node.label = l then acc + 1 else acc) 0 d.Doc.root
  in
  List.iter
    (fun label ->
      let total = count_label label doc in
      let sum = List.fold_left (fun a f -> a + count_label label f) 0 frags in
      check ("partitioned " ^ label) total sum)
    [ "person"; "item"; "open_auction"; "closed_auction"; "category" ]

let test_fragment_validity () =
  let frags = Fragment.fragment (base 600) ~parts:4 in
  List.iter
    (fun f -> checkb ("valid " ^ f.Doc.name) true (Doc.validate f = Ok ()))
    frags

let test_size_balance () =
  let frags = Fragment.fragment (base 4000) ~parts:4 in
  (* Kurita-style goal: similar sizes. Allow 1.6x skew (regions are chunky). *)
  checkb "balanced" true (Fragment.size_imbalance frags < 1.6)

let test_original_untouched () =
  let doc = base 400 in
  let before = Doc.size doc in
  ignore (Fragment.fragment doc ~parts:3);
  check "original intact" before (Doc.size doc);
  checkb "valid" true (Doc.validate doc = Ok ())

(* --- allocation ---------------------------------------------------------- *)

let docs_for n = List.init n (fun i -> Doc.create ~name:(Printf.sprintf "d%d" i) ~root_label:"r")

let test_total_replication () =
  let ps = Allocation.allocate ~n_sites:3 Allocation.Total (docs_for 2) in
  List.iter
    (fun (p : Allocation.placement) ->
      Alcotest.(check (list int)) "all sites" [ 0; 1; 2 ] p.Allocation.sites)
    ps

let test_partial_round_robin () =
  let ps =
    Allocation.allocate ~n_sites:3 (Allocation.Partial { copies = 1 }) (docs_for 4)
  in
  Alcotest.(check (list (list int))) "round robin"
    [ [ 0 ]; [ 1 ]; [ 2 ]; [ 0 ] ]
    (List.map (fun (p : Allocation.placement) -> p.Allocation.sites) ps)

let test_partial_copies () =
  let ps =
    Allocation.allocate ~n_sites:4 (Allocation.Partial { copies = 2 }) (docs_for 4)
  in
  List.iteri
    (fun i (p : Allocation.placement) ->
      check ("copies of d" ^ string_of_int i) 2 (List.length p.Allocation.sites))
    ps

let test_allocate_invalid () =
  Alcotest.check_raises "n_sites 0"
    (Invalid_argument "Allocation.allocate: n_sites < 1") (fun () ->
      ignore (Allocation.allocate ~n_sites:0 Allocation.Total []));
  Alcotest.check_raises "copies too many"
    (Invalid_argument "Allocation.allocate: copies out of range") (fun () ->
      ignore
        (Allocation.allocate ~n_sites:2 (Allocation.Partial { copies = 3 })
           (docs_for 1)))

let test_catalog () =
  let ps =
    Allocation.allocate ~n_sites:2 (Allocation.Partial { copies = 1 }) (docs_for 3)
  in
  let c = Allocation.catalog ps in
  Alcotest.(check (list int)) "sites_of d0" [ 0 ] (Allocation.sites_of c "d0");
  Alcotest.(check (list int)) "sites_of d1" [ 1 ] (Allocation.sites_of c "d1");
  Alcotest.(check (list int)) "unknown" [] (Allocation.sites_of c "ghost");
  Alcotest.(check (list string)) "docs at 0" [ "d0"; "d2" ] (Allocation.docs_at c 0);
  Alcotest.(check (list string)) "all docs" [ "d0"; "d1"; "d2" ] (Allocation.all_docs c)

let test_replication_strings () =
  Alcotest.(check string) "total" "total" (Allocation.replication_to_string Allocation.Total);
  Alcotest.(check string) "partial" "partial(x2)"
    (Allocation.replication_to_string (Allocation.Partial { copies = 2 }))

let prop_partition_is_total =
  QCheck.Test.make ~name:"fragmentation loses no nodes (modulo skeletons)"
    ~count:15
    QCheck.(pair (int_range 300 1500) (int_range 1 6))
    (fun (nodes, parts) ->
      let doc = base nodes in
      let frags = Fragment.fragment doc ~parts in
      (* Sum of fragment sizes = base size + (parts-1) * skeleton size, where
         the shared skeleton is root + sections (+ their attributes). For
         our generator the skeleton has no attributes: 1 + #sections. *)
      let skeleton = 1 + List.length (Node.children doc.Doc.root) in
      let sum = List.fold_left (fun a f -> a + Doc.size f) 0 frags in
      if parts = 1 then sum = Doc.size doc
      else sum = Doc.size doc + ((parts - 1) * skeleton))

let () =
  Alcotest.run "frag"
    [ ( "fragment",
        [ Alcotest.test_case "names" `Quick test_fragment_names;
          Alcotest.test_case "single part" `Quick test_single_part_copy;
          Alcotest.test_case "invalid parts" `Quick test_invalid_parts;
          Alcotest.test_case "shared schema" `Quick test_fragments_share_schema;
          Alcotest.test_case "units partition" `Quick test_units_partition;
          Alcotest.test_case "fragments valid" `Quick test_fragment_validity;
          Alcotest.test_case "size balance" `Quick test_size_balance;
          Alcotest.test_case "original untouched" `Quick test_original_untouched;
          QCheck_alcotest.to_alcotest prop_partition_is_total ] );
      ( "allocation",
        [ Alcotest.test_case "total" `Quick test_total_replication;
          Alcotest.test_case "partial round robin" `Quick test_partial_round_robin;
          Alcotest.test_case "partial copies" `Quick test_partial_copies;
          Alcotest.test_case "invalid" `Quick test_allocate_invalid;
          Alcotest.test_case "catalog" `Quick test_catalog;
          Alcotest.test_case "replication strings" `Quick test_replication_strings ] ) ]
