test/test_locks.ml: Alcotest Array Dtx_locks Gen Hashtbl List Printf QCheck QCheck_alcotest
