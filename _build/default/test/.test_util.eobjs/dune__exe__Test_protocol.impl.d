test/test_protocol.ml: Alcotest Dtx Dtx_dataguide Dtx_frag Dtx_locks Dtx_net Dtx_protocol Dtx_sim Dtx_txn Dtx_update Dtx_util Dtx_xmark Dtx_xml Dtx_xpath List Printf QCheck QCheck_alcotest
