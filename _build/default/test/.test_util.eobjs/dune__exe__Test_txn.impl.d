test/test_txn.ml: Alcotest Array Dtx_txn Dtx_update Dtx_xpath List
