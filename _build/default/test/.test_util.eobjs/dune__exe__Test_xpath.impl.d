test/test_xpath.ml: Alcotest Dtx_xml Dtx_xpath Hashtbl List QCheck QCheck_alcotest
