test/test_sim.ml: Alcotest Dtx_sim Gen List QCheck QCheck_alcotest
