test/test_update.ml: Alcotest Dtx_dataguide Dtx_update Dtx_util Dtx_xmark Dtx_xml Dtx_xpath List QCheck QCheck_alcotest String
