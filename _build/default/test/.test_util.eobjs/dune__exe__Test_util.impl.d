test/test_util.ml: Alcotest Array Dtx_util Gen List QCheck QCheck_alcotest String
