test/test_integration.ml: Alcotest Array Dtx Dtx_frag Dtx_locks Dtx_net Dtx_protocol Dtx_sim Dtx_txn Dtx_update Dtx_util Dtx_xmark Dtx_xml Dtx_xpath Hashtbl List Printf QCheck QCheck_alcotest
