test/test_workload.ml: Alcotest Dtx_frag Dtx_protocol Dtx_util Dtx_workload Format List String
