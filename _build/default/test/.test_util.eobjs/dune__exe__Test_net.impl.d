test/test_net.ml: Alcotest Dtx_net Dtx_sim List
