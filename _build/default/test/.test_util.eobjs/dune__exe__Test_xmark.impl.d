test/test_xmark.ml: Alcotest Dtx_frag Dtx_update Dtx_util Dtx_xmark Dtx_xml Dtx_xpath List Printf QCheck QCheck_alcotest
