test/test_cluster.ml: Alcotest Array Dtx Dtx_frag Dtx_locks Dtx_net Dtx_protocol Dtx_sim Dtx_storage Dtx_txn Dtx_update Dtx_xml Dtx_xpath Filename Hashtbl List Printf Sys Unix
