test/test_storage.ml: Alcotest Bytes Char Dtx_storage Dtx_xmark Dtx_xml Filename Fun List Printf QCheck QCheck_alcotest Random Sys Unix
