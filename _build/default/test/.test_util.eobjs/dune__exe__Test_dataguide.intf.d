test/test_dataguide.mli:
