test/test_frag.ml: Alcotest Dtx_frag Dtx_xmark Dtx_xml List Printf QCheck QCheck_alcotest
