test/test_history.ml: Alcotest Dtx Dtx_locks List String
