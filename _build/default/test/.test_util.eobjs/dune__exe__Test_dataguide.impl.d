test/test_dataguide.ml: Alcotest Dtx_dataguide Dtx_xmark Dtx_xml Dtx_xpath List QCheck QCheck_alcotest
