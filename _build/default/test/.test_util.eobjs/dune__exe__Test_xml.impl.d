test/test_xml.ml: Alcotest Dtx_util Dtx_xml List Option QCheck QCheck_alcotest
