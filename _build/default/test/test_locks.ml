(* Tests for lock modes (the XDGL compatibility matrix), the lock table and
   the wait-for graph. *)

module Mode = Dtx_locks.Mode
module Table = Dtx_locks.Table
module Wfg = Dtx_locks.Wfg

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Mode --------------------------------------------------------------- *)

let test_matrix_symmetric () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          checkb
            (Printf.sprintf "compat %s/%s symmetric" (Mode.to_string a)
               (Mode.to_string b))
            (Mode.compatible a b) (Mode.compatible b a))
        Mode.all)
    Mode.all

let test_exclusive_conflicts_with_all () =
  List.iter
    (fun m ->
      checkb ("X vs " ^ Mode.to_string m) false (Mode.compatible Mode.X m);
      checkb ("XT vs " ^ Mode.to_string m) false (Mode.compatible Mode.XT m))
    Mode.all

let test_paper_key_incompatibility () =
  (* The Fig.-6 scenario hinges on IX vs ST. *)
  checkb "IX/ST conflict" false (Mode.compatible Mode.IX Mode.ST);
  checkb "IS/ST ok" true (Mode.compatible Mode.IS Mode.ST);
  checkb "IS/IX ok" true (Mode.compatible Mode.IS Mode.IX)

let test_shared_family_compatible () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          checkb
            (Printf.sprintf "%s/%s shared-compatible" (Mode.to_string a)
               (Mode.to_string b))
            true (Mode.compatible a b))
        [ Mode.IS; Mode.SI; Mode.SA; Mode.SB ])
    [ Mode.IS; Mode.IX; Mode.SI; Mode.SA; Mode.SB ]

let test_insert_shared_vs_tree () =
  (* Insertion-shared locks update the subtree an ST protects. *)
  checkb "SI/ST conflict" false (Mode.compatible Mode.SI Mode.ST);
  checkb "SA/ST conflict" false (Mode.compatible Mode.SA Mode.ST);
  checkb "SB/ST conflict" false (Mode.compatible Mode.SB Mode.ST);
  checkb "ST/ST ok" true (Mode.compatible Mode.ST Mode.ST)

let test_intention_for () =
  checkb "X -> IX" true (Mode.intention_for Mode.X = Mode.IX);
  checkb "XT -> IX" true (Mode.intention_for Mode.XT = Mode.IX);
  checkb "ST -> IS" true (Mode.intention_for Mode.ST = Mode.IS);
  checkb "SI -> IS" true (Mode.intention_for Mode.SI = Mode.IS);
  checkb "IS -> IS" true (Mode.intention_for Mode.IS = Mode.IS);
  checkb "IX -> IX" true (Mode.intention_for Mode.IX = Mode.IX)

let test_mode_strings () =
  List.iter
    (fun m ->
      match Mode.of_string (Mode.to_string m) with
      | Some m' -> checkb "roundtrip" true (m = m')
      | None -> Alcotest.fail "of_string failed")
    Mode.all;
  checkb "unknown" true (Mode.of_string "ZZ" = None)

(* --- Table --------------------------------------------------------------- *)

let r doc node = Table.resource doc node

let test_acquire_release () =
  let t = Table.create () in
  (match Table.acquire_all t ~txn:1 [ (r "d" 1, Mode.ST); (r "d" 2, Mode.IS) ] with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "should grant");
  check "grants" 2 (Table.lock_count t);
  check "holders of 1" 1 (List.length (Table.holders t (r "d" 1)));
  let freed = Table.release_txn t ~txn:1 in
  check "freed resources" 2 (List.length freed);
  check "empty" 0 (Table.lock_count t)

let test_conflict_reported () =
  let t = Table.create () in
  ignore (Table.acquire_all t ~txn:1 [ (r "d" 1, Mode.ST) ]);
  (match Table.acquire_all t ~txn:2 [ (r "d" 1, Mode.IX) ] with
   | Error [ 1 ] -> ()
   | Error l -> Alcotest.failf "wrong blockers (%d)" (List.length l)
   | Ok () -> Alcotest.fail "should conflict");
  (* All-or-nothing: the failed request must leave no grants behind. *)
  check "txn 2 holds nothing" 0 (List.length (Table.locks_of t ~txn:2))

let test_all_or_nothing () =
  let t = Table.create () in
  ignore (Table.acquire_all t ~txn:1 [ (r "d" 5, Mode.X) ]);
  (match
     Table.acquire_all t ~txn:2 [ (r "d" 4, Mode.IS); (r "d" 5, Mode.IS) ]
   with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "should conflict on node 5");
  checkb "node 4 untouched" true (Table.holders t (r "d" 4) = [])

let test_own_locks_never_conflict () =
  let t = Table.create () in
  ignore (Table.acquire_all t ~txn:1 [ (r "d" 1, Mode.ST) ]);
  (match Table.acquire_all t ~txn:1 [ (r "d" 1, Mode.X) ] with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "self-upgrade must succeed");
  checkb "holds both modes" true
    (Table.txn_holds t ~txn:1 (r "d" 1) Mode.ST
     && Table.txn_holds t ~txn:1 (r "d" 1) Mode.X)

let test_refcounted_grants () =
  let t = Table.create () in
  ignore (Table.acquire_all t ~txn:1 [ (r "d" 1, Mode.IS) ]);
  ignore (Table.acquire_all t ~txn:1 [ (r "d" 1, Mode.IS) ]);
  check "two grants" 2 (Table.lock_count t);
  Table.release_request t ~txn:1 [ (r "d" 1, Mode.IS) ];
  checkb "still held" true (Table.txn_holds t ~txn:1 (r "d" 1) Mode.IS);
  Table.release_request t ~txn:1 [ (r "d" 1, Mode.IS) ];
  checkb "now gone" false (Table.txn_holds t ~txn:1 (r "d" 1) Mode.IS);
  check "empty" 0 (Table.lock_count t)

let test_multiple_blockers_sorted () =
  let t = Table.create () in
  ignore (Table.acquire_all t ~txn:5 [ (r "d" 1, Mode.IS) ]);
  ignore (Table.acquire_all t ~txn:3 [ (r "d" 1, Mode.IS) ]);
  match Table.acquire_all t ~txn:9 [ (r "d" 1, Mode.X) ] with
  | Error blockers -> Alcotest.(check (list int)) "sorted distinct" [ 3; 5 ] blockers
  | Ok () -> Alcotest.fail "should conflict"

let test_resources_namespaced_by_doc () =
  let t = Table.create () in
  ignore (Table.acquire_all t ~txn:1 [ (r "a" 1, Mode.X) ]);
  match Table.acquire_all t ~txn:2 [ (r "b" 1, Mode.X) ] with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "same node id in another doc must not conflict"

let prop_release_after_acquire_empty =
  QCheck.Test.make ~name:"acquire-all then release-txn leaves table empty"
    ~count:100
    QCheck.(list_of_size Gen.(1 -- 20) (pair (int_range 0 10) (int_range 0 7)))
    (fun reqs ->
      let t = Table.create () in
      let modes = Array.of_list Mode.all in
      let reqs =
        List.map (fun (node, mi) -> (r "d" node, modes.(mi))) reqs
      in
      (match Table.acquire_all t ~txn:1 reqs with
       | Ok () -> ()
       | Error _ -> failwith "self conflict impossible");
      ignore (Table.release_txn t ~txn:1);
      Table.lock_count t = 0)

(* --- Wfg ----------------------------------------------------------------- *)

let test_wfg_edges () =
  let g = Wfg.create () in
  Wfg.add_wait g ~waiter:1 ~holders:[ 2; 3 ];
  Alcotest.(check (list (pair int int))) "edges" [ (1, 2); (1, 3) ] (Wfg.edges g);
  Alcotest.(check (list int)) "waits of 1" [ 2; 3 ] (Wfg.waits_of g 1);
  check "size" 2 (Wfg.size g);
  Wfg.add_wait g ~waiter:1 ~holders:[ 1 ];
  check "self edge ignored" 2 (Wfg.size g)

let test_wfg_no_cycle () =
  let g = Wfg.create () in
  Wfg.add_wait g ~waiter:1 ~holders:[ 2 ];
  Wfg.add_wait g ~waiter:2 ~holders:[ 3 ];
  checkb "chain has no cycle" true (Wfg.find_cycle g = None)

let test_wfg_cycle () =
  let g = Wfg.create () in
  Wfg.add_wait g ~waiter:1 ~holders:[ 2 ];
  Wfg.add_wait g ~waiter:2 ~holders:[ 1 ];
  match Wfg.find_cycle g with
  | Some cycle ->
    Alcotest.(check (list int)) "both in cycle" [ 1; 2 ] (List.sort compare cycle)
  | None -> Alcotest.fail "cycle missed"

let test_wfg_remove_breaks_cycle () =
  let g = Wfg.create () in
  Wfg.add_wait g ~waiter:1 ~holders:[ 2 ];
  Wfg.add_wait g ~waiter:2 ~holders:[ 3 ];
  Wfg.add_wait g ~waiter:3 ~holders:[ 1 ];
  checkb "cycle present" true (Wfg.find_cycle g <> None);
  Wfg.remove_txn g 2;
  checkb "cycle gone" true (Wfg.find_cycle g = None);
  checkb "edges to 2 gone" true (List.for_all (fun (_, h) -> h <> 2) (Wfg.edges g))

let test_wfg_clear_waits () =
  let g = Wfg.create () in
  Wfg.add_wait g ~waiter:1 ~holders:[ 2 ];
  Wfg.add_wait g ~waiter:3 ~holders:[ 1 ];
  Wfg.clear_waits_of g 1;
  Alcotest.(check (list (pair int int))) "only 3->1 left" [ (3, 1) ] (Wfg.edges g)

let test_wfg_union_finds_distributed_cycle () =
  (* The paper's Fig.-6 situation: each site's graph is acyclic; the union
     is not. *)
  let s1 = Wfg.create () and s2 = Wfg.create () in
  Wfg.add_wait s1 ~waiter:1 ~holders:[ 2 ];
  Wfg.add_wait s2 ~waiter:2 ~holders:[ 1 ];
  checkb "site 1 acyclic" true (Wfg.find_cycle s1 = None);
  checkb "site 2 acyclic" true (Wfg.find_cycle s2 = None);
  let merged = Wfg.union [ s1; s2 ] in
  checkb "union cyclic" true (Wfg.find_cycle merged <> None);
  (* Union must not mutate inputs. *)
  check "s1 unchanged" 1 (Wfg.size s1)

let test_wfg_copy_independent () =
  let g = Wfg.create () in
  Wfg.add_wait g ~waiter:1 ~holders:[ 2 ];
  let c = Wfg.copy g in
  Wfg.add_wait g ~waiter:2 ~holders:[ 1 ];
  checkb "copy unaffected" true (Wfg.find_cycle c = None);
  checkb "original cyclic" true (Wfg.find_cycle g <> None)

(* Oracle: a cycle exists iff some txn can reach itself (naive reachability). *)
let naive_has_cycle edges =
  let succs x = List.filter_map (fun (a, b) -> if a = x then Some b else None) edges in
  let txns = List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) edges) in
  let reaches_self start =
    let visited = Hashtbl.create 16 in
    let rec go x =
      List.exists
        (fun y ->
          y = start
          ||
          if Hashtbl.mem visited y then false
          else begin
            Hashtbl.add visited y ();
            go y
          end)
        (succs x)
    in
    go start
  in
  List.exists reaches_self txns

let prop_cycle_detection_matches_oracle =
  QCheck.Test.make ~name:"find_cycle agrees with naive reachability" ~count:300
    QCheck.(list_of_size Gen.(0 -- 25) (pair (int_range 0 8) (int_range 0 8)))
    (fun edges ->
      let edges = List.filter (fun (a, b) -> a <> b) edges in
      let g = Wfg.create () in
      List.iter (fun (a, b) -> Wfg.add_wait g ~waiter:a ~holders:[ b ]) edges;
      (Wfg.find_cycle g <> None) = naive_has_cycle edges)

let prop_cycle_members_form_cycle =
  QCheck.Test.make ~name:"reported cycle is a real cycle" ~count:300
    QCheck.(list_of_size Gen.(1 -- 25) (pair (int_range 0 8) (int_range 0 8)))
    (fun edges ->
      let edges = List.filter (fun (a, b) -> a <> b) edges in
      let g = Wfg.create () in
      List.iter (fun (a, b) -> Wfg.add_wait g ~waiter:a ~holders:[ b ]) edges;
      match Wfg.find_cycle g with
      | None -> true
      | Some cycle ->
        let n = List.length cycle in
        n >= 2
        && List.for_all
             (fun i ->
               let a = List.nth cycle i and b = List.nth cycle ((i + 1) mod n) in
               List.mem b (Wfg.waits_of g a))
             (List.init n (fun i -> i)))

let () =
  Alcotest.run "locks"
    [ ( "modes",
        [ Alcotest.test_case "matrix symmetric" `Quick test_matrix_symmetric;
          Alcotest.test_case "X/XT conflict all" `Quick test_exclusive_conflicts_with_all;
          Alcotest.test_case "IX vs ST (paper)" `Quick test_paper_key_incompatibility;
          Alcotest.test_case "shared family" `Quick test_shared_family_compatible;
          Alcotest.test_case "SI/SA/SB vs ST" `Quick test_insert_shared_vs_tree;
          Alcotest.test_case "intention_for" `Quick test_intention_for;
          Alcotest.test_case "strings" `Quick test_mode_strings ] );
      ( "table",
        [ Alcotest.test_case "acquire/release" `Quick test_acquire_release;
          Alcotest.test_case "conflicts reported" `Quick test_conflict_reported;
          Alcotest.test_case "all-or-nothing" `Quick test_all_or_nothing;
          Alcotest.test_case "self never conflicts" `Quick test_own_locks_never_conflict;
          Alcotest.test_case "refcounted" `Quick test_refcounted_grants;
          Alcotest.test_case "blockers sorted" `Quick test_multiple_blockers_sorted;
          Alcotest.test_case "doc namespaces" `Quick test_resources_namespaced_by_doc;
          QCheck_alcotest.to_alcotest prop_release_after_acquire_empty ] );
      ( "wfg",
        [ Alcotest.test_case "edges" `Quick test_wfg_edges;
          Alcotest.test_case "no cycle" `Quick test_wfg_no_cycle;
          Alcotest.test_case "cycle" `Quick test_wfg_cycle;
          Alcotest.test_case "remove breaks cycle" `Quick test_wfg_remove_breaks_cycle;
          Alcotest.test_case "clear waits" `Quick test_wfg_clear_waits;
          Alcotest.test_case "union distributed cycle" `Quick
            test_wfg_union_finds_distributed_cycle;
          Alcotest.test_case "copy independent" `Quick test_wfg_copy_independent;
          QCheck_alcotest.to_alcotest prop_cycle_detection_matches_oracle;
          QCheck_alcotest.to_alcotest prop_cycle_members_form_cycle ] ) ]
