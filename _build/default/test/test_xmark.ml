(* Tests for the XMark-schema generator and the adapted query/update
   workload generators. *)

module Generator = Dtx_xmark.Generator
module Queries = Dtx_xmark.Queries
module Node = Dtx_xml.Node
module Doc = Dtx_xml.Doc
module Printer = Dtx_xml.Printer
module Op = Dtx_update.Op
module Exec = Dtx_update.Exec
module Eval = Dtx_xpath.Eval
module P = Dtx_xpath.Parser
module Rng = Dtx_util.Rng
module Fragment = Dtx_frag.Fragment

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_schema_sections () =
  let doc = Generator.generate Generator.default_params in
  Alcotest.(check string) "root" "site" doc.Doc.root.Node.label;
  Alcotest.(check (list string)) "Fig. 7 sections"
    [ "regions"; "categories"; "catgraph"; "people"; "open_auctions";
      "closed_auctions" ]
    (List.map (fun n -> n.Node.label) (Node.children doc.Doc.root))

let test_six_regions () =
  let doc = Generator.generate Generator.default_params in
  let regions = Eval.select doc (P.parse "/site/regions/*") in
  Alcotest.(check (list string)) "continents" Generator.regions
    (List.map (fun n -> n.Node.label) regions)

let test_entity_counts () =
  let p = { Generator.default_params with persons = 7; open_auctions = 5 } in
  let doc = Generator.generate p in
  check "persons" 7 (List.length (Generator.person_ids doc));
  check "auctions" 5 (List.length (Generator.open_auction_ids doc));
  check "items" (p.Generator.items_per_region * 6)
    (List.length (Generator.item_ids doc))

let test_person_structure () =
  let doc = Generator.generate Generator.default_params in
  let persons = Eval.select doc (P.parse "/site/people/person") in
  List.iter
    (fun person ->
      checkb "has @id" true (Node.attribute person "id" <> None);
      checkb "has name" true (Node.find_child person ~label:"name" <> None);
      checkb "has address/city" true
        (Eval.select_from person (P.parse "address/city") <> []))
    persons

let test_auction_structure () =
  let doc = Generator.generate Generator.default_params in
  let oas = Eval.select doc (P.parse "/site/open_auctions/open_auction") in
  List.iter
    (fun oa ->
      checkb "has bidder" true (Node.find_child oa ~label:"bidder" <> None);
      checkb "has current" true (Node.find_child oa ~label:"current" <> None);
      checkb "has itemref" true (Node.find_child oa ~label:"itemref" <> None))
    oas

let test_deterministic () =
  let a = Generator.generate Generator.default_params in
  let b = Generator.generate Generator.default_params in
  checkb "same seed same doc" true (Doc.equal_structure a b);
  let c = Generator.generate { Generator.default_params with seed = 99 } in
  checkb "different seed differs" false (Doc.equal_structure a c)

let test_params_of_nodes_sizing () =
  List.iter
    (fun target ->
      let doc = Generator.generate (Generator.params_of_nodes target) in
      let size = Doc.size doc in
      let err = abs (size - target) in
      checkb
        (Printf.sprintf "target %d -> %d (within 20%%)" target size)
        true
        (err * 5 <= target))
    [ 500; 2000; 10000 ]

let test_params_of_mb () =
  let p = Generator.params_of_mb 4.0 in
  let doc = Generator.generate p in
  let size = Doc.size doc in
  checkb "4 MB ~ 1000 nodes" true (size > 800 && size < 1200)

let test_generated_doc_valid_and_printable () =
  let doc = Generator.generate (Generator.params_of_nodes 1000) in
  checkb "valid" true (Doc.validate doc = Ok ());
  let printed = Printer.to_string doc in
  let reparsed = Dtx_xml.Parser.parse ~name:"x" printed in
  checkb "roundtrips" true (Doc.equal_structure doc reparsed)

let test_adapted_queries_parse () =
  List.iter
    (fun (name, text) ->
      match P.parse text with
      | (_ : Dtx_xpath.Ast.path) -> ()
      | exception P.Parse_error (m, _) -> Alcotest.failf "%s: %s" name m)
    Queries.adapted_queries;
  checkb "at least ten" true (List.length Queries.adapted_queries >= 10)

let test_gen_query_runs () =
  let doc = Generator.generate (Generator.params_of_nodes 800) in
  let rng = Rng.create 5 in
  for _ = 1 to 100 do
    match Queries.gen_query rng doc with
    | Op.Query p -> ignore (Eval.select doc p)
    | op -> Alcotest.failf "not a query: %s" (Op.to_string op)
  done

let test_gen_update_applies () =
  let doc = Generator.generate (Generator.params_of_nodes 800) in
  let rng = Rng.create 6 in
  let counter = ref 0 in
  let fresh () = incr counter; !counter in
  let applied = ref 0 in
  for _ = 1 to 60 do
    let op = Queries.gen_update rng ~fresh doc in
    checkb "is update" true (Op.is_update op);
    match Exec.apply doc op with
    | Ok _ -> incr applied
    | Error (Exec.Target_not_found _) ->
      (* Allowed: an earlier generated remove can take an id away. *)
      ()
    | Error e -> Alcotest.failf "unexpected failure: %s" (Exec.error_to_string e)
  done;
  checkb "most updates applied" true (!applied >= 50);
  checkb "doc still valid" true (Doc.validate doc = Ok ())

let test_gen_update_on_fragment () =
  (* Updates generated against a fragment must reference data that fragment
     actually holds. *)
  let base = Generator.generate (Generator.params_of_nodes 1200) in
  let frags = Fragment.fragment base ~parts:3 in
  let rng = Rng.create 9 in
  let counter = ref 0 in
  let fresh () = incr counter; !counter in
  List.iter
    (fun frag ->
      for _ = 1 to 25 do
        let op = Queries.gen_update rng ~fresh frag in
        match Exec.apply frag op with
        | Ok _ -> ()
        | Error (Exec.Target_not_found _) -> ()
        | Error e -> Alcotest.failf "%s" (Exec.error_to_string e)
      done)
    frags

let prop_scaling_monotone =
  QCheck.Test.make ~name:"bigger parameter targets give bigger documents"
    ~count:10
    QCheck.(int_range 300 4000)
    (fun n ->
      let small = Doc.size (Generator.generate (Generator.params_of_nodes n)) in
      let large = Doc.size (Generator.generate (Generator.params_of_nodes (n * 3))) in
      large > small)

let () =
  Alcotest.run "xmark"
    [ ( "generator",
        [ Alcotest.test_case "schema sections" `Quick test_schema_sections;
          Alcotest.test_case "six regions" `Quick test_six_regions;
          Alcotest.test_case "entity counts" `Quick test_entity_counts;
          Alcotest.test_case "person structure" `Quick test_person_structure;
          Alcotest.test_case "auction structure" `Quick test_auction_structure;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "node sizing" `Quick test_params_of_nodes_sizing;
          Alcotest.test_case "mb sizing" `Quick test_params_of_mb;
          Alcotest.test_case "valid + printable" `Quick
            test_generated_doc_valid_and_printable;
          QCheck_alcotest.to_alcotest prop_scaling_monotone ] );
      ( "workload",
        [ Alcotest.test_case "adapted queries parse" `Quick test_adapted_queries_parse;
          Alcotest.test_case "gen_query runs" `Quick test_gen_query_runs;
          Alcotest.test_case "gen_update applies" `Quick test_gen_update_applies;
          Alcotest.test_case "fragment-aware updates" `Quick test_gen_update_on_fragment ] ) ]
