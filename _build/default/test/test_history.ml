(* Unit tests for the execution-history recorder and its
   conflict-serializability checker. *)

module History = Dtx.History
module Table = Dtx_locks.Table
module Mode = Dtx_locks.Mode

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let r n = Table.resource "d" n

let record h ~time ~txn ?(site = 0) ?(op = 0) ?(attempt = 1) grants =
  History.record h ~time ~site ~txn ~op_index:op ~attempt grants

let test_empty () =
  let h = History.create () in
  checkb "serializable" true (History.check_serializable h = Ok ());
  check "no accesses" 0 (List.length (History.accesses h));
  check "no edges" 0 (List.length (History.conflict_edges h))

let test_commit_order_and_accesses () =
  let h = History.create () in
  record h ~time:1.0 ~txn:1 [ (r 1, Mode.ST) ];
  record h ~time:2.0 ~txn:2 [ (r 2, Mode.ST) ];
  History.note_commit h ~txn:2 ~time:3.0;
  History.note_commit h ~txn:1 ~time:4.0;
  Alcotest.(check (list (pair int (float 0.01)))) "commit order"
    [ (2, 3.0); (1, 4.0) ] (History.committed h);
  check "both accesses valid" 2 (List.length (History.accesses h));
  check "size counts raw records" 2 (History.size h)

let test_uncommitted_excluded () =
  let h = History.create () in
  record h ~time:1.0 ~txn:1 [ (r 1, Mode.X) ];
  record h ~time:2.0 ~txn:2 [ (r 1, Mode.ST) ];
  (* Nobody committed: no conflict edges at all. *)
  check "no edges" 0 (List.length (History.conflict_edges h));
  History.note_commit h ~txn:1 ~time:3.0;
  (* Still no edge: txn 2 never committed. *)
  check "still none" 0 (List.length (History.conflict_edges h))

let test_conflict_edge_direction () =
  let h = History.create () in
  record h ~time:1.0 ~txn:1 [ (r 7, Mode.X) ];
  record h ~time:2.0 ~txn:2 [ (r 7, Mode.ST) ];
  History.note_commit h ~txn:1 ~time:1.5;
  History.note_commit h ~txn:2 ~time:2.5;
  Alcotest.(check (list (pair int int))) "earlier -> later" [ (1, 2) ]
    (History.conflict_edges h);
  checkb "acyclic" true (History.check_serializable h = Ok ())

let test_compatible_modes_no_edge () =
  let h = History.create () in
  record h ~time:1.0 ~txn:1 [ (r 7, Mode.ST) ];
  record h ~time:2.0 ~txn:2 [ (r 7, Mode.ST) ];
  History.note_commit h ~txn:1 ~time:3.0;
  History.note_commit h ~txn:2 ~time:3.5;
  check "shared locks do not conflict" 0 (List.length (History.conflict_edges h))

let test_sites_are_separate_resources () =
  let h = History.create () in
  History.record h ~time:1.0 ~site:0 ~txn:1 ~op_index:0 ~attempt:1
    [ (r 7, Mode.X) ];
  History.record h ~time:2.0 ~site:1 ~txn:2 ~op_index:0 ~attempt:1
    [ (r 7, Mode.X) ];
  History.note_commit h ~txn:1 ~time:3.0;
  History.note_commit h ~txn:2 ~time:3.5;
  check "same node id on different sites is no conflict" 0
    (List.length (History.conflict_edges h))

let test_invalidation_drops_attempt () =
  let h = History.create () in
  record h ~time:1.0 ~txn:1 ~op:3 ~attempt:1 [ (r 7, Mode.X) ];
  record h ~time:2.0 ~txn:2 [ (r 7, Mode.ST) ];
  History.invalidate h ~txn:1 ~op_index:3 ~attempt:1;
  (* The undone attempt no longer conflicts... *)
  History.note_commit h ~txn:1 ~time:3.0;
  History.note_commit h ~txn:2 ~time:3.5;
  check "no edge from undone attempt" 0 (List.length (History.conflict_edges h));
  (* ...but a re-execution under a new attempt does. *)
  record h ~time:4.0 ~txn:1 ~op:3 ~attempt:2 [ (r 7, Mode.X) ];
  check "fresh attempt conflicts" 1 (List.length (History.conflict_edges h))

let test_abort_drops_txn () =
  let h = History.create () in
  record h ~time:1.0 ~txn:1 [ (r 7, Mode.X) ];
  record h ~time:2.0 ~txn:2 [ (r 7, Mode.ST) ];
  History.note_commit h ~txn:1 ~time:3.0;
  History.note_commit h ~txn:2 ~time:3.5;
  check "edge present" 1 (List.length (History.conflict_edges h));
  History.note_abort h ~txn:2;
  check "aborted txn excluded" 0 (List.length (History.conflict_edges h))

let test_cycle_detected () =
  (* A non-serializable interleaving (impossible under strict 2PL, but the
     checker must catch it if the mechanism ever regressed): t1 reads a
     before t2 writes it, t2 reads b before t1 writes it. *)
  let h = History.create () in
  record h ~time:1.0 ~txn:1 ~op:0 [ (r 1, Mode.ST) ];
  record h ~time:2.0 ~txn:2 ~op:0 [ (r 2, Mode.ST) ];
  record h ~time:3.0 ~txn:2 ~op:1 [ (r 1, Mode.X) ];
  record h ~time:4.0 ~txn:1 ~op:1 [ (r 2, Mode.X) ];
  History.note_commit h ~txn:1 ~time:5.0;
  History.note_commit h ~txn:2 ~time:6.0;
  check "two edges" 2 (List.length (History.conflict_edges h));
  match History.check_serializable h with
  | Error msg -> checkb "cycle named" true (String.length msg > 10)
  | Ok () -> Alcotest.fail "cycle missed"

let test_value_resources_distinct () =
  let h = History.create () in
  record h ~time:1.0 ~txn:1 [ (Table.value_resource "d" 7 "a", Mode.ST) ];
  record h ~time:2.0 ~txn:2 [ (Table.value_resource "d" 7 "b", Mode.X) ];
  History.note_commit h ~txn:1 ~time:3.0;
  History.note_commit h ~txn:2 ~time:3.5;
  check "different values no conflict" 0 (List.length (History.conflict_edges h));
  record h ~time:4.0 ~txn:1 ~op:1 [ (Table.value_resource "d" 7 "b", Mode.ST) ];
  checkb "same value conflicts (time order 2 before 4 -> 2->1)" true
    (History.conflict_edges h = [ (2, 1) ])

let () =
  Alcotest.run "history"
    [ ( "history",
        [ Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "commit order" `Quick test_commit_order_and_accesses;
          Alcotest.test_case "uncommitted excluded" `Quick test_uncommitted_excluded;
          Alcotest.test_case "edge direction" `Quick test_conflict_edge_direction;
          Alcotest.test_case "compatible modes" `Quick test_compatible_modes_no_edge;
          Alcotest.test_case "per-site resources" `Quick test_sites_are_separate_resources;
          Alcotest.test_case "invalidation" `Quick test_invalidation_drops_attempt;
          Alcotest.test_case "abort drops txn" `Quick test_abort_drops_txn;
          Alcotest.test_case "cycle detected" `Quick test_cycle_detected;
          Alcotest.test_case "value resources" `Quick test_value_resources_distinct ] ) ]
