(* Tests for the storage backends: memory and filesystem behave identically
   through the STORE interface; loads are private copies. *)

module Storage = Dtx_storage.Storage
module Pager = Dtx_storage.Pager
module Paged = Dtx_storage.Paged
module Doc = Dtx_xml.Doc
module Node = Dtx_xml.Node
module Xml_parser = Dtx_xml.Parser
module Generator = Dtx_xmark.Generator

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let sample () =
  Xml_parser.parse ~name:"doc one"
    "<people><person id=\"1\"><name>Ana</name></person></people>"

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dtx_storage_test_%d_%d" (Unix.getpid ()) (Random.int 100000))
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let backends f =
  f (Storage.memory ());
  with_tmp_dir (fun dir -> f (Storage.filesystem ~dir));
  with_tmp_dir (fun dir ->
      f (Storage.paged ~path:(Filename.concat dir "store.dtxp") ()))

let test_store_load_roundtrip () =
  backends (fun s ->
      let doc = sample () in
      Storage.store s doc;
      match Storage.load s doc.Doc.name with
      | Some loaded ->
        checkb
          ("roundtrip on " ^ Storage.backend_name s)
          true
          (Doc.equal_structure doc loaded)
      | None -> Alcotest.fail "load failed")

let test_load_missing () =
  backends (fun s ->
      checkb "missing" true (Storage.load s "nope" = None);
      checkb "mem" false (Storage.mem s "nope"))

let test_list_sorted () =
  backends (fun s ->
      Storage.store s (Doc.create ~name:"b" ~root_label:"r");
      Storage.store s (Doc.create ~name:"a" ~root_label:"r");
      Storage.store s (Doc.create ~name:"c" ~root_label:"r");
      Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] (Storage.list s))

let test_overwrite () =
  backends (fun s ->
      let d1 = Doc.create ~name:"x" ~root_label:"v1" in
      let d2 = Doc.create ~name:"x" ~root_label:"v2" in
      Storage.store s d1;
      Storage.store s d2;
      match Storage.load s "x" with
      | Some d -> Alcotest.(check string) "latest wins" "v2" d.Doc.root.Node.label
      | None -> Alcotest.fail "load failed")

let test_remove () =
  backends (fun s ->
      Storage.store s (sample ());
      Storage.remove s "doc one";
      checkb "gone" true (Storage.load s "doc one" = None);
      (* Removing again is harmless. *)
      Storage.remove s "doc one")

let test_load_is_private_copy () =
  backends (fun s ->
      let doc = sample () in
      Storage.store s doc;
      (match Storage.load s doc.Doc.name with
       | Some copy ->
         copy.Doc.root.Node.label <- "mutated";
         (match Storage.load s doc.Doc.name with
          | Some again ->
            Alcotest.(check string) "store unaffected" "people"
              again.Doc.root.Node.label
          | None -> Alcotest.fail "second load failed")
       | None -> Alcotest.fail "load failed"))

let test_awkward_names () =
  backends (fun s ->
      (* Fragment names contain '#'; also test slashes and unicode-ish. *)
      List.iter
        (fun name ->
          let d = Doc.create ~name ~root_label:"r" in
          Storage.store s d;
          checkb ("load " ^ name) true (Storage.load s name <> None))
        [ "xmark#0"; "a/b"; "weird name!"; "d1" ];
      check "all listed" 4 (List.length (Storage.list s)))

let test_counters () =
  let s = Storage.memory () in
  Storage.store s (sample ());
  ignore (Storage.load s "doc one");
  ignore (Storage.load s "doc one");
  check "loads" 2 (Storage.load_count s);
  check "stores" 1 (Storage.store_count s)

let test_filesystem_persists_across_handles () =
  with_tmp_dir (fun dir ->
      let s1 = Storage.filesystem ~dir in
      Storage.store s1 (sample ());
      (* A second handle over the same directory sees the document. *)
      let s2 = Storage.filesystem ~dir in
      match Storage.load s2 "doc one" with
      | Some d -> checkb "persisted" true (Doc.equal_structure d (sample ()))
      | None -> Alcotest.fail "not persisted")

let test_filesystem_roundtrip_xmark () =
  with_tmp_dir (fun dir ->
      let s = Storage.filesystem ~dir in
      let doc = Generator.generate (Generator.params_of_nodes 600) in
      Storage.store s doc;
      match Storage.load s doc.Doc.name with
      | Some loaded -> checkb "xmark roundtrip" true (Doc.equal_structure doc loaded)
      | None -> Alcotest.fail "load failed")

(* --- pager ---------------------------------------------------------------- *)

let with_pager ?(pool = 4) f =
  with_tmp_dir (fun dir ->
      let pager = Pager.open_file ~path:(Filename.concat dir "p.db") ~pool_pages:pool in
      Fun.protect ~finally:(fun () -> Pager.close pager) (fun () -> f pager))

let page_with_byte b =
  let p = Bytes.make Pager.page_size '\000' in
  Bytes.set p 0 b;
  p

let test_pager_alloc_rw () =
  with_pager (fun pager ->
      check "starts with header page" 1 (Pager.page_count pager);
      let a = Pager.alloc pager and b = Pager.alloc pager in
      checkb "distinct ids" true (a <> b && a > 0 && b > 0);
      Pager.write pager a (page_with_byte 'A');
      Pager.write pager b (page_with_byte 'B');
      checkb "read back" true
        (Bytes.get (Pager.read pager a) 0 = 'A'
         && Bytes.get (Pager.read pager b) 0 = 'B'))

let test_pager_bad_args () =
  with_pager (fun pager ->
      Alcotest.check_raises "oob read"
        (Invalid_argument "Pager.read: page 9 out of range") (fun () ->
          ignore (Pager.read pager 9));
      Alcotest.check_raises "bad size" (Invalid_argument "Pager.write: bad size")
        (fun () -> Pager.write pager 0 (Bytes.create 7)));
  with_tmp_dir (fun dir ->
      Alcotest.check_raises "pool < 1"
        (Invalid_argument "Pager.open_file: pool_pages < 1") (fun () ->
          ignore (Pager.open_file ~path:(Filename.concat dir "x") ~pool_pages:0)))

let test_pager_eviction_and_persistence () =
  with_pager ~pool:2 (fun pager ->
      (* Write 6 pages through a 2-frame pool: evictions must spill to disk
         and reads must bring the data back intact. *)
      let ids = List.init 6 (fun _ -> Pager.alloc pager) in
      List.iteri
        (fun i id -> Pager.write pager id (page_with_byte (Char.chr (65 + i))))
        ids;
      checkb "pool bounded" true (Pager.pool_resident pager <= 2);
      List.iteri
        (fun i id ->
          checkb
            (Printf.sprintf "page %d content survives eviction" id)
            true
            (Bytes.get (Pager.read pager id) 0 = Char.chr (65 + i)))
        ids;
      let st = Pager.stats pager in
      checkb "evictions happened" true (st.Pager.evictions > 0);
      checkb "disk was read" true (st.Pager.disk_reads > 0))

let test_pager_survives_reopen () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "p.db" in
      let pager = Pager.open_file ~path ~pool_pages:4 in
      let id = Pager.alloc pager in
      Pager.write pager id (page_with_byte 'Z');
      Pager.close pager;
      let pager2 = Pager.open_file ~path ~pool_pages:4 in
      Fun.protect ~finally:(fun () -> Pager.close pager2) (fun () ->
          check "page count persisted" 2 (Pager.page_count pager2);
          checkb "data persisted" true (Bytes.get (Pager.read pager2 id) 0 = 'Z')))

(* --- paged store ------------------------------------------------------------ *)

let test_paged_multi_page_docs () =
  with_tmp_dir (fun dir ->
      let p = Paged.open_store ~path:(Filename.concat dir "s.dtxp") ~pool_pages:8 () in
      Fun.protect ~finally:(fun () -> Paged.close p) (fun () ->
          (* ~20k nodes serialize far beyond one 4 KiB page. *)
          let doc = Generator.generate (Generator.params_of_nodes 3000) in
          Paged.store p doc;
          checkb "spans many pages" true (Paged.page_count p > 10);
          match Paged.load p doc.Doc.name with
          | Some loaded -> checkb "roundtrip" true (Doc.equal_structure doc loaded)
          | None -> Alcotest.fail "load failed"))

let test_paged_free_list_reuse () =
  with_tmp_dir (fun dir ->
      let p = Paged.open_store ~path:(Filename.concat dir "s.dtxp") () in
      Fun.protect ~finally:(fun () -> Paged.close p) (fun () ->
          let doc = Generator.generate (Generator.params_of_nodes 1000) in
          Paged.store p doc;
          let after_first = Paged.page_count p in
          (* Overwriting frees the old chain and reuses it: the file must not
             keep growing. *)
          for _ = 1 to 10 do Paged.store p doc done;
          checkb "file growth bounded by one extra chain" true
            (Paged.page_count p <= (2 * after_first) + 2);
          Paged.remove p doc.Doc.name;
          checkb "pages returned to free list" true (Paged.free_pages p > 0);
          checkb "gone" true (Paged.load p doc.Doc.name = None)))

let test_paged_survives_reopen () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "s.dtxp" in
      let p = Paged.open_store ~path () in
      let doc = sample () in
      Paged.store p doc;
      Paged.close p;
      let p2 = Paged.open_store ~path () in
      Fun.protect ~finally:(fun () -> Paged.close p2) (fun () ->
          Alcotest.(check (list string)) "directory persisted" [ "doc one" ]
            (Paged.list p2);
          match Paged.load p2 "doc one" with
          | Some d -> checkb "content persisted" true (Doc.equal_structure d (sample ()))
          | None -> Alcotest.fail "not persisted"))

let test_paged_small_pool_still_correct () =
  with_tmp_dir (fun dir ->
      (* A pool of 2 frames forces constant eviction; correctness must not
         depend on residency. *)
      let p = Paged.open_store ~path:(Filename.concat dir "s.dtxp") ~pool_pages:2 () in
      Fun.protect ~finally:(fun () -> Paged.close p) (fun () ->
          let docs =
            List.init 5 (fun i ->
                Generator.generate ~name:(Printf.sprintf "d%d" i)
                  (Generator.params_of_nodes (300 + (100 * i))))
          in
          List.iter (Paged.store p) docs;
          List.iter
            (fun (d : Doc.t) ->
              match Paged.load p d.Doc.name with
              | Some l ->
                checkb (d.Doc.name ^ " intact") true (Doc.equal_structure d l)
              | None -> Alcotest.fail "load failed")
            docs;
          let st = Paged.pager_stats p in
          checkb "pool thrashed (evictions)" true (st.Pager.evictions > 10)))

let prop_paged_random_roundtrip =
  QCheck.Test.make ~name:"paged store roundtrips random documents" ~count:15
    QCheck.(pair (int_range 100 1500) (int_range 2 16))
    (fun (nodes, pool) ->
      let dir =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "dtx_paged_prop_%d_%d_%d" (Unix.getpid ()) nodes pool)
      in
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
      Sys.mkdir dir 0o755;
      let p = Paged.open_store ~path:(Filename.concat dir "s.dtxp") ~pool_pages:pool () in
      Fun.protect
        ~finally:(fun () ->
          Paged.close p;
          ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
        (fun () ->
          let doc = Generator.generate (Generator.params_of_nodes nodes) in
          Paged.store p doc;
          match Paged.load p doc.Doc.name with
          | Some l -> Doc.equal_structure doc l
          | None -> false))

let () =
  Alcotest.run "storage"
    [ ( "interface",
        [ Alcotest.test_case "roundtrip" `Quick test_store_load_roundtrip;
          Alcotest.test_case "missing" `Quick test_load_missing;
          Alcotest.test_case "list sorted" `Quick test_list_sorted;
          Alcotest.test_case "overwrite" `Quick test_overwrite;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "private copies" `Quick test_load_is_private_copy;
          Alcotest.test_case "awkward names" `Quick test_awkward_names;
          Alcotest.test_case "counters" `Quick test_counters ] );
      ( "filesystem",
        [ Alcotest.test_case "persists across handles" `Quick
            test_filesystem_persists_across_handles;
          Alcotest.test_case "xmark roundtrip" `Quick test_filesystem_roundtrip_xmark ] );
      ( "pager",
        [ Alcotest.test_case "alloc + rw" `Quick test_pager_alloc_rw;
          Alcotest.test_case "bad args" `Quick test_pager_bad_args;
          Alcotest.test_case "eviction" `Quick test_pager_eviction_and_persistence;
          Alcotest.test_case "reopen" `Quick test_pager_survives_reopen ] );
      ( "paged store",
        [ Alcotest.test_case "multi-page docs" `Quick test_paged_multi_page_docs;
          Alcotest.test_case "free-list reuse" `Quick test_paged_free_list_reuse;
          Alcotest.test_case "reopen" `Quick test_paged_survives_reopen;
          Alcotest.test_case "tiny pool" `Quick test_paged_small_pool_still_correct;
          QCheck_alcotest.to_alcotest prop_paged_random_roundtrip ] ) ]
