(* Tests for the update language: parsing the textual syntax, applying each
   operation kind, undo correctness (including the apply∘undo identity
   property), and DataGuide delta consistency. *)

module Op = Dtx_update.Op
module Exec = Dtx_update.Exec
module Node = Dtx_xml.Node
module Doc = Dtx_xml.Doc
module Xml_parser = Dtx_xml.Parser
module Printer = Dtx_xml.Printer
module P = Dtx_xpath.Parser
module Eval = Dtx_xpath.Eval
module Dg = Dtx_dataguide.Dataguide
module Generator = Dtx_xmark.Generator
module Queries = Dtx_xmark.Queries
module Rng = Dtx_util.Rng

let check = Alcotest.(check int)
let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)

let store_doc () =
  Xml_parser.parse ~name:"d2"
    "<products>\n\
     <product><id>4</id><description>Pen</description><price>1.20</price></product>\n\
     <product><id>14</id><description>Ink</description><price>3.50</price></product>\n\
     </products>"

let apply_exn doc op =
  match Exec.apply doc op with
  | Ok eff -> eff
  | Error e -> Alcotest.failf "apply failed: %s" (Exec.error_to_string e)

(* --- Op parsing --------------------------------------------------------- *)

let test_parse_query () =
  match Op.parse "QUERY /products/product[id = \"4\"]" with
  | Ok (Op.Query _) -> ()
  | Ok op -> Alcotest.failf "wrong op %s" (Op.to_string op)
  | Error e -> Alcotest.fail e

let test_parse_insert () =
  match Op.parse "insert into /products <product><id>13</id></product>" with
  | Ok (Op.Insert { pos = Op.Into; fragment; _ }) ->
    checkb "fragment kept" true (String.length fragment > 0)
  | Ok op -> Alcotest.failf "wrong op %s" (Op.to_string op)
  | Error e -> Alcotest.fail e

let test_parse_insert_positions () =
  (match Op.parse "INSERT AFTER /products/product[1] <product/>" with
   | Ok (Op.Insert { pos = Op.After; _ }) -> ()
   | _ -> Alcotest.fail "after");
  match Op.parse "INSERT BEFORE /products/product[1] <product/>" with
  | Ok (Op.Insert { pos = Op.Before; _ }) -> ()
  | _ -> Alcotest.fail "before"

let test_parse_rename_change () =
  (match Op.parse "RENAME /products/product[1]/description TO label" with
   | Ok (Op.Rename { new_label = "label"; _ }) -> ()
   | _ -> Alcotest.fail "rename");
  match Op.parse "CHANGE /products/product[1]/price TO \"9.99\"" with
  | Ok (Op.Change { new_text = "9.99"; _ }) -> ()
  | _ -> Alcotest.fail "change"

let test_parse_transpose_remove () =
  (match Op.parse "TRANSPOSE //product[id = \"4\"] INTO /products" with
   | Ok (Op.Transpose _) -> ()
   | _ -> Alcotest.fail "transpose");
  match Op.parse "REMOVE //product[id = \"14\"]" with
  | Ok (Op.Remove _) -> ()
  | _ -> Alcotest.fail "remove"

let test_parse_errors () =
  let expect_error s =
    match Op.parse s with
    | Error _ -> ()
    | Ok op -> Alcotest.failf "expected error, got %s" (Op.to_string op)
  in
  expect_error "";
  expect_error "FROBNICATE /a";
  expect_error "INSERT SIDEWAYS /a <x/>";
  expect_error "INSERT INTO /a";
  expect_error "RENAME /a";
  expect_error "TRANSPOSE /a";
  (* empty path after keyword *)
  expect_error "QUERY ["

let test_parse_to_string_roundtrip () =
  List.iter
    (fun s ->
      match Op.parse s with
      | Ok op -> (
        match Op.parse (Op.to_string op) with
        | Ok op2 -> checkb ("roundtrip " ^ s) true (op = op2)
        | Error e -> Alcotest.fail e)
      | Error e -> Alcotest.fail e)
    [ "QUERY /products/product";
      "INSERT INTO /products <product><id>9</id></product>";
      "REMOVE //product[id = \"4\"]";
      "RENAME /products/product[1] TO item";
      "CHANGE //price TO \"7.77\"";
      "TRANSPOSE //product[id = \"4\"] INTO /products" ]

let test_parse_script () =
  let script =
    "# restock\n\
     QUERY /products/product\n\
     \n\
     INSERT INTO /products <product><id>9</id></product>\n\
     CHANGE //product[id = \"9\"]/id TO \"10\"\n"
  in
  match Op.parse_script script with
  | Ok ops -> check "three ops" 3 (List.length ops)
  | Error e -> Alcotest.fail e

let test_parse_script_error_line () =
  match Op.parse_script "QUERY /a\nBOGUS /b\n" with
  | Error e -> checkb "line number reported" true (String.length e > 6 && String.sub e 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "expected error"

(* --- apply -------------------------------------------------------------- *)

let test_query_results () =
  let doc = store_doc () in
  let eff = apply_exn doc (Op.Query (P.parse "/products/product/price")) in
  check "two prices" 2 eff.Exec.result_count;
  check "no undo for query" 0 (List.length eff.Exec.undo);
  checkb "touched counted" true (eff.Exec.touched > 0)

let test_insert_into () =
  let doc = store_doc () in
  let before = Doc.size doc in
  let eff =
    apply_exn doc
      (Op.Insert
         { target = P.parse "/products";
           pos = Op.Into;
           fragment = "<product><id>13</id><description>Mouse</description><price>10.30</price></product>" })
  in
  check "grew by 4" (before + 4) (Doc.size doc);
  check "one insertion" 1 eff.Exec.result_count;
  check "three products" 3
    (List.length (Eval.select doc (P.parse "/products/product")));
  checkb "doc valid" true (Doc.validate doc = Ok ())

let test_insert_after_before () =
  let doc = store_doc () in
  ignore
    (apply_exn doc
       (Op.Insert
          { target = P.parse "/products/product[1]";
            pos = Op.After;
            fragment = "<sep/>" }));
  let kids = List.map (fun n -> n.Node.label) (Node.children doc.Doc.root) in
  Alcotest.(check (list string)) "after" [ "product"; "sep"; "product" ] kids;
  ignore
    (apply_exn doc
       (Op.Insert
          { target = P.parse "/products/product[1]";
            pos = Op.Before;
            fragment = "<first/>" }));
  let kids = List.map (fun n -> n.Node.label) (Node.children doc.Doc.root) in
  Alcotest.(check (list string)) "before" [ "first"; "product"; "sep"; "product" ] kids

let test_insert_bad_fragment () =
  let doc = store_doc () in
  match
    Exec.apply doc
      (Op.Insert { target = P.parse "/products"; pos = Op.Into; fragment = "<broken" })
  with
  | Error (Exec.Invalid_op _) -> ()
  | _ -> Alcotest.fail "expected Invalid_op"

let test_remove () =
  let doc = store_doc () in
  let eff = apply_exn doc (Op.Remove (P.parse "//product[id = \"4\"]")) in
  check "one removed" 1 eff.Exec.result_count;
  check "one product left" 1
    (List.length (Eval.select doc (P.parse "/products/product")));
  checkb "valid" true (Doc.validate doc = Ok ())

let test_remove_root_rejected () =
  let doc = store_doc () in
  match Exec.apply doc (Op.Remove (P.parse "/products")) with
  | Error (Exec.Invalid_op _) -> ()
  | _ -> Alcotest.fail "expected Invalid_op for root removal"

let test_remove_nested_targets () =
  (* Removing //x where targets nest: ancestor removal carries descendants. *)
  let doc = Xml_parser.parse ~name:"d" "<r><x><x/></x><x/></r>" in
  let eff = apply_exn doc (Op.Remove (P.parse "//x")) in
  (* Outer x (with nested) and sibling x — nested one skipped. *)
  check "two detached" 2 eff.Exec.result_count;
  check "root empty" 0 (List.length (Node.children doc.Doc.root))

let test_rename () =
  let doc = store_doc () in
  ignore
    (apply_exn doc
       (Op.Rename { target = P.parse "//description"; new_label = "label" }));
  check "no descriptions" 0 (List.length (Eval.select doc (P.parse "//description")));
  check "two labels" 2 (List.length (Eval.select doc (P.parse "//label")))

let test_change () =
  let doc = store_doc () in
  ignore
    (apply_exn doc
       (Op.Change { target = P.parse "//product[id = \"4\"]/price"; new_text = "2.00" }));
  let prices = Eval.select doc (P.parse "//product[id = \"4\"]/price") in
  checks "changed" "2.00" (Node.text_content (List.hd prices))

let test_transpose () =
  let doc =
    Xml_parser.parse ~name:"d"
      "<r><a><x><k>1</k></x></a><b/></r>"
  in
  ignore
    (apply_exn doc
       (Op.Transpose { source = P.parse "//x"; dest = P.parse "/r/b" }));
  check "moved" 1 (List.length (Eval.select doc (P.parse "/r/b/x/k")));
  check "gone from a" 0 (List.length (Eval.select doc (P.parse "/r/a/x")));
  checkb "valid" true (Doc.validate doc = Ok ())

let test_transpose_into_own_subtree_rejected () =
  let doc = Xml_parser.parse ~name:"d" "<r><a><b/></a></r>" in
  match
    Exec.apply doc (Op.Transpose { source = P.parse "/r/a"; dest = P.parse "/r/a/b" })
  with
  | Error (Exec.Invalid_op _) -> ()
  | _ -> Alcotest.fail "expected Invalid_op"

let test_target_not_found () =
  let doc = store_doc () in
  match Exec.apply doc (Op.Remove (P.parse "//ghost")) with
  | Error (Exec.Target_not_found _) -> ()
  | _ -> Alcotest.fail "expected Target_not_found"

(* --- undo --------------------------------------------------------------- *)

let snapshot doc = Printer.to_string ~indent:false ~decl:false doc

let test_undo_each_kind () =
  let ops =
    [ Op.Insert
        { target = P.parse "/products/product[1]";
          pos = Op.Into;
          fragment = "<tag>new</tag>" };
      Op.Insert { target = P.parse "/products/product[1]"; pos = Op.After; fragment = "<z/>" };
      Op.Remove (P.parse "//product[id = \"14\"]");
      Op.Rename { target = P.parse "//description"; new_label = "info" };
      Op.Change { target = P.parse "//price"; new_text = "0.00" };
      Op.Transpose
        { source = P.parse "//product[id = \"4\"]"; dest = P.parse "/products/product[id = \"14\"]" } ]
  in
  List.iter
    (fun op ->
      let doc = store_doc () in
      let before = snapshot doc in
      let eff = apply_exn doc op in
      checkb "apply changed something" true (snapshot doc <> before);
      ignore (Exec.undo doc eff.Exec.undo);
      checks ("undo restores: " ^ Op.to_string op) before (snapshot doc);
      checkb "valid after undo" true (Doc.validate doc = Ok ()))
    ops

let test_dg_deltas_consistent () =
  (* Applying an op and feeding its dg deltas into the DataGuide must keep
     the DataGuide exact; same for the undo deltas. *)
  let doc = store_doc () in
  let dg = Dg.build doc in
  let feed deltas =
    List.iter
      (function
        | Exec.Dg_add p -> ignore (Dg.add_instance dg p)
        | Exec.Dg_remove p -> Dg.remove_instance dg p)
      deltas
  in
  let op =
    Op.Insert
      { target = P.parse "/products";
        pos = Op.Into;
        fragment = "<product><id>99</id><price>5.00</price></product>" }
  in
  let eff = apply_exn doc op in
  feed eff.Exec.dg;
  checkb "dg valid after apply" true (Dg.validate dg doc = Ok ());
  let undo_deltas = Exec.undo doc eff.Exec.undo in
  feed undo_deltas;
  checkb "dg valid after undo" true (Dg.validate dg doc = Ok ())

(* Property: a random sequence of generated updates, undone in reverse order,
   restores the document exactly — this is precisely what DTX relies on when
   aborting a transaction (Alg. 6). *)
let prop_apply_undo_identity =
  QCheck.Test.make ~name:"random update sequences undo exactly" ~count:40
    QCheck.(pair small_nat (int_range 1 8))
    (fun (seed, n_ops) ->
      let doc = Generator.generate ~name:"w" (Generator.params_of_nodes 400) in
      let rng = Rng.create (seed + 1) in
      let counter = ref 0 in
      let fresh () = incr counter; !counter in
      let before = snapshot doc in
      let effs = ref [] in
      for _ = 1 to n_ops do
        let op = Queries.gen_update rng ~fresh doc in
        match Exec.apply doc op with
        | Ok eff -> effs := eff :: !effs
        | Error _ -> () (* e.g. removing an id a previous op removed *)
      done;
      (* Undo newest-first. *)
      List.iter (fun eff -> ignore (Exec.undo doc eff.Exec.undo)) !effs;
      snapshot doc = before && Doc.validate doc = Ok ())

let prop_dg_maintained_under_updates =
  QCheck.Test.make ~name:"dataguide stays exact under random updates" ~count:25
    QCheck.(pair small_nat (int_range 1 6))
    (fun (seed, n_ops) ->
      let doc = Generator.generate ~name:"w" (Generator.params_of_nodes 400) in
      let dg = Dg.build doc in
      let rng = Rng.create (seed + 77) in
      let counter = ref 0 in
      let fresh () = incr counter; !counter in
      let ok = ref true in
      for _ = 1 to n_ops do
        let op = Queries.gen_update rng ~fresh doc in
        match Exec.apply doc op with
        | Ok eff ->
          List.iter
            (function
              | Exec.Dg_add p -> ignore (Dg.add_instance dg p)
              | Exec.Dg_remove p -> Dg.remove_instance dg p)
            eff.Exec.dg;
          if Dg.validate dg doc <> Ok () then ok := false
        | Error _ -> ()
      done;
      !ok)

let () =
  Alcotest.run "update"
    [ ( "parse",
        [ Alcotest.test_case "query" `Quick test_parse_query;
          Alcotest.test_case "insert" `Quick test_parse_insert;
          Alcotest.test_case "insert positions" `Quick test_parse_insert_positions;
          Alcotest.test_case "rename/change" `Quick test_parse_rename_change;
          Alcotest.test_case "transpose/remove" `Quick test_parse_transpose_remove;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "to_string roundtrip" `Quick test_parse_to_string_roundtrip;
          Alcotest.test_case "script" `Quick test_parse_script;
          Alcotest.test_case "script errors" `Quick test_parse_script_error_line ] );
      ( "apply",
        [ Alcotest.test_case "query" `Quick test_query_results;
          Alcotest.test_case "insert into" `Quick test_insert_into;
          Alcotest.test_case "insert after/before" `Quick test_insert_after_before;
          Alcotest.test_case "bad fragment" `Quick test_insert_bad_fragment;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "remove root rejected" `Quick test_remove_root_rejected;
          Alcotest.test_case "nested removes" `Quick test_remove_nested_targets;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "change" `Quick test_change;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "transpose cycle rejected" `Quick
            test_transpose_into_own_subtree_rejected;
          Alcotest.test_case "target not found" `Quick test_target_not_found ] );
      ( "undo",
        [ Alcotest.test_case "each kind" `Quick test_undo_each_kind;
          Alcotest.test_case "dg deltas" `Quick test_dg_deltas_consistent;
          QCheck_alcotest.to_alcotest prop_apply_undo_identity;
          QCheck_alcotest.to_alcotest prop_dg_maintained_under_updates ] ) ]
