(* Tests for the XML data model: tree operations, documents, parser and
   printer (including a parse∘print round-trip property). *)

module Node = Dtx_xml.Node
module Doc = Dtx_xml.Doc
module Parser = Dtx_xml.Parser
module Printer = Dtx_xml.Printer
module Rng = Dtx_util.Rng

let check = Alcotest.(check int)
let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)

let sample =
  "<people><person id=\"4\"><name>Ana</name></person>\n\
   <person id=\"22\"><name>Patricia</name></person></people>"

(* --- Node --------------------------------------------------------------- *)

let test_add_detach () =
  let doc = Doc.create ~name:"d" ~root_label:"root" in
  let a = Doc.fresh_node doc ~label:"a" () in
  let b = Doc.fresh_node doc ~label:"b" () in
  Node.add_child doc.Doc.root a;
  Node.add_child doc.Doc.root b;
  check "two children" 2 (List.length (Node.children doc.Doc.root));
  check "index of b" 1 (Node.child_index b);
  let idx = Node.detach a in
  check "detached from 0" 0 idx;
  check "one child left" 1 (List.length (Node.children doc.Doc.root));
  checkb "parent cleared" true (a.Node.parent = None);
  Alcotest.check_raises "double add"
    (Invalid_argument "Node.add_child: child already attached") (fun () ->
      Node.add_child doc.Doc.root b)

let test_insert_child_positions () =
  let doc = Doc.create ~name:"d" ~root_label:"r" in
  let mk l = Doc.fresh_node doc ~label:l () in
  let a = mk "a" and b = mk "b" and c = mk "c" in
  Node.add_child doc.Doc.root a;
  Node.insert_child doc.Doc.root ~at:0 b;
  Node.insert_child doc.Doc.root ~at:99 c;
  Alcotest.(check (list string)) "order" [ "b"; "a"; "c" ]
    (List.map (fun n -> n.Node.label) (Node.children doc.Doc.root))

let test_paths_and_ancestors () =
  let doc = Parser.parse ~name:"d" sample in
  let person = List.nth (Node.children doc.Doc.root) 0 in
  let name =
    match Node.find_child person ~label:"name" with
    | Some n -> n
    | None -> Alcotest.fail "no name child"
  in
  Alcotest.(check (list string)) "label path" [ "people"; "person"; "name" ]
    (Node.label_path name);
  check "depth" 2 (Node.depth name);
  check "ancestors" 2 (List.length (Node.ancestors name));
  checks "nearest ancestor" "person" (List.hd (Node.ancestors name)).Node.label

let test_attribute_access () =
  let doc = Parser.parse ~name:"d" sample in
  let person = List.hd (Node.children doc.Doc.root) in
  Alcotest.(check (option string)) "attr" (Some "4") (Node.attribute person "id");
  Alcotest.(check (option string)) "missing attr" None (Node.attribute person "nope");
  checkb "attr node flag" true
    (match Node.find_child person ~label:"@id" with
     | Some a -> Node.is_attribute a
     | None -> false)

let test_text_content () =
  let doc = Parser.parse ~name:"d" sample in
  let person = List.hd (Node.children doc.Doc.root) in
  checks "element text" "Ana" (Node.text_content person);
  (* An attribute node's own text must be readable too. *)
  (match Node.find_child person ~label:"@id" with
   | Some a -> checks "attribute text" "4" (Node.text_content a)
   | None -> Alcotest.fail "no @id")

let test_subtree_size_and_iter () =
  let doc = Parser.parse ~name:"d" sample in
  (* people + 2*(person + @id + name) = 7 *)
  check "size" 7 (Node.subtree_size doc.Doc.root);
  check "doc size agrees" 7 (Doc.size doc);
  let seen = ref 0 in
  Node.iter (fun _ -> incr seen) doc.Doc.root;
  check "iter visits all" 7 !seen;
  check "descendant_or_self" 7 (List.length (Node.descendant_or_self doc.Doc.root))

let test_clone_fresh_ids () =
  let doc = Parser.parse ~name:"d" sample in
  let next = ref 1000 in
  let copy = Node.clone ~alloc:(fun () -> incr next; !next) doc.Doc.root in
  checkb "structurally equal" true (Node.equal_structure doc.Doc.root copy);
  checkb "ids differ" true (copy.Node.id <> doc.Doc.root.Node.id);
  checkb "copy detached" true (copy.Node.parent = None)

(* --- Doc ---------------------------------------------------------------- *)

let test_doc_index () =
  let doc = Parser.parse ~name:"d" sample in
  Node.iter
    (fun n ->
      match Doc.find doc n.Node.id with
      | Some m -> checkb "index points to node" true (m == n)
      | None -> Alcotest.failf "id %d missing" n.Node.id)
    doc.Doc.root;
  Alcotest.(check bool) "validate ok" true (Doc.validate doc = Ok ())

let test_doc_clone_preserves_ids () =
  let doc = Parser.parse ~name:"d" sample in
  let copy = Doc.clone ~name:"d2" doc in
  checkb "equal structure" true (Doc.equal_structure doc copy);
  checks "renamed" "d2" copy.Doc.name;
  (* Replica semantics: same ids on both sides. *)
  Node.iter
    (fun n ->
      match Doc.find copy n.Node.id with
      | Some m -> checks "same label at same id" n.Node.label m.Node.label
      | None -> Alcotest.failf "id %d missing in clone" n.Node.id)
    doc.Doc.root;
  checkb "clone validates" true (Doc.validate copy = Ok ())

let test_register_unregister () =
  let doc = Doc.create ~name:"d" ~root_label:"r" in
  let n = Doc.fresh_node doc ~label:"x" () in
  Node.add_child doc.Doc.root n;
  checkb "found" true (Doc.find doc n.Node.id <> None);
  ignore (Node.detach n);
  Doc.unregister_subtree doc n;
  checkb "gone" true (Doc.find doc n.Node.id = None);
  checkb "validate ok after unregister" true (Doc.validate doc = Ok ())

(* --- Parser / Printer --------------------------------------------------- *)

let test_parse_basics () =
  let doc = Parser.parse ~name:"d" "<a x=\"1\"><b>t</b><c/></a>" in
  checks "root" "a" doc.Doc.root.Node.label;
  Alcotest.(check (option string)) "attr" (Some "1") (Node.attribute doc.Doc.root "x");
  check "children incl attr" 3 (List.length (Node.children doc.Doc.root))

let test_parse_entities () =
  let doc = Parser.parse ~name:"d" "<a>&lt;x&gt; &amp; &quot;y&quot; &#65;</a>" in
  checks "decoded" "<x> & \"y\" A" (Node.text_content doc.Doc.root)

let test_parse_skips_misc () =
  let doc =
    Parser.parse ~name:"d"
      "<?xml version=\"1.0\"?><!DOCTYPE a><!-- hi --><a><!-- in --><b/></a>"
  in
  checks "root" "a" doc.Doc.root.Node.label;
  check "one element child" 1 (List.length (Node.children doc.Doc.root))

let test_parse_cdata () =
  let doc = Parser.parse ~name:"d" "<a><![CDATA[<raw> & stuff]]></a>" in
  checks "cdata" "<raw> & stuff" (Node.text_content doc.Doc.root)

let test_parse_errors () =
  let expect_fail s =
    match Parser.parse ~name:"d" s with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  expect_fail "";
  expect_fail "<a>";
  expect_fail "<a></b>";
  expect_fail "<a></a><b/>";
  expect_fail "<a attr=novalue/>";
  expect_fail "no xml at all"

let test_print_attributes_roundtrip () =
  let doc = Parser.parse ~name:"d" sample in
  let printed = Printer.to_string ~indent:false ~decl:false doc in
  let reparsed = Parser.parse ~name:"d" printed in
  checkb "roundtrip equal" true (Doc.equal_structure doc reparsed)

let test_escape () =
  checks "escaped" "&amp;&lt;&gt;&quot;&apos;" (Printer.escape "&<>\"'")

let test_byte_size_positive () =
  let doc = Parser.parse ~name:"d" sample in
  checkb "bytes > 0" true (Printer.byte_size doc > 50)

(* Random tree generator for the round-trip property. *)
type tree = T of string * string option * tree list

let gen_tree =
  let labels = [| "a"; "b"; "c"; "data"; "item" |] in
  QCheck.Gen.(
    sized_size (1 -- 30) (fun budget ->
        let rng_label = oneofa labels in
        fix
          (fun self budget ->
            let* label = rng_label in
            let* has_text = bool in
            let* text =
              if has_text then
                map Option.some (string_size ~gen:(char_range 'a' 'z') (1 -- 6))
              else return None
            in
            if budget <= 1 then return (T (label, text, []))
            else
              let* n_kids = 0 -- min 4 budget in
              let* kids =
                flatten_l
                  (List.init n_kids (fun _ -> self ((budget - 1) / max 1 n_kids)))
              in
              return (T (label, text, kids)))
          budget))

let rec build_tree doc (T (label, text, kids)) =
  let n = Doc.fresh_node doc ~label ?text () in
  List.iter (fun k -> Node.add_child n (build_tree doc k)) kids;
  n

let prop_roundtrip =
  QCheck.Test.make ~name:"print then parse preserves structure" ~count:100
    (QCheck.make gen_tree) (fun tree ->
      let doc = Doc.create ~name:"t" ~root_label:"tmp" in
      let root = build_tree doc tree in
      let doc = Doc.of_root ~name:"t" root in
      let printed = Printer.to_string ~indent:false ~decl:false doc in
      let reparsed = Dtx_xml.Parser.parse ~name:"t" printed in
      Doc.equal_structure doc reparsed)

let prop_indented_roundtrip =
  QCheck.Test.make ~name:"indented print also reparses" ~count:50
    (QCheck.make gen_tree) (fun tree ->
      let doc = Doc.create ~name:"t" ~root_label:"tmp" in
      let root = build_tree doc tree in
      let doc = Doc.of_root ~name:"t" root in
      let printed = Printer.to_string ~indent:true ~decl:true doc in
      (* Indentation may introduce surrounding whitespace for text nodes; we
         only require well-formedness here. *)
      match Dtx_xml.Parser.parse ~name:"t" printed with
      | (_ : Doc.t) -> true
      | exception Parser.Parse_error _ -> false)

let () =
  Alcotest.run "xml"
    [ ( "node",
        [ Alcotest.test_case "add/detach" `Quick test_add_detach;
          Alcotest.test_case "insert positions" `Quick test_insert_child_positions;
          Alcotest.test_case "paths/ancestors" `Quick test_paths_and_ancestors;
          Alcotest.test_case "attributes" `Quick test_attribute_access;
          Alcotest.test_case "text content" `Quick test_text_content;
          Alcotest.test_case "subtree size/iter" `Quick test_subtree_size_and_iter;
          Alcotest.test_case "clone" `Quick test_clone_fresh_ids ] );
      ( "doc",
        [ Alcotest.test_case "index" `Quick test_doc_index;
          Alcotest.test_case "clone ids" `Quick test_doc_clone_preserves_ids;
          Alcotest.test_case "register/unregister" `Quick test_register_unregister ] );
      ( "parser",
        [ Alcotest.test_case "basics" `Quick test_parse_basics;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "misc skipped" `Quick test_parse_skips_misc;
          Alcotest.test_case "cdata" `Quick test_parse_cdata;
          Alcotest.test_case "errors" `Quick test_parse_errors ] );
      ( "printer",
        [ Alcotest.test_case "roundtrip" `Quick test_print_attributes_roundtrip;
          Alcotest.test_case "escape" `Quick test_escape;
          Alcotest.test_case "byte size" `Quick test_byte_size_positive ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_indented_roundtrip ] ) ]
