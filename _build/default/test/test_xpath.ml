(* Tests for the XPath subset: parser, printer inverse, evaluation semantics
   (axes, wildcards, predicates), traced evaluation. *)

module Ast = Dtx_xpath.Ast
module P = Dtx_xpath.Parser
module Eval = Dtx_xpath.Eval
module Node = Dtx_xml.Node
module Doc = Dtx_xml.Doc
module Xml_parser = Dtx_xml.Parser

let check = Alcotest.(check int)
let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)

let doc =
  Xml_parser.parse ~name:"shop"
    "<site>\n\
     <people>\n\
     <person id=\"p1\"><name>Ana</name><city>Recife</city></person>\n\
     <person id=\"p2\"><name>Bia</name><city>Natal</city></person>\n\
     <person id=\"p3\"><name>Caio</name></person>\n\
     </people>\n\
     <regions>\n\
     <europe><item id=\"i1\"><name>Mouse</name><price>10.30</price></item></europe>\n\
     <asia><item id=\"i2\"><name>Keyboard</name><price>9.90</price></item>\n\
     <item id=\"i3\"><name>Mouse</name><price>10.30</price></item></asia>\n\
     </regions>\n\
     </site>"

let labels nodes = List.map (fun n -> n.Node.label) nodes

let texts nodes = List.map Node.text_content nodes

(* --- parser ------------------------------------------------------------- *)

let test_parse_simple () =
  let p = P.parse "/site/people/person" in
  checkb "absolute" true p.Ast.absolute;
  check "steps" 3 (List.length p.Ast.steps);
  checks "rendered" "/site/people/person" (Ast.to_string p)

let test_parse_descendant_wildcard () =
  let p = P.parse "//regions/*/item" in
  (match p.Ast.steps with
   | [ s1; s2; s3 ] ->
     checkb "descendant first" true (s1.Ast.axis = Ast.Descendant);
     checkb "wildcard" true (s2.Ast.test = Ast.Wildcard);
     checkb "child item" true (s3.Ast.axis = Ast.Child)
   | _ -> Alcotest.fail "wrong steps");
  checks "rendered" "//regions/*/item" (Ast.to_string p)

let test_parse_predicates () =
  let p = P.parse "/site/people/person[@id = \"p2\"][2]/name" in
  (match p.Ast.steps with
   | [ _; _; s3; _ ] ->
     check "two predicates" 2 (List.length s3.Ast.preds)
   | _ -> Alcotest.fail "wrong steps");
  let p2 = P.parse "//item[price]" in
  (match (List.hd p2.Ast.steps).Ast.preds with
   | [ Ast.Exists _ ] -> ()
   | _ -> Alcotest.fail "exists predicate expected")

let test_parse_relative () =
  let p = P.parse "person/name" in
  checkb "relative" false p.Ast.absolute;
  check "steps" 2 (List.length p.Ast.steps)

let test_parse_errors () =
  let expect_fail s =
    match P.parse s with
    | exception P.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected error for %S" s
  in
  expect_fail "";
  expect_fail "/site/[3]";
  expect_fail "/site/person[";
  expect_fail "/site/person[name =]";
  expect_fail "/a/b]extra"

let test_roundtrip_to_string () =
  List.iter
    (fun s ->
      let p = P.parse s in
      checks ("roundtrip " ^ s) s (Ast.to_string (P.parse (Ast.to_string p))))
    [ "/site/people/person";
      "//item";
      "/site/regions/*/item[@id = \"i1\"]/name";
      "//person[address/city = \"Natal\"]";
      "/site/open_auctions/open_auction[1]/bidder[2]" ]

(* --- evaluation --------------------------------------------------------- *)

let test_select_child_chain () =
  let r = Eval.select doc (P.parse "/site/people/person") in
  check "three persons" 3 (List.length r);
  Alcotest.(check (list string)) "all person" [ "person"; "person"; "person" ]
    (labels r)

let test_select_descendant () =
  let r = Eval.select doc (P.parse "//item") in
  check "three items" 3 (List.length r);
  let r2 = Eval.select doc (P.parse "//site") in
  check "root matched by leading //" 1 (List.length r2)

let test_select_wildcard () =
  let r = Eval.select doc (P.parse "/site/regions/*") in
  Alcotest.(check (list string)) "regions" [ "europe"; "asia" ] (labels r)

let test_wildcard_excludes_attributes () =
  let r = Eval.select doc (P.parse "/site/people/person/*") in
  checkb "no attribute nodes" true
    (List.for_all (fun n -> not (Node.is_attribute n)) r)

let test_attribute_step () =
  let r = Eval.select doc (P.parse "/site/people/person/@id") in
  check "three ids" 3 (List.length r);
  Alcotest.(check (list string)) "id values" [ "p1"; "p2"; "p3" ] (texts r)

let test_eq_predicate () =
  let r = Eval.select doc (P.parse "/site/people/person[@id = \"p2\"]/name") in
  Alcotest.(check (list string)) "Bia" [ "Bia" ] (texts r);
  let r2 = Eval.select doc (P.parse "//item[price = \"10.30\"]") in
  check "two matching items" 2 (List.length r2)

let test_exists_predicate () =
  let r = Eval.select doc (P.parse "/site/people/person[city]") in
  check "two persons with city" 2 (List.length r)

let test_positional_predicate () =
  let r = Eval.select doc (P.parse "/site/people/person[2]/name") in
  Alcotest.(check (list string)) "second person" [ "Bia" ] (texts r);
  let r2 = Eval.select doc (P.parse "/site/people/person[9]") in
  check "out of range empty" 0 (List.length r2)

let test_no_duplicates () =
  (* //asia//name could revisit nodes through overlapping contexts. *)
  let r = Eval.select doc (P.parse "//asia//name") in
  check "two names" 2 (List.length r);
  let ids = List.map (fun n -> n.Node.id) r in
  check "unique" (List.length ids) (List.length (List.sort_uniq compare ids))

let test_select_from_relative () =
  let asia = List.nth (Eval.select doc (P.parse "/site/regions/*")) 1 in
  let r = Eval.select_from asia (P.parse "item/name") in
  check "two names under asia" 2 (List.length r)

let test_matches () =
  let item = List.hd (Eval.select doc (P.parse "//item[@id = \"i1\"]")) in
  checkb "matches //item" true (Eval.matches item (P.parse "//item"));
  checkb "not matches person" false (Eval.matches item (P.parse "//person"))

let test_nodes_visited_positive () =
  checkb "visits > 0" true (Eval.nodes_visited doc (P.parse "//item") > 0);
  checkb "deeper scans cost more" true
    (Eval.nodes_visited doc (P.parse "//item[price = \"10.30\"]")
     >= Eval.nodes_visited doc (P.parse "//item"))

let test_select_traced () =
  let results, visited = Eval.select_traced doc (P.parse "/site/people/person") in
  check "results" 3 (List.length results);
  checkb "visited superset includes people section" true
    (List.exists (fun n -> n.Node.label = "people") visited);
  let ids = List.map (fun n -> n.Node.id) visited in
  check "visited unique" (List.length ids) (List.length (List.sort_uniq compare ids))

(* --- properties ---------------------------------------------------------- *)

let prop_without_predicates_superset =
  (* Removing predicates never shrinks the result set. *)
  let paths =
    [ "/site/people/person[@id = \"p1\"]/name";
      "//item[price = \"10.30\"]";
      "/site/people/person[city][2]";
      "//person[city = \"Natal\"]/name";
      "/site/regions/*[item]" ]
  in
  QCheck.Test.make ~name:"predicate-free skeleton is a superset" ~count:25
    QCheck.(oneofl paths)
    (fun path_text ->
      let p = P.parse path_text in
      let with_preds = Eval.select doc p in
      let skeleton = Eval.select doc (Ast.without_predicates p) in
      let skel_ids = List.map (fun n -> n.Node.id) skeleton in
      List.for_all (fun n -> List.mem n.Node.id skel_ids) with_preds)

let test_parent_axis () =
  let r = Eval.select doc (P.parse "//item/name/..") in
  check "parents are items" 3 (List.length r);
  Alcotest.(check (list string)) "labels" [ "item"; "item"; "item" ] (labels r);
  let r2 = Eval.select doc (P.parse "/site/..") in
  check "root has no parent" 0 (List.length r2)

let test_self_axis () =
  let r = Eval.select doc (P.parse "/site/people/./person") in
  check "self is a no-op" 3 (List.length r);
  let r2 = Eval.select doc (P.parse "//item/.") in
  check "trailing self" 3 (List.length r2)

let test_last_predicate () =
  let r = Eval.select doc (P.parse "/site/people/person[last()]/name") in
  Alcotest.(check (list string)) "last person" [ "Caio" ] (texts r);
  (* last() within each region, not globally *)
  let r2 = Eval.select doc (P.parse "/site/regions/*/item[last()]") in
  check "one per region" 2 (List.length r2)

let test_boolean_predicates () =
  let r = Eval.select doc (P.parse "//item[price = \"10.30\" or price = \"9.90\"]") in
  check "or matches all three" 3 (List.length r);
  let r2 = Eval.select doc (P.parse "//item[name = \"Mouse\" and price = \"10.30\"]") in
  check "and narrows" 2 (List.length r2);
  let r3 = Eval.select doc (P.parse "//item[price != \"10.30\"]") in
  check "neq" 1 (List.length r3);
  let r4 = Eval.select doc (P.parse "//person[city and name = \"Ana\"]") in
  check "exists and eq" 1 (List.length r4)

let test_boolean_to_string_roundtrip () =
  List.iter
    (fun s -> checks ("roundtrip " ^ s) s (Ast.to_string (P.parse s)))
    [ "//item[price != \"1.00\"]";
      "//item[name = \"Mouse\" and price = \"10.30\"]";
      "//person[city or name = \"Ana\"]" ]

let test_parent_to_string_roundtrip () =
  List.iter
    (fun s ->
      checks ("roundtrip " ^ s) s (Ast.to_string (P.parse s)))
    [ "//item/name/.."; "/site/people/person[last()]"; "/site/./regions" ]

let test_predicate_paths () =
  let p = P.parse "/site/people/person[@id = \"p1\"]/name" in
  (match Ast.predicate_paths p with
   | [ (prefix, rel) ] ->
     checks "prefix" "/site/people/person" (Ast.to_string prefix);
     checks "rel" "@id" (Ast.to_string rel)
   | l -> Alcotest.failf "expected 1 predicate path, got %d" (List.length l));
  check "no preds -> none" 0 (List.length (Ast.predicate_paths (P.parse "//item")))

(* --- reference-evaluator oracle ------------------------------------------- *)

(* A deliberately naive evaluator, written as differently as possible from
   Eval: set-of-nodes semantics via sorted id lists, no traversal sharing,
   recomputing everything per step. Random structured paths over the shop
   document must agree with Eval. *)
module Oracle = struct
  let rec descendants n =
    List.concat_map (fun c -> c :: descendants c) (Node.children n)

  let node_test (test : Ast.test) (n : Node.t) =
    match test with
    | Ast.Name name -> n.Node.label = name
    | Ast.Wildcard -> not (Node.is_attribute n)
    | Ast.Any -> true

  let rec eval_pred (root : Node.t) (n : Node.t) (pred : Ast.pred)
      (siblings : Node.t list) =
    match pred with
    | Ast.Pos k -> (match List.nth_opt siblings (k - 1) with
                    | Some m -> m.Node.id = n.Node.id
                    | None -> false)
    | Ast.Last -> (match List.rev siblings with
                   | m :: _ -> m.Node.id = n.Node.id
                   | [] -> false)
    | Ast.Exists rel -> eval_path root [ n ] rel.Ast.steps <> []
    | Ast.Eq (rel, lit) ->
      List.exists
        (fun m -> Node.text_content m = lit)
        (eval_path root [ n ] rel.Ast.steps)
    | Ast.Neq (rel, lit) ->
      List.exists
        (fun m -> Node.text_content m <> lit)
        (eval_path root [ n ] rel.Ast.steps)
    | Ast.And (a, b) ->
      eval_pred root n a siblings && eval_pred root n b siblings
    | Ast.Or (a, b) ->
      eval_pred root n a siblings || eval_pred root n b siblings

  and eval_path root (ctxs : Node.t list) (steps : Ast.step list) =
    match steps with
    | [] -> ctxs
    | step :: rest ->
      let next =
        List.concat_map
          (fun ctx ->
            let cands =
              match step.Ast.axis with
              | Ast.Child -> Node.children ctx
              | Ast.Descendant -> descendants ctx
              | Ast.Parent -> (match ctx.Node.parent with Some p -> [ p ] | None -> [])
              | Ast.Self -> [ ctx ]
            in
            let matched = List.filter (node_test step.Ast.test) cands in
            List.filter
              (fun n -> List.for_all (fun p -> eval_pred root n p matched) step.Ast.preds)
              matched)
          ctxs
      in
      (* dedup by id, keep first occurrence *)
      let seen = Hashtbl.create 8 in
      let next =
        List.filter
          (fun (n : Node.t) ->
            if Hashtbl.mem seen n.Node.id then false
            else (Hashtbl.add seen n.Node.id (); true))
          next
      in
      eval_path root next rest

  let select (d : Doc.t) (p : Ast.path) =
    let root = d.Doc.root in
    match p.Ast.steps with
    | [] -> if p.Ast.absolute then [ root ] else []
    | first :: rest ->
      if not p.Ast.absolute then eval_path root [ root ] p.Ast.steps
      else (
        match first.Ast.axis with
        | Ast.Child ->
          if
            node_test first.Ast.test root
            && List.for_all
                 (fun p -> eval_pred root root p [ root ])
                 first.Ast.preds
          then eval_path root [ root ] rest
          else []
        | Ast.Descendant ->
          let cands = root :: descendants root in
          let matched = List.filter (node_test first.Ast.test) cands in
          let matched =
            List.filter
              (fun n ->
                List.for_all (fun p -> eval_pred root n p matched) first.Ast.preds)
              matched
          in
          eval_path root matched rest
        | Ast.Parent -> []
        | Ast.Self -> eval_path root [ root ] rest)
end

let gen_step_name =
  QCheck.Gen.oneofl
    [ "site"; "people"; "person"; "name"; "city"; "regions"; "europe"; "asia";
      "item"; "price"; "*"; "@id" ]

let gen_random_path =
  QCheck.Gen.(
    let* n_steps = 1 -- 4 in
    let* steps =
      flatten_l
        (List.init n_steps (fun _ ->
             let* name = gen_step_name in
             let* desc = bool in
             let* pred =
               oneofl
                 [ []; [ Ast.Pos 1 ]; [ Ast.Last ];
                   [ Ast.Exists (Ast.path ~absolute:false [ Ast.step "name" ]) ];
                   [ Ast.Eq (Ast.path ~absolute:false [ Ast.step "price" ], "10.30") ];
                   [ Ast.Neq (Ast.path ~absolute:false [ Ast.step "price" ], "10.30") ];
                   [ Ast.And
                       ( Ast.Exists (Ast.path ~absolute:false [ Ast.step "name" ]),
                         Ast.Neq
                           (Ast.path ~absolute:false [ Ast.step "price" ], "9.90") ) ];
                   [ Ast.Or
                       ( Ast.Eq (Ast.path ~absolute:false [ Ast.step "price" ], "10.30"),
                         Ast.Exists (Ast.path ~absolute:false [ Ast.step "city" ]) ) ] ]
             in
             return
               { (Ast.step name) with
                 Ast.axis = (if desc then Ast.Descendant else Ast.Child);
                 preds = pred }))
    in
    let* absolute = bool in
    return { Ast.absolute; steps })

let prop_eval_matches_oracle =
  QCheck.Test.make ~name:"Eval agrees with a naive reference evaluator"
    ~count:500 (QCheck.make ~print:Ast.to_string gen_random_path)
    (fun path ->
      let ids l = List.sort compare (List.map (fun (n : Node.t) -> n.Node.id) l) in
      ids (Eval.select doc path) = ids (Oracle.select doc path))

let () =
  Alcotest.run "xpath"
    [ ( "parser",
        [ Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "descendant+wildcard" `Quick test_parse_descendant_wildcard;
          Alcotest.test_case "predicates" `Quick test_parse_predicates;
          Alcotest.test_case "relative" `Quick test_parse_relative;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "to_string roundtrip" `Quick test_roundtrip_to_string ] );
      ( "eval",
        [ Alcotest.test_case "child chain" `Quick test_select_child_chain;
          Alcotest.test_case "descendant" `Quick test_select_descendant;
          Alcotest.test_case "wildcard" `Quick test_select_wildcard;
          Alcotest.test_case "wildcard skips attrs" `Quick test_wildcard_excludes_attributes;
          Alcotest.test_case "attribute step" `Quick test_attribute_step;
          Alcotest.test_case "eq predicate" `Quick test_eq_predicate;
          Alcotest.test_case "exists predicate" `Quick test_exists_predicate;
          Alcotest.test_case "positional predicate" `Quick test_positional_predicate;
          Alcotest.test_case "no duplicates" `Quick test_no_duplicates;
          Alcotest.test_case "select_from" `Quick test_select_from_relative;
          Alcotest.test_case "matches" `Quick test_matches;
          Alcotest.test_case "visit counting" `Quick test_nodes_visited_positive;
          Alcotest.test_case "traced" `Quick test_select_traced;
          Alcotest.test_case "parent axis" `Quick test_parent_axis;
          Alcotest.test_case "self axis" `Quick test_self_axis;
          Alcotest.test_case "last()" `Quick test_last_predicate;
          Alcotest.test_case "../. roundtrip" `Quick test_parent_to_string_roundtrip;
          Alcotest.test_case "boolean predicates" `Quick test_boolean_predicates;
          Alcotest.test_case "boolean roundtrip" `Quick test_boolean_to_string_roundtrip ] );
      ( "ast",
        [ Alcotest.test_case "predicate_paths" `Quick test_predicate_paths;
          QCheck_alcotest.to_alcotest prop_without_predicates_superset ] );
      ("oracle", [ QCheck_alcotest.to_alcotest prop_eval_matches_oracle ]) ]
