examples/scenario.mli:
