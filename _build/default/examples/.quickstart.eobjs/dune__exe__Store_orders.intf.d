examples/store_orders.mli:
