examples/store_orders.ml: Array Dtx Dtx_frag Dtx_net Dtx_protocol Dtx_sim Dtx_storage Dtx_txn Dtx_update Dtx_xml Dtx_xpath Filename List Printf String
