examples/auction_site.ml: Dtx_frag Dtx_protocol Dtx_util Dtx_workload Dtx_xmark Dtx_xml List Printf String
