examples/reliability.ml: Array Dtx Dtx_frag Dtx_net Dtx_protocol Dtx_sim Dtx_txn Dtx_update Dtx_xml Dtx_xpath List Printf String
