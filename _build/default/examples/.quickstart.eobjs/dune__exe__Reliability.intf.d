examples/reliability.mli:
