examples/scenario.ml: Array Dtx Dtx_dataguide Dtx_frag Dtx_net Dtx_protocol Dtx_sim Dtx_txn Dtx_update Dtx_xml Dtx_xpath Format Printf
