examples/quickstart.mli:
