(** Applying update operations to a document, producing {e undo logs} and
    {e DataGuide deltas}.

    DTX undoes an operation's effects whenever locks cannot be obtained at
    every participant site (Alg. 1 l. 16), and undoes whole transactions on
    abort (Alg. 6); the undo log produced here is what makes both possible.
    DataGuide deltas let the lock manager keep its summary structure exact
    without rebuilding it. *)

type dg_delta =
  | Dg_add of string list  (** one document node appeared at this label path *)
  | Dg_remove of string list  (** one document node left this label path *)

type undo_entry =
  | Undo_insert of int  (** id of an inserted subtree's root *)
  | Undo_remove of { parent : int; index : int; subtree : Dtx_xml.Node.t }
  | Undo_rename of { node : int; old_label : string }
  | Undo_change of { node : int; old_text : string option }
  | Undo_transpose of { node : int; old_parent : int; old_index : int }

type effect = {
  undo : undo_entry list;  (** newest first; {!undo} consumes this order *)
  dg : dg_delta list;  (** DataGuide maintenance for the forward direction *)
  touched : int;  (** document nodes visited or written — the cost proxy *)
  result_count : int;  (** query results or update targets affected *)
  result_nodes : Dtx_xml.Node.t list;  (** query results (empty for updates) *)
}

type error =
  | Target_not_found of string  (** the operation's path selected nothing *)
  | Invalid_op of string  (** structurally impossible (remove the root, move a node into its own subtree, unparseable fragment, …) *)

val error_to_string : error -> string

val apply : Dtx_xml.Doc.t -> Op.t -> (effect, error) result
(** [apply doc op] executes [op]. On [Error _] the document is unchanged. *)

val undo : Dtx_xml.Doc.t -> undo_entry list -> dg_delta list
(** [undo doc entries] reverses an {!effect.undo} log (entries must be in the
    newest-first order [apply] produced) and returns the DataGuide deltas of
    the reversal. *)
