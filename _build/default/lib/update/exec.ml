module Node = Dtx_xml.Node
module Doc = Dtx_xml.Doc
module Xml_parser = Dtx_xml.Parser
module Eval = Dtx_xpath.Eval
module Ast = Dtx_xpath.Ast

type dg_delta = Dg_add of string list | Dg_remove of string list

type undo_entry =
  | Undo_insert of int
  | Undo_remove of { parent : int; index : int; subtree : Node.t }
  | Undo_rename of { node : int; old_label : string }
  | Undo_change of { node : int; old_text : string option }
  | Undo_transpose of { node : int; old_parent : int; old_index : int }

type effect = {
  undo : undo_entry list;
  dg : dg_delta list;
  touched : int;
  result_count : int;
  result_nodes : Node.t list;
}

type error = Target_not_found of string | Invalid_op of string

let error_to_string = function
  | Target_not_found p -> "target not found: " ^ p
  | Invalid_op m -> "invalid operation: " ^ m

let subtree_paths n =
  List.rev (Node.fold (fun acc x -> Node.label_path x :: acc) [] n)

let dg_adds n = List.map (fun p -> Dg_add p) (subtree_paths n)

let dg_removes n = List.map (fun p -> Dg_remove p) (subtree_paths n)

let attached_to_root (doc : Doc.t) (n : Node.t) =
  let rec up (m : Node.t) =
    if m == doc.Doc.root then true
    else match m.Node.parent with Some p -> up p | None -> false
  in
  up n

let is_ancestor_of ~(anc : Node.t) (n : Node.t) =
  let rec up (m : Node.t) =
    if m == anc then true
    else match m.Node.parent with Some p -> up p | None -> false
  in
  up n

let select (doc : Doc.t) path =
  let nodes = Eval.select doc path in
  let visited = Eval.nodes_visited doc path in
  (nodes, visited)

let apply (doc : Doc.t) (op : Op.t) : (effect, error) result =
  match op with
  | Op.Query path ->
    let nodes, visited = select doc path in
    Ok
      { undo = [];
        dg = [];
        touched = visited;
        result_count = List.length nodes;
        result_nodes = nodes }
  | Op.Insert { target; pos; fragment } -> (
    let targets, visited = select doc target in
    if targets = [] then Error (Target_not_found (Ast.to_string target))
    else
      match Xml_parser.parse_fragment fragment with
      | exception Xml_parser.Parse_error (msg, _) ->
        Error (Invalid_op ("bad fragment: " ^ msg))
      | frag_doc ->
        let template = frag_doc.Doc.root in
        let undo = ref [] in
        let dg = ref [] in
        let touched = ref visited in
        let insert_one (t : Node.t) =
          let copy = Node.clone ~alloc:(fun () -> Doc.alloc_id doc) template in
          Doc.register_subtree doc copy;
          (match pos with
           | Op.Into -> Node.add_child t copy
           | Op.After | Op.Before -> (
             match t.Node.parent with
             | None ->
               (* Cannot create a sibling of the root; treat as Into. *)
               Node.add_child t copy
             | Some p ->
               let idx = Node.child_index t in
               let at = match pos with Op.Before -> idx | _ -> idx + 1 in
               Node.insert_child p ~at copy));
          undo := Undo_insert copy.Node.id :: !undo;
          dg := !dg @ dg_adds copy;
          touched := !touched + Node.subtree_size copy
        in
        List.iter insert_one targets;
        Ok
          { undo = !undo;
            dg = !dg;
            touched = !touched;
            result_count = List.length targets;
            result_nodes = [] })
  | Op.Remove path ->
    let targets, visited = select doc path in
    if targets = [] then Error (Target_not_found (Ast.to_string path))
    else if List.exists (fun n -> n == doc.Doc.root) targets then
      Error (Invalid_op "cannot remove the document root")
    else begin
      let undo = ref [] in
      let dg = ref [] in
      let touched = ref visited in
      List.iter
        (fun (n : Node.t) ->
          (* An earlier target may have carried this node away already. *)
          if attached_to_root doc n then begin
            let parent =
              match n.Node.parent with Some p -> p.Node.id | None -> assert false
            in
            (* Record DataGuide paths before detaching (they need the full
               root-anchored prefix). *)
            dg := !dg @ dg_removes n;
            touched := !touched + Node.subtree_size n;
            let index = Node.detach n in
            Doc.unregister_subtree doc n;
            undo := Undo_remove { parent; index; subtree = n } :: !undo
          end)
        targets;
      Ok
        { undo = !undo;
          dg = !dg;
          touched = !touched;
          result_count = List.length !undo;
          result_nodes = [] }
    end
  | Op.Rename { target; new_label } ->
    let targets, visited = select doc target in
    if targets = [] then Error (Target_not_found (Ast.to_string target))
    else begin
      let undo = ref [] in
      let dg = ref [] in
      let touched = ref visited in
      List.iter
        (fun (n : Node.t) ->
          if n.Node.label <> new_label then begin
            (* The node's label participates in every descendant's label
               path, so the whole subtree moves in the DataGuide. *)
            dg := !dg @ dg_removes n;
            undo := Undo_rename { node = n.Node.id; old_label = n.Node.label } :: !undo;
            n.Node.label <- new_label;
            dg := !dg @ dg_adds n;
            touched := !touched + 1
          end)
        targets;
      Ok
        { undo = !undo;
          dg = !dg;
          touched = !touched;
          result_count = List.length targets;
          result_nodes = [] }
    end
  | Op.Change { target; new_text } ->
    let targets, visited = select doc target in
    if targets = [] then Error (Target_not_found (Ast.to_string target))
    else begin
      let undo = ref [] in
      List.iter
        (fun (n : Node.t) ->
          undo := Undo_change { node = n.Node.id; old_text = n.Node.text } :: !undo;
          n.Node.text <- Some new_text)
        targets;
      Ok
        { undo = !undo;
          dg = [];
          touched = visited + List.length targets;
          result_count = List.length targets;
          result_nodes = [] }
    end
  | Op.Transpose { source; dest } -> (
    let sources, v1 = select doc source in
    let dests, v2 = select doc dest in
    if sources = [] then Error (Target_not_found (Ast.to_string source))
    else if dests = [] then Error (Target_not_found (Ast.to_string dest))
    else
      (* The destination must not sit inside any moved subtree. *)
      let valid_dest d =
        not (List.exists (fun s -> is_ancestor_of ~anc:s d) sources)
      in
      match List.find_opt valid_dest dests with
      | None -> Error (Invalid_op "destination lies inside a moved subtree")
      | Some dest_node ->
        if List.exists (fun s -> s == doc.Doc.root) sources then
          Error (Invalid_op "cannot move the document root")
        else begin
          let undo = ref [] in
          let dg = ref [] in
          let touched = ref (v1 + v2) in
          List.iter
            (fun (s : Node.t) ->
              if attached_to_root doc s && not (s == dest_node) then begin
                let old_parent =
                  match s.Node.parent with
                  | Some p -> p.Node.id
                  | None -> assert false
                in
                dg := !dg @ dg_removes s;
                let old_index = Node.detach s in
                Node.add_child dest_node s;
                dg := !dg @ dg_adds s;
                undo :=
                  Undo_transpose { node = s.Node.id; old_parent; old_index }
                  :: !undo;
                touched := !touched + Node.subtree_size s
              end)
            sources;
          Ok
            { undo = !undo;
              dg = !dg;
              touched = !touched;
              result_count = List.length !undo;
              result_nodes = [] }
        end)

let undo (doc : Doc.t) (entries : undo_entry list) : dg_delta list =
  let dg = ref [] in
  let find id =
    match Doc.find doc id with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "Exec.undo: unknown node %d" id)
  in
  List.iter
    (fun entry ->
      match entry with
      | Undo_insert id ->
        let n = find id in
        dg := !dg @ dg_removes n;
        ignore (Node.detach n);
        Doc.unregister_subtree doc n
      | Undo_remove { parent; index; subtree } ->
        let p = find parent in
        Node.insert_child p ~at:index subtree;
        Doc.register_subtree doc subtree;
        dg := !dg @ dg_adds subtree
      | Undo_rename { node; old_label } ->
        let n = find node in
        dg := !dg @ dg_removes n;
        n.Node.label <- old_label;
        dg := !dg @ dg_adds n
      | Undo_change { node; old_text } ->
        let n = find node in
        n.Node.text <- old_text
      | Undo_transpose { node; old_parent; old_index } ->
        let n = find node in
        dg := !dg @ dg_removes n;
        ignore (Node.detach n);
        let p = find old_parent in
        Node.insert_child p ~at:old_index n;
        dg := !dg @ dg_adds n)
    entries;
  !dg
