module Ast = Dtx_xpath.Ast
module Xparser = Dtx_xpath.Parser

type position = Into | After | Before

type t =
  | Query of Ast.path
  | Insert of { target : Ast.path; pos : position; fragment : string }
  | Remove of Ast.path
  | Rename of { target : Ast.path; new_label : string }
  | Change of { target : Ast.path; new_text : string }
  | Transpose of { source : Ast.path; dest : Ast.path }

let is_update = function Query _ -> false | _ -> true

let paths = function
  | Query p | Remove p -> [ p ]
  | Insert { target; _ } -> [ target ]
  | Rename { target; _ } -> [ target ]
  | Change { target; _ } -> [ target ]
  | Transpose { source; dest } -> [ source; dest ]

let position_to_string = function
  | Into -> "INTO"
  | After -> "AFTER"
  | Before -> "BEFORE"

let to_string = function
  | Query p -> "QUERY " ^ Ast.to_string p
  | Insert { target; pos; fragment } ->
    Printf.sprintf "INSERT %s %s %s" (position_to_string pos)
      (Ast.to_string target) fragment
  | Remove p -> "REMOVE " ^ Ast.to_string p
  | Rename { target; new_label } ->
    Printf.sprintf "RENAME %s TO %s" (Ast.to_string target) new_label
  | Change { target; new_text } ->
    Printf.sprintf "CHANGE %s TO %S" (Ast.to_string target) new_text
  | Transpose { source; dest } ->
    Printf.sprintf "TRANSPOSE %s INTO %s" (Ast.to_string source)
      (Ast.to_string dest)

let pp ppf op = Format.pp_print_string ppf (to_string op)

(* --- parsing ------------------------------------------------------------ *)

let upper = String.uppercase_ascii

(* Find the first occurrence of [word] (as a whitespace-delimited word,
   case-insensitive) that is outside quotes and brackets. *)
let find_keyword s word =
  let n = String.length s and w = String.length word in
  let rec scan i depth quote =
    if i >= n then None
    else
      match quote with
      | Some q ->
        if s.[i] = q then scan (i + 1) depth None else scan (i + 1) depth quote
      | None -> (
        match s.[i] with
        | '"' | '\'' -> scan (i + 1) depth (Some s.[i])
        | '[' -> scan (i + 1) (depth + 1) None
        | ']' -> scan (i + 1) (depth - 1) None
        | c
          when depth = 0
               && (c = ' ' || c = '\t')
               && i + w < n
               && upper (String.sub s (i + 1) w) = word
               && (i + 1 + w = n || s.[i + 1 + w] = ' ' || s.[i + 1 + w] = '\t')
          ->
          Some i
        | _ -> scan (i + 1) depth quote)
  in
  scan 0 0 None

let split_keyword s word =
  match find_keyword s word with
  | None -> None
  | Some i ->
    let left = String.trim (String.sub s 0 i) in
    let right =
      String.trim
        (String.sub s
           (i + 1 + String.length word)
           (String.length s - i - 1 - String.length word))
    in
    Some (left, right)

let parse_path s =
  match Xparser.parse (String.trim s) with
  | p -> Ok p
  | exception Xparser.Parse_error (msg, off) ->
    Error (Printf.sprintf "bad path %S: %s at %d" s msg off)

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let strip_quotes s =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && ((s.[0] = '"' && s.[n - 1] = '"') || (s.[0] = '\'' && s.[n - 1] = '\''))
  then String.sub s 1 (n - 2)
  else s

let first_word s =
  match String.index_opt s ' ' with
  | Some i -> (String.sub s 0 i, String.trim (String.sub s i (String.length s - i)))
  | None -> (s, "")

let parse input =
  let input = String.trim input in
  if input = "" then Error "empty operation"
  else
    let kw, rest = first_word input in
    match upper kw with
    | "QUERY" ->
      let* p = parse_path rest in
      Ok (Query p)
    | "REMOVE" ->
      let* p = parse_path rest in
      Ok (Remove p)
    | "INSERT" ->
      let poskw, rest = first_word rest in
      let* pos =
        match upper poskw with
        | "INTO" -> Ok Into
        | "AFTER" -> Ok After
        | "BEFORE" -> Ok Before
        | other -> Error ("INSERT expects INTO/AFTER/BEFORE, got " ^ other)
      in
      (* The path ends where the XML fragment starts. *)
      (match String.index_opt rest '<' with
       | None -> Error "INSERT is missing an XML fragment"
       | Some i ->
         let path_text = String.trim (String.sub rest 0 i) in
         let fragment = String.trim (String.sub rest i (String.length rest - i)) in
         let* target = parse_path path_text in
         Ok (Insert { target; pos; fragment }))
    | "RENAME" -> (
      match split_keyword rest "TO" with
      | None -> Error "RENAME expects: RENAME <path> TO <name>"
      | Some (path_text, name) ->
        let* target = parse_path path_text in
        let name = String.trim name in
        if name = "" then Error "RENAME: empty new name"
        else Ok (Rename { target; new_label = name }))
    | "CHANGE" -> (
      match split_keyword rest "TO" with
      | None -> Error "CHANGE expects: CHANGE <path> TO <text>"
      | Some (path_text, text) ->
        let* target = parse_path path_text in
        Ok (Change { target; new_text = strip_quotes text }))
    | "TRANSPOSE" -> (
      match split_keyword rest "INTO" with
      | None -> Error "TRANSPOSE expects: TRANSPOSE <path> INTO <path>"
      | Some (src_text, dst_text) ->
        let* source = parse_path src_text in
        let* dest = parse_path dst_text in
        Ok (Transpose { source; dest }))
    | other -> Error ("unknown operation keyword " ^ other)

let parse_script text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then go acc (lineno + 1) rest
      else (
        match parse trimmed with
        | Ok op -> go (op :: acc) (lineno + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go [] 1 lines
