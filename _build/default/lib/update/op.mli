(** The XDGL update language: the five operations of Pleshachkov et al.'s
    protocol — [insert], [remove], [transpose], [rename], [change] — plus
    queries, which together with the XPath subset form DTX's full operation
    language (§2 of the paper). *)

type position =
  | Into  (** new node becomes the last child of the target *)
  | After  (** new node becomes the target's next sibling *)
  | Before  (** new node becomes the target's previous sibling *)

type t =
  | Query of Dtx_xpath.Ast.path
  | Insert of {
      target : Dtx_xpath.Ast.path;
      pos : position;
      fragment : string;  (** XML text of the subtree to insert *)
    }
  | Remove of Dtx_xpath.Ast.path
  | Rename of { target : Dtx_xpath.Ast.path; new_label : string }
  | Change of { target : Dtx_xpath.Ast.path; new_text : string }
  | Transpose of { source : Dtx_xpath.Ast.path; dest : Dtx_xpath.Ast.path }
      (** move the [source] subtree to become the last child of [dest] *)

val is_update : t -> bool
(** [false] only for [Query]. *)

val paths : t -> Dtx_xpath.Ast.path list
(** Every path mentioned by the operation (target, source, destination). *)

val to_string : t -> string
(** Textual rendering in the syntax accepted by {!parse}. *)

val parse : string -> (t, string) result
(** Parse the textual update/query syntax (keywords are case-insensitive):
    {v
      QUERY /site/people/person[@id = "p4"]
      INSERT INTO /site/regions/asia <item id="i9"><name>Mouse</name></item>
      INSERT AFTER /site/people/person[1] <person id="p9"/>
      REMOVE //item[@id = "i9"]
      RENAME /site/categories/category[1]/name TO title
      CHANGE //item[@id = "i9"]/name TO "Keyboard"
      TRANSPOSE //item[@id = "i9"] INTO /site/regions/europe
    v} *)

val pp : Format.formatter -> t -> unit

val parse_script : string -> (t list, string) result
(** Parse a whole transaction: one operation per line. Blank lines and lines
    starting with [#] are skipped. Returns the first error with its line
    number. *)
