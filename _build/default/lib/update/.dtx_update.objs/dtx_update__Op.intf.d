lib/update/op.mli: Dtx_xpath Format
