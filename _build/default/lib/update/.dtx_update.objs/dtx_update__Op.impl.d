lib/update/op.ml: Dtx_xpath Format List Printf String
