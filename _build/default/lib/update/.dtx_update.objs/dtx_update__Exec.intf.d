lib/update/exec.mli: Dtx_xml Op
