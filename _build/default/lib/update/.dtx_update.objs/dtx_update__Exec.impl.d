lib/update/exec.ml: Dtx_xml Dtx_xpath List Op Printf
