lib/net/net.mli: Dtx_sim
