lib/net/net.ml: Dtx_sim Dtx_util
