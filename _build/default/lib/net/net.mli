(** Simulated message passing between DTX sites.

    Every inter-scheduler interaction of the paper — remote operations and
    their status replies (Alg. 1 l. 13, Alg. 2 l. 13), commit/abort/fail
    messages (Algs. 5–6), and the deadlock detector's wait-for-graph requests
    (Alg. 4 l. 4) — crosses this layer. Each message costs a base latency
    plus a per-byte term, modelling the paper's 100 Mbit/s switched LAN;
    local (same-site) deliveries are free but still go through the event
    queue, preserving causal ordering.

    Traffic counters feed the experiment reports (the "communication and
    synchronization overhead" visible in the total-replication results). *)

type t

type profile = {
  base_latency_ms : float;  (** one-way latency floor *)
  per_kb_ms : float;  (** serialization cost per KiB *)
}

val lan : profile
(** The paper's testbed: a 100 Mbit/s switched LAN
    ([base_latency_ms = 0.35], [per_kb_ms = 0.08]). *)

val wan : profile
(** The paper's future-work target ("evaluate DTX in WAN environments"):
    ~20 ms one-way latency, ~10 Mbit/s ([base_latency_ms = 20.0],
    [per_kb_ms = 0.8]). *)

val create :
  sim:Dtx_sim.Sim.t ->
  ?profile:profile ->
  ?base_latency_ms:float ->
  ?per_kb_ms:float ->
  ?drop_pct:int ->
  ?seed:int ->
  unit ->
  t
(** Defaults to {!lan}; the scalar arguments override the profile's
    fields individually. [drop_pct] (default 0) makes the link lossy:
    each unreliable remote message is dropped with that probability
    (deterministically, from [seed]). *)

val send :
  t -> src:int -> dst:int -> ?bytes:int -> ?reliable:bool -> (unit -> unit) ->
  unit
(** [send net ~src ~dst k] delivers [k] after the link delay. [bytes]
    (default 256) sizes the message. [src = dst] delivers at the next event
    with no delay and is not counted as network traffic. [reliable]
    (default [true]) exempts the message from loss — commit/abort/ack/wake
    traffic rides a retransmitting channel; only operation shipments and
    their status replies are sent unreliably by the cluster. *)

val latency : t -> src:int -> dst:int -> bytes:int -> float
(** The delay a message would incur. *)

val messages : t -> int
(** Remote messages sent so far. *)

val dropped : t -> int
(** Unreliable messages lost to [drop_pct]. *)

val bytes_sent : t -> int

val reset_counters : t -> unit
