module Sim = Dtx_sim.Sim

type profile = {
  base_latency_ms : float;
  per_kb_ms : float;
}

let lan = { base_latency_ms = 0.35; per_kb_ms = 0.08 }

let wan = { base_latency_ms = 20.0; per_kb_ms = 0.8 }

module Rng = Dtx_util.Rng

type t = {
  sim : Sim.t;
  base_latency_ms : float;
  per_kb_ms : float;
  drop_pct : int;
  rng : Rng.t;
  mutable messages : int;
  mutable bytes : int;
  mutable dropped : int;
}

let create ~sim ?(profile = lan) ?base_latency_ms ?per_kb_ms ?(drop_pct = 0)
    ?(seed = 1) () =
  if drop_pct < 0 || drop_pct > 100 then invalid_arg "Net.create: drop_pct";
  let pick override dflt = match override with Some v -> v | None -> dflt in
  { sim;
    base_latency_ms = pick base_latency_ms profile.base_latency_ms;
    per_kb_ms = pick per_kb_ms profile.per_kb_ms;
    drop_pct;
    rng = Rng.create seed;
    messages = 0;
    bytes = 0;
    dropped = 0 }

let latency t ~src ~dst ~bytes =
  if src = dst then 0.0
  else t.base_latency_ms +. (t.per_kb_ms *. (float_of_int bytes /. 1024.0))

let send t ~src ~dst ?(bytes = 256) ?(reliable = true) k =
  let delay = latency t ~src ~dst ~bytes in
  if src <> dst then begin
    t.messages <- t.messages + 1;
    t.bytes <- t.bytes + bytes
  end;
  if
    src <> dst && (not reliable) && t.drop_pct > 0
    && Rng.pct t.rng t.drop_pct
  then t.dropped <- t.dropped + 1
  else ignore (Sim.schedule t.sim ~delay k)

let messages t = t.messages

let dropped t = t.dropped

let bytes_sent t = t.bytes

let reset_counters t =
  t.messages <- 0;
  t.bytes <- 0;
  t.dropped <- 0
