type t = {
  name : string;
  root : Node.t;
  mutable next_id : int;
  index : (int, Node.t) Hashtbl.t;
}

let register_subtree t node =
  Node.iter
    (fun n ->
      Hashtbl.replace t.index n.Node.id n;
      if n.Node.id >= t.next_id then t.next_id <- n.Node.id + 1)
    node

let unregister_subtree t node =
  Node.iter (fun n -> Hashtbl.remove t.index n.Node.id) node

let create ~name ~root_label =
  let root = Node.make ~id:0 ~label:root_label () in
  let t = { name; root; next_id = 1; index = Hashtbl.create 256 } in
  Hashtbl.replace t.index 0 root;
  t

let of_root ~name root =
  let t = { name; root; next_id = 0; index = Hashtbl.create 256 } in
  register_subtree t root;
  t

let alloc_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let fresh_node t ~label ?text () =
  let n = Node.make ~id:(alloc_id t) ~label ?text () in
  Hashtbl.replace t.index n.Node.id n;
  n

let find t id = Hashtbl.find_opt t.index id

let size t = Node.subtree_size t.root

let clone ?name t =
  let name = match name with Some n -> n | None -> t.name in
  (* Preserve ids so replicas agree on node identity across sites. *)
  let rec copy (n : Node.t) : Node.t =
    let c = Node.make ~id:n.Node.id ~label:n.Node.label ?text:n.Node.text () in
    Dtx_util.Vec.iter (fun child -> Node.add_child c (copy child)) n.Node.children;
    c
  in
  of_root ~name (copy t.root)

let equal_structure a b = Node.equal_structure a.root b.root

let validate t =
  let seen = Hashtbl.create 256 in
  let error = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
  Node.iter
    (fun n ->
      if Hashtbl.mem seen n.Node.id then fail "duplicate id %d" n.Node.id;
      Hashtbl.replace seen n.Node.id ();
      (match Hashtbl.find_opt t.index n.Node.id with
       | Some m when m == n -> ()
       | Some _ -> fail "index entry for %d is a different node" n.Node.id
       | None -> fail "node %d missing from index" n.Node.id);
      Dtx_util.Vec.iter
        (fun c ->
          match c.Node.parent with
          | Some p when p == n -> ()
          | _ -> fail "child %d has wrong parent pointer" c.Node.id)
        n.Node.children)
    t.root;
  (* The index must not contain stale entries either. *)
  Hashtbl.iter
    (fun id _ -> if not (Hashtbl.mem seen id) then fail "stale index entry %d" id)
    t.index;
  match !error with None -> Ok () | Some e -> Error e
