exception Parse_error of string * int

type state = {
  src : string;
  mutable pos : int;
  doc : Doc.t;
}

let fail st fmt = Printf.ksprintf (fun s -> raise (Parse_error (s, st.pos))) fmt

let eof st = st.pos >= String.length st.src

let peek st = if eof st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st = st.pos <- st.pos + 1

let expect st c =
  if peek st <> c then fail st "expected %C, found %C" c (peek st);
  advance st

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_space st = while (not (eof st)) && is_space (peek st) do advance st done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let read_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do advance st done;
  String.sub st.src start (st.pos - start)

let read_entity st =
  (* Called just after '&'. *)
  let start = st.pos in
  while (not (eof st)) && peek st <> ';' do advance st done;
  if eof st then fail st "unterminated entity";
  let name = String.sub st.src start (st.pos - start) in
  advance st;
  match name with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
    if String.length name > 1 && name.[0] = '#' then
      let code =
        try
          if name.[1] = 'x' || name.[1] = 'X' then
            int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
          else int_of_string (String.sub name 1 (String.length name - 1))
        with Failure _ -> fail st "bad character reference &%s;" name
      in
      if code < 0x80 then String.make 1 (Char.chr code) else "?"
    else fail st "unknown entity &%s;" name

let read_quoted st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted value";
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof st then fail st "unterminated attribute value"
    else
      let c = peek st in
      if c = quote then advance st
      else if c = '&' then begin
        advance st;
        Buffer.add_string buf (read_entity st);
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        advance st;
        loop ()
      end
  in
  loop ();
  Buffer.contents buf

let skip_until st pat =
  (* Advance past the next occurrence of [pat]. *)
  let n = String.length pat in
  let limit = String.length st.src - n in
  let rec loop () =
    if st.pos > limit then fail st "unterminated construct (looking for %s)" pat
    else if String.sub st.src st.pos n = pat then st.pos <- st.pos + n
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let skip_misc st =
  (* Skip whitespace, comments, PIs and DOCTYPE between top-level items. *)
  let rec loop () =
    skip_space st;
    if peek st = '<' then
      match peek2 st with
      | '?' ->
        skip_until st "?>";
        loop ()
      | '!' ->
        if
          st.pos + 3 < String.length st.src
          && String.sub st.src st.pos 4 = "<!--"
        then begin
          skip_until st "-->";
          loop ()
        end
        else if
          st.pos + 8 < String.length st.src
          && String.sub st.src st.pos 9 = "<!DOCTYPE"
        then begin
          skip_until st ">";
          loop ()
        end
      | _ -> ()
  in
  loop ()

let read_cdata st =
  (* Called at "<![CDATA[". *)
  st.pos <- st.pos + 9;
  let start = st.pos in
  let limit = String.length st.src - 3 in
  let rec loop () =
    if st.pos > limit then fail st "unterminated CDATA"
    else if String.sub st.src st.pos 3 = "]]>" then begin
      let s = String.sub st.src start (st.pos - start) in
      st.pos <- st.pos + 3;
      s
    end
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let append_text node s =
  if String.length s > 0 then
    node.Node.text <-
      (match node.Node.text with None -> Some s | Some t -> Some (t ^ s))

let trim_ws s =
  let s' = String.trim s in
  if s' = "" then "" else s

let rec parse_element st : Node.t =
  expect st '<';
  let label = read_name st in
  let node = Doc.fresh_node st.doc ~label () in
  (* Attributes. *)
  let rec attrs () =
    skip_space st;
    if is_name_start (peek st) then begin
      let aname = read_name st in
      skip_space st;
      expect st '=';
      skip_space st;
      let value = read_quoted st in
      let attr = Doc.fresh_node st.doc ~label:("@" ^ aname) ~text:value () in
      Node.add_child node attr;
      attrs ()
    end
  in
  attrs ();
  skip_space st;
  if peek st = '/' then begin
    advance st;
    expect st '>';
    node
  end
  else begin
    expect st '>';
    parse_content st node;
    (* Closing tag. *)
    expect st '<';
    expect st '/';
    let close = read_name st in
    if close <> label then fail st "mismatched closing tag </%s> for <%s>" close label;
    skip_space st;
    expect st '>';
    node
  end

and parse_content st node =
  let buf = Buffer.create 16 in
  let flush_text () =
    let s = trim_ws (Buffer.contents buf) in
    Buffer.clear buf;
    append_text node s
  in
  let rec loop () =
    if eof st then fail st "unterminated element <%s>" node.Node.label
    else
      match peek st with
      | '<' ->
        (match peek2 st with
         | '/' -> flush_text ()
         | '!' ->
           if
             st.pos + 8 < String.length st.src
             && String.sub st.src st.pos 9 = "<![CDATA["
           then begin
             Buffer.add_string buf (read_cdata st);
             loop ()
           end
           else begin
             skip_until st "-->";
             loop ()
           end
         | '?' ->
           skip_until st "?>";
           loop ()
         | _ ->
           flush_text ();
           let child = parse_element st in
           Node.add_child node child;
           loop ())
      | '&' ->
        advance st;
        Buffer.add_string buf (read_entity st);
        loop ()
      | c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
  in
  loop ()

let parse ~name s =
  let doc_holder = Doc.create ~name ~root_label:"#tmp" in
  let st = { src = s; pos = 0; doc = doc_holder } in
  skip_misc st;
  if eof st then fail st "empty document";
  if peek st <> '<' then fail st "expected root element";
  let root = parse_element st in
  skip_misc st;
  skip_space st;
  if not (eof st) then fail st "trailing content after root element";
  Doc.of_root ~name root

let parse_fragment s = parse ~name:"fragment" s
