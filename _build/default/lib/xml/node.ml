module Vec = Dtx_util.Vec

type t = {
  id : int;
  mutable label : string;
  mutable text : string option;
  mutable children : t Vec.t;
  mutable parent : t option;
}

let make ~id ~label ?text () =
  { id; label; text; children = Vec.create (); parent = None }

let is_attribute n = String.length n.label > 0 && n.label.[0] = '@'

let add_child parent child =
  (match child.parent with
   | Some _ -> invalid_arg "Node.add_child: child already attached"
   | None -> ());
  Vec.push parent.children child;
  child.parent <- Some parent

let insert_child parent ~at child =
  (match child.parent with
   | Some _ -> invalid_arg "Node.insert_child: child already attached"
   | None -> ());
  let n = Vec.length parent.children in
  let at = if at < 0 then 0 else if at > n then n else at in
  (* Shift the tail right by one. *)
  Vec.push parent.children child;
  for i = n downto at + 1 do
    Vec.set parent.children i (Vec.get parent.children (i - 1))
  done;
  Vec.set parent.children at child;
  child.parent <- Some parent

let child_index n =
  match n.parent with
  | None -> invalid_arg "Node.child_index: detached node"
  | Some p ->
    let rec loop i =
      if i >= Vec.length p.children then
        invalid_arg "Node.child_index: not in parent's children"
      else if (Vec.get p.children i).id = n.id then i
      else loop (i + 1)
    in
    loop 0

let detach n =
  match n.parent with
  | None -> invalid_arg "Node.detach: detached node"
  | Some p ->
    let idx = child_index n in
    let len = Vec.length p.children in
    for i = idx to len - 2 do
      Vec.set p.children i (Vec.get p.children (i + 1))
    done;
    ignore (Vec.pop p.children);
    n.parent <- None;
    idx

let children n = Vec.to_list n.children

let nth_child n i =
  if i < 0 || i >= Vec.length n.children then None else Some (Vec.get n.children i)

let find_child n ~label = Vec.find_opt (fun c -> c.label = label) n.children

let attribute n name =
  match find_child n ~label:("@" ^ name) with
  | Some a -> a.text
  | None -> None

let rec iter f n =
  f n;
  Vec.iter (iter f) n.children

let fold f acc n =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) n;
  !acc

let subtree_size n = fold (fun acc _ -> acc + 1) 0 n

let rec depth n = match n.parent with None -> 0 | Some p -> 1 + depth p

let label_path n =
  let rec loop n acc =
    match n.parent with None -> n.label :: acc | Some p -> loop p (n.label :: acc)
  in
  loop n []

let ancestors n =
  let rec loop n acc =
    match n.parent with None -> List.rev acc | Some p -> loop p (p :: acc)
  in
  loop n []

let descendant_or_self n = List.rev (fold (fun acc x -> x :: acc) [] n)

let text_content n =
  let buf = Buffer.create 32 in
  (* Attribute children are not part of an element's text, but asking for the
     text of an attribute node itself must yield its value. *)
  iter
    (fun x ->
      if x == n || not (is_attribute x) then
        match x.text with Some s -> Buffer.add_string buf s | None -> ())
    n;
  Buffer.contents buf

let rec clone ~alloc n =
  let copy = make ~id:(alloc ()) ~label:n.label ?text:n.text () in
  Vec.iter (fun c -> add_child copy (clone ~alloc c)) n.children;
  copy

let rec equal_structure a b =
  a.label = b.label
  && a.text = b.text
  && Vec.length a.children = Vec.length b.children
  &&
  let rec loop i =
    i >= Vec.length a.children
    || (equal_structure (Vec.get a.children i) (Vec.get b.children i)
        && loop (i + 1))
  in
  loop 0

let pp ppf n =
  Format.fprintf ppf "<%s#%d%s kids=%d>" n.label n.id
    (match n.text with Some t -> Printf.sprintf " %S" t | None -> "")
    (Vec.length n.children)
