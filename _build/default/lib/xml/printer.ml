let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let element_children n =
  List.filter (fun c -> not (Node.is_attribute c)) (Node.children n)

let attribute_children n = List.filter Node.is_attribute (Node.children n)

let rec emit buf ~indent ~level (n : Node.t) =
  let pad = if indent then String.make (2 * level) ' ' else "" in
  let nl = if indent then "\n" else "" in
  Buffer.add_string buf pad;
  Buffer.add_char buf '<';
  Buffer.add_string buf n.Node.label;
  List.iter
    (fun (a : Node.t) ->
      let name = String.sub a.Node.label 1 (String.length a.Node.label - 1) in
      let value = match a.Node.text with Some v -> v | None -> "" in
      Buffer.add_char buf ' ';
      Buffer.add_string buf name;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape value);
      Buffer.add_char buf '"')
    (attribute_children n);
  let kids = element_children n in
  match (kids, n.Node.text) with
  | [], None ->
    Buffer.add_string buf "/>";
    Buffer.add_string buf nl
  | [], Some t ->
    Buffer.add_char buf '>';
    Buffer.add_string buf (escape t);
    Buffer.add_string buf "</";
    Buffer.add_string buf n.Node.label;
    Buffer.add_char buf '>';
    Buffer.add_string buf nl
  | _ ->
    Buffer.add_char buf '>';
    (match n.Node.text with Some t -> Buffer.add_string buf (escape t) | None -> ());
    Buffer.add_string buf nl;
    List.iter (emit buf ~indent ~level:(level + 1)) kids;
    Buffer.add_string buf pad;
    Buffer.add_string buf "</";
    Buffer.add_string buf n.Node.label;
    Buffer.add_char buf '>';
    Buffer.add_string buf nl

let node_to_string ?(indent = true) n =
  let buf = Buffer.create 1024 in
  emit buf ~indent ~level:0 n;
  let s = Buffer.contents buf in
  if indent && String.length s > 0 && s.[String.length s - 1] = '\n' then
    String.sub s 0 (String.length s - 1)
  else s

let to_string ?(indent = true) ?(decl = true) (doc : Doc.t) =
  let header = if decl then "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n" else "" in
  header ^ node_to_string ~indent doc.Doc.root

let byte_size (doc : Doc.t) =
  String.length (to_string ~indent:false ~decl:false doc)
