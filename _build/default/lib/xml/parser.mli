(** A small from-scratch XML parser covering the subset DTX stores: elements,
    attributes, character data and the five predefined entities. Comments,
    processing instructions and a DOCTYPE line are skipped. CDATA sections are
    supported. Namespaces are treated as plain label prefixes. *)

exception Parse_error of string * int
(** [Parse_error (message, offset)]. *)

val parse : name:string -> string -> Doc.t
(** [parse ~name s] parses [s] into a fresh document called [name].
    Attributes become ["@attr"]-labelled children (see {!Node}).
    @raise Parse_error on malformed input. *)

val parse_fragment : string -> Doc.t
(** [parse_fragment s] is [parse ~name:"fragment" s]; handy for building
    update-operation payloads. *)
