(** XML documents: a named root tree plus a node-id index and an id
    allocator. All nodes of a document carry document-unique ids; the index
    lets the lock manager and the undo machinery address nodes by id. *)

type t = {
  name : string;
  root : Node.t;
  mutable next_id : int;
  index : (int, Node.t) Hashtbl.t;
}

val create : name:string -> root_label:string -> t
(** A document with a fresh root element. *)

val of_root : name:string -> Node.t -> t
(** [of_root ~name root] wraps an existing tree (re-registering all of its
    nodes; ids must already be unique within the tree). *)

val alloc_id : t -> int
(** Next fresh node id. *)

val fresh_node : t -> label:string -> ?text:string -> unit -> Node.t
(** A detached node with a fresh id, registered in the index. *)

val register_subtree : t -> Node.t -> unit
(** Add every node of a subtree to the index (used after grafting a cloned
    fragment into the document). *)

val unregister_subtree : t -> Node.t -> unit
(** Remove every node of a subtree from the index. *)

val find : t -> int -> Node.t option
(** Node by id. *)

val size : t -> int
(** Number of nodes currently in the tree. *)

val clone : ?name:string -> t -> t
(** Deep copy (fresh document, same ids). Used to give each replica site its
    own physical copy. *)

val equal_structure : t -> t -> bool
(** Structural equality of the two roots (ids ignored). *)

val validate : t -> (unit, string) result
(** Internal consistency check: every tree node is indexed with its own id,
    parent pointers match, no id duplicated. Used by tests and after
    failure-injection. *)
