lib/xml/node.ml: Buffer Dtx_util Format List Printf String
