lib/xml/parser.mli: Doc
