lib/xml/parser.ml: Buffer Char Doc Node Printf String
