lib/xml/printer.mli: Doc Node
