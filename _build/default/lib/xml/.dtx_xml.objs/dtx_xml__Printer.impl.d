lib/xml/printer.ml: Buffer Doc List Node String
