lib/xml/doc.ml: Dtx_util Hashtbl Node Printf
