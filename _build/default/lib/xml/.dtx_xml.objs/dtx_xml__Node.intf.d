lib/xml/node.mli: Dtx_util Format
