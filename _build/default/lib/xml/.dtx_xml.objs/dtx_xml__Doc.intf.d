lib/xml/doc.mli: Hashtbl Node
