(** XML serialization — the inverse of {!Parser}. ["@attr"]-labelled children
    are rendered back as attributes. *)

val escape : string -> string
(** Escape ampersand, angle brackets and quotes as entities. *)

val node_to_string : ?indent:bool -> Node.t -> string
(** Serialize a subtree. With [indent] (default [true]) elements are placed on
    their own lines with two-space indentation; text-only elements stay on one
    line. *)

val to_string : ?indent:bool -> ?decl:bool -> Doc.t -> string
(** Serialize a whole document; [decl] (default [true]) prefixes the
    [<?xml ...?>] declaration. *)

val byte_size : Doc.t -> int
(** Length of the unindented serialization; the simulator's stand-in for the
    paper's "database size in MB". *)
