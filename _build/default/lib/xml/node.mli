(** Mutable XML element trees.

    Every node has a unique-per-document integer [id] (assigned by
    {!Doc.fresh_node}), an element [label], optional [text] content and
    ordered children. XML attributes are modelled as child elements whose
    label starts with ["@"] and whose [text] is the attribute value; this
    keeps a single node kind throughout the locking machinery (the XDGL
    DataGuide treats attributes as just another label path, following
    Goldman–Widom). *)

type t = {
  id : int;
  mutable label : string;
  mutable text : string option;
  mutable children : t Dtx_util.Vec.t;
  mutable parent : t option;
}

val make : id:int -> label:string -> ?text:string -> unit -> t
(** A detached node with no children. *)

val is_attribute : t -> bool
(** [is_attribute n] is [true] iff [n.label] starts with ["@"]. *)

val add_child : t -> t -> unit
(** [add_child parent child] appends [child] and sets its parent pointer.
    @raise Invalid_argument if [child] already has a parent. *)

val insert_child : t -> at:int -> t -> unit
(** [insert_child parent ~at child] inserts at position [at] (clamped to
    [0 .. nchildren]). @raise Invalid_argument if [child] has a parent. *)

val detach : t -> int
(** [detach n] removes [n] from its parent's child list and clears the parent
    pointer; returns the index it occupied. @raise Invalid_argument if [n] has
    no parent. *)

val child_index : t -> int
(** [child_index n] is [n]'s position among its parent's children.
    @raise Invalid_argument if [n] has no parent. *)

val children : t -> t list
(** Children in document order. *)

val nth_child : t -> int -> t option

val find_child : t -> label:string -> t option
(** First child with the given label. *)

val attribute : t -> string -> string option
(** [attribute n name] is the value of attribute [name] (without the ["@"]),
    if present. *)

val text_content : t -> string
(** Concatenated text of [n] and its non-attribute descendants. *)

val iter : (t -> unit) -> t -> unit
(** Pre-order traversal of the subtree rooted at the node. *)

val fold : ('acc -> t -> 'acc) -> 'acc -> t -> 'acc
(** Pre-order fold over the subtree. *)

val subtree_size : t -> int
(** Number of nodes in the subtree (including the root). *)

val depth : t -> int
(** Distance from the document root (root has depth 0). *)

val label_path : t -> string list
(** Labels from the document root down to the node, inclusive. *)

val ancestors : t -> t list
(** Ancestors from parent up to the root (nearest first). *)

val descendant_or_self : t -> t list
(** The subtree in document order. *)

val clone : alloc:(unit -> int) -> t -> t
(** Deep copy with fresh ids from [alloc]; the copy is detached. *)

val equal_structure : t -> t -> bool
(** Structural equality ignoring ids (labels, text, child order). *)

val pp : Format.formatter -> t -> unit
(** One-line debug rendering. *)
