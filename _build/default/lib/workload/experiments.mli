(** Drivers that regenerate every evaluation figure of the paper (§3.2).

    Each driver returns a {!figure}: labelled series of (x, y) points that
    correspond one-to-one to the curves of the paper's chart. The [quick]
    flag shrinks client counts and database sizes (for tests and smoke runs)
    without changing the curves' qualitative shape.

    | Paper figure | Driver | x-axis | y-axis |
    |--------------|--------|--------|--------|
    | Fig. 9  | {!fig9}  | number of clients   | response time (2 charts: total/partial replication) |
    | Fig. 10 | {!fig10} | update txn %        | response time; number of deadlocks |
    | Fig. 11a| {!fig11a}| base size (MB)      | response time; number of deadlocks |
    | Fig. 11b| {!fig11b}| number of sites     | response time; number of deadlocks |
    | Fig. 12 | {!fig12} | time                | cumulative commits; concurrency degree | *)

type series = {
  label : string;
  points : (float * float) list;
}

type figure = {
  id : string;  (** e.g. ["fig9-partial"] *)
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
}

val fig9 : ?quick:bool -> unit -> figure list
(** Response time vs number of clients (10–50), read-only transactions,
    XDGL vs Node2PL × total vs partial replication. Two figures (one per
    replication mode). *)

val fig10 : ?quick:bool -> unit -> figure list
(** Response time and deadlock count vs update-transaction percentage
    (20–60 %), 50 clients, partial replication. Two figures. *)

val fig11a : ?quick:bool -> unit -> figure list
(** Response time and deadlocks vs base size (50–200 MB). Two figures. *)

val fig11b : ?quick:bool -> unit -> figure list
(** Response time and deadlocks vs number of sites (2–8). Two figures. *)

val fig12 : ?quick:bool -> unit -> figure list
(** Cumulative committed transactions over time and concurrency degree over
    time, for both protocols (250 transactions, 4 sites, partial
    replication). Two figures. *)

val all : ?quick:bool -> unit -> figure list
(** Every figure, in paper order. *)

val pp_figure : Format.formatter -> figure -> unit
(** Render a figure as an aligned text table (series as columns) followed by
    an ASCII chart. *)

val to_csv : figure -> string
(** The figure as CSV: header [x,<label>,...], one row per x value (missing
    points empty). Ready for gnuplot/spreadsheet plotting. *)

val write_csv : dir:string -> figure -> string
(** Write {!to_csv} to [<dir>/<figure id>.csv] (creating [dir]); returns the
    path. *)

val summary_table :
  ?quick:bool -> unit -> (string * string * string * string) list
(** [(figure, check, expectation, observed)] rows asserting the paper's
    qualitative claims against a quick run — the EXPERIMENTS.md evidence. *)
