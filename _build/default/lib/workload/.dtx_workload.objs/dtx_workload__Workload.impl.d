lib/workload/workload.ml: Array Dtx Dtx_frag Dtx_net Dtx_protocol Dtx_sim Dtx_txn Dtx_update Dtx_util Dtx_xmark Dtx_xml Format List
