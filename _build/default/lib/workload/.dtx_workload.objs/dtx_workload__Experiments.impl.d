lib/workload/experiments.ml: Buffer Dtx_frag Dtx_protocol Dtx_util Filename Format List Printf String Sys Workload
