lib/workload/workload.mli: Dtx Dtx_frag Dtx_net Dtx_protocol Dtx_util Format
