type axis = Child | Descendant | Parent | Self

type test = Name of string | Wildcard | Any

type path = {
  absolute : bool;
  steps : step list;
}

and step = {
  axis : axis;
  test : test;
  preds : pred list;
}

and pred =
  | Pos of int
  | Last
  | Exists of path
  | Eq of path * string
  | Neq of path * string
  | And of pred * pred
  | Or of pred * pred

let step ?(axis = Child) ?(preds = []) name =
  let test = if name = "*" then Wildcard else Name name in
  { axis; test; preds }

let path ?(absolute = true) steps = { absolute; steps }

let relative p = { p with absolute = false }

let rec without_predicates p =
  { p with steps = List.map strip_step p.steps }

and strip_step s = { s with preds = List.map strip_pred s.preds }

and strip_pred = function
  | Pos n -> Pos n
  | Last -> Last
  | Exists rel -> Exists (without_predicates rel)
  | Eq (rel, v) -> Eq (without_predicates rel, v)
  | Neq (rel, v) -> Neq (without_predicates rel, v)
  | And (a, b) -> And (strip_pred a, strip_pred b)
  | Or (a, b) -> Or (strip_pred a, strip_pred b)

let predicate_paths p =
  let acc = ref [] in
  let rec walk prefix_rev = function
    | [] -> ()
    | s :: rest ->
      let prefix_rev = { s with preds = [] } :: prefix_rev in
      let prefix = { absolute = p.absolute; steps = List.rev prefix_rev } in
      let rec visit_pred pred =
        match pred with
        | Pos _ | Last -> ()
        | And (a, b) | Or (a, b) ->
          visit_pred a;
          visit_pred b
        | Exists rel | Eq (rel, _) | Neq (rel, _) ->
          acc := (prefix, without_predicates rel) :: !acc;
          (* Nested predicates inside the relative path also lock. *)
          List.iter
            (fun (pfx, r) ->
              (* Re-anchor the nested prefix below the outer prefix. *)
              let anchored =
                { absolute = p.absolute;
                  steps = prefix.steps @ pfx.steps }
              in
              acc := (anchored, r) :: !acc)
            (nested rel)
      in
      List.iter visit_pred s.preds;
      walk prefix_rev rest
  and nested rel =
    let saved = !acc in
    acc := [];
    walk [] rel.steps;
    let out = !acc in
    acc := saved;
    out
  in
  walk [] p.steps;
  List.rev !acc

let rec pp_pred buf pred =
  match pred with
  | Pos n -> Buffer.add_string buf (string_of_int n)
  | Last -> Buffer.add_string buf "last()"
  | Exists rel -> Buffer.add_string buf (to_string rel)
  | Eq (rel, v) ->
    Buffer.add_string buf (to_string rel);
    Buffer.add_string buf " = \"";
    Buffer.add_string buf v;
    Buffer.add_char buf '"'
  | Neq (rel, v) ->
    Buffer.add_string buf (to_string rel);
    Buffer.add_string buf " != \"";
    Buffer.add_string buf v;
    Buffer.add_char buf '"'
  | And (a, b) ->
    pp_pred buf a;
    Buffer.add_string buf " and ";
    pp_pred buf b
  | Or (a, b) ->
    pp_pred buf a;
    Buffer.add_string buf " or ";
    pp_pred buf b

and to_string p =
  let buf = Buffer.create 32 in
  List.iteri
    (fun i s ->
      let sep =
        match s.axis with
        | Child | Parent | Self -> if i = 0 && not p.absolute then "" else "/"
        | Descendant -> "//"
      in
      Buffer.add_string buf sep;
      (match (s.axis, s.test) with
       | (Parent, _) -> Buffer.add_string buf ".."
       | (Self, _) -> Buffer.add_char buf '.'
       | (_, Name n) -> Buffer.add_string buf n
       | (_, Wildcard) -> Buffer.add_char buf '*'
       | (_, Any) -> Buffer.add_string buf "node()");
      List.iter
        (fun pred ->
          Buffer.add_char buf '[';
          pp_pred buf pred;
          Buffer.add_char buf ']')
        s.preds)
    p.steps;
  if p.steps = [] && p.absolute then "/" else Buffer.contents buf

let pp ppf p = Format.pp_print_string ppf (to_string p)

let equal a b = a = b
