(** Recursive-descent parser for the XPath subset of {!Ast}. *)

exception Parse_error of string * int
(** [Parse_error (message, offset)]. *)

val parse : string -> Ast.path
(** [parse s] parses an absolute or relative path expression, e.g.
    [/site/people/person\[@id = "p12"\]/name] or [//item\[location\]].
    @raise Parse_error on malformed input. *)
