(** XPath evaluation over {!Dtx_xml} trees. Results are in document order
    and duplicate-free. *)

val select : Dtx_xml.Doc.t -> Ast.path -> Dtx_xml.Node.t list
(** [select doc p] evaluates [p] from the document root (relative paths are
    treated as starting at the root element's children, i.e. like
    [/root/p]). *)

val select_from : Dtx_xml.Node.t -> Ast.path -> Dtx_xml.Node.t list
(** [select_from ctx p] evaluates a relative path from [ctx]; an absolute
    path restarts from [ctx]'s root. *)

val nodes_visited : Dtx_xml.Doc.t -> Ast.path -> int
(** Number of tree nodes the evaluator touches — the simulator's cost proxy
    for query execution work. *)

val select_traced :
  Dtx_xml.Doc.t -> Ast.path -> Dtx_xml.Node.t list * Dtx_xml.Node.t list
(** [select_traced doc p] is [(results, visited)]: the result set plus every
    node the evaluator examined while navigating (each node once). Navigation
    locking protocols (Node2PL) lock the [visited] set. *)

val matches : Dtx_xml.Node.t -> Ast.path -> bool
(** [matches n p] is [true] iff [n] is in the result of evaluating [p] over
    [n]'s document. Used by tests as an oracle. *)
