exception Parse_error of string * int

type state = {
  src : string;
  mutable pos : int;
}

let fail st fmt = Printf.ksprintf (fun s -> raise (Parse_error (s, st.pos))) fmt

let eof st = st.pos >= String.length st.src

let peek st = if eof st then '\000' else st.src.[st.pos]

let advance st = st.pos <- st.pos + 1

let skip_space st =
  while (not (eof st)) && (peek st = ' ' || peek st = '\t') do advance st done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.' || c = ':'

let read_name st =
  let at = peek st = '@' in
  if at then advance st;
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do advance st done;
  let n = String.sub st.src start (st.pos - start) in
  if at then "@" ^ n else n

let read_int st =
  let start = st.pos in
  while (not (eof st)) && peek st >= '0' && peek st <= '9' do advance st done;
  if st.pos = start then fail st "expected an integer";
  int_of_string (String.sub st.src start (st.pos - start))

let read_literal st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected a string literal";
  advance st;
  let start = st.pos in
  while (not (eof st)) && peek st <> quote do advance st done;
  if eof st then fail st "unterminated string literal";
  let s = String.sub st.src start (st.pos - start) in
  advance st;
  s

let rec parse_path st ~absolute_ok : Ast.path =
  skip_space st;
  let absolute = absolute_ok && peek st = '/' in
  let steps = parse_steps st ~first:true ~absolute in
  if steps = [] && not absolute then fail st "empty path";
  { Ast.absolute; steps }

and parse_steps st ~first ~absolute : Ast.step list =
  skip_space st;
  let axis =
    if peek st = '/' then begin
      advance st;
      if peek st = '/' then begin
        advance st;
        Some Ast.Descendant
      end
      else Some Ast.Child
    end
    else if first && not absolute then
      (* Relative path: first step has no leading separator. *)
      if is_name_start (peek st) || peek st = '@' || peek st = '*'
         || peek st = '.' then
        Some Ast.Child
      else None
    else None
  in
  match axis with
  | None -> []
  | Some axis ->
    if first && absolute && eof st then []
    else begin
      let axis, test =
        if peek st = '*' then begin
          advance st;
          (axis, Ast.Wildcard)
        end
        else if peek st = '.' then begin
          advance st;
          if peek st = '.' then begin
            advance st;
            (Ast.Parent, Ast.Any)
          end
          else (Ast.Self, Ast.Any)
        end
        else (axis, Ast.Name (read_name st))
      in
      let preds = parse_preds st in
      let step = { Ast.axis; test; preds } in
      step :: parse_steps st ~first:false ~absolute
    end

and parse_preds st : Ast.pred list =
  skip_space st;
  if peek st = '[' then begin
    advance st;
    skip_space st;
    let pred =
      if peek st >= '0' && peek st <= '9' then Ast.Pos (read_int st)
      else if
        st.pos + 5 < String.length st.src
        && String.sub st.src st.pos 6 = "last()"
      then begin
        st.pos <- st.pos + 6;
        Ast.Last
      end
      else parse_or_pred st
    in
    skip_space st;
    if peek st <> ']' then fail st "expected ']'";
    advance st;
    pred :: parse_preds st
  end
  else []

(* Boolean predicate grammar: or_pred := and_pred ('or' and_pred)*;
   and_pred := atom ('and' atom)*; atom := path (('='|'!=') literal)?.
   Positional predicates do not combine with connectives. *)
and parse_or_pred st : Ast.pred =
  let left = parse_and_pred st in
  skip_space st;
  if keyword_ahead st "or" then begin
    st.pos <- st.pos + 2;
    Ast.Or (left, parse_or_pred st)
  end
  else left

and parse_and_pred st : Ast.pred =
  let left = parse_atom_pred st in
  skip_space st;
  if keyword_ahead st "and" then begin
    st.pos <- st.pos + 3;
    Ast.And (left, parse_and_pred st)
  end
  else left

and keyword_ahead st kw =
  let n = String.length kw in
  st.pos + n < String.length st.src
  && String.sub st.src st.pos n = kw
  && (let c = st.src.[st.pos + n] in
      c = ' ' || c = '\t')

and parse_atom_pred st : Ast.pred =
  skip_space st;
  let rel = parse_path st ~absolute_ok:false in
  skip_space st;
  if peek st = '=' then begin
    advance st;
    skip_space st;
    Ast.Eq (rel, read_literal st)
  end
  else if peek st = '!' then begin
    advance st;
    if peek st <> '=' then fail st "expected '=' after '!'";
    advance st;
    skip_space st;
    Ast.Neq (rel, read_literal st)
  end
  else Ast.Exists rel

let parse s =
  let st = { src = s; pos = 0 } in
  let p = parse_path st ~absolute_ok:true in
  skip_space st;
  if not (eof st) then fail st "trailing characters after path";
  p
