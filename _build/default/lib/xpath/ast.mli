(** Abstract syntax for the XPath subset used by XDGL/DTX.

    The subset (after Pleshachkov et al.'s XDGL) covers:
    - the [child] ([/]) and [descendant-or-self] ([//]) axes,
    - name tests, the wildcard [*] and attribute tests ([@name]),
    - predicates: positional ([\[3\]]), existence ([\[rel/path\]]) and
      equality of a relative path's text against a literal
      ([\[price = "9.90"\]]).

    Attributes are ordinary steps whose name starts with ["@"], mirroring the
    {!Dtx_xml.Node} representation. *)

type axis =
  | Child  (** [/step] *)
  | Descendant  (** [//step] — descendant-or-self, then the name test *)
  | Parent  (** [..] *)
  | Self  (** [.] *)

type test =
  | Name of string  (** element or ["@attr"] name test *)
  | Wildcard  (** [*] — element children only (attributes excluded) *)
  | Any  (** no test — used by the [.] and [..] steps *)

type path = {
  absolute : bool;  (** leading [/]: evaluate from the document root *)
  steps : step list;
}

and step = {
  axis : axis;
  test : test;
  preds : pred list;
}

and pred =
  | Pos of int  (** 1-based position among the step's matches per parent *)
  | Last  (** [\[last()\]] — the final match per parent *)
  | Exists of path  (** relative path is non-empty *)
  | Eq of path * string  (** relative path has a node with this text *)
  | Neq of path * string
      (** relative path has a node whose text differs from the literal *)
  | And of pred * pred  (** both hold (positional predicates excluded) *)
  | Or of pred * pred  (** either holds *)

val step : ?axis:axis -> ?preds:pred list -> string -> step
(** [step name] is a child-axis name-test step; [step "*"] is a wildcard. *)

val path : ?absolute:bool -> step list -> path

val relative : path -> path
(** The same path with [absolute = false]. *)

val without_predicates : path -> path
(** Structural skeleton of the path — what the DataGuide lock targeting
    matches on. *)

val predicate_paths : path -> (path * path) list
(** [predicate_paths p] enumerates every [Exists]/[Eq] predicate as
    [(prefix, rel)] where [prefix] is the (predicate-free) path down to and
    including the step carrying the predicate, and [rel] the relative
    predicate path. XDGL places ST/IS locks on these. *)

val to_string : path -> string
(** Parseable rendering ({!Parser.parse} is its inverse). *)

val pp : Format.formatter -> path -> unit

val equal : path -> path -> bool
