lib/xpath/ast.ml: Buffer Format List
