lib/xpath/eval.ml: Ast Dtx_util Dtx_xml Hashtbl List
