lib/xpath/parser.ml: Ast Printf String
