lib/xpath/eval.mli: Ast Dtx_xml
