module Node = Dtx_xml.Node
module Doc = Dtx_xml.Doc
module Vec = Dtx_util.Vec

(* The evaluator threads a visit counter so the simulator can charge query
   cost proportional to the work actually done. *)

let test_matches (test : Ast.test) (n : Node.t) =
  match test with
  | Ast.Name name -> n.Node.label = name
  | Ast.Wildcard -> not (Node.is_attribute n)
  | Ast.Any -> true

let rec strict_descendants acc (n : Node.t) =
  Vec.fold_left
    (fun acc c -> strict_descendants (c :: acc) c)
    acc n.Node.children

(* [trace], when set, receives every candidate node the evaluator examines
   (used by navigation-locking protocols); [counter] only counts them. *)
let candidates ~counter ~trace ~leading_absolute (axis : Ast.axis) (ctx : Node.t) =
  let nodes =
    match axis with
    | Ast.Child -> Node.children ctx
    | Ast.Descendant ->
      if leading_absolute then Node.descendant_or_self ctx
      else List.rev (strict_descendants [] ctx)
    | Ast.Parent -> (match ctx.Node.parent with Some p -> [ p ] | None -> [])
    | Ast.Self -> [ ctx ]
  in
  counter := !counter + List.length nodes;
  (match trace with
   | Some sink -> List.iter sink nodes
   | None -> ());
  nodes

let rec apply_preds ~counter ~trace (preds : Ast.pred list) (nodes : Node.t list) =
  match preds with
  | [] -> nodes
  | Ast.Pos k :: rest ->
    let picked = match List.nth_opt nodes (k - 1) with Some n -> [ n ] | None -> [] in
    apply_preds ~counter ~trace rest picked
  | Ast.Last :: rest ->
    let picked = match List.rev nodes with n :: _ -> [ n ] | [] -> [] in
    apply_preds ~counter ~trace rest picked
  | (Ast.Exists _ | Ast.Eq _ | Ast.Neq _ | Ast.And _ | Ast.Or _) as pred :: rest ->
    apply_preds ~counter ~trace rest
      (List.filter (fun n -> pred_holds ~counter ~trace n pred) nodes)

(* Node-level (non-positional) predicate truth. Positional predicates are
   rejected inside boolean connectives by the parser, so hitting one here is
   a programming error. *)
and pred_holds ~counter ~trace (n : Node.t) (pred : Ast.pred) =
  match pred with
  | Ast.Exists rel -> eval_rel ~counter ~trace n rel <> []
  | Ast.Eq (rel, lit) ->
    List.exists
      (fun m -> Node.text_content m = lit)
      (eval_rel ~counter ~trace n rel)
  | Ast.Neq (rel, lit) ->
    List.exists
      (fun m -> Node.text_content m <> lit)
      (eval_rel ~counter ~trace n rel)
  | Ast.And (a, b) ->
    pred_holds ~counter ~trace n a && pred_holds ~counter ~trace n b
  | Ast.Or (a, b) ->
    pred_holds ~counter ~trace n a || pred_holds ~counter ~trace n b
  | Ast.Pos _ | Ast.Last -> invalid_arg "Eval: positional predicate in connective"

and eval_steps ~counter ~trace ~leading_absolute (ctxs : Node.t list)
    (steps : Ast.step list) : Node.t list =
  match steps with
  | [] -> ctxs
  | step :: rest ->
    let seen = Hashtbl.create 16 in
    let out = ref [] in
    List.iter
      (fun ctx ->
        let cands =
          candidates ~counter ~trace ~leading_absolute step.Ast.axis ctx
        in
        let matched = List.filter (test_matches step.Ast.test) cands in
        let kept = apply_preds ~counter ~trace step.Ast.preds matched in
        List.iter
          (fun n ->
            if not (Hashtbl.mem seen n.Node.id) then begin
              Hashtbl.add seen n.Node.id ();
              out := n :: !out
            end)
          kept)
      ctxs;
    eval_steps ~counter ~trace ~leading_absolute:false (List.rev !out) rest

and eval_rel ~counter ~trace (ctx : Node.t) (p : Ast.path) =
  eval_steps ~counter ~trace ~leading_absolute:false [ ctx ] p.Ast.steps

let root_of (n : Node.t) =
  let rec up n = match n.Node.parent with None -> n | Some p -> up p in
  up n

let eval ~counter ~trace (root : Node.t) (p : Ast.path) =
  match p.Ast.steps with
  | [] -> if p.Ast.absolute then [ root ] else []
  | first :: _ ->
    if p.Ast.absolute then
      match first.Ast.axis with
      | Ast.Parent ->
        (* The document node has no parent; nothing matches. *)
        []
      | Ast.Self ->
        eval_steps ~counter ~trace ~leading_absolute:false [ root ]
          (List.tl p.Ast.steps)
      | Ast.Child ->
        (* The (virtual) document node's only child is the root element. *)
        counter := !counter + 1;
        (match trace with Some sink -> sink root | None -> ());
        let matched =
          if test_matches first.Ast.test root then
            apply_preds ~counter ~trace first.Ast.preds [ root ]
          else []
        in
        eval_steps ~counter ~trace ~leading_absolute:false matched
          (List.tl p.Ast.steps)
      | Ast.Descendant ->
        eval_steps ~counter ~trace ~leading_absolute:true [ root ] p.Ast.steps
    else eval_steps ~counter ~trace ~leading_absolute:false [ root ] p.Ast.steps

let select (doc : Doc.t) p =
  let counter = ref 0 in
  eval ~counter ~trace:None doc.Doc.root p

let select_from (ctx : Node.t) p =
  let counter = ref 0 in
  if p.Ast.absolute then eval ~counter ~trace:None (root_of ctx) p
  else eval_steps ~counter ~trace:None ~leading_absolute:false [ ctx ] p.Ast.steps

let nodes_visited (doc : Doc.t) p =
  let counter = ref 0 in
  ignore (eval ~counter ~trace:None doc.Doc.root p);
  !counter

let select_traced (doc : Doc.t) p =
  let counter = ref 0 in
  let seen = Hashtbl.create 256 in
  let acc = ref [] in
  let sink (n : Node.t) =
    if not (Hashtbl.mem seen n.Node.id) then begin
      Hashtbl.add seen n.Node.id ();
      acc := n :: !acc
    end
  in
  let results = eval ~counter ~trace:(Some sink) doc.Doc.root p in
  (results, List.rev !acc)

let matches (n : Node.t) p =
  let counter = ref 0 in
  let results = eval ~counter ~trace:None (root_of n) p in
  List.exists (fun m -> m.Node.id = n.Node.id) results
