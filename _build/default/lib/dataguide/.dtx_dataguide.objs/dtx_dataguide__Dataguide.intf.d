lib/dataguide/dataguide.mli: Dtx_xml Dtx_xpath Format Hashtbl
