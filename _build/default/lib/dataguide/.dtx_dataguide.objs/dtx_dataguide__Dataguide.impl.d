lib/dataguide/dataguide.ml: Dtx_xml Dtx_xpath Format Hashtbl List Printf String
