type resource = { doc : string; node : int; value : string option }

let resource doc node = { doc; node; value = None }

let value_resource doc node value = { doc; node; value = Some value }

let pp_resource ppf r =
  match r.value with
  | None -> Format.fprintf ppf "%s#%d" r.doc r.node
  | Some v -> Format.fprintf ppf "%s#%d=%S" r.doc r.node v

(* One grant: a transaction holding [mode] on a resource, reference-counted
   (the same operation may request the same lock several times, e.g. IS on a
   shared ancestor of two targets). *)
type holder = {
  txn : int;
  mode : Mode.t;
  mutable count : int;
}

type t = {
  table : (resource, holder list ref) Hashtbl.t;
  by_txn : (int, (resource, unit) Hashtbl.t) Hashtbl.t;
  mutable grants : int;
}

let create () = { table = Hashtbl.create 256; by_txn = Hashtbl.create 64; grants = 0 }

let entry t r =
  match Hashtbl.find_opt t.table r with
  | Some e -> e
  | None ->
    let e = ref [] in
    Hashtbl.replace t.table r e;
    e

let note_txn_resource t ~txn r =
  let set =
    match Hashtbl.find_opt t.by_txn txn with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 16 in
      Hashtbl.replace t.by_txn txn s;
      s
  in
  Hashtbl.replace set r ()

let conflicts_on t ~txn r mode =
  match Hashtbl.find_opt t.table r with
  | None -> []
  | Some e ->
    List.filter_map
      (fun h ->
        if h.txn <> txn && not (Mode.compatible h.mode mode) then Some h.txn
        else None)
      !e

let grant t ~txn r mode =
  let e = entry t r in
  (match List.find_opt (fun h -> h.txn = txn && h.mode = mode) !e with
   | Some h -> h.count <- h.count + 1
   | None -> e := { txn; mode; count = 1 } :: !e);
  t.grants <- t.grants + 1;
  note_txn_resource t ~txn r

let ungrant t ~txn r mode =
  match Hashtbl.find_opt t.table r with
  | None -> ()
  | Some e -> (
    match List.find_opt (fun h -> h.txn = txn && h.mode = mode) !e with
    | None -> ()
    | Some h ->
      h.count <- h.count - 1;
      t.grants <- t.grants - 1;
      if h.count = 0 then begin
        e := List.filter (fun h' -> not (h' == h)) !e;
        if !e = [] then Hashtbl.remove t.table r
      end)

let sort_uniq_ints l = List.sort_uniq compare l

let acquire_all t ~txn requests =
  (* First pass: collect every conflicting transaction without mutating. *)
  let conflicting =
    List.concat_map (fun (r, mode) -> conflicts_on t ~txn r mode) requests
  in
  match sort_uniq_ints conflicting with
  | [] ->
    List.iter (fun (r, mode) -> grant t ~txn r mode) requests;
    Ok ()
  | blockers -> Error blockers

let release_request t ~txn requests =
  List.iter (fun (r, mode) -> ungrant t ~txn r mode) requests

let release_txn t ~txn =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> []
  | Some set ->
    let freed = ref [] in
    Hashtbl.iter
      (fun r () ->
        match Hashtbl.find_opt t.table r with
        | None -> ()
        | Some e ->
          let mine, others = List.partition (fun h -> h.txn = txn) !e in
          if mine <> [] then begin
            List.iter (fun h -> t.grants <- t.grants - h.count) mine;
            freed := r :: !freed;
            if others = [] then Hashtbl.remove t.table r else e := others
          end)
      set;
    Hashtbl.remove t.by_txn txn;
    !freed

let holders t r =
  match Hashtbl.find_opt t.table r with
  | None -> []
  | Some e -> List.map (fun h -> (h.txn, h.mode)) !e

let locks_of t ~txn =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> []
  | Some set ->
    Hashtbl.fold
      (fun r () acc ->
        match Hashtbl.find_opt t.table r with
        | None -> acc
        | Some e ->
          List.fold_left
            (fun acc h -> if h.txn = txn then (r, h.mode) :: acc else acc)
            acc !e)
      set []

let lock_count t = t.grants

let txn_holds t ~txn r mode =
  match Hashtbl.find_opt t.table r with
  | None -> false
  | Some e -> List.exists (fun h -> h.txn = txn && h.mode = mode && h.count > 0) !e

let clear t =
  Hashtbl.reset t.table;
  Hashtbl.reset t.by_txn;
  t.grants <- 0
