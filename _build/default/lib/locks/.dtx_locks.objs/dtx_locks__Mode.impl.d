lib/locks/mode.ml: Format
