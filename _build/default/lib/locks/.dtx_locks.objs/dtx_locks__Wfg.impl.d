lib/locks/wfg.ml: Format Hashtbl Int List Set
