lib/locks/mode.mli: Format
