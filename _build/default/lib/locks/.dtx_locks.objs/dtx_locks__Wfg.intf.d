lib/locks/wfg.mli: Format
