lib/locks/table.ml: Format Hashtbl List Mode
