lib/locks/table.mli: Format Mode
