module IntSet = Set.Make (Int)

module H = Hashtbl.Make (Int)

type t = { out : IntSet.t H.t }

let create () = { out = H.create 32 }

let add_wait t ~waiter ~holders =
  let cur = match H.find_opt t.out waiter with Some s -> s | None -> IntSet.empty in
  let s =
    List.fold_left
      (fun s h -> if h = waiter then s else IntSet.add h s)
      cur holders
  in
  if IntSet.is_empty s then H.remove t.out waiter else H.replace t.out waiter s

let clear_waits_of t txn = H.remove t.out txn

let remove_txn t txn =
  H.remove t.out txn;
  let to_update =
    H.fold
      (fun w s acc -> if IntSet.mem txn s then (w, s) :: acc else acc)
      t.out []
  in
  List.iter
    (fun (w, s) ->
      let s' = IntSet.remove txn s in
      if IntSet.is_empty s' then H.remove t.out w else H.replace t.out w s')
    to_update

let waits_of t txn =
  match H.find_opt t.out txn with
  | Some s -> IntSet.elements s
  | None -> []

let edges t =
  H.fold (fun w s acc -> IntSet.fold (fun h acc -> (w, h) :: acc) s acc) t.out []
  |> List.sort compare

let txns t =
  let set =
    H.fold
      (fun w s acc -> IntSet.union (IntSet.add w acc) s)
      t.out IntSet.empty
  in
  IntSet.elements set

let find_cycle t =
  (* Iterative DFS with a colour map; visits vertices in sorted order so the
     answer is deterministic. *)
  let color = H.create 32 in
  (* 0 = white (absent), 1 = grey (on stack), 2 = black *)
  let result = ref None in
  let rec dfs path txn =
    match H.find_opt color txn with
    | Some 2 -> ()
    | Some 1 ->
      (* Found a back edge: extract the cycle from the path. *)
      if !result = None then begin
        let rec take acc = function
          | [] -> acc
          | x :: rest -> if x = txn then x :: acc else take (x :: acc) rest
        in
        result := Some (take [] path)
      end
    | _ ->
      H.replace color txn 1;
      let succs = waits_of t txn in
      List.iter (fun s -> if !result = None then dfs (txn :: path) s) succs;
      H.replace color txn 2
  in
  let starts = List.sort compare (H.fold (fun w _ acc -> w :: acc) t.out []) in
  List.iter (fun v -> if !result = None then dfs [] v) starts;
  !result

let union graphs =
  let t = create () in
  List.iter
    (fun g ->
      H.iter
        (fun w s -> add_wait t ~waiter:w ~holders:(IntSet.elements s))
        g.out)
    graphs;
  t

let copy t = union [ t ]

let size t = H.fold (fun _ s acc -> acc + IntSet.cardinal s) t.out 0

let pp ppf t =
  List.iter (fun (w, h) -> Format.fprintf ppf "%d -> %d@." w h) (edges t)

let clear t = H.reset t.out
