let markers = [| '*'; 'o'; '+'; 'x'; '#'; '@' |]

let render ?(width = 64) ?(height = 16) ?(xlabel = "") ?(ylabel = "") series =
  let points = List.concat_map snd series in
  if points = [] then "(no data)"
  else begin
    let xs = List.map fst points and ys = List.map snd points in
    let fmin = List.fold_left min infinity and fmax = List.fold_left max neg_infinity in
    let x0 = fmin xs and x1 = fmax xs in
    let y0 = min 0.0 (fmin ys) and y1 = fmax ys in
    let xspan = if x1 -. x0 <= 0.0 then 1.0 else x1 -. x0 in
    let yspan = if y1 -. y0 <= 0.0 then 1.0 else y1 -. y0 in
    let grid = Array.make_matrix height width ' ' in
    let plot mark (x, y) =
      let cx =
        int_of_float (Float.round ((x -. x0) /. xspan *. float_of_int (width - 1)))
      in
      let cy =
        int_of_float (Float.round ((y -. y0) /. yspan *. float_of_int (height - 1)))
      in
      let row = height - 1 - cy in
      if row >= 0 && row < height && cx >= 0 && cx < width then
        grid.(row).(cx) <- mark
    in
    List.iteri
      (fun i (_, pts) ->
        let mark = markers.(i mod Array.length markers) in
        List.iter (plot mark) pts)
      series;
    let buf = Buffer.create ((width + 16) * (height + 4)) in
    if ylabel <> "" then begin
      Buffer.add_string buf ylabel;
      Buffer.add_char buf '\n'
    end;
    let ytick row =
      (* Label the top, middle and bottom rows. *)
      if row = 0 then Printf.sprintf "%10.1f |" y1
      else if row = height - 1 then Printf.sprintf "%10.1f |" y0
      else if row = height / 2 then
        Printf.sprintf "%10.1f |" (y0 +. (yspan /. 2.0))
      else Printf.sprintf "%10s |" ""
    in
    Array.iteri
      (fun row line ->
        Buffer.add_string buf (ytick row);
        Buffer.add_string buf (String.init width (fun i -> line.(i)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%10s  %-*.1f%*.1f" "" (width / 2) x0 (width - (width / 2)) x1);
    if xlabel <> "" then Buffer.add_string buf (Printf.sprintf "  (%s)" xlabel);
    Buffer.add_char buf '\n';
    List.iteri
      (fun i (label, _) ->
        Buffer.add_string buf
          (Printf.sprintf "%10s  %c = %s\n" "" markers.(i mod Array.length markers)
             label))
      series;
    let s = Buffer.contents buf in
    if String.length s > 0 && s.[String.length s - 1] = '\n' then
      String.sub s 0 (String.length s - 1)
    else s
  end
