(** Small online/offline statistics helpers used by the experiment harness
    (mean response times, percentiles, time-bucketed counters). *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summarize : float list -> summary
(** [summarize xs] computes the summary of [xs]. An empty list yields a
    summary of zeros. *)

val percentile : float array -> float -> float
(** [percentile sorted q] is the [q]-quantile (0..1) of an already-sorted
    array, by linear interpolation. *)

val mean : float list -> float

val pp_summary : Format.formatter -> summary -> unit

(** Accumulates (time, value) samples into fixed-width time buckets; used for
    the Fig. 12 throughput and concurrency-degree timelines. *)
module Timeline : sig
  type t

  val create : bucket:float -> t
  (** [create ~bucket] makes a timeline with buckets of width [bucket] (in the
      same time unit as the samples). *)

  val add : t -> time:float -> float -> unit
  (** [add tl ~time v] adds [v] into the bucket containing [time]. *)

  val incr : t -> time:float -> unit
  (** [incr tl ~time] is [add tl ~time 1.0]. *)

  val buckets : t -> (float * float) list
  (** [buckets tl] is the non-empty buckets as [(bucket_start_time, total)],
      sorted by time. *)

  val cumulative : t -> (float * float) list
  (** [cumulative tl] is like {!buckets} but with a running sum, and with
      empty intermediate buckets filled in (a proper step curve). *)
end
