(** Growable arrays (OCaml 5.1 has no [Dynarray]; this is the small subset the
    rest of the code base needs). Elements live in a contiguous array that is
    doubled on overflow, so [push] is amortised O(1) and random access O(1). *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty vector. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of length [n] filled with [x]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element. @raise Invalid_argument if out of range. *)

val set : 'a t -> int -> 'a -> unit
(** [set v i x] replaces the [i]-th element. @raise Invalid_argument if out of
    range. *)

val push : 'a t -> 'a -> unit
(** [push v x] appends [x] at the end. *)

val pop : 'a t -> 'a option
(** [pop v] removes and returns the last element, or [None] if empty. *)

val clear : 'a t -> unit
(** [clear v] removes every element (keeps the backing storage). *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val find_opt : ('a -> bool) -> 'a t -> 'a option

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val to_array : 'a t -> 'a array

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** [filter_in_place p v] keeps only the elements satisfying [p], preserving
    their relative order. *)

val swap_remove : 'a t -> int -> 'a
(** [swap_remove v i] removes the [i]-th element in O(1) by moving the last
    element into its slot; returns the removed element. Order is not
    preserved. @raise Invalid_argument if out of range. *)
