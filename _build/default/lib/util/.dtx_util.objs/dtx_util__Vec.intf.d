lib/util/vec.mli:
