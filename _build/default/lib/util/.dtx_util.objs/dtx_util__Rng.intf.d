lib/util/rng.mli:
