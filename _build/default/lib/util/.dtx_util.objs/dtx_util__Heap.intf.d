lib/util/heap.mli:
