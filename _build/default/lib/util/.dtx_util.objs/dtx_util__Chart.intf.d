lib/util/chart.mli:
