(** Binary min-heaps, parameterised by an explicit comparison. Used by the
    discrete-event simulator for its event queue. All operations are the
    standard O(log n) / O(1). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** [peek h] is the smallest element without removing it. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the smallest element. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** [to_list h] is every element in unspecified order (heap unchanged). *)
