(** Deterministic pseudo-random numbers (splitmix64). Every stochastic choice
    in the simulation draws from one of these generators so that experiments
    are exactly reproducible from a seed, independent of the platform's
    [Random] state. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t]'s stream (useful to
    give each simulated client its own stream). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. @raise Invalid_argument if [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val pct : t -> int -> bool
(** [pct t p] is [true] with probability [p]% (p in 0..100). *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly random element. @raise Invalid_argument on an
    empty array. *)

val pick_list : t -> 'a list -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp(1/mean); used for think times. *)
