(** Plain-text scatter/line charts, for rendering the experiment figures in
    terminal output next to their numeric tables. Each series gets a marker
    character; axes are linearly scaled with min/max tick labels. *)

val render :
  ?width:int ->
  ?height:int ->
  ?xlabel:string ->
  ?ylabel:string ->
  (string * (float * float) list) list ->
  string
(** [render series] draws the labelled series into a [width]×[height]
    (default 64×16) character grid. Series are assigned the markers
    [*, o, +, x, #, @] in order; overlapping points show the later series'
    marker. Returns the multi-line string (no trailing newline). Empty
    input or all-empty series yield a short placeholder string. *)
