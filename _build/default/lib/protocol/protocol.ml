module Doc = Dtx_xml.Doc
module Dg = Dtx_dataguide.Dataguide
module Op = Dtx_update.Op
module Exec = Dtx_update.Exec
module Mode = Dtx_locks.Mode
module Table = Dtx_locks.Table

type kind = Xdgl | Node2pl | Doc2pl | Tadom | Xdgl_value

let kind_to_string = function
  | Xdgl -> "XDGL"
  | Node2pl -> "Node2PL"
  | Doc2pl -> "Doc2PL"
  | Tadom -> "taDOM"
  | Xdgl_value -> "XDGL+VL"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "xdgl" -> Some Xdgl
  | "node2pl" -> Some Node2pl
  | "doc2pl" -> Some Doc2pl
  | "tadom" -> Some Tadom
  | "xdgl+vl" | "xdgl-vl" | "xdglvl" -> Some Xdgl_value
  | _ -> None

type t = {
  kind : kind;
  docs : (string, Doc.t) Hashtbl.t;
  guides : (string, Dg.t) Hashtbl.t;  (* populated for Xdgl only *)
}

let create kind = { kind; docs = Hashtbl.create 8; guides = Hashtbl.create 8 }

let kind t = t.kind

let name t = kind_to_string t.kind

let add_doc t (doc : Doc.t) =
  Hashtbl.replace t.docs doc.Doc.name doc;
  match t.kind with
  | Xdgl | Xdgl_value -> Hashtbl.replace t.guides doc.Doc.name (Dg.build doc)
  | Node2pl | Doc2pl | Tadom -> ()

let doc t name = Hashtbl.find_opt t.docs name

let docs t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.docs [] |> List.sort compare

let lock_requests t ~doc:doc_name op =
  match Hashtbl.find_opt t.docs doc_name with
  | None -> Error (Printf.sprintf "%s: unknown document %s" (name t) doc_name)
  | Some d -> (
    match t.kind with
    | Xdgl -> (
      match Hashtbl.find_opt t.guides doc_name with
      | None -> Error (Printf.sprintf "XDGL: no DataGuide for %s" doc_name)
      | Some dg ->
        let requests = Xdgl_rules.requests dg op in
        Ok (requests, List.length requests))
    | Xdgl_value -> (
      match Hashtbl.find_opt t.guides doc_name with
      | None -> Error (Printf.sprintf "XDGL+VL: no DataGuide for %s" doc_name)
      | Some dg ->
        let requests = Xdgl_value_rules.requests dg d op in
        Ok (requests, List.length requests))
    | Node2pl ->
      let requests, processed = Node2pl_rules.requests d op in
      Ok (requests, processed)
    | Tadom ->
      let requests, processed = Tadom_rules.requests d op in
      Ok (requests, processed)
    | Doc2pl ->
      (* One lock on the whole document: pseudo-node 0. *)
      let mode = if Op.is_update op then Mode.X else Mode.ST in
      Ok ([ (Table.resource doc_name 0, mode) ], 1))

let note_applied t ~doc:doc_name deltas =
  match t.kind with
  | Node2pl | Doc2pl | Tadom -> ()
  | Xdgl | Xdgl_value -> (
    match Hashtbl.find_opt t.guides doc_name with
    | None -> ()
    | Some dg ->
      List.iter
        (fun delta ->
          match delta with
          | Exec.Dg_add path -> ignore (Dg.add_instance dg path)
          | Exec.Dg_remove path -> Dg.remove_instance dg path)
        deltas)

let structure_size t doc_name =
  match t.kind with
  | Xdgl | Xdgl_value -> (
    match Hashtbl.find_opt t.guides doc_name with
    | Some dg -> Dg.size dg
    | None -> 0)
  | Node2pl | Tadom -> (
    match Hashtbl.find_opt t.docs doc_name with
    | Some d -> Doc.size d
    | None -> 0)
  | Doc2pl -> if Hashtbl.mem t.docs doc_name then 1 else 0

let dataguide t doc_name =
  match t.kind with
  | Xdgl | Xdgl_value -> Hashtbl.find_opt t.guides doc_name
  | Node2pl | Doc2pl | Tadom -> None
