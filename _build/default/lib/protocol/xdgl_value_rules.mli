(** XDGL with {e value locks} — the logical-lock refinement of the original
    XDGL paper (Pleshachkov et al. lock (node, value) pairs so that
    predicate readers and writers only collide when they actually touch the
    same value).

    The structural rules are {!Xdgl_rules}'; the differences:
    - an [Eq] predicate takes ST on the {e (DataGuide node, literal)} value
      resource (plus IS on the plain node and its ancestors) instead of ST
      on the whole node — readers of [@id = "4"] and [@id = "5"] share
      nothing;
    - an update additionally takes X on the value resources it invalidates:
      the old and new text of changed nodes, and the text of every node it
      inserts or removes (computed against the replica, which is safe
      because lock acquisition and execution are atomic at a site);
    - writers keep IX on the plain node, so structural (non-predicate)
      readers still conflict exactly as in XDGL.

    Expected profile (see the bench ablation): XDGL's cost with fewer
    predicate-induced conflicts, hence fewer deadlocks on the paper's
    id-lookup-heavy workload. *)

val requests :
  Dtx_dataguide.Dataguide.t ->
  Dtx_xml.Doc.t ->
  Dtx_update.Op.t ->
  (Dtx_locks.Table.resource * Dtx_locks.Mode.t) list
(** The deduplicated lock set (structural + value resources). *)
