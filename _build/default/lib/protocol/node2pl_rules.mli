(** Tree-locking rules over {e document} nodes — the paper's stand-in for
    related-work protocols ("DTX with locks in trees", §3).

    Evaluation {e navigation} lock-couples through every document node the
    evaluator passes ("nodes are locked from the query starting point all
    the way down", §1): each visited node costs a lock request, but coupling
    releases the lock as the traversal moves on, so only the target
    path/subtree locks are {e retained} until commit (shared-tree for reads,
    exclusive for updates, intention locks on ancestors). Lock-processing
    work is therefore proportional to the {e document} region scanned — the
    overhead the paper attributes to these protocols: "if the document
    grows, the number of locks also increases" — while the retained locks
    are per-document-node, finer than XDGL's shared label-path nodes, which
    is why the paper observes {e fewer} deadlocks for the tree protocol. *)

val requests :
  Dtx_xml.Doc.t ->
  Dtx_update.Op.t ->
  (Dtx_locks.Table.resource * Dtx_locks.Mode.t) list * int
(** [(retained, processed)]: the deduplicated lock set the operation holds
    until transaction end, and the total number of lock requests the
    LockManager processed (retained + the transient lock-coupling requests
    of navigation). Resources are document node ids. *)
