(** taDOM-style multi-granularity locking on {e document} nodes — the
    "other concurrency control protocols" the paper's future work proposes
    plugging into DTX (§5), modelled on Haustein & Härder's taDOM family
    (the winner of their "Contest of XML lock protocols", which the paper
    cites as [21]).

    Unlike Node2PL, taDOM does not lock whole subtrees node by node: a
    subtree lock on the target plus {e intention locks on the ancestor
    path} protect the region implicitly, and navigation uses jump locks
    that cost nothing to retain. The lock set is therefore proportional to
    [targets × depth] — as cheap as XDGL's — while conflicts are
    {e per document node}, finer than XDGL's shared label-path nodes (two
    inserts under different parents with the same label path do not
    conflict). The expected profile, which the bench ablation confirms:
    response times at XDGL's level with {e fewer} deadlocks.

    Mode mapping onto {!Dtx_locks.Mode}: taDOM's SR (subtree read) → [ST],
    node exclusive → [X], subtree exclusive → [XT], CX (child-insert
    exclusive) → [SI]/[SA]/[SB], IR/IX intention → [IS]/[IX]. *)

val requests :
  Dtx_xml.Doc.t ->
  Dtx_update.Op.t ->
  (Dtx_locks.Table.resource * Dtx_locks.Mode.t) list * int
(** [(retained, processed)] — as {!Node2pl_rules.requests}, but with
    path-proportional lock sets and no navigation charge beyond the
    retained set. Resources are document node ids. *)
