(** XDGL's per-operation locking rules over a DataGuide (paper §2):

    - {b query}: ST on each target DataGuide node, IS on its ancestors; the
      nodes named by path-expression predicates also get ST (+ IS above).
    - {b insert}: X on the DataGuide node where the new content will live and
      IX on its ancestors; SI (into) / SA (after) / SB (before) on the node
      the new content connects to, IS on its ancestors; predicate nodes ST/IS.
    - {b remove}: XT on the target nodes (the whole subtree goes), IX on
      ancestors; predicate nodes ST/IS.
    - {b rename}: XT on the target (its subtree's label paths all change), IX
      above; X on the path the node moves to, IX above.
    - {b change}: X on the target node, IX on ancestors.
    - {b transpose}: XT on the source, SI on the destination, X on the new
      location, with the matching intention locks above each.

    Lock targets are computed {e structurally} (predicates ignored for the
    main path), so the lock set always covers every document node the
    operation could touch. *)

val requests :
  Dtx_dataguide.Dataguide.t ->
  Dtx_update.Op.t ->
  (Dtx_locks.Table.resource * Dtx_locks.Mode.t) list
(** The deduplicated XDGL lock set for the operation. May create zero-count
    DataGuide nodes for insert/rename/transpose new locations. *)

val frag_root_label : string -> string option
(** Root element name of an XML fragment text, if scannable. *)
