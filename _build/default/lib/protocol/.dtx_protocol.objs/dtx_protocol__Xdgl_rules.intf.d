lib/protocol/xdgl_rules.mli: Dtx_dataguide Dtx_locks Dtx_update
