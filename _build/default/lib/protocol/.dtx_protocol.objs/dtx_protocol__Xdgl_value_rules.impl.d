lib/protocol/xdgl_value_rules.ml: Dtx_dataguide Dtx_locks Dtx_update Dtx_xml Dtx_xpath List Xdgl_rules
