lib/protocol/tadom_rules.mli: Dtx_locks Dtx_update Dtx_xml
