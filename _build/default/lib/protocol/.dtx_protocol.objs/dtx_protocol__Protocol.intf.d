lib/protocol/protocol.mli: Dtx_dataguide Dtx_locks Dtx_update Dtx_xml
