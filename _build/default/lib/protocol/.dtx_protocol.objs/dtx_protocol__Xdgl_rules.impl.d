lib/protocol/xdgl_rules.ml: Dtx_dataguide Dtx_locks Dtx_update Dtx_xpath List String
