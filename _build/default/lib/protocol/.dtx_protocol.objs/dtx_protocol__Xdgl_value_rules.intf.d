lib/protocol/xdgl_value_rules.mli: Dtx_dataguide Dtx_locks Dtx_update Dtx_xml
