lib/protocol/tadom_rules.ml: Dtx_locks Dtx_update Dtx_xml Dtx_xpath List
