lib/protocol/node2pl_rules.mli: Dtx_locks Dtx_update Dtx_xml
