lib/protocol/protocol.ml: Dtx_dataguide Dtx_locks Dtx_update Dtx_xml Hashtbl List Node2pl_rules Printf String Tadom_rules Xdgl_rules Xdgl_value_rules
