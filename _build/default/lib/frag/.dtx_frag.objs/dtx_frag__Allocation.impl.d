lib/frag/allocation.ml: Dtx_xml Format Hashtbl List Printf String
