lib/frag/allocation.mli: Dtx_xml Format
