lib/frag/fragment.mli: Dtx_xml
