lib/frag/fragment.ml: Array Dtx_util Dtx_xml Hashtbl List Printf
