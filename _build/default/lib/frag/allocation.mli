(** Replica placement and the catalog (Fig. 8 of the paper).

    With {e total} replication every document lives at every site; with
    {e partial} replication each fragment is placed round-robin, optionally
    with extra copies (the bold entries of Fig. 8). The catalog answers the
    coordinator's "which sites hold the data this operation involves?"
    question (Alg. 1 l. 12). *)

type replication =
  | Total
  | Partial of { copies : int }  (** [copies >= 1] replicas per document *)

val replication_to_string : replication -> string

type placement = {
  doc : Dtx_xml.Doc.t;
  sites : int list;  (** site ids holding a replica, sorted *)
}

val allocate :
  n_sites:int -> replication -> Dtx_xml.Doc.t list -> placement list
(** Assign each document its sites. Documents are placed in list order:
    document [i] goes to sites [i, i+1, …, i+copies-1 (mod n_sites)].
    @raise Invalid_argument if [n_sites < 1] or [copies] out of range. *)

type catalog

val catalog : placement list -> catalog

val sites_of : catalog -> string -> int list
(** Sites holding the named document ([[]] if unknown). *)

val docs_at : catalog -> int -> string list
(** Documents stored at a site, sorted. *)

val all_docs : catalog -> string list

val pp_catalog : Format.formatter -> catalog -> unit
(** A Fig.-8-style "site → contents" listing. *)
