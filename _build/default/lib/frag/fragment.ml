module Node = Dtx_xml.Node
module Doc = Dtx_xml.Doc
module Vec = Dtx_util.Vec

let fragment_names name ~parts =
  List.init parts (fun i -> Printf.sprintf "%s#%d" name i)

(* Deep copy preserving node ids (replica semantics, like Doc.clone). *)
let rec copy_tree (n : Node.t) : Node.t =
  let c = Node.make ~id:n.Node.id ~label:n.Node.label ?text:n.Node.text () in
  Vec.iter (fun child -> Node.add_child c (copy_tree child)) n.Node.children;
  c

let fragment (doc : Doc.t) ~parts =
  if parts < 1 then invalid_arg "Fragment.fragment: parts must be >= 1";
  let names = fragment_names doc.Doc.name ~parts in
  if parts = 1 then [ Doc.of_root ~name:(List.hd names) (copy_tree doc.Doc.root) ]
  else begin
    (* Skeleton per fragment: root + its direct children (attributes and text
       of both levels included), without the second-level subtrees. *)
    let make_skeleton name =
      let root =
        Node.make ~id:doc.Doc.root.Node.id ~label:doc.Doc.root.Node.label
          ?text:doc.Doc.root.Node.text ()
      in
      let sections = Hashtbl.create 8 in
      Vec.iter
        (fun (sec : Node.t) ->
          let copy =
            Node.make ~id:sec.Node.id ~label:sec.Node.label ?text:sec.Node.text ()
          in
          (* First-level attributes stay with the structure. *)
          Vec.iter
            (fun (c : Node.t) ->
              if Node.is_attribute c then Node.add_child copy (copy_tree c))
            sec.Node.children;
          Node.add_child root copy;
          Hashtbl.replace sections sec.Node.id copy)
        doc.Doc.root.Node.children;
      (name, root, sections)
    in
    let fragments = List.map make_skeleton names in
    let bins = Array.of_list fragments in
    let sizes = Array.make parts 0 in
    (* Units: second-level subtrees with their section of origin. *)
    let units = ref [] in
    Vec.iter
      (fun (sec : Node.t) ->
        Vec.iter
          (fun (u : Node.t) ->
            if not (Node.is_attribute u) then
              units := (sec.Node.id, u, Node.subtree_size u) :: !units)
          sec.Node.children)
      doc.Doc.root.Node.children;
    let units =
      List.sort
        (fun (_, a, sa) (_, b, sb) ->
          let c = compare sb sa in
          if c <> 0 then c else compare a.Node.id b.Node.id)
        !units
    in
    let smallest_bin () =
      let best = ref 0 in
      for i = 1 to parts - 1 do
        if sizes.(i) < sizes.(!best) then best := i
      done;
      !best
    in
    List.iter
      (fun (sec_id, u, sz) ->
        let b = smallest_bin () in
        let _, _, sections = bins.(b) in
        (match Hashtbl.find_opt sections sec_id with
         | Some sec_copy -> Node.add_child sec_copy (copy_tree u)
         | None -> ());
        sizes.(b) <- sizes.(b) + sz)
      units;
    List.map (fun (name, root, _) -> Doc.of_root ~name root) fragments
  end

let size_imbalance docs =
  match docs with
  | [] -> 1.0
  | _ ->
    let sizes = List.map (fun d -> float_of_int (Doc.size d)) docs in
    let mn = List.fold_left min (List.hd sizes) sizes in
    let mx = List.fold_left max (List.hd sizes) sizes in
    if mn <= 0.0 then infinity else mx /. mn
