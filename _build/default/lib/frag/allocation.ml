module Doc = Dtx_xml.Doc

type replication = Total | Partial of { copies : int }

let replication_to_string = function
  | Total -> "total"
  | Partial { copies } -> Printf.sprintf "partial(x%d)" copies

type placement = {
  doc : Doc.t;
  sites : int list;
}

let allocate ~n_sites replication docs =
  if n_sites < 1 then invalid_arg "Allocation.allocate: n_sites < 1";
  let all_sites = List.init n_sites (fun i -> i) in
  match replication with
  | Total -> List.map (fun doc -> { doc; sites = all_sites }) docs
  | Partial { copies } ->
    if copies < 1 || copies > n_sites then
      invalid_arg "Allocation.allocate: copies out of range";
    List.mapi
      (fun i doc ->
        let sites =
          List.init copies (fun k -> (i + k) mod n_sites) |> List.sort_uniq compare
        in
        { doc; sites })
      docs

type catalog = {
  by_doc : (string, int list) Hashtbl.t;
  by_site : (int, string list ref) Hashtbl.t;
}

let catalog placements =
  let c = { by_doc = Hashtbl.create 16; by_site = Hashtbl.create 8 } in
  List.iter
    (fun p ->
      Hashtbl.replace c.by_doc p.doc.Doc.name p.sites;
      List.iter
        (fun s ->
          match Hashtbl.find_opt c.by_site s with
          | Some l -> l := p.doc.Doc.name :: !l
          | None -> Hashtbl.replace c.by_site s (ref [ p.doc.Doc.name ]))
        p.sites)
    placements;
  c

let sites_of c name =
  match Hashtbl.find_opt c.by_doc name with Some l -> l | None -> []

let docs_at c site =
  match Hashtbl.find_opt c.by_site site with
  | Some l -> List.sort compare !l
  | None -> []

let all_docs c =
  Hashtbl.fold (fun name _ acc -> name :: acc) c.by_doc [] |> List.sort compare

let pp_catalog ppf c =
  let sites =
    Hashtbl.fold (fun s _ acc -> s :: acc) c.by_site [] |> List.sort compare
  in
  List.iter
    (fun s ->
      Format.fprintf ppf "s%d: %s@." s (String.concat ", " (docs_at c s)))
    sites
