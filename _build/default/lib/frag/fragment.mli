(** Size-balanced XML fragmentation, after Kurita et al. (AINA '07), the
    scheme the paper uses for partial replication: "the data is fragmented
    considering the structure and size of the document, so that each
    generated fragment has a similar size … all sites have similar volumes
    of data" (§3.2).

    The unit of distribution is a {e second-level subtree}: each child of a
    child of the root (an individual person, item, auction, …). Every
    fragment replicates the root and the first-level structure (so all
    fragments share the document schema) and receives a subset of the
    units, assigned greedily largest-first to the currently smallest
    fragment. *)

val fragment :
  Dtx_xml.Doc.t -> parts:int -> Dtx_xml.Doc.t list
(** [fragment doc ~parts] splits [doc] into [parts] documents named
    ["<name>#0" … "<name>#k"]. With [parts = 1] the result is a single
    renamed copy. Node ids are preserved from the original document.
    @raise Invalid_argument if [parts < 1]. *)

val fragment_names : string -> parts:int -> string list
(** The names [fragment] would produce. *)

val size_imbalance : Dtx_xml.Doc.t list -> float
(** max/min node-count ratio across fragments (1.0 = perfectly balanced);
    used by tests to assert the balance property. *)
