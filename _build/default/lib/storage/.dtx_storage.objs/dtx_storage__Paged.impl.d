lib/storage/paged.ml: Buffer Bytes Dtx_xml Int64 List Pager Printf String
