lib/storage/storage.mli: Dtx_xml
