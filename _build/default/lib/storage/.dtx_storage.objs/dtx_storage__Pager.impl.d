lib/storage/pager.ml: Bytes Hashtbl Printf Unix
