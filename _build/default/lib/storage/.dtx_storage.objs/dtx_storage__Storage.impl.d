lib/storage/storage.ml: Array Buffer Char Dtx_xml Filename Hashtbl List Paged Printf String Sys
