lib/storage/pager.mli:
