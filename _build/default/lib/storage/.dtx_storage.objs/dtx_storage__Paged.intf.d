lib/storage/paged.mli: Dtx_xml Pager
