(** Pluggable XML document stores — DTX's DataManager talks to one of these.

    The paper's DTX "supports communication with any XML document storage
    method" (its experiments use the Sedna native XML DBMS; its example
    deployment mixes a DBMS and a plain file system, Fig. 2). Two backends
    are provided:
    - {!memory}: an in-memory store standing in for Sedna — documents are
      kept as parsed trees; this is what the simulated experiments use.
    - {!filesystem}: serialized XML files in a directory, demonstrating the
      same interface over durable storage.

    Loads hand out {e copies} so the caller's in-memory working tree never
    aliases the persisted one (DTX processes data in main memory and writes
    back on commit). *)

type t

val memory : unit -> t
(** A fresh empty in-memory store. *)

val filesystem : dir:string -> t
(** A store over [dir] (created if missing). Document names are encoded into
    safe file names, so any name works.
    @raise Sys_error if [dir] cannot be created. *)

val paged : path:string -> ?pool_pages:int -> unit -> t
(** A single-file paged store with an LRU buffer pool (see {!Paged}): the
    future-work backend that keeps only [pool_pages] × 4 KiB resident. *)

val backend_name : t -> string
(** ["memory"], ["filesystem"] or ["paged"]. *)

val list : t -> string list
(** Stored document names, sorted. *)

val load : t -> string -> Dtx_xml.Doc.t option
(** [load s name] is a private copy of the stored document. *)

val store : t -> Dtx_xml.Doc.t -> unit
(** [store s doc] persists a copy of [doc] under [doc.name] (overwrites). *)

val remove : t -> string -> unit

val mem : t -> string -> bool

val load_count : t -> int
(** Number of [load]s served (DataManager traffic statistics). *)

val store_count : t -> int
