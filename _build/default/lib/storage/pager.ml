let page_size = 4096

type frame = {
  data : bytes;  (* always page_size long *)
  mutable dirty : bool;
  mutable last_used : int;
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable disk_reads : int;
  mutable disk_writes : int;
}

type t = {
  fd : Unix.file_descr;
  pool_pages : int;
  pool : (int, frame) Hashtbl.t;
  mutable n_pages : int;
  mutable clock : int;
  stats : stats;
}

let open_file ~path ~pool_pages =
  if pool_pages < 1 then invalid_arg "Pager.open_file: pool_pages < 1";
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  let n_pages = max 1 ((size + page_size - 1) / page_size) in
  let t =
    { fd;
      pool_pages;
      pool = Hashtbl.create (2 * pool_pages);
      n_pages;
      clock = 0;
      stats = { hits = 0; misses = 0; evictions = 0; disk_reads = 0; disk_writes = 0 } }
  in
  (* A fresh file needs its header page materialized. *)
  if size = 0 then begin
    let zero = Bytes.make page_size '\000' in
    ignore (Unix.lseek fd 0 Unix.SEEK_SET);
    ignore (Unix.write fd zero 0 page_size);
    t.stats.disk_writes <- t.stats.disk_writes + 1
  end;
  t

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let disk_read t id buf =
  ignore (Unix.lseek t.fd (id * page_size) Unix.SEEK_SET);
  let rec fill off =
    if off < page_size then begin
      let n = Unix.read t.fd buf off (page_size - off) in
      if n = 0 then () (* short file: rest stays zero *) else fill (off + n)
    end
  in
  fill 0;
  t.stats.disk_reads <- t.stats.disk_reads + 1

let disk_write t id (data : bytes) =
  ignore (Unix.lseek t.fd (id * page_size) Unix.SEEK_SET);
  let rec drain off =
    if off < page_size then
      drain (off + Unix.write t.fd data off (page_size - off))
  in
  drain 0;
  t.stats.disk_writes <- t.stats.disk_writes + 1

let evict_one t =
  (* LRU: smallest last_used. Linear scan is fine at pool sizes of
     tens-to-thousands of frames. *)
  let victim = ref None in
  Hashtbl.iter
    (fun id frame ->
      match !victim with
      | Some (_, best) when best.last_used <= frame.last_used -> ()
      | _ -> victim := Some (id, frame))
    t.pool;
  match !victim with
  | None -> ()
  | Some (id, frame) ->
    if frame.dirty then disk_write t id frame.data;
    Hashtbl.remove t.pool id;
    t.stats.evictions <- t.stats.evictions + 1

let room t = if Hashtbl.length t.pool >= t.pool_pages then evict_one t

let frame_of t id ~load =
  match Hashtbl.find_opt t.pool id with
  | Some frame ->
    t.stats.hits <- t.stats.hits + 1;
    frame.last_used <- tick t;
    frame
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    room t;
    let data = Bytes.make page_size '\000' in
    if load then disk_read t id data;
    let frame = { data; dirty = false; last_used = tick t } in
    Hashtbl.replace t.pool id frame;
    frame

let check_range t id name =
  if id < 0 || id >= t.n_pages then
    invalid_arg (Printf.sprintf "Pager.%s: page %d out of range" name id)

let read t id =
  check_range t id "read";
  Bytes.copy (frame_of t id ~load:true).data

let write t id data =
  check_range t id "write";
  if Bytes.length data <> page_size then invalid_arg "Pager.write: bad size";
  let frame = frame_of t id ~load:false in
  Bytes.blit data 0 frame.data 0 page_size;
  frame.dirty <- true;
  frame.last_used <- tick t

let alloc t =
  let id = t.n_pages in
  t.n_pages <- id + 1;
  (* Materialize on disk so the file length always covers allocated pages. *)
  disk_write t id (Bytes.make page_size '\000');
  room t;
  Hashtbl.replace t.pool id
    { data = Bytes.make page_size '\000'; dirty = false; last_used = tick t };
  id

let page_count t = t.n_pages

let flush t =
  Hashtbl.iter
    (fun id frame ->
      if frame.dirty then begin
        disk_write t id frame.data;
        frame.dirty <- false
      end)
    t.pool

let close t =
  flush t;
  Unix.close t.fd

let stats t = t.stats

let pool_resident t = Hashtbl.length t.pool
