module Doc = Dtx_xml.Doc
module Printer = Dtx_xml.Printer
module Xml_parser = Dtx_xml.Parser

let magic = "DTXP"

let header_free_off = 8

let header_dir_off = 16

(* Chain page layout: next id (8 bytes, big-endian) | used (2 bytes) |
   payload. *)
let chain_payload = Pager.page_size - 10

type t = {
  pager : Pager.t;
  mutable free_head : int;  (* 0 = empty *)
  mutable dir_head : int;  (* 0 = no directory yet *)
  mutable dir : (string * int) list;  (* name -> chain head, sorted *)
}

(* --- header --------------------------------------------------------------- *)

let read_header t =
  let page = Pager.read t.pager 0 in
  let m = Bytes.sub_string page 0 4 in
  if m = "\000\000\000\000" then begin
    (* Fresh file: write the magic. *)
    Bytes.blit_string magic 0 page 0 4;
    Pager.write t.pager 0 page;
    t.free_head <- 0;
    t.dir_head <- 0
  end
  else if m <> magic then failwith "Paged.open_store: not a DTXP file"
  else begin
    t.free_head <- Int64.to_int (Bytes.get_int64_be page header_free_off);
    t.dir_head <- Int64.to_int (Bytes.get_int64_be page header_dir_off)
  end

let write_header t =
  let page = Pager.read t.pager 0 in
  Bytes.blit_string magic 0 page 0 4;
  Bytes.set_int64_be page header_free_off (Int64.of_int t.free_head);
  Bytes.set_int64_be page header_dir_off (Int64.of_int t.dir_head);
  Pager.write t.pager 0 page

(* --- chains --------------------------------------------------------------- *)

let take_free_page t =
  if t.free_head = 0 then Pager.alloc t.pager
  else begin
    let id = t.free_head in
    let page = Pager.read t.pager id in
    t.free_head <- Int64.to_int (Bytes.get_int64_be page 0);
    id
  end

let free_chain t head =
  (* Push every page of the chain onto the free list. *)
  let rec go id =
    if id <> 0 then begin
      let page = Pager.read t.pager id in
      let next = Int64.to_int (Bytes.get_int64_be page 0) in
      Bytes.set_int64_be page 0 (Int64.of_int t.free_head);
      Pager.write t.pager id page;
      t.free_head <- id;
      go next
    end
  in
  go head

let write_chain t (data : string) =
  let len = String.length data in
  let n_pages = max 1 ((len + chain_payload - 1) / chain_payload) in
  let ids = List.init n_pages (fun _ -> take_free_page t) in
  let rec emit ids off =
    match ids with
    | [] -> ()
    | id :: rest ->
      let chunk = min chain_payload (len - off) in
      let page = Bytes.make Pager.page_size '\000' in
      let next = match rest with [] -> 0 | n :: _ -> n in
      Bytes.set_int64_be page 0 (Int64.of_int next);
      Bytes.set_uint16_be page 8 (max 0 chunk);
      if chunk > 0 then Bytes.blit_string data off page 10 chunk;
      Pager.write t.pager id page;
      emit rest (off + chunk)
  in
  emit ids 0;
  List.hd ids

let read_chain t head =
  let buf = Buffer.create 4096 in
  let rec go id =
    if id <> 0 then begin
      let page = Pager.read t.pager id in
      let next = Int64.to_int (Bytes.get_int64_be page 0) in
      let used = Bytes.get_uint16_be page 8 in
      Buffer.add_subbytes buf page 10 used;
      go next
    end
  in
  go head;
  Buffer.contents buf

(* --- directory ------------------------------------------------------------ *)

(* One entry per line: "<chain head> <name>" — names may contain anything but
   a newline; lengths keep parsing unambiguous enough for our encoding
   because the head is the first token. Newlines in names are escaped. *)
let encode_name name =
  String.concat "\\n" (String.split_on_char '\n' name)

let decode_name enc =
  (* Reverse of encode_name: split on the literal backslash-n pairs. *)
  let parts = ref [] in
  let buf = Buffer.create (String.length enc) in
  let i = ref 0 in
  let n = String.length enc in
  while !i < n do
    if !i + 1 < n && enc.[!i] = '\\' && enc.[!i + 1] = 'n' then begin
      parts := Buffer.contents buf :: !parts;
      Buffer.clear buf;
      i := !i + 2
    end
    else begin
      Buffer.add_char buf enc.[!i];
      incr i
    end
  done;
  parts := Buffer.contents buf :: !parts;
  String.concat "\n" (List.rev !parts)

let save_directory t =
  if t.dir_head <> 0 then free_chain t t.dir_head;
  let text =
    String.concat "\n"
      (List.map (fun (name, head) -> Printf.sprintf "%d %s" head (encode_name name)) t.dir)
  in
  t.dir_head <- (if t.dir = [] then 0 else write_chain t text);
  write_header t

let load_directory t =
  if t.dir_head = 0 then t.dir <- []
  else
    t.dir <-
      read_chain t t.dir_head
      |> String.split_on_char '\n'
      |> List.filter_map (fun line ->
             match String.index_opt line ' ' with
             | None -> None
             | Some i ->
               let head = int_of_string (String.sub line 0 i) in
               let name =
                 decode_name (String.sub line (i + 1) (String.length line - i - 1))
               in
               Some (name, head))

(* --- public API ------------------------------------------------------------ *)

let open_store ~path ?(pool_pages = 64) () =
  let pager = Pager.open_file ~path ~pool_pages in
  let t = { pager; free_head = 0; dir_head = 0; dir = [] } in
  read_header t;
  load_directory t;
  t

let close t =
  write_header t;
  Pager.close t.pager

let store t (doc : Doc.t) =
  (match List.assoc_opt doc.Doc.name t.dir with
   | Some old_head ->
     free_chain t old_head;
     t.dir <- List.remove_assoc doc.Doc.name t.dir
   | None -> ());
  let text = Printer.to_string ~indent:false ~decl:false doc in
  let head = write_chain t text in
  t.dir <- List.sort compare ((doc.Doc.name, head) :: t.dir);
  save_directory t;
  Pager.flush t.pager

let load t name =
  match List.assoc_opt name t.dir with
  | None -> None
  | Some head -> Some (Xml_parser.parse ~name (read_chain t head))

let remove t name =
  match List.assoc_opt name t.dir with
  | None -> ()
  | Some head ->
    free_chain t head;
    t.dir <- List.remove_assoc name t.dir;
    save_directory t;
    Pager.flush t.pager

let list t = List.map fst t.dir

let mem t name = List.mem_assoc name t.dir

let page_count t = Pager.page_count t.pager

let free_pages t =
  let rec count id acc =
    if id = 0 then acc
    else
      let page = Pager.read t.pager id in
      count (Int64.to_int (Bytes.get_int64_be page 0)) (acc + 1)
  in
  count t.free_head 0

let pager_stats t = Pager.stats t.pager
