module Doc = Dtx_xml.Doc
module Printer = Dtx_xml.Printer
module Xml_parser = Dtx_xml.Parser

type backend =
  | Memory of (string, Doc.t) Hashtbl.t
  | Filesystem of string  (* directory *)
  | Paged_store of Paged.t

type t = {
  backend : backend;
  mutable loads : int;
  mutable stores : int;
}

let memory () = { backend = Memory (Hashtbl.create 16); loads = 0; stores = 0 }

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let paged ~path ?pool_pages () =
  { backend = Paged_store (Paged.open_store ~path ?pool_pages ());
    loads = 0;
    stores = 0 }

let backend_name t =
  match t.backend with
  | Memory _ -> "memory"
  | Filesystem _ -> "filesystem"
  | Paged_store _ -> "paged"

(* Document names may contain characters unfit for file names; hex-escape
   everything outside [A-Za-z0-9._-]. *)
let encode_name name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' ->
        Buffer.add_char buf c
      | c -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    name;
  Buffer.contents buf

let decode_name enc =
  let buf = Buffer.create (String.length enc) in
  let n = String.length enc in
  let rec loop i =
    if i < n then
      if enc.[i] = '%' && i + 2 < n then begin
        let code = int_of_string ("0x" ^ String.sub enc (i + 1) 2) in
        Buffer.add_char buf (Char.chr code);
        loop (i + 3)
      end
      else begin
        Buffer.add_char buf enc.[i];
        loop (i + 1)
      end
  in
  loop 0;
  Buffer.contents buf

let path_of dir name = Filename.concat dir (encode_name name ^ ".xml")

let filesystem ~dir =
  mkdir_p dir;
  { backend = Filesystem dir; loads = 0; stores = 0 }

let list t =
  match t.backend with
  | Memory tbl -> Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare
  | Paged_store p -> Paged.list p
  | Filesystem dir ->
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun f ->
           if Filename.check_suffix f ".xml" then
             Some (decode_name (Filename.chop_suffix f ".xml"))
           else None)
    |> List.sort compare

let load t name =
  t.loads <- t.loads + 1;
  match t.backend with
  | Paged_store p -> Paged.load p name
  | Memory tbl -> (
    match Hashtbl.find_opt tbl name with
    | Some doc -> Some (Doc.clone doc)
    | None -> None)
  | Filesystem dir ->
    let file = path_of dir name in
    if Sys.file_exists file then begin
      let ic = open_in_bin file in
      let len = in_channel_length ic in
      let content = really_input_string ic len in
      close_in ic;
      Some (Xml_parser.parse ~name content)
    end
    else None

let store t doc =
  t.stores <- t.stores + 1;
  match t.backend with
  | Paged_store p -> Paged.store p doc
  | Memory tbl -> Hashtbl.replace tbl doc.Doc.name (Doc.clone doc)
  | Filesystem dir ->
    let file = path_of dir doc.Doc.name in
    let oc = open_out_bin file in
    output_string oc (Printer.to_string ~indent:true doc);
    close_out oc

let remove t name =
  match t.backend with
  | Paged_store p -> Paged.remove p name
  | Memory tbl -> Hashtbl.remove tbl name
  | Filesystem dir ->
    let file = path_of dir name in
    if Sys.file_exists file then Sys.remove file

let mem t name =
  match t.backend with
  | Memory tbl -> Hashtbl.mem tbl name
  | Paged_store p -> Paged.mem p name
  | Filesystem dir -> Sys.file_exists (path_of dir name)

let load_count t = t.loads

let store_count t = t.stores
