(** A paged, single-file document store over {!Pager} — the future-work
    storage backend ("mechanisms to avoid that all processing be conducted
    in the main memory", paper §5).

    Documents are serialized XML split across chains of 4 KiB pages; a
    directory (itself a page chain anchored in the header page) maps names
    to chains; freed chains go on a free list and are reused. Only the
    buffer pool's worth of pages is resident; everything else lives in the
    file.

    Layout:
    - page 0 (header): magic ["DTXP"], free-list head, directory chain head;
    - chain page: 8-byte next-page id (0 terminates), 2-byte payload length,
      payload. *)

type t

val open_store : path:string -> ?pool_pages:int -> unit -> t
(** Open or create the store file. [pool_pages] (default 64) sizes the
    buffer pool. @raise Sys_error on I/O failure, [Failure] on a corrupt
    header. *)

val close : t -> unit
(** Flush and close. The store must not be used afterwards. *)

val store : t -> Dtx_xml.Doc.t -> unit
(** Persist (overwrite) the document under [doc.name]. *)

val load : t -> string -> Dtx_xml.Doc.t option

val remove : t -> string -> unit

val list : t -> string list
(** Stored names, sorted. *)

val mem : t -> string -> bool

val page_count : t -> int
(** Size of the backing file in pages (includes free pages awaiting
    reuse). *)

val free_pages : t -> int
(** Pages currently on the free list. *)

val pager_stats : t -> Pager.stats
(** Buffer-pool statistics (hits/misses/evictions/disk traffic). *)
