(** A page file with an LRU buffer pool — the disk substrate for the
    {!Paged} store.

    Pages are fixed-size (4 KiB) blocks addressed by integer ids; page 0 is
    reserved for the client's header. Reads and writes go through a buffer
    pool of configurable capacity: hits stay in memory, misses read from
    disk, and evictions write dirty pages back (write-back caching). This is
    the "don't keep everything in main memory" machinery the paper lists as
    future work — the pool can be far smaller than the database.

    Single-process, no latching: DTX serializes site work on the simulated
    scheduler, so the pager only needs durability, not thread safety. *)

type t

val page_size : int
(** 4096 bytes. *)

val open_file : path:string -> pool_pages:int -> t
(** Open (or create) the page file at [path] with a buffer pool of
    [pool_pages] frames. @raise Invalid_argument if [pool_pages < 1].
    @raise Sys_error on I/O failure. *)

val close : t -> unit
(** Flush every dirty page and close the file descriptor. *)

val flush : t -> unit
(** Write all dirty pooled pages to disk (pool contents are kept). *)

val alloc : t -> int
(** Extend the file by one zeroed page; returns its id (never 0). *)

val page_count : t -> int
(** Pages in the file, including page 0. *)

val read : t -> int -> bytes
(** [read t id] is a fresh copy of the page's 4096 bytes (pool hit or disk
    read). @raise Invalid_argument if [id] is out of range. *)

val write : t -> int -> bytes -> unit
(** [write t id data] replaces the page ([data] must be exactly
    [page_size] bytes; it is copied). Buffered until eviction or
    {!flush}. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable disk_reads : int;
  mutable disk_writes : int;
}

val stats : t -> stats

val pool_resident : t -> int
(** Pages currently held in the pool (≤ [pool_pages]). *)
