lib/txn/txn.mli: Dtx_update Format
