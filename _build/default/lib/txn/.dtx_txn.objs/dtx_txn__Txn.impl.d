lib/txn/txn.ml: Array Dtx_update Format List
