lib/core/cost.mli:
