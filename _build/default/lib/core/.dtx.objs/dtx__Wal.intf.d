lib/core/wal.mli:
