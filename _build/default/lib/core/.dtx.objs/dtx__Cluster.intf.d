lib/core/cluster.mli: Cost Dtx_frag Dtx_net Dtx_protocol Dtx_sim Dtx_txn Dtx_update Dtx_util History Site
