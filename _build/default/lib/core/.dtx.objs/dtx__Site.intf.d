lib/core/site.mli: Dtx_locks Dtx_protocol Dtx_storage Dtx_update Dtx_xml Hashtbl Wal
