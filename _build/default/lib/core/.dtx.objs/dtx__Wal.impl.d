lib/core/wal.ml: Dtx_util Hashtbl List
