lib/core/cluster.ml: Array Cost Dtx_frag Dtx_locks Dtx_net Dtx_protocol Dtx_sim Dtx_storage Dtx_txn Dtx_update Dtx_util Filename Hashtbl History List Logs Printf Site String Sys Wal
