lib/core/history.ml: Array Dtx_locks Dtx_util Hashtbl List Printf String
