lib/core/cost.ml:
