lib/core/site.ml: Dtx_locks Dtx_protocol Dtx_storage Dtx_update Dtx_xml Hashtbl List Wal
