lib/core/history.mli: Dtx_locks
