(** Per-site write-ahead commit log — the durability half of the paper's
    future work ("develop solutions for DTX to work with the properties of
    atomicity and durability", §5).

    Under two-phase commit each participant logs [Prepared] before voting
    yes, and logs the outcome ([Committed] {e after} the DataManager's
    write-back, [Aborted] otherwise). The log is durable: it survives
    {!Site.wipe_volatile}. Because the outcome record is written only after
    persistence completes, the store is always consistent with the log, and
    crash recovery reduces to {e presumed abort}: an in-doubt transaction
    (prepared, no outcome) can be recorded aborted — its effects never
    reached the store. *)

type entry =
  | Prepared of { txn : int; time : float }
  | Committed of { txn : int; time : float }
  | Aborted of { txn : int; time : float }

val entry_txn : entry -> int

type t

val create : unit -> t

val append : t -> entry -> unit

val entries : t -> entry list
(** In append order. *)

val length : t -> int

val outcome_of : t -> int -> [ `Committed | `Aborted | `In_doubt | `Unknown ]
(** The latest state the log records for a transaction: [`Unknown] if it
    never prepared here. *)

val in_doubt : t -> int list
(** Transactions with a [Prepared] record and no outcome record — what a
    recovering site must resolve (sorted). *)

val resolve_presumed_abort : t -> int list
(** Append [Aborted] for every in-doubt transaction (at time 0.0 relative
    records are fine for recovery bookkeeping); returns the transactions
    resolved. *)
