module Sim = Dtx_sim.Sim
module Net = Dtx_net.Net
module Txn = Dtx_txn.Txn
module Op = Dtx_update.Op
module Wfg = Dtx_locks.Wfg
module Allocation = Dtx_frag.Allocation
module Storage = Dtx_storage.Storage
module Protocol = Dtx_protocol.Protocol
module Vec = Dtx_util.Vec

let src = Logs.Src.create "dtx.cluster" ~doc:"DTX cluster events"

module Log = (val Logs.src_log src : Logs.LOG)

type commit_protocol = One_phase | Two_phase

type config = {
  protocol : Protocol.kind;
  cost : Cost.t;
  deadlock_period_ms : float;
  storage : [ `Memory | `Filesystem of string | `Paged of string ];
  commit : commit_protocol;
  deadlock_policy : Site.deadlock_policy;
  op_timeout_ms : float option;
}

let default_config ?(protocol = Protocol.Xdgl) () =
  { protocol; cost = Cost.default; deadlock_period_ms = 40.0;
    storage = `Memory; commit = One_phase;
    deadlock_policy = Site.Detection; op_timeout_ms = None }

type stats = {
  mutable submitted : int;
  mutable committed : int;
  mutable aborted : int;
  mutable failed : int;
  mutable deadlock_aborts : int;
  mutable distributed_deadlocks : int;
  mutable local_deadlocks : int;
  mutable op_undos : int;
  mutable wake_messages : int;
  mutable wounded : int;
  mutable last_finish : float;
  response_times : float Vec.t;
  commit_stamps : float Vec.t;
  concurrency_samples : (float * int) Vec.t;
}

let fresh_stats () =
  { submitted = 0; committed = 0; aborted = 0; failed = 0; deadlock_aborts = 0;
    distributed_deadlocks = 0; local_deadlocks = 0; op_undos = 0;
    wake_messages = 0; wounded = 0; last_finish = 0.0;
    response_times = Vec.create ();
    commit_stamps = Vec.create (); concurrency_samples = Vec.create () }

(* Why a transaction ended the way it did (drives the deadlock counters). *)
type end_reason = Reason_normal | Reason_deadlock | Reason_op_failure of string

type reply = {
  r_site : int;
  r_granted : bool;
  r_blocked : bool;
  r_deadlock : bool;
  r_failed : string option;
}

type txn_state = {
  txn : Txn.t;
  on_finish : Txn.t -> unit;
  mutable attempt : int;  (** attempt counter for the current operation *)
  mutable sites_left : int list;  (** participants still to visit, ascending *)
  mutable sites_done : int list;  (** participants that executed this attempt *)
  mutable awaiting_site : int option;
      (** participant whose status reply is outstanding (timeout guard) *)
  mutable wake_pending : bool;
      (** a wake arrived while this attempt was in flight; retry instead of
          sleeping (prevents the lost-wakeup race) *)
  mutable finishing : bool;  (** commit/abort protocol already started *)
  mutable prepared : bool;  (** 2PC: the vote round completed successfully *)
  mutable end_commit : bool;  (** the in-flight end protocol is a commit *)
  mutable end_acks_pending : int;
  mutable end_ack_failed : bool;
  mutable reason : end_reason;
}

type t = {
  sim : Sim.t;
  net : Net.t;
  cost : Cost.t;
  config : config;
  n_sites : int;
  sites : Site.t array;
  catalog : Allocation.catalog;
  txns : (int, txn_state) Hashtbl.t;
  mutable next_txn_id : int;
  stats : stats;
  mutable shutdown_requested : bool;
  mutable detector_busy : bool;
  mutable active : int;
  failed_sites : (int, unit) Hashtbl.t;
  mutable history : History.t option;
}

let stats t = t.stats

let active_txns t = t.active

let sites t = t.sites

let catalog t = t.catalog

let txn_status t id =
  match Hashtbl.find_opt t.txns id with
  | Some st -> Some st.txn.Txn.status
  | None -> None

let total_lock_requests t =
  Array.fold_left (fun acc s -> acc + s.Site.stats.Site.lock_requests) 0 t.sites

let total_blocked_ops t =
  Array.fold_left (fun acc s -> acc + s.Site.stats.Site.blocked_ops) 0 t.sites

let inject_site_failure t ~site = Hashtbl.replace t.failed_sites site ()

let heal_site t ~site = Hashtbl.remove t.failed_sites site

let crash_site t ~site =
  Hashtbl.replace t.failed_sites site ();
  Site.wipe_volatile t.sites.(site)

let recover_site t ~site =
  Site.recover_from_storage t.sites.(site);
  (* Presumed abort: in-doubt transactions never reached the store. *)
  ignore (Wal.resolve_presumed_abort t.sites.(site).Site.wal);
  Hashtbl.remove t.failed_sites site

let site_failed t site = Hashtbl.mem t.failed_sites site

let sample_concurrency t =
  Vec.push t.stats.concurrency_samples (Sim.now t.sim, t.active)

(* Serialize heavy work on a site's scheduler: run [k] once the site is free;
   [k] must set [busy_until] itself (via [charge]). *)
let rec on_site_free t (site : Site.t) k =
  let now = Sim.now t.sim in
  if now >= site.Site.busy_until then k ()
  else
    ignore
      (Sim.schedule_at t.sim ~time:site.Site.busy_until (fun () ->
           on_site_free t site k))

let charge t (site : Site.t) cost =
  site.Site.busy_until <- Sim.now t.sim +. cost

(* Retry delay after a wake: a deterministic, per-transaction stagger.
   Without it, two transactions blocked on each other's undone operations
   wake simultaneously, collide again, undo again — a livelock the periodic
   detector would eventually resolve by aborting one of them. Staggering by
   id and attempt lets the earlier transaction win the race instead. *)
let retry_delay t (st : txn_state) =
  t.cost.Cost.sched_ms
  +. (0.3 *. float_of_int (st.txn.Txn.id mod 8))
  +. (0.2 *. float_of_int (min st.attempt 20))

(* ------------------------------------------------------------------ *)
(* Coordinator: Algorithm 1                                            *)
(* ------------------------------------------------------------------ *)

let rec coordinator_step t (st : txn_state) =
  if (not st.finishing) && st.txn.Txn.status = Txn.Active then begin
    match Txn.next_operation st.txn with
    | None -> start_end_protocol t st ~commit:true
    | Some op_rec -> (
      let doc = op_rec.Txn.doc in
      match Allocation.sites_of t.catalog doc with
      | [] ->
        st.reason <- Reason_op_failure (Printf.sprintf "no site holds %s" doc);
        start_end_protocol t st ~commit:false
      | op_sites ->
        (* Visit participants one at a time, in ascending site order (a
           global acquisition order: two operations contending for the same
           replicas meet at the same first site, so one queues there holding
           nothing — no cross-site livelock between single operations). *)
        st.attempt <- st.attempt + 1;
        st.sites_left <- List.sort compare op_sites;
        st.sites_done <- [];
        Log.debug (fun m ->
            m "t%d op%d attempt %d -> sites [%s]" st.txn.Txn.id
              op_rec.Txn.op_index st.attempt
              (String.concat ";" (List.map string_of_int op_sites)));
        visit_next_site t st)
  end

and visit_next_site t (st : txn_state) =
  match (st.sites_left, Txn.next_operation st.txn) with
  | [], Some op_rec ->
    (* Executed at every participant: the operation is done (Alg. 1). *)
    op_rec.Txn.executed_sites <- st.sites_done;
    Txn.advance st.txn;
    ignore
      (Sim.schedule t.sim ~delay:t.cost.Cost.sched_ms (fun () ->
           coordinator_step t st))
  | dst :: rest, Some op_rec ->
    st.sites_left <- rest;
    st.awaiting_site <- Some dst;
    let attempt = st.attempt in
    let bytes =
      t.cost.Cost.op_msg_bytes + String.length (Op.to_string op_rec.Txn.op)
    in
    Net.send t.net ~src:st.txn.Txn.coordinator ~dst ~bytes ~reliable:false
      (fun () ->
        participant_exec t ~site_id:dst ~txn_id:st.txn.Txn.id
          ~op_index:op_rec.Txn.op_index ~attempt ~doc:op_rec.Txn.doc
          ~op:op_rec.Txn.op ~coordinator:st.txn.Txn.coordinator);
    (match t.config.op_timeout_ms with
     | None -> ()
     | Some timeout ->
       ignore
         (Sim.schedule t.sim ~delay:timeout (fun () ->
              if
                st.attempt = attempt && (not st.finishing)
                && st.awaiting_site = Some dst
                && st.txn.Txn.status = Txn.Active
                && Hashtbl.mem t.txns st.txn.Txn.id
              then begin
                Log.debug (fun m ->
                    m "t%d op timeout at site %d" st.txn.Txn.id dst);
                st.reason <-
                  Reason_op_failure
                    (Printf.sprintf "operation timed out at site %d" dst);
                start_end_protocol t st ~commit:false
              end)))
  | _, None -> start_end_protocol t st ~commit:true

(* Participant: Algorithm 2 — process a remote operation in the local
   LockManager and report its status to the coordinator. *)
and participant_exec t ~site_id ~txn_id ~op_index ~attempt ~doc ~op ~coordinator =
  let site = t.sites.(site_id) in
  if site_failed t site_id then
    Net.send t.net ~src:site_id ~dst:coordinator ~bytes:t.cost.Cost.ack_msg_bytes
      ~reliable:false (fun () ->
        handle_op_reply t ~txn_id ~attempt
          { r_site = site_id; r_granted = false; r_blocked = false;
            r_deadlock = false; r_failed = Some "site unavailable" })
  else
    on_site_free t site (fun () ->
        (* The transaction may have been aborted while this message was in
           flight; executing for a dead transaction would leak effects that
           no later abort cleans up. *)
        let still_live =
          match Hashtbl.find_opt t.txns txn_id with
          | Some st -> (not st.finishing) && st.attempt = attempt
          | None -> false
        in
        if not still_live then
          Net.send t.net ~src:site_id ~dst:coordinator
            ~bytes:t.cost.Cost.ack_msg_bytes ~reliable:false (fun () ->
              handle_op_reply t ~txn_id ~attempt
                { r_site = site_id; r_granted = false; r_blocked = false;
                  r_deadlock = false; r_failed = Some "transaction ended" })
        else begin
          let outcome =
            Site.process_operation site ~txn:txn_id ~op_index ~attempt ~doc op
          in
          let c = t.cost in
          let work, reply =
            match outcome with
            | Site.Granted { lock_requests; touched; result_nodes } ->
              ( c.Cost.sched_ms
                +. (float_of_int lock_requests *. c.Cost.lock_request_ms)
                +. (float_of_int touched *. c.Cost.node_touch_ms),
                { r_site = site_id; r_granted = true; r_blocked = false;
                  r_deadlock = false; r_failed = None }
                |> fun r -> (r, result_nodes) |> fst )
            | Site.Blocked { lock_requests; blockers; wound } ->
              List.iter
                (fun b ->
                  Site.register_waiter site ~blocker:b
                    { Site.waiting_txn = txn_id;
                      waiting_coordinator = coordinator })
                blockers;
              (* Wound-wait: the scheduler aborts the younger holders; the
                 requester's wake arrives when their locks release. *)
              List.iter
                (fun victim ->
                  match Hashtbl.find_opt t.txns victim with
                  | Some vst when not vst.finishing ->
                    t.stats.wounded <- t.stats.wounded + 1;
                    vst.reason <- Reason_deadlock;
                    Net.send t.net ~src:site_id ~dst:vst.txn.Txn.coordinator
                      ~bytes:c.Cost.ack_msg_bytes (fun () ->
                        start_end_protocol t vst ~commit:false)
                  | _ -> ())
                wound;
              ( c.Cost.sched_ms
                +. (float_of_int lock_requests *. c.Cost.lock_request_ms),
                { r_site = site_id; r_granted = false; r_blocked = true;
                  r_deadlock = false; r_failed = None } )
            | Site.Deadlock { lock_requests } ->
              ( c.Cost.sched_ms
                +. (float_of_int lock_requests *. c.Cost.lock_request_ms),
                { r_site = site_id; r_granted = false; r_blocked = false;
                  r_deadlock = true; r_failed = None } )
            | Site.Op_failed msg ->
              ( c.Cost.sched_ms,
                { r_site = site_id; r_granted = false; r_blocked = false;
                  r_deadlock = false; r_failed = Some msg } )
          in
          let result_nodes =
            match outcome with
            | Site.Granted { result_nodes; _ } -> result_nodes
            | _ -> 0
          in
          charge t site work;
          let bytes =
            c.Cost.ack_msg_bytes + (result_nodes * c.Cost.result_bytes_per_node)
          in
          ignore
            (Sim.schedule t.sim ~delay:work (fun () ->
                 Net.send t.net ~src:site_id ~dst:coordinator ~bytes
                   ~reliable:false (fun () ->
                     handle_op_reply t ~txn_id ~attempt reply)))
        end)

and handle_op_reply t ~txn_id ~attempt reply =
  match Hashtbl.find_opt t.txns txn_id with
  | None -> ()
  | Some st ->
    if st.attempt = attempt && not st.finishing then begin
      st.awaiting_site <- None;
      if reply.r_deadlock then begin
        t.stats.local_deadlocks <- t.stats.local_deadlocks + 1;
        st.reason <- Reason_deadlock;
        start_end_protocol t st ~commit:false
      end
      else
        match reply.r_failed with
        | Some msg ->
          st.reason <- Reason_op_failure msg;
          start_end_protocol t st ~commit:false
        | None ->
          if reply.r_granted then begin
            st.sites_done <- reply.r_site :: st.sites_done;
            visit_next_site t st
          end
          else begin
            (* Blocked at this participant: undo where the operation already
               ran (Alg. 1 l. 15-17), wake anyone those locks were holding
               back, and wait. *)
            assert reply.r_blocked;
            (match Txn.next_operation st.txn with
             | Some op_rec ->
               let op_index = op_rec.Txn.op_index in
               let attempt = st.attempt in
               if st.sites_done <> [] then
                 t.stats.op_undos <-
                   t.stats.op_undos + List.length st.sites_done;
               List.iter
                 (fun site_id ->
                   Net.send t.net ~src:st.txn.Txn.coordinator ~dst:site_id
                     ~bytes:t.cost.Cost.ack_msg_bytes (fun () ->
                       let site = t.sites.(site_id) in
                       on_site_free t site (fun () ->
                           Site.undo_operation ~only_attempt:attempt site
                             ~txn:st.txn.Txn.id ~op_index;
                           charge t site t.cost.Cost.sched_ms;
                           List.iter
                             (fun (w : Site.waiter) ->
                               Net.send t.net ~src:site_id
                                 ~dst:w.Site.waiting_coordinator
                                 ~bytes:t.cost.Cost.ack_msg_bytes (fun () ->
                                   handle_wake t ~txn_id:w.Site.waiting_txn))
                             (Site.take_waiters site ~blocker:st.txn.Txn.id))))
                 st.sites_done
             | None -> ());
            enter_wait t st
          end
    end

and enter_wait t (st : txn_state) =
  if st.wake_pending then begin
    (* The blocker already finished while we were deciding; retry now. *)
    st.wake_pending <- false;
    ignore
      (Sim.schedule t.sim ~delay:(retry_delay t st) (fun () ->
           coordinator_step t st))
  end
  else begin
    st.txn.Txn.status <- Txn.Waiting;
    st.txn.Txn.wait_started <- Sim.now t.sim
  end

and handle_wake t ~txn_id =
  t.stats.wake_messages <- t.stats.wake_messages + 1;
  match Hashtbl.find_opt t.txns txn_id with
  | None -> ()
  | Some st ->
    if not st.finishing then begin
      match st.txn.Txn.status with
      | Txn.Waiting ->
        st.txn.Txn.status <- Txn.Active;
        st.txn.Txn.waited_total <-
          st.txn.Txn.waited_total +. (Sim.now t.sim -. st.txn.Txn.wait_started);
        ignore
          (Sim.schedule t.sim ~delay:(retry_delay t st) (fun () ->
               coordinator_step t st))
      | Txn.Active -> st.wake_pending <- true
      | Txn.Committed | Txn.Aborted | Txn.Failed -> ()
    end

(* ------------------------------------------------------------------ *)
(* Commit / abort: Algorithms 5 and 6                                  *)
(* ------------------------------------------------------------------ *)

and involved_sites t (st : txn_state) =
  (* Every site that may hold locks, wait edges or effects for this
     transaction: the replica sites of every document it references, plus
     the coordinator. *)
  let doc_sites =
    List.concat_map (Allocation.sites_of t.catalog) (Txn.docs st.txn)
  in
  List.sort_uniq compare (st.txn.Txn.coordinator :: doc_sites)

and start_end_protocol t (st : txn_state) ~commit =
  if (not st.finishing) && commit && t.config.commit = Two_phase
     && not st.prepared
  then start_prepare_phase t st
  else if not st.finishing then begin
    st.finishing <- true;
    st.end_commit <- commit;
    st.end_ack_failed <- false;
    let sites_involved = involved_sites t st in
    st.end_acks_pending <- List.length sites_involved;
    Log.debug (fun m ->
        m "t%d %s across [%s]" st.txn.Txn.id
          (if commit then "commit" else "abort")
          (String.concat ";" (List.map string_of_int sites_involved)));
    if sites_involved = [] then finalize t st (if commit then Txn.Committed else Txn.Aborted)
    else
      List.iter
        (fun dst ->
          Net.send t.net ~src:st.txn.Txn.coordinator ~dst
            ~bytes:t.cost.Cost.ack_msg_bytes (fun () ->
              participant_end t ~site_id:dst ~txn_id:st.txn.Txn.id ~commit
                ~coordinator:st.txn.Txn.coordinator))
        sites_involved
  end

(* 2PC phase one: collect votes; every participant durably logs Prepared
   before voting yes. *)
and start_prepare_phase t (st : txn_state) =
  st.finishing <- true;
  let sites_involved = involved_sites t st in
  st.end_acks_pending <- List.length sites_involved;
  st.end_ack_failed <- false;
  Log.debug (fun m ->
      m "t%d prepare across [%s]" st.txn.Txn.id
        (String.concat ";" (List.map string_of_int sites_involved)));
  List.iter
    (fun dst ->
      Net.send t.net ~src:st.txn.Txn.coordinator ~dst
        ~bytes:t.cost.Cost.ack_msg_bytes (fun () ->
          participant_prepare t ~site_id:dst ~txn_id:st.txn.Txn.id
            ~coordinator:st.txn.Txn.coordinator))
    sites_involved

and participant_prepare t ~site_id ~txn_id ~coordinator =
  let site = t.sites.(site_id) in
  if site_failed t site_id then
    Net.send t.net ~src:site_id ~dst:coordinator ~bytes:t.cost.Cost.ack_msg_bytes
      (fun () -> handle_vote t ~txn_id ~ok:false)
  else
    on_site_free t site (fun () ->
        Wal.append site.Site.wal
          (Wal.Prepared { txn = txn_id; time = Sim.now t.sim });
        let work = t.cost.Cost.sched_ms in
        charge t site work;
        ignore
          (Sim.schedule t.sim ~delay:work (fun () ->
               Net.send t.net ~src:site_id ~dst:coordinator
                 ~bytes:t.cost.Cost.ack_msg_bytes (fun () ->
                   handle_vote t ~txn_id ~ok:true))))

and handle_vote t ~txn_id ~ok =
  match Hashtbl.find_opt t.txns txn_id with
  | None -> ()
  | Some st ->
    if st.finishing && not st.prepared then begin
      if not ok then st.end_ack_failed <- true;
      st.end_acks_pending <- st.end_acks_pending - 1;
      if st.end_acks_pending = 0 then
        if st.end_ack_failed then begin
          (* A participant voted no: abort (its Prepared record, if any,
             resolves as presumed abort). *)
          st.finishing <- false;
          st.reason <- Reason_op_failure "prepare phase rejected";
          start_end_protocol t st ~commit:false
        end
        else begin
          st.prepared <- true;
          st.finishing <- false;
          start_end_protocol t st ~commit:true
        end
    end

and participant_end t ~site_id ~txn_id ~commit ~coordinator =
  let site = t.sites.(site_id) in
  if site_failed t site_id then
    (* "the message sent to the site is not served" (Alg. 5 l. 5 / 6 l. 5) *)
    Net.send t.net ~src:site_id ~dst:coordinator ~bytes:t.cost.Cost.ack_msg_bytes
      (fun () -> handle_end_ack t ~txn_id ~ok:false)
  else
    on_site_free t site (fun () ->
        let touched = Site.txn_touched_total site ~txn:txn_id in
        let waiters = Site.finish_txn site ~txn:txn_id ~commit in
        (* The outcome record follows the DataManager write-back, so the
           durable store and the log can never disagree (see Wal). *)
        if t.config.commit = Two_phase then
          Wal.append site.Site.wal
            (if commit then Wal.Committed { txn = txn_id; time = Sim.now t.sim }
             else Wal.Aborted { txn = txn_id; time = Sim.now t.sim });
        let c = t.cost in
        let work =
          c.Cost.sched_ms
          +.
          if commit then float_of_int touched *. c.Cost.persist_node_ms
          else float_of_int touched *. c.Cost.node_touch_ms
        in
        charge t site work;
        (* Wake whoever was waiting for this transaction's locks here. *)
        List.iter
          (fun (w : Site.waiter) ->
            Net.send t.net ~src:site_id ~dst:w.Site.waiting_coordinator
              ~bytes:c.Cost.ack_msg_bytes (fun () ->
                handle_wake t ~txn_id:w.Site.waiting_txn))
          waiters;
        ignore
          (Sim.schedule t.sim ~delay:work (fun () ->
               Net.send t.net ~src:site_id ~dst:coordinator
                 ~bytes:c.Cost.ack_msg_bytes (fun () ->
                   handle_end_ack t ~txn_id ~ok:true))))

and handle_end_ack t ~txn_id ~ok =
  match Hashtbl.find_opt t.txns txn_id with
  | None -> ()
  | Some st ->
    if st.finishing then begin
      if not ok then st.end_ack_failed <- true;
      st.end_acks_pending <- st.end_acks_pending - 1;
      if st.end_acks_pending = 0 then
        if st.end_commit then begin
          if st.end_ack_failed then begin
            (* Commit could not complete at some site: abort (Alg. 5 l. 6). *)
            st.finishing <- false;
            st.reason <- Reason_op_failure "commit rejected at a site";
            start_end_protocol t st ~commit:false
          end
          else finalize t st Txn.Committed
        end
        else if st.end_ack_failed then begin
          (* Abort could not complete: tell everyone to fail the transaction
             (Alg. 6 l. 6-9). *)
          List.iter
            (fun dst ->
              if not (site_failed t dst) then
                Net.send t.net ~src:st.txn.Txn.coordinator ~dst
                  ~bytes:t.cost.Cost.ack_msg_bytes (fun () ->
                    let site = t.sites.(dst) in
                    ignore (Site.finish_txn site ~txn:txn_id ~commit:false)))
            (involved_sites t st);
          finalize t st Txn.Failed
        end
        else finalize t st Txn.Aborted
    end

and finalize t (st : txn_state) status =
  (match (status, st.reason) with
   | Txn.Aborted, Reason_op_failure msg ->
     Log.debug (fun m -> m "t%d aborted: %s" st.txn.Txn.id msg)
   | _ -> ());
  st.txn.Txn.status <- status;
  st.txn.Txn.finished_at <- Sim.now t.sim;
  t.stats.last_finish <- Sim.now t.sim;
  Hashtbl.remove t.txns st.txn.Txn.id;
  t.active <- t.active - 1;
  sample_concurrency t;
  (match (status, t.history) with
   | Txn.Committed, Some h ->
     History.note_commit h ~txn:st.txn.Txn.id ~time:(Sim.now t.sim)
   | (Txn.Aborted | Txn.Failed), Some h -> History.note_abort h ~txn:st.txn.Txn.id
   | _ -> ());
  (match status with
   | Txn.Committed ->
     t.stats.committed <- t.stats.committed + 1;
     Vec.push t.stats.response_times (Txn.response_time st.txn);
     Vec.push t.stats.commit_stamps st.txn.Txn.finished_at
   | Txn.Aborted ->
     t.stats.aborted <- t.stats.aborted + 1;
     if st.reason = Reason_deadlock then
       t.stats.deadlock_aborts <- t.stats.deadlock_aborts + 1
   | Txn.Failed -> t.stats.failed <- t.stats.failed + 1
   | Txn.Active | Txn.Waiting -> assert false);
  st.on_finish st.txn

(* ------------------------------------------------------------------ *)
(* Distributed deadlock detection: Algorithm 4                         *)
(* ------------------------------------------------------------------ *)

let detect_deadlocks t =
  if not t.detector_busy then begin
    t.detector_busy <- true;
    let detector_site = 0 in
    let merged = ref (Wfg.create ()) in
    let c = t.cost in
    let rec visit i =
      if i >= t.n_sites then t.detector_busy <- false
      else if site_failed t i then (* unreachable: treat as an empty graph *)
        visit (i + 1)
      else
        (* Request site i's wait-for graph, merge, check for a cycle. *)
        Net.send t.net ~src:detector_site ~dst:i ~bytes:c.Cost.ack_msg_bytes
          (fun () ->
            let snap = Site.wfg_snapshot t.sites.(i) in
            let bytes = c.Cost.ack_msg_bytes + (16 * Wfg.size snap) in
            Net.send t.net ~src:i ~dst:detector_site ~bytes (fun () ->
                merged := Wfg.union [ !merged; snap ];
                match Wfg.find_cycle !merged with
                | None -> visit (i + 1)
                | Some cycle -> (
                  t.detector_busy <- false;
                  (* "the most recent transaction involved in the circle is
                     aborted" — ids grow monotonically with start time. *)
                  let victim = List.fold_left max min_int cycle in
                  match Hashtbl.find_opt t.txns victim with
                  | Some st when not st.finishing ->
                    t.stats.distributed_deadlocks <-
                      t.stats.distributed_deadlocks + 1;
                    Log.debug (fun m ->
                        m "distributed deadlock: cycle [%s], aborting t%d"
                          (String.concat ";" (List.map string_of_int cycle))
                          victim);
                    st.reason <- Reason_deadlock;
                    Net.send t.net ~src:detector_site
                      ~dst:st.txn.Txn.coordinator ~bytes:c.Cost.ack_msg_bytes
                      (fun () -> start_end_protocol t st ~commit:false)
                  | _ -> ())))
    in
    visit 0
  end

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)
(* ------------------------------------------------------------------ *)

let create ~sim ~net ~n_sites config ~placements =
  if n_sites < 1 then invalid_arg "Cluster.create: n_sites < 1";
  let site_docs i =
    List.filter_map
      (fun (p : Allocation.placement) ->
        if List.mem i p.Allocation.sites then Some p.Allocation.doc else None)
      placements
  in
  let make_site i =
    let storage =
      match config.storage with
      | `Memory -> Storage.memory ()
      | `Filesystem dir ->
        Storage.filesystem ~dir:(Filename.concat dir (Printf.sprintf "site%d" i))
      | `Paged dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        Storage.paged
          ~path:(Filename.concat dir (Printf.sprintf "site%d.dtxp" i))
          ()
    in
    Site.create ~id:i ~protocol_kind:config.protocol
      ~deadlock_policy:config.deadlock_policy ~storage ~docs:(site_docs i) ()
  in
  let t =
    { sim;
      net;
      cost = config.cost;
      config;
      n_sites;
      sites = Array.init n_sites make_site;
      catalog = Allocation.catalog placements;
      txns = Hashtbl.create 128;
      next_txn_id = 1;
      stats = fresh_stats ();
      shutdown_requested = false;
      detector_busy = false;
      active = 0;
      failed_sites = Hashtbl.create 4;
      history = None }
  in
  Sim.every sim ~period:config.deadlock_period_ms (fun () ->
      if t.active > 0 then detect_deadlocks t;
      not (t.shutdown_requested && t.active = 0));
  t

let shutdown_when_idle t = t.shutdown_requested <- true

let enable_history t =
  match t.history with
  | Some h -> h
  | None ->
    let h = History.create () in
    t.history <- Some h;
    Array.iter
      (fun (site : Site.t) ->
        site.Site.access_sink <-
          Some
            (fun ~txn ~op_index ~attempt grants ->
              History.record h ~time:(Sim.now t.sim) ~site:site.Site.id ~txn
                ~op_index ~attempt grants);
        site.Site.undo_sink <-
          Some (fun ~txn ~op_index ~attempt ->
              History.invalidate h ~txn ~op_index ~attempt))
      t.sites;
    h

let history t = t.history

let check_serializable t =
  match t.history with
  | Some h -> History.check_serializable h
  | None -> invalid_arg "Cluster.check_serializable: history not enabled"

let submit t ~client ~coordinator ~ops ~on_finish =
  if coordinator < 0 || coordinator >= t.n_sites then
    invalid_arg "Cluster.submit: bad coordinator site";
  let id = t.next_txn_id in
  t.next_txn_id <- id + 1;
  let txn = Txn.create ~id ~client ~coordinator ops in
  txn.Txn.submitted_at <- Sim.now t.sim;
  let st =
    { txn; on_finish; attempt = 0; sites_left = []; sites_done = []
    ; awaiting_site = None; wake_pending = false; finishing = false
    ; prepared = false
    ; end_commit = false; end_acks_pending = 0; end_ack_failed = false
    ; reason = Reason_normal }
  in
  Hashtbl.replace t.txns id st;
  t.stats.submitted <- t.stats.submitted + 1;
  t.active <- t.active + 1;
  sample_concurrency t;
  ignore
    (Sim.schedule t.sim ~delay:t.cost.Cost.sched_ms (fun () ->
         coordinator_step t st));
  txn
