module Heap = Dtx_util.Heap

type event = {
  time : float;
  seq : int;
  action : unit -> unit;
}

type event_id = int

type t = {
  mutable clock : float;
  mutable next_seq : int;
  queue : event Heap.t;
  cancelled : (int, unit) Hashtbl.t;
}

let cmp_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  { clock = 0.0;
    next_seq = 0;
    queue = Heap.create ~cmp:cmp_event;
    cancelled = Hashtbl.create 16 }

let now t = t.clock

let schedule_at t ~time action =
  let time = if time < t.clock then t.clock else time in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.queue { time; seq; action };
  seq

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let cancel t id = Hashtbl.replace t.cancelled id ()

let rec every t ~period ?start f =
  if period <= 0.0 then invalid_arg "Sim.every: period must be positive";
  let delay = match start with Some s -> s | None -> period in
  ignore
    (schedule t ~delay (fun () -> if f () then every t ~period ~start:period f))

let pending t = Heap.length t.queue

let fire t ev =
  t.clock <- ev.time;
  if Hashtbl.mem t.cancelled ev.seq then Hashtbl.remove t.cancelled ev.seq
  else ev.action ()

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    fire t ev;
    true

let run ?until ?max_events t =
  let fired = ref 0 in
  let continue () =
    match max_events with Some m -> !fired < m | None -> true
  in
  let in_horizon ev =
    match until with Some u -> ev.time <= u | None -> true
  in
  let rec loop () =
    if continue () then
      match Heap.peek t.queue with
      | Some ev when in_horizon ev ->
        ignore (Heap.pop t.queue);
        fire t ev;
        incr fired;
        loop ()
      | _ -> ()
  in
  loop ()
