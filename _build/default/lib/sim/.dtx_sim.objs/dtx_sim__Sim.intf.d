lib/sim/sim.mli:
