lib/sim/sim.ml: Dtx_util Hashtbl
