lib/xmark/generator.mli: Dtx_xml
