lib/xmark/queries.mli: Dtx_update Dtx_util Dtx_xml
