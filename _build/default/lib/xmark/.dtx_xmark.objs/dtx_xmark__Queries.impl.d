lib/xmark/queries.ml: Array Dtx_update Dtx_util Dtx_xml Dtx_xpath Generator List Printf
