lib/xmark/generator.ml: Dtx_util Dtx_xml List Printf
