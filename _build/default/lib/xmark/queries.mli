(** The XMark workload adapted to DTX's languages (paper §3: "the XMark
    benchmark is extended, adapting its queries to the XPath language and
    adding update operations").

    {!adapted_queries} are the static query templates (XMark queries that
    survive restriction to the XPath subset, by XMark query number);
    {!gen_query}/{!gen_update} instantiate templates against a concrete
    (fragment) document, picking entity ids that actually exist there so
    generated transactions exercise real data. *)

val adapted_queries : (string * string) list
(** [(template name, XPath text)] pairs; every path parses with
    {!Dtx_xpath.Parser.parse}. *)

val gen_query : Dtx_util.Rng.t -> Dtx_xml.Doc.t -> Dtx_update.Op.t
(** A random query operation against [doc]. *)

val gen_update :
  Dtx_util.Rng.t -> fresh:(unit -> int) -> Dtx_xml.Doc.t -> Dtx_update.Op.t
(** A random update operation (insert / remove / change / rename /
    transpose, weighted towards inserts and changes like the paper's
    scenario). [fresh] supplies unique numbers for new entity ids. *)
