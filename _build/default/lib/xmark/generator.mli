(** A from-scratch generator for XMark-schema auction documents (Schmidt et
    al., VLDB '02) — the database of the paper's evaluation (its Fig. 7
    schema): a [site] root with [regions] (six continents of [item]s),
    [categories], [catgraph], [people] ([person]s with address/profile/…),
    [open_auctions] (with [bidder] histories) and [closed_auctions].

    Sizing: the paper measures its database in megabytes (40–200 MB of XMark
    output). This reproduction maps 1 paper-MB ≈ 250 document nodes
    ({!params_of_mb}) so the simulated experiments keep the paper's x-axes
    while staying fast; the protocols' relative behaviour depends only on
    node counts (see DESIGN.md, substitutions). *)

type params = {
  seed : int;
  items_per_region : int;
  persons : int;
  open_auctions : int;
  closed_auctions : int;
  categories : int;
}

val default_params : params
(** A small document (a few hundred nodes) for tests and examples. *)

val params_of_nodes : ?seed:int -> int -> params
(** Parameters sized so the generated document has approximately (within a
    few percent of) the requested node count. *)

val params_of_mb : ?seed:int -> float -> params
(** [params_of_mb mb] ≈ [params_of_nodes (250 * mb)] — the paper-MB
    calibration. *)

val generate : ?name:string -> params -> Dtx_xml.Doc.t
(** Deterministic for a given [params] (including [seed]). Default [name] is
    ["xmark"]. *)

val person_ids : Dtx_xml.Doc.t -> string list
(** The [@id] values of [person] elements present in (a fragment of) a
    generated document. *)

val item_ids : Dtx_xml.Doc.t -> string list

val open_auction_ids : Dtx_xml.Doc.t -> string list

val regions : string list
(** The six region element names. *)
