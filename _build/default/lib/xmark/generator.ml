module Node = Dtx_xml.Node
module Doc = Dtx_xml.Doc
module Rng = Dtx_util.Rng

type params = {
  seed : int;
  items_per_region : int;
  persons : int;
  open_auctions : int;
  closed_auctions : int;
  categories : int;
}

let default_params =
  { seed = 42; items_per_region = 4; persons = 10; open_auctions = 6;
    closed_auctions = 4; categories = 3 }

let regions =
  [ "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" ]

(* Approximate node cost of each entity (measured against [generate]):
   item ≈ 13 (with its mailbox), person ≈ 17 (address, profile, watches),
   open_auction ≈ 24 (bidders, annotation, interval), closed_auction ≈ 13,
   category ≈ 5, fixed structure ≈ 10. Proportions loosely follow XMark's
   own entity mix. *)
let item_nodes = 13
let person_nodes = 17
let oa_nodes = 24
let ca_nodes = 13
let cat_nodes = 5
let fixed_nodes = 10

let params_of_nodes ?(seed = 42) target =
  if target < fixed_nodes then invalid_arg "Generator.params_of_nodes: too small";
  (* Weights: items 35%, persons 30%, open 20%, closed 10%, categories 5%. *)
  let budget = float_of_int (target - fixed_nodes) in
  let items_total = budget *. 0.35 /. float_of_int item_nodes in
  let items_per_region = max 1 (int_of_float (items_total /. 6.0)) in
  let persons = max 1 (int_of_float (budget *. 0.30 /. float_of_int person_nodes)) in
  let open_auctions = max 1 (int_of_float (budget *. 0.20 /. float_of_int oa_nodes)) in
  let closed_auctions = max 1 (int_of_float (budget *. 0.10 /. float_of_int ca_nodes)) in
  let categories = max 1 (int_of_float (budget *. 0.05 /. float_of_int cat_nodes)) in
  { seed; items_per_region; persons; open_auctions; closed_auctions; categories }

let params_of_mb ?seed mb = params_of_nodes ?seed (int_of_float (250.0 *. mb))

let first_names =
  [| "Ana"; "Bruno"; "Carla"; "Davi"; "Edna"; "Fabio"; "Gina"; "Hugo";
     "Iris"; "Joao"; "Katia"; "Luis"; "Mara"; "Nilo"; "Olga"; "Paulo";
     "Rita"; "Saulo"; "Tania"; "Ueda"; "Vera"; "Wagner"; "Xena"; "Yuri" |]

let last_names =
  [| "Silva"; "Souza"; "Moreira"; "Machado"; "Costa"; "Lima"; "Alves";
     "Rocha"; "Dias"; "Pinto"; "Ramos"; "Freitas"; "Barros"; "Teixeira" |]

let cities =
  [| "Fortaleza"; "Recife"; "Natal"; "Salvador"; "Belem"; "Manaus";
     "Curitiba"; "Porto Alegre"; "Campinas"; "Sao Luis" |]

let words =
  [| "vintage"; "rare"; "boxed"; "mint"; "classic"; "signed"; "limited";
     "antique"; "restored"; "original"; "handmade"; "imported" |]

let goods =
  [| "mouse"; "keyboard"; "monitor"; "camera"; "lens"; "guitar"; "amp";
     "watch"; "book"; "lamp"; "radio"; "bicycle"; "printer"; "tablet" |]

let money rng = Printf.sprintf "%d.%02d" (Rng.int_in rng 1 500) (Rng.int rng 100)

let date rng =
  Printf.sprintf "%02d/%02d/%04d" (Rng.int_in rng 1 12) (Rng.int_in rng 1 28)
    (Rng.int_in rng 1999 2009)

let add doc parent label ?text () =
  let n = Doc.fresh_node doc ~label ?text () in
  Node.add_child parent n;
  n

let add_attr doc parent name value =
  ignore (add doc parent ("@" ^ name) ~text:value ())

let gen_item doc parent rng ~id ~category_count =
  let item = add doc parent "item" () in
  add_attr doc item "id" (Printf.sprintf "i%d" id);
  ignore
    (add doc item "name"
       ~text:
         (Printf.sprintf "%s %s" (Rng.pick rng words) (Rng.pick rng goods))
       ());
  ignore (add doc item "location" ~text:(Rng.pick rng cities) ());
  ignore (add doc item "quantity" ~text:(string_of_int (Rng.int_in rng 1 9)) ());
  ignore (add doc item "payment" ~text:"Creditcard" ());
  let desc = add doc item "description" () in
  ignore
    (add doc desc "text"
       ~text:(Printf.sprintf "%s %s %s" (Rng.pick rng words) (Rng.pick rng words)
                (Rng.pick rng goods))
       ());
  ignore
    (add doc item "incategory"
       ~text:(Printf.sprintf "c%d" (Rng.int rng (max 1 category_count)))
       ());
  (* XMark items carry a mailbox of seller/buyer correspondence. *)
  let mailbox = add doc item "mailbox" () in
  if Rng.bool rng then begin
    let mail = add doc mailbox "mail" () in
    ignore
      (add doc mail "from"
         ~text:(Printf.sprintf "%s %s" (Rng.pick rng first_names) (Rng.pick rng last_names))
         ());
    ignore
      (add doc mail "to"
         ~text:(Printf.sprintf "%s %s" (Rng.pick rng first_names) (Rng.pick rng last_names))
         ());
    ignore (add doc mail "date" ~text:(date rng) ());
    ignore
      (add doc mail "text"
         ~text:(Printf.sprintf "is the %s still %s?" (Rng.pick rng goods) (Rng.pick rng words))
         ())
  end

let gen_person doc parent rng ~id =
  let p = add doc parent "person" () in
  add_attr doc p "id" (Printf.sprintf "p%d" id);
  ignore
    (add doc p "name"
       ~text:
         (Printf.sprintf "%s %s" (Rng.pick rng first_names)
            (Rng.pick rng last_names))
       ());
  ignore
    (add doc p "emailaddress"
       ~text:(Printf.sprintf "mailto:user%d@auctions.example" id)
       ());
  ignore
    (add doc p "phone"
       ~text:(Printf.sprintf "+55 (%d) %07d" (Rng.int_in rng 11 99)
                (Rng.int rng 10_000_000))
       ());
  let addr = add doc p "address" () in
  ignore
    (add doc addr "street"
       ~text:(Printf.sprintf "%d %s St" (Rng.int_in rng 1 999) (Rng.pick rng last_names))
       ());
  ignore (add doc addr "city" ~text:(Rng.pick rng cities) ());
  ignore (add doc addr "country" ~text:"Brazil" ());
  ignore (add doc addr "zipcode" ~text:(string_of_int (Rng.int rng 99999)) ());
  ignore
    (add doc p "creditcard"
       ~text:
         (Printf.sprintf "%04d %04d %04d %04d" (Rng.int rng 10000)
            (Rng.int rng 10000) (Rng.int rng 10000) (Rng.int rng 10000))
       ());
  ignore
    (add doc p "homepage"
       ~text:(Printf.sprintf "http://auctions.example/~user%d" id)
       ());
  let profile = add doc p "profile" () in
  ignore (add doc profile "interest" ~text:(Rng.pick rng goods) ());
  ignore (add doc profile "income" ~text:(money rng) ());
  let watches = add doc p "watches" () in
  for _ = 1 to Rng.int rng 3 do
    let w = add doc watches "watch" () in
    add_attr doc w "open_auction" (Printf.sprintf "oa%d" (Rng.int rng 16))
  done

let gen_bidder doc parent rng ~persons =
  let b = add doc parent "bidder" () in
  ignore (add doc b "date" ~text:(date rng) ());
  ignore (add doc b "time" ~text:(Printf.sprintf "%02d:%02d:%02d" (Rng.int rng 24) (Rng.int rng 60) (Rng.int rng 60)) ());
  ignore
    (add doc b "personref"
       ~text:(Printf.sprintf "p%d" (Rng.int rng (max 1 persons)))
       ());
  ignore (add doc b "increase" ~text:(money rng) ())

let gen_open_auction doc parent rng ~id ~persons ~items =
  let oa = add doc parent "open_auction" () in
  add_attr doc oa "id" (Printf.sprintf "oa%d" id);
  ignore (add doc oa "initial" ~text:(money rng) ());
  let n_bidders = Rng.int_in rng 1 3 in
  for _ = 1 to n_bidders do gen_bidder doc oa rng ~persons done;
  ignore (add doc oa "current" ~text:(money rng) ());
  ignore
    (add doc oa "itemref" ~text:(Printf.sprintf "i%d" (Rng.int rng (max 1 items))) ());
  ignore
    (add doc oa "seller" ~text:(Printf.sprintf "p%d" (Rng.int rng (max 1 persons))) ());
  ignore (add doc oa "quantity" ~text:(string_of_int (Rng.int_in rng 1 5)) ());
  ignore (add doc oa "type" ~text:(if Rng.bool rng then "Regular" else "Featured") ());
  let annotation = add doc oa "annotation" () in
  ignore
    (add doc annotation "author"
       ~text:(Printf.sprintf "p%d" (Rng.int rng (max 1 persons)))
       ());
  let adesc = add doc annotation "description" () in
  ignore
    (add doc adesc "text"
       ~text:(Printf.sprintf "%s %s, %s" (Rng.pick rng words) (Rng.pick rng goods)
                (Rng.pick rng words))
       ());
  let interval = add doc oa "interval" () in
  ignore (add doc interval "start" ~text:(date rng) ());
  ignore (add doc interval "end" ~text:(date rng) ())

let gen_closed_auction doc parent rng ~id ~persons ~items =
  let ca = add doc parent "closed_auction" () in
  add_attr doc ca "id" (Printf.sprintf "ca%d" id);
  ignore
    (add doc ca "seller" ~text:(Printf.sprintf "p%d" (Rng.int rng (max 1 persons))) ());
  ignore
    (add doc ca "buyer" ~text:(Printf.sprintf "p%d" (Rng.int rng (max 1 persons))) ());
  ignore
    (add doc ca "itemref" ~text:(Printf.sprintf "i%d" (Rng.int rng (max 1 items))) ());
  ignore (add doc ca "price" ~text:(money rng) ());
  ignore (add doc ca "date" ~text:(date rng) ());
  ignore (add doc ca "quantity" ~text:(string_of_int (Rng.int_in rng 1 5)) ());
  ignore (add doc ca "type" ~text:"Regular" ());
  let annotation = add doc ca "annotation" () in
  ignore
    (add doc annotation "author"
       ~text:(Printf.sprintf "p%d" (Rng.int rng (max 1 persons)))
       ())

let generate ?(name = "xmark") (p : params) =
  let rng = Rng.create p.seed in
  let doc = Doc.create ~name ~root_label:"site" in
  let root = doc.Doc.root in
  let total_items = p.items_per_region * 6 in
  (* regions *)
  let regions_el = add doc root "regions" () in
  let item_id = ref 0 in
  List.iter
    (fun region ->
      let r = add doc regions_el region () in
      for _ = 1 to p.items_per_region do
        gen_item doc r rng ~id:!item_id ~category_count:p.categories;
        incr item_id
      done)
    regions;
  (* categories *)
  let cats = add doc root "categories" () in
  for i = 0 to p.categories - 1 do
    let c = add doc cats "category" () in
    add_attr doc c "id" (Printf.sprintf "c%d" i);
    ignore
      (add doc c "name"
         ~text:(Printf.sprintf "%s %s" (Rng.pick rng words) (Rng.pick rng goods))
         ());
    let cdesc = add doc c "description" () in
    ignore
      (add doc cdesc "text"
         ~text:(Printf.sprintf "everything %s about %s" (Rng.pick rng words)
                  (Rng.pick rng goods))
         ())
  done;
  (* catgraph *)
  let catgraph = add doc root "catgraph" () in
  for _ = 1 to max 1 (p.categories - 1) do
    let e = add doc catgraph "edge" () in
    add_attr doc e "from" (Printf.sprintf "c%d" (Rng.int rng (max 1 p.categories)));
    add_attr doc e "to" (Printf.sprintf "c%d" (Rng.int rng (max 1 p.categories)))
  done;
  (* people *)
  let people = add doc root "people" () in
  for i = 0 to p.persons - 1 do
    gen_person doc people rng ~id:i
  done;
  (* open auctions *)
  let oas = add doc root "open_auctions" () in
  for i = 0 to p.open_auctions - 1 do
    gen_open_auction doc oas rng ~id:i ~persons:p.persons ~items:total_items
  done;
  (* closed auctions *)
  let cas = add doc root "closed_auctions" () in
  for i = 0 to p.closed_auctions - 1 do
    gen_closed_auction doc cas rng ~id:i ~persons:p.persons ~items:total_items
  done;
  doc

let ids_of_label (doc : Doc.t) label =
  Node.fold
    (fun acc n ->
      if n.Node.label = label then
        match Node.attribute n "id" with Some v -> v :: acc | None -> acc
      else acc)
    [] doc.Doc.root
  |> List.rev

let person_ids doc = ids_of_label doc "person"

let item_ids doc = ids_of_label doc "item"

let open_auction_ids doc = ids_of_label doc "open_auction"
