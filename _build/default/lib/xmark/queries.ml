module Rng = Dtx_util.Rng
module Doc = Dtx_xml.Doc
module Op = Dtx_update.Op
module Xparser = Dtx_xpath.Parser

let adapted_queries =
  [ ("Q1-person-by-id", "/site/people/person[@id = \"p0\"]/name");
    ("Q2-first-bidder-increase", "/site/open_auctions/open_auction[1]/bidder[1]/increase");
    ("Q3-all-item-names", "/site/regions/*/item/name");
    ("Q4-closed-prices", "/site/closed_auctions/closed_auction/price");
    ("Q5-category-names", "/site/categories/category/name");
    ("Q6-region-items", "/site/regions/europe/item");
    ("Q7-all-descr", "//item/description");
    ("Q8-person-cities", "/site/people/person/address/city");
    ("Q9-auction-current", "/site/open_auctions/open_auction/current");
    ("Q10-sellers", "//open_auction/seller");
    ("Q11-last-auction", "/site/open_auctions/open_auction[last()]/seller");
    ("Q12-bid-parents", "//open_auction/bidder/..");
    ("Q13-typed-sellers",
     "/site/open_auctions/open_auction[type = \"Featured\" or type = \"Regular\"]/seller");
    ("Q14-bulk-items", "/site/regions/*/item[name and quantity != \"1\"]/name") ]

let pick_id rng ids fallback =
  match ids with [] -> fallback | _ -> Rng.pick rng (Array.of_list ids)

let q rng fmt_choices = Rng.pick rng fmt_choices

let parse_exn s =
  (* Templates are static or built from known-safe ids; a parse failure is a
     programming error, not input. *)
  try Xparser.parse s
  with Xparser.Parse_error (msg, _) ->
    invalid_arg (Printf.sprintf "Queries: bad template %S (%s)" s msg)

let gen_query rng (doc : Doc.t) =
  let persons = Generator.person_ids doc in
  let items = Generator.item_ids doc in
  let auctions = Generator.open_auction_ids doc in
  let choice = Rng.int rng 12 in
  let path_text =
    match choice with
    | 8 ->
      (* sellers of the last listed auction *)
      "/site/open_auctions/open_auction[last()]/seller"
    | 9 ->
      (* items that have a bid trail: navigate down then back up *)
      Printf.sprintf "//open_auction[@id = \"%s\"]/bidder/.."
        (pick_id rng auctions "oa0")
    | 10 ->
      (* disjunctive predicate over auction types *)
      "/site/open_auctions/open_auction[type = \"Featured\" or type = \"Regular\"]/seller"
    | 11 ->
      (* conjunction with inequality: multi-quantity items *)
      "/site/regions/*/item[name and quantity != \"1\"]/name"
    | 0 ->
      Printf.sprintf "/site/people/person[@id = \"%s\"]/name"
        (pick_id rng persons "p0")
    | 1 ->
      Printf.sprintf "//item[@id = \"%s\"]" (pick_id rng items "i0")
    | 2 -> "/site/regions/*/item/name"
    | 3 ->
      Printf.sprintf "/site/open_auctions/open_auction[@id = \"%s\"]/current"
        (pick_id rng auctions "oa0")
    | 4 -> "/site/closed_auctions/closed_auction/price"
    | 5 ->
      Printf.sprintf "/site/regions/%s/item"
        (q rng (Array.of_list Generator.regions))
    | 6 -> "/site/people/person/address/city"
    | _ -> "/site/categories/category/name"
  in
  Op.Query (parse_exn path_text)

(* Region elements actually present in this fragment (fragmentation
   distributes whole regions, so a fragment may lack some). *)
let present_regions (doc : Doc.t) =
  Dtx_xml.Node.fold
    (fun acc n ->
      if
        List.mem n.Dtx_xml.Node.label Generator.regions
        && (match n.Dtx_xml.Node.parent with
            | Some p -> p.Dtx_xml.Node.label = "regions"
            | None -> false)
      then n.Dtx_xml.Node.label :: acc
      else acc)
    [] doc.Doc.root
  |> List.rev

let gen_update rng ~fresh (doc : Doc.t) =
  let persons = Generator.person_ids doc in
  let items = Generator.item_ids doc in
  let auctions = Generator.open_auction_ids doc in
  let regions = present_regions doc in
  (* Each generator is offered only when the fragment holds the data it
     needs, so generated transactions fail only through real concurrency
     (an entity a concurrent transaction removed), not by construction. *)
  let insert_item () =
    let id = fresh () in
    Op.Insert
      { target =
          parse_exn (Printf.sprintf "/site/regions/%s" (Rng.pick_list rng regions));
        pos = Op.Into;
        fragment =
          Printf.sprintf
            "<item id=\"ni%d\"><name>new item %d</name><quantity>1</quantity></item>"
            id id }
  in
  let insert_person () =
    let id = fresh () in
    Op.Insert
      { target = parse_exn "/site/people";
        pos = Op.Into;
        fragment =
          Printf.sprintf
            "<person id=\"np%d\"><name>New Person %d</name><emailaddress>mailto:np%d@auctions.example</emailaddress></person>"
            id id id }
  in
  let insert_bid () =
    Op.Insert
      { target =
          parse_exn
            (Printf.sprintf "/site/open_auctions/open_auction[@id = \"%s\"]"
               (pick_id rng auctions "oa0"));
        pos = Op.Into;
        fragment =
          Printf.sprintf
            "<bidder><date>01/07/2009</date><personref>%s</personref><increase>%d.00</increase></bidder>"
            (pick_id rng persons "p0") (1 + Rng.int rng 50) }
  in
  let change_price () =
    Op.Change
      { target =
          parse_exn
            (Printf.sprintf "/site/open_auctions/open_auction[@id = \"%s\"]/current"
               (pick_id rng auctions "oa0"));
        new_text = Printf.sprintf "%d.%02d" (1 + Rng.int rng 400) (Rng.int rng 100) }
  in
  let change_quantity () =
    Op.Change
      { target =
          parse_exn
            (Printf.sprintf "//item[@id = \"%s\"]/quantity" (pick_id rng items "i0"));
        new_text = string_of_int (1 + Rng.int rng 9) }
  in
  let remove_item () =
    Op.Remove
      (parse_exn (Printf.sprintf "//item[@id = \"%s\"]" (pick_id rng items "i0")))
  in
  let move_item () =
    Op.Transpose
      { source =
          parse_exn (Printf.sprintf "//item[@id = \"%s\"]" (pick_id rng items "i0"));
        dest =
          parse_exn (Printf.sprintf "/site/regions/%s" (Rng.pick_list rng regions)) }
  in
  (* Weights follow the paper's scenario bias towards insertions. *)
  let feasible =
    (if regions <> [] then [ insert_item; insert_item ] else [])
    @ [ insert_person; insert_person ]
    @ (if auctions <> [] then [ insert_bid; change_price; change_price ] else [])
    @ (if items <> [] then [ change_quantity; remove_item ] else [])
    @ if items <> [] && regions <> [] then [ move_item ] else []
  in
  (Rng.pick_list rng feasible) ()
