(* Differential tests for the sharded lock table: the pre-sharding table —
   one entry map, per-entry mask, same all-or-nothing two-pass algorithm —
   is reproduced verbatim below (minus tracing/interning, keyed directly by
   the packed resource int) and driven in lockstep with the real sharded
   [Table] on random request sequences. Accept/block decisions, blocker
   lists, freed-resource sets and the deadlock decisions derived from them
   must never differ. *)

module Mode = Dtx_locks.Mode
module Table = Dtx_locks.Table
module Wfg = Dtx_locks.Wfg

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Verbatim pre-PR unsharded table (oracle) --------------------------- *)

module Unsharded = struct
  (* Keyed by the abstract resource (still an int underneath, so the
     polymorphic hash is the int hash) — the grant/conflict algorithm is the
     pre-PR code unchanged. *)
  module Itbl = Hashtbl

  type holder = { txn : int; mode : Mode.t; mutable count : int }
  type entry = { mutable holders : holder list; mutable mask : int }

  type t = {
    table : (Table.resource, entry) Itbl.t;
    by_txn : (int, (Table.resource, unit) Itbl.t) Itbl.t;
    mutable grants : int;
  }

  let create () = { table = Itbl.create 256; by_txn = Itbl.create 64; grants = 0 }

  let entry t r =
    match Itbl.find_opt t.table r with
    | Some e -> e
    | None ->
      let e = { holders = []; mask = 0 } in
      Itbl.replace t.table r e;
      e

  let recompute_mask e =
    e.mask <- List.fold_left (fun m h -> m lor Mode.bit h.mode) 0 e.holders

  let txn_set t txn =
    match Itbl.find_opt t.by_txn txn with
    | Some s -> s
    | None ->
      let s = Itbl.create 16 in
      Itbl.replace t.by_txn txn s;
      s

  let rec find_holder holders txn (mode : Mode.t) =
    match holders with
    | [] -> None
    | h :: rest ->
      if h.txn = txn && h.mode = mode then Some h else find_holder rest txn mode

  let acquire_all t ~txn requests =
    let conflicting = ref [] in
    List.iter
      (fun (r, mode) ->
        match Itbl.find_opt t.table r with
        | None -> ()
        | Some e ->
          if not (Mode.mask_compatible mode ~held_mask:e.mask) then
            List.iter
              (fun h ->
                if h.txn <> txn && not (Mode.compatible h.mode mode) then
                  conflicting := h.txn :: !conflicting)
              e.holders)
      requests;
    match List.sort_uniq compare !conflicting with
    | [] ->
      let set = txn_set t txn in
      List.iter
        (fun (r, mode) ->
          let e = entry t r in
          (match find_holder e.holders txn mode with
           | Some h -> h.count <- h.count + 1
           | None ->
             e.holders <- { txn; mode; count = 1 } :: e.holders;
             e.mask <- e.mask lor Mode.bit mode);
          t.grants <- t.grants + 1;
          Itbl.replace set r ())
        requests;
      Ok ()
    | blockers -> Error blockers

  let release_txn t ~txn =
    match Itbl.find_opt t.by_txn txn with
    | None -> []
    | Some set ->
      let freed = ref [] in
      Itbl.iter
        (fun r () ->
          match Itbl.find_opt t.table r with
          | None -> ()
          | Some e ->
            let mine, others =
              List.partition (fun h -> h.txn = txn) e.holders
            in
            if mine <> [] then begin
              List.iter (fun h -> t.grants <- t.grants - h.count) mine;
              freed := r :: !freed;
              if others = [] then Itbl.remove t.table r
              else begin
                e.holders <- others;
                recompute_mask e
              end
            end)
        set;
      Itbl.remove t.by_txn txn;
      !freed

  let lock_count t = t.grants
end

(* --- Generators ---------------------------------------------------------- *)

(* A command script over a handful of transactions, documents and nodes;
   dense enough that conflicts, refcount bumps and wait-cycles all occur. *)
type cmd =
  | Acquire of int * (int * int * Mode.t) list  (* txn, (doc, node, mode) *)
  | Release of int

let mode_gen =
  QCheck.Gen.oneofl Mode.all

let cmd_gen =
  QCheck.Gen.(
    let req = triple (int_range 0 2) (int_range 0 20) mode_gen in
    frequency
      [ (4, map2 (fun t rs -> Acquire (t, rs)) (int_range 0 5)
           (list_size (1 -- 5) req));
        (1, map (fun t -> Release t) (int_range 0 5)) ])

let script_gen = QCheck.Gen.(list_size (1 -- 40) cmd_gen)

let script_arb =
  QCheck.make script_gen
    ~print:(fun cmds ->
      String.concat "; "
        (List.map
           (function
             | Acquire (t, rs) ->
               Printf.sprintf "acq t%d [%s]" t
                 (String.concat ","
                    (List.map
                       (fun (d, n, m) ->
                         Printf.sprintf "d%d#%d:%s" d n (Mode.to_string m))
                       rs))
             | Release t -> Printf.sprintf "rel t%d" t)
           cmds))

let docs = [| "shard-doc-a"; "shard-doc-b"; "shard-doc-c" |]

let sorted l = List.sort compare l

(* --- Properties ---------------------------------------------------------- *)

(* Same accept/block decision, same blocker list, same freed set, same grant
   count — and, fed into a wait-for graph, the same deadlock decision. *)
let prop_sharded_matches_unsharded =
  QCheck.Test.make ~name:"sharded table = pre-PR unsharded table" ~count:500
    script_arb (fun cmds ->
      let real = Table.create () and oracle = Unsharded.create () in
      let wfg = Wfg.create () in
      List.for_all
        (fun cmd ->
          match cmd with
          | Acquire (txn, rs) ->
            let reqs =
              List.map (fun (d, n, m) -> (Table.resource docs.(d) n, m)) rs
            in
            let reqs = Table.dedup_requests reqs in
            let a = Table.acquire_all real ~txn reqs in
            let b = Unsharded.acquire_all oracle ~txn reqs in
            let agree =
              match (a, b) with
              | Ok (), Ok () -> true
              | Error x, Error y -> x = y
              | _ -> false
            in
            (* Blocked requests become wait-for edges in both worlds; the
               deadlock decision is a function of those edges, so checking
               the graph's verdict after each step pins it too. *)
            (match a with
             | Error blockers ->
               Wfg.add_wait wfg ~waiter:txn ~holders:blockers
             | Ok () -> Wfg.clear_waits_of wfg txn);
            agree
            && Wfg.find_cycle wfg = Wfg.find_cycle_exhaustive wfg
            && Table.lock_count real = Unsharded.lock_count oracle
          | Release txn ->
            let a = Table.release_txn real ~txn in
            let b = Unsharded.release_txn oracle ~txn in
            Wfg.remove_txn wfg txn;
            sorted a = sorted b
            && Table.lock_count real = Unsharded.lock_count oracle)
        cmds)

(* --- Unit tests ----------------------------------------------------------- *)

let test_shard_routing_stable () =
  (* Same resource, same shard; sibling nodes share a 16-node window. *)
  let r1 = Table.resource "route-doc" 100 in
  let r2 = Table.resource "route-doc" 100 in
  check "same resource same shard" (Table.shard_of r1) (Table.shard_of r2);
  let base = Table.shard_of (Table.resource "route-doc" 160) in
  for n = 160 to 175 do
    check "16-node window shares shard" base
      (Table.shard_of (Table.resource "route-doc" n))
  done;
  checkb "shard in range" true
    (List.for_all
       (fun n ->
         let s = Table.shard_of (Table.resource "route-doc" n) in
         s >= 0 && s < Table.shard_count)
       (List.init 64 (fun i -> i * 37)))

let test_shard_count_power_of_two () =
  checkb "power of two" true
    (Table.shard_count >= 1
    && Table.shard_count land (Table.shard_count - 1) = 0)

let test_many_documents_intern () =
  (* Regression: 7 doc bits capped the process at 128 interned document
     names, so 1000-site scale runs (one fragment doc per site) blew up in
     [Intern]. The widened 11-bit field must take >128 docs in stride. *)
  for i = 0 to 299 do
    let doc = Printf.sprintf "intern-cap-%03d" i in
    let r = Table.resource doc (i * 7 land 0xffff) in
    Alcotest.(check string) "doc roundtrip" doc (Table.resource_doc r)
  done

let test_cross_shard_acquire_release () =
  (* One batch spanning many shards must still be all-or-nothing and
     releasable in one call. *)
  let t = Table.create () in
  let reqs =
    List.init 32 (fun i -> (Table.resource "span-doc" (i * 16), Mode.X))
  in
  checkb "grant across shards" true (Table.acquire_all t ~txn:1 reqs = Ok ());
  check "all grants recorded" 32 (Table.lock_count t);
  (match Table.acquire_all t ~txn:2 [ List.nth reqs 17 ] with
  | Error [ 1 ] -> ()
  | _ -> Alcotest.fail "expected conflict with t1");
  check "freed all" 32 (List.length (Table.release_txn t ~txn:1));
  check "empty" 0 (Table.lock_count t)

let () =
  Alcotest.run "shard"
    [ ( "routing",
        [ Alcotest.test_case "stable routing" `Quick test_shard_routing_stable;
          Alcotest.test_case "power of two" `Quick test_shard_count_power_of_two;
          Alcotest.test_case ">128 documents" `Quick test_many_documents_intern;
          Alcotest.test_case "cross-shard batch" `Quick
            test_cross_shard_acquire_release ] );
      ( "differential",
        [ QCheck_alcotest.to_alcotest prop_sharded_matches_unsharded ] ) ]
