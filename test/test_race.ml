(* Tests for the Dtx_race dynamic detector and the Dpool shutdown path.

   The detector's conflict rule is group-based — two same-epoch accesses
   conflict iff they come from different site groups and at least one is a
   write — so the core semantics can be driven single-domain through
   [enter_group]/[epoch_begin] directly, with real multi-domain coverage
   layered on top via the simulator's parallel tick. *)

module Race = Dtx_race.Race
module Dpool = Dtx_util.Dpool
module Intern = Dtx_util.Intern
module Sim = Dtx_sim.Sim

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Fresh detector state, detector on. Each test that flips [set_enabled]
   restores it so suites stay independent. *)
let with_detector f =
  Race.set_enabled true;
  Race.reset ();
  Fun.protect ~finally:(fun () ->
      Race.reset ();
      Race.set_enabled false)
    f

(* Run [f] in group [site] within the current epoch. *)
let as_site site f =
  Race.enter_group ~site;
  Fun.protect ~finally:Race.leave_group f

let in_epoch f =
  Race.epoch_begin ();
  Fun.protect ~finally:Race.epoch_end f

(* --- core semantics ------------------------------------------------------- *)

let test_write_write_conflict () =
  with_detector @@ fun () ->
  let c = Race.cell "t.ww" in
  in_epoch (fun () ->
      as_site 0 (fun () -> Race.write ~ctx:"a" c);
      as_site 1 (fun () -> Race.write ~ctx:"b" c));
  check "one finding" 1 (Race.findings_count ());
  match Race.findings () with
  | [ f ] ->
      Alcotest.(check string) "cell label" "t.ww" f.Race.f_cell;
      check "site a" 0 f.Race.f_site_a;
      check "site b" 1 f.Race.f_site_b
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_read_write_conflict () =
  with_detector @@ fun () ->
  let c = Race.cell "t.rw" in
  in_epoch (fun () ->
      as_site 0 (fun () -> Race.read c);
      as_site 1 (fun () -> Race.write c));
  check "read then write flagged" 1 (Race.findings_count ());
  Race.reset ();
  let c = Race.cell "t.wr" in
  in_epoch (fun () ->
      as_site 0 (fun () -> Race.write c);
      as_site 1 (fun () -> Race.read c));
  check "write then read flagged" 1 (Race.findings_count ())

let test_read_read_clean () =
  with_detector @@ fun () ->
  let c = Race.cell "t.rr" in
  in_epoch (fun () ->
      as_site 0 (fun () -> Race.read c);
      as_site 1 (fun () -> Race.read c);
      as_site 2 (fun () -> Race.read c));
  check "concurrent reads are clean" 0 (Race.findings_count ())

let test_same_site_clean () =
  with_detector @@ fun () ->
  let c = Race.cell "t.same" in
  in_epoch (fun () ->
      as_site 3 (fun () ->
          Race.write c;
          Race.read c;
          Race.write c));
  check "one group may do anything" 0 (Race.findings_count ())

let test_epoch_separates () =
  with_detector @@ fun () ->
  let c = Race.cell "t.epoch" in
  in_epoch (fun () -> as_site 0 (fun () -> Race.write c));
  in_epoch (fun () -> as_site 1 (fun () -> Race.write c));
  check "tick barrier orders the writes" 0 (Race.findings_count ())

let test_outside_epoch_ignored () =
  with_detector @@ fun () ->
  let c = Race.cell "t.outside" in
  (* No epoch open: main-domain accesses between ticks never count. *)
  as_site 0 (fun () -> Race.write c);
  as_site 1 (fun () -> Race.write c);
  check "no epoch, no findings" 0 (Race.findings_count ());
  (* In-epoch but no group entered: replay on the main domain is serial. *)
  in_epoch (fun () ->
      Race.write c;
      Race.write c);
  check "ungrouped accesses never count" 0 (Race.findings_count ())

let test_disabled_is_noop () =
  Race.set_enabled false;
  Race.reset ();
  let c = Race.cell "t.off" in
  Race.epoch_begin ();
  Race.enter_group ~site:0;
  Race.write c;
  Race.leave_group ();
  Race.enter_group ~site:1;
  Race.write c;
  Race.leave_group ();
  Race.epoch_end ();
  check "disabled detector records nothing" 0 (Race.findings_count ())

(* --- property: flagged iff the reference model says so -------------------- *)

(* Reference model for one epoch over one cell: a conflict exists iff two
   accesses come from different sites and at least one is a write. *)
let model_has_race accesses =
  List.exists
    (fun (s1, k1) ->
      List.exists
        (fun (s2, k2) ->
          s1 <> s2 && (k1 = Race.Write || k2 = Race.Write))
        accesses)
    accesses

let access_gen =
  QCheck2.Gen.(
    list_size (1 -- 12)
      (pair (0 -- 3) (map (fun b -> if b then Race.Write else Race.Read) bool)))

let prop_flag_iff_model =
  QCheck2.Test.make ~count:500 ~name:"flagged iff model finds a race"
    access_gen (fun accesses ->
      Race.set_enabled true;
      Race.reset ();
      let c = Race.cell "t.prop" in
      Race.epoch_begin ();
      List.iter
        (fun (site, kind) ->
          Race.enter_group ~site;
          (match kind with
          | Race.Write -> Race.write c
          | Race.Read -> Race.read c);
          Race.leave_group ())
        accesses;
      Race.epoch_end ();
      let flagged = Race.findings_count () > 0 in
      Race.reset ();
      Race.set_enabled false;
      flagged = model_has_race accesses)

(* --- Dpool shutdown ------------------------------------------------------- *)

let pool_sum pool ~jobs ~workers =
  let acc = Array.make jobs 0 in
  Dpool.run pool ~workers
    (Array.init jobs (fun i () -> acc.(i) <- i + 1));
  Array.fold_left ( + ) 0 acc

let test_dpool_shutdown () =
  let pool = Dpool.create () in
  check "batch before shutdown" 10 (pool_sum pool ~jobs:4 ~workers:3);
  Dpool.shutdown pool;
  Dpool.shutdown pool;
  (* idempotent *)
  check "batch after shutdown respawns" 21 (pool_sum pool ~jobs:6 ~workers:3);
  Dpool.shutdown pool;
  (* A pool that never ran anything shuts down trivially. *)
  let fresh = Dpool.create () in
  Dpool.shutdown fresh

let test_sim_shutdown_pool () =
  (* The CLI exit-path hook: safe to call repeatedly, with or without a
     parallel tick having run. *)
  Sim.shutdown_pool ();
  Unix.putenv "DTX_DOMAINS" "4";
  let sim = Sim.create () in
  let hits = Array.make 8 0 in
  for site = 0 to 7 do
    ignore
      (Sim.schedule sim ~site ~delay:1.0 (fun () ->
           let go () = hits.(site) <- hits.(site) + 1 in
           if not (Sim.defer go) then go ()))
  done;
  Sim.run sim;
  check "all sites ran" 8 (Array.fold_left ( + ) 0 hits);
  Sim.shutdown_pool ();
  Sim.shutdown_pool ();
  Unix.putenv "DTX_DOMAINS" "1"

(* --- the real parallel tick ----------------------------------------------- *)

(* A clean 4-domain tick: every shared effect deferred, zero findings. *)
let test_parallel_tick_clean () =
  with_detector @@ fun () ->
  Unix.putenv "DTX_DOMAINS" "4";
  let sim = Sim.create () in
  let shared = ref 0 in
  let cell = Race.cell "t.tick.clean" in
  for site = 0 to 7 do
    ignore
      (Sim.schedule sim ~site ~delay:1.0 (fun () ->
           let go () =
             Race.write cell;
             incr shared
           in
           if not (Sim.defer go) then go ()))
  done;
  Sim.run sim;
  Unix.putenv "DTX_DOMAINS" "1";
  check "all effects replayed" 8 !shared;
  check "deferred effects are race-free" 0 (Race.findings_count ())

(* The same tick with the defer discipline broken: the shared cell is hit
   straight from the worker domains and must be flagged, whatever order
   the pool ran the groups in. *)
let test_parallel_tick_undeferred () =
  with_detector @@ fun () ->
  Unix.putenv "DTX_DOMAINS" "4";
  let sim = Sim.create () in
  let cell = Race.cell "t.tick.bad" in
  for site = 0 to 7 do
    ignore
      (Sim.schedule sim ~site ~delay:1.0 (fun () -> Race.write cell))
  done;
  Sim.run sim;
  Unix.putenv "DTX_DOMAINS" "1";
  checkb "un-deferred writes are flagged" true (Race.findings_count () > 0)

(* Interning across a parallel tick (the satellite-2 audit): warmed-up
   symbols may be re-interned from worker domains — the hit path is a
   read — and every site must agree on the ids. *)
let test_intern_parallel_hit_path () =
  with_detector @@ fun () ->
  Unix.putenv "DTX_DOMAINS" "4";
  let syms = Intern.create "test-parallel" in
  (* Warm up on the main domain, as Site.create does via preintern_doc. *)
  let expected = Array.init 16 (fun i -> Intern.intern syms (string_of_int i)) in
  let sim = Sim.create () in
  let seen = Array.make_matrix 8 16 (-1) in
  for site = 0 to 7 do
    ignore
      (Sim.schedule sim ~site ~delay:1.0 (fun () ->
           for i = 0 to 15 do
             seen.(site).(i) <- Intern.intern syms (string_of_int i)
           done))
  done;
  Sim.run sim;
  Unix.putenv "DTX_DOMAINS" "1";
  for site = 0 to 7 do
    for i = 0 to 15 do
      check (Printf.sprintf "site %d symbol %d" site i) expected.(i)
        seen.(site).(i)
    done
  done;
  check "no fresh ids appeared" 16 (Intern.count syms)

let () =
  Alcotest.run "race"
    [
      ( "semantics",
        [
          Alcotest.test_case "write-write conflict" `Quick
            test_write_write_conflict;
          Alcotest.test_case "read-write conflict" `Quick
            test_read_write_conflict;
          Alcotest.test_case "read-read clean" `Quick test_read_read_clean;
          Alcotest.test_case "same site clean" `Quick test_same_site_clean;
          Alcotest.test_case "epoch separates" `Quick test_epoch_separates;
          Alcotest.test_case "outside epoch ignored" `Quick
            test_outside_epoch_ignored;
          Alcotest.test_case "disabled is no-op" `Quick test_disabled_is_noop;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_flag_iff_model ] );
      ( "dpool",
        [
          Alcotest.test_case "shutdown" `Quick test_dpool_shutdown;
          Alcotest.test_case "sim shutdown hook" `Quick test_sim_shutdown_pool;
        ] );
      ( "parallel-tick",
        [
          Alcotest.test_case "clean deferred tick" `Quick
            test_parallel_tick_clean;
          Alcotest.test_case "un-deferred tick flagged" `Quick
            test_parallel_tick_undeferred;
          Alcotest.test_case "intern hit path across tick" `Quick
            test_intern_parallel_hit_path;
        ] );
    ]
