(* The checker, checked.

   Directed cases feed scripted event sequences through [Checker.emit] and
   assert that each seeded fault — a flipped compatibility cell, a skipped
   release, a Commit ahead of its prepare round — is caught, and that the
   faithful version of the same schedule is not. QCheck generalizes the
   skipped-release case; the workload properties run real simulations under
   the analyzer across many seeds. *)

module Mode = Dtx_locks.Mode
module Table = Dtx_locks.Table
module Msg = Dtx_net.Msg
module Net = Dtx_net.Net
module Coordinator = Dtx.Coordinator
module Participant = Dtx.Participant
module Cluster = Dtx.Cluster
module History = Dtx.History
module Checker = Dtx_check.Checker
module Lattice = Dtx_check.Lattice
module Workload = Dtx_workload.Workload

let r name node = Table.resource name node

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let invariants vs =
  List.sort_uniq compare (List.map (fun v -> v.Checker.v_invariant) vs)

let check_inv what expected vs =
  Alcotest.(check (list string)) what expected (invariants vs)

(* --- mode lattice ---------------------------------------------------- *)

let test_lattice_ok () =
  match Lattice.check () with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "live matrix rejected: %s" (List.hd msgs)

let test_lattice_flip_caught () =
  let compat a b =
    match (a, b) with
    | (Mode.ST, Mode.IX) | (Mode.IX, Mode.ST) -> true
    | _ -> Mode.compatible a b
  in
  match
    Lattice.check_with ~compat ~conflict_mask:Mode.conflict_mask
      ~intention_for:Mode.intention_for ()
  with
  | Ok () -> Alcotest.fail "flipped compat cell not caught"
  | Error msgs ->
    Alcotest.(check bool)
      "names the disagreeing pair" true
      (List.exists (fun m -> contains m "ST" && contains m "IX") msgs)

(* --- scripted lock schedules ----------------------------------------- *)

(* One transaction's full life at one site, as the checker sees it. *)
let faithful_schedule c ~txn =
  let res = r "doc" txn in
  Checker.emit c ~time:1.0
    (Checker.Lock { site = 0; ev = Table.Acquired { txn; resource = res; mode = Mode.IS } });
  Checker.emit c ~time:2.0
    (Checker.Lock
       { site = 0;
         ev =
           Table.Released
             { txn; resource = res; mode = Mode.IS; count = 1;
               kind = Table.End_of_txn }
       });
  Checker.emit c ~time:3.0
    (Checker.Part { site = 0; ev = Participant.Finished { txn; committed = true } })

let test_faithful_schedule_clean () =
  let c = Checker.create () in
  faithful_schedule c ~txn:1;
  faithful_schedule c ~txn:2;
  check_inv "no violations" [] (Checker.finish c)

let test_skipped_release_caught () =
  let c = Checker.create () in
  faithful_schedule c ~txn:1;
  (* txn 2 finishes without its release event. *)
  let res = r "doc" 2 in
  Checker.emit c ~time:4.0
    (Checker.Lock
       { site = 0; ev = Table.Acquired { txn = 2; resource = res; mode = Mode.IS } });
  Checker.emit c ~time:5.0
    (Checker.Part { site = 0; ev = Participant.Finished { txn = 2; committed = true } });
  let vs = Checker.finish c in
  check_inv "lock-balance flagged" [ "lock-balance" ] vs;
  Alcotest.(check (option int))
    "names the transaction" (Some 2)
    (List.hd vs).Checker.v_txn

let test_acquire_after_release_caught () =
  let c = Checker.create () in
  let res = r "doc" 9 in
  Checker.emit c ~time:1.0
    (Checker.Lock
       { site = 0; ev = Table.Acquired { txn = 1; resource = res; mode = Mode.IS } });
  Checker.emit c ~time:2.0
    (Checker.Lock
       { site = 0;
         ev =
           Table.Released
             { txn = 1; resource = res; mode = Mode.IS; count = 1;
               kind = Table.End_of_txn }
       });
  Checker.emit c ~time:3.0
    (Checker.Lock
       { site = 0; ev = Table.Acquired { txn = 1; resource = res; mode = Mode.IS } });
  Alcotest.(check bool)
    "s2pl-discipline flagged" true
    (List.mem "s2pl-discipline" (invariants (Checker.violations c)))

let test_incompatible_grant_caught () =
  let c = Checker.create () in
  let res = r "doc" 3 in
  Checker.emit c ~time:1.0
    (Checker.Lock
       { site = 0; ev = Table.Acquired { txn = 1; resource = res; mode = Mode.ST } });
  Checker.emit c ~time:2.0
    (Checker.Lock
       { site = 0; ev = Table.Acquired { txn = 2; resource = res; mode = Mode.IX } });
  check_inv "lock-compat flagged" [ "lock-compat" ] (Checker.violations c)

(* --- 2PC ordering ----------------------------------------------------- *)

let prepare_round c ~txn ~site =
  Checker.emit c ~time:1.0
    (Checker.Net
       { src = 0; dst = site; dir = Net.Send; msg = Msg.Prepare { txn } });
  Checker.emit c ~time:2.0
    (Checker.Part { site; ev = Participant.Prepared { txn } });
  Checker.emit c ~time:3.0
    (Checker.Net
       { src = site; dst = 0; dir = Net.Deliver; msg = Msg.Vote { txn; ok = true } })

let test_two_phase_faithful_clean () =
  let c = Checker.create () in
  prepare_round c ~txn:1 ~site:1;
  prepare_round c ~txn:1 ~site:2;
  Checker.emit c ~time:4.0
    (Checker.Net { src = 0; dst = 1; dir = Net.Send; msg = Msg.Commit { txn = 1 } });
  check_inv "no violations" [] (Checker.finish c)

let test_commit_before_prepared_caught () =
  let c = Checker.create () in
  prepare_round c ~txn:1 ~site:1;
  (* Site 2 was asked to prepare but its vote never arrived — the Commit is
     effectively reordered ahead of Prepared. *)
  Checker.emit c ~time:4.0
    (Checker.Net
       { src = 0; dst = 2; dir = Net.Send; msg = Msg.Prepare { txn = 1 } });
  Checker.emit c ~time:5.0
    (Checker.Net { src = 0; dst = 1; dir = Net.Send; msg = Msg.Commit { txn = 1 } });
  let vs = Checker.violations c in
  check_inv "2pc-order flagged" [ "2pc-order" ] vs;
  Alcotest.(check (option int)) "names the site" (Some 2) (List.hd vs).Checker.v_site

let test_vote_without_prepared_caught () =
  let c = Checker.create () in
  Checker.emit c ~time:1.0
    (Checker.Net
       { src = 0; dst = 1; dir = Net.Send; msg = Msg.Prepare { txn = 1 } });
  (* yes vote, but no Prepared WAL record at site 1 *)
  Checker.emit c ~time:2.0
    (Checker.Net
       { src = 1; dst = 0; dir = Net.Deliver; msg = Msg.Vote { txn = 1; ok = true } });
  check_inv "2pc-prepare flagged" [ "2pc-prepare" ] (Checker.violations c)

(* --- coordinator FSM -------------------------------------------------- *)

let phase c ~txn from_ to_ =
  Checker.emit c ~time:1.0 (Checker.Phase { txn; from_; to_ })

let test_fsm_legal_path_clean () =
  let c = Checker.create () in
  phase c ~txn:1 None Coordinator.Executing;
  phase c ~txn:1 (Some Coordinator.Executing) Coordinator.Awaiting_replies;
  phase c ~txn:1 (Some Coordinator.Awaiting_replies) Coordinator.Waiting;
  phase c ~txn:1 (Some Coordinator.Waiting) Coordinator.Executing;
  phase c ~txn:1 (Some Coordinator.Executing) Coordinator.Preparing;
  phase c ~txn:1 (Some Coordinator.Preparing) Coordinator.Ending;
  phase c ~txn:1 (Some Coordinator.Ending) Coordinator.Done;
  check_inv "no violations" [] (Checker.violations c)

let test_fsm_illegal_transition_caught () =
  let c = Checker.create () in
  phase c ~txn:1 None Coordinator.Executing;
  phase c ~txn:1 (Some Coordinator.Executing) Coordinator.Done;
  check_inv "fsm-conformance flagged" [ "fsm-conformance" ]
    (Checker.violations c)

let test_op_ship_while_ending_caught () =
  let c = Checker.create () in
  phase c ~txn:1 None Coordinator.Executing;
  phase c ~txn:1 (Some Coordinator.Executing) Coordinator.Ending;
  Checker.emit c ~time:2.0
    (Checker.Net
       { src = 0; dst = 1; dir = Net.Send;
         msg = Msg.Op_ship { txn = 1; attempt = 1; seq = 1; ops = [] }
       });
  check_inv "fsm-conformance flagged" [ "fsm-conformance" ]
    (Checker.violations c)

(* --- deadlock victims -------------------------------------------------- *)

let victim_round c ~edges ~victim =
  Checker.emit c ~time:1.0
    (Checker.Net
       { src = 0; dst = 1; dir = Net.Send; msg = Msg.Wfg_request });
  Checker.emit c ~time:2.0
    (Checker.Net { src = 1; dst = 0; dir = Net.Deliver; msg = Msg.Wfg_reply { edges } });
  Checker.emit c ~time:3.0
    (Checker.Net
       { src = 0; dst = 1; dir = Net.Send; msg = Msg.Victim { txn = victim } })

let test_victim_newest_clean () =
  let c = Checker.create () in
  victim_round c ~edges:[ (1, 2); (2, 1) ] ~victim:2;
  check_inv "no violations" [] (Checker.violations c)

let test_victim_not_newest_caught () =
  let c = Checker.create () in
  victim_round c ~edges:[ (1, 2); (2, 1) ] ~victim:1;
  check_inv "deadlock-victim flagged" [ "deadlock-victim" ]
    (Checker.violations c)

let test_victim_without_cycle_caught () =
  let c = Checker.create () in
  victim_round c ~edges:[ (1, 2) ] ~victim:2;
  check_inv "deadlock-victim flagged" [ "deadlock-victim" ]
    (Checker.violations c)

(* --- QCheck: random schedules ------------------------------------------ *)

(* A schedule is a list of transactions, each holding a few resources in
   mutually compatible modes, released in full at the end. Faithfully
   replayed it must be clean; with one end-of-transaction release dropped it
   must be flagged. *)
let gen_schedule =
  QCheck.Gen.(
    let txn_count = 1 -- 6 in
    let res_count = 1 -- 5 in
    txn_count >>= fun n ->
    let gen_txn id =
      res_count >>= fun k ->
      list_repeat k (1 -- 40) >>= fun nodes ->
      return (id, List.sort_uniq compare nodes)
    in
    let rec build i acc =
      if i > n then return (List.rev acc)
      else gen_txn i >>= fun t -> build (i + 1) (t :: acc)
    in
    build 1 [])

let replay ~drop schedule =
  let c = Checker.create () in
  let time = ref 0.0 in
  let release_index = ref 0 in
  let tick () = time := !time +. 1.0; !time in
  List.iter
    (fun (txn, nodes) ->
      List.iter
        (fun node ->
          Checker.emit c ~time:(tick ())
            (Checker.Lock
               { site = 0;
                 ev = Table.Acquired { txn; resource = r "doc" node; mode = Mode.IS }
               }))
        nodes;
      List.iter
        (fun node ->
          let i = !release_index in
          incr release_index;
          if Some i <> drop then
            Checker.emit c ~time:(tick ())
              (Checker.Lock
                 { site = 0;
                   ev =
                     Table.Released
                       { txn; resource = r "doc" node; mode = Mode.IS;
                         count = 1; kind = Table.End_of_txn }
                   }))
        nodes;
      Checker.emit c ~time:(tick ())
        (Checker.Part { site = 0; ev = Participant.Finished { txn; committed = true } }))
    schedule;
  Checker.finish c

let prop_faithful_replay_clean =
  QCheck.Test.make ~name:"faithful random schedules pass" ~count:100
    (QCheck.make gen_schedule)
    (fun schedule -> replay ~drop:None schedule = [])

let prop_dropped_release_flagged =
  QCheck.Test.make ~name:"any dropped release is flagged" ~count:100
    QCheck.(pair (QCheck.make gen_schedule) small_nat)
    (fun (schedule, pick) ->
      let total =
        List.fold_left (fun acc (_, nodes) -> acc + List.length nodes) 0 schedule
      in
      QCheck.assume (total > 0);
      let vs = replay ~drop:(Some (pick mod total)) schedule in
      List.exists (fun v -> v.Checker.v_invariant = "lock-balance") vs)

(* --- real workloads across seeds ---------------------------------------- *)

let tiny_params ~seed ~protocol ~policy =
  { Workload.default_params with
    seed; protocol; n_sites = 3; n_clients = 4; txns_per_client = 2;
    ops_per_txn = 3; update_txn_pct = 50; base_size_mb = 1.0;
    deadlock_policy = policy }

(* ≥ 50 seeds: every schedule the protocols accept has an acyclic
   precedence graph, and the full checker stays quiet while they run. *)
let test_many_seeds_serializable () =
  List.iter
    (fun protocol ->
      for seed = 1 to 25 do
        let c = Checker.create () in
        ignore
          (Workload.run
             ~instrument:(fun cluster -> Checker.attach c cluster)
             (tiny_params ~seed ~protocol ~policy:Dtx.Site.Detection));
        match Checker.finish c with
        | [] -> ()
        | v :: _ ->
          Alcotest.failf "%s seed %d: %a"
            (Dtx_protocol.Protocol.kind_to_string protocol)
            seed Checker.pp_violation v
      done)
    [ Dtx_protocol.Protocol.xdgl; Dtx_protocol.Protocol.node2pl;
      Dtx_protocol.Protocol.commute ]

(* The optimistic protocol's core soundness claim, generalized: whatever
   workload shape QCheck draws, every history Commute accepts — lock-free
   commuting operations, intention-downgraded writers, validation aborts
   and all — passes the full checker, serializability included (the
   checker's history invariant records the complete derived footprints,
   not the reduced lock sets). *)
let prop_commute_serializable =
  QCheck.Test.make ~name:"commute-accepted histories serializability-clean"
    ~count:20
    QCheck.(triple (int_range 1 500) (int_range 0 100) (int_range 2 6))
    (fun (seed, upd, clients) ->
      let c = Checker.create () in
      let p =
        { (tiny_params ~seed ~protocol:Dtx_protocol.Protocol.commute
             ~policy:Dtx.Site.Detection)
          with n_clients = clients; update_txn_pct = upd }
      in
      ignore
        (Workload.run ~instrument:(fun cluster -> Checker.attach c cluster) p);
      match Checker.finish c with
      | [] -> true
      | v :: _ ->
        QCheck.Test.fail_reportf "seed %d upd %d clients %d: %a" seed upd
          clients Checker.pp_violation v)

(* Forced aborts (wound-wait kills transactions aggressively) must leave no
   trace in the precedence graph: every conflict edge joins two committed
   transactions. *)
let test_aborted_txns_contribute_no_edges () =
  for seed = 1 to 10 do
    let hist = ref None in
    let res =
      Workload.run
        ~instrument:(fun cluster -> hist := Some (Cluster.enable_history cluster))
        (tiny_params ~seed ~protocol:Dtx_protocol.Protocol.xdgl
           ~policy:Dtx.Site.Wound_wait)
    in
    let h = Option.get !hist in
    let committed = List.map fst (History.committed h) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: some aborts occurred or none needed" seed)
      true
      (res.Workload.committed >= 0);
    List.iter
      (fun (a, b) ->
        if not (List.mem a committed && List.mem b committed) then
          Alcotest.failf "seed %d: edge t%d -> t%d touches an uncommitted txn"
            seed a b)
      (History.conflict_edges h)
  done

let () =
  Alcotest.run "check"
    [ ( "lattice",
        [ Alcotest.test_case "live matrix ok" `Quick test_lattice_ok;
          Alcotest.test_case "flipped cell caught" `Quick
            test_lattice_flip_caught ] );
      ( "locks",
        [ Alcotest.test_case "faithful schedule clean" `Quick
            test_faithful_schedule_clean;
          Alcotest.test_case "skipped release caught" `Quick
            test_skipped_release_caught;
          Alcotest.test_case "acquire after release caught" `Quick
            test_acquire_after_release_caught;
          Alcotest.test_case "incompatible grant caught" `Quick
            test_incompatible_grant_caught;
          QCheck_alcotest.to_alcotest prop_faithful_replay_clean;
          QCheck_alcotest.to_alcotest prop_dropped_release_flagged ] );
      ( "two-phase",
        [ Alcotest.test_case "faithful round clean" `Quick
            test_two_phase_faithful_clean;
          Alcotest.test_case "commit before prepared caught" `Quick
            test_commit_before_prepared_caught;
          Alcotest.test_case "vote without prepared caught" `Quick
            test_vote_without_prepared_caught ] );
      ( "fsm",
        [ Alcotest.test_case "legal path clean" `Quick test_fsm_legal_path_clean;
          Alcotest.test_case "illegal transition caught" `Quick
            test_fsm_illegal_transition_caught;
          Alcotest.test_case "op-ship while ending caught" `Quick
            test_op_ship_while_ending_caught ] );
      ( "deadlock",
        [ Alcotest.test_case "newest victim clean" `Quick test_victim_newest_clean;
          Alcotest.test_case "non-newest victim caught" `Quick
            test_victim_not_newest_caught;
          Alcotest.test_case "victim without cycle caught" `Quick
            test_victim_without_cycle_caught ] );
      ( "workloads",
        [ Alcotest.test_case "50 seeded runs serializable" `Slow
            test_many_seeds_serializable;
          Alcotest.test_case "aborts contribute no edges" `Quick
            test_aborted_txns_contribute_no_edges;
          QCheck_alcotest.to_alcotest prop_commute_serializable ] ) ]
