(* Tests for the typed wire protocol: encode/decode round-trips for every
   constructor, wire-size properties (batching compresses), and decoder
   robustness against truncated or corrupt input. *)

module Msg = Dtx_net.Msg
module Op = Dtx_update.Op
module P = Dtx_xpath.Parser

let checkb = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Structural equality, with operations compared through their canonical
   textual form (the form they ride the wire in). *)
let msg_equal a b =
  match (a, b) with
  | ( Msg.Op_ship { txn = t1; attempt = a1; seq = s1; ops = o1 },
      Msg.Op_ship { txn = t2; attempt = a2; seq = s2; ops = o2 } ) ->
    t1 = t2 && a1 = a2 && s1 = s2
    && List.length o1 = List.length o2
    && List.for_all2
         (fun (x : Msg.shipment) (y : Msg.shipment) ->
           x.Msg.s_index = y.Msg.s_index
           && x.Msg.s_doc = y.Msg.s_doc
           && Op.to_string x.Msg.s_op = Op.to_string y.Msg.s_op)
         o1 o2
  | a, b -> a = b

let ship ?(index = 0) doc text =
  match Op.parse text with
  | Ok op -> Msg.shipment ~index ~doc op
  | Error e -> Alcotest.failf "bad op %S: %s" text e

(* One representative value per constructor — every tag byte and field
   codec gets exercised. *)
let samples =
  [ Msg.Op_ship
      { txn = 42;
        attempt = 3;
        seq = 512;
        ops =
          [ ship "catalogue" "QUERY /products/product/name";
            ship ~index:1 "catalogue"
              "INSERT INTO /products <product><id>9</id></product>";
            ship ~index:2 "people" "REMOVE //person[id = \"12\"]";
            ship ~index:3 "people" "RENAME /people/person[1]/name TO title";
            ship ~index:4 "people"
              "CHANGE //person[id = \"4\"]/name TO \"Ana\"";
            ship ~index:5 "site" "TRANSPOSE //item[@id = \"i9\"] INTO /site/regions/europe"
          ] };
    Msg.Op_status
      { txn = 7; attempt = 0; seq = 1; granted = 2; status = Msg.Granted;
        result_bytes = 640 };
    Msg.Op_status
      { txn = 7; attempt = 1; seq = 2; granted = 0; status = Msg.Blocked;
        result_bytes = 0 };
    Msg.Op_status
      { txn = 8; attempt = 2; seq = 130; granted = 1; status = Msg.Deadlock;
        result_bytes = 0 };
    Msg.Op_status
      { txn = 9; attempt = 0; seq = 0; granted = 0;
        status = Msg.Failed "site unavailable"; result_bytes = 0 };
    Msg.Op_undo { txn = 11; op_index = 2; attempt = 4 };
    Msg.Prepare { txn = 13 };
    Msg.Vote { txn = 13; ok = true };
    Msg.Vote { txn = 13; ok = false };
    Msg.Commit { txn = 14 };
    Msg.Abort { txn = 15; quiet = false };
    Msg.Abort { txn = 15; quiet = true };
    Msg.End_ack { txn = 14; ok = true };
    Msg.Wake { txn = 16 };
    Msg.Wound { txn = 17 };
    Msg.Victim { txn = 18 };
    Msg.Outcome_query { txn = 19 };
    Msg.Outcome_reply { txn = 19; committed = true };
    Msg.Outcome_reply { txn = 20; committed = false };
    Msg.Wfg_request;
    Msg.Wfg_reply { edges = [] };
    Msg.Wfg_reply { edges = [ (1, 2); (2, 3); (300, 70000) ] } ]

let test_round_trip_every_constructor () =
  (* Every Kind appears among the samples. *)
  let kinds = List.map Msg.kind samples in
  List.iter
    (fun k ->
      checkb
        (Printf.sprintf "kind %s sampled" (Msg.Kind.to_string k))
        true (List.mem k kinds))
    Msg.Kind.all;
  List.iter
    (fun m ->
      match Msg.decode (Msg.encode m) with
      | Ok m' ->
        checkb
          (Format.asprintf "round-trip %a" Msg.pp m)
          true (msg_equal m m')
      | Error e -> Alcotest.failf "decode failed for %a: %s" Msg.pp m e)
    samples

let test_kind_index_dense () =
  check_int "count" (List.length Msg.Kind.all) Msg.Kind.count;
  let seen = Array.make Msg.Kind.count false in
  List.iter
    (fun k ->
      let i = Msg.Kind.index k in
      checkb "in range" true (i >= 0 && i < Msg.Kind.count);
      checkb "no collision" false seen.(i);
      seen.(i) <- true)
    Msg.Kind.all

let test_size_includes_result_payload () =
  let base =
    Msg.Op_status
      { txn = 1; attempt = 0; seq = 1; granted = 1; status = Msg.Granted;
        result_bytes = 0 }
  in
  let loaded =
    Msg.Op_status
      { txn = 1; attempt = 0; seq = 1; granted = 1; status = Msg.Granted;
        result_bytes = 512 }
  in
  (* The modelled result payload is charged on top of the encoding. *)
  checkb "payload charged" true (Msg.size loaded >= Msg.size base + 512)

let test_batched_shipment_smaller_than_singles () =
  let ops =
    [ ship ~index:0 "catalogue" "QUERY /products/product/name";
      ship ~index:1 "catalogue" "QUERY /products/product/price";
      ship ~index:2 "catalogue" "REMOVE //product[id = \"2\"]" ]
  in
  let batched =
    Msg.size (Msg.Op_ship { txn = 5; attempt = 0; seq = 1; ops })
  in
  let singles =
    List.fold_left
      (fun acc op ->
        acc
        + Msg.size (Msg.Op_ship { txn = 5; attempt = 0; seq = 1; ops = [ op ] }))
      0 ops
  in
  checkb
    (Printf.sprintf "batched (%dB) < singles (%dB)" batched singles)
    true (batched < singles)

(* [size] is computed arithmetically (no encoding) on the dispatch hot
   path; pin it to the ground truth for every constructor. *)
let test_size_matches_encoding () =
  List.iter
    (fun m ->
      let payload =
        match m with
        | Msg.Op_status { result_bytes; _ } -> result_bytes
        | _ -> 0
      in
      check_int
        (Format.asprintf "size %a" Msg.pp m)
        (String.length (Msg.encode m) + payload)
        (Msg.size m))
    samples

let test_decode_rejects_garbage () =
  let expect_error label s =
    match Msg.decode s with
    | Ok m -> Alcotest.failf "%s: decoded to %a" label Msg.pp m
    | Error _ -> ()
  in
  expect_error "empty" "";
  expect_error "unknown tag" "\xff";
  (* Truncations of a real message must not decode. *)
  let enc = Msg.encode (List.hd samples) in
  for len = 0 to String.length enc - 1 do
    expect_error (Printf.sprintf "truncated at %d" len) (String.sub enc 0 len)
  done;
  (* Trailing junk after a complete message is an error, not ignored. *)
  expect_error "trailing bytes" (Msg.encode Msg.Wfg_request ^ "x")

let test_kind_names () =
  check_str "op_ship" "op_ship" (Msg.Kind.to_string Msg.Kind.Op_ship);
  check_str "wfg_reply" "wfg_reply" (Msg.Kind.to_string Msg.Kind.Wfg_reply);
  let names = List.map Msg.Kind.to_string Msg.Kind.all in
  check_int "names distinct"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let () =
  Alcotest.run "msg"
    [ ( "codec",
        [ Alcotest.test_case "round-trip every constructor" `Quick
            test_round_trip_every_constructor;
          Alcotest.test_case "kind index dense" `Quick test_kind_index_dense;
          Alcotest.test_case "kind names" `Quick test_kind_names ] );
      ( "sizes",
        [ Alcotest.test_case "result payload charged" `Quick
            test_size_includes_result_payload;
          Alcotest.test_case "batching compresses" `Quick
            test_batched_shipment_smaller_than_singles;
          Alcotest.test_case "arithmetic size matches encoding" `Quick
            test_size_matches_encoding ] );
      ( "robustness",
        [ Alcotest.test_case "garbage rejected" `Quick
            test_decode_rejects_garbage ] ) ]
