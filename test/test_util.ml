(* Unit + property tests for Dtx_util: Vec, Heap, Rng, Stats. *)

module Vec = Dtx_util.Vec
module Heap = Dtx_util.Heap
module Rng = Dtx_util.Rng
module Stats = Dtx_util.Stats

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

(* --- Vec ---------------------------------------------------------------- *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do Vec.push v i done;
  check "length" 100 (Vec.length v);
  for i = 0 to 99 do check "get" i (Vec.get v i) done

let test_vec_pop () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.(check (option int)) "pop" (Some 3) (Vec.pop v);
  check "len" 2 (Vec.length v);
  ignore (Vec.pop v);
  ignore (Vec.pop v);
  Alcotest.(check (option int)) "empty pop" None (Vec.pop v)

let test_vec_set_bounds () =
  let v = Vec.of_list [ 1 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 1));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set") (fun () ->
      Vec.set v (-1) 0)

let test_vec_filter_in_place () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5; 6 ] in
  Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check (list int)) "evens kept in order" [ 2; 4; 6 ] (Vec.to_list v)

let test_vec_swap_remove () =
  let v = Vec.of_list [ 10; 20; 30; 40 ] in
  check "removed" 20 (Vec.swap_remove v 1);
  check "len" 3 (Vec.length v);
  Alcotest.(check (list int)) "last moved in" [ 10; 40; 30 ] (Vec.to_list v)

let test_vec_iterators () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  check "fold" 6 (Vec.fold_left ( + ) 0 v);
  checkb "exists" true (Vec.exists (fun x -> x = 2) v);
  checkb "not exists" false (Vec.exists (fun x -> x = 9) v);
  Alcotest.(check (option int)) "find" (Some 2) (Vec.find_opt (fun x -> x > 1) v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  check "iteri count" 3 (List.length !acc)

let test_vec_make_clear () =
  let v = Vec.make 5 'x' in
  check "make len" 5 (Vec.length v);
  Vec.clear v;
  checkb "cleared" true (Vec.is_empty v);
  check "to_array" 0 (Array.length (Vec.to_array v))

(* --- Heap --------------------------------------------------------------- *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 0 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some x ->
      out := x :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 9; 5; 4; 3; 1; 1; 0 ] !out

let test_heap_peek () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check (option int)) "empty peek" None (Heap.peek h);
  Heap.push h 3;
  Heap.push h 1;
  Alcotest.(check (option int)) "min" (Some 1) (Heap.peek h);
  check "peek does not pop" 2 (Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare xs)

(* --- Calqueue ------------------------------------------------------------ *)

module Calqueue = Dtx_util.Calqueue

let cq_create () = Calqueue.create ~time:fst ~seq:snd ()

let test_calqueue_ordering () =
  let q = cq_create () in
  List.iteri (fun i t -> Calqueue.push q (t, i)) [ 5.0; 1.0; 4.0; 1.0; 3.0 ];
  let rec drain acc =
    match Calqueue.pop q with Some x -> drain (x :: acc) | None -> List.rev acc
  in
  Alcotest.(check (list (pair (float 0.0) int)))
    "(time, seq) order incl. FIFO tie"
    [ (1.0, 1); (1.0, 3); (3.0, 4); (4.0, 2); (5.0, 0) ]
    (drain [])

let test_calqueue_peek_filter () =
  let q = cq_create () in
  for i = 0 to 99 do
    Calqueue.push q (float_of_int (i mod 10), i)
  done;
  check "length" 100 (Calqueue.length q);
  Alcotest.(check (option (pair (float 0.0) int)))
    "peek min" (Some (0.0, 0)) (Calqueue.peek q);
  check "peek does not pop" 100 (Calqueue.length q);
  Calqueue.filter_in_place (fun (_, s) -> s mod 2 = 0) q;
  check "filtered" 50 (Calqueue.length q);
  Alcotest.(check (option (pair (float 0.0) int)))
    "min survives filter" (Some (0.0, 0)) (Calqueue.peek q);
  Calqueue.clear q;
  check "cleared" 0 (Calqueue.length q);
  Alcotest.(check bool) "empty" true (Calqueue.is_empty q)

(* The property that lets the simulator swap queues without a trace diff:
   any interleaving of pushes and pops drains in exactly the heap's
   (time, seq) order — including sparse far-future times that force the
   calendar's direct-search jump, and resize churn both ways. *)
let prop_calqueue_matches_heap =
  QCheck.Test.make ~name:"calendar queue = binary heap dispatch order"
    ~count:300
    QCheck.(
      list_of_size Gen.(1 -- 120)
        (pair (oneofl [ 0.0; 0.5; 1.0; 3.0; 1e3; 1e7 ]) (float_bound_exclusive 50.0)))
    (fun ops ->
      let cmp (t1, s1) (t2, s2) =
        let c = compare (t1 : float) t2 in
        if c <> 0 then c else compare (s1 : int) s2
      in
      let q = cq_create () and h = Heap.create ~cmp in
      let ok = ref true in
      List.iteri
        (fun i (base, jitter) ->
          Calqueue.push q (base +. jitter, i);
          Heap.push h (base +. jitter, i);
          (* pop a third of the time, interleaved with pushes *)
          if i mod 3 = 0 then ok := !ok && Calqueue.pop q = Heap.pop h)
        ops;
      let rec drain () =
        match (Calqueue.pop q, Heap.pop h) with
        | None, None -> true
        | a, b -> a = b && drain ()
      in
      !ok && drain ())

(* --- Rng ---------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 50 do
    checkb "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done

let test_rng_ranges () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    checkb "in [0,10)" true (x >= 0 && x < 10);
    let y = Rng.int_in r 5 9 in
    checkb "in [5,9]" true (y >= 5 && y <= 9);
    let f = Rng.float r 2.0 in
    checkb "float range" true (f >= 0.0 && f < 2.0)
  done

let test_rng_invalid () =
  let r = Rng.create 1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int") (fun () ->
      ignore (Rng.int r 0));
  Alcotest.check_raises "pick empty" (Invalid_argument "Rng.pick") (fun () ->
      ignore (Rng.pick r [||]))

let test_rng_split_independent () =
  let a = Rng.create 42 in
  let b = Rng.split a in
  (* The split stream should not equal the parent's continued stream. *)
  let xs = List.init 8 (fun _ -> Rng.bits64 a) in
  let ys = List.init 8 (fun _ -> Rng.bits64 b) in
  checkb "different streams" true (xs <> ys)

let test_rng_pct () =
  let r = Rng.create 3 in
  for _ = 1 to 100 do
    checkb "0%% never" false (Rng.pct r 0)
  done;
  for _ = 1 to 100 do
    checkb "100%% always" true (Rng.pct r 100)
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create 5 in
  let a = Array.init 20 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 (fun i -> i)) sorted

(* --- Stats -------------------------------------------------------------- *)

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  check "count" 4 s.Stats.count;
  checkf "mean" 2.5 s.Stats.mean;
  checkf "min" 1.0 s.Stats.min;
  checkf "max" 4.0 s.Stats.max;
  checkf "p50" 2.5 s.Stats.p50

let test_stats_empty () =
  let s = Stats.summarize [] in
  check "count" 0 s.Stats.count;
  checkf "mean" 0.0 s.Stats.mean

let test_timeline () =
  let tl = Stats.Timeline.create ~bucket:10.0 in
  Stats.Timeline.incr tl ~time:1.0;
  Stats.Timeline.incr tl ~time:5.0;
  Stats.Timeline.incr tl ~time:25.0;
  (match Stats.Timeline.buckets tl with
   | [ (t0, v0); (t2, v2) ] ->
     checkf "bucket 0 start" 0.0 t0;
     checkf "bucket 0 count" 2.0 v0;
     checkf "bucket 2 start" 20.0 t2;
     checkf "bucket 2 count" 1.0 v2
   | other -> Alcotest.failf "unexpected buckets (%d)" (List.length other));
  match Stats.Timeline.cumulative tl with
  | [ (_, a); (_, b); (_, c) ] ->
    checkf "cum 0" 2.0 a;
    checkf "cum gap carries" 2.0 b;
    checkf "cum end" 3.0 c
  | other -> Alcotest.failf "unexpected cumulative (%d)" (List.length other)

let prop_percentile_bounds =
  QCheck.Test.make ~name:"summary stays within min/max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.summarize xs in
      s.Stats.p50 >= s.Stats.min -. 1e-9
      && s.Stats.p50 <= s.Stats.max +. 1e-9
      && s.Stats.p95 >= s.Stats.p50 -. 1e-9
      && s.Stats.p99 <= s.Stats.max +. 1e-9)

let test_chart_renders () =
  let out =
    Dtx_util.Chart.render ~xlabel:"x" ~ylabel:"y"
      [ ("a", [ (0.0, 0.0); (1.0, 1.0); (2.0, 4.0) ]);
        ("b", [ (0.0, 4.0); (2.0, 0.0) ]) ]
  in
  checkb "mentions series a" true
    (String.length out > 100
     && String.split_on_char '\n' out
        |> List.exists (fun l ->
               String.length l > 2
               && String.sub l (String.length l - 1) 1 = "a"));
  checkb "contains markers" true (String.contains out '*' && String.contains out 'o')

let test_chart_empty () =
  Alcotest.(check string) "placeholder" "(no data)" (Dtx_util.Chart.render []);
  Alcotest.(check string) "placeholder for empty series" "(no data)"
    (Dtx_util.Chart.render [ ("a", []) ])

let test_chart_single_point () =
  let out = Dtx_util.Chart.render [ ("solo", [ (5.0, 5.0) ]) ] in
  checkb "renders" true (String.contains out '*')

let () =
  Alcotest.run "util"
    [ ( "vec",
        [ Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "pop" `Quick test_vec_pop;
          Alcotest.test_case "bounds" `Quick test_vec_set_bounds;
          Alcotest.test_case "filter_in_place" `Quick test_vec_filter_in_place;
          Alcotest.test_case "swap_remove" `Quick test_vec_swap_remove;
          Alcotest.test_case "iterators" `Quick test_vec_iterators;
          Alcotest.test_case "make/clear" `Quick test_vec_make_clear ] );
      ( "heap",
        [ Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          QCheck_alcotest.to_alcotest prop_heap_sorts ] );
      ( "calqueue",
        [ Alcotest.test_case "ordering" `Quick test_calqueue_ordering;
          Alcotest.test_case "peek/filter/clear" `Quick test_calqueue_peek_filter;
          QCheck_alcotest.to_alcotest prop_calqueue_matches_heap ] );
      ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "invalid args" `Quick test_rng_invalid;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "pct extremes" `Quick test_rng_pct;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation ] );
      ( "chart",
        [ Alcotest.test_case "renders" `Quick test_chart_renders;
          Alcotest.test_case "empty" `Quick test_chart_empty;
          Alcotest.test_case "single point" `Quick test_chart_single_point ] );
      ( "stats",
        [ Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "timeline" `Quick test_timeline;
          QCheck_alcotest.to_alcotest prop_percentile_bounds ] ) ]
