(* Tests for the DTXTester workload harness and the experiment drivers. *)

module Workload = Dtx_workload.Workload
module Experiments = Dtx_workload.Experiments
module Protocol = Dtx_protocol.Protocol
module Allocation = Dtx_frag.Allocation
module Stats = Dtx_util.Stats

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let small =
  { Workload.default_params with
    n_clients = 6;
    txns_per_client = 3;
    base_size_mb = 6.0;
    n_sites = 3 }

let test_accounting () =
  let r = Workload.run small in
  check "planned" 18 r.Workload.planned_txns;
  check "every planned txn accounted" r.Workload.planned_txns
    (r.Workload.committed + r.Workload.not_executed);
  checkb "most commit" true (r.Workload.committed >= 12);
  check "response samples = committed" r.Workload.committed
    r.Workload.response.Stats.count;
  checkb "makespan covers responses" true
    (r.Workload.makespan_ms >= r.Workload.response.Stats.max);
  checkb "messages flowed" true (r.Workload.messages > 0);
  checkb "locks processed" true (r.Workload.lock_requests > 0)

let test_throughput_cumulative () =
  let r = Workload.run small in
  let ys = List.map snd r.Workload.throughput in
  checkb "non-decreasing" true
    (List.for_all2 (fun a b -> a <= b)
       (List.filteri (fun i _ -> i < List.length ys - 1) ys)
       (List.tl ys));
  (match List.rev ys with
   | last :: _ ->
     check "cumulative total = committed" r.Workload.committed
       (int_of_float last)
   | [] -> Alcotest.fail "empty throughput")

let test_concurrency_samples () =
  let r = Workload.run small in
  checkb "has samples" true (List.length r.Workload.concurrency > 2);
  (* Starts by ramping up to n_clients, ends at 0. *)
  let _, last = List.nth r.Workload.concurrency (List.length r.Workload.concurrency - 1) in
  check "drains to zero" 0 last;
  let peak = List.fold_left (fun a (_, n) -> max a n) 0 r.Workload.concurrency in
  checkb "peak reaches client count" true (peak >= small.Workload.n_clients)

let test_deterministic () =
  let strip r = (r.Workload.committed, r.Workload.aborted, r.Workload.deadlocks,
                 r.Workload.response.Stats.mean, r.Workload.makespan_ms,
                 r.Workload.messages, r.Workload.lock_requests) in
  checkb "same seed, same result" true
    (strip (Workload.run small) = strip (Workload.run small));
  checkb "different seed differs" true
    (strip (Workload.run small) <> strip (Workload.run { small with seed = 1234 }))

let test_retries_resubmit () =
  (* Retrying aborted transactions resubmits them (more transactions enter
     the system); accounting must stay exact either way. Whether retries
     raise the completion count is workload-dependent — a retried victim is
     always the youngest transaction again, so under the paper's
     abort-newest rule it can keep losing (the deadlock behaviour the paper
     flags for further study). *)
  let p = { small with update_txn_pct = 60; n_clients = 12 } in
  let r0 = Workload.run { p with retries = 0 } in
  let r3 = Workload.run { p with retries = 3 } in
  check "accounting r0" r0.Workload.planned_txns
    (r0.Workload.committed + r0.Workload.not_executed);
  check "accounting r3" r3.Workload.planned_txns
    (r3.Workload.committed + r3.Workload.not_executed);
  checkb "retries resubmit aborted txns" true
    (r3.Workload.aborted >= r0.Workload.aborted
     || r3.Workload.not_executed <= r0.Workload.not_executed)

let test_protocols_all_run () =
  List.iter
    (fun kind ->
      let r = Workload.run { small with protocol = kind } in
      checkb (Protocol.kind_to_string kind ^ " commits") true (r.Workload.committed > 0))
    [ Protocol.xdgl; Protocol.node2pl; Protocol.doc2pl ]

let test_paper_headline_shape () =
  (* XDGL responds faster than Node2PL on the read-only workload, in both
     replication modes; partial beats total. *)
  let ro = { small with update_txn_pct = 0; n_clients = 10 } in
  let mean p = (Workload.run p).Workload.response.Stats.mean in
  let xdgl_partial = mean ro in
  let node2pl_partial = mean { ro with protocol = Protocol.node2pl } in
  let xdgl_total = mean { ro with replication = Allocation.Total } in
  checkb "XDGL < Node2PL" true (xdgl_partial < node2pl_partial);
  checkb "partial < total" true (xdgl_partial < xdgl_total)

let test_total_replication_more_messages () =
  let ro = { small with update_txn_pct = 0 } in
  let partial = Workload.run ro in
  let total = Workload.run { ro with replication = Allocation.Total } in
  checkb "total replication costs messages" true
    (total.Workload.messages > partial.Workload.messages)

let test_structure_nodes_by_protocol () =
  let x = Workload.run small in
  let n = Workload.run { small with protocol = Protocol.node2pl } in
  checkb "dataguide smaller than document structure" true
    (x.Workload.structure_nodes < n.Workload.structure_nodes)

let test_run_many () =
  let a = Workload.run_many ~seeds:[ 3; 4 ] small in
  check "two runs" 2 (List.length a.Workload.runs);
  check "summary count" 2 a.Workload.mean_response.Stats.count;
  checkb "means positive" true
    (a.Workload.mean_response.Stats.mean > 0.0 && a.Workload.mean_committed > 0.0)

let test_invalid_params () =
  Alcotest.check_raises "no clients" (Invalid_argument "Workload.run") (fun () ->
      ignore (Workload.run { small with n_clients = 0 }))

(* --- experiment drivers --------------------------------------------------- *)

let test_fig_drivers_shape () =
  let figs = Experiments.fig10 ~quick:true () in
  check "fig10 -> two charts" 2 (List.length figs);
  List.iter
    (fun (f : Experiments.figure) ->
      check (f.Experiments.id ^ " series") 2 (List.length f.Experiments.series);
      List.iter
        (fun (s : Experiments.series) ->
          checkb "points present" true (List.length s.Experiments.points >= 2))
        f.Experiments.series)
    figs

let test_fig12_driver () =
  let figs = Experiments.fig12 ~quick:true () in
  check "two charts" 2 (List.length figs);
  let tp = List.hd figs in
  List.iter
    (fun (s : Experiments.series) ->
      let ys = List.map snd s.Experiments.points in
      checkb "cumulative non-decreasing" true
        (fst
           (List.fold_left (fun (ok, prev) y -> (ok && y >= prev, y)) (true, 0.0) ys)))
    tp.Experiments.series

let test_csv_export () =
  let figs = Experiments.fig10 ~quick:true () in
  let f = List.hd figs in
  let csv = Experiments.to_csv f in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  check "header + one row per x" (1 + 3) (List.length lines);
  checkb "header has both series" true
    (let h = List.hd lines in
     String.length h > 10
     && String.split_on_char ',' h |> List.length = 3)

let test_pp_figure_renders () =
  let figs = Experiments.fig10 ~quick:true () in
  List.iter
    (fun f ->
      let s = Format.asprintf "%a" Experiments.pp_figure f in
      checkb "non-empty" true (String.length s > 40))
    figs

let () =
  Alcotest.run "workload"
    [ ( "runs",
        [ Alcotest.test_case "accounting" `Quick test_accounting;
          Alcotest.test_case "throughput cumulative" `Quick test_throughput_cumulative;
          Alcotest.test_case "concurrency samples" `Quick test_concurrency_samples;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "retries" `Quick test_retries_resubmit;
          Alcotest.test_case "all protocols" `Quick test_protocols_all_run;
          Alcotest.test_case "run_many" `Quick test_run_many;
          Alcotest.test_case "invalid params" `Quick test_invalid_params ] );
      ( "paper shapes",
        [ Alcotest.test_case "headline ordering" `Slow test_paper_headline_shape;
          Alcotest.test_case "replication messages" `Quick
            test_total_replication_more_messages;
          Alcotest.test_case "structure sizes" `Quick test_structure_nodes_by_protocol ] );
      ( "experiments",
        [ Alcotest.test_case "fig drivers" `Slow test_fig_drivers_shape;
          Alcotest.test_case "fig12" `Slow test_fig12_driver;
          Alcotest.test_case "pp_figure" `Slow test_pp_figure_renders;
          Alcotest.test_case "csv export" `Slow test_csv_export ] ) ]
