(* Tests for the discrete-event simulator: ordering, determinism,
   cancellation, periodic processes. *)

module Sim = Dtx_sim.Sim

let checkf = Alcotest.(check (float 1e-9))
let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_time_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule sim ~delay:3.0 (fun () -> log := 3 :: !log));
  ignore (Sim.schedule sim ~delay:1.0 (fun () -> log := 1 :: !log));
  ignore (Sim.schedule sim ~delay:2.0 (fun () -> log := 2 :: !log));
  Sim.run sim;
  Alcotest.(check (list int)) "fired by time" [ 3; 2; 1 ] !log;
  checkf "clock at last event" 3.0 (Sim.now sim)

let test_fifo_ties () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Sim.schedule sim ~delay:1.0 (fun () -> log := i :: !log))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO among equal timestamps"
    [ 9; 8; 7; 6; 5; 4; 3; 2; 1; 0 ] !log

let test_nested_scheduling () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule sim ~delay:1.0 (fun () ->
         log := "a" :: !log;
         ignore (Sim.schedule sim ~delay:1.0 (fun () -> log := "c" :: !log))));
  ignore (Sim.schedule sim ~delay:1.5 (fun () -> log := "b" :: !log));
  Sim.run sim;
  Alcotest.(check (list string)) "interleaved" [ "c"; "b"; "a" ] !log

let test_negative_delay_rejected () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sim.schedule: negative delay") (fun () ->
      ignore (Sim.schedule sim ~delay:(-1.0) (fun () -> ())))

let test_schedule_at_past_clamps () =
  let sim = Sim.create () in
  let fired_at = ref (-1.0) in
  ignore
    (Sim.schedule sim ~delay:5.0 (fun () ->
         ignore
           (Sim.schedule_at sim ~time:1.0 (fun () -> fired_at := Sim.now sim))));
  Sim.run sim;
  checkf "clamped to now" 5.0 !fired_at

let test_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let id = Sim.schedule sim ~delay:1.0 (fun () -> fired := true) in
  Sim.cancel sim id;
  Sim.run sim;
  checkb "cancelled event did not fire" false !fired;
  (* Cancelling twice or after drain is harmless. *)
  Sim.cancel sim id

let test_cancel_no_leak () =
  (* Regression: a cancel aimed at an already-fired (or never-firing) event
     used to park its id in the cancelled table forever. *)
  let sim = Sim.create () in
  let id = Sim.schedule sim ~delay:1.0 (fun () -> ()) in
  Sim.run sim;
  Sim.cancel sim id;
  (* fired: no-op, nothing retained *)
  check "no backlog after cancelling fired event" 0 (Sim.cancelled_backlog sim);
  let foreign =
    let other = Sim.create () in
    let last = ref None in
    for _ = 1 to 5 do
      last := Some (Sim.schedule other ~delay:1.0 (fun () -> ()))
    done;
    Option.get !last
  in
  Sim.cancel sim foreign;
  (* id unknown to this simulator: no-op, nothing retained *)
  check "no backlog after cancelling unknown id" 0 (Sim.cancelled_backlog sim);
  let id2 = Sim.schedule sim ~delay:1.0 (fun () -> Alcotest.fail "cancelled") in
  Sim.cancel sim id2;
  check "one pending cancellation" 1 (Sim.cancelled_backlog sim);
  Sim.cancel sim id2;
  (* double cancel counted once *)
  check "double cancel counted once" 1 (Sim.cancelled_backlog sim);
  Sim.run sim;
  check "backlog drained with the queue" 0 (Sim.cancelled_backlog sim)

let test_compaction () =
  (* Mass cancellation must not leave garbage parked until the clock catches
     up: once >= 64 cancellations are pending and they outnumber half the
     queue, the queue is rebuilt without them. *)
  let sim = Sim.create () in
  let fired = ref 0 in
  let ids =
    List.init 200 (fun i ->
        Sim.schedule sim ~delay:(float_of_int (i + 1)) (fun () -> incr fired))
  in
  List.iteri (fun i id -> if i < 150 then Sim.cancel sim id) ids;
  (* The 101st cancel trips 2*101 > 200 and compacts to zero backlog; the
     trailing 49 sit below the 64-cancellation floor. *)
  checkb "compaction ran" true (Sim.cancelled_backlog sim < 64);
  check "leftover below floor" 49 (Sim.cancelled_backlog sim);
  check "live events remain" 99 (Sim.pending sim);
  Sim.run sim;
  check "only uncancelled fired" 50 !fired;
  check "backlog drained" 0 (Sim.cancelled_backlog sim);
  check "queue empty" 0 (Sim.pending sim)

(* Identical schedule/cancel scripts must fire identically on the calendar
   queue and the legacy heap (DTX_SIM_QUEUE=heap) — the in-process version
   of the byte-identical ablation gate. *)
let prop_backends_agree =
  QCheck.Test.make ~name:"calendar and heap backends fire identically"
    ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 60) (float_bound_exclusive 50.0))
        (small_nat))
    (fun (delays, cancel_every) ->
      let trace backend =
        Unix.putenv "DTX_SIM_QUEUE" backend;
        Fun.protect
          ~finally:(fun () -> Unix.putenv "DTX_SIM_QUEUE" "calendar")
          (fun () ->
            let sim = Sim.create () in
            let log = ref [] in
            let ids =
              List.mapi
                (fun i d ->
                  Sim.schedule sim ~delay:d (fun () ->
                      log := (i, Sim.now sim) :: !log;
                      if i mod 7 = 0 then
                        ignore
                          (Sim.schedule sim ~delay:1.0 (fun () ->
                               log := (1000 + i, Sim.now sim) :: !log))))
                delays
            in
            List.iteri
              (fun i id ->
                if cancel_every > 0 && i mod (cancel_every + 1) = 0 then
                  Sim.cancel sim id)
              ids;
            Sim.run sim;
            !log)
      in
      trace "calendar" = trace "heap")

let test_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.schedule sim ~delay:(float_of_int i) (fun () -> incr count))
  done;
  Sim.run ~until:5.0 sim;
  check "only events <= 5.0" 5 !count;
  check "rest pending" 5 (Sim.pending sim);
  Sim.run sim;
  check "drained" 10 !count

let test_max_events () =
  let sim = Sim.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore (Sim.schedule sim ~delay:1.0 (fun () -> incr count))
  done;
  Sim.run ~max_events:3 sim;
  check "stopped after 3" 3 !count

let test_step () =
  let sim = Sim.create () in
  checkb "step on empty" false (Sim.step sim);
  ignore (Sim.schedule sim ~delay:1.0 (fun () -> ()));
  checkb "step fires" true (Sim.step sim);
  checkb "then empty" false (Sim.step sim)

let test_every () =
  let sim = Sim.create () in
  let ticks = ref 0 in
  Sim.every sim ~period:10.0 (fun () ->
      incr ticks;
      !ticks < 5);
  Sim.run sim;
  check "stopped after callback returned false" 5 !ticks;
  checkf "last tick time" 50.0 (Sim.now sim)

let test_every_start_offset () =
  let sim = Sim.create () in
  let first = ref (-1.0) in
  Sim.every sim ~period:10.0 ~start:2.0 (fun () ->
      if !first < 0.0 then first := Sim.now sim;
      false);
  Sim.run sim;
  checkf "start offset honoured" 2.0 !first

let prop_deterministic =
  QCheck.Test.make ~name:"same schedule, same trace" ~count:50
    QCheck.(list_of_size Gen.(1 -- 30) (float_bound_exclusive 100.0))
    (fun delays ->
      let trace () =
        let sim = Sim.create () in
        let log = ref [] in
        List.iteri
          (fun i d ->
            ignore (Sim.schedule sim ~delay:d (fun () -> log := (i, Sim.now sim) :: !log)))
          delays;
        Sim.run sim;
        !log
      in
      trace () = trace ())

let () =
  Alcotest.run "sim"
    [ ( "events",
        [ Alcotest.test_case "time ordering" `Quick test_time_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_fifo_ties;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "negative delay" `Quick test_negative_delay_rejected;
          Alcotest.test_case "schedule_at clamps" `Quick test_schedule_at_past_clamps;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "cancel leaks nothing" `Quick test_cancel_no_leak;
          Alcotest.test_case "mass-cancel compaction" `Quick test_compaction;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "max events" `Quick test_max_events;
          Alcotest.test_case "step" `Quick test_step ] );
      ( "periodic",
        [ Alcotest.test_case "every" `Quick test_every;
          Alcotest.test_case "every with start" `Quick test_every_start_offset ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_deterministic;
          QCheck_alcotest.to_alcotest prop_backends_agree ] ) ]
